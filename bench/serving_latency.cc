// Serving-model benchmark: runs the open-loop traffic model
// (docs/serving.md) over the paper's eight placements and emits the
// per-protocol messages-per-access and latency percentiles to
// BENCH_serving.json (override with --out=PATH) under the
// dynvote-serving-v1 schema, so successive PRs can track how protocol
// message complexity translates into serving latency.
//
//   {
//     "schema": "dynvote-serving-v1",
//     "unit": "ms",
//     "configs": [
//       {"config": "A", "policies": [
//         {"name": "MCV", "served": N, "rejected": N,
//          "msgs_per_access": X,
//          "latency_ms": {"p50": X, "p90": X, "p99": X, "p999": X,
//                         "max": X}}, ...]},
//       ...
//     ],
//     "overhead": {"name": "serving_metrics_overhead",
//                  "metrics_on_ns_per_op": N,
//                  "metrics_off_ns_per_op": N, "ratio": N}
//   }
//
// The overhead entry measures a full serving experiment with metrics
// collection on vs. off in alternating paired rounds (bench_util.h), so
// the ratio CI gates (<= 1.3x) is immune to machine drift. The config
// tables are deterministic — fixed seed, metrics merged in replication
// order — only the overhead timings vary run to run.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/registry.h"
#include "model/experiment.h"
#include "model/open_loop.h"
#include "model/site_profile.h"
#include "obs/context.h"
#include "obs/metrics.h"

namespace dynvote {
namespace {

/// Serving parameters shared by every measurement in this bench: a rate
/// high enough for tight tail percentiles over a short horizon.
ServingOptions BenchServing() {
  ServingOptions serving;
  serving.enabled = true;
  serving.arrival_rate_per_day = 500.0;
  serving.service_time_ms = 1.0;
  serving.msg_cost_ms = 0.1;
  serving.write_fraction = 0.5;
  return serving;
}

/// One serving experiment over a paper placement, metrics into `shard`
/// when non-null. Exits on error: a bench has no caller to report to.
void RunServing(char config, double measured_days, std::uint64_t seed,
                MetricsShard* shard) {
  ExperimentOptions options;
  options.warmup = Days(90);
  options.num_batches = 10;
  options.batch_length = Days(measured_days / 10.0);
  options.seed = seed;
  options.serving = BenchServing();

  ObsContext obs;
  obs.metrics = shard;

  auto network = MakePaperNetwork();
  const PaperConfiguration* pc = nullptr;
  for (const auto& c : PaperConfigurations()) {
    if (c.label == config) pc = &c;
  }
  if (pc == nullptr) {
    std::cerr << "unknown configuration " << config << "\n";
    std::exit(1);
  }
  ExperimentSpec spec;
  spec.topology = network->topology;
  spec.profiles = network->profiles;
  spec.options = options;
  if (shard != nullptr) spec.obs = &obs;

  std::vector<std::unique_ptr<ConsistencyProtocol>> protocols;
  for (const std::string& name : PaperProtocolNames()) {
    auto p = MakeProtocolByName(name, network->topology, pc->placement);
    if (!p.ok()) {
      std::cerr << p.status() << "\n";
      std::exit(1);
    }
    protocols.push_back(p.MoveValue());
  }
  auto results = RunAvailabilityExperiment(spec, std::move(protocols));
  if (!results.ok()) {
    std::cerr << results.status() << "\n";
    std::exit(1);
  }
}

std::uint64_t Counter(const MetricsShard& metrics, const std::string& key) {
  auto it = metrics.counters().find(key);
  return it == metrics.counters().end() ? 0 : it->second;
}

/// Access-phase control messages for one protocol (file copies are data
/// plane and excluded, matching MessageCounter::ControlTotal).
std::uint64_t AccessMessages(const MetricsShard& metrics,
                             const std::string& protocol) {
  std::uint64_t total = 0;
  for (int k = 0; k < kNumMessageKinds; ++k) {
    auto kind = static_cast<MessageKind>(k);
    if (kind == MessageKind::kFileCopy) continue;
    total += Counter(metrics,
                     MetricKey("serving_messages",
                               "kind=" + MessageKindName(kind) +
                                   ",phase=access,protocol=" + protocol));
  }
  return total;
}

std::string FormatDouble(double value) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << value;
  return os.str();
}

/// The A-H serving tables: one deterministic run per placement, decoded
/// from the metrics shard into JSON rows (and a console table).
std::string ConfigsJson() {
  std::ostringstream os;
  os << "  \"configs\": [\n";
  const std::string configs = "ABCDEFGH";
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const char config = configs[c];
    MetricsShard shard;
    RunServing(config, /*measured_days=*/180.0, /*seed=*/20260704, &shard);
    os << "    {\"config\": \"" << config << "\", \"policies\": [\n";
    std::cout << "configuration " << config << ":\n";
    const std::vector<std::string> names = PaperProtocolNames();
    for (std::size_t p = 0; p < names.size(); ++p) {
      const std::string& name = names[p];
      const std::string label = "protocol=" + name;
      const std::uint64_t arrivals =
          Counter(shard, MetricKey("serving_arrivals", label));
      const std::uint64_t rejected =
          Counter(shard, MetricKey("serving_rejected", label));
      const std::uint64_t served = arrivals - rejected;
      HistogramData latency;
      auto hist =
          shard.histograms().find(MetricKey("serving_latency_ms", label));
      if (hist != shard.histograms().end()) latency = hist->second;
      const double msgs_per_access =
          served > 0 ? static_cast<double>(AccessMessages(shard, name)) /
                           static_cast<double>(served)
                     : 0.0;
      const double p50 = latency.Quantile(0.50);
      const double p99 = latency.Quantile(0.99);
      std::cout << "  " << name << ": " << FormatDouble(msgs_per_access)
                << " msgs/access, p50 " << FormatDouble(p50) << " ms, p99 "
                << FormatDouble(p99) << " ms\n";
      os << "      {\"name\": \"" << name << "\", \"served\": " << served
         << ", \"rejected\": " << rejected
         << ", \"msgs_per_access\": " << FormatDouble(msgs_per_access)
         << ", \"latency_ms\": {\"p50\": " << FormatDouble(p50)
         << ", \"p90\": " << FormatDouble(latency.Quantile(0.90))
         << ", \"p99\": " << FormatDouble(p99)
         << ", \"p999\": " << FormatDouble(latency.Quantile(0.999))
         << ", \"max\": " << FormatDouble(latency.max) << "}}"
         << (p + 1 < names.size() ? "," : "") << "\n";
    }
    os << "    ]}" << (c + 1 < configs.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  return os.str();
}

/// The gated pair: a serving experiment with metrics collection on vs.
/// off, alternating within every round. Metrics batching (ServingStage
/// accumulates locally and flushes once) is what keeps this ratio small.
std::string OverheadJson(double min_ms) {
  auto run = [](bool collect, std::uint64_t iters) {
    for (std::uint64_t i = 0; i < iters; ++i) {
      MetricsShard shard;
      RunServing('B', /*measured_days=*/60.0, /*seed=*/1 + i,
                 collect ? &shard : nullptr);
    }
  };
  auto [on_r, off_r] = bench::MeasurePairedMinOfRounds(
      min_ms, [&](std::uint64_t n) { run(true, n); },
      [&](std::uint64_t n) { run(false, n); });
  const double ratio = on_r.ns_per_op / off_r.ns_per_op;
  std::cout << "serving_metrics_overhead: on "
            << FormatDouble(on_r.ns_per_op / 1e6) << " ms/run, off "
            << FormatDouble(off_r.ns_per_op / 1e6) << " ms/run, ratio "
            << FormatDouble(ratio) << "x\n";
  std::ostringstream os;
  os << "  \"overhead\": {\"name\": \"serving_metrics_overhead\", "
     << "\"metrics_on_ns_per_op\": " << FormatDouble(on_r.ns_per_op)
     << ", \"metrics_off_ns_per_op\": " << FormatDouble(off_r.ns_per_op)
     << ", \"ratio\": " << FormatDouble(ratio) << "}\n";
  return os.str();
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_serving.json";
  double min_ms = 200.0;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--out=", 0) == 0) {
      out_path = a.substr(6);
    } else if (a.rfind("--min-time-ms=", 0) == 0) {
      min_ms = std::stod(a.substr(14));
    }
  }

  std::string json;
  json += "{\n  \"schema\": \"";
  json += kServingSchema;
  json += "\",\n  \"unit\": \"ms\",\n";
  json += ConfigsJson();
  json += OverheadJson(min_ms);
  json += "}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << json;
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace dynvote

int main(int argc, char** argv) { return dynvote::Main(argc, argv); }
