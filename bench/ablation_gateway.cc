// E15 (ablation): gateway hosts vs dedicated repeaters. In the paper's
// network the bridging function lives on ordinary machines (wizard,
// amos), so one hardware failure both removes a potential copy holder
// and partitions a segment. This bench rebuilds Figure 8 with dedicated
// repeaters carrying the same failure law as the hosts they replace
// (wizard and amos become ordinary, non-bridging sites) and measures what
// decoupling the two roles is worth for the partition-exposed
// configurations.
//
// Flags: --years=N (default 400), --seed=N

#include <iostream>

#include "bench_util.h"
#include "core/registry.h"
#include "model/site_profile.h"
#include "stats/table.h"

namespace dynvote {
namespace bench {
namespace {

/// Figure 8 with repeaters instead of gateway hosts.
Result<PaperNetwork> MakeRepeaterVariant(
    std::vector<RepeaterProfile>* repeater_profiles) {
  auto builder = Topology::Builder();
  SegmentId main_seg = builder.AddSegment("main");
  SegmentId second = builder.AddSegment("second");
  SegmentId third = builder.AddSegment("third");
  builder.AddSite("csvax", main_seg);
  builder.AddSite("beowulf", main_seg);
  builder.AddSite("grendel", main_seg);
  builder.AddSite("wizard", main_seg);  // ordinary site now
  builder.AddSite("amos", main_seg);    // ordinary site now
  builder.AddSite("gremlin", second);
  builder.AddSite("rip", third);
  builder.AddSite("mangle", third);
  builder.AddRepeater("rep-second", main_seg, second);
  builder.AddRepeater("rep-third", main_seg, third);
  auto topo = builder.Build();
  if (!topo.ok()) return topo.status();

  auto paper = MakePaperNetwork();
  if (!paper.ok()) return paper.status();
  // The repeaters inherit the failure behaviour of the gateway hosts
  // they replace: same 50-day MTTF and the same 7-day mean repair
  // (84 h constant + 84 h exponential matches the hosts' mixed law in
  // expectation).
  repeater_profiles->clear();
  repeater_profiles->push_back(RepeaterProfile{"rep-second", 50.0,
                                               168.0 * 0.5, 168.0 * 0.5});
  repeater_profiles->push_back(RepeaterProfile{"rep-third", 50.0,
                                               168.0 * 0.5, 168.0 * 0.5});
  return PaperNetwork{topo.MoveValue(), paper->profiles};
}

int Run(const BenchArgs& args) {
  std::cout << "=== Gateway hosts vs dedicated repeaters ===\n"
            << "Same Figure 8 shape; bridging decoupled from wizard/amos "
               "(repeaters inherit their failure law).\n\n";

  auto gateway_net = MakePaperNetwork();
  std::vector<RepeaterProfile> repeater_profiles;
  auto repeater_net = MakeRepeaterVariant(&repeater_profiles);
  if (!gateway_net.ok() || !repeater_net.ok()) {
    std::cerr << "network construction failed" << "\n";
    return 1;
  }

  TextTable table({"Config", "Policy", "Gateway hosts", "Repeaters",
                   "Repeater/Gateway"});
  int failures = 0;
  std::vector<ShapeCheck> checks;
  for (char label : std::string("AEF")) {
    const PaperConfiguration* config = nullptr;
    for (const auto& c : PaperConfigurations()) {
      if (c.label == label) config = &c;
    }
    std::map<std::string, double> gateway_u;
    std::map<std::string, double> repeater_u;
    for (int variant = 0; variant < 2; ++variant) {
      ExperimentSpec spec;
      if (variant == 0) {
        spec.topology = gateway_net->topology;
        spec.profiles = gateway_net->profiles;
      } else {
        spec.topology = repeater_net->topology;
        spec.profiles = repeater_net->profiles;
        spec.repeater_profiles = repeater_profiles;
      }
      spec.options = MakeOptions(args);
      std::vector<std::unique_ptr<ConsistencyProtocol>> protocols;
      for (const char* name : {"MCV", "LDV", "ODV"}) {
        protocols.push_back(
            MakeProtocolByName(name, spec.topology, config->placement)
                .MoveValue());
      }
      auto results = RunAvailabilityExperiment(spec, std::move(protocols));
      if (!results.ok()) {
        std::cerr << results.status() << "\n";
        return 1;
      }
      for (const PolicyResult& r : *results) {
        (variant == 0 ? gateway_u : repeater_u)[r.name] = r.unavailability;
      }
    }
    for (const char* name : {"MCV", "LDV", "ODV"}) {
      double g = gateway_u[name];
      double r = repeater_u[name];
      table.AddRow({std::string(1, label), name, TextTable::Fixed6(g),
                    TextTable::Fixed6(r),
                    g > 0 ? TextTable::Fixed(r / g, 2) : "-"});
    }
    table.AddRule();

    if (label == 'A' || label == 'E') {
      // No placement member sits behind a bridge: the bridging role is
      // irrelevant and the two variants see the identical sample path.
      checks.push_back(
          {std::string("config ") + label +
               ": bridging role irrelevant — variants identical",
           gateway_u["LDV"] == repeater_u["LDV"] &&
               gateway_u["MCV"] == repeater_u["MCV"]});
    }
    if (label == 'F') {
      // Wizard holds a copy AND bridges gremlin: coupling its failure to
      // a partition is what makes F hard. Decoupling must help every
      // policy.
      checks.push_back(
          {"config F: decoupling the bridge from the copy-holding site "
           "helps every policy",
           repeater_u["MCV"] < gateway_u["MCV"] &&
               repeater_u["LDV"] < gateway_u["LDV"] &&
               repeater_u["ODV"] < gateway_u["ODV"]});
    }
  }
  std::cout << table.ToString();
  failures += ReportShapeChecks(checks);
  return failures;
}

}  // namespace
}  // namespace bench
}  // namespace dynvote

int main(int argc, char** argv) {
  dynvote::bench::BenchArgs args = dynvote::bench::ParseArgs(argc, argv);
  if (args.years == 600.0) args.years = 400.0;
  return dynvote::bench::Run(args);
}
