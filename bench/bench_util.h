// Shared helpers for the benchmark binaries: command-line parsing for run
// length / seed, and the config × policy grid runner used by the Table 2
// and Table 3 reproductions.

#pragma once

#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/registry.h"
#include "model/export.h"
#include "model/experiment.h"
#include "model/replicated_experiment.h"
#include "model/site_profile.h"
#include "stats/table.h"

namespace dynvote {
namespace bench {

/// Run-length knobs shared by every bench binary.
struct BenchArgs {
  /// Measured years per configuration (split into `batches` batches).
  double years = 600.0;
  int batches = 30;
  std::uint64_t seed = 20260704;
  /// Configuration labels to run (Table 2 rows).
  std::string configs = "ABCDEFGH";
  bool verbose = false;
  /// If non-empty, also write results as CSV to this path.
  std::string csv_path;
  /// Independent replications per configuration (>= 1). With more than
  /// one, tables show cross-replication means and the CI column becomes
  /// the cross-replication Student-t interval.
  int reps = 1;
  /// Worker threads for the replications (0 = all cores). Never changes
  /// results, only wall-clock time.
  int jobs = 1;
  /// Grant-decision memoization (--no-quorum-cache disables). Never
  /// changes results, only wall-clock time.
  bool quorum_cache = true;
};

/// Parses --years=, --batches=, --seed=, --configs=, --reps=, --jobs=,
/// --verbose from argv. Unknown flags (including google-benchmark's) are
/// ignored.
inline BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto value_of = [&a](const std::string& prefix) -> std::string {
      return a.substr(prefix.size());
    };
    if (a.rfind("--years=", 0) == 0) {
      args.years = std::stod(value_of("--years="));
    } else if (a.rfind("--batches=", 0) == 0) {
      args.batches = std::stoi(value_of("--batches="));
    } else if (a.rfind("--seed=", 0) == 0) {
      args.seed = std::stoull(value_of("--seed="));
    } else if (a.rfind("--configs=", 0) == 0) {
      args.configs = value_of("--configs=");
    } else if (a.rfind("--csv=", 0) == 0) {
      args.csv_path = value_of("--csv=");
    } else if (a.rfind("--reps=", 0) == 0) {
      args.reps = std::stoi(value_of("--reps="));
    } else if (a.rfind("--jobs=", 0) == 0) {
      args.jobs = std::stoi(value_of("--jobs="));
    } else if (a == "--no-quorum-cache") {
      args.quorum_cache = false;
    } else if (a == "--verbose") {
      args.verbose = true;
    }
  }
  if (args.reps < 1) {
    std::cerr << "--reps must be >= 1" << std::endl;
    std::exit(1);
  }
  if (args.jobs < 0) {
    std::cerr << "--jobs must be >= 0 (0 = all cores)" << std::endl;
    std::exit(1);
  }
  return args;
}

/// Builds paper-style experiment options from bench args.
inline ExperimentOptions MakeOptions(const BenchArgs& args) {
  ExperimentOptions options;
  options.warmup = Days(360);
  options.num_batches = args.batches;
  options.batch_length = Years(args.years / args.batches);
  options.access.rate_per_day = 1.0;  // the paper's one access per day
  options.access.write_fraction = 0.5;
  options.seed = args.seed;
  options.quorum_cache = args.quorum_cache;
  return options;
}

/// Results of the full config × policy grid.
struct GridResults {
  // key: config label, value: per-policy results (paper column order).
  std::map<char, std::vector<PolicyResult>> by_config;
};

/// Runs the paper's six policies over the requested configurations with
/// common random numbers per configuration. With --reps=N > 1 each
/// configuration runs N independent replications (fanned out over --jobs
/// threads) and the table rows carry cross-replication means with
/// Student-t CIs instead of single-run batch means. Exits the process on
/// error (bench binaries have no meaningful recovery).
inline GridResults RunPaperGrid(const BenchArgs& args) {
  GridResults grid;
  ExperimentOptions options = MakeOptions(args);
  ReplicationOptions replication;
  replication.replications = args.reps;
  replication.jobs = args.jobs;
  for (char label : args.configs) {
    auto results = RunReplicatedPaperExperiment(label, PaperProtocolNames(),
                                                options, replication);
    if (!results.ok()) {
      std::cerr << "config " << label << ": " << results.status()
                << std::endl;
      std::exit(1);
    }
    grid.by_config[label] = MeanPolicyResults(*results);
  }
  return grid;
}

/// Flattens a grid into labelled rows and, if requested, writes CSV.
inline void MaybeWriteCsv(const BenchArgs& args, const GridResults& grid) {
  if (args.csv_path.empty()) return;
  std::vector<LabeledResult> rows;
  for (const auto& [label, row] : grid.by_config) {
    for (const PolicyResult& r : row) {
      rows.push_back(LabeledResult{std::string(1, label), r});
    }
  }
  Status st = WriteFile(args.csv_path, ResultsToCsv(rows));
  if (!st.ok()) {
    std::cerr << "csv export failed: " << st << std::endl;
  } else {
    std::cout << "\nwrote " << rows.size() << " rows to " << args.csv_path
              << "\n";
  }
}

/// One shape expectation: "measured[a] relation measured[b]".
struct ShapeCheck {
  std::string description;
  bool passed;
};

inline int ReportShapeChecks(const std::vector<ShapeCheck>& checks) {
  int failures = 0;
  std::cout << "\nShape checks (paper section 4 findings):\n";
  for (const ShapeCheck& c : checks) {
    std::cout << "  [" << (c.passed ? "PASS" : "FAIL") << "] "
              << c.description << "\n";
    if (!c.passed) ++failures;
  }
  std::cout << (failures == 0 ? "All shape checks passed.\n"
                              : "Some shape checks FAILED.\n");
  return failures;
}

/// Finds the result of `policy` in a config row.
inline const PolicyResult& ResultOf(const std::vector<PolicyResult>& row,
                                    const std::string& policy) {
  for (const PolicyResult& r : row) {
    if (r.name == policy) return r;
  }
  std::cerr << "policy " << policy << " missing from results" << std::endl;
  std::exit(1);
}

}  // namespace bench
}  // namespace dynvote
