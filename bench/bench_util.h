// Shared helpers for the benchmark binaries: command-line parsing for run
// length / seed, and the config × policy grid runner used by the Table 2
// and Table 3 reproductions. Implementations live in bench_util.cc so
// this header stays free of <iostream> (lint rule iostream-header).

#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "model/experiment.h"

namespace dynvote {
namespace bench {

// ---------------------------------------------------------------------
// Minimum-of-rounds microbenchmark estimator.
//
// On a shared machine a single long timed run folds whatever load
// coincided with it straight into the reported number — and into any
// ratio a CI gate checks. Instead: calibrate a round length once (double
// the iteration count until a round takes >= min_ms / 4), run a fixed
// number of rounds, and report the fastest round's ns/op. The minimum is
// the standard least-interference estimator for benchmarks whose true
// cost is a lower bound plus nonnegative noise (medians still carry
// whatever load coincided with most rounds). The paired variant
// alternates the two sides inside every round, swapping the order round
// by round, so slow drift cancels out of the ratio instead of biasing
// one side.
// ---------------------------------------------------------------------

/// One estimator result: best-round ns per iteration, total iterations.
struct RoundsResult {
  double ns_per_op = 0.0;
  std::uint64_t ops = 0;
};

/// Rounds per measurement. Odd, so the paired variant runs both
/// orderings an almost-equal number of times.
inline constexpr int kBenchRounds = 7;

namespace internal {
template <typename Body>
double TimeOnceMs(Body&& body, std::uint64_t iters) {
  auto t0 = std::chrono::steady_clock::now();
  body(iters);
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}
}  // namespace internal

/// Doubles the iteration count until one body(iters) call takes at least
/// min_ms / 4 (so kBenchRounds rounds cost a small multiple of min_ms).
/// The calibration runs double as cache/branch-predictor warmup.
template <typename Body>
std::uint64_t CalibrateRoundIters(double min_ms, Body&& body) {
  std::uint64_t iters = 1;
  for (;;) {
    double ms = internal::TimeOnceMs(body, iters);
    if (ms >= min_ms / 4.0 || iters >= (std::uint64_t{1} << 32)) {
      return iters;
    }
    iters *= (ms <= min_ms / 64.0) ? 8 : 2;
  }
}

/// Min-of-rounds measurement of one body.
template <typename Body>
RoundsResult MeasureMinOfRounds(double min_ms, Body&& body) {
  const std::uint64_t iters = CalibrateRoundIters(min_ms, body);
  double best_ms = internal::TimeOnceMs(body, iters);
  for (int r = 1; r < kBenchRounds; ++r) {
    best_ms = std::min(best_ms, internal::TimeOnceMs(body, iters));
  }
  return {best_ms * 1e6 / static_cast<double>(iters), iters * kBenchRounds};
}

/// Paired min-of-rounds: measures `a` and `b` in alternating order
/// within each round. Calibrates the round length on `a`; both sides run
/// the same iteration count, so their ns/op are directly comparable.
template <typename BodyA, typename BodyB>
std::pair<RoundsResult, RoundsResult> MeasurePairedMinOfRounds(
    double min_ms, BodyA&& a, BodyB&& b) {
  const std::uint64_t iters = CalibrateRoundIters(min_ms, a);
  double best_a = -1.0;
  double best_b = -1.0;
  for (int r = 0; r < kBenchRounds; ++r) {
    double ms_a;
    double ms_b;
    if (r % 2 == 0) {
      ms_a = internal::TimeOnceMs(a, iters);
      ms_b = internal::TimeOnceMs(b, iters);
    } else {
      ms_b = internal::TimeOnceMs(b, iters);
      ms_a = internal::TimeOnceMs(a, iters);
    }
    best_a = best_a < 0.0 ? ms_a : std::min(best_a, ms_a);
    best_b = best_b < 0.0 ? ms_b : std::min(best_b, ms_b);
  }
  const double scale = 1e6 / static_cast<double>(iters);
  const std::uint64_t ops = iters * kBenchRounds;
  return {{best_a * scale, ops}, {best_b * scale, ops}};
}

/// Run-length knobs shared by every bench binary.
struct BenchArgs {
  /// Measured years per configuration (split into `batches` batches).
  double years = 600.0;
  int batches = 30;
  std::uint64_t seed = 20260704;
  /// Configuration labels to run (Table 2 rows).
  std::string configs = "ABCDEFGH";
  bool verbose = false;
  /// If non-empty, also write results as CSV to this path.
  std::string csv_path;
  /// Independent replications per configuration (>= 1). With more than
  /// one, tables show cross-replication means and the CI column becomes
  /// the cross-replication Student-t interval.
  int reps = 1;
  /// Worker threads for the replications (0 = all cores). Never changes
  /// results, only wall-clock time.
  int jobs = 1;
  /// Grant-decision memoization (--no-quorum-cache disables). Never
  /// changes results, only wall-clock time.
  bool quorum_cache = true;
};

/// Parses --years=, --batches=, --seed=, --configs=, --reps=, --jobs=,
/// --verbose from argv. Unknown flags (including google-benchmark's) are
/// ignored. Exits the process on invalid values.
BenchArgs ParseArgs(int argc, char** argv);

/// Builds paper-style experiment options from bench args.
ExperimentOptions MakeOptions(const BenchArgs& args);

/// Results of the full config × policy grid.
struct GridResults {
  // key: config label, value: per-policy results (paper column order).
  std::map<char, std::vector<PolicyResult>> by_config;
};

/// Runs the paper's six policies over the requested configurations with
/// common random numbers per configuration. With --reps=N > 1 each
/// configuration runs N independent replications (fanned out over --jobs
/// threads) and the table rows carry cross-replication means with
/// Student-t CIs instead of single-run batch means. Exits the process on
/// error (bench binaries have no meaningful recovery).
GridResults RunPaperGrid(const BenchArgs& args);

/// Flattens a grid into labelled rows and, if requested, writes CSV.
void MaybeWriteCsv(const BenchArgs& args, const GridResults& grid);

/// One shape expectation: "measured[a] relation measured[b]".
struct ShapeCheck {
  std::string description;
  bool passed;
};

/// Prints the PASS/FAIL table and returns the number of failures.
int ReportShapeChecks(const std::vector<ShapeCheck>& checks);

/// Finds the result of `policy` in a config row; exits if missing.
const PolicyResult& ResultOf(const std::vector<PolicyResult>& row,
                             const std::string& policy);

}  // namespace bench
}  // namespace dynvote
