// Shared helpers for the benchmark binaries: command-line parsing for run
// length / seed, and the config × policy grid runner used by the Table 2
// and Table 3 reproductions. Implementations live in bench_util.cc so
// this header stays free of <iostream> (lint rule iostream-header).

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "model/experiment.h"

namespace dynvote {
namespace bench {

/// Run-length knobs shared by every bench binary.
struct BenchArgs {
  /// Measured years per configuration (split into `batches` batches).
  double years = 600.0;
  int batches = 30;
  std::uint64_t seed = 20260704;
  /// Configuration labels to run (Table 2 rows).
  std::string configs = "ABCDEFGH";
  bool verbose = false;
  /// If non-empty, also write results as CSV to this path.
  std::string csv_path;
  /// Independent replications per configuration (>= 1). With more than
  /// one, tables show cross-replication means and the CI column becomes
  /// the cross-replication Student-t interval.
  int reps = 1;
  /// Worker threads for the replications (0 = all cores). Never changes
  /// results, only wall-clock time.
  int jobs = 1;
  /// Grant-decision memoization (--no-quorum-cache disables). Never
  /// changes results, only wall-clock time.
  bool quorum_cache = true;
};

/// Parses --years=, --batches=, --seed=, --configs=, --reps=, --jobs=,
/// --verbose from argv. Unknown flags (including google-benchmark's) are
/// ignored. Exits the process on invalid values.
BenchArgs ParseArgs(int argc, char** argv);

/// Builds paper-style experiment options from bench args.
ExperimentOptions MakeOptions(const BenchArgs& args);

/// Results of the full config × policy grid.
struct GridResults {
  // key: config label, value: per-policy results (paper column order).
  std::map<char, std::vector<PolicyResult>> by_config;
};

/// Runs the paper's six policies over the requested configurations with
/// common random numbers per configuration. With --reps=N > 1 each
/// configuration runs N independent replications (fanned out over --jobs
/// threads) and the table rows carry cross-replication means with
/// Student-t CIs instead of single-run batch means. Exits the process on
/// error (bench binaries have no meaningful recovery).
GridResults RunPaperGrid(const BenchArgs& args);

/// Flattens a grid into labelled rows and, if requested, writes CSV.
void MaybeWriteCsv(const BenchArgs& args, const GridResults& grid);

/// One shape expectation: "measured[a] relation measured[b]".
struct ShapeCheck {
  std::string description;
  bool passed;
};

/// Prints the PASS/FAIL table and returns the number of failures.
int ReportShapeChecks(const std::vector<ShapeCheck>& checks);

/// Finds the result of `policy` in a config row; exits if missing.
const PolicyResult& ResultOf(const std::vector<PolicyResult>& row,
                             const std::string& policy);

}  // namespace bench
}  // namespace dynvote
