// E9: the message-traffic argument of Section 2.1 — the optimistic
// algorithms have "much the same message traffic overhead as majority
// consensus voting", while the instantaneous-information algorithms pay
// for their connection vector on every change of network status. This
// bench reports messages per granted access and per simulated year, by
// kind, for all six policies — configuration B by default, or each
// configuration named in --configs in turn.
//
// Flags: --years=N (default 200), --seed=N, --configs=B..H (every
// listed configuration is run)

#include <iostream>

#include "bench_util.h"
#include "core/registry.h"
#include "model/site_profile.h"
#include "stats/table.h"

namespace dynvote {
namespace bench {
namespace {

int RunConfig(const BenchArgs& args, char config) {
  ExperimentOptions options = MakeOptions(args);
  auto results = RunPaperExperiment(config, PaperProtocolNames(), options);
  if (!results.ok()) {
    std::cerr << results.status() << "\n";
    return 1;
  }

  std::cout << "=== Message overhead (configuration " << config << ", "
            << args.years << " years, 1 access/day) ===\n\n";

  TextTable table({"Policy", "ctrl msgs/access", "refresh msgs/day",
                   "file copies", "total msgs"});
  double mcv_per_access = 0.0;
  double odv_per_access = 0.0;
  double ldv_refresh = 0.0;
  double odv_refresh = 0.0;
  for (const PolicyResult& r : *results) {
    double per_access =
        r.accesses_attempted > 0
            ? static_cast<double>(r.messages.ControlTotal() -
                                  r.messages.count(
                                      MessageKind::kInstantRefresh))
                  / r.accesses_attempted
            : 0.0;
    double refresh_per_day =
        static_cast<double>(r.messages.count(MessageKind::kInstantRefresh)) /
        (args.years * 365.0);
    if (r.name == "MCV") mcv_per_access = per_access;
    if (r.name == "ODV") {
      odv_per_access = per_access;
      odv_refresh = refresh_per_day;
    }
    if (r.name == "LDV") ldv_refresh = refresh_per_day;
    table.AddRow({r.name, TextTable::Fixed(per_access, 2),
                  TextTable::Fixed(refresh_per_day, 2),
                  std::to_string(r.messages.count(MessageKind::kFileCopy)),
                  std::to_string(r.messages.Total())});
  }
  std::cout << table.ToString();

  // Multi-file amortisation: the connection-vector cost is *per file* —
  // a server holding many replicated files pays it for each, which is
  // [BMP87]'s practicality complaint. Simulate K independent files (same
  // placement) and compare total refresh traffic.
  std::cout << "\nMulti-file refresh traffic (configuration " << config
            << ", " << TextTable::Fixed(args.years / 4, 0)
            << " years):\n";
  TextTable multi({"Files", "LDV refresh msgs", "ODV refresh msgs",
                   "LDV refresh msgs/file/day"});
  auto network = MakePaperNetwork();
  const PaperConfiguration* pc = nullptr;
  for (const auto& c : PaperConfigurations()) {
    if (c.label == config) pc = &c;
  }
  bool amortisation_linear = true;
  double per_file_per_day_at_1 = 0.0;
  for (int files : {1, 4, 16}) {
    ExperimentSpec spec;
    spec.topology = network->topology;
    spec.profiles = network->profiles;
    spec.options = MakeOptions(args);
    spec.options.batch_length = Years(args.years / 4 / 10);
    spec.options.num_batches = 10;
    std::vector<std::unique_ptr<ConsistencyProtocol>> protocols;
    for (int f = 0; f < files; ++f) {
      protocols.push_back(
          MakeProtocolByName("LDV", network->topology, pc->placement)
              .MoveValue());
    }
    for (int f = 0; f < files; ++f) {
      protocols.push_back(
          MakeProtocolByName("ODV", network->topology, pc->placement)
              .MoveValue());
    }
    auto multi_results =
        RunAvailabilityExperiment(spec, std::move(protocols));
    if (!multi_results.ok()) {
      std::cerr << multi_results.status() << "\n";
      return 1;
    }
    std::uint64_t ldv_total = 0;
    std::uint64_t odv_total = 0;
    for (int f = 0; f < files; ++f) {
      ldv_total +=
          (*multi_results)[f].messages.count(MessageKind::kInstantRefresh);
      odv_total += (*multi_results)[files + f].messages.count(
          MessageKind::kInstantRefresh);
    }
    double days = args.years / 4 * 365.0;
    double per_file_per_day = ldv_total / days / files;
    if (files == 1) {
      per_file_per_day_at_1 = per_file_per_day;
    } else if (per_file_per_day < 0.9 * per_file_per_day_at_1 ||
               per_file_per_day > 1.1 * per_file_per_day_at_1) {
      amortisation_linear = false;
    }
    multi.AddRow({std::to_string(files), std::to_string(ldv_total),
                  std::to_string(odv_total),
                  TextTable::Fixed(per_file_per_day, 2)});
  }
  std::cout << multi.ToString();

  std::vector<ShapeCheck> checks = {
      {"ODV per-access control traffic within 25% of MCV's (the paper's "
       "\"much the same overhead\")",
       odv_per_access <= 1.25 * mcv_per_access},
      {"ODV needs no connection-vector refresh traffic at all",
       odv_refresh == 0.0},
      {"LDV pays refresh traffic continuously (> 0 messages/day)",
       ldv_refresh > 0.0},
      {"the connection-vector cost scales linearly with the number of "
       "replicated files ([BMP87]'s practicality complaint)",
       amortisation_linear},
  };
  return ReportShapeChecks(checks);
}

int Run(const BenchArgs& args) {
  // The shared default configs string means "no --configs given"; this
  // bench historically reports configuration B alone. An explicit
  // --configs=C (or =CDE) runs exactly the configurations named — the
  // old code took the first letter and then silently remapped it to B.
  std::string configs =
      args.configs.empty() || args.configs == "ABCDEFGH" ? "B" : args.configs;
  int rc = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (i > 0) std::cout << "\n";
    rc |= RunConfig(args, configs[i]);
  }
  return rc;
}

}  // namespace
}  // namespace bench
}  // namespace dynvote

int main(int argc, char** argv) {
  dynvote::bench::BenchArgs args = dynvote::bench::ParseArgs(argc, argv);
  if (args.years == 600.0) args.years = 200.0;
  return dynvote::bench::Run(args);
}
