// E4 (ablation): the optimism trade-off. Optimistic Dynamic Voting
// exchanges state only at access time, so its quorums go stale between
// accesses; the paper measures it at one access per day and argues it
// converges to LDV as accesses become frequent and degrades toward a
// static scheme as they become rare. This bench sweeps the access rate
// over three orders of magnitude for three copy placements and prints
// ODV/OTDV unavailability next to the LDV/TDV (instantaneous) and MCV
// (never-updates) anchors.
//
// Flags: --years=N (default 400), --seed=N, --configs= (default BFH),
// --reps=N, --jobs=M

#include <iostream>

#include "bench_util.h"
#include "core/registry.h"
#include "model/replicated_experiment.h"
#include "stats/table.h"

namespace dynvote {
namespace bench {
namespace {

int Run(BenchArgs args) {
  if (args.configs == "ABCDEFGH") args.configs = "BFH";
  const double rates[] = {1.0 / 32, 1.0 / 8, 1.0 / 2,
                          1.0,      4.0,     16.0, 64.0};

  std::cout << "=== Access-rate sweep: optimism vs staleness ===\n"
            << "ODV/OTDV state freshness is bounded by the access rate;\n"
            << "LDV/TDV and MCV anchor the two extremes.\n\n";

  int failures = 0;
  for (char config : args.configs) {
    TextTable table({"Accesses/day", "MCV", "LDV", "ODV", "TDV", "OTDV"});
    double odv_slowest = -1.0;
    double odv_fastest = -1.0;
    double ldv_at_fastest = -1.0;
    for (double rate : rates) {
      ExperimentOptions options = MakeOptions(args);
      options.access.rate_per_day = rate;
      ReplicationOptions replication;
      replication.replications = args.reps;
      replication.jobs = args.jobs;
      auto replicated = RunReplicatedPaperExperiment(
          config, PaperProtocolNames(), options, replication);
      if (!replicated.ok()) {
        std::cerr << replicated.status() << "\n";
        return 1;
      }
      std::vector<PolicyResult> results = MeanPolicyResults(*replicated);
      auto u = [&](const std::string& name) {
        return ResultOf(results, name).unavailability;
      };
      table.AddRow({TextTable::Fixed(rate, 4), TextTable::Fixed6(u("MCV")),
                    TextTable::Fixed6(u("LDV")),
                    TextTable::Fixed6(u("ODV")),
                    TextTable::Fixed6(u("TDV")),
                    TextTable::Fixed6(u("OTDV"))});
      if (rate == rates[0]) odv_slowest = u("ODV");
      if (rate == rates[6]) {
        odv_fastest = u("ODV");
        ldv_at_fastest = u("LDV");
      }
    }
    std::cout << "Configuration " << config << ":\n"
              << table.ToString() << "\n";

    std::vector<ShapeCheck> checks = {
        {std::string("config ") + config +
             ": frequent accesses bring ODV toward LDV (within 3x or "
             "3e-4 absolute at 64/day; exact equality holds only in the "
             "access-per-event limit, see OptimismLimitTest)",
         odv_fastest <= 3.0 * ldv_at_fastest + 3e-4},
        {std::string("config ") + config +
             ": rare accesses cost ODV availability (1/32 per day worse "
             "than 64 per day, or both negligible)",
         odv_slowest >= odv_fastest || odv_slowest < 1e-4},
    };
    failures += ReportShapeChecks(checks);
    std::cout << "\n";
  }
  return failures;
}

}  // namespace
}  // namespace bench
}  // namespace dynvote

int main(int argc, char** argv) {
  dynvote::bench::BenchArgs args = dynvote::bench::ParseArgs(argc, argv);
  if (args.years == 600.0) args.years = 400.0;
  return dynvote::bench::Run(args);
}
