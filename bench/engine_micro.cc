// E10: google-benchmark micro-benchmarks of the substrates — event queue
// throughput, connectivity queries, the quorum test, and a full
// simulated-year of the paper experiment — so performance regressions in
// the simulator itself are visible.

#include <benchmark/benchmark.h>

#include "core/quorum.h"
#include "core/registry.h"
#include "model/experiment.h"
#include "model/site_profile.h"
#include "net/network_state.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace dynvote {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(42);
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < batch; ++i) {
      q.Schedule(rng.NextDouble() * 1000.0, [](SimTime) {});
    }
    while (!q.Empty()) q.RunNext();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void BM_EventQueueWithCancellation(benchmark::State& state) {
  Rng rng(43);
  for (auto _ : state) {
    EventQueue q;
    std::vector<EventId> ids;
    for (int i = 0; i < 10000; ++i) {
      ids.push_back(q.Schedule(rng.NextDouble() * 1000.0, [](SimTime) {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) q.Cancel(ids[i]);
    while (!q.Empty()) q.RunNext();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueWithCancellation);

void BM_ConnectivityComponents(benchmark::State& state) {
  auto paper = MakePaperNetwork();
  NetworkState net(paper->topology);
  net.SetSiteUp(3, false);  // partition in place
  Rng rng(44);
  for (auto _ : state) {
    // Flip one site to invalidate the cache, then query.
    SiteId s = static_cast<SiteId>(rng.NextBounded(8));
    net.SetSiteUp(s, !net.IsSiteUp(s));
    benchmark::DoNotOptimize(net.Components());
  }
}
BENCHMARK(BM_ConnectivityComponents);

void BM_QuorumEvaluation(benchmark::State& state) {
  auto paper = MakePaperNetwork();
  auto store = ReplicaStore::Make(SiteSet{0, 1, 3, 5}).MoveValue();
  store.Commit(SiteSet{0, 1}, 5, 3, SiteSet{0, 1});
  const Topology* topo =
      state.range(0) == 1 ? paper->topology.get() : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateDynamicQuorum(
        store, SiteSet{0, 1, 2, 3, 4}, TieBreak::kLexicographic, topo));
  }
}
BENCHMARK(BM_QuorumEvaluation)->Arg(0)->Arg(1);  // plain vs topological

void BM_PaperExperimentYear(benchmark::State& state) {
  // One simulated year of configuration B with all six policies: the
  // inner loop of every table bench.
  ExperimentOptions options;
  options.warmup = Days(0);
  options.num_batches = 1;
  options.batch_length = Years(1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    auto results = RunPaperExperiment('B', PaperProtocolNames(), options);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_PaperExperimentYear)->Unit(benchmark::kMillisecond);

void BM_SiteSetOps(benchmark::State& state) {
  Rng rng(45);
  SiteSet a = SiteSet::FromMask(rng.Next());
  SiteSet b = SiteSet::FromMask(rng.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Union(b).Intersect(a).Minus(b).Size());
    benchmark::DoNotOptimize(a.RankMax());
  }
}
BENCHMARK(BM_SiteSetOps);

}  // namespace
}  // namespace dynvote

BENCHMARK_MAIN();
