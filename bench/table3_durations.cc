// Reproduces Table 3 of the paper: mean duration (in days) of the periods
// during which the replicated file was unavailable, for configurations
// A-H under all six policies. Entries that were never unavailable print
// "-", as in the paper (configuration E under TDV/OTDV).
//
// Flags: --years=N (default 600), --batches=N, --seed=N, --configs=ABC...

#include <iostream>

#include "bench_util.h"
#include "stats/table.h"

namespace dynvote {
namespace bench {
namespace {

int Run(const BenchArgs& args) {
  std::cout << "=== Table 3: Mean Duration of Unavailable Periods (days) "
               "===\n"
            << "network: 8 sites, 3 segments (Figure 8); " << args.years
            << " measured years/config, 1 access/day\n\n";

  GridResults grid = RunPaperGrid(args);
  MaybeWriteCsv(args, grid);

  TextTable table(
      {"Config", "Policy", "Measured", "Periods", "Paper", "x Paper"});
  for (const auto& [label, row] : grid.by_config) {
    for (const PolicyResult& r : row) {
      double measured = r.num_unavailable_periods == 0
                            ? -1.0
                            : r.mean_unavailable_duration;
      double paper = PaperTable3Value(label, r.name);
      std::string ratio = "-";
      if (paper > 0.0 && measured > 0.0) {
        ratio = TextTable::Fixed(measured / paper, 2);
      }
      table.AddRow({std::string(1, label), r.name,
                    TextTable::Fixed6(measured),
                    std::to_string(r.num_unavailable_periods),
                    TextTable::Fixed6(paper), ratio});
    }
    table.AddRule();
  }
  std::cout << table.ToString();

  auto dur = [&](char config, const std::string& policy) {
    const PolicyResult& r = ResultOf(grid.by_config.at(config), policy);
    return r.num_unavailable_periods == 0 ? -1.0
                                          : r.mean_unavailable_duration;
  };
  auto have = [&](char c) { return grid.by_config.count(c) > 0; };

  std::vector<ShapeCheck> checks;
  if (have('D')) {
    // Config D outages are dominated by the weeks-long hardware repairs
    // of gremlin/rip/mangle: outage durations in days, not hours.
    checks.push_back({"config D outages last days (all policies > 1 day)",
                      dur('D', "MCV") > 1.0 && dur('D', "LDV") > 1.0 &&
                          dur('D', "TDV") > 1.0});
  }
  if (have('A')) {
    checks.push_back({"config A outages last hours, not days (< 0.5 day "
                      "for MCV/LDV/ODV)",
                      dur('A', "MCV") < 0.5 && dur('A', "LDV") < 0.5 &&
                          dur('A', "ODV") < 0.5});
  }
  if (have('F')) {
    checks.push_back({"DV's config F outages last ~the gateway repair "
                      "time (> 10x MCV's)",
                      dur('F', "DV") > 10.0 * dur('F', "MCV")});
  }
  if (have('C')) {
    checks.push_back({"config C: TDV == LDV and OTDV == ODV exactly "
                      "(no co-segment copies)",
                      dur('C', "TDV") == dur('C', "LDV") &&
                          dur('C', "OTDV") == dur('C', "ODV")});
  }
  if (have('E')) {
    const PolicyResult& tdv = ResultOf(grid.by_config.at('E'), "TDV");
    checks.push_back(
        {"config E: TDV/OTDV rarely or never unavailable (paper prints "
         "'-')",
         tdv.num_unavailable_periods <= 2});
  }
  return ReportShapeChecks(checks);
}

}  // namespace
}  // namespace bench
}  // namespace dynvote

int main(int argc, char** argv) {
  return dynvote::bench::Run(dynvote::bench::ParseArgs(argc, argv));
}
