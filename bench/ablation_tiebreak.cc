// E6 (ablation): what the lexicographic tie-break is worth, and how much
// the *choice of ordering* matters. Jajodia's rule awards ties to the
// group holding the maximum element; since site reliabilities differ by
// orders of magnitude (Table 1), ranking a reliable site first should
// beat ranking a flaky one first. We emulate different orderings by
// giving the intended maximum element a marginally heavier vote (the
// classic weight-assignment encoding of a static preference), which
// shifts every tie toward it without changing any strict majority.
//
// Flags: --years=N (default 400), --seed=N, --configs= (default FH)

#include <iostream>

#include "bench_util.h"
#include "core/registry.h"
#include "model/site_profile.h"
#include "stats/table.h"
#include "core/dynamic_voting.h"

namespace dynvote {
namespace bench {
namespace {

// Builds an LDV variant whose ties favour `preferred` via weights 2 on it
// and 2 on everyone else *except* one site at weight 1... simpler: the
// lexicographic rule already favours the lowest id, so to prefer another
// site we rely on weights: preferred gets 3 votes, others 2 — every tie
// (equal weight halves) becomes impossible and near-ties resolve toward
// the preferred site, approximating a reordering.
Result<std::unique_ptr<ConsistencyProtocol>> MakePreferring(
    std::shared_ptr<const Topology> topo, SiteSet placement,
    SiteId preferred, const std::string& name) {
  std::vector<int> weights(8, 2);
  weights[preferred] = 3;
  DynamicVotingOptions options;
  auto w = VoteWeights::Make(weights);
  if (!w.ok()) return w.status();
  options.weights = *w;
  options.tie_break = TieBreak::kLexicographic;
  options.name = name;
  auto dv = DynamicVoting::Make(std::move(topo), placement, options);
  if (!dv.ok()) return dv.status();
  return std::unique_ptr<ConsistencyProtocol>(dv.MoveValue());
}

int Run(BenchArgs args) {
  if (args.configs == "ABCDEFGH") args.configs = "FH";
  auto network = MakePaperNetwork();
  if (!network.ok()) {
    std::cerr << network.status() << "\n";
    return 1;
  }

  std::cout << "=== Tie-break ablation ===\n"
            << "DV (no tie-break) vs LDV (max-element rule) vs weighted "
               "variants preferring the most / least reliable copy.\n\n";

  int failures = 0;
  for (char label : args.configs) {
    const PaperConfiguration* config = nullptr;
    for (const auto& c : PaperConfigurations()) {
      if (c.label == label) config = &c;
    }
    if (config == nullptr) continue;

    // Most reliable member: lowest id (csvax/beowulf end of Table 1);
    // least reliable: highest id (the 50-day/2-week machines).
    SiteId best = config->placement.RankMax();
    SiteId worst = config->placement.RankMin();

    ExperimentSpec spec;
    spec.topology = network->topology;
    spec.profiles = network->profiles;
    spec.options = MakeOptions(args);

    std::vector<std::unique_ptr<ConsistencyProtocol>> protocols;
    for (const std::string& name : {std::string("DV"), std::string("LDV")}) {
      protocols.push_back(
          MakeProtocolByName(name, network->topology, config->placement)
              .MoveValue());
    }
    auto pref_best = MakePreferring(network->topology, config->placement,
                                    best, "LDV-pref-reliable");
    auto pref_worst = MakePreferring(network->topology, config->placement,
                                     worst, "LDV-pref-flaky");
    if (!pref_best.ok() || !pref_worst.ok()) {
      std::cerr << "weighted construction failed" << "\n";
      return 1;
    }
    protocols.push_back(pref_best.MoveValue());
    protocols.push_back(pref_worst.MoveValue());

    auto results = RunAvailabilityExperiment(spec, std::move(protocols));
    if (!results.ok()) {
      std::cerr << results.status() << "\n";
      return 1;
    }

    TextTable table({"Policy", "Unavailability", "95% CI ±", "Periods"});
    for (const PolicyResult& r : *results) {
      table.AddRow({r.name, TextTable::Fixed6(r.unavailability),
                    TextTable::Fixed6(r.stats.ci95_halfwidth),
                    std::to_string(r.num_unavailable_periods)});
    }
    std::cout << "Configuration " << label << " (copies "
              << config->description << "):\n"
              << table.ToString() << "\n";

    double dv = ResultOf(*results, "DV").unavailability;
    double ldv = ResultOf(*results, "LDV").unavailability;
    double pref_reliable =
        ResultOf(*results, "LDV-pref-reliable").unavailability;
    double pref_flaky = ResultOf(*results, "LDV-pref-flaky").unavailability;
    std::vector<ShapeCheck> checks = {
        {std::string("config ") + label +
             ": any tie-break beats none (LDV < DV)",
         ldv < dv},
        {std::string("config ") + label +
             ": the ordering matters — preferring the most reliable copy "
             "is no worse than preferring the flakiest",
         pref_reliable <= pref_flaky + 1e-6},
    };
    failures += ReportShapeChecks(checks);
    std::cout << "\n";
  }
  return failures;
}

}  // namespace
}  // namespace bench
}  // namespace dynvote

int main(int argc, char** argv) {
  dynvote::bench::BenchArgs args = dynvote::bench::ParseArgs(argc, argv);
  if (args.years == 600.0) args.years = 400.0;
  return dynvote::bench::Run(args);
}
