// Microbenchmark of the simulation hot path — connectivity refresh,
// quorum evaluation and the per-event sample/quorum loop — measured
// before vs. after the cached-connectivity / memoized-decision overhaul.
//
// "Before" is reproduced two ways: the pre-overhaul NetworkState and
// topological-closure algorithms are embedded here verbatim as Legacy*
// reference implementations, and the decision memoization is toggled off
// through the same escape hatch as --no-quorum-cache. Either way the
// outputs are identical (asserted by tests); only the time changes.
//
// Results are written to BENCH_hotpath.json (override with --out=PATH) in
// a stable schema so successive PRs can track the perf trajectory:
//
//   {
//     "schema": "dynvote-hotpath-bench-v1",
//     "unit": "ns_per_op",
//     "benchmarks": [
//       {"name": "...", "ns_per_op": N, "ops": N,
//        "baseline": "legacy" | "no-cache" | "trace-off" | "solo-seq",
//        "baseline_ns_per_op": N, "speedup": N},
//       ...
//     ]
//   }
//
// Every entry carries ns_per_op; paired entries also carry their
// baseline's ns_per_op and the speedup ratio. New benchmarks may be
// appended, but existing names and fields must keep their meaning.
//
// All measurements use the min-of-rounds estimator from bench_util.h;
// entries whose speedup a CI gate checks measure both sides in
// alternating paired rounds so scheduling drift cancels out of the
// ratio.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/quorum.h"
#include "core/registry.h"
#include "model/batched_experiment.h"
#include "model/experiment.h"
#include "model/site_profile.h"
#include "net/network_state.h"
#include "obs/async_writer.h"
#include "obs/binary_trace.h"
#include "obs/context.h"
#include "obs/schemas.h"
#include "obs/trace_sink.h"
#include "util/rng.h"
#include "util/site_set.h"

namespace dynvote {
namespace {

// ---------------------------------------------------------------------
// Legacy reference implementations (the seed's algorithms, kept verbatim
// so the before/after comparison stays honest as the library evolves).
// ---------------------------------------------------------------------

/// The pre-overhaul NetworkState: vector<bool> site state, union-find
/// rebuilt lazily, and a fresh vector allocated by every Components()
/// and ComponentOf() call.
class LegacyNetworkState {
 public:
  explicit LegacyNetworkState(std::shared_ptr<const Topology> topology)
      : topology_(std::move(topology)) {
    site_up_.assign(topology_->num_sites(), true);
    repeater_up_.assign(topology_->num_repeaters(), true);
    segment_root_.assign(topology_->num_segments(), 0);
  }

  void SetSiteUp(SiteId site, bool up) {
    if (site_up_[site] != up) {
      site_up_[site] = up;
      dirty_ = true;
    }
  }

  bool IsSiteUp(SiteId site) const { return site_up_[site]; }

  SiteSet ComponentOf(SiteId site) const {
    if (!site_up_[site]) return SiteSet();
    Refresh();
    int root = segment_root_[topology_->SegmentOf(site)];
    SiteSet component;
    for (SiteId s = 0; s < topology_->num_sites(); ++s) {
      if (site_up_[s] && segment_root_[topology_->SegmentOf(s)] == root) {
        component.Add(s);
      }
    }
    return component;
  }

  std::vector<SiteSet> Components() const {
    Refresh();
    std::vector<SiteSet> by_root(topology_->num_segments());
    for (SiteId s = 0; s < topology_->num_sites(); ++s) {
      if (site_up_[s]) {
        by_root[segment_root_[topology_->SegmentOf(s)]].Add(s);
      }
    }
    std::vector<SiteSet> out;
    for (const SiteSet& group : by_root) {
      if (!group.Empty()) out.push_back(group);
    }
    return out;
  }

 private:
  void Refresh() const {
    if (!dirty_) return;
    std::iota(segment_root_.begin(), segment_root_.end(), 0);
    for (const BridgeInfo& b : topology_->bridges()) {
      bool bridge_up = b.gateway_site.has_value()
                           ? site_up_[*b.gateway_site]
                           : repeater_up_[b.repeater];
      if (!bridge_up) continue;
      int ra = FindRoot(b.segment_a);
      int rb = FindRoot(b.segment_b);
      if (ra != rb) segment_root_[rb] = ra;
    }
    for (int seg = 0; seg < topology_->num_segments(); ++seg) {
      segment_root_[seg] = FindRoot(seg);
    }
    dirty_ = false;
  }

  int FindRoot(int segment) const {
    int root = segment;
    while (segment_root_[root] != root) root = segment_root_[root];
    while (segment_root_[segment] != root) {
      int next = segment_root_[segment];
      segment_root_[segment] = root;
      segment = next;
    }
    return root;
  }

  std::shared_ptr<const Topology> topology_;
  std::vector<bool> site_up_;
  std::vector<bool> repeater_up_;
  mutable std::vector<int> segment_root_;
  mutable bool dirty_ = true;
};

/// The pre-overhaul topological closure: the O(|Pm| * |active|) site-pair
/// loop that EvaluateDynamicQuorum used before per-segment mask unions.
SiteSet LegacyTopologicalClosure(const Topology& topology,
                                 SiteSet prev_partition,
                                 SiteSet reachable_copies) {
  SiteSet active_members = prev_partition.Intersect(reachable_copies);
  SiteSet closure;
  for (SiteId r : prev_partition) {
    for (SiteId s : active_members) {
      if (topology.SameSegment(r, s)) {
        closure.Add(r);
        break;
      }
    }
  }
  return closure;
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

struct BenchEntry {
  std::string name;
  double ns_per_op = 0.0;
  std::uint64_t ops = 0;
  // Empty baseline = standalone measurement.
  std::string baseline;
  double baseline_ns_per_op = 0.0;
};

/// Min-of-rounds measurement of a standalone body (bench_util.h).
template <typename Body>
BenchEntry Measure(const std::string& name, double min_ms, Body&& body) {
  bench::RoundsResult r = bench::MeasureMinOfRounds(min_ms, body);
  BenchEntry entry;
  entry.name = name;
  entry.ops = r.ops;
  entry.ns_per_op = r.ns_per_op;
  return entry;
}

/// Paired min-of-rounds measurement: `body` against the baseline it is
/// compared to, alternating within every round so the speedup the JSON
/// reports (and CI gates) is immune to slow machine drift.
template <typename Body, typename Baseline>
BenchEntry MeasurePaired(const std::string& name,
                         const std::string& baseline_name, double min_ms,
                         Body&& body, Baseline&& baseline) {
  auto [main_r, base_r] =
      bench::MeasurePairedMinOfRounds(min_ms, body, baseline);
  BenchEntry entry;
  entry.name = name;
  entry.ops = main_r.ops;
  entry.ns_per_op = main_r.ns_per_op;
  entry.baseline = baseline_name;
  entry.baseline_ns_per_op = base_r.ns_per_op;
  return entry;
}

/// The paper network with a five-copy placement (paper sites 1, 2, 4, 6,
/// 8): copies on every segment side of both repeaters, the configuration
/// that stresses components, closure and quorum paths together.
constexpr SiteSet kFiveCopyPlacement{0, 1, 3, 5, 7};

std::vector<std::unique_ptr<ConsistencyProtocol>> MakePaperProtocols(
    std::shared_ptr<const Topology> topology, SiteSet placement) {
  std::vector<std::unique_ptr<ConsistencyProtocol>> protocols;
  for (const std::string& name : PaperProtocolNames()) {
    auto p = MakeProtocolByName(name, topology, placement);
    if (!p.ok()) {
      std::cerr << "protocol " << name << ": " << p.status() << "\n";
      std::exit(1);
    }
    protocols.push_back(p.MoveValue());
  }
  return protocols;
}

/// One pass of experiment.cc's availability sample over every protocol
/// and every group of communicating sites. Returns the number of granted
/// (protocol, group) pairs so the work cannot be optimized away.
int SampleOnce(
    const NetworkState& net,
    const std::vector<std::unique_ptr<ConsistencyProtocol>>& protocols) {
  int granted = 0;
  for (const auto& protocol : protocols) {
    for (const SiteSet& group : net.Components()) {
      SiteSet copies = group.Intersect(protocol->placement());
      if (copies.Empty()) continue;
      if (protocol->CachedWouldGrant(net, copies.RankMax(),
                                     AccessType::kWrite)) {
        ++granted;
      }
    }
  }
  return granted;
}

// ---------------------------------------------------------------------
// Benchmarks
// ---------------------------------------------------------------------

/// Mutate-then-query connectivity: one site flip, then the component
/// list, the dominant pattern of the simulation's network events.
void BenchComponents(double min_ms, std::vector<BenchEntry>* out) {
  auto paper = MakePaperNetwork();
  const int num_sites = paper->topology->num_sites();

  NetworkState net(paper->topology);
  LegacyNetworkState legacy(paper->topology);
  std::uint64_t side_effect = 0;
  out->push_back(MeasurePaired(
      "components_after_flip", "legacy", min_ms,
      [&](std::uint64_t iters) {
        Rng rng(44);
        for (std::uint64_t i = 0; i < iters; ++i) {
          SiteId s = static_cast<SiteId>(rng.NextBounded(num_sites));
          net.SetSiteUp(s, !net.IsSiteUp(s));
          side_effect += net.Components().size();
        }
      },
      [&](std::uint64_t iters) {
        Rng rng(44);
        for (std::uint64_t i = 0; i < iters; ++i) {
          SiteId s = static_cast<SiteId>(rng.NextBounded(num_sites));
          legacy.SetSiteUp(s, !legacy.IsSiteUp(s));
          side_effect += legacy.Components().size();
        }
      }));

  // Query-only ComponentOf: the WouldGrant inner loop between events.
  net.AllUp();
  net.SetSiteUp(2, false);
  net.SetSiteUp(4, false);
  for (SiteId s = 0; s < num_sites; ++s) {
    legacy.SetSiteUp(s, s != 2 && s != 4);  // mirror: 2 and 4 down
  }
  out->push_back(MeasurePaired(
      "component_of_query", "legacy", min_ms,
      [&](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
          side_effect += net.ComponentOf(static_cast<SiteId>(i % 2)).Size();
        }
      },
      [&](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
          side_effect +=
              legacy.ComponentOf(static_cast<SiteId>(i % 2)).Size();
        }
      }));
  if (side_effect == 0xDEAD) std::cerr << "";  // keep side_effect live
}

/// EvaluateDynamicQuorum with the topological rule: per-segment mask
/// unions vs. the legacy site-pair closure loop.
void BenchQuorum(double min_ms, std::vector<BenchEntry>* out) {
  auto paper = MakePaperNetwork();
  auto store = ReplicaStore::Make(kFiveCopyPlacement).MoveValue();
  store.Commit(SiteSet{0, 1, 3}, 5, 3, SiteSet{0, 1, 3});
  const SiteSet reachable{0, 1, 2, 3, 4};
  std::int64_t side_effect = 0;

  // Legacy side: same evaluation with the closure recomputed by the pair
  // loop (the rest of the decision is shared, so the delta isolates it).
  out->push_back(MeasurePaired(
      "quorum_topological", "legacy", min_ms,
      [&](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
          QuorumDecision d =
              EvaluateDynamicQuorum(store, reachable,
                                    TieBreak::kLexicographic,
                                    paper->topology.get());
          side_effect += d.granted + d.counted_set.Size();
        }
      },
      [&](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
          QuorumDecision d = EvaluateDynamicQuorum(
              store, reachable, TieBreak::kLexicographic, nullptr);
          d.counted_set = LegacyTopologicalClosure(
              *paper->topology, d.prev_partition, d.reachable_copies);
          side_effect += d.granted + d.counted_set.Size();
        }
      }));
  if (side_effect == -1) std::cerr << "";
}

/// The acceptance benchmark: experiment.cc's sample loop over the six
/// paper policies on the five-copy placement, network flips interleaved
/// at a realistic events-per-change ratio, memoization on vs. off.
void BenchSampleLoop(double min_ms, std::vector<BenchEntry>* out) {
  auto paper = MakePaperNetwork();
  const int num_sites = paper->topology->num_sites();
  auto protocols = MakePaperProtocols(paper->topology, kFiveCopyPlacement);
  NetworkState net(paper->topology);
  std::int64_t side_effect = 0;

  auto run = [&](bool cached, std::uint64_t iters) {
    net.AllUp();
    Rng rng(77);
    for (auto& p : protocols) {
      p->Reset();
      p->set_quorum_cache_enabled(cached);
    }
    for (std::uint64_t i = 0; i < iters; ++i) {
      if (i % 16 == 0) {
        // One network change per 16 samples: failures and repairs are
        // rare next to the daily access samples they interleave with.
        SiteId s = static_cast<SiteId>(rng.NextBounded(num_sites));
        net.SetSiteUp(s, !net.IsSiteUp(s));
      }
      side_effect += SampleOnce(net, protocols);
    }
  };

  out->push_back(MeasurePaired(
      "sample_quorum_loop", "no-cache", min_ms,
      [&](std::uint64_t iters) { run(true, iters); },
      [&](std::uint64_t iters) { run(false, iters); }));
  if (side_effect == -1) std::cerr << "";
}

/// End to end: one simulated year of the discrete-event experiment with
/// all six policies on the five-copy placement, cache on vs. off. This is
/// the unit the sweeps and --reps multiply by the thousands.
void BenchExperimentYear(double min_ms, std::vector<BenchEntry>* out) {
  auto paper = MakePaperNetwork();
  ExperimentSpec spec;
  spec.topology = paper->topology;
  spec.profiles = paper->profiles;
  spec.options.warmup = Days(0);
  spec.options.num_batches = 1;
  spec.options.batch_length = Years(1);

  auto run = [&](bool cached, std::uint64_t iters) {
    for (std::uint64_t i = 0; i < iters; ++i) {
      spec.options.seed = 1 + i;
      spec.options.quorum_cache = cached;
      auto protocols =
          MakePaperProtocols(paper->topology, kFiveCopyPlacement);
      auto results =
          RunAvailabilityExperiment(spec, std::move(protocols));
      if (!results.ok()) {
        std::cerr << results.status() << "\n";
        std::exit(1);
      }
    }
  };

  out->push_back(MeasurePaired(
      "experiment_year_5copies", "no-cache", min_ms,
      [&](std::uint64_t iters) { run(true, iters); },
      [&](std::uint64_t iters) { run(false, iters); }));
}

/// The batched multi-object engine's amortization claim: aggregate ns
/// per object-year running N=64 objects through one calendar-queue event
/// loop, against the same 64 seeds run sequentially through the solo
/// engine ("solo-seq"). The bit-identity contract makes the two sides
/// produce identical statistics, so the ratio is pure engine overhead;
/// CI gates it at >= 3.0x.
void BenchBatchedEngine(double min_ms, std::vector<BenchEntry>* out) {
  auto paper = MakePaperNetwork();
  ExperimentSpec spec;
  spec.topology = paper->topology;
  spec.profiles = paper->profiles;
  spec.options.warmup = Days(0);
  spec.options.num_batches = 1;
  spec.options.batch_length = Years(1);

  constexpr int kObjects = 64;
  BatchedProtocolSpec batched_spec{PaperProtocolNames(), kFiveCopyPlacement};

  auto run_batched = [&](std::uint64_t iters) {
    for (std::uint64_t i = 0; i < iters; ++i) {
      std::vector<std::uint64_t> seeds;
      seeds.reserve(kObjects);
      for (int k = 0; k < kObjects; ++k) {
        seeds.push_back(1 + i * kObjects + static_cast<std::uint64_t>(k));
      }
      auto results = RunBatchedAvailabilityExperiment(spec, batched_spec,
                                                      seeds);
      if (!results.ok()) {
        std::cerr << results.status() << "\n";
        std::exit(1);
      }
    }
  };
  auto run_solo = [&](std::uint64_t iters) {
    for (std::uint64_t i = 0; i < iters; ++i) {
      for (int k = 0; k < kObjects; ++k) {
        spec.options.seed = 1 + i * kObjects + static_cast<std::uint64_t>(k);
        auto protocols =
            MakePaperProtocols(paper->topology, kFiveCopyPlacement);
        auto results = RunAvailabilityExperiment(spec, std::move(protocols));
        if (!results.ok()) {
          std::cerr << results.status() << "\n";
          std::exit(1);
        }
      }
    }
  };

  auto [batched, solo] =
      bench::MeasurePairedMinOfRounds(min_ms, run_batched, run_solo);
  BenchEntry entry;
  entry.name = "engine_batched_n64";
  // Normalize both sides to ns per object-year (one iteration = 64).
  entry.ops = batched.ops * kObjects;
  entry.ns_per_op = batched.ns_per_op / kObjects;
  entry.baseline = "solo-seq";
  entry.baseline_ns_per_op = solo.ns_per_op / kObjects;
  out->push_back(entry);
}

/// Tracing overhead on the same experiment-year unit: observability
/// disabled (instrumentation reduces to one never-taken branch per
/// site), a bounded in-memory ring sink, full JSONL serialization, and
/// the binary encoder paged through the async writer thread. The traced
/// entries report their slowdown against the off run via the
/// "trace-off" baseline; CI gates experiment_year_trace_binary_async at
/// 1.3x of trace-off.
void BenchTracingOverhead(double min_ms, std::vector<BenchEntry>* out) {
  auto paper = MakePaperNetwork();
  ExperimentSpec spec;
  spec.topology = paper->topology;
  spec.profiles = paper->profiles;
  spec.options.warmup = Days(0);
  spec.options.num_batches = 1;
  spec.options.batch_length = Years(1);

  auto run = [&](ObsContext* obs, std::uint64_t iters) {
    for (std::uint64_t i = 0; i < iters; ++i) {
      spec.options.seed = 1 + i;
      spec.obs = obs;
      auto protocols =
          MakePaperProtocols(paper->topology, kFiveCopyPlacement);
      auto results = RunAvailabilityExperiment(spec, std::move(protocols));
      if (!results.ok()) {
        std::cerr << results.status() << "\n";
        std::exit(1);
      }
    }
  };

  // The gated pair — trace-off and the shipping binary pipeline — is
  // measured with the paired alternating-rounds estimator (bench_util.h)
  // so scheduling drift cancels out of the ratio the CI gate checks.
  std::ostringstream binary_buffer;
  StreamPageSink page_sink(&binary_buffer);
  AsyncTraceSink async_sink(&page_sink);
  BinaryTraceSink binary_sink(&async_sink);
  ObsContext binary_obs;
  binary_obs.sink = &binary_sink;
  auto run_binary = [&](std::uint64_t iters) {
    // Rewind (rather than reset) the buffer so the probe measures the
    // pipeline: a fresh str() would make the stream re-grow its buffer
    // every iteration, charging allocator churn a real file run never
    // pays. Rewinding is only safe while the writer is parked, so it
    // happens once per round, outside the timed iterations' async
    // writes; the Flush() draining the writer likewise closes the
    // round rather than each iteration — a real traced run drains once
    // before closing the file, not per simulated year.
    binary_buffer.seekp(0);
    for (std::uint64_t i = 0; i < iters; ++i) {
      spec.options.seed = 1 + i;
      spec.obs = &binary_obs;
      auto protocols =
          MakePaperProtocols(paper->topology, kFiveCopyPlacement);
      auto results = RunAvailabilityExperiment(spec, std::move(protocols));
      if (!results.ok()) {
        std::cerr << results.status() << "\n";
        std::exit(1);
      }
    }
    binary_sink.Flush();
  };

  auto [off_r, binary_r] = bench::MeasurePairedMinOfRounds(
      min_ms, [&](std::uint64_t n) { run(nullptr, n); }, run_binary);

  BenchEntry off;
  off.name = "experiment_year_trace_off";
  off.ops = off_r.ops;
  off.ns_per_op = off_r.ns_per_op;

  RingTraceSink ring_sink;
  ObsContext ring_obs;
  ring_obs.sink = &ring_sink;
  BenchEntry ring =
      Measure("experiment_year_trace_ring", min_ms,
              [&](std::uint64_t iters) { run(&ring_obs, iters); });

  std::ostringstream trace_buffer;
  JsonlTraceSink jsonl_sink(&trace_buffer);
  ObsContext jsonl_obs;
  jsonl_obs.sink = &jsonl_sink;
  BenchEntry jsonl =
      Measure("experiment_year_trace_jsonl", min_ms,
              [&](std::uint64_t iters) {
                for (std::uint64_t i = 0; i < iters; ++i) {
                  // Rewind (rather than reset) the buffer so the probe
                  // measures serialization: a fresh str() would make the
                  // stream re-grow its buffer every iteration, charging
                  // allocator churn a real file run never pays.
                  trace_buffer.seekp(0);
                  spec.options.seed = 1 + i;
                  spec.obs = &jsonl_obs;
                  auto protocols =
                      MakePaperProtocols(paper->topology, kFiveCopyPlacement);
                  auto results =
                      RunAvailabilityExperiment(spec, std::move(protocols));
                  if (!results.ok()) {
                    std::cerr << results.status() << "\n";
                    std::exit(1);
                  }
                }
              });

  // The shipping pipeline (binary encoding into pages, drained by a
  // writer thread into an in-memory stream so the probe measures the
  // pipeline, not this machine's disk) was measured in the alternating
  // rounds above.
  if (!binary_sink.ok()) {
    std::cerr << "binary trace pipeline failed: " << binary_sink.error()
              << "\n";
    std::exit(1);
  }
  BenchEntry binary;
  binary.name = "experiment_year_trace_binary_async";
  binary.ops = binary_r.ops;
  binary.ns_per_op = binary_r.ns_per_op;

  ring.baseline = "trace-off";
  ring.baseline_ns_per_op = off.ns_per_op;
  jsonl.baseline = "trace-off";
  jsonl.baseline_ns_per_op = off.ns_per_op;
  binary.baseline = "trace-off";
  binary.baseline_ns_per_op = off.ns_per_op;
  out->push_back(off);
  out->push_back(ring);
  out->push_back(jsonl);
  out->push_back(binary);
}

// ---------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------

std::string FormatDouble(double value) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << value;
  return os.str();
}

std::string ToJson(const std::vector<BenchEntry>& entries) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"" << kHotpathBenchSchema << "\",\n"
     << "  \"unit\": \"ns_per_op\",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const BenchEntry& e = entries[i];
    os << "    {\"name\": \"" << e.name << "\", \"ns_per_op\": "
       << FormatDouble(e.ns_per_op) << ", \"ops\": " << e.ops;
    if (!e.baseline.empty()) {
      os << ", \"baseline\": \"" << e.baseline
         << "\", \"baseline_ns_per_op\": "
         << FormatDouble(e.baseline_ns_per_op) << ", \"speedup\": "
         << FormatDouble(e.baseline_ns_per_op / e.ns_per_op);
    }
    os << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_hotpath.json";
  double min_ms = 200.0;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--out=", 0) == 0) {
      out_path = a.substr(6);
    } else if (a.rfind("--min-time-ms=", 0) == 0) {
      min_ms = std::stod(a.substr(14));
    }
  }

  std::vector<BenchEntry> entries;
  BenchComponents(min_ms, &entries);
  BenchQuorum(min_ms, &entries);
  BenchSampleLoop(min_ms, &entries);
  BenchExperimentYear(min_ms, &entries);
  BenchBatchedEngine(min_ms, &entries);
  BenchTracingOverhead(min_ms, &entries);

  std::cout << "hotpath microbenchmarks (ns/op, baseline, speedup):\n";
  for (const BenchEntry& e : entries) {
    std::cout << "  " << e.name << ": " << FormatDouble(e.ns_per_op)
              << " ns/op";
    if (!e.baseline.empty()) {
      std::cout << "  [" << e.baseline << ": "
                << FormatDouble(e.baseline_ns_per_op) << " ns/op, speedup "
                << FormatDouble(e.baseline_ns_per_op / e.ns_per_op) << "x]";
    }
    std::cout << "\n";
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << ToJson(entries);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace dynvote

int main(int argc, char** argv) { return dynvote::Main(argc, argv); }
