#include "bench_util.h"

#include <cstdlib>
#include <iostream>

#include "core/registry.h"
#include "model/export.h"
#include "model/replicated_experiment.h"
#include "model/site_profile.h"
#include "stats/table.h"

namespace dynvote {
namespace bench {

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto value_of = [&a](const std::string& prefix) -> std::string {
      return a.substr(prefix.size());
    };
    if (a.rfind("--years=", 0) == 0) {
      args.years = std::stod(value_of("--years="));
    } else if (a.rfind("--batches=", 0) == 0) {
      args.batches = std::stoi(value_of("--batches="));
    } else if (a.rfind("--seed=", 0) == 0) {
      args.seed = std::stoull(value_of("--seed="));
    } else if (a.rfind("--configs=", 0) == 0) {
      args.configs = value_of("--configs=");
    } else if (a.rfind("--csv=", 0) == 0) {
      args.csv_path = value_of("--csv=");
    } else if (a.rfind("--reps=", 0) == 0) {
      args.reps = std::stoi(value_of("--reps="));
    } else if (a.rfind("--jobs=", 0) == 0) {
      args.jobs = std::stoi(value_of("--jobs="));
    } else if (a == "--no-quorum-cache") {
      args.quorum_cache = false;
    } else if (a == "--verbose") {
      args.verbose = true;
    }
  }
  if (args.reps < 1) {
    std::cerr << "--reps must be >= 1\n";
    std::exit(1);
  }
  if (args.jobs < 0) {
    std::cerr << "--jobs must be >= 0 (0 = all cores)\n";
    std::exit(1);
  }
  return args;
}

ExperimentOptions MakeOptions(const BenchArgs& args) {
  ExperimentOptions options;
  options.warmup = Days(360);
  options.num_batches = args.batches;
  options.batch_length = Years(args.years / args.batches);
  options.access.rate_per_day = 1.0;  // the paper's one access per day
  options.access.write_fraction = 0.5;
  options.seed = args.seed;
  options.quorum_cache = args.quorum_cache;
  return options;
}

GridResults RunPaperGrid(const BenchArgs& args) {
  GridResults grid;
  ExperimentOptions options = MakeOptions(args);
  ReplicationOptions replication;
  replication.replications = args.reps;
  replication.jobs = args.jobs;
  for (char label : args.configs) {
    auto results = RunReplicatedPaperExperiment(label, PaperProtocolNames(),
                                                options, replication);
    if (!results.ok()) {
      std::cerr << "config " << label << ": " << results.status() << "\n";
      std::exit(1);
    }
    grid.by_config[label] = MeanPolicyResults(*results);
  }
  return grid;
}

void MaybeWriteCsv(const BenchArgs& args, const GridResults& grid) {
  if (args.csv_path.empty()) return;
  std::vector<LabeledResult> rows;
  for (const auto& [label, row] : grid.by_config) {
    for (const PolicyResult& r : row) {
      rows.push_back(LabeledResult{std::string(1, label), r});
    }
  }
  Status st = WriteFile(args.csv_path, ResultsToCsv(rows));
  if (!st.ok()) {
    std::cerr << "csv export failed: " << st << "\n";
  } else {
    std::cout << "\nwrote " << rows.size() << " rows to " << args.csv_path
              << "\n";
  }
}

int ReportShapeChecks(const std::vector<ShapeCheck>& checks) {
  int failures = 0;
  std::cout << "\nShape checks (paper section 4 findings):\n";
  for (const ShapeCheck& c : checks) {
    std::cout << "  [" << (c.passed ? "PASS" : "FAIL") << "] "
              << c.description << "\n";
    if (!c.passed) ++failures;
  }
  std::cout << (failures == 0 ? "All shape checks passed.\n"
                              : "Some shape checks FAILED.\n");
  return failures;
}

const PolicyResult& ResultOf(const std::vector<PolicyResult>& row,
                             const std::string& policy) {
  for (const PolicyResult& r : row) {
    if (r.name == policy) return r;
  }
  std::cerr << "policy " << policy << " missing from results\n";
  std::exit(1);
}

}  // namespace bench
}  // namespace dynvote
