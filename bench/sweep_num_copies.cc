// E5 (ablation): availability vs replication degree. Section 1 notes that
// dynamic voting "requires a minimum of three copies to be of any
// practical interest"; Section 4 finds DV worse than MCV at three copies
// and better at four (absent ties). This bench grows the placement one
// site at a time following the paper's network (main segment first, then
// across gateways) and prints the unavailability of every policy at each
// degree.
//
// Flags: --years=N (default 400), --seed=N, --reps=N, --jobs=M

#include <iostream>

#include "bench_util.h"
#include "core/registry.h"
#include "model/replicated_experiment.h"
#include "model/site_profile.h"
#include "stats/table.h"

namespace dynvote {
namespace bench {
namespace {

int Run(const BenchArgs& args) {
  auto network = MakePaperNetwork();
  if (!network.ok()) {
    std::cerr << network.status() << "\n";
    return 1;
  }

  // Growth order: csvax, beowulf, gremlin (across wizard), mangle (across
  // amos), grendel, wizard, amos, rip — mixing segments the way the
  // paper's configurations do.
  const SiteId order[] = {0, 1, 5, 7, 2, 3, 4, 6};

  std::cout << "=== Replication-degree sweep (paper network, 1 access/day) "
               "===\n\n";
  TextTable table({"Copies", "Placement", "MCV", "DV", "LDV", "ODV", "TDV",
                   "OTDV"});

  std::vector<double> dv_u(9, -1.0);
  std::vector<double> mcv_u(9, -1.0);
  std::vector<double> ldv_u(9, -1.0);
  SiteSet placement;
  for (int n = 1; n <= 8; ++n) {
    placement.Add(order[n - 1]);
    ExperimentSpec spec;
    spec.topology = network->topology;
    spec.profiles = network->profiles;
    spec.options = MakeOptions(args);
    SiteSet p_now = placement;
    ProtocolSetFactory factory =
        [&network, p_now]()
        -> Result<std::vector<std::unique_ptr<ConsistencyProtocol>>> {
      std::vector<std::unique_ptr<ConsistencyProtocol>> protocols;
      for (const std::string& name : PaperProtocolNames()) {
        auto p = MakeProtocolByName(name, network->topology, p_now);
        if (!p.ok()) return p.status();
        protocols.push_back(p.MoveValue());
      }
      return protocols;
    };
    ReplicationOptions replication;
    replication.replications = args.reps;
    replication.jobs = args.jobs;
    auto replicated = RunReplicatedExperiment(spec, factory, replication);
    if (!replicated.ok()) {
      std::cerr << replicated.status() << "\n";
      return 1;
    }
    std::vector<PolicyResult> results = MeanPolicyResults(*replicated);
    auto u = [&](const std::string& name) {
      return ResultOf(results, name).unavailability;
    };
    mcv_u[n] = u("MCV");
    dv_u[n] = u("DV");
    ldv_u[n] = u("LDV");
    table.AddRow({std::to_string(n), placement.ToString(),
                  TextTable::Fixed6(u("MCV")), TextTable::Fixed6(u("DV")),
                  TextTable::Fixed6(u("LDV")), TextTable::Fixed6(u("ODV")),
                  TextTable::Fixed6(u("TDV")),
                  TextTable::Fixed6(u("OTDV"))});
  }
  std::cout << table.ToString();

  std::vector<ShapeCheck> checks = {
      {"1 copy: every policy equals the bare site availability (all "
       "within 10% of each other)",
       dv_u[1] < 1.1 * mcv_u[1] + 1e-6 && mcv_u[1] < 1.1 * dv_u[1] + 1e-6},
      {"3 copies: DV worse than MCV (the paper's first finding)",
       dv_u[3] > mcv_u[3]},
      {"LDV never worse than DV at any degree",
       [&] {
         for (int n = 1; n <= 8; ++n) {
           if (ldv_u[n] > dv_u[n] + 1e-9) return false;
         }
         return true;
       }()},
      {"5 copies beat 3 copies under LDV (more replicas help once past "
       "the minimum)",
       ldv_u[5] <= ldv_u[3] + 1e-6},
  };
  return ReportShapeChecks(checks);
}

}  // namespace
}  // namespace bench
}  // namespace dynvote

int main(int argc, char** argv) {
  dynvote::bench::BenchArgs args = dynvote::bench::ParseArgs(argc, argv);
  if (args.years == 600.0) args.years = 400.0;
  return dynvote::bench::Run(args);
}
