// Model-checker throughput harness: the parallel replay fan-out against
// the sequential engine, the transition savings of partial-order
// reduction, and the deepest exhaustive bounds this build demonstrates.
//
// Results are written to BENCH_check.json (override with --out=PATH) in
// a stable schema so successive PRs can track the checker's reach:
//
//   {
//     "schema": "dynvote-checkbench-v1",
//     "benchmarks": [
//       {"name": "...", "work": "states" | "transitions",
//        "per_sec": N, "solo_per_sec": N, "speedup": N}, ...
//     ],
//     "por": [
//       {"name": "...", "transitions_with_por": N,
//        "transitions_without": N, "reduction": F,
//        "states_equal": true, "digest_equal": true}, ...
//     ],
//     "depth": [
//       {"universe": "...", "protocol": "...", "depth": N,
//        "states": N, "transitions": N, "seconds": F, "por": B}, ...
//     ]
//   }
//
// "benchmarks" rows pair jobs=4 against jobs=1 (solo) on the identical
// workload with the alternating paired estimator from bench_util.h, so
// the speedup CI gates is immune to machine drift; the two sides produce
// bit-identical reports (the parallel tests prove it), so the ratio is
// pure engine overhead vs. fan-out win. "por" rows rerun the same bound
// with reduction off and assert the visited-state *set* (count and
// order-independent digest) is unchanged. "depth" rows are one-shot
// demonstrations of the bounds the ROADMAP targets (single3 >= 11,
// section3 >= 6), with wall-clock seconds for the record.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "check/checker.h"
#include "obs/schemas.h"

namespace dynvote {
namespace {

check::CheckReport MustCheck(const check::CheckOptions& options) {
  auto report = check::RunCheck(options);
  if (!report.ok()) {
    std::cerr << "check failed: " << report.status() << "\n";
    std::exit(1);
  }
  return report.MoveValue();
}

check::CheckOptions ExhaustiveOptions(const std::string& protocol,
                                      const std::string& topology,
                                      int depth) {
  check::CheckOptions options;
  options.protocol = protocol;
  options.topology = topology;
  options.depth = depth;
  // Strict checking would rediscover the documented hazards of the
  // non-partition-safe protocols; throughput rows want full-depth
  // exploration, so they run protocols that pass strict.
  return options;
}

// ---------------------------------------------------------------------
// Parallel speedup (jobs=4 vs solo, paired rounds)
// ---------------------------------------------------------------------

struct SpeedupEntry {
  std::string name;
  std::string work;  // what per_sec counts: "states" or "transitions"
  double per_sec = 0.0;
  double solo_per_sec = 0.0;
};

/// Measures one workload at jobs=4 against jobs=1, converting the paired
/// ns-per-run estimates into work units per second.
SpeedupEntry MeasureSpeedup(const std::string& name, double min_ms,
                            check::CheckOptions options,
                            const std::string& work,
                            std::uint64_t units_per_run) {
  check::CheckOptions parallel = options;
  parallel.jobs = 4;
  check::CheckOptions solo = options;
  solo.jobs = 1;
  auto [par_r, solo_r] = bench::MeasurePairedMinOfRounds(
      min_ms,
      [&parallel](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) MustCheck(parallel);
      },
      [&solo](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) MustCheck(solo);
      });
  SpeedupEntry entry;
  entry.name = name;
  entry.work = work;
  entry.per_sec = static_cast<double>(units_per_run) * 1e9 / par_r.ns_per_op;
  entry.solo_per_sec =
      static_cast<double>(units_per_run) * 1e9 / solo_r.ns_per_op;
  return entry;
}

void BenchSpeedups(double min_ms, std::vector<SpeedupEntry>* out) {
  // Exhaustive: section3 is the paper's running example and the widest
  // universe (9-action alphabet), so its levels offer the most parallel
  // slack per barrier.
  {
    check::CheckOptions options = ExhaustiveOptions("ODV", "section3", 6);
    const check::CheckReport probe = MustCheck(options);
    out->push_back(MeasureSpeedup("exhaustive_odv_section3_d6", min_ms,
                                  options, "states",
                                  probe.states_visited));
  }
  // Swarm: 256 independent schedules is the embarrassingly parallel
  // shape; per-schedule slots mean zero coordination between workers.
  {
    check::CheckOptions options;
    options.protocol = "ODV";
    options.topology = "pairs";
    options.mode = check::CheckMode::kSwarm;
    options.swarm_schedules = 256;
    options.swarm_depth = 12;
    const check::CheckReport probe = MustCheck(options);
    out->push_back(MeasureSpeedup("swarm_odv_pairs_s256_d12", min_ms,
                                  options, "transitions",
                                  probe.transitions));
  }
}

// ---------------------------------------------------------------------
// Partial-order reduction (same bound, POR on vs off)
// ---------------------------------------------------------------------

struct PorEntry {
  std::string name;
  std::uint64_t transitions_with_por = 0;
  std::uint64_t transitions_without = 0;
  bool states_equal = false;
  bool digest_equal = false;
};

void BenchPor(std::vector<PorEntry>* out) {
  struct Row {
    const char* name;
    const char* protocol;
    const char* topology;
    int depth;
  };
  const Row rows[] = {
      {"por_odv_single3_d9", "ODV", "single3", 9},
      {"por_odv_section3_d6", "ODV", "section3", 6},
      {"por_mcv_pairs_d7", "MCV", "pairs", 7},
  };
  for (const Row& row : rows) {
    check::CheckOptions with_por =
        ExhaustiveOptions(row.protocol, row.topology, row.depth);
    check::CheckOptions without = with_por;
    without.por = false;
    const check::CheckReport on = MustCheck(with_por);
    const check::CheckReport off = MustCheck(without);
    PorEntry entry;
    entry.name = row.name;
    entry.transitions_with_por = on.transitions;
    entry.transitions_without = off.transitions;
    entry.states_equal = on.states_visited == off.states_visited;
    entry.digest_equal = on.visited_digest == off.visited_digest;
    if (!on.por_active || !entry.states_equal || !entry.digest_equal) {
      std::cerr << "POR equivalence broken on " << row.name << "\n";
      std::exit(1);
    }
    out->push_back(entry);
  }
}

// ---------------------------------------------------------------------
// Depth demonstrations (one-shot, wall clock for the record)
// ---------------------------------------------------------------------

struct DepthEntry {
  std::string universe;
  std::string protocol;
  int depth = 0;
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  double seconds = 0.0;
  bool por = false;
};

void BenchDepths(std::vector<DepthEntry>* out) {
  struct Row {
    const char* protocol;
    const char* topology;
    int depth;
  };
  // single3 closes (the frontier empties) by depth 12, so the row both
  // exceeds the >= 11 target and records the universe's full diameter;
  // section3's 9-action alphabet makes depth 8 the demonstration row.
  const Row rows[] = {
      {"ODV", "single3", 12},
      {"ODV", "section3", 8},
  };
  for (const Row& row : rows) {
    check::CheckOptions options =
        ExhaustiveOptions(row.protocol, row.topology, row.depth);
    options.jobs = 0;  // all cores: the demonstration uses the machine
    auto t0 = std::chrono::steady_clock::now();
    const check::CheckReport report = MustCheck(options);
    auto t1 = std::chrono::steady_clock::now();
    if (report.counterexample.has_value()) {
      std::cerr << "unexpected violation in depth row " << row.topology
                << "\n";
      std::exit(1);
    }
    DepthEntry entry;
    entry.universe = row.topology;
    entry.protocol = row.protocol;
    entry.depth = row.depth;
    entry.states = report.states_visited;
    entry.transitions = report.transitions;
    entry.seconds = std::chrono::duration<double>(t1 - t0).count();
    entry.por = report.por_active;
    out->push_back(entry);
  }
}

// ---------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------

std::string FormatDouble(double value) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << value;
  return os.str();
}

std::string ToJson(const std::vector<SpeedupEntry>& speedups,
                   const std::vector<PorEntry>& por,
                   const std::vector<DepthEntry>& depths) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"" << kCheckBenchSchema << "\",\n"
     << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < speedups.size(); ++i) {
    const SpeedupEntry& e = speedups[i];
    os << "    {\"name\": \"" << e.name << "\", \"work\": \"" << e.work
       << "\", \"per_sec\": " << FormatDouble(e.per_sec)
       << ", \"solo_per_sec\": " << FormatDouble(e.solo_per_sec)
       << ", \"speedup\": " << FormatDouble(e.per_sec / e.solo_per_sec)
       << "}" << (i + 1 < speedups.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"por\": [\n";
  for (std::size_t i = 0; i < por.size(); ++i) {
    const PorEntry& e = por[i];
    const double reduction =
        1.0 - static_cast<double>(e.transitions_with_por) /
                  static_cast<double>(e.transitions_without);
    os << "    {\"name\": \"" << e.name << "\", \"transitions_with_por\": "
       << e.transitions_with_por << ", \"transitions_without\": "
       << e.transitions_without << ", \"reduction\": "
       << FormatDouble(reduction) << ", \"states_equal\": "
       << (e.states_equal ? "true" : "false") << ", \"digest_equal\": "
       << (e.digest_equal ? "true" : "false") << "}"
       << (i + 1 < por.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"depth\": [\n";
  for (std::size_t i = 0; i < depths.size(); ++i) {
    const DepthEntry& e = depths[i];
    os << "    {\"universe\": \"" << e.universe << "\", \"protocol\": \""
       << e.protocol << "\", \"depth\": " << e.depth << ", \"states\": "
       << e.states << ", \"transitions\": " << e.transitions
       << ", \"seconds\": " << FormatDouble(e.seconds) << ", \"por\": "
       << (e.por ? "true" : "false") << "}"
       << (i + 1 < depths.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_check.json";
  double min_ms = 200.0;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--out=", 0) == 0) {
      out_path = a.substr(6);
    } else if (a.rfind("--min-time-ms=", 0) == 0) {
      min_ms = std::stod(a.substr(14));
    }
  }

  std::vector<SpeedupEntry> speedups;
  std::vector<PorEntry> por;
  std::vector<DepthEntry> depths;
  BenchSpeedups(min_ms, &speedups);
  BenchPor(&por);
  BenchDepths(&depths);

  std::cout << "model-checker throughput:\n";
  for (const SpeedupEntry& e : speedups) {
    std::cout << "  " << e.name << ": " << FormatDouble(e.per_sec) << " "
              << e.work << "/s jobs=4, " << FormatDouble(e.solo_per_sec)
              << " solo, speedup "
              << FormatDouble(e.per_sec / e.solo_per_sec) << "x\n";
  }
  for (const PorEntry& e : por) {
    std::cout << "  " << e.name << ": " << e.transitions_with_por << " vs "
              << e.transitions_without
              << " transitions (states/digest preserved)\n";
  }
  for (const DepthEntry& e : depths) {
    std::cout << "  depth " << e.universe << "@" << e.depth << ": "
              << e.states << " states, " << e.transitions
              << " transitions in " << FormatDouble(e.seconds) << "s\n";
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << ToJson(speedups, por, depths);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace dynvote

int main(int argc, char** argv) { return dynvote::Main(argc, argv); }
