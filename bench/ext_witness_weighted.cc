// E8 (extension): the two future-work directions the paper's conclusion
// names — witness copies (Pâris 1986) and weight assignments.
//
// Witnesses: replace the third / fourth physical copy of a placement by a
// witness (votes, no data) and compare availability against both the full
// placement and the placement without the site at all. The interesting
// result: a witness recovers most of the availability of a real copy at
// near-zero storage cost.
//
// Weights: give the most reliable site of each placement extra votes and
// measure the effect under static (MCV) and dynamic (LDV) voting.
//
// Flags: --years=N (default 400), --seed=N

#include <iostream>

#include "bench_util.h"
#include "core/registry.h"
#include "model/site_profile.h"
#include "stats/table.h"
#include "core/dynamic_voting.h"
#include "core/mcv.h"

namespace dynvote {
namespace bench {
namespace {

std::unique_ptr<ConsistencyProtocol> LdvWithWitness(
    std::shared_ptr<const Topology> topo, SiteSet placement,
    SiteSet witnesses, bool optimistic, const std::string& name) {
  DynamicVotingOptions options;
  options.witnesses = witnesses;
  options.optimistic = optimistic;
  options.name = name;
  return DynamicVoting::Make(std::move(topo), placement, options)
      .MoveValue();
}

std::unique_ptr<ConsistencyProtocol> WeightedLdv(
    std::shared_ptr<const Topology> topo, SiteSet placement,
    std::vector<int> weights, const std::string& name) {
  DynamicVotingOptions options;
  options.weights = VoteWeights::Make(std::move(weights)).MoveValue();
  options.name = name;
  return DynamicVoting::Make(std::move(topo), placement, options)
      .MoveValue();
}

int Run(const BenchArgs& args) {
  auto network = MakePaperNetwork();
  if (!network.ok()) {
    std::cerr << network.status() << "\n";
    return 1;
  }
  auto topo = network->topology;

  std::cout << "=== Extensions: witnesses and weight assignments ===\n\n";

  // --- Witness study on configuration B (copies 1, 2, 6 = ids 0,1,5). ---
  ExperimentSpec spec;
  spec.topology = topo;
  spec.profiles = network->profiles;
  spec.options = MakeOptions(args);

  std::vector<std::unique_ptr<ConsistencyProtocol>> protocols;
  protocols.push_back(
      MakeProtocolByName("LDV", topo, SiteSet{0, 1}).MoveValue());
  protocols.push_back(LdvWithWitness(topo, SiteSet{0, 1, 5}, SiteSet{5},
                                     false, "LDV-2data+wit"));
  protocols.push_back(
      MakeProtocolByName("LDV", topo, SiteSet{0, 1, 5}).MoveValue());
  protocols.push_back(LdvWithWitness(topo, SiteSet{0, 1, 5}, SiteSet{5},
                                     true, "ODV-2data+wit"));

  auto results = RunAvailabilityExperiment(spec, std::move(protocols));
  if (!results.ok()) {
    std::cerr << results.status() << "\n";
    return 1;
  }
  TextTable witness_table({"Policy", "Copies", "Unavailability",
                           "95% CI ±"});
  const char* copies_desc[] = {"2 data", "2 data + 1 witness",
                               "3 data", "2 data + 1 witness (optimistic)"};
  for (std::size_t i = 0; i < results->size(); ++i) {
    const PolicyResult& r = (*results)[i];
    witness_table.AddRow({r.name, copies_desc[i],
                          TextTable::Fixed6(r.unavailability),
                          TextTable::Fixed6(r.stats.ci95_halfwidth)});
  }
  std::cout << "Witness study (configuration B sites):\n"
            << witness_table.ToString() << "\n";

  double two_data = (*results)[0].unavailability;
  double with_witness = (*results)[1].unavailability;
  double three_data = (*results)[2].unavailability;
  std::vector<ShapeCheck> checks = {
      {"a witness improves on two bare copies",
       with_witness < two_data},
      {"a witness does not beat a full third copy",
       with_witness >= three_data - 1e-6},
  };

  // --- Weight study on configuration D (the weakest placement). ---------
  std::vector<std::unique_ptr<ConsistencyProtocol>> weighted;
  SiteSet config_d{5, 6, 7};
  weighted.push_back(
      MakeProtocolByName("LDV", topo, config_d).MoveValue());
  // gremlin (5) is the partition-prone singleton; rip (6) leads the
  // co-segment pair. Try extra weight on each.
  std::vector<int> w_gremlin(8, 1);
  w_gremlin[5] = 3;
  weighted.push_back(
      WeightedLdv(topo, config_d, w_gremlin, "WLDV-gremlin3"));
  std::vector<int> w_rip(8, 1);
  w_rip[6] = 3;
  weighted.push_back(WeightedLdv(topo, config_d, w_rip, "WLDV-rip3"));
  McvOptions mcv_weighted;
  mcv_weighted.weights = VoteWeights::Make(w_rip).MoveValue();
  mcv_weighted.name = "WMCV-rip3";
  weighted.push_back(
      MajorityConsensusVoting::Make(config_d, mcv_weighted).MoveValue());

  ExperimentSpec spec2;
  spec2.topology = topo;
  spec2.profiles = network->profiles;
  spec2.options = MakeOptions(args);
  auto wresults = RunAvailabilityExperiment(spec2, std::move(weighted));
  if (!wresults.ok()) {
    std::cerr << wresults.status() << "\n";
    return 1;
  }
  TextTable weight_table({"Policy", "Unavailability", "95% CI ±"});
  for (const PolicyResult& r : *wresults) {
    weight_table.AddRow({r.name, TextTable::Fixed6(r.unavailability),
                         TextTable::Fixed6(r.stats.ci95_halfwidth)});
  }
  std::cout << "Weight-assignment study (configuration D, copies 6,7,8):\n"
            << weight_table.ToString() << "\n";

  return ReportShapeChecks(checks);
}

}  // namespace
}  // namespace bench
}  // namespace dynvote

int main(int argc, char** argv) {
  dynvote::bench::BenchArgs args = dynvote::bench::ParseArgs(argc, argv);
  if (args.years == 600.0) args.years = 400.0;
  return dynvote::bench::Run(args);
}
