// Reliability study: the distribution of the time until a replicated
// file first becomes unavailable, across independent simulation runs.
// Section 4's strongest claim is of this kind: "a replicated object with
// a similar copy configuration [E] could remain continuously available
// for more than three hundred years" under TDV/OTDV. This bench measures
// mean time to first outage (right-censored at the horizon) over many
// seeds for configurations E (clustered) and B (a gateway in the way).
//
// Flags: --years=N (horizon per run, default 350), --seed=N,
//        --runs=N (default 25), --configs= (default EB)

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/registry.h"
#include "stats/table.h"
#include "stats/histogram.h"

namespace dynvote {
namespace bench {
namespace {

int ParseRuns(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--runs=", 0) == 0) return std::stoi(a.substr(7));
  }
  return 25;
}

int Run(const BenchArgs& args, int runs) {
  std::cout << "=== Reliability: time to first unavailability ===\n"
            << runs << " independent runs per configuration, horizon "
            << args.years << " years each, 1 access/day\n\n";

  int failures = 0;
  for (char config : args.configs) {
    std::map<std::string, Histogram> tallies;

    for (int run = 0; run < runs; ++run) {
      ExperimentOptions options = MakeOptions(args);
      options.num_batches = 1;
      options.batch_length = Years(args.years);
      options.seed = args.seed + 1000003ULL * run;
      auto results =
          RunPaperExperiment(config, PaperProtocolNames(), options);
      if (!results.ok()) {
        std::cerr << results.status() << "\n";
        return 1;
      }
      for (const PolicyResult& r : *results) {
        Histogram& h = tallies[r.name];
        if (r.time_to_first_outage < 0.0) {
          h.AddCensored(ToYears(Years(args.years)));  // right-censored
        } else {
          h.Add(ToYears(r.time_to_first_outage));
        }
      }
    }

    TextTable table({"Policy", "Mean (y)", "Median (y)", "p90 (y)",
                     "Runs never unavailable"});
    for (const std::string& name : PaperProtocolNames()) {
      const Histogram& h = tallies[name];
      bool all_censored = h.censored_count() == h.count();
      auto fmt = [&](double v) {
        std::string s = TextTable::Fixed(v, 1);
        return all_censored ? "> " + s : s;
      };
      table.AddRow({name, fmt(h.Mean()), fmt(h.Median()),
                    fmt(h.Quantile(0.9)),
                    std::to_string(h.censored_count()) + "/" +
                        std::to_string(h.count())});
    }
    std::cout << "Configuration " << config << ":\n"
              << table.ToString() << "\n";

    if (config == 'E') {
      const Histogram& tdv = tallies["TDV"];
      const Histogram& mcv = tallies["MCV"];
      std::vector<ShapeCheck> checks = {
          {"config E under TDV: most runs never unavailable across the "
           "whole horizon (the paper's 'three hundred years')",
           tdv.censored_count() >= tdv.count() * 3 / 4},
          {"config E under MCV: first outage within a few years in every "
           "run",
           mcv.censored_count() == 0},
      };
      failures += ReportShapeChecks(checks);
      std::cout << "\n";
    }
  }
  return failures;
}

}  // namespace
}  // namespace bench
}  // namespace dynvote

int main(int argc, char** argv) {
  dynvote::bench::BenchArgs args = dynvote::bench::ParseArgs(argc, argv);
  if (args.years == 600.0) args.years = 350.0;
  if (args.configs == "ABCDEFGH") args.configs = "EB";
  return dynvote::bench::Run(args, dynvote::bench::ParseRuns(argc, argv));
}
