// Reproduces Table 2 of the paper: unavailability of the replicated file
// for copy configurations A-H under MCV, DV, LDV, ODV, TDV and OTDV, on
// the eight-site three-segment network of Figure 8 with the Table 1
// failure/repair parameters. Prints measured next to published values and
// verifies the qualitative findings of Section 4.
//
// Flags: --years=N (default 600), --batches=N, --seed=N, --configs=ABC...

#include <iostream>

#include "bench_util.h"
#include "stats/table.h"

namespace dynvote {
namespace bench {
namespace {

int Run(const BenchArgs& args) {
  std::cout << "=== Table 2: Replicated File Unavailabilities ===\n"
            << "network: 8 sites, 3 segments (Figure 8); " << args.years
            << " measured years/config, " << args.batches
            << " batches, 1 access/day, warm-up 360 days\n\n";

  GridResults grid = RunPaperGrid(args);
  MaybeWriteCsv(args, grid);

  TextTable table({"Config", "Policy", "Measured", "95% CI ±", "Paper",
                   "x Paper"});
  for (const auto& [label, row] : grid.by_config) {
    const PaperConfiguration* config = nullptr;
    for (const auto& c : PaperConfigurations()) {
      if (c.label == label) config = &c;
    }
    for (const PolicyResult& r : row) {
      double paper = PaperTable2Value(label, r.name);
      std::string ratio = "-";
      if (paper > 0.0 && r.unavailability > 0.0) {
        ratio = TextTable::Fixed(r.unavailability / paper, 2);
      }
      table.AddRow({std::string(1, label) + ": " + config->description,
                    r.name, TextTable::Fixed6(r.unavailability),
                    TextTable::Fixed6(r.stats.ci95_halfwidth),
                    TextTable::Fixed6(paper), ratio});
    }
    table.AddRule();
  }
  std::cout << table.ToString();

  // Section 4's qualitative findings, checked against this run.
  auto u = [&](char config, const std::string& policy) {
    return ResultOf(grid.by_config.at(config), policy).unavailability;
  };
  std::vector<ShapeCheck> checks;
  auto have = [&](char c) { return grid.by_config.count(c) > 0; };

  for (char c : std::string("ABCD")) {
    if (!have(c)) continue;
    checks.push_back({std::string("DV worse than MCV with 3 copies "
                                  "(config ") + c + ")",
                      u(c, "DV") > u(c, "MCV")});
  }
  for (char c : args.configs) {
    if (!have(c)) continue;
    checks.push_back({std::string("LDV outperforms MCV and DV (config ") +
                          c + ")",
                      u(c, "LDV") <= u(c, "MCV") &&
                          u(c, "LDV") <= u(c, "DV")});
  }
  if (have('E')) {
    checks.push_back({"DV much better than MCV with 4 copies, no "
                      "partitions (config E)",
                      u('E', "DV") < u('E', "MCV")});
  }
  if (have('G')) {
    // The paper reports DV 25% below MCV in G; the crossover is within
    // simulation noise and sensitive to the static tie rule MCV uses, so
    // we only require DV not to collapse the way it does in F/H.
    checks.push_back({"DV remains competitive with MCV in config G "
                      "(within 3x; paper: 25% better)",
                      u('G', "DV") < 3.0 * u('G', "MCV")});
  }
  if (have('F')) {
    checks.push_back({"DV collapses in config F (single failure causes a "
                      "tie): at least 10x MCV",
                      u('F', "DV") > 10.0 * u('F', "MCV")});
    // The paper measures ODV at 0.44x LDV here; in our model the same
    // mechanism (stale partition sets avoid LDV's eager shrink before the
    // flaky gateway fails) nets out within ~1.5x the other way. See
    // EXPERIMENTS.md for the analysis; we check comparability.
    checks.push_back({"ODV comparable to LDV in config F (within 2x; "
                      "paper: 0.44x)",
                      u('F', "ODV") < 2.0 * u('F', "LDV")});
  }
  if (have('H')) {
    checks.push_back({"DV in config H roughly a single copy at the gateway "
                      "(worse than MCV)",
                      u('H', "DV") > u('H', "MCV")});
  }
  for (char c : std::string("ABEFGH")) {
    if (!have(c)) continue;
    checks.push_back({std::string("TDV beats LDV when copies share a "
                                  "segment (config ") + c + ")",
                      u(c, "TDV") <= u(c, "LDV")});
    checks.push_back({std::string("OTDV beats ODV when copies share a "
                                  "segment (config ") + c + ")",
                      u(c, "OTDV") <= u(c, "ODV")});
  }
  if (have('C')) {
    checks.push_back({"config C fully dispersed: TDV == LDV exactly",
                      u('C', "TDV") == u('C', "LDV")});
    checks.push_back({"config C fully dispersed: OTDV == ODV exactly",
                      u('C', "OTDV") == u('C', "ODV")});
  }
  if (have('E')) {
    checks.push_back({"config E all on one segment: TDV/OTDV essentially "
                      "always available (< 1e-5)",
                      u('E', "TDV") < 1e-5 && u('E', "OTDV") < 1e-5});
  }

  return ReportShapeChecks(checks);
}

}  // namespace
}  // namespace bench
}  // namespace dynvote

int main(int argc, char** argv) {
  return dynvote::bench::Run(dynvote::bench::ParseArgs(argc, argv));
}
