// E7 (ablation): how much co-segment clustering buys Topological Dynamic
// Voting. Section 3 predicts: no gain with every copy on its own segment
// (TDV == LDV, the paper's configuration C), growing gain with
// clustering, and degeneration into Available Copy with everything on one
// segment (configuration E's "available for three hundred years").
//
// We place four copies on the paper's network in four ways — fully
// dispersed to fully clustered — and print LDV / TDV / AC side by side.
//
// Flags: --years=N (default 400), --seed=N

#include <iostream>

#include "bench_util.h"
#include "core/registry.h"
#include "model/site_profile.h"
#include "stats/table.h"
#include "core/available_copy.h"

namespace dynvote {
namespace bench {
namespace {

struct Clustering {
  std::string description;
  SiteSet placement;
  int max_cosegment;  // size of the largest co-segment copy group
};

int Run(const BenchArgs& args) {
  auto network = MakePaperNetwork();
  if (!network.ok()) {
    std::cerr << network.status() << "\n";
    return 1;
  }

  // Main segment: ids 0-4; gremlin: 5; rip/mangle: 6, 7.
  const std::vector<Clustering> plans = {
      {"dispersed: csvax | gremlin | rip (3 segments, singletons)",
       SiteSet{0, 5, 6}, 1},
      {"one pair: csvax+beowulf | gremlin | rip", SiteSet{0, 1, 5, 6}, 2},
      {"two pairs: csvax+beowulf | rip+mangle", SiteSet{0, 1, 6, 7}, 2},
      {"triple: csvax+beowulf+grendel | gremlin", SiteSet{0, 1, 2, 5}, 3},
      {"clustered: all four on the main segment", SiteSet{0, 1, 2, 3}, 4},
  };

  std::cout << "=== Topology-clustering ablation (4 copies, LDV vs TDV vs "
               "AC) ===\n"
            << "AC is only run on the fully clustered placement (it is "
               "unsafe under partitions).\n\n";

  TextTable table({"Placement", "LDV", "TDV", "TDV/LDV", "AC"});
  std::vector<double> gain;  // LDV/TDV improvement factor per plan
  for (const Clustering& plan : plans) {
    ExperimentSpec spec;
    spec.topology = network->topology;
    spec.profiles = network->profiles;
    spec.options = MakeOptions(args);

    std::vector<std::unique_ptr<ConsistencyProtocol>> protocols;
    protocols.push_back(
        MakeProtocolByName("LDV", network->topology, plan.placement)
            .MoveValue());
    protocols.push_back(
        MakeProtocolByName("TDV", network->topology, plan.placement)
            .MoveValue());
    bool run_ac = plan.max_cosegment == 4;
    if (run_ac) {
      protocols.push_back(AvailableCopy::Make(plan.placement).MoveValue());
    }
    auto results = RunAvailabilityExperiment(spec, std::move(protocols));
    if (!results.ok()) {
      std::cerr << results.status() << "\n";
      return 1;
    }
    double ldv = ResultOf(*results, "LDV").unavailability;
    double tdv = ResultOf(*results, "TDV").unavailability;
    double ac = run_ac ? ResultOf(*results, "AC").unavailability : -1.0;
    gain.push_back(tdv > 0 ? ldv / tdv : 1e9);
    table.AddRow({plan.description, TextTable::Fixed6(ldv),
                  TextTable::Fixed6(tdv),
                  tdv > 0 ? TextTable::Fixed(ldv / tdv, 1) : "inf",
                  TextTable::Fixed6(ac)});
  }
  std::cout << table.ToString();

  std::vector<ShapeCheck> checks = {
      {"no clustering, no gain: dispersed TDV == LDV (factor 1.0)",
       gain[0] > 0.999 && gain[0] < 1.001},
      {"any clustering helps: every clustered plan has TDV <= LDV",
       gain[1] >= 1.0 && gain[2] >= 1.0 && gain[3] >= 1.0 &&
           gain[4] >= 1.0},
      {"full clustering gains at least 10x over LDV",
       gain[4] >= 10.0},
  };
  return ReportShapeChecks(checks);
}

}  // namespace
}  // namespace bench
}  // namespace dynvote

int main(int argc, char** argv) {
  dynvote::bench::BenchArgs args = dynvote::bench::ParseArgs(argc, argv);
  if (args.years == 600.0) args.years = 400.0;
  return dynvote::bench::Run(args);
}
