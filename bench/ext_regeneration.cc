// E14 (extension): regenerable witnesses. When a witness's host goes down
// for a long repair (the paper's 2-week machines), a fixed witness drags
// the quorum down with it; a *regenerable* witness is simply re-created
// on a live site by the majority block. This bench compares, on the paper
// network with real Table 1 failure processes:
//
//   LDV          2 data copies only (csvax, gremlin)
//   LDV+wit      + a fixed witness on mangle (2-week repairs)
//   RLDV         + the same witness, regenerable (threshold 3 events)
//   LDV 3-data   a full third copy on mangle, for reference
//
// Flags: --years=N (default 400), --seed=N

#include <iostream>

#include "bench_util.h"
#include "core/registry.h"
#include "model/site_profile.h"
#include "stats/table.h"
#include "core/dynamic_voting.h"
#include "core/regenerating.h"

namespace dynvote {
namespace bench {
namespace {

int Run(const BenchArgs& args) {
  auto network = MakePaperNetwork();
  if (!network.ok()) {
    std::cerr << network.status() << "\n";
    return 1;
  }
  auto topo = network->topology;
  const SiteSet data{0, 5};       // csvax + gremlin
  const SiteSet witness_site{7};  // mangle: slow to repair

  ExperimentSpec spec;
  spec.topology = topo;
  spec.profiles = network->profiles;
  spec.options = MakeOptions(args);

  std::vector<std::unique_ptr<ConsistencyProtocol>> protocols;
  protocols.push_back(
      MakeProtocolByName("LDV", topo, data).MoveValue());
  {
    DynamicVotingOptions options;
    options.witnesses = witness_site;
    options.name = "LDV+fixed-wit";
    protocols.push_back(
        DynamicVoting::Make(topo, data.Union(witness_site), options)
            .MoveValue());
  }
  {
    RegeneratingOptions options;
    options.regeneration_threshold = 3;
    options.name = "RLDV(regen-wit)";
    protocols.push_back(
        RegeneratingVoting::Make(topo, data, witness_site, options)
            .MoveValue());
  }
  protocols.push_back(
      MakeProtocolByName("LDV", topo, data.Union(witness_site))
          .MoveValue());
  auto* regen = static_cast<RegeneratingVoting*>(protocols[2].get());

  auto results = RunAvailabilityExperiment(spec, std::move(protocols));
  if (!results.ok()) {
    std::cerr << results.status() << "\n";
    return 1;
  }
  (*results)[3].name = "LDV-3data";

  std::cout << "=== Regenerable witnesses (data on csvax+gremlin, witness "
               "on mangle) ===\n\n";
  TextTable table({"Policy", "Unavailability", "95% CI ±", "Outages"});
  for (const PolicyResult& r : *results) {
    table.AddRow({r.name, TextTable::Fixed6(r.unavailability),
                  TextTable::Fixed6(r.stats.ci95_halfwidth),
                  std::to_string(r.num_unavailable_periods)});
  }
  std::cout << table.ToString();
  std::cout << "\nwitness regenerations performed: "
            << regen->regenerations() << "\n";

  double bare = (*results)[0].unavailability;
  double fixed_wit = (*results)[1].unavailability;
  double regen_wit = (*results)[2].unavailability;
  double three_data = (*results)[3].unavailability;
  std::vector<ShapeCheck> checks = {
      {"a fixed witness beats two bare copies", fixed_wit < bare},
      {"a regenerable witness beats a fixed one (it never waits out a "
       "2-week repair)",
       regen_wit <= fixed_wit},
      {"regeneration actually happened (several times per century)",
       regen->regenerations() >
           static_cast<std::uint64_t>(args.years / 25)},
      {"regenerable witness approaches a full third copy (within 5x)",
       regen_wit <= 5.0 * three_data + 1e-6},
  };
  return ReportShapeChecks(checks);
}

}  // namespace
}  // namespace bench
}  // namespace dynvote

int main(int argc, char** argv) {
  dynvote::bench::BenchArgs args = dynvote::bench::ParseArgs(argc, argv);
  if (args.years == 600.0) args.years = 400.0;
  return dynvote::bench::Run(args);
}
