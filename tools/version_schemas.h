// The release schema registry: every stable dynvote-*-vN identifier the
// project emits, paired with the label `dynvote --version` prints. This
// is the single list the CLI iterates, so adding a schema constant
// anywhere in the tree without registering it here is caught by
// tests/lint/version_schemas_test.cc, which diffs this array against
// every schema token the lint scanner finds under src/, bench/ and
// tools/.
//
// The tokens reference the owning headers' constants — never string
// literals — so a version bump at the definition site propagates here
// and into --version automatically.

#pragma once

#include <array>

#include "check/counterexample.h"  // check::kCounterExampleSchema
#include "lint/analyze.h"          // lint::kAnalyzeSchema
#include "lint/lint.h"             // lint::kLintSchema
#include "model/open_loop.h"       // kServingSchema
#include "obs/schemas.h"           // trace / btrace / metrics / bench

namespace dynvote {

struct VersionedSchema {
  const char* label;
  const char* token;
};

inline constexpr std::array<VersionedSchema, 9> kAllSchemas = {{
    {"bench", kHotpathBenchSchema},
    {"check bench", kCheckBenchSchema},
    {"trace", kTraceSchema},
    {"binary trace", kBinaryTraceSchema},
    {"metrics", kMetricsSchema},
    {"serving", kServingSchema},
    {"counterexample", check::kCounterExampleSchema},
    {"lint", lint::kLintSchema},
    {"analyze", lint::kAnalyzeSchema},
}};

}  // namespace dynvote
