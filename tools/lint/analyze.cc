#include "lint/analyze.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/scan.h"
#include "lint/token.h"

namespace dynvote {
namespace lint {
namespace {

// ---------------------------------------------------------------------------
// Symbol model
// ---------------------------------------------------------------------------

struct MemberInfo {
  std::string name;
  int line = 0;
  bool is_static = false;    // static / constexpr: no instance state
  bool is_const = false;     // const non-pointer: immutable after init
  bool is_atomic = false;
  bool is_mutex = false;     // dynvote::Mutex
  bool is_mutex_ref = false;  // Mutex& / Mutex*: borrowed, not owned
  bool is_condvar = false;   // dynvote::CondVar (synchronization, not data)
  bool is_sink = false;      // TraceSink / TracePageSink (virtual dispatch)
  std::string guarded_by;    // DYNVOTE_GUARDED_BY argument, "" when absent
};

struct ClassInfo {
  std::string name;
  int file_index = -1;
  int line = 0;
  bool has_mutex = false;
  std::vector<MemberInfo> members;

  const MemberInfo* FindMutexMember(const std::string& member) const {
    for (const MemberInfo& m : members) {
      if (m.is_mutex && m.name == member) return &m;
    }
    return nullptr;
  }
};

/// Token range of a class body within one file, for innermost-enclosing
/// class lookup during the rules walk.
struct ClassRange {
  int class_index;       // into Model::classes
  std::size_t begin;     // token index of '{'
  std::size_t end;       // token index of matching '}'
};

/// A skipped in-class function body whose declaration carried
/// DYNVOTE_REQUIRES / DYNVOTE_ACQUIRE: the named mutexes are held for
/// the whole body starting at token `lbrace`.
struct InlineSeed {
  std::size_t lbrace;
  int class_index;
  std::vector<std::string> args;  // raw annotation arguments
};

struct ParsedFile {
  const FileInput* input = nullptr;
  PathInfo info;
  std::vector<Line> lines;
  std::vector<Token> toks;
  std::vector<ClassRange> ranges;
  std::vector<InlineSeed> inline_seeds;
};

struct Model {
  std::vector<ParsedFile> files;
  std::vector<ClassInfo> classes;
  std::map<std::string, std::vector<int>> classes_by_name;
  // Mutex member name -> indices of classes declaring such a member.
  std::map<std::string, std::vector<int>> mutex_owners;
  // "Class::Function" -> mutexes named by DYNVOTE_REQUIRES/ACQUIRE.
  std::map<std::string, std::vector<std::string>> fn_held;
  // Names of members whose declared type mentions a trace sink.
  std::set<std::string> sink_members;
  // Per file: indices of files reachable through #include (incl. self).
  std::vector<std::set<int>> closure;
};

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

/// Index of the punct matching `open_text` at `open`, scanning forward.
/// Clamps at end of input (a lexer-level tool must never fail).
std::size_t MatchForward(const std::vector<Token>& toks, std::size_t open,
                         const char* open_text, const char* close_text) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == open_text) {
      ++depth;
    } else if (toks[i].text == close_text) {
      if (--depth == 0) return i;
    }
  }
  return toks.empty() ? 0 : toks.size() - 1;
}

bool IsBasicType(const std::string& s) {
  static const std::set<std::string> kBasic = {
      "void",  "bool",   "char", "int",    "unsigned", "signed",
      "short", "long",   "float", "double", "auto",     "wchar_t",
  };
  return kBasic.count(s) != 0;
}

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// ---------------------------------------------------------------------------
// Class / member extraction
// ---------------------------------------------------------------------------

/// Parses one member/method statement of a class body starting at `i`
/// (first token after the previous statement). Appends to `cls`,
/// records annotation-held mutexes for methods, and returns the index
/// one past the statement (function bodies skipped).
std::size_t ParseMemberStatement(ParsedFile* pf, int class_index,
                                 ClassInfo* cls, std::size_t i, Model* m) {
  const std::vector<Token>& toks = pf->toks;
  std::vector<Token> stmt;
  std::string prev_text;  // last consumed token incl. skipped groups
  bool body_skipped = false;
  std::size_t body_lbrace = 0;
  int paren = 0;

  while (i < toks.size()) {
    const Token& t = toks[i];
    if (IsPunct(t, "(")) {
      ++paren;
      stmt.push_back(t);
      prev_text = t.text;
      ++i;
      continue;
    }
    if (IsPunct(t, ")")) {
      --paren;
      stmt.push_back(t);
      prev_text = t.text;
      ++i;
      continue;
    }
    if (paren == 0 && IsPunct(t, ";")) {
      ++i;
      break;
    }
    if (paren == 0 && IsPunct(t, "}")) break;  // end of class body
    if (paren == 0 && IsPunct(t, "{")) {
      // Function body, or a member's brace-initializer? A body follows
      // the declarator's ')' (possibly via const/noexcept/override/...)
      // or a ctor-init-list entry; an initializer follows the member
      // name, '=' or a template '>'.
      const bool fn_body =
          prev_text == ")" || prev_text == "}" || prev_text == "const" ||
          prev_text == "noexcept" || prev_text == "override" ||
          prev_text == "final" || prev_text == "try";
      std::size_t close = MatchForward(toks, i, "{", "}");
      if (fn_body) {
        body_skipped = true;
        body_lbrace = i;
        i = close + 1;
        if (i < toks.size() && IsPunct(toks[i], ";")) ++i;
        break;
      }
      prev_text = "}";
      i = close + 1;
      continue;
    }
    stmt.push_back(t);
    prev_text = t.text;
    ++i;
  }
  if (stmt.empty()) return i;

  // Strip annotation macros, remembering their names and arguments.
  std::vector<std::pair<std::string, std::string>> annotations;
  std::vector<Token> decl;
  for (std::size_t k = 0; k < stmt.size();) {
    if (stmt[k].kind == TokKind::kIdent &&
        StartsWith(stmt[k].text, "DYNVOTE_")) {
      std::string macro = stmt[k].text;
      std::string arg;
      ++k;
      if (k < stmt.size() && IsPunct(stmt[k], "(")) {
        std::size_t close = MatchForward(stmt, k, "(", ")");
        for (std::size_t a = k + 1; a < close; ++a) {
          if (!arg.empty() && stmt[a].kind == TokKind::kIdent &&
              stmt[a - 1].kind == TokKind::kIdent) {
            arg.push_back(' ');
          }
          arg.append(stmt[a].text);
        }
        k = close + 1;
      }
      annotations.emplace_back(std::move(macro), std::move(arg));
      continue;
    }
    decl.push_back(stmt[k]);
    ++k;
  }
  if (decl.empty()) return i;

  // Function or data member? Scan at top nesting level: the first
  // identifier directly followed by '(' (before any top-level '=') is a
  // declarator; `operator` always means a function.
  int angle = 0, nest = 0;
  bool is_function = false;
  std::string fn_name;
  for (std::size_t k = 0; k < decl.size(); ++k) {
    const Token& t = decl[k];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(" || t.text == "[") ++nest;
      if (t.text == ")" || t.text == "]") --nest;
      if (nest == 0 && angle == 0 && t.text == "=") break;  // initializer
      if (t.text == "<" && k > 0 &&
          (decl[k - 1].kind == TokKind::kIdent || decl[k - 1].text == ">")) {
        ++angle;
      } else if (t.text == ">" && angle > 0) {
        --angle;
      }
      continue;
    }
    if (nest != 0 || angle != 0 || t.kind != TokKind::kIdent) continue;
    if (t.text == "operator") {
      is_function = true;
      break;
    }
    if (k + 1 < decl.size() && IsPunct(decl[k + 1], "(") &&
        !IsBasicType(t.text)) {
      is_function = true;
      fn_name = t.text;
      break;
    }
  }

  if (is_function) {
    std::vector<std::string> held;
    for (const auto& [macro, arg] : annotations) {
      if (macro == "DYNVOTE_REQUIRES" || macro == "DYNVOTE_ACQUIRE" ||
          macro == "DYNVOTE_ACQUIRE_SHARED" ||
          macro == "DYNVOTE_REQUIRES_SHARED") {
        if (!arg.empty()) held.push_back(arg);
      }
    }
    if (!held.empty()) {
      if (!fn_name.empty()) {
        auto& dest = m->fn_held[cls->name + "::" + fn_name];
        dest.insert(dest.end(), held.begin(), held.end());
      }
      if (body_skipped) {
        pf->inline_seeds.push_back({body_lbrace, class_index, held});
      }
    }
    return i;
  }

  // Data member: the name is the last top-level identifier.
  MemberInfo member;
  member.line = decl.front().line;
  angle = nest = 0;
  bool has_const = false, has_ptr = false, has_ref = false;
  std::vector<std::string> top_idents;
  for (std::size_t k = 0; k < decl.size(); ++k) {
    const Token& t = decl[k];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(" || t.text == "[") ++nest;
      if (t.text == ")" || t.text == "]") --nest;
      if (nest == 0 && angle == 0 && t.text == "=") break;
      if (nest == 0 && angle == 0 && t.text == "*") has_ptr = true;
      if (nest == 0 && angle == 0 && t.text == "&") has_ref = true;
      if (t.text == "<" && k > 0 &&
          (decl[k - 1].kind == TokKind::kIdent || decl[k - 1].text == ">")) {
        ++angle;
      } else if (t.text == ">" && angle > 0) {
        --angle;
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "static" || t.text == "constexpr") member.is_static = true;
    if (t.text == "const") has_const = true;
    // Type properties may hide inside template arguments
    // (std::vector<TraceSink*>), so inspect identifiers at every depth.
    if (t.text == "atomic") member.is_atomic = true;
    if (t.text == "CondVar") member.is_condvar = true;
    if (t.text == "TraceSink" || t.text == "TracePageSink") {
      member.is_sink = true;
    }
    if (nest == 0 && angle == 0) top_idents.push_back(t.text);
  }
  if (top_idents.empty()) return i;
  member.name = top_idents.back();
  if (member.name == "mutable" || IsBasicType(member.name) ||
      member.name == "const" || top_idents.size() < 2) {
    return i;  // not a recognizable member declaration
  }
  // `Mutex` must name the member's own type (top level), not a template
  // argument or the target of a pointer.
  for (std::size_t k = 0; k + 1 < top_idents.size(); ++k) {
    if (top_idents[k] == "Mutex") member.is_mutex = true;
  }
  member.is_mutex_ref = member.is_mutex && (has_ref || has_ptr);
  member.is_const = has_const && !has_ptr && !member.is_mutex;
  for (const auto& [macro, arg] : annotations) {
    if (macro == "DYNVOTE_GUARDED_BY" || macro == "DYNVOTE_PT_GUARDED_BY") {
      member.guarded_by = arg.empty() ? "<unnamed>" : arg;
    }
  }
  if (member.is_mutex && !member.is_mutex_ref) {
    cls->has_mutex = true;
    m->mutex_owners[member.name].push_back(class_index);
  }
  if (member.is_sink) m->sink_members.insert(member.name);
  cls->members.push_back(std::move(member));
  return i;
}

std::size_t ParseClassAt(ParsedFile* pf, int file_index, std::size_t i,
                         Model* m);

/// Parses a class body starting at the '{' at `lbrace`; returns the
/// index one past the matching '}'.
std::size_t ParseClassBody(ParsedFile* pf, int file_index, int class_index,
                           std::size_t lbrace, Model* m) {
  const std::vector<Token>& toks = pf->toks;
  std::size_t end = MatchForward(toks, lbrace, "{", "}");
  std::size_t i = lbrace + 1;
  while (i < end) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kIdent) {
      if ((t.text == "public" || t.text == "private" ||
           t.text == "protected") &&
          i + 1 < end && IsPunct(toks[i + 1], ":")) {
        i += 2;
        continue;
      }
      if (t.text == "using" || t.text == "typedef" || t.text == "friend" ||
          t.text == "static_assert") {
        // A friend may be defined inline: the brace body ends the
        // declaration (no trailing ';').
        while (i < end && !IsPunct(toks[i], ";")) {
          if (IsPunct(toks[i], "(")) {
            i = MatchForward(toks, i, "(", ")");
          } else if (IsPunct(toks[i], "{")) {
            i = MatchForward(toks, i, "{", "}") + 1;
            break;
          }
          ++i;
        }
        if (i < end && IsPunct(toks[i], ";")) ++i;
        continue;
      }
      if (t.text == "template" && i + 1 < end && IsPunct(toks[i + 1], "<")) {
        i = MatchForward(toks, i + 1, "<", ">") + 1;
        continue;
      }
      if (t.text == "enum") {
        while (i < end && !IsPunct(toks[i], ";")) {
          if (IsPunct(toks[i], "{")) {
            i = MatchForward(toks, i, "{", "}");
          }
          ++i;
        }
        ++i;
        continue;
      }
      if (t.text == "class" || t.text == "struct") {
        i = ParseClassAt(pf, file_index, i, m);
        continue;
      }
    }
    // m->classes may reallocate while nested classes parse, so re-index.
    std::size_t next =
        ParseMemberStatement(pf, class_index, &m->classes[class_index], i, m);
    // Guarantee progress on any token sequence the statement parser
    // declines (stray '}' from a construct it skipped imprecisely).
    i = next > i ? next : i + 1;
  }
  return end + 1;
}

/// Parses a class/struct introduction at token `i` (the keyword).
/// Handles forward declarations; returns the index one past the
/// construct.
std::size_t ParseClassAt(ParsedFile* pf, int file_index, std::size_t i,
                         Model* m) {
  const std::vector<Token>& toks = pf->toks;
  std::size_t j = i + 1;
  std::string name;
  // The name is the first identifier that is not an annotation macro
  // (DYNVOTE_CAPABILITY("mutex"), DYNVOTE_SCOPED_CAPABILITY) and not a
  // contextual keyword.
  while (j < toks.size()) {
    const Token& t = toks[j];
    if (IsPunct(t, "[")) {  // [[attribute]]
      j = MatchForward(toks, j, "[", "]") + 1;
      continue;
    }
    if (t.kind == TokKind::kIdent) {
      if (StartsWith(t.text, "DYNVOTE_") || t.text == "final" ||
          t.text == "alignas") {
        ++j;
        if (j < toks.size() && IsPunct(toks[j], "(")) {
          j = MatchForward(toks, j, "(", ")") + 1;
        }
        continue;
      }
      name = t.text;
      ++j;
      break;
    }
    break;  // '{' (anonymous), ';', ':', ...
  }
  // Find the body or the terminating ';' (skipping the base clause).
  while (j < toks.size() && !IsPunct(toks[j], "{") && !IsPunct(toks[j], ";")) {
    if (IsPunct(toks[j], "(")) {
      j = MatchForward(toks, j, "(", ")");
    }
    ++j;
  }
  if (j >= toks.size() || IsPunct(toks[j], ";")) return j + 1;
  if (name.empty()) return MatchForward(toks, j, "{", "}") + 1;

  int class_index = static_cast<int>(m->classes.size());
  ClassInfo cls;
  cls.name = name;
  cls.file_index = file_index;
  cls.line = toks[i].line;
  m->classes.push_back(std::move(cls));
  m->classes_by_name[name].push_back(class_index);
  std::size_t end = MatchForward(toks, j, "{", "}");
  pf->ranges.push_back({class_index, j, end});
  return ParseClassBody(pf, file_index, class_index, j, m);
}

void ParseClasses(ParsedFile* pf, int file_index, Model* m) {
  const std::vector<Token>& toks = pf->toks;
  std::size_t i = 0;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (IsIdent(t, "template") && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "<")) {
      i = MatchForward(toks, i + 1, "<", ">") + 1;
      continue;
    }
    if (IsIdent(t, "enum")) {
      while (i < toks.size() && !IsPunct(toks[i], ";")) {
        if (IsPunct(toks[i], "{")) i = MatchForward(toks, i, "{", "}");
        ++i;
      }
      ++i;
      continue;
    }
    if (IsIdent(t, "class") || IsIdent(t, "struct")) {
      i = ParseClassAt(pf, file_index, i, m);
      continue;
    }
    ++i;
  }
}

// ---------------------------------------------------------------------------
// Include closure
// ---------------------------------------------------------------------------

void BuildClosure(Model* m) {
  const std::size_t n = m->files.size();
  std::vector<std::vector<int>> direct(n);
  for (std::size_t f = 0; f < n; ++f) {
    for (const Line& line : m->files[f].lines) {
      if (line.include.empty()) continue;
      for (std::size_t g = 0; g < n; ++g) {
        const std::string& path = m->files[g].input->path;
        if (path == line.include ||
            EndsWith(path, "/" + line.include)) {
          direct[f].push_back(static_cast<int>(g));
        }
      }
    }
  }
  m->closure.resize(n);
  for (std::size_t f = 0; f < n; ++f) {
    std::vector<int> stack = {static_cast<int>(f)};
    while (!stack.empty()) {
      int cur = stack.back();
      stack.pop_back();
      if (!m->closure[f].insert(cur).second) continue;
      for (int next : direct[cur]) stack.push_back(next);
    }
  }
}

// ---------------------------------------------------------------------------
// Lock-order + lock-hygiene walk
// ---------------------------------------------------------------------------

struct HeldLock {
  std::string mutex;
  int depth = 0;  // brace depth at the acquisition site
  int line = 0;
  bool annotated = false;  // seeded from REQUIRES/ACQUIRE, no real site
};

struct EdgeCollector {
  std::vector<LockEdge> edges;
  std::set<std::pair<std::string, std::string>> seen;

  void Add(const std::string& from, const std::string& to,
           const std::string& file, int line) {
    if (seen.insert({from, to}).second) {
      edges.push_back({from, to, file, line});
    }
  }
};

/// The innermost class whose body token range contains token `i`.
int EnclosingClass(const ParsedFile& pf, std::size_t i) {
  int best = -1;
  std::size_t best_span = 0;
  for (const ClassRange& r : pf.ranges) {
    if (i <= r.begin || i >= r.end) continue;
    std::size_t span = r.end - r.begin;
    if (best < 0 || span < best_span) {
      best = r.class_index;
      best_span = span;
    }
  }
  return best;
}

/// Canonical name for the mutex identifier `name` acquired in `pf` at
/// token `tok_index` with out-of-line class context `fn_class` (-1 when
/// none). Resolution: enclosing class member, then a unique owner in
/// the include closure, then a unique owner globally, else `?::name`.
std::string ResolveMutex(const Model& m, const ParsedFile& pf,
                         int file_index, std::size_t tok_index,
                         int fn_class, const std::string& name) {
  int ctx = fn_class >= 0 ? fn_class : EnclosingClass(pf, tok_index);
  if (ctx >= 0 && m.classes[ctx].FindMutexMember(name) != nullptr) {
    return m.classes[ctx].name + "::" + name;
  }
  auto it = m.mutex_owners.find(name);
  if (it != m.mutex_owners.end()) {
    std::vector<int> visible;
    const std::set<int>& closure = m.closure[file_index];
    for (int cls : it->second) {
      if (closure.count(m.classes[cls].file_index)) visible.push_back(cls);
    }
    if (visible.size() == 1) return m.classes[visible[0]].name + "::" + name;
    if (it->second.size() == 1) {
      return m.classes[it->second[0]].name + "::" + name;
    }
  }
  return "?::" + name;
}

/// Extracts the mutex identifier from a MutexLock argument list:
/// the last identifier inside the parens (`&shards_[i].mutex` ->
/// `mutex`).
std::string LockArgName(const std::vector<Token>& toks, std::size_t open,
                        std::size_t close) {
  std::string name;
  for (std::size_t k = open + 1; k < close; ++k) {
    if (toks[k].kind == TokKind::kIdent) name = toks[k].text;
  }
  return name;
}

/// Verifies that the `(` at `open` (following `Class::Name`) begins a
/// function *definition*, i.e. a balanced parameter list followed —
/// possibly via qualifiers, annotations and a constructor init list —
/// by a body `{`. Returns the token index of the body brace, or 0.
std::size_t FindDefinitionBody(const std::vector<Token>& toks,
                               std::size_t open) {
  std::size_t j = MatchForward(toks, open, "(", ")") + 1;
  bool init_list = false;
  std::string prev = ")";
  while (j < toks.size()) {
    const Token& t = toks[j];
    if (IsPunct(t, ";") || IsPunct(t, "=")) return 0;  // declaration
    if (IsPunct(t, "{")) {
      // In an init list, `name{...}` is a member initializer; a `{`
      // after `)` / `}` / `,`-free position is the body.
      if (init_list && (prev != ")" && prev != "}" && prev != ",")) {
        j = MatchForward(toks, j, "{", "}");
        prev = "}";
        ++j;
        continue;
      }
      return j;
    }
    if (IsPunct(t, ":")) {
      init_list = true;
      prev = t.text;
      ++j;
      continue;
    }
    if (IsPunct(t, "(")) {
      j = MatchForward(toks, j, "(", ")") + 1;
      prev = ")";
      continue;
    }
    if (t.kind == TokKind::kIdent || IsPunct(t, ",") || IsPunct(t, "::") ||
        IsPunct(t, "&") || IsPunct(t, "*") || IsPunct(t, "->") ||
        IsPunct(t, "<") || IsPunct(t, ">") || t.kind == TokKind::kNumber ||
        t.kind == TokKind::kString) {
      prev = t.text;
      ++j;
      continue;
    }
    return 0;  // unexpected token: an expression, not a definition
  }
  return 0;
}

void WalkLocks(const Model& m, int file_index, EdgeCollector* edges,
               std::vector<Finding>* hygiene_findings,
               std::set<std::string>* nodes) {
  const ParsedFile& pf = m.files[file_index];
  const std::vector<Token>& toks = pf.toks;
  const std::string& path = pf.input->path;

  int brace_depth = 0;
  std::vector<HeldLock> held;
  int fn_class = -1;
  int fn_body_depth = -1;
  // Pending annotation seeds keyed by the token index of the body '{'.
  std::map<std::size_t, std::pair<int, std::vector<std::string>>> pending;
  for (const InlineSeed& seed : pf.inline_seeds) {
    pending[seed.lbrace] = {seed.class_index, seed.args};
  }

  auto push_seeds = [&](int cls, const std::vector<std::string>& args,
                        std::size_t tok_index, int line) {
    for (const std::string& raw : args) {
      // The annotation argument may be an expression (`&mu_`, `mu`);
      // resolve its trailing identifier like a lock site.
      std::string name;
      for (const Token& t : Tokenize(raw)) {
        if (t.kind == TokKind::kIdent) name = t.text;
      }
      if (name.empty()) continue;
      std::string canonical =
          cls >= 0 && m.classes[cls].FindMutexMember(name) != nullptr
              ? m.classes[cls].name + "::" + name
              : ResolveMutex(m, pf, file_index, tok_index, cls, name);
      held.push_back({canonical, brace_depth, line, true});
    }
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];

    if (IsPunct(t, "{")) {
      ++brace_depth;
      auto it = pending.find(i);
      if (it != pending.end()) {
        push_seeds(it->second.first, it->second.second, i, t.line);
        pending.erase(it);
      }
      continue;
    }
    if (IsPunct(t, "}")) {
      --brace_depth;
      while (!held.empty() && held.back().depth > brace_depth) {
        held.pop_back();
      }
      if (fn_body_depth >= 0 && brace_depth < fn_body_depth) {
        fn_class = -1;
        fn_body_depth = -1;
      }
      continue;
    }

    // Out-of-line definition: `Class::Name(...) ... {` establishes the
    // class context and the annotation-held seeds for the body.
    if (fn_body_depth < 0 && t.kind == TokKind::kIdent &&
        i + 3 < toks.size() && IsPunct(toks[i + 1], "::") &&
        toks[i + 2].kind == TokKind::kIdent && IsPunct(toks[i + 3], "(")) {
      auto by_name = m.classes_by_name.find(t.text);
      if (by_name != m.classes_by_name.end()) {
        std::size_t body = FindDefinitionBody(toks, i + 3);
        if (body != 0) {
          int cls = -1;
          for (int candidate : by_name->second) {
            if (m.closure[file_index].count(
                    m.classes[candidate].file_index)) {
              cls = candidate;
              break;
            }
          }
          if (cls < 0) cls = by_name->second.front();
          fn_class = cls;
          fn_body_depth = brace_depth + 1;
          auto fn = m.fn_held.find(t.text + "::" + toks[i + 2].text);
          if (fn != m.fn_held.end()) {
            pending[body] = {cls, fn->second};
          }
        }
      }
    }

    // Lock acquisition: `MutexLock guard(expr);` (brace form included).
    if (IsIdent(t, "MutexLock") && i + 2 < toks.size() &&
        toks[i + 1].kind == TokKind::kIdent &&
        (IsPunct(toks[i + 2], "(") || IsPunct(toks[i + 2], "{"))) {
      const char* open = toks[i + 2].text == "(" ? "(" : "{";
      const char* close = toks[i + 2].text == "(" ? ")" : "}";
      std::size_t end = MatchForward(toks, i + 2, open, close);
      std::string name = LockArgName(toks, i + 2, end);
      if (!name.empty()) {
        std::string canonical =
            ResolveMutex(m, pf, file_index, i, fn_class, name);
        nodes->insert(canonical);
        const bool allowed =
            IsAllowed(pf.lines, static_cast<std::size_t>(t.line - 1),
                      "lock-order");
        if (!allowed) {
          for (const HeldLock& h : held) {
            edges->Add(h.mutex, canonical, path, t.line);
          }
        }
        held.push_back({canonical, brace_depth, t.line, false});
      }
      i = end;
      continue;
    }

    // Hygiene: nothing slow, throwing or re-entrant while a lock is
    // held.
    if (held.empty()) continue;
    const HeldLock& innermost = held.back();
    auto hygiene = [&](const std::string& what) {
      if (IsAllowed(pf.lines, static_cast<std::size_t>(t.line - 1),
                    "lock-hygiene")) {
        return;
      }
      std::string msg = what + " while holding " + innermost.mutex;
      if (innermost.annotated) {
        msg += " (held per annotation)";
      } else {
        msg += " (locked at line " + std::to_string(innermost.line) + ")";
      }
      msg +=
          "; locks must not cover throws, stream I/O or sink dispatch "
          "— move the work outside the critical section";
      hygiene_findings->push_back({"lock-hygiene", path, t.line, msg, false});
    };

    if (IsIdent(t, "throw")) {
      hygiene("throw-expression");
      continue;
    }
    if (IsIdent(t, "DYNVOTE_LOG")) {
      hygiene("stream logging (DYNVOTE_LOG)");
      continue;
    }
    if (t.kind == TokKind::kIdent &&
        (t.text == "cout" || t.text == "cerr" || t.text == "clog") &&
        i >= 2 && IsPunct(toks[i - 1], "::") && IsIdent(toks[i - 2], "std")) {
      hygiene("std::" + t.text + " I/O");
      continue;
    }
    if (t.kind == TokKind::kIdent && m.sink_members.count(t.text) != 0 &&
        i + 3 < toks.size() &&
        (IsPunct(toks[i + 1], "->") || IsPunct(toks[i + 1], ".")) &&
        toks[i + 2].kind == TokKind::kIdent && IsPunct(toks[i + 3], "(")) {
      hygiene("virtual dispatch through trace sink `" + t.text + "`");
      continue;
    }
  }
}

// ---------------------------------------------------------------------------
// Cycle detection (iterative Tarjan SCC)
// ---------------------------------------------------------------------------

void DetectCycles(LockGraph* graph, std::vector<Finding>* findings) {
  const std::size_t n = graph->nodes.size();
  std::map<std::string, int> index_of;
  for (std::size_t i = 0; i < n; ++i) {
    index_of[graph->nodes[i]] = static_cast<int>(i);
  }
  std::vector<std::vector<int>> adj(n);
  for (const LockEdge& e : graph->edges) {
    adj[index_of[e.from]].push_back(index_of[e.to]);
  }

  std::vector<int> order(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int counter = 0;
  std::vector<std::vector<int>> sccs;

  struct Frame {
    int v;
    std::size_t child;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (order[root] != -1) continue;
    std::vector<Frame> frames = {{static_cast<int>(root), 0}};
    while (!frames.empty()) {
      Frame& f = frames.back();
      int v = f.v;
      if (f.child == 0) {
        order[v] = low[v] = counter++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      if (f.child < adj[v].size()) {
        int w = adj[v][f.child++];
        if (order[w] == -1) {
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], order[w]);
        }
      } else {
        if (low[v] == order[v]) {
          std::vector<int> scc;
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(w);
            if (w == v) break;
          }
          sccs.push_back(std::move(scc));
        }
        frames.pop_back();
        if (!frames.empty()) {
          int parent = frames.back().v;
          low[parent] = std::min(low[parent], low[v]);
        }
      }
    }
  }

  for (const std::vector<int>& scc : sccs) {
    bool cyclic = scc.size() > 1;
    if (!cyclic) {
      for (int w : adj[scc[0]]) {
        if (w == scc[0]) cyclic = true;
      }
    }
    if (!cyclic) continue;
    graph->acyclic = false;
    std::vector<std::string> names;
    for (auto it = scc.rbegin(); it != scc.rend(); ++it) {
      names.push_back(graph->nodes[*it]);
    }
    std::string cycle;
    for (const std::string& name : names) {
      if (!cycle.empty()) cycle += " -> ";
      cycle += name;
    }
    cycle += " -> " + names.front();
    graph->cycles.push_back(cycle);
    // Anchor the finding at the first recorded edge inside the SCC.
    std::set<std::string> in_scc(names.begin(), names.end());
    for (const LockEdge& e : graph->edges) {
      if (in_scc.count(e.from) != 0 && in_scc.count(e.to) != 0) {
        findings->push_back(
            {"lock-order", e.file, e.line,
             "lock acquisition cycle (potential deadlock): " + cycle +
                 "; impose a global order or collapse to one mutex",
             false});
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// GUARDED_BY coverage
// ---------------------------------------------------------------------------

bool InThreadedDir(const PathInfo& info) {
  return info.in_src &&
         (info.src_dir == "util" || info.src_dir == "obs" ||
          info.src_dir == "check" || info.src_dir == "stats");
}

void CheckGuardedBy(const Model& m, std::vector<Finding>* findings) {
  for (const ClassInfo& cls : m.classes) {
    if (!cls.has_mutex) continue;
    const ParsedFile& pf = m.files[cls.file_index];
    if (!InThreadedDir(pf.info)) continue;
    for (const MemberInfo& member : cls.members) {
      if (member.is_static || member.is_const || member.is_atomic ||
          member.is_mutex || member.is_condvar) {
        continue;
      }
      if (!member.guarded_by.empty()) continue;
      if (IsAllowed(pf.lines, static_cast<std::size_t>(member.line - 1),
                    "guarded-by")) {
        continue;
      }
      findings->push_back(
          {"guarded-by", pf.input->path, member.line,
           "mutable member `" + member.name + "` of Mutex-owning class `" +
               cls.name +
               "` has no DYNVOTE_GUARDED_BY annotation; annotate it or "
               "carry a proof suppression explaining why unsynchronized "
               "access is safe",
           false});
    }
  }
}

// ---------------------------------------------------------------------------
// Schema-fields cross-check
// ---------------------------------------------------------------------------

struct KeySite {
  std::string file;
  int line = 0;
};

/// Wire key(s) a TraceEvent field serializes to. Unlisted fields use
/// their own name.
const std::map<std::string, std::vector<std::string>>& FieldAliases() {
  static const std::map<std::string, std::vector<std::string>> kAliases = {
      {"type", {"ev"}},         {"replication", {"rep"}},
      {"generation", {"gen"}},  {"latency_ms", {"lat_ms"}},
      {"set_r", {"R"}},         {"set_q", {"Q"}},
      {"set_s", {"S"}},         {"set_t", {"T"}},
      {"set_pm", {"Pm"}},
  };
  return kAliases;
}

std::vector<std::string> KeysForField(const std::string& field) {
  auto it = FieldAliases().find(field);
  if (it != FieldAliases().end()) return it->second;
  return {field};
}

void CheckSchemaFields(const Model& m, std::vector<Finding>* findings) {
  // The record struct.
  const ClassInfo* record = nullptr;
  auto it = m.classes_by_name.find("TraceEvent");
  if (it != m.classes_by_name.end()) record = &m.classes[it->second.front()];

  // JSONL encoder keys: `\"key\":` inside string literals. A file
  // participates only if it emits the discriminator key `ev` — stray
  // JSON renderers (metrics, reports) never qualify.
  static const std::regex kKeyRe(R"re(\\"([A-Za-z_][A-Za-z0-9_]*)\\":)re");
  std::map<std::string, KeySite> encoder_keys;
  std::set<int> encoder_files;
  for (std::size_t f = 0; f < m.files.size(); ++f) {
    const ParsedFile& pf = m.files[f];
    if (!pf.info.is_code) continue;
    std::map<std::string, KeySite> local;
    for (const Token& t : pf.toks) {
      if (t.kind != TokKind::kString) continue;
      auto begin = std::sregex_iterator(t.text.begin(), t.text.end(), kKeyRe);
      for (auto match = begin; match != std::sregex_iterator(); ++match) {
        const std::string key = (*match)[1].str();
        local.emplace(key, KeySite{pf.input->path, t.line});
      }
    }
    if (local.count("ev") == 0) continue;
    encoder_files.insert(static_cast<int>(f));
    for (auto& [key, site] : local) encoder_keys.emplace(key, site);
  }

  // Binary codec field references: `event.field` / `event->field` in
  // the codec translation units.
  std::set<std::string> codec_refs;
  bool codec_present = false;
  for (const ParsedFile& pf : m.files) {
    const std::string& base = pf.info.filename;
    if (base != "binary_trace.cc" && base != "binary_trace.h") continue;
    codec_present = true;
    const std::vector<Token>& toks = pf.toks;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (IsIdent(toks[i], "event") &&
          (IsPunct(toks[i + 1], ".") || IsPunct(toks[i + 1], "->")) &&
          toks[i + 2].kind == TokKind::kIdent) {
        codec_refs.insert(toks[i + 2].text);
      }
    }
  }

  // Documented keys: first-column backticked identifiers of
  // `| field | type | meaning |` tables in the trace-schema docs.
  static const std::regex kTickRe(R"re(`([A-Za-z_][A-Za-z0-9_]*)`)re");
  std::map<std::string, KeySite> doc_keys;
  for (const ParsedFile& pf : m.files) {
    if (!pf.info.is_markdown) continue;
    if (pf.input->content.find("dynvote-trace-v1") == std::string::npos) {
      continue;
    }
    bool in_table = false;
    for (std::size_t idx = 0; idx < pf.lines.size(); ++idx) {
      const std::string& raw = pf.lines[idx].raw;
      std::string squeezed;
      for (char c : raw) {
        if (c != ' ' && c != '\t') squeezed.push_back(c);
      }
      if (squeezed == "|field|type|meaning|") {
        in_table = true;
        continue;
      }
      if (!in_table) continue;
      if (raw.empty() || raw[0] != '|') {
        in_table = false;
        continue;
      }
      std::size_t second_bar = raw.find('|', 1);
      if (second_bar == std::string::npos) continue;
      const std::string cell = raw.substr(1, second_bar - 1);
      if (cell.find("---") != std::string::npos) continue;
      auto begin = std::sregex_iterator(cell.begin(), cell.end(), kTickRe);
      for (auto match = begin; match != std::sregex_iterator(); ++match) {
        doc_keys.emplace((*match)[1].str(),
                         KeySite{pf.input->path,
                                 static_cast<int>(idx + 1)});
      }
    }
  }

  // Like the lint's schema-docs rule: every participant must be in the
  // input set, otherwise the cross-check is silently inactive.
  if (record == nullptr || encoder_files.empty() || !codec_present ||
      doc_keys.empty()) {
    return;
  }

  static const std::set<std::string> kIgnoredKeys = {"schema", "seed"};
  const ParsedFile& record_file = m.files[record->file_index];
  std::set<std::string> field_keys;  // keys reachable from struct fields

  for (const MemberInfo& member : record->members) {
    if (member.is_static) continue;
    const std::vector<std::string> keys = KeysForField(member.name);
    for (const std::string& key : keys) field_keys.insert(key);
    const bool allowed = IsAllowed(
        record_file.lines, static_cast<std::size_t>(member.line - 1),
        "schema-fields");
    bool encoded = false;
    for (const std::string& key : keys) {
      if (encoder_keys.count(key) != 0) encoded = true;
    }
    if (!encoded && !allowed) {
      findings->push_back(
          {"schema-fields", record_file.input->path, member.line,
           "TraceEvent field `" + member.name +
               "` is never emitted by the JSONL encoder (expected key `" +
               keys.front() + "`); emit it or drop the field",
           false});
    }
    if (codec_refs.count(member.name) == 0 && !allowed) {
      findings->push_back(
          {"schema-fields", record_file.input->path, member.line,
           "TraceEvent field `" + member.name +
               "` is not referenced by the binary codec "
               "(binary_trace.cc); the binary and JSONL traces would "
               "diverge",
           false});
    }
  }

  for (const auto& [key, site] : encoder_keys) {
    if (kIgnoredKeys.count(key) != 0) continue;
    const ParsedFile* pf = nullptr;
    for (const ParsedFile& candidate : m.files) {
      if (candidate.input->path == site.file) pf = &candidate;
    }
    const bool allowed =
        pf != nullptr &&
        IsAllowed(pf->lines, static_cast<std::size_t>(site.line - 1),
                  "schema-fields");
    if (field_keys.count(key) == 0 && !allowed) {
      findings->push_back(
          {"schema-fields", site.file, site.line,
           "JSONL key `" + key +
               "` does not correspond to any TraceEvent field; stale "
               "encoder code or a missing struct field",
           false});
    }
    if (doc_keys.count(key) == 0 && !allowed) {
      findings->push_back(
          {"schema-fields", site.file, site.line,
           "JSONL key `" + key +
               "` is undocumented: add it to the field tables in the "
               "trace-schema docs",
           false});
    }
  }

  for (const auto& [key, site] : doc_keys) {
    if (kIgnoredKeys.count(key) != 0) continue;
    if (encoder_keys.count(key) != 0) continue;
    findings->push_back(
        {"schema-fields", site.file, site.line,
         "documented trace key `" + key +
             "` is never emitted by the JSONL encoder; the docs have "
             "drifted from the schema",
         false});
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry point + rendering
// ---------------------------------------------------------------------------

AnalyzeResult RunAnalyze(const std::vector<FileInput>& files) {
  Model m;
  m.files.resize(files.size());
  for (std::size_t f = 0; f < files.size(); ++f) {
    ParsedFile& pf = m.files[f];
    pf.input = &files[f];
    pf.info = ClassifyPath(files[f].path);
    pf.lines = SplitLines(files[f].content);
    if (pf.info.is_code) pf.toks = Tokenize(files[f].content);
  }
  BuildClosure(&m);
  for (std::size_t f = 0; f < files.size(); ++f) {
    if (m.files[f].info.is_code) {
      ParseClasses(&m.files[f], static_cast<int>(f), &m);
    }
  }

  AnalyzeResult result;
  result.files_scanned = static_cast<int>(files.size());

  // Every Mutex member is a node even when never locked: the DOT export
  // is the full hierarchy, not just the exercised part.
  std::set<std::string> nodes;
  for (const ClassInfo& cls : m.classes) {
    for (const MemberInfo& member : cls.members) {
      if (member.is_mutex && !member.is_mutex_ref) {
        nodes.insert(cls.name + "::" + member.name);
      }
    }
  }

  EdgeCollector edges;
  std::vector<Finding> order_findings;
  std::vector<Finding> hygiene_findings;
  for (std::size_t f = 0; f < files.size(); ++f) {
    const PathInfo& info = m.files[f].info;
    if (!info.is_code) continue;
    if (!info.in_src && !info.in_bench && !info.in_tools) continue;
    WalkLocks(m, static_cast<int>(f), &edges, &hygiene_findings, &nodes);
  }
  for (const LockEdge& e : edges.edges) {
    nodes.insert(e.from);
    nodes.insert(e.to);
  }
  result.lock_graph.nodes.assign(nodes.begin(), nodes.end());
  result.lock_graph.edges = edges.edges;
  std::sort(result.lock_graph.edges.begin(), result.lock_graph.edges.end(),
            [](const LockEdge& a, const LockEdge& b) {
              return std::tie(a.from, a.to) < std::tie(b.from, b.to);
            });
  DetectCycles(&result.lock_graph, &order_findings);

  std::vector<Finding> guarded;
  CheckGuardedBy(m, &guarded);
  std::vector<Finding> schema;
  CheckSchemaFields(m, &schema);

  // Rule-family order, stable within each family.
  for (auto* family : {&order_findings, &guarded, &hygiene_findings,
                       &schema}) {
    result.findings.insert(result.findings.end(), family->begin(),
                           family->end());
  }
  return result;
}

std::string ToJson(const AnalyzeResult& result) {
  std::string out;
  out.append("{\n  \"schema\": \"");
  out.append(kAnalyzeSchema);
  out.append("\",\n  \"files_scanned\": ");
  out.append(std::to_string(result.files_scanned));
  out.append(",\n  \"findings\": [");
  bool first = true;
  for (const Finding& f : result.findings) {
    out.append(first ? "\n    {" : ",\n    {");
    first = false;
    out.append("\"rule\": ");
    AppendJsonString(f.rule, &out);
    out.append(", \"file\": ");
    AppendJsonString(f.file, &out);
    out.append(", \"line\": ");
    out.append(std::to_string(f.line));
    out.append(", \"message\": ");
    AppendJsonString(f.message, &out);
    out.push_back('}');
  }
  out.append(first ? "]" : "\n  ]");
  out.append(",\n  \"lock_graph\": {\n    \"acyclic\": ");
  out.append(result.lock_graph.acyclic ? "true" : "false");
  out.append(",\n    \"nodes\": [");
  first = true;
  for (const std::string& node : result.lock_graph.nodes) {
    if (!first) out.append(", ");
    first = false;
    AppendJsonString(node, &out);
  }
  out.append("],\n    \"edges\": [");
  first = true;
  for (const LockEdge& e : result.lock_graph.edges) {
    out.append(first ? "\n      {" : ",\n      {");
    first = false;
    out.append("\"from\": ");
    AppendJsonString(e.from, &out);
    out.append(", \"to\": ");
    AppendJsonString(e.to, &out);
    out.append(", \"file\": ");
    AppendJsonString(e.file, &out);
    out.append(", \"line\": ");
    out.append(std::to_string(e.line));
    out.push_back('}');
  }
  out.append(first ? "]" : "\n    ]");
  out.append(",\n    \"cycles\": [");
  first = true;
  for (const std::string& cycle : result.lock_graph.cycles) {
    if (!first) out.append(", ");
    first = false;
    AppendJsonString(cycle, &out);
  }
  out.append("]\n  }\n}\n");
  return out;
}

std::string ToText(const AnalyzeResult& result) {
  std::string out;
  for (const Finding& f : result.findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  out += std::to_string(result.findings.size()) + " finding(s) in " +
         std::to_string(result.files_scanned) + " file(s) analyzed; lock "
         "graph: " +
         std::to_string(result.lock_graph.nodes.size()) + " mutex(es), " +
         std::to_string(result.lock_graph.edges.size()) + " edge(s), ";
  if (result.lock_graph.acyclic) {
    out += "acyclic.\n";
  } else {
    out += "CYCLIC:\n";
    for (const std::string& cycle : result.lock_graph.cycles) {
      out += "  " + cycle + "\n";
    }
  }
  return out;
}

std::string ToDot(const LockGraph& graph) {
  std::string out;
  out.append("digraph lock_order {\n");
  out.append("  rankdir=LR;\n");
  out.append("  node [shape=box];\n");
  std::set<std::string> with_edges;
  for (const LockEdge& e : graph.edges) {
    with_edges.insert(e.from);
    with_edges.insert(e.to);
  }
  for (const std::string& node : graph.nodes) {
    if (with_edges.count(node) != 0) continue;
    out.append("  \"" + node + "\";\n");
  }
  for (const LockEdge& e : graph.edges) {
    out.append("  \"" + e.from + "\" -> \"" + e.to + "\" [label=\"" +
               e.file + ":" + std::to_string(e.line) + "\"];\n");
  }
  out.append("}\n");
  return out;
}

std::vector<RuleInfo> AnalyzeRules() {
  return {
      {"lock-order",
       "the global mutex-acquisition graph (MutexLock nesting + "
       "DYNVOTE_ACQUIRE/REQUIRES annotations) must be acyclic"},
      {"guarded-by",
       "mutable non-atomic members of Mutex-owning classes in threaded "
       "dirs (util/ obs/ check/ stats/) need DYNVOTE_GUARDED_BY or a "
       "proof suppression"},
      {"lock-hygiene",
       "no throw, stream I/O / logging, or virtual dispatch through a "
       "trace sink while a lock is held"},
      {"schema-fields",
       "TraceEvent struct fields, the JSONL encoder, the binary codec "
       "and the docs field tables must agree field by field"},
  };
}

}  // namespace lint
}  // namespace dynvote
