// dynvote_lint: project-rule static checks too repo-specific for a
// general linter, encoded as data-driven line/token rules over the
// source tree (no compiler or libclang dependency, so the lint runs in
// milliseconds and anywhere the tree checks out).
//
// Rules (see docs/static_analysis.md for the full catalog):
//   nondeterminism      banned RNG/time sources in src/ and bench/
//   wall-clock          std::chrono::system_clock outside src/obs
//   unordered-container std::unordered_{map,set} in result-affecting dirs
//   iostream-header     #include <iostream> in a header (fixable)
//   raw-mutex           std::mutex & friends outside thread_annotations.h
//   layering            inter-directory include DAG violations in src/
//   schema-docs         dynvote-*-vN strings must match source <-> docs
//
// Suppression: append `// dynvote-lint: allow(<rule>[, <rule>...])` to
// the offending line, or place that comment alone on the line above.

#pragma once

#include <map>
#include <string>
#include <vector>

namespace dynvote {
namespace lint {

/// Lint JSON output schema identifier (--json); bump on field changes.
inline constexpr const char kLintSchema[] = "dynvote-lint-v1";

/// One file to scan. `path` drives rule scoping (src/core vs bench vs
/// docs); it may be absolute or repo-relative — classification keys off
/// the last `src/`, `bench/`, `tools/` or `docs/` path component.
struct FileInput {
  std::string path;
  std::string content;
};

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;  // 1-based
  std::string message;
  bool fixable = false;
};

struct Options {
  /// Rewrite fixable findings (the include rules) instead of reporting
  /// them; fixed contents land in RunResult::fixes.
  bool apply_fixes = false;
};

struct RunResult {
  /// Remaining findings, in input-file order then line order.
  std::vector<Finding> findings;
  int files_scanned = 0;
  int fixes_applied = 0;
  /// path -> full replacement content for files --fix rewrote.
  std::map<std::string, std::string> fixes;
};

/// All dynvote-*-vN schema tokens appearing in `content`, deduplicated,
/// in first-sighting order — the exact pattern the schema-docs rule
/// matches, exposed so release tooling (the `dynvote --version` schema
/// registry) can be cross-checked against the source tree.
std::vector<std::string> CollectSchemaTokens(const std::string& content);

/// Runs every rule over `files`. The schema-docs cross-check only runs
/// when the input contains at least one markdown file and one source
/// file (linting a lone .cc must not demand the docs be re-passed).
RunResult RunLint(const std::vector<FileInput>& files, const Options& opts);

/// Renders findings as dynvote-lint-v1 JSON (stable key order).
std::string ToJson(const RunResult& result);

/// Renders findings as `file:line: [rule] message` lines + a summary.
std::string ToText(const RunResult& result);

struct RuleInfo {
  std::string name;
  std::string summary;
};

/// The rule catalog, for --list-rules and the docs cross-check tests.
std::vector<RuleInfo> Rules();

}  // namespace lint
}  // namespace dynvote
