#include "lint/token.h"

#include <cstddef>

namespace dynvote {
namespace lint {
namespace {

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool IsIdentChar(char c) {
  return IsIdentStart(c) || (c >= '0' && c <= '9');
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// True when the identifier `text` is a string-literal prefix and the
/// next character opens that literal.
bool IsStringPrefix(const std::string& text) {
  return text == "R" || text == "u8R" || text == "uR" || text == "LR" ||
         text == "UR" || text == "u8" || text == "u" || text == "L" ||
         text == "U";
}

}  // namespace

std::vector<Token> Tokenize(const std::string& content) {
  std::vector<Token> tokens;
  const std::size_t n = content.size();
  std::size_t i = 0;
  int line = 1;

  auto at = [&](std::size_t pos) -> char {
    return pos < n ? content[pos] : '\0';
  };

  while (i < n) {
    char c = content[i];

    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }

    // Line comment (handles backslash continuation).
    if (c == '/' && at(i + 1) == '/') {
      i += 2;
      while (i < n) {
        if (content[i] == '\n') {
          bool spliced = i > 0 && content[i - 1] == '\\';
          ++line;
          ++i;
          if (!spliced) break;
        } else {
          ++i;
        }
      }
      continue;
    }

    // Block comment.
    if (c == '/' && at(i + 1) == '*') {
      i += 2;
      while (i < n && !(content[i] == '*' && at(i + 1) == '/')) {
        if (content[i] == '\n') ++line;
        ++i;
      }
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }

    // Preprocessor directive: only at the start of a (logical) line.
    // Skip the whole directive including continuation lines.
    if (c == '#') {
      bool line_start = true;
      for (std::size_t back = i; back-- > 0;) {
        char b = content[back];
        if (b == '\n') break;
        if (b != ' ' && b != '\t') {
          line_start = false;
          break;
        }
      }
      if (line_start) {
        while (i < n) {
          if (content[i] == '\n') {
            bool spliced = i > 0 && content[i - 1] == '\\';
            ++line;
            ++i;
            if (!spliced) break;
          } else {
            ++i;
          }
        }
        continue;
      }
      tokens.push_back({TokKind::kPunct, "#", line});
      ++i;
      continue;
    }

    // Identifier / keyword — possibly a literal prefix.
    if (IsIdentStart(c)) {
      int start_line = line;
      std::size_t start = i;
      while (i < n && IsIdentChar(content[i])) ++i;
      std::string text = content.substr(start, i - start);

      if (i < n && (content[i] == '"' || content[i] == '\'') &&
          IsStringPrefix(text)) {
        // Fall through to literal scanning with the prefix attached.
        c = content[i];
        bool raw = !text.empty() && text.back() == 'R';
        if (c == '"' && raw) {
          // Raw string: R"delim( ... )delim"
          std::size_t open = content.find('(', i + 1);
          if (open == std::string::npos) {
            tokens.push_back({TokKind::kIdent, text, start_line});
            continue;
          }
          std::string closer =
              ")" + content.substr(i + 1, open - i - 1) + "\"";
          std::size_t close = content.find(closer, open + 1);
          std::size_t lit_end =
              close == std::string::npos ? n : close + closer.size();
          for (std::size_t p = i; p < lit_end; ++p) {
            if (content[p] == '\n') ++line;
          }
          tokens.push_back({TokKind::kString,
                            content.substr(start, lit_end - start),
                            start_line});
          i = lit_end;
          continue;
        }
        // Prefixed ordinary literal: scan it below as if unprefixed,
        // then splice the prefix back on.
        char quote = c;
        std::size_t lit_start = i;
        ++i;
        while (i < n && content[i] != quote) {
          if (content[i] == '\\') ++i;
          if (i < n) {
            if (content[i] == '\n') ++line;
            ++i;
          }
        }
        if (i < n) ++i;  // closing quote
        tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                          text + content.substr(lit_start, i - lit_start),
                          start_line});
        continue;
      }
      tokens.push_back({TokKind::kIdent, std::move(text), start_line});
      continue;
    }

    // Number (coarse: digits, idents, quotes-as-separators, exponent
    // signs and dots in one blob).
    if (IsDigit(c) || (c == '.' && IsDigit(at(i + 1)))) {
      int start_line = line;
      std::size_t start = i;
      ++i;
      while (i < n) {
        char d = content[i];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') &&
                   (content[i - 1] == 'e' || content[i - 1] == 'E' ||
                    content[i - 1] == 'p' || content[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      tokens.push_back(
          {TokKind::kNumber, content.substr(start, i - start), start_line});
      continue;
    }

    // String / char literal.
    if (c == '"' || c == '\'') {
      int start_line = line;
      std::size_t start = i;
      char quote = c;
      ++i;
      while (i < n && content[i] != quote) {
        if (content[i] == '\\') ++i;
        if (i < n) {
          if (content[i] == '\n') ++line;
          ++i;
        }
      }
      if (i < n) ++i;  // closing quote
      tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                        content.substr(start, i - start), start_line});
      continue;
    }

    // Punctuation. "::" and "->" matter to the analyzer as units; every
    // other operator tokenizes character by character (the rules never
    // look at compound operators, and `>>` must stay two `>` so template
    // argument nesting closes correctly).
    if (c == ':' && at(i + 1) == ':') {
      tokens.push_back({TokKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && at(i + 1) == '>') {
      tokens.push_back({TokKind::kPunct, "->", line});
      i += 2;
      continue;
    }
    tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }

  return tokens;
}

}  // namespace lint
}  // namespace dynvote
