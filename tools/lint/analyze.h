// dynvote_analyze: symbol-aware concurrency and determinism analysis on
// top of the dynvote_lint engine. Where the lint is a line scanner, the
// analyzer tokenizes the tree (lint/token.h), builds a lightweight
// include graph and a class/member/function model, and checks the
// properties that keep the parallel paths deterministic and
// deadlock-free (see docs/static_analysis.md for the full catalog):
//
//   lock-order     the global mutex-acquisition graph built from
//                  MutexLock nesting and DYNVOTE_ACQUIRE/REQUIRES
//                  annotations must be acyclic (cycles = potential
//                  deadlock); the hierarchy exports as DOT
//   guarded-by     every mutable non-atomic member of a Mutex-owning
//                  class in the threaded dirs (util/ obs/ check/
//                  stats/) is DYNVOTE_GUARDED_BY-annotated or carries a
//                  proof suppression
//   lock-hygiene   no throw, stream I/O / logging, or virtual dispatch
//                  through a TraceSink while a lock is held — the exact
//                  pattern the async writer exists to avoid
//   schema-fields  the TraceEvent record struct, the JSONL encoder, the
//                  binary codec and the docs field tables must agree
//                  field by field (deepens the lint's schema-docs token
//                  check to field granularity)
//
// Suppression reuses the lint grammar: `// dynvote-lint: allow(<rule>)`
// on the offending line or alone on the line above.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "lint/lint.h"  // FileInput, Finding, RuleInfo

namespace dynvote {
namespace lint {

/// Analyzer JSON output schema identifier (--json); bump on field
/// changes.
inline constexpr const char kAnalyzeSchema[] = "dynvote-analyze-v1";

/// One directed acquisition: `to` was locked while `from` was held, at
/// file:line (the first site observed, in input order).
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;
  int line = 0;
};

/// The global mutex-acquisition graph. Nodes are canonical mutex names
/// (`Class::member`); sorted, deduplicated, deterministic for a fixed
/// input order.
struct LockGraph {
  std::vector<std::string> nodes;
  std::vector<LockEdge> edges;
  bool acyclic = true;
  /// Human-readable cycle descriptions when !acyclic ("A -> B -> A").
  std::vector<std::string> cycles;
};

struct AnalyzeResult {
  /// Remaining findings, ordered by rule family then input order.
  std::vector<Finding> findings;
  int files_scanned = 0;
  LockGraph lock_graph;
};

/// Runs every analysis over `files`. Like the lint's schema-docs rule,
/// the schema-fields cross-check only activates when the inputs contain
/// all of its participants (the TraceEvent struct, the JSONL encoder,
/// the binary codec and at least one markdown field table) — analyzing a
/// lone .cc must not demand the whole tree be re-passed.
AnalyzeResult RunAnalyze(const std::vector<FileInput>& files);

/// Renders the result as dynvote-analyze-v1 JSON (stable key order).
std::string ToJson(const AnalyzeResult& result);

/// Renders findings as `file:line: [rule] message` lines + a summary.
std::string ToText(const AnalyzeResult& result);

/// Renders the lock-acquisition graph as Graphviz DOT (sorted nodes and
/// edges: byte-stable for identical inputs).
std::string ToDot(const LockGraph& graph);

/// The analyzer rule catalog, for --list-rules and the docs cross-check.
std::vector<RuleInfo> AnalyzeRules();

}  // namespace lint
}  // namespace dynvote
