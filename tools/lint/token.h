// A dependency-free C++ tokenizer for the symbol-aware analyzer
// (lint/analyze.h). Produces a flat token stream — identifiers/keywords,
// numbers, string and char literals (raw strings included), and
// punctuation — with 1-based line numbers. Comments are skipped;
// preprocessor directives are skipped whole (with backslash
// continuations honored), because the scan layer (lint/scan.h) already
// exposes #include targets per line and the analyzer reads those there.
//
// This is a lexer, not a compiler front end: it never needs to be fed
// valid C++, it just has to agree with one on where tokens begin and
// end. That is enough to build the class/member/function model the
// analyzer's rules run on.

#pragma once

#include <string>
#include <vector>

namespace dynvote {
namespace lint {

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literal (coarse: one blob incl. suffixes)
  kString,   // string literal, full text including quotes/prefix
  kChar,     // char literal, full text including quotes
  kPunct,    // one operator/punctuator; "::" and "->" are single tokens
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based physical line of the token's first character
};

/// Tokenizes `content`. Unterminated constructs at end of input are
/// closed implicitly (a lexer for a linter must never fail).
std::vector<Token> Tokenize(const std::string& content);

}  // namespace lint
}  // namespace dynvote
