// Command-line driver for the project lint. Exit codes: 0 clean,
// 1 findings remain, 2 usage/IO error.
//
//   dynvote_lint [--json] [--fix] [--list-rules] <files-or-dirs>...
//
// Directories are walked recursively for .h/.hpp/.cc/.cpp/.md files in
// sorted order, so output is stable for stable trees. Markdown inputs
// participate only in the schema-docs cross-check — pass the docs
// alongside the source to enable it (CI does).

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

namespace fs = std::filesystem;
using dynvote::lint::FileInput;

bool WantedExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" ||
         ext == ".md";
}

bool ReadFileInto(const fs::path& path, std::vector<FileInput>* files) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "dynvote_lint: cannot read " << path.string() << "\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  files->push_back({path.generic_string(), buffer.str()});
  return true;
}

bool CollectPath(const std::string& arg, std::vector<FileInput>* files) {
  fs::path path(arg);
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    std::vector<fs::path> found;
    for (const auto& entry : fs::recursive_directory_iterator(path, ec)) {
      if (entry.is_regular_file() && WantedExtension(entry.path())) {
        found.push_back(entry.path());
      }
    }
    std::sort(found.begin(), found.end());
    for (const fs::path& p : found) {
      if (!ReadFileInto(p, files)) return false;
    }
    return true;
  }
  if (fs::is_regular_file(path, ec)) return ReadFileInto(path, files);
  std::cerr << "dynvote_lint: no such file or directory: " << arg << "\n";
  return false;
}

int Usage() {
  std::cerr
      << "usage: dynvote_lint [--json] [--fix] [--list-rules] <paths>...\n"
         "  --json        machine-readable output (dynvote-lint-v1)\n"
         "  --fix         rewrite fixable findings in place\n"
         "  --list-rules  print the rule catalog and exit\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool fix = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--list-rules") {
      for (const auto& rule : dynvote::lint::Rules()) {
        std::cout << rule.name << "\n    " << rule.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dynvote_lint: unknown flag " << arg << "\n";
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return Usage();

  std::vector<FileInput> files;
  for (const std::string& path : paths) {
    if (!CollectPath(path, &files)) return 2;
  }

  dynvote::lint::Options options;
  options.apply_fixes = fix;
  dynvote::lint::RunResult result = dynvote::lint::RunLint(files, options);

  for (const auto& [path, content] : result.fixes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "dynvote_lint: cannot write " << path << "\n";
      return 2;
    }
    out << content;
  }

  if (json) {
    std::cout << dynvote::lint::ToJson(result);
  } else {
    std::cout << dynvote::lint::ToText(result);
  }
  return result.findings.empty() ? 0 : 1;
}
