// Command-line driver for the project lint. Exit codes: 0 clean,
// 1 findings remain, 2 usage/IO error.
//
//   dynvote_lint [--json] [--fix] [--list-rules] <files-or-dirs>...
//
// Directories are walked recursively for .h/.hpp/.cc/.cpp/.md files in
// sorted order, so output is stable for stable trees. Markdown inputs
// participate only in the schema-docs cross-check — pass the docs
// alongside the source to enable it (CI does). Input collection is
// shared with dynvote_analyze (lint/file_collect.h).

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/file_collect.h"
#include "lint/lint.h"

namespace {

int Usage() {
  std::cerr
      << "usage: dynvote_lint [--json] [--fix] [--list-rules] <paths>...\n"
         "  --json        machine-readable output (dynvote-lint-v1)\n"
         "  --fix         rewrite fixable findings in place\n"
         "  --list-rules  print the rule catalog and exit\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool fix = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--list-rules") {
      for (const auto& rule : dynvote::lint::Rules()) {
        std::cout << rule.name << "\n    " << rule.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dynvote_lint: unknown flag " << arg << "\n";
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return Usage();

  std::vector<dynvote::lint::FileInput> files;
  for (const std::string& path : paths) {
    if (!dynvote::lint::CollectPath("dynvote_lint", path, &files)) return 2;
  }

  dynvote::lint::Options options;
  options.apply_fixes = fix;
  dynvote::lint::RunResult result = dynvote::lint::RunLint(files, options);

  for (const auto& [path, content] : result.fixes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "dynvote_lint: cannot write " << path << "\n";
      return 2;
    }
    out << content;
  }

  if (json) {
    std::cout << dynvote::lint::ToJson(result);
  } else {
    std::cout << dynvote::lint::ToText(result);
  }
  return result.findings.empty() ? 0 : 1;
}
