// Shared input collection for the lint/analyzer CLI drivers
// (dynvote_lint, dynvote_analyze): directories walk recursively for
// .h/.hpp/.cc/.cpp/.md files in sorted order, so output is stable for
// stable trees. Header-only on purpose — the drivers are the only
// users and both are single translation units.

#pragma once

#include <algorithm>
#include <cstdio>  // stderr via fprintf: no <iostream> in a header
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"  // FileInput

namespace dynvote {
namespace lint {

inline bool WantedExtension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" ||
         ext == ".md";
}

inline bool ReadFileInto(const char* tool, const std::filesystem::path& path,
                         std::vector<FileInput>* files) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot read %s\n", tool,
                 path.string().c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  files->push_back({path.generic_string(), buffer.str()});
  return true;
}

/// Appends `arg` (file or directory) to `files`; prints an error under
/// the given tool name and returns false when unreadable/missing.
inline bool CollectPath(const char* tool, const std::string& arg,
                        std::vector<FileInput>* files) {
  namespace fs = std::filesystem;
  fs::path path(arg);
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    std::vector<fs::path> found;
    for (const auto& entry : fs::recursive_directory_iterator(path, ec)) {
      if (entry.is_regular_file() && WantedExtension(entry.path())) {
        found.push_back(entry.path());
      }
    }
    std::sort(found.begin(), found.end());
    for (const fs::path& p : found) {
      if (!ReadFileInto(tool, p, files)) return false;
    }
    return true;
  }
  if (fs::is_regular_file(path, ec)) return ReadFileInto(tool, path, files);
  std::fprintf(stderr, "%s: no such file or directory: %s\n", tool,
               arg.c_str());
  return false;
}

}  // namespace lint
}  // namespace dynvote
