#include "lint/scan.h"

#include <algorithm>
#include <cstddef>
#include <regex>
#include <utility>

namespace dynvote {
namespace lint {
namespace {

const std::regex kAllowRe(R"re(dynvote-lint:\s*allow\(([^)\n]*)\))re");
const std::regex kIncludeRe(R"re(^\s*#\s*include\s*([<"])([^>"]+)[>"])re");

void ParseAllows(const std::string& raw, std::set<std::string>* allows) {
  auto begin = std::sregex_iterator(raw.begin(), raw.end(), kAllowRe);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::string list = (*it)[1].str();
    std::size_t pos = 0;
    while (pos < list.size()) {
      std::size_t comma = list.find(',', pos);
      if (comma == std::string::npos) comma = list.size();
      std::string name = list.substr(pos, comma - pos);
      name.erase(0, name.find_first_not_of(" \t"));
      std::size_t last = name.find_last_not_of(" \t:");
      name.erase(last == std::string::npos ? 0 : last + 1);
      if (!name.empty()) allows->insert(name);
      pos = comma + 1;
    }
  }
}

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// True if the identifier characters ending just before `quote_pos` form
/// a raw-string prefix (R, u8R, uR, LR, UR) that begins a token — i.e.
/// the quote opens a raw string literal, not an ordinary one.
bool HasRawPrefix(const std::string& raw, std::size_t quote_pos) {
  static const char* kPrefixes[] = {"u8R", "uR", "LR", "UR", "R"};
  for (const char* prefix : kPrefixes) {
    std::size_t len = std::char_traits<char>::length(prefix);
    if (quote_pos < len) continue;
    if (raw.compare(quote_pos - len, len, prefix) != 0) continue;
    // The prefix must start the token: `FOOR"(..` is an identifier
    // followed by a string, not a raw literal.
    if (quote_pos > len && IsIdentChar(raw[quote_pos - len - 1])) continue;
    return true;
  }
  return false;
}

}  // namespace

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

PathInfo ClassifyPath(const std::string& raw_path) {
  std::string path = raw_path;
  std::replace(path.begin(), path.end(), '\\', '/');

  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t slash = path.find('/', start);
    if (slash == std::string::npos) slash = path.size();
    if (slash > start) parts.push_back(path.substr(start, slash - start));
    start = slash + 1;
  }

  PathInfo info;
  if (!parts.empty()) info.filename = parts.back();
  info.is_header = EndsWith(path, ".h") || EndsWith(path, ".hpp");
  info.is_code = info.is_header || EndsWith(path, ".cc") ||
                 EndsWith(path, ".cpp");
  info.is_markdown = EndsWith(path, ".md");

  // The last marker component wins, so absolute checkout prefixes (which
  // may themselves contain "src") never misclassify.
  for (std::size_t i = parts.size(); i-- > 0;) {
    const std::string& part = parts[i];
    if (part == "src" || part == "bench" || part == "tools" ||
        part == "docs") {
      info.in_src = part == "src";
      info.in_bench = part == "bench";
      info.in_tools = part == "tools";
      info.in_docs = part == "docs";
      // src_dir needs both a directory and a filename after "src".
      if (info.in_src && i + 2 < parts.size()) {
        info.src_dir = parts[i + 1];
      }
      break;
    }
  }
  return info;
}

std::vector<Line> SplitLines(const std::string& content) {
  std::vector<Line> lines;
  // Lexical state that survives a newline: /* */ blocks, raw string
  // bodies, and (via backslash continuation) strings, char literals and
  // // comments.
  bool in_block_comment = false;
  bool in_line_comment = false;
  bool in_string = false;
  bool in_char = false;
  bool in_raw_string = false;
  std::string raw_closer;  // ")delim\"" that ends the raw literal

  std::size_t start = 0;
  while (start <= content.size()) {
    std::size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    Line line;
    line.raw = content.substr(start, end - start);
    // Lines that open inside a comment, string or raw-string body are
    // content, not code: no #include or allow() parsing there.
    const bool starts_in_code = !in_block_comment && !in_line_comment &&
                                !in_string && !in_char && !in_raw_string;

    std::string code;
    code.reserve(line.raw.size());
    for (std::size_t i = 0; i < line.raw.size(); ++i) {
      char c = line.raw[i];
      char next = i + 1 < line.raw.size() ? line.raw[i + 1] : '\0';
      if (in_line_comment) {
        code.push_back(' ');
        continue;
      }
      if (in_block_comment) {
        if (c == '*' && next == '/') {
          in_block_comment = false;
          ++i;
          code.push_back(' ');
        }
        code.push_back(' ');
        continue;
      }
      if (in_raw_string) {
        if (line.raw.compare(i, raw_closer.size(), raw_closer) == 0) {
          in_raw_string = false;
          code.append(raw_closer.size(), ' ');
          i += raw_closer.size() - 1;
        } else {
          code.push_back(' ');
        }
        continue;
      }
      if (in_string || in_char) {
        char quote = in_string ? '"' : '\'';
        if (c == '\\') {
          code.push_back(' ');
          if (next != '\0') {
            code.push_back(' ');
            ++i;
          }
        } else if (c == quote) {
          in_string = in_char = false;
          code.push_back(c);
        } else {
          code.push_back(' ');
        }
        continue;
      }
      if (c == '/' && next == '/') {
        in_line_comment = true;
        code.push_back(' ');
        code.push_back(' ');
        ++i;
        continue;
      }
      if (c == '/' && next == '*') {
        in_block_comment = true;
        code.push_back(' ');
        code.push_back(' ');
        ++i;
        continue;
      }
      if (c == '"') {
        if (HasRawPrefix(line.raw, i)) {
          // R"delim( ... )delim" — capture the delimiter, then blank
          // everything (possibly across lines) until the matching closer.
          std::size_t open = line.raw.find('(', i + 1);
          if (open != std::string::npos) {
            raw_closer.assign(1, ')');
            raw_closer.append(line.raw, i + 1, open - i - 1);
            raw_closer.push_back('"');
            in_raw_string = true;
            code.append(open - i + 1, ' ');
            i = open;
            continue;
          }
          // Malformed raw literal (no opening paren on the line): fall
          // through and treat it as an ordinary string.
        }
        in_string = true;
        code.push_back(c);
        continue;
      }
      if (c == '\'') {
        in_char = true;
        code.push_back(c);
        continue;
      }
      code.push_back(c);
    }
    line.code = std::move(code);

    // A trailing backslash splices the next physical line (phase-2
    // translation), so an open string/char literal or // comment
    // continues there. Without it, those states end with the line; block
    // comments and raw string bodies span lines on their own.
    const bool spliced = !line.raw.empty() && line.raw.back() == '\\';
    if (!spliced) {
      in_line_comment = false;
      in_string = false;
      in_char = false;
    }

    std::smatch inc;
    if (starts_in_code && std::regex_search(line.raw, inc, kIncludeRe)) {
      line.include = inc[2].str();
      line.include_angle = inc[1].str() == "<";
    }

    if (starts_in_code) ParseAllows(line.raw, &line.allows);
    if (!line.allows.empty()) {
      std::size_t first = line.raw.find_first_not_of(" \t");
      line.pure_suppression =
          first != std::string::npos && line.raw.compare(first, 2, "//") == 0;
    }

    lines.push_back(std::move(line));
    if (end == content.size()) break;
    start = end + 1;
  }
  return lines;
}

bool IsAllowed(const std::vector<Line>& lines, std::size_t index,
               const std::string& rule) {
  if (lines[index].allows.count(rule) != 0) return true;
  // A comment-only allow() line suppresses the line that follows it.
  return index > 0 && lines[index - 1].pure_suppression &&
         lines[index - 1].allows.count(rule) != 0;
}

void AppendJsonString(std::string_view value, std::string* out) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace lint
}  // namespace dynvote
