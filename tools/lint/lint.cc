#include "lint/lint.h"

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <regex>
#include <set>
#include <string_view>
#include <utility>

#include "lint/scan.h"

namespace dynvote {
namespace lint {
namespace {

// Path classification, comment/string-aware line splitting and the
// allow() suppression grammar live in lint/scan.h, shared with the
// symbol-aware analyzer (lint/analyze.h).

// ---------------------------------------------------------------------------
// Token rules (data-driven)

enum class Scope {
  kSrcAndBench,        // all of src/ + bench/
  kSrcExceptObsBench,  // src/ except src/obs, plus bench/
  kResultAffecting,    // src/core, src/sim, src/repl, src/stats
  kAllCode,            // src/ + bench/ + tools/
};

struct TokenRuleSpec {
  const char* rule;
  const char* pattern;
  Scope scope;
  const char* message;  // "%s" is replaced with the matched token
};

const TokenRuleSpec kTokenRules[] = {
    {"nondeterminism",
     R"((std::s?rand\b|\bsrand\s*\(|std::random_device\b)"
     R"(|\btime\s*\(\s*(nullptr|NULL|0)\s*\)))",
     Scope::kSrcAndBench,
     "banned nondeterminism source `%s`: results must be a pure function "
     "of the seed; use the seeded RNGs in util/rng.h"},
    {"wall-clock", R"(\bsystem_clock\b)", Scope::kSrcExceptObsBench,
     "wall-clock `%s` outside src/obs breaks replay determinism; use "
     "steady_clock for durations or SimTime for simulated time"},
    {"unordered-container",
     R"(std::unordered_(map|set|multimap|multiset)\b)",
     Scope::kResultAffecting,
     "`%s` in a result-affecting path: iteration order is unspecified "
     "and can leak into outputs; use a sorted container, or audit every "
     "use and suppress with a proof comment"},
    {"raw-mutex",
     R"(std::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex)"
     R"(|shared_mutex|shared_timed_mutex|condition_variable)"
     R"(|condition_variable_any)\b)",
     Scope::kAllCode,
     "raw `%s` outside util/thread_annotations.h: use dynvote::Mutex / "
     "MutexLock / CondVar so clang thread-safety analysis can see it"},
};

bool InScope(const TokenRuleSpec& spec, const PathInfo& info) {
  if (!info.is_code) return false;
  switch (spec.scope) {
    case Scope::kSrcAndBench:
      return info.in_src || info.in_bench;
    case Scope::kSrcExceptObsBench:
      return (info.in_src && info.src_dir != "obs") || info.in_bench;
    case Scope::kResultAffecting:
      return info.in_src &&
             (info.src_dir == "core" || info.src_dir == "sim" ||
              info.src_dir == "repl" || info.src_dir == "stats");
    case Scope::kAllCode:
      return info.in_src || info.in_bench || info.in_tools;
  }
  return false;
}

std::string FormatMessage(const char* format, const std::string& token) {
  std::string out = format;
  std::size_t pos = out.find("%s");
  if (pos != std::string::npos) out.replace(pos, 2, token);
  return out;
}

// ---------------------------------------------------------------------------
// Layering rule: the include DAG between src/ directories. A directory
// may include only the listed directories (itself always included).
// Keep in sync with the diagram in docs/static_analysis.md.

const std::map<std::string, std::set<std::string>>& AllowedDeps() {
  static const std::map<std::string, std::set<std::string>> kDeps = {
      {"util", {"util"}},
      {"obs", {"obs", "util"}},
      {"repl", {"repl", "util"}},
      {"net", {"net", "obs", "util"}},
      {"sim", {"sim", "obs", "util"}},
      {"core", {"core", "net", "obs", "repl", "util"}},
      {"stats", {"stats", "sim", "obs", "util"}},
      {"kv", {"kv", "core", "net", "obs", "util"}},
      {"model",
       {"model", "core", "net", "obs", "repl", "sim", "stats", "util"}},
      {"check", {"check", "core", "kv", "net", "obs", "repl", "util"}},
  };
  return kDeps;
}

std::string JoinSet(const std::set<std::string>& s) {
  std::string out;
  for (const std::string& e : s) {
    if (!out.empty()) out += ", ";
    out += e;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Schema rule

const std::regex kSchemaRe(R"(dynvote-[a-z0-9]+(-[a-z0-9]+)*-v[0-9]+)");

struct SchemaSighting {
  std::string file;
  int line = 0;
};

void CollectSchemas(const std::vector<Line>& lines, const std::string& path,
                    std::map<std::string, SchemaSighting>* out) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (IsAllowed(lines, i, "schema-docs")) continue;
    const std::string& raw = lines[i].raw;
    auto begin = std::sregex_iterator(raw.begin(), raw.end(), kSchemaRe);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      std::string token = it->str();
      if (out->find(token) == out->end()) {
        (*out)[token] = {path, static_cast<int>(i + 1)};
      }
    }
  }
}

}  // namespace

std::vector<std::string> CollectSchemaTokens(const std::string& content) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const Line& line : SplitLines(content)) {
    auto begin =
        std::sregex_iterator(line.raw.begin(), line.raw.end(), kSchemaRe);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      std::string token = it->str();
      if (seen.insert(token).second) out.push_back(token);
    }
  }
  return out;
}

RunResult RunLint(const std::vector<FileInput>& files, const Options& opts) {
  RunResult result;
  result.files_scanned = static_cast<int>(files.size());

  std::map<std::string, SchemaSighting> code_schemas;
  std::map<std::string, SchemaSighting> doc_schemas;
  bool saw_code = false;
  bool saw_markdown = false;

  std::vector<std::regex> token_regexes;
  token_regexes.reserve(std::size(kTokenRules));
  for (const TokenRuleSpec& spec : kTokenRules) {
    token_regexes.emplace_back(spec.pattern);
  }

  for (const FileInput& file : files) {
    PathInfo info = ClassifyPath(file.path);
    std::vector<Line> lines = SplitLines(file.content);

    if (info.is_markdown) {
      saw_markdown = true;
      CollectSchemas(lines, file.path, &doc_schemas);
      continue;
    }
    if (!info.is_code) continue;
    if (info.in_src || info.in_bench || info.in_tools) {
      saw_code = true;
      CollectSchemas(lines, file.path, &code_schemas);
    }

    bool fixed_any = false;
    std::vector<std::string> fixed_lines;
    fixed_lines.reserve(lines.size());

    for (std::size_t i = 0; i < lines.size(); ++i) {
      const Line& line = lines[i];
      std::string fixed_line = line.raw;

      // Token rules.
      const bool exempt_annotations_header =
          info.in_src && info.src_dir == "util" &&
          info.filename == "thread_annotations.h";
      for (std::size_t r = 0; r < std::size(kTokenRules); ++r) {
        const TokenRuleSpec& spec = kTokenRules[r];
        if (!InScope(spec, info)) continue;
        if (spec.rule == std::string_view("raw-mutex") &&
            exempt_annotations_header) {
          continue;
        }
        std::smatch m;
        if (!std::regex_search(line.code, m, token_regexes[r])) continue;
        if (IsAllowed(lines, i, spec.rule)) continue;
        result.findings.push_back({spec.rule, file.path,
                                   static_cast<int>(i + 1),
                                   FormatMessage(spec.message, m.str()),
                                   false});
      }

      // Include rules.
      if (!line.include.empty()) {
        if (line.include_angle && line.include == "iostream" &&
            info.is_header &&
            (info.in_src || info.in_bench || info.in_tools) &&
            !IsAllowed(lines, i, "iostream-header")) {
          std::size_t pos = fixed_line.find("<iostream>");
          if (opts.apply_fixes && pos != std::string::npos) {
            fixed_line.replace(pos, 10, "<iosfwd>");
            fixed_any = true;
            ++result.fixes_applied;
          } else {
            result.findings.push_back(
                {"iostream-header", file.path, static_cast<int>(i + 1),
                 "<iostream> in a header drags static stream initializers "
                 "into every includer; use <iosfwd>/<ostream> and move the "
                 "heavy include to the .cc",
                 true});
          }
        }
        if (!line.include_angle && info.in_src && !info.src_dir.empty()) {
          auto dir_it = AllowedDeps().find(info.src_dir);
          std::size_t slash = line.include.find('/');
          if (dir_it != AllowedDeps().end() && slash != std::string::npos) {
            std::string dep = line.include.substr(0, slash);
            if (AllowedDeps().count(dep) == 0) {
              if (!IsAllowed(lines, i, "layering")) {
                result.findings.push_back(
                    {"layering", file.path, static_cast<int>(i + 1),
                     "include of unknown src directory `" + dep +
                         "`; add it to the layering table in "
                         "tools/lint/lint.cc and docs/static_analysis.md",
                     false});
              }
            } else if (dir_it->second.count(dep) == 0 &&
                       !IsAllowed(lines, i, "layering")) {
              result.findings.push_back(
                  {"layering", file.path, static_cast<int>(i + 1),
                   "src/" + info.src_dir + " must not include src/" + dep +
                       " (allowed: " + JoinSet(dir_it->second) + ")",
                   false});
            }
          }
        }
      }

      fixed_lines.push_back(std::move(fixed_line));
    }

    if (fixed_any) {
      std::string fixed;
      fixed.reserve(file.content.size());
      for (std::size_t i = 0; i < fixed_lines.size(); ++i) {
        fixed += fixed_lines[i];
        // Preserve the original trailing-newline shape.
        if (i + 1 < fixed_lines.size() ||
            (!file.content.empty() && file.content.back() == '\n')) {
          fixed += '\n';
        }
      }
      result.fixes[file.path] = std::move(fixed);
    }
  }

  // Schema cross-check: only meaningful when both sides were scanned.
  if (saw_code && saw_markdown) {
    for (const auto& [token, where] : code_schemas) {
      if (doc_schemas.find(token) == doc_schemas.end()) {
        result.findings.push_back(
            {"schema-docs", where.file, where.line,
             "schema string `" + token +
                 "` appears in source but in none of the scanned docs; "
                 "document it (or retire it)",
             false});
      }
    }
    for (const auto& [token, where] : doc_schemas) {
      if (code_schemas.find(token) == code_schemas.end()) {
        result.findings.push_back(
            {"schema-docs", where.file, where.line,
             "schema string `" + token +
                 "` appears in docs but nowhere in the scanned source; "
                 "fix the doc (stale version?)",
             false});
      }
    }
  }

  return result;
}

std::string ToJson(const RunResult& result) {
  std::string out;
  out.append("{\n  \"schema\": \"");
  out.append(kLintSchema);
  out.append("\",\n  \"files_scanned\": ");
  out.append(std::to_string(result.files_scanned));
  out.append(",\n  \"fixes_applied\": ");
  out.append(std::to_string(result.fixes_applied));
  out.append(",\n  \"findings\": [");
  bool first = true;
  for (const Finding& f : result.findings) {
    out.append(first ? "\n    {" : ",\n    {");
    first = false;
    out.append("\"rule\": ");
    AppendJsonString(f.rule, &out);
    out.append(", \"file\": ");
    AppendJsonString(f.file, &out);
    out.append(", \"line\": ");
    out.append(std::to_string(f.line));
    out.append(", \"message\": ");
    AppendJsonString(f.message, &out);
    out.append(", \"fixable\": ");
    out.append(f.fixable ? "true" : "false");
    out.push_back('}');
  }
  out.append(first ? "]" : "\n  ]");
  out.append("\n}\n");
  return out;
}

std::string ToText(const RunResult& result) {
  std::string out;
  for (const Finding& f : result.findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  out += std::to_string(result.findings.size()) + " finding(s) in " +
         std::to_string(result.files_scanned) + " file(s) scanned";
  if (result.fixes_applied > 0) {
    out += ", " + std::to_string(result.fixes_applied) + " fix(es) applied";
  }
  out += ".\n";
  return out;
}

std::vector<RuleInfo> Rules() {
  std::vector<RuleInfo> rules;
  for (const TokenRuleSpec& spec : kTokenRules) {
    rules.push_back({spec.rule, FormatMessage(spec.message, "<token>")});
  }
  rules.push_back({"iostream-header",
                   "#include <iostream> in a header under src/, bench/ or "
                   "tools/ (fixable: rewrites to <iosfwd>)"});
  rules.push_back({"layering",
                   "inter-directory includes in src/ must follow the "
                   "layering DAG (util < obs < {net,sim,repl} < core < "
                   "{kv,stats} < {model,check})"});
  rules.push_back({"schema-docs",
                   "every dynvote-*-vN schema string must appear in both "
                   "the source and the scanned docs"});
  return rules;
}

}  // namespace lint
}  // namespace dynvote
