// Shared scanning layer for the project lint (dynvote_lint) and the
// symbol-aware analyzer (dynvote_analyze): path classification, the
// comment/string-aware line splitter, and the `dynvote-lint: allow()`
// suppression grammar. Factored out of lint.cc so both tools see the
// exact same view of a source file — a suppression that silences a lint
// rule silences an analyzer rule through the identical code path.
//
// The line splitter understands //, /* */, string and char literals,
// C++ raw string literals (R"(...)", including custom delimiters and
// multi-line bodies) and backslash line-continuations (which splice the
// next physical line into a string or // comment).

#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace dynvote {
namespace lint {

/// Where a file sits in the repo layout; drives rule scoping.
struct PathInfo {
  bool in_src = false;
  bool in_bench = false;
  bool in_tools = false;
  bool in_docs = false;
  bool is_header = false;
  bool is_code = false;      // .h/.hpp/.cc/.cpp
  bool is_markdown = false;  // .md
  std::string src_dir;       // "core", "util", ... when in_src
  std::string filename;      // last component
};

bool EndsWith(std::string_view s, std::string_view suffix);

/// Classifies `raw_path`. The last `src/`, `bench/`, `tools/` or
/// `docs/` path component wins, so absolute checkout prefixes (which may
/// themselves contain "src") never misclassify.
PathInfo ClassifyPath(const std::string& raw_path);

/// One physical source line with derived views.
struct Line {
  std::string raw;
  std::string code;        // comments stripped, string/char contents blanked
  std::string include;     // include target when the line is an #include
  bool include_angle = false;
  std::set<std::string> allows;   // rules suppressed on this line
  bool pure_suppression = false;  // comment-only line carrying an allow()
};

/// Splits `content` into lines, stripping comments and blanking string
/// and char literal contents in `code` (so tokens mentioned in comments,
/// docstrings or messages never trip a rule). Tracks /* */ blocks, raw
/// string literals and backslash line-continuations across lines.
std::vector<Line> SplitLines(const std::string& content);

/// True when `rule` is suppressed at `index`: an allow() on the line
/// itself, or a comment-only allow() line directly above.
bool IsAllowed(const std::vector<Line>& lines, std::size_t index,
               const std::string& rule);

/// Appends `value` as a JSON string literal (quotes + escaping).
void AppendJsonString(std::string_view value, std::string* out);

}  // namespace lint
}  // namespace dynvote
