// Command-line driver for the symbol-aware analyzer. Exit codes:
// 0 clean, 1 findings remain (or a lock-order cycle), 2 usage/IO error.
//
//   dynvote_analyze [--json] [--dot <file>] [--list-rules]
//                   <files-or-dirs>...
//
// Directories are walked recursively for .h/.hpp/.cc/.cpp/.md files in
// sorted order, so output is stable for stable trees. Markdown inputs
// participate only in the schema-fields cross-check — pass the docs
// alongside the source to enable it (CI does). --dot writes the mutex
// acquisition hierarchy as Graphviz DOT (use `-` for stdout).

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/analyze.h"
#include "lint/file_collect.h"

namespace {

int Usage() {
  std::cerr << "usage: dynvote_analyze [--json] [--dot <file>] "
               "[--list-rules] <paths>...\n"
               "  --json        machine-readable output "
               "(dynvote-analyze-v1)\n"
               "  --dot <file>  write the lock hierarchy as Graphviz DOT "
               "(`-` = stdout)\n"
               "  --list-rules  print the rule catalog and exit\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string dot_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--dot") {
      if (i + 1 >= argc) return Usage();
      dot_path = argv[++i];
    } else if (arg == "--list-rules") {
      for (const auto& rule : dynvote::lint::AnalyzeRules()) {
        std::cout << rule.name << "\n    " << rule.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dynvote_analyze: unknown flag " << arg << "\n";
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return Usage();

  std::vector<dynvote::lint::FileInput> files;
  for (const std::string& path : paths) {
    if (!dynvote::lint::CollectPath("dynvote_analyze", path, &files)) {
      return 2;
    }
  }

  dynvote::lint::AnalyzeResult result = dynvote::lint::RunAnalyze(files);

  if (!dot_path.empty()) {
    const std::string dot = dynvote::lint::ToDot(result.lock_graph);
    if (dot_path == "-") {
      std::cout << dot;
    } else {
      std::ofstream out(dot_path, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::cerr << "dynvote_analyze: cannot write " << dot_path << "\n";
        return 2;
      }
      out << dot;
    }
  }

  if (json) {
    std::cout << dynvote::lint::ToJson(result);
  } else {
    std::cout << dynvote::lint::ToText(result);
  }
  return result.findings.empty() ? 0 : 1;
}
