// dynvote — command-line front end to the library.
//
//   dynvote print    [--network=FILE]
//   dynvote analyze  [--network=FILE] --sites=a,b,c
//   dynvote simulate [--network=FILE] --sites=a,b,c [--policies=...]
//                    [--years=N] [--rate=R] [--seed=N] [--csv=PATH]
//                    [--objects=N]
//                    [--trace-out=FILE.{jsonl,btrace}]
//                    [--metrics-out=FILE.json]
//   dynvote repeat   [--network=FILE] --sites=a,b,c [--policies=...]
//                    [--years=N] [--rate=R] [--seed=N] [--reps=N]
//                    [--jobs=M] [--objects=N] [--json=PATH]
//                    [--trace-out=FILE.{jsonl,btrace}]
//                    [--metrics-out=FILE.json]
//   dynvote serve    [--config=ABCDEFGH] [--policies=...]
//                    [--arrival-rate=R] [--service-time=MS]
//                    [--msg-cost=MS] [--write-fraction=F] [--years=N]
//                    [--reps=N] [--jobs=M] [--seed=N] [--json=PATH]
//   dynvote scenario [--network=FILE] --sites=a,b,c [--protocol=LDV]
//                    <script.dvs>
//   dynvote trace-summary <trace.jsonl|trace.btrace>
//   dynvote trace-convert <trace.btrace> [--out=FILE.jsonl]
//   dynvote check    [--protocol=ODV] [--topology=single3] [--depth=5]
//                    [--mode=exhaustive|swarm] [--seed=N] [--schedules=N]
//                    [--swarm-depth=N] [--oracle=NAME] [--weaken-mutex]
//                    [--no-memo] [--no-shrink] [--check-jobs=M] [--no-por]
//                    [--out=FILE.json]
//   dynvote check    --replay=counterexample.json
//   dynvote --version
//
// Flags accept both `--flag=value` and `--flag value`.
//
// Without --network the paper's eight-site network is used and sites may
// be given either by name (csvax, ..., mangle) or by the paper's 1-based
// numbers. `analyze` reports partition points, the reachable partition
// patterns and the closed-form static-voting availability; `simulate`
// runs the discrete-event model; `repeat` runs R independent
// replications of it in parallel and reports cross-replication means
// with 95 % confidence intervals; `serve` runs the serving model
// (docs/serving.md) over the paper's placements and reports per-protocol
// messages-per-access and latency percentiles; `scenario` executes a fault
// script
// against a replicated KV store; `trace-summary` aggregates a trace file
// (dynvote-trace-v1 JSONL, or dynvote-btrace-v1 binary — a `--trace-out`
// path ending in .btrace selects the compact binary format, written
// through a background writer thread) into per-protocol grant/denial
// attribution, and `trace-convert` decodes a binary trace to JSONL that
// is byte-identical to what a direct JSONL run would have produced (see
// docs/observability.md). Tracing never changes statistical results:
// traced and untraced runs of the same seed produce identical tables,
// CSV and JSON. `check` model-checks a protocol's safety
// invariants over small fault/access schedules, shrinks any violation to
// a minimal reproducer and replays exported counterexamples (see
// docs/model_checking.md).

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "check/checker.h"
#include "check/counterexample.h"
#include "check/topologies.h"
#include "core/registry.h"
#include "kv/scenario.h"
#include "model/analytic.h"
#include "model/batched_experiment.h"
#include "model/config_parser.h"
#include "model/experiment.h"
#include "model/export.h"
#include "model/replicated_experiment.h"
#include "model/site_profile.h"
#include "net/partition_analysis.h"
#include "obs/async_writer.h"
#include "obs/binary_trace.h"
#include "obs/context.h"
#include "obs/schemas.h"
#include "obs/trace_reader.h"
#include "obs/trace_sink.h"
#include "stats/table.h"
#include "version_schemas.h"

namespace dynvote {
namespace cli {
namespace {

struct Options {
  std::string command;
  std::string network_path;  // empty = paper network
  std::string sites;         // comma-separated
  std::string policies = "MCV,DV,LDV,ODV,TDV,OTDV";
  std::string protocol = "LDV";
  std::string csv_path;
  std::string json_path;
  std::string trace_out_path;    // simulate/repeat: JSONL event trace
  std::string metrics_out_path;  // simulate/repeat: metrics JSON
  std::string positional;  // scenario script / trace-summary input path
  double years = 100.0;
  bool years_set = false;  // serve defaults shorter than simulate/repeat
  double rate = 1.0;
  // Serving model (docs/serving.md). On simulate/repeat the model stays
  // off until --arrival-rate is given; `serve` turns it on with the
  // library defaults.
  std::string config = "ABCDEFGH";  // serve: paper placements to run
  double arrival_rate = 0.0;        // > 0 enables serving on simulate/repeat
  double service_time_ms = 1.0;
  double msg_cost_ms = 0.1;
  double write_fraction = 0.5;
  std::uint64_t seed = 20260704;
  bool quorum_cache = true;
  // repeat: -1 = take the value from the network file's `experiment`
  // declaration (default 1).
  int reps = -1;
  int jobs = -1;
  // simulate/repeat: replications per batched event loop (1 = the
  // per-replication engine). Never changes results.
  int objects = 1;
  // check:
  std::string topology = "single3";
  std::string mode = "exhaustive";
  std::string oracle = "none";
  std::string strict = "auto";
  std::string replay_path;
  std::string out_path;
  int depth = 5;
  int schedules = 256;
  int swarm_depth = 12;
  bool memoize = true;
  bool shrink = true;
  bool weaken_mutex = false;
  // check: replay fan-out width and partial-order reduction. Neither
  // ever changes a verdict, a count, or the counterexample.
  int check_jobs = 1;
  bool por = true;
};

// Exit codes: 0 success, 1 runtime failure, 2 bad flags / usage,
// 3 unknown subcommand (distinct so scripts can tell a typo'd command
// from a malformed invocation of a real one).
constexpr int kExitUsage = 2;
constexpr int kExitUnknownCommand = 3;

constexpr const char kSubcommands[] =
    "print analyze simulate repeat serve scenario trace-summary "
    "trace-convert check";

int Usage() {
  std::cerr <<
      "usage: dynvote "
      "<print|analyze|simulate|repeat|serve|scenario|trace-summary|"
      "trace-convert|check> [options]\n"
      "       dynvote --version\n"
      "(flags accept --flag=value and --flag value)\n"
      "  --network=FILE   network description (default: the paper's)\n"
      "  --sites=a,b,c    copy placement (names, or 1-8 on the paper "
      "network)\n"
      "  --policies=...   simulate/repeat: protocols to compare\n"
      "  --protocol=P     scenario: protocol to run\n"
      "  --reps=N         repeat: independent replications\n"
      "  --jobs=M         repeat: worker threads (0 = all cores; never "
      "changes results)\n"
      "  --objects=N      simulate/repeat: objects per batched event loop\n"
      "                   (runs untraced replications through the batched\n"
      "                   engine in groups of N; never changes results)\n"
      "  --json=PATH      repeat: write per-replication + aggregate JSON\n"
      "  --trace-out=F    simulate/repeat: write " << kTraceSchema
      << " JSONL events\n"
      "                   (a .btrace path writes " << kBinaryTraceSchema
      << " binary instead)\n"
      "  --out=F          trace-convert: JSONL destination (default: "
      "stdout)\n"
      "  --metrics-out=F  simulate/repeat: write " << kMetricsSchema
      << " JSON metrics\n"
      "  --no-quorum-cache  simulate/repeat: disable grant-decision\n"
      "                   memoization (results are identical either way)\n"
      "  --years=N --rate=R --seed=N --csv=PATH\n"
      "serving model (docs/serving.md; " << kServingSchema << "):\n"
      "  --arrival-rate=R simulate/repeat/serve: open-loop Poisson\n"
      "                   arrivals per day, split across the replicas\n"
      "                   (replaces the closed-loop accessor)\n"
      "  --service-time=MS --msg-cost=MS --write-fraction=F\n"
      "                   per-request base service time, per-control-\n"
      "                   message cost, and write mix\n"
      "  --config=A..H    serve: paper placements to report (default all)\n"
      "  --json=PATH      serve: write the " << kServingSchema
      << " report\n"
      "check options (see docs/model_checking.md):\n"
      "  --topology=T     check universe (single2..single8, pairs, "
      "section3)\n"
      "  --depth=N        exhaustive: maximum schedule length\n"
      "  --mode=M         exhaustive (default) or swarm\n"
      "  --schedules=N --swarm-depth=N  swarm size and schedule length\n"
      "  --oracle=O       none, quorum_cache, jm_equivalence, lex_pair\n"
      "  --strict=S       auto (strict iff partition-safe), on, off\n"
      "  --weaken-mutex   test hook: any grant at all violates\n"
      "  --no-memo        disable canonical-state merging\n"
      "  --check-jobs=M   worker threads for the replay fan-out (0 = all\n"
      "                   cores; never changes results)\n"
      "  --no-por         disable partial-order reduction over commuting\n"
      "                   toggles (applied only where provably sound;\n"
      "                   never changes the visited-state set)\n"
      "  --no-shrink      keep the unshrunk failing schedule\n"
      "  --out=FILE       write the counterexample JSON here\n"
      "  --replay=FILE    replay a " << check::kCounterExampleSchema
      << " file instead of exploring\n";
  return kExitUsage;
}

int UnknownCommand(const std::string& command) {
  std::cerr << "dynvote: unknown command '" << command
            << "'\navailable commands: " << kSubcommands
            << "\n(run a command with no arguments, or see --version)\n";
  return kExitUnknownCommand;
}

int Version() {
  // Prints the registry verbatim: tests/lint/version_schemas_test.cc
  // keeps kAllSchemas equal to the set of schema tokens in the tree, so
  // this loop cannot silently omit a schema.
  std::cout << "dynvote schemas:\n";
  for (const VersionedSchema& schema : kAllSchemas) {
    std::string label = schema.label;
    label.resize(15, ' ');
    std::cout << "  " << label << " " << schema.token << "\n";
  }
  return 0;
}

bool IsBooleanFlag(const std::string& a) {
  return a == "--no-quorum-cache" || a == "--no-memo" || a == "--no-shrink" ||
         a == "--weaken-mutex" || a == "--no-por";
}

Result<Options> Parse(int argc, char** argv) {
  if (argc < 2) return Status::InvalidArgument("missing command");
  Options opt;
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    // Accept `--flag value` by folding it into the `--flag=value` form.
    if (a.rfind("--", 0) == 0 && a.find('=') == std::string::npos &&
        !IsBooleanFlag(a) && i + 1 < argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0) {
      a += "=";
      a += argv[++i];
    }
    auto value = [&a](const char* prefix) {
      return a.substr(std::string(prefix).size());
    };
    if (a.rfind("--network=", 0) == 0) {
      opt.network_path = value("--network=");
    } else if (a.rfind("--sites=", 0) == 0) {
      opt.sites = value("--sites=");
    } else if (a.rfind("--policies=", 0) == 0) {
      opt.policies = value("--policies=");
    } else if (a.rfind("--protocol=", 0) == 0) {
      opt.protocol = value("--protocol=");
    } else if (a.rfind("--csv=", 0) == 0) {
      opt.csv_path = value("--csv=");
    } else if (a.rfind("--json=", 0) == 0) {
      opt.json_path = value("--json=");
    } else if (a.rfind("--trace-out=", 0) == 0) {
      opt.trace_out_path = value("--trace-out=");
    } else if (a.rfind("--metrics-out=", 0) == 0) {
      opt.metrics_out_path = value("--metrics-out=");
    } else if (a.rfind("--reps=", 0) == 0) {
      opt.reps = std::stoi(value("--reps="));
      if (opt.reps < 1) {
        return Status::InvalidArgument("--reps must be >= 1");
      }
    } else if (a.rfind("--jobs=", 0) == 0) {
      opt.jobs = std::stoi(value("--jobs="));
      if (opt.jobs < 0) {
        return Status::InvalidArgument("--jobs must be >= 0 (0 = all cores)");
      }
    } else if (a.rfind("--objects=", 0) == 0) {
      opt.objects = std::stoi(value("--objects="));
      if (opt.objects < 1) {
        return Status::InvalidArgument("--objects must be >= 1");
      }
    } else if (a.rfind("--years=", 0) == 0) {
      opt.years = std::stod(value("--years="));
      opt.years_set = true;
    } else if (a.rfind("--rate=", 0) == 0) {
      opt.rate = std::stod(value("--rate="));
    } else if (a.rfind("--config=", 0) == 0) {
      opt.config = value("--config=");
    } else if (a.rfind("--arrival-rate=", 0) == 0) {
      opt.arrival_rate = std::stod(value("--arrival-rate="));
      if (opt.arrival_rate <= 0.0) {
        return Status::InvalidArgument("--arrival-rate must be > 0");
      }
    } else if (a.rfind("--service-time=", 0) == 0) {
      opt.service_time_ms = std::stod(value("--service-time="));
      if (opt.service_time_ms < 0.0) {
        return Status::InvalidArgument("--service-time must be >= 0");
      }
    } else if (a.rfind("--msg-cost=", 0) == 0) {
      opt.msg_cost_ms = std::stod(value("--msg-cost="));
      if (opt.msg_cost_ms < 0.0) {
        return Status::InvalidArgument("--msg-cost must be >= 0");
      }
    } else if (a.rfind("--write-fraction=", 0) == 0) {
      opt.write_fraction = std::stod(value("--write-fraction="));
      if (opt.write_fraction < 0.0 || opt.write_fraction > 1.0) {
        return Status::InvalidArgument("--write-fraction must be in [0, 1]");
      }
    } else if (a.rfind("--seed=", 0) == 0) {
      opt.seed = std::stoull(value("--seed="));
    } else if (a == "--no-quorum-cache") {
      opt.quorum_cache = false;
    } else if (a.rfind("--topology=", 0) == 0) {
      opt.topology = value("--topology=");
    } else if (a.rfind("--mode=", 0) == 0) {
      opt.mode = value("--mode=");
    } else if (a.rfind("--oracle=", 0) == 0) {
      opt.oracle = value("--oracle=");
    } else if (a.rfind("--strict=", 0) == 0) {
      opt.strict = value("--strict=");
    } else if (a.rfind("--replay=", 0) == 0) {
      opt.replay_path = value("--replay=");
    } else if (a.rfind("--out=", 0) == 0) {
      opt.out_path = value("--out=");
    } else if (a.rfind("--depth=", 0) == 0) {
      opt.depth = std::stoi(value("--depth="));
    } else if (a.rfind("--schedules=", 0) == 0) {
      opt.schedules = std::stoi(value("--schedules="));
    } else if (a.rfind("--swarm-depth=", 0) == 0) {
      opt.swarm_depth = std::stoi(value("--swarm-depth="));
    } else if (a == "--no-memo") {
      opt.memoize = false;
    } else if (a == "--no-shrink") {
      opt.shrink = false;
    } else if (a == "--weaken-mutex") {
      opt.weaken_mutex = true;
    } else if (a.rfind("--check-jobs=", 0) == 0) {
      opt.check_jobs = std::stoi(value("--check-jobs="));
      if (opt.check_jobs < 0) {
        return Status::InvalidArgument(
            "--check-jobs must be >= 0 (0 = all cores)");
      }
    } else if (a == "--no-por") {
      opt.por = false;
    } else if (a.rfind("--", 0) == 0) {
      return Status::InvalidArgument("unknown flag " + a);
    } else {
      opt.positional = a;
    }
  }
  return opt;
}

Result<NetworkConfig> LoadNetwork(const Options& opt) {
  if (!opt.network_path.empty()) return LoadNetworkConfig(opt.network_path);
  auto paper = MakePaperNetwork();
  if (!paper.ok()) return paper.status();
  NetworkConfig config;
  config.topology = paper->topology;
  config.profiles = paper->profiles;
  return config;
}

Result<SiteSet> ResolveSites(const NetworkConfig& network,
                             const std::string& csv) {
  if (csv.empty()) {
    return Status::InvalidArgument("--sites=... is required");
  }
  SiteSet placement;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    auto by_name = network.topology->FindSite(item);
    if (by_name.ok()) {
      placement.Add(*by_name);
      continue;
    }
    // Paper-style 1-based site numbers as a convenience.
    try {
      std::size_t used = 0;
      int number = std::stoi(item, &used);
      if (used == item.size() && number >= 1 &&
          number <= network.topology->num_sites()) {
        placement.Add(number - 1);
        continue;
      }
    } catch (const std::exception&) {
    }
    return Status::InvalidArgument("unknown site '" + item + "'");
  }
  if (placement.Empty()) {
    return Status::InvalidArgument("placement is empty");
  }
  return placement;
}

int Print(const Options& opt) {
  auto network = LoadNetwork(opt);
  if (!network.ok()) {
    std::cerr << network.status() << "\n";
    return 1;
  }
  std::cout << network->topology->ToString() << "\n"
            << "site characteristics:\n";
  TextTable table({"Site", "MTTF (d)", "HW %", "Restart (min)",
                   "HW repair (h)", "Maint", "Steady-state avail"});
  for (SiteId s = 0; s < network->topology->num_sites(); ++s) {
    const SiteProfile& p = network->profiles[s];
    std::string repair = TextTable::Fixed(p.hw_repair_const_hours, 0) +
                         "+exp(" +
                         TextTable::Fixed(p.hw_repair_exp_hours, 0) + ")";
    std::string maint =
        p.maintenance_interval_days > 0.0
            ? TextTable::Fixed(p.maintenance_hours, 0) + "h/" +
                  TextTable::Fixed(p.maintenance_interval_days, 0) + "d"
            : "-";
    table.AddRow({p.name, TextTable::Fixed(p.mttf_days, 1),
                  TextTable::Fixed(100 * p.hardware_fraction, 0),
                  TextTable::Fixed(p.restart_minutes, 0), repair, maint,
                  TextTable::Fixed6(SteadyStateAvailability(p))});
  }
  std::cout << table.ToString();
  return 0;
}

int Analyze(const Options& opt) {
  auto network = LoadNetwork(opt);
  if (!network.ok()) {
    std::cerr << network.status() << "\n";
    return 1;
  }
  auto placement = ResolveSites(*network, opt.sites);
  if (!placement.ok()) {
    std::cerr << placement.status() << "\n";
    return 1;
  }

  std::cout << "placement: " << placement->ToString() << "\n\n";

  auto vulnerability =
      AnalyzePartitionPoints(network->topology, *placement);
  if (!vulnerability.ok()) {
    std::cerr << vulnerability.status() << "\n";
    return 1;
  }
  std::cout << "partition points:";
  if (!vulnerability->partitionable()) std::cout << " none";
  for (SiteId s : vulnerability->gateway_cut_points) {
    std::cout << " gateway:" << network->topology->site(s).name;
  }
  for (RepeaterId r : vulnerability->repeater_cut_points) {
    for (const BridgeInfo& bridge : network->topology->bridges()) {
      if (!bridge.gateway_site.has_value() && bridge.repeater == r) {
        std::cout << " repeater:" << bridge.name;
      }
    }
  }
  std::cout << "\n";

  auto patterns =
      EnumeratePlacementPartitions(network->topology, *placement);
  if (patterns.ok()) {
    std::cout << "reachable partition patterns:\n";
    for (const auto& pattern : *patterns) {
      std::cout << " ";
      for (const SiteSet& group : pattern) std::cout << " " << group;
      std::cout << "\n";
    }
  }

  auto strict = AnalyticMcvAvailability(network->topology,
                                        network->profiles, *placement,
                                        TieBreak::kNone);
  auto lex = AnalyticMcvAvailability(network->topology, network->profiles,
                                     *placement, TieBreak::kLexicographic);
  if (strict.ok() && lex.ok()) {
    std::cout << "\nclosed-form static voting unavailability:\n"
              << "  strict majority:      "
              << TextTable::Fixed6(1.0 - *strict) << "\n"
              << "  with static tie rule: "
              << TextTable::Fixed6(1.0 - *lex) << "\n"
              << "(dynamic protocols are path-dependent: use 'simulate')\n";
  }
  return 0;
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> items;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

/// Copies the serving-model flags into the experiment. On simulate and
/// repeat the model engages only when --arrival-rate was given; `serve`
/// forces it on (falling back to the library's default rate).
void ApplyServingFlags(const Options& opt, bool force,
                       ExperimentOptions* options) {
  if (!force && opt.arrival_rate <= 0.0) return;
  options->serving.enabled = true;
  if (opt.arrival_rate > 0.0) {
    options->serving.arrival_rate_per_day = opt.arrival_rate;
  }
  options->serving.service_time_ms = opt.service_time_ms;
  options->serving.msg_cost_ms = opt.msg_cost_ms;
  options->serving.write_fraction = opt.write_fraction;
}

/// A `--trace-out` path ending in .btrace selects the binary format.
bool WantsBinaryTrace(const std::string& path) {
  constexpr std::string_view kExt = ".btrace";
  return path.size() >= kExt.size() &&
         path.compare(path.size() - kExt.size(), kExt.size(), kExt) == 0;
}

/// Reports a trace sink that lost events (failed stream, failed page
/// pipeline) and returns 1; returns 0 when every event reached the sink.
/// The written-vs-offered reconciliation makes silent truncation — the
/// old failure mode — impossible to miss in scripts.
int CheckTraceSink(const TraceSink& sink, const std::string& path) {
  if (sink.ok()) return 0;
  std::cerr << "trace-out failed: " << sink.error() << " ("
            << sink.events_written() << " of " << sink.total_events()
            << " events reached " << path << ")\n";
  return 1;
}

/// Writes --trace-out (schema header + pre-rendered body, JSONL or
/// binary by extension) and/or --metrics-out after a run. Returns 0, or
/// 1 with the error already printed.
int WriteObsOutputs(const Options& opt, const std::string& trace_body,
                    const MetricsShard& metrics) {
  if (!opt.trace_out_path.empty()) {
    std::string contents;
    if (WantsBinaryTrace(opt.trace_out_path)) {
      contents = BinaryTraceHeader(opt.seed);
    } else {
      contents = TraceHeaderLine(opt.seed);
      contents.push_back('\n');
    }
    contents += trace_body;
    Status st = WriteFile(opt.trace_out_path, contents);
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    std::cout << "wrote " << opt.trace_out_path << "\n";
  }
  if (!opt.metrics_out_path.empty()) {
    Status st = WriteFile(opt.metrics_out_path, metrics.ToJson());
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    std::cout << "wrote " << opt.metrics_out_path << "\n";
  }
  return 0;
}

int Simulate(const Options& opt) {
  auto network = LoadNetwork(opt);
  if (!network.ok()) {
    std::cerr << network.status() << "\n";
    return 1;
  }
  auto placement = ResolveSites(*network, opt.sites);
  if (!placement.ok()) {
    std::cerr << placement.status() << "\n";
    return 1;
  }

  ExperimentSpec spec;
  spec.topology = network->topology;
  spec.profiles = network->profiles;
  spec.repeater_profiles = network->repeater_profiles;
  spec.options.warmup = Days(360);
  spec.options.num_batches = 20;
  spec.options.batch_length = Years(opt.years / 20.0);
  spec.options.access.rate_per_day = opt.rate;
  spec.options.seed = opt.seed;
  spec.options.quorum_cache = opt.quorum_cache;
  ApplyServingFlags(opt, /*force=*/false, &spec.options);

  // Observability is opt-in per flag; with neither flag spec.obs stays
  // null and instrumentation costs one never-taken branch per site.
  // JSONL buffers in memory and lands via WriteObsOutputs; binary
  // streams pages straight to the file through a background writer
  // thread, so the simulation never waits on disk.
  const bool binary_trace = WantsBinaryTrace(opt.trace_out_path);
  std::ostringstream trace_out;
  JsonlTraceSink jsonl_sink(&trace_out);
  std::ofstream btrace_out;
  std::optional<StreamPageSink> btrace_pages;
  std::optional<AsyncTraceSink> btrace_async;
  std::optional<BinaryTraceSink> btrace_sink;
  MetricsShard metrics;
  ObsContext obs;
  if (!opt.trace_out_path.empty()) {
    if (binary_trace) {
      btrace_out.open(opt.trace_out_path,
                      std::ios::binary | std::ios::trunc);
      if (!btrace_out) {
        std::cerr << "cannot open '" << opt.trace_out_path
                  << "' for write\n";
        return 1;
      }
      std::string header = BinaryTraceHeader(opt.seed);
      btrace_out.write(header.data(),
                       static_cast<std::streamsize>(header.size()));
      btrace_pages.emplace(&btrace_out);
      btrace_async.emplace(&*btrace_pages);
      btrace_sink.emplace(&*btrace_async);
      obs.sink = &*btrace_sink;
    } else {
      obs.sink = &jsonl_sink;
    }
  }
  if (!opt.metrics_out_path.empty()) obs.metrics = &metrics;
  if (obs.sink != nullptr || obs.metrics != nullptr) spec.obs = &obs;

  std::vector<std::string> policy_names = SplitCsv(opt.policies);

  // --objects routes simulate's single sample path through the batched
  // multi-object engine (a batch of one): same bytes by the engine's
  // bit-identity contract, so the flag lets users cross-check the two
  // engines from the CLI. Traced/metered runs — and the serving model,
  // which lives only in the instrumented engine — silently keep the
  // per-replication path.
  const bool batch_engine = opt.objects > 1 && spec.obs == nullptr &&
                            !spec.options.serving.enabled &&
                            BatchedEngineSupports(policy_names);
  auto run = [&]() -> Result<std::vector<PolicyResult>> {
    if (batch_engine) {
      BatchedProtocolSpec batched{policy_names, *placement};
      auto rows = RunBatchedAvailabilityExperiment(spec, batched, {opt.seed});
      if (!rows.ok()) return rows.status();
      return std::move(rows.MoveValue().front());
    }
    std::vector<std::unique_ptr<ConsistencyProtocol>> protocols;
    for (const std::string& policy : policy_names) {
      auto p = MakeProtocolByName(policy, network->topology, *placement);
      if (!p.ok()) return p.status();
      protocols.push_back(p.MoveValue());
    }
    return RunAvailabilityExperiment(spec, std::move(protocols));
  };
  auto results = run();
  if (!results.ok()) {
    std::cerr << results.status() << "\n";
    return 1;
  }

  TextTable table({"Policy", "Unavailability", "95% CI ±",
                   "Mean outage (d)", "Outages", "Dual majorities"});
  std::vector<LabeledResult> rows;
  for (const PolicyResult& r : *results) {
    table.AddRow({r.name, TextTable::Fixed6(r.unavailability),
                  TextTable::Fixed6(r.stats.ci95_halfwidth),
                  TextTable::Fixed6(r.num_unavailable_periods == 0
                                        ? -1.0
                                        : r.mean_unavailable_duration),
                  std::to_string(r.num_unavailable_periods),
                  std::to_string(r.dual_majority_instants)});
    rows.push_back(LabeledResult{opt.sites, r});
  }
  std::cout << table.ToString();
  if (!opt.csv_path.empty()) {
    Status st = WriteFile(opt.csv_path, ResultsToCsv(rows));
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    std::cout << "wrote " << opt.csv_path << "\n";
  }
  if (obs.sink != nullptr) {
    // Drain the async writer / flush the stream, then reconcile events
    // offered against events written — a failed sink is a hard error.
    obs.sink->Flush();
    if (int rc = CheckTraceSink(*obs.sink, opt.trace_out_path); rc != 0) {
      return rc;
    }
  }
  if (binary_trace) {
    btrace_out.close();
    if (!btrace_out) {
      std::cerr << "short write to '" << opt.trace_out_path << "'\n";
      return 1;
    }
    std::cout << "wrote " << opt.trace_out_path << "\n";
  }
  Options remaining = opt;
  if (binary_trace) remaining.trace_out_path.clear();  // already on disk
  return WriteObsOutputs(remaining, trace_out.str(), metrics);
}

int Repeat(const Options& opt) {
  auto network = LoadNetwork(opt);
  if (!network.ok()) {
    std::cerr << network.status() << "\n";
    return 1;
  }
  auto placement = ResolveSites(*network, opt.sites);
  if (!placement.ok()) {
    std::cerr << placement.status() << "\n";
    return 1;
  }

  ExperimentSpec spec;
  spec.topology = network->topology;
  spec.profiles = network->profiles;
  spec.repeater_profiles = network->repeater_profiles;
  spec.options.warmup = Days(360);
  spec.options.num_batches = 20;
  spec.options.batch_length = Years(opt.years / 20.0);
  spec.options.access.rate_per_day = opt.rate;
  spec.options.seed = opt.seed;
  spec.options.quorum_cache = opt.quorum_cache;
  ApplyServingFlags(opt, /*force=*/false, &spec.options);

  // Command line wins; the network file's `experiment` declaration
  // supplies defaults.
  ReplicationOptions replication;
  replication.replications = opt.reps >= 1 ? opt.reps : network->replications;
  replication.jobs = opt.jobs >= 0 ? opt.jobs : network->jobs;
  replication.collect_traces = !opt.trace_out_path.empty();
  replication.trace_format = WantsBinaryTrace(opt.trace_out_path)
                                 ? TraceFormat::kBinary
                                 : TraceFormat::kJsonl;
  replication.collect_metrics = !opt.metrics_out_path.empty();
  replication.objects = opt.objects;

  std::vector<std::string> policies = SplitCsv(opt.policies);
  std::shared_ptr<const Topology> topology = network->topology;
  SiteSet sites = *placement;
  ProtocolSetFactory factory =
      [topology, sites, policies]()
      -> Result<std::vector<std::unique_ptr<ConsistencyProtocol>>> {
    std::vector<std::unique_ptr<ConsistencyProtocol>> protocols;
    for (const std::string& policy : policies) {
      auto p = MakeProtocolByName(policy, topology, sites);
      if (!p.ok()) return p.status();
      protocols.push_back(p.MoveValue());
    }
    return protocols;
  };

  // Same policy set the factory builds; RunReplicatedExperiment only
  // takes the batched path when --objects > 1 and the run is untraced.
  BatchedProtocolSpec batched{policies, sites};
  auto results = RunReplicatedExperiment(spec, factory, replication, &batched);
  if (!results.ok()) {
    std::cerr << results.status() << "\n";
    return 1;
  }

  std::cout << replication.replications << " replication(s), master seed "
            << opt.seed << "\n";
  TextTable table({"Policy", "Unavailability", "95% CI ±", "Min", "Max",
                   "Outage reps", "First outage (d)", "Censored"});
  for (const AggregatePolicyResult& agg : results->aggregate) {
    const ReplicationSummary& u = agg.unavailability;
    const ReplicationSummary& f = agg.time_to_first_outage;
    table.AddRow({agg.name, TextTable::Fixed6(u.mean),
                  TextTable::Fixed6(u.ci95_halfwidth),
                  TextTable::Fixed6(u.min), TextTable::Fixed6(u.max),
                  std::to_string(agg.replications_with_outages) + "/" +
                      std::to_string(agg.replications),
                  f.num_samples > 0 ? TextTable::Fixed(f.mean, 1) : "-",
                  std::to_string(f.num_censored)});
  }
  std::cout << table.ToString();
  if (!opt.json_path.empty()) {
    Status st = WriteFile(opt.json_path,
                          ReplicatedResultsToJson(opt.sites, *results));
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    std::cout << "wrote " << opt.json_path << "\n";
  }
  // Per-replication bodies concatenate in replication order, so the
  // trace file is byte-identical for any --jobs.
  std::string trace_body;
  for (const std::string& body : results->traces) trace_body += body;
  return WriteObsOutputs(opt, trace_body, results->metrics);
}

/// Counter lookup tolerating the absent-when-zero export convention.
std::uint64_t ServingCounter(const MetricsShard& metrics,
                             const std::string& key) {
  auto it = metrics.counters().find(key);
  return it == metrics.counters().end() ? 0 : it->second;
}

/// Sums one phase's control messages for a protocol (file copies are
/// data plane and excluded, matching MessageCounter::ControlTotal).
std::uint64_t ServingPhaseMessages(const MetricsShard& metrics,
                                   const std::string& protocol,
                                   const char* phase) {
  std::uint64_t total = 0;
  for (int k = 0; k < kNumMessageKinds; ++k) {
    auto kind = static_cast<MessageKind>(k);
    if (kind == MessageKind::kFileCopy) continue;
    total += ServingCounter(
        metrics, MetricKey("serving_messages",
                           "kind=" + MessageKindName(kind) + ",phase=" +
                               phase + ",protocol=" + protocol));
  }
  return total;
}

void AppendJsonDouble(double value, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

/// Runs the serving model (docs/serving.md) over the requested paper
/// placements and prints a per-protocol messages-per-access and latency-
/// percentile table per configuration. All figures come from the merged
/// metrics shard, which folds in replication order — so the report (and
/// the --json document) is byte-identical for any --jobs value.
int Serve(const Options& opt) {
  if (!opt.network_path.empty()) {
    std::cerr << "serve runs the paper's placements; --network is not "
                 "supported\n";
    return kExitUsage;
  }
  if (opt.config.empty()) {
    std::cerr << "--config needs at least one placement letter (A-H)\n";
    return kExitUsage;
  }
  std::vector<std::string> policies = SplitCsv(opt.policies);

  ExperimentOptions options;
  options.warmup = Days(360);
  options.num_batches = 20;
  // The open loop serves ~1000 accesses per simulated day, so a short
  // horizon already gives tight percentiles; --years overrides.
  const double years = opt.years_set ? opt.years : 2.0;
  options.batch_length = Years(years / 20.0);
  options.seed = opt.seed;
  options.quorum_cache = opt.quorum_cache;
  ApplyServingFlags(opt, /*force=*/true, &options);

  ReplicationOptions replication;
  replication.replications = opt.reps >= 1 ? opt.reps : 1;
  replication.jobs = opt.jobs >= 0 ? opt.jobs : 1;
  replication.collect_metrics = true;

  std::string json;
  json.append("{\n  \"schema\": \"");
  json.append(kServingSchema);
  json.append("\",\n  \"arrival_rate_per_day\": ");
  AppendJsonDouble(options.serving.arrival_rate_per_day, &json);
  json.append(",\n  \"service_time_ms\": ");
  AppendJsonDouble(options.serving.service_time_ms, &json);
  json.append(",\n  \"msg_cost_ms\": ");
  AppendJsonDouble(options.serving.msg_cost_ms, &json);
  json.append(",\n  \"write_fraction\": ");
  AppendJsonDouble(options.serving.write_fraction, &json);
  json.append(",\n  \"years\": ");
  AppendJsonDouble(years, &json);
  json.append(",\n  \"seed\": " + std::to_string(opt.seed));
  json.append(",\n  \"replications\": " +
              std::to_string(replication.replications));
  json.append(",\n  \"configs\": [");

  bool first_config = true;
  for (char config : opt.config) {
    auto results =
        RunReplicatedPaperExperiment(config, policies, options, replication);
    if (!results.ok()) {
      std::cerr << results.status() << "\n";
      return 1;
    }
    const MetricsShard& metrics = results->metrics;

    std::cout << "configuration " << config << ": "
              << TextTable::Fixed(options.serving.arrival_rate_per_day, 0)
              << " arrivals/day over "
              << TextTable::Fixed(years * replication.replications, 1)
              << " measured years\n";
    TextTable table({"Policy", "Served", "Rejected", "Grant %", "Msg/acc",
                     "Refresh/acc", "p50 ms", "p99 ms", "p999 ms", "MaxQ"});

    json.append(first_config ? "\n    {" : ",\n    {");
    first_config = false;
    json.append("\"config\": \"");
    json.push_back(config);
    json.append("\", \"policies\": [");

    bool first_policy = true;
    for (const std::string& name : policies) {
      const std::string label = "protocol=" + name;
      const std::uint64_t arrivals =
          ServingCounter(metrics, MetricKey("serving_arrivals", label));
      const std::uint64_t rejected =
          ServingCounter(metrics, MetricKey("serving_rejected", label));
      const std::uint64_t granted =
          ServingCounter(metrics, MetricKey("serving_granted", label));
      const std::uint64_t served = arrivals - rejected;
      const std::uint64_t access_msgs =
          ServingPhaseMessages(metrics, name, "access");
      const std::uint64_t refresh_msgs =
          ServingPhaseMessages(metrics, name, "refresh");
      HistogramData latency;
      auto hist = metrics.histograms().find(
          MetricKey("serving_latency_ms", label));
      if (hist != metrics.histograms().end()) latency = hist->second;
      double depth = 0.0;
      auto gauge = metrics.gauges().find(
          MetricKey("serving_queue_depth_max", label));
      if (gauge != metrics.gauges().end()) depth = gauge->second;

      const double denom = served > 0 ? static_cast<double>(served) : 1.0;
      const double msgs_per_access = static_cast<double>(access_msgs) / denom;
      const double refresh_per_access =
          static_cast<double>(refresh_msgs) / denom;
      const double grant_pct =
          served > 0 ? 100.0 * static_cast<double>(granted) / denom : 0.0;
      const double p50 = latency.Quantile(0.50);
      const double p99 = latency.Quantile(0.99);
      const double p999 = latency.Quantile(0.999);

      table.AddRow({name, std::to_string(served), std::to_string(rejected),
                    TextTable::Fixed(grant_pct, 2),
                    TextTable::Fixed(msgs_per_access, 2),
                    TextTable::Fixed(refresh_per_access, 2),
                    TextTable::Fixed(p50, 3), TextTable::Fixed(p99, 3),
                    TextTable::Fixed(p999, 3),
                    TextTable::Fixed(depth, 0)});

      json.append(first_policy ? "\n      {" : ",\n      {");
      first_policy = false;
      json.append("\"name\": \"" + name + "\"");
      json.append(", \"served\": " + std::to_string(served));
      json.append(", \"rejected\": " + std::to_string(rejected));
      json.append(", \"granted\": " + std::to_string(granted));
      json.append(", \"denied\": " + std::to_string(served - granted));
      json.append(", \"access_messages\": " + std::to_string(access_msgs));
      json.append(", \"refresh_messages\": " + std::to_string(refresh_msgs));
      json.append(", \"msgs_per_access\": ");
      AppendJsonDouble(msgs_per_access, &json);
      json.append(", \"latency_ms\": {\"p50\": ");
      AppendJsonDouble(p50, &json);
      json.append(", \"p90\": ");
      AppendJsonDouble(latency.Quantile(0.90), &json);
      json.append(", \"p99\": ");
      AppendJsonDouble(p99, &json);
      json.append(", \"p999\": ");
      AppendJsonDouble(p999, &json);
      json.append(", \"max\": ");
      AppendJsonDouble(latency.max, &json);
      json.append("}, \"queue_depth_max\": ");
      AppendJsonDouble(depth, &json);
      json.append("}");
    }
    json.append(first_policy ? "]}" : "\n    ]}");
    std::cout << table.ToString();
    if (config != opt.config.back()) std::cout << "\n";
  }
  json.append("\n  ]\n}\n");

  if (!opt.json_path.empty()) {
    Status st = WriteFile(opt.json_path, json);
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    std::cout << "wrote " << opt.json_path << "\n";
  }
  return 0;
}

int RunScenario(const Options& opt) {
  if (opt.positional.empty()) {
    std::cerr << "scenario needs a script path\n";
    return 1;
  }
  auto network = LoadNetwork(opt);
  if (!network.ok()) {
    std::cerr << network.status() << "\n";
    return 1;
  }
  auto placement = ResolveSites(*network, opt.sites);
  if (!placement.ok()) {
    std::cerr << placement.status() << "\n";
    return 1;
  }
  std::ifstream in(opt.positional);
  if (!in) {
    std::cerr << "cannot read " << opt.positional << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  auto scenario = Scenario::Parse(network->topology, buffer.str());
  if (!scenario.ok()) {
    std::cerr << scenario.status() << "\n";
    return 1;
  }
  auto cluster =
      KvCluster::Make(network->topology, *placement, opt.protocol);
  if (!cluster.ok()) {
    std::cerr << cluster.status() << "\n";
    return 1;
  }
  std::string transcript;
  Status st = scenario->Run(cluster->get(), &transcript);
  std::cout << transcript;
  if (!st.ok()) {
    std::cout << "SCENARIO FAILED: " << st << "\n";
    return 1;
  }
  std::cout << "scenario passed.\n";
  return 0;
}

int TraceSummaryCommand(const Options& opt) {
  if (opt.positional.empty()) {
    std::cerr << "trace-summary needs a trace file path\n";
    return 1;
  }
  std::ifstream in(opt.positional, std::ios::binary);
  if (!in) {
    std::cerr << "cannot read " << opt.positional << "\n";
    return 1;
  }
  TraceSummary summary = SummarizeTrace(in);
  if (!summary.schema.empty() && summary.schema != kTraceSchema &&
      summary.schema != kBinaryTraceSchema) {
    std::cerr << "unsupported trace schema '" << summary.schema
              << "' (expected " << kTraceSchema << " or "
              << kBinaryTraceSchema << ")\n";
    return 1;
  }
  if (summary.schema.empty() && summary.decode_error.empty()) {
    std::cerr << "warning: no schema header line; assuming " << kTraceSchema
              << "\n";
  }
  std::cout << summary.ToString();
  return 0;
}

/// Decodes a dynvote-btrace-v1 file to dynvote-trace-v1 JSONL,
/// byte-identical to a direct JSONL run of the same events.
int TraceConvertCommand(const Options& opt) {
  if (opt.positional.empty()) {
    std::cerr << "trace-convert needs a binary trace file path\n";
    return 1;
  }
  std::ifstream in(opt.positional, std::ios::binary);
  if (!in) {
    std::cerr << "cannot read " << opt.positional << "\n";
    return 1;
  }
  std::ofstream file_out;
  if (!opt.out_path.empty()) {
    file_out.open(opt.out_path, std::ios::binary | std::ios::trunc);
    if (!file_out) {
      std::cerr << "cannot open '" << opt.out_path << "' for write\n";
      return 1;
    }
  }
  std::ostream& out = opt.out_path.empty() ? std::cout : file_out;
  auto events = ConvertBinaryTraceToJsonl(in, out);
  if (!events.ok()) {
    std::cerr << events.status() << "\n";
    return 1;
  }
  if (!opt.out_path.empty()) {
    file_out.close();
    if (!file_out) {
      std::cerr << "short write to '" << opt.out_path << "'\n";
      return 1;
    }
    std::cout << "wrote " << opt.out_path << " (" << *events
              << " events)\n";
  }
  return 0;
}

/// Replays a counterexample file and reports whether it reproduces.
int ReplayCounterExampleFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto ce = check::ParseCounterExampleJson(buffer.str());
  if (!ce.ok()) {
    std::cerr << ce.status() << "\n";
    return 1;
  }
  // Reject an unknown universe up front as a usage error (exit 2), not a
  // failed reproduction: the file names a world this binary does not
  // have, so replaying it was never meaningful.
  if (!check::MakeCheckTopology(ce->topology).ok()) {
    std::cerr << "unknown check universe '" << ce->topology << "' in " << path
              << "\nknown universes:";
    for (const std::string& name : check::CheckTopologyNames()) {
      std::cerr << " " << name;
    }
    std::cerr << "\n";
    return kExitUsage;
  }
  std::cout << "replaying " << ce->protocol << " on " << ce->topology << ": "
            << check::ScheduleToString(ce->schedule) << "\n";
  Status st = check::ReplayCounterExample(*ce);
  if (!st.ok()) {
    std::cerr << "NOT REPRODUCED: " << st << "\n";
    return 1;
  }
  std::cout << "reproduced: '" << ce->violation.invariant << "' at step "
            << ce->violation.step << " (" << ce->violation.detail << ")\n";
  return 0;
}

int Check(const Options& opt) {
  if (!opt.replay_path.empty()) {
    return ReplayCounterExampleFile(opt.replay_path);
  }

  check::CheckOptions options;
  // Registry names are uppercase; accept `--protocol odv` as a courtesy.
  options.protocol = opt.protocol;
  for (char& c : options.protocol) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  options.topology = opt.topology;
  options.depth = opt.depth;
  options.seed = opt.seed;
  options.swarm_schedules = opt.schedules;
  options.swarm_depth = opt.swarm_depth;
  options.memoize = opt.memoize;
  options.shrink = opt.shrink;
  options.jobs = opt.check_jobs;
  options.por = opt.por;
  if (opt.mode == "exhaustive") {
    options.mode = check::CheckMode::kExhaustive;
  } else if (opt.mode == "swarm") {
    options.mode = check::CheckMode::kSwarm;
  } else {
    std::cerr << "unknown --mode '" << opt.mode
              << "' (expected exhaustive or swarm)\n";
    return kExitUsage;
  }
  if (opt.weaken_mutex) options.policy.max_granted_groups = 0;
  if (opt.strict == "on") {
    options.policy.strict = true;
  } else if (opt.strict == "off") {
    options.policy.strict = false;
  } else if (opt.strict == "auto") {
    // Strict iff the protocol has no documented partition hazard; probe
    // an instance to ask.
    auto topology = check::MakeCheckTopology(options.topology);
    if (!topology.ok()) {
      std::cerr << topology.status() << "\n";
      return 1;
    }
    auto probe = MakeProtocolByName(options.protocol, *topology,
                                    (*topology)->AllSites());
    if (!probe.ok()) {
      std::cerr << probe.status() << "\n";
      return 1;
    }
    options.policy.strict = (*probe)->partition_safe();
  } else {
    std::cerr << "unknown --strict '" << opt.strict
              << "' (expected auto, on or off)\n";
    return kExitUsage;
  }
  auto oracle = check::ParseDifferentialOracle(opt.oracle);
  if (!oracle.ok()) {
    std::cerr << oracle.status() << "\n";
    return kExitUsage;
  }
  options.policy.oracle = *oracle;

  auto report = check::RunCheck(options);
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    return 1;
  }

  std::cout << "protocol " << options.protocol << " on " << opt.topology
            << ", " << (options.policy.strict ? "strict" : "loose") << ", "
            << opt.mode;
  if (options.mode == check::CheckMode::kExhaustive) {
    std::cout << " to depth " << opt.depth
              << (report->memoized ? " (memoized" : " (no state merging")
              << (report->por_active ? ", por)" : ")");
  } else {
    std::cout << ", " << report->schedules_run << " schedule(s) of "
              << opt.swarm_depth << " action(s), seed " << opt.seed;
  }
  std::cout << "\n";
  if (options.mode == check::CheckMode::kExhaustive) {
    std::cout << "states visited:     " << report->states_visited << "\n"
              << "unpruned sequences: " << report->unpruned_sequences << "\n";
    if (report->memoized) {
      // Order-independent digest of the visited-state *set*: CI compares
      // it across --check-jobs values and --no-por to prove neither
      // changes which states were reached.
      char digest[17];
      std::snprintf(digest, sizeof(digest), "%016llx",
                    static_cast<unsigned long long>(report->visited_digest));
      std::cout << "visited digest:     " << digest << "\n";
    }
  }
  std::cout << "transitions:        " << report->transitions << "\n"
            << "commits / reads:    " << report->commits << " / "
            << report->reads_checked << "\n";

  if (!report->counterexample.has_value()) {
    std::cout << "no invariant violations.\n";
    return 0;
  }
  const check::CounterExample& ce = *report->counterexample;
  std::cout << "VIOLATION of '" << ce.violation.invariant << "' at step "
            << ce.violation.step << ": " << ce.violation.detail << "\n"
            << (options.shrink ? "minimal schedule: " : "schedule: ")
            << check::ScheduleToString(ce.schedule) << "\n";
  std::string json = check::CounterExampleToJson(ce);
  if (!opt.out_path.empty()) {
    Status st = WriteFile(opt.out_path, json);
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    std::cout << "wrote " << opt.out_path << "\n";
  } else {
    std::cout << json;
  }
  return 1;
}

int Main(int argc, char** argv) {
  auto opt = Parse(argc, argv);
  if (!opt.ok()) {
    std::cerr << opt.status() << "\n";
    return Usage();
  }
  if (opt->command == "--version" || opt->command == "version") {
    return Version();
  }
  if (opt->command == "print") return Print(*opt);
  if (opt->command == "analyze") return Analyze(*opt);
  if (opt->command == "simulate") return Simulate(*opt);
  if (opt->command == "repeat") return Repeat(*opt);
  if (opt->command == "serve") return Serve(*opt);
  if (opt->command == "scenario") return RunScenario(*opt);
  if (opt->command == "trace-summary") return TraceSummaryCommand(*opt);
  if (opt->command == "trace-convert") return TraceConvertCommand(*opt);
  if (opt->command == "check") return Check(*opt);
  return UnknownCommand(opt->command);
}

}  // namespace
}  // namespace cli
}  // namespace dynvote

int main(int argc, char** argv) { return dynvote::cli::Main(argc, argv); }
