// Replays Section 2.1 of Pâris & Long (ICDE 1988) interactively on
// stdout: three copies A > B > C, seven writes, the failure of B, three
// more writes, the A-C link partition, and the lexicographic tie-break
// that lets A continue alone — printing the same (o, v, P) state grids
// the paper prints.
//
// Build & run:  ./build/examples/paper_walkthrough

#include <iomanip>
#include <iostream>

#include "core/dynamic_voting.h"
#include "net/network_state.h"
#include "net/topology.h"

using namespace dynvote;

namespace {

void PrintGrid(const DynamicVoting& file, const Topology& topo) {
  std::cout << "      ";
  for (SiteId s : file.placement()) {
    std::cout << std::left << std::setw(22) << topo.site(s).name;
  }
  std::cout << "\n      ";
  for (SiteId s : file.placement()) {
    const ReplicaState& r = file.store().state(s);
    std::string cell = "o=" + std::to_string(r.op_number) +
                       " v=" + std::to_string(r.version);
    std::cout << std::left << std::setw(22) << cell;
  }
  std::cout << "\n      ";
  for (SiteId s : file.placement()) {
    std::cout << std::left << std::setw(22)
              << ("P=" + file.store().state(s).partition_set.ToString());
  }
  std::cout << "\n\n";
}

}  // namespace

int main() {
  // A, B, C each on their own segment, joined in a star around A so "the
  // link between A and C" is a real partition point.
  auto builder = Topology::Builder();
  SegmentId sa = builder.AddSegment("seg-a");
  SegmentId sb = builder.AddSegment("seg-b");
  SegmentId sc = builder.AddSegment("seg-c");
  SiteId a = builder.AddSite("A", sa);
  SiteId b = builder.AddSite("B", sb);
  SiteId c = builder.AddSite("C", sc);
  builder.AddRepeater("link-ab", sa, sb);
  RepeaterId link_ac = builder.AddRepeater("link-ac", sa, sc);
  auto topo = builder.Build();
  if (!topo.ok()) {
    std::cerr << topo.status() << "\n";
    return 1;
  }
  std::shared_ptr<const Topology> topology = topo.MoveValue();

  auto odv = MakeODV(topology, SiteSet{a, b, c});
  if (!odv.ok()) {
    std::cerr << odv.status() << "\n";
    return 1;
  }
  DynamicVoting& file = **odv;
  NetworkState net(topology);

  std::cout << "== Section 2.1 walkthrough: Optimistic Dynamic Voting ==\n\n"
            << "Sites ordered A > B > C. Initial state:\n\n";
  PrintGrid(file, *topology);

  std::cout << "After seven successful write operations:\n\n";
  for (int i = 0; i < 7; ++i) {
    if (!file.Write(net, a).ok()) return 1;
  }
  PrintGrid(file, *topology);

  std::cout << "Site B fails. Information is exchanged only at access "
               "time,\nso there is no change in the state information:\n\n";
  net.SetSiteUp(b, false);
  PrintGrid(file, *topology);

  std::cout << "{A, C} holds a majority of the previous majority "
               "partition.\nAfter three more writes:\n\n";
  for (int i = 0; i < 3; ++i) {
    if (!file.Write(net, c).ok()) return 1;
  }
  PrintGrid(file, *topology);

  std::cout << "The link between A and C fails, partitioning {A} from "
               "{C}.\nEach side holds exactly one member of the previous "
               "majority\npartition {A, C} — a tie:\n\n";
  net.SetRepeaterUp(link_ac, false);
  std::cout << "  A requests a write: "
            << file.Write(net, a) << "\n";
  std::cout << "  C requests a write: "
            << file.Write(net, c) << "\n\n";
  std::cout << "Since A ranks higher than C, the group containing A is "
               "the\nmajority partition. Four more writes at A:\n\n";
  for (int i = 0; i < 3; ++i) {
    if (!file.Write(net, a).ok()) return 1;
  }
  PrintGrid(file, *topology);

  std::cout << "B and the A-C link come back; B and C rejoin through the\n"
               "recovery protocol (B copies the file — it is three\n"
               "versions stale):\n\n";
  net.SetSiteUp(b, true);
  net.SetRepeaterUp(link_ac, true);
  if (!file.Recover(net, b).ok()) return 1;
  if (!file.Recover(net, c).ok()) return 1;
  PrintGrid(file, *topology);

  std::cout << "file copies performed during recovery: "
            << file.counter()->count(MessageKind::kFileCopy) << "\n";
  return 0;
}
