// Topology playground: build the paper's Figure 8 network and the
// Section 3 example, enumerate which gateway/repeater failures partition
// which placements, and show the Topological Dynamic Voting vote-carrying
// rule deciding concrete situations.
//
// Build & run:  ./build/examples/topology_playground

#include <iostream>

#include "core/dynamic_voting.h"
#include "model/site_profile.h"
#include "net/network_state.h"

using namespace dynvote;

namespace {

void ShowPartitions(const NetworkState& net) {
  auto groups = net.Components();
  std::cout << "  live groups:";
  for (const SiteSet& g : groups) std::cout << " " << g;
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "== The paper's network (Figure 8) ==\n";
  auto network = MakePaperNetwork();
  if (!network.ok()) {
    std::cerr << network.status() << "\n";
    return 1;
  }
  std::cout << network->topology->ToString() << "\n";

  NetworkState net(network->topology);
  std::cout << "All sites up:\n";
  ShowPartitions(net);

  std::cout << "Gateway wizard (site 4) down — gremlin isolated:\n";
  net.SetSiteUp(3, false);
  ShowPartitions(net);

  std::cout << "Gateway amos (site 5) down too — rip & mangle isolated "
               "but still together (same segment):\n";
  net.SetSiteUp(4, false);
  ShowPartitions(net);
  net.AllUp();

  // Which single-site failures partition each paper configuration?
  std::cout << "\nPartition points per configuration:\n";
  for (const PaperConfiguration& config : PaperConfigurations()) {
    std::cout << "  " << config.label << " (sites " << config.description
              << "):";
    bool any = false;
    for (SiteId s = 0; s < network->topology->num_sites(); ++s) {
      if (config.placement.Contains(s)) continue;
      net.AllUp();
      net.SetSiteUp(s, false);
      // s partitions the placement iff the live placement members no
      // longer form one group.
      SiteSet members = config.placement;  // all live (s holds no copy)
      if (!net.FullyConnected(members)) {
        std::cout << " site " << network->topology->site(s).name;
        any = true;
      }
    }
    std::cout << (any ? "" : " none") << "\n";
  }
  net.AllUp();

  // The Section 3 example with repeaters X and Y.
  std::cout << "\n== Section 3 example: A,B on alpha; C on gamma; D on "
               "delta; repeaters X, Y ==\n";
  auto builder = Topology::Builder();
  SegmentId alpha = builder.AddSegment("alpha");
  SegmentId gamma = builder.AddSegment("gamma");
  SegmentId delta = builder.AddSegment("delta");
  SiteId a = builder.AddSite("A", alpha);
  SiteId b = builder.AddSite("B", alpha);
  SiteId c = builder.AddSite("C", gamma);
  SiteId d = builder.AddSite("D", delta);
  builder.AddRepeater("X", alpha, gamma);
  builder.AddRepeater("Y", alpha, delta);
  auto s3 = builder.Build();
  if (!s3.ok()) {
    std::cerr << s3.status() << "\n";
    return 1;
  }
  std::shared_ptr<const Topology> topo3 = s3.MoveValue();
  std::cout << topo3->ToString() << "\n";

  auto tdv = MakeTDV(topo3, SiteSet{a, b, c, d});
  auto ldv = MakeLDV(topo3, SiteSet{a, b, c, d});
  if (!tdv.ok() || !ldv.ok()) return 1;
  NetworkState net3(topo3);

  // Drive both to the paper's state: majority block {A, B}.
  for (DynamicVoting* p : {tdv->get(), ldv->get()}) {
    net3.AllUp();
    p->OnNetworkEvent(net3);
    net3.SetSiteUp(d, false);
    p->OnNetworkEvent(net3);
    net3.SetSiteUp(c, false);
    p->OnNetworkEvent(net3);
  }
  std::cout << "Majority block is now {A, B} (C and D down).\n"
            << "Site A fails. Can B alone continue?\n";
  net3.SetSiteUp(a, false);
  (*ldv)->OnNetworkEvent(net3);
  (*tdv)->OnNetworkEvent(net3);
  std::cout << "  LDV: "
            << ((*ldv)->WouldGrant(net3, b, AccessType::kWrite)
                    ? "yes"
                    : "no — B is half of {A, B} without the max element")
            << "\n";
  std::cout << "  TDV: "
            << ((*tdv)->WouldGrant(net3, b, AccessType::kWrite)
                    ? "yes — B carries A's vote: they share segment "
                      "alpha, so A must be down, not partitioned"
                    : "no")
            << "\n";
  return 0;
}
