// Quickstart: create a replicated file on three sites managed by
// Optimistic Dynamic Voting, exercise reads/writes, survive a failure,
// lose quorum, recover.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/dynamic_voting.h"
#include "net/network_state.h"
#include "net/topology.h"

using namespace dynvote;

int main() {
  // 1. Describe the network: three sites on one carrier-sense segment.
  auto builder = Topology::Builder();
  SegmentId lan = builder.AddSegment("lan");
  SiteId a = builder.AddSite("A", lan);
  SiteId b = builder.AddSite("B", lan);
  SiteId c = builder.AddSite("C", lan);
  auto topo = builder.Build();
  if (!topo.ok()) {
    std::cerr << topo.status() << "\n";
    return 1;
  }
  std::shared_ptr<const Topology> topology = topo.MoveValue();

  // 2. Place copies on all three sites under Optimistic Dynamic Voting.
  auto odv_result = MakeODV(topology, SiteSet{a, b, c});
  if (!odv_result.ok()) {
    std::cerr << odv_result.status() << "\n";
    return 1;
  }
  DynamicVoting& file = **odv_result;
  NetworkState net(topology);

  auto show = [&](const std::string& when) {
    std::cout << when << "\n";
    for (SiteId s : file.placement()) {
      std::cout << "  site " << topology->site(s).name << ": "
                << (net.IsSiteUp(s) ? "up  " : "DOWN")
                << "  " << file.store().state(s) << "\n";
    }
  };

  std::cout << "== Optimistic Dynamic Voting quickstart ==\n\n";
  show("Initial state (o = v = 1, partition set {A, B, C}):");

  // 3. Writes succeed while a majority partition exists.
  for (int i = 0; i < 3; ++i) {
    Status st = file.Write(net, a);
    std::cout << "write #" << (i + 1) << " at A: " << st << "\n";
  }
  show("\nAfter three writes:");

  // 4. Site C crashes. The next access silently shrinks the quorum.
  net.SetSiteUp(c, false);
  std::cout << "\nsite C crashes (no state change until an access)\n";
  Status st = file.UserAccess(net, AccessType::kWrite);
  std::cout << "next user write: " << st << "\n";
  show("Partition set shrank to the survivors:");

  // 5. B crashes too: A alone is half of {A, B} holding the maximum
  //    element, so the file stays available (lexicographic tie-break).
  net.SetSiteUp(b, false);
  std::cout << "\nsite B crashes as well\n";
  std::cout << "read at A: " << file.Read(net, a) << "\n";

  // 6. A crashes: total failure. B restarts, but B's copy might be stale
  //    — the protocol refuses it until A (the majority block) is back.
  net.SetSiteUp(a, false);
  net.SetSiteUp(b, true);
  std::cout << "\nA crashes; B restarts alone\n";
  std::cout << "read at B:    " << file.Read(net, b) << "\n";
  std::cout << "recover at B: " << file.Recover(net, b) << "\n";

  // 7. A returns; everyone reintegrates through the recovery protocol.
  net.SetSiteUp(a, true);
  net.SetSiteUp(c, true);
  std::cout << "\nA and C restart\n";
  for (SiteId s : {b, c}) {
    std::cout << "recover site " << topology->site(s).name
              << ": " << file.Recover(net, s) << "\n";
  }
  show("\nFinal state (all copies current again):");

  std::cout << "\nmessages exchanged: " << file.counter()->ToString()
            << "\n";
  return 0;
}
