// Runs a fault-injection scenario script (see src/kv/scenario.h for the
// language) against a replicated KV cluster on the paper's network or a
// simple single-segment cluster.
//
//   ./build/examples/scenario_runner <script.dvs> [protocol] [--paper]
//
// Without --paper the cluster is three sites A, B, C on one segment;
// with --paper it is the eight-site Figure 8 network (site names csvax,
// beowulf, grendel, wizard, amos, gremlin, rip, mangle) with copies on
// csvax, beowulf, gremlin and mangle.
//
// Example scripts live in examples/scenarios/.

#include <fstream>
#include <iostream>
#include <sstream>

#include "kv/scenario.h"
#include "model/site_profile.h"

using namespace dynvote;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: scenario_runner <script.dvs> [protocol] [--paper]"
              << "\n";
    return 1;
  }
  std::string path = argv[1];
  std::string protocol = "LDV";
  bool paper = false;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--paper") {
      paper = true;
    } else {
      protocol = a;
    }
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  std::shared_ptr<const Topology> topology;
  SiteSet placement;
  if (paper) {
    auto network = MakePaperNetwork();
    if (!network.ok()) {
      std::cerr << network.status() << "\n";
      return 1;
    }
    topology = network->topology;
    placement = SiteSet{0, 1, 5, 7};
  } else {
    auto builder = Topology::Builder();
    SegmentId lan = builder.AddSegment("lan");
    builder.AddSite("A", lan);
    builder.AddSite("B", lan);
    builder.AddSite("C", lan);
    auto topo = builder.Build();
    if (!topo.ok()) {
      std::cerr << topo.status() << "\n";
      return 1;
    }
    topology = topo.MoveValue();
    placement = SiteSet{0, 1, 2};
  }

  auto scenario = Scenario::Parse(topology, buffer.str());
  if (!scenario.ok()) {
    std::cerr << scenario.status() << "\n";
    return 1;
  }
  auto cluster = KvCluster::Make(topology, placement, protocol);
  if (!cluster.ok()) {
    std::cerr << cluster.status() << "\n";
    return 1;
  }

  std::cout << "running " << path << " under " << protocol << " ("
            << scenario->steps().size() << " steps)\n\n";
  std::string transcript;
  Status st = scenario->Run(cluster->get(), &transcript);
  std::cout << transcript << "\n";
  if (!st.ok()) {
    std::cout << "SCENARIO FAILED: " << st << "\n";
    return 1;
  }
  std::cout << "scenario passed.\n";
  return 0;
}
