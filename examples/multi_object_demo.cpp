// Per-object quorums: many replicated objects, each with its own
// placement and protocol, on the paper's network — some keys stay
// writable through a partition that blocks others, and a regenerable
// witness keeps a two-copy object alive through a slow hardware repair.
//
// Build & run:  ./build/examples/multi_object_demo

#include <iostream>

#include "core/regenerating.h"
#include "kv/multi_store.h"
#include "model/site_profile.h"

using namespace dynvote;

namespace {

void Show(const char* what, const Status& st) {
  std::cout << "  " << what << " -> " << st << "\n";
}

void Show(const char* what, const Result<std::string>& r) {
  std::cout << "  " << what << " -> "
            << (r.ok() ? *r : r.status().ToString()) << "\n";
}

}  // namespace

int main() {
  auto network = MakePaperNetwork();
  if (!network.ok()) {
    std::cerr << network.status() << "\n";
    return 1;
  }
  auto topo = network->topology;
  NetworkState net(topo);

  auto store_result =
      MultiKvStore::Make(topo, "LDV", SiteSet{0, 1, 2});  // main segment
  if (!store_result.ok()) {
    std::cerr << store_result.status() << "\n";
    return 1;
  }
  MultiKvStore& store = **store_result;

  std::cout << "== Per-object quorums on the paper's network ==\n\n";

  // Three objects with different placements and protocols.
  (void)store.DeclareKey("local", SiteSet{0, 1, 2});           // main only
  (void)store.DeclareKey("spread", SiteSet{0, 5, 7});          // config C
  (void)store.DeclareKey("clustered", SiteSet{0, 1, 2, 3}, "TDV");  // E

  Show("Put(local)", store.Put(net, 0, "local", "on-main"));
  Show("Put(spread)", store.Put(net, 0, "spread", "across-gateways"));
  Show("Put(clustered)", store.Put(net, 0, "clustered", "same-segment"));

  std::cout << "\nGateway wizard fails — gremlin's segment cut off:\n";
  net.SetSiteUp(3, false);
  store.OnNetworkEvent(net);
  Show("Get(local)  [unaffected]", store.Get(net, 0, "local"));
  Show("Get(spread) [adapted: {csvax, mangle} majority]",
       store.Get(net, 0, "spread"));
  Show("Get(clustered) [TDV carries wizard's vote]",
       store.Get(net, 0, "clustered"));

  std::cout << "\nAmos fails too; csvax and beowulf as well:\n";
  for (SiteId s : {4, 0, 1}) {
    net.SetSiteUp(s, false);
    store.OnNetworkEvent(net);
  }
  Show("Get(local)   [only grendel of {csvax,beowulf,grendel} is up]",
       store.Get(net, 2, "local"));
  Show("Get(spread)  [no quorum anywhere]", store.Get(net, 2, "spread"));
  Show("Get(clustered) [TDV: grendel carries its dead segment-mates]",
       store.Get(net, 2, "clustered"));

  net.AllUp();
  store.OnNetworkEvent(net);

  // A regenerable witness on its own object: data on csvax + gremlin,
  // witness on mangle; when mangle goes down for a two-week repair the
  // majority block replaces the witness instead of waiting.
  std::cout << "\n== Regenerable witness ==\n";
  RegeneratingOptions options;
  options.regeneration_threshold = 2;
  auto regen = RegeneratingVoting::Make(topo, SiteSet{0, 5}, SiteSet{7},
                                        options);
  if (!regen.ok()) {
    std::cerr << regen.status() << "\n";
    return 1;
  }
  RegeneratingVoting& file = **regen;
  std::cout << "  members: " << file.placement()
            << " (witness on mangle)\n";
  net.SetSiteUp(7, false);  // mangle: ~2-week hardware repair
  file.OnNetworkEvent(net);
  net.SetSiteUp(6, false);  // unrelated events advance the miss counter
  file.OnNetworkEvent(net);
  net.SetSiteUp(6, true);
  file.OnNetworkEvent(net);
  std::cout << "  mangle down for " << 3
            << " refreshes -> witness regenerated, members now "
            << file.placement() << " (regenerations: "
            << file.regenerations() << ")\n";
  std::cout << "  write with csvax + fresh witness while gremlin fails: ";
  net.SetSiteUp(5, false);
  file.OnNetworkEvent(net);
  std::cout << file.Write(net, 0) << "\n";
  return 0;
}
