// Availability explorer: run the paper's simulation for any copy
// placement and any set of policies from the command line.
//
//   ./build/examples/availability_explorer [--sites=1,2,6]
//       [--policies=MCV,LDV,ODV] [--years=100] [--rate=1.0] [--seed=7]
//
// Site numbers are the paper's one-based numbers (1 = csvax ... 8 =
// mangle). Defaults reproduce configuration B under all six policies.

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/registry.h"
#include "model/experiment.h"
#include "model/site_profile.h"
#include "stats/table.h"

using namespace dynvote;

namespace {

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string sites_arg = "1,2,6";
  std::string policies_arg = "MCV,DV,LDV,ODV,TDV,OTDV";
  double years = 100.0;
  double rate = 1.0;
  std::uint64_t seed = 20260704;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--sites=", 0) == 0) {
      sites_arg = a.substr(8);
    } else if (a.rfind("--policies=", 0) == 0) {
      policies_arg = a.substr(11);
    } else if (a.rfind("--years=", 0) == 0) {
      years = std::stod(a.substr(8));
    } else if (a.rfind("--rate=", 0) == 0) {
      rate = std::stod(a.substr(7));
    } else if (a.rfind("--seed=", 0) == 0) {
      seed = std::stoull(a.substr(7));
    } else {
      std::cerr << "usage: availability_explorer [--sites=1,2,6] "
                   "[--policies=MCV,LDV] [--years=N] [--rate=R] "
                   "[--seed=N]\n";
      return 1;
    }
  }

  auto network = MakePaperNetwork();
  if (!network.ok()) {
    std::cerr << network.status() << "\n";
    return 1;
  }

  SiteSet placement;
  for (const std::string& s : SplitCsv(sites_arg)) {
    int paper_number = std::stoi(s);
    if (paper_number < 1 || paper_number > 8) {
      std::cerr << "site numbers are 1..8 (paper numbering)\n";
      return 1;
    }
    placement.Add(paper_number - 1);
  }

  ExperimentSpec spec;
  spec.topology = network->topology;
  spec.profiles = network->profiles;
  spec.options.warmup = Days(360);
  spec.options.num_batches = 20;
  spec.options.batch_length = Years(years / 20.0);
  spec.options.access.rate_per_day = rate;
  spec.options.seed = seed;

  std::vector<std::unique_ptr<ConsistencyProtocol>> protocols;
  for (const std::string& name : SplitCsv(policies_arg)) {
    auto p = MakeProtocolByName(name, network->topology, placement);
    if (!p.ok()) {
      std::cerr << p.status() << "\n";
      return 1;
    }
    protocols.push_back(p.MoveValue());
  }

  std::cout << "Simulating copies at sites {" << sites_arg << "} for "
            << years << " years (access rate " << rate
            << "/day, seed " << seed << ")\n"
            << "Network: " << network->topology->ToString() << "\n";

  auto results = RunAvailabilityExperiment(spec, std::move(protocols));
  if (!results.ok()) {
    std::cerr << results.status() << "\n";
    return 1;
  }

  TextTable table({"Policy", "Unavailability", "95% CI ±",
                   "Mean outage (days)", "Outages", "Accesses granted",
                   "Dual majorities"});
  for (const PolicyResult& r : *results) {
    double mean_outage = r.num_unavailable_periods == 0
                             ? -1.0
                             : r.mean_unavailable_duration;
    std::ostringstream granted;
    granted << r.accesses_granted << "/" << r.accesses_attempted;
    table.AddRow({r.name, TextTable::Fixed6(r.unavailability),
                  TextTable::Fixed6(r.stats.ci95_halfwidth),
                  TextTable::Fixed6(mean_outage),
                  std::to_string(r.num_unavailable_periods), granted.str(),
                  std::to_string(r.dual_majority_instants)});
  }
  std::cout << table.ToString();
  return 0;
}
