// A replicated key-value store on the paper's eight-site network, with
// fault injection from the command line of the program itself (scripted
// here): demonstrates that the voting protocol — not luck — keeps the
// data consistent while gateways fail and partitions come and go.
//
// Build & run:  ./build/examples/kv_cluster_demo [protocol]
//   protocol: MCV | DV | LDV | ODV | TDV | OTDV   (default LDV)

#include <iostream>
#include <string>

#include "kv/cluster.h"
#include "model/site_profile.h"

using namespace dynvote;

namespace {

void Report(const std::string& what, const Status& st) {
  std::cout << "  " << what << " -> " << st << "\n";
}

template <typename T>
void Report(const std::string& what, const Result<T>& r) {
  std::cout << "  " << what << " -> "
            << (r.ok() ? "OK: " + *r : r.status().ToString()) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string protocol = argc > 1 ? argv[1] : "LDV";

  auto network = MakePaperNetwork();
  if (!network.ok()) {
    std::cerr << network.status() << "\n";
    return 1;
  }
  // Copies on csvax (0), beowulf (1), gremlin (5), mangle (7): two on the
  // main segment, one behind each gateway — configuration G of the paper.
  SiteSet placement{0, 1, 5, 7};
  auto cluster_result =
      KvCluster::Make(network->topology, placement, protocol);
  if (!cluster_result.ok()) {
    std::cerr << cluster_result.status() << "\n";
    return 1;
  }
  KvCluster& cluster = **cluster_result;

  std::cout << "== Replicated KV store under " << protocol
            << " (copies on csvax, beowulf, gremlin, mangle) ==\n\n";

  std::cout << "Normal operation:\n";
  Report("Put(csvax, user:42, alice)",
         cluster.Put(0, "user:42", "alice"));
  Report("Get(mangle, user:42)", cluster.Get(7, "user:42"));

  std::cout << "\nGateway wizard fails — gremlin is partitioned away:\n";
  cluster.KillSite(3);
  Report("Get(gremlin, user:42)  [minority side]",
         cluster.Get(5, "user:42"));
  Report("Put(gremlin, user:42, EVIL) [must be refused]",
         cluster.Put(5, "user:42", "EVIL"));
  Report("Put(csvax, user:42, bob) [majority side]",
         cluster.Put(0, "user:42", "bob"));

  std::cout << "\nGateway amos fails too — mangle gone as well:\n";
  cluster.KillSite(4);
  Report("Get(csvax, user:42)", cluster.Get(0, "user:42"));
  Report("Put(csvax, user:42, carol)",
         cluster.Put(0, "user:42", "carol"));

  std::cout << "\nBoth gateways repair; partitions heal:\n";
  cluster.RestartSite(3);
  cluster.RestartSite(4);
  if (!cluster.protocol().uses_instantaneous_information()) {
    // Optimistic protocols reintegrate at access/recovery time.
    (void)cluster.TryRecover(5);
    (void)cluster.TryRecover(7);
  }
  Report("Get(gremlin, user:42) [sees the majority's writes]",
         cluster.Get(5, "user:42"));
  Report("Get(mangle, user:42)", cluster.Get(7, "user:42"));

  std::cout << "\nCrash the whole main segment (csvax, beowulf):\n";
  cluster.KillSite(0);
  cluster.KillSite(1);
  Report("Get(gremlin, user:42)", cluster.Get(5, "user:42"));
  Report("Get(mangle,  user:42)", cluster.Get(7, "user:42"));
  std::cout << "  (with 2 of the previous block down, "
            << (cluster.IsAvailable() ? "a quorum survives"
                                      : "no quorum survives")
            << ")\n";

  std::cout << "\nEverything back:\n";
  cluster.RestartSite(0);
  cluster.RestartSite(1);
  (void)cluster.TryRecover(0);
  (void)cluster.TryRecover(1);
  Report("Get(csvax, user:42)", cluster.Get(0, "user:42"));

  std::cout << "\nprotocol messages: "
            << cluster.store().protocol()->counter()->ToString() << "\n";
  return 0;
}
