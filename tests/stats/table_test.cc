#include "stats/table.h"

#include <gtest/gtest.h>

namespace dynvote {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"Name", "Value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  std::string s = t.ToString();
  // Header present, rule present, rows present.
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  // Every line has the same length (left-padded grid).
  std::size_t pos = 0;
  std::size_t first_len = s.find('\n');
  while (pos < s.size()) {
    std::size_t next = s.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(TextTableTest, ShortRowsAllowed) {
  TextTable t({"A", "B", "C"});
  t.AddRow({"x"});
  EXPECT_NE(t.ToString().find("x"), std::string::npos);
}

TEST(TextTableTest, RuleRows) {
  TextTable t({"Header"});
  t.AddRow({"1"});
  t.AddRule();
  t.AddRow({"2"});
  std::string s = t.ToString();
  // Two rules: one under the header, one explicit.
  std::size_t first = s.find("---");
  std::size_t second = s.find("---", first + 3);
  EXPECT_NE(second, std::string::npos);
}

TEST(TextTableTest, Fixed6MatchesPaperFormat) {
  EXPECT_EQ(TextTable::Fixed6(0.002130), "0.002130");
  EXPECT_EQ(TextTable::Fixed6(0.0), "0.000000");
  EXPECT_EQ(TextTable::Fixed6(-1.0), "-");
  EXPECT_EQ(TextTable::Fixed6(-1.0, "n/a"), "n/a");
}

TEST(TextTableTest, FixedPrecision) {
  EXPECT_EQ(TextTable::Fixed(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::Fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace dynvote
