#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace dynvote {
namespace {

TEST(HistogramTest, Empty) {
  Histogram h;
  EXPECT_TRUE(h.Empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Summary(), "n=0");
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(5.0);
  EXPECT_EQ(h.Mean(), 5.0);
  EXPECT_EQ(h.Min(), 5.0);
  EXPECT_EQ(h.Max(), 5.0);
  EXPECT_EQ(h.Quantile(0.0), 5.0);
  EXPECT_EQ(h.Quantile(1.0), 5.0);
  EXPECT_EQ(h.Median(), 5.0);
}

TEST(HistogramTest, KnownQuantiles) {
  Histogram h;
  for (int i = 1; i <= 5; ++i) h.Add(i);  // 1..5
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 5.0);
  EXPECT_DOUBLE_EQ(h.Median(), 3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.9), 4.6);  // interpolated
}

TEST(HistogramTest, UnsortedInsertOrder) {
  Histogram h;
  for (double v : {9.0, 1.0, 5.0, 3.0, 7.0}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Median(), 5.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  h.Add(0.5);  // resorting after more inserts
  EXPECT_DOUBLE_EQ(h.Min(), 0.5);
}

TEST(HistogramTest, CensoredSamplesCounted) {
  Histogram h;
  h.Add(1.0);
  h.AddCensored(10.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.censored_count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 5.5);
  std::string s = h.Summary();
  EXPECT_NE(s.find("(1 censored)"), std::string::npos);
}

TEST(HistogramTest, SummaryFormat) {
  Histogram h;
  h.Add(1.25);
  h.Add(2.75);
  std::string s = h.Summary(2);
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("mean=2.00"), std::string::npos);
  EXPECT_NE(s.find("p50=2.00"), std::string::npos);
}

}  // namespace
}  // namespace dynvote
