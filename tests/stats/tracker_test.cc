#include "stats/tracker.h"

#include <gtest/gtest.h>

namespace dynvote {
namespace {

TEST(AvailabilityTrackerTest, AlwaysAvailable) {
  AvailabilityTracker t(/*start=*/0.0, /*batch_length=*/10.0, 5);
  t.Update(0.0, true);
  t.Finish(50.0);
  EXPECT_EQ(t.Unavailability(), 0.0);
  EXPECT_EQ(t.NumUnavailablePeriods(), 0);
  EXPECT_EQ(t.MeanUnavailableDuration(), 0.0);
  EXPECT_EQ(t.TotalTime(), 50.0);
}

TEST(AvailabilityTrackerTest, SimpleOutage) {
  AvailabilityTracker t(0.0, 10.0, 5);
  t.Update(5.0, false);
  t.Update(7.5, true);
  t.Finish(50.0);
  EXPECT_DOUBLE_EQ(t.UnavailableTime(), 2.5);
  EXPECT_DOUBLE_EQ(t.Unavailability(), 0.05);
  EXPECT_EQ(t.NumUnavailablePeriods(), 1);
  EXPECT_DOUBLE_EQ(t.MeanUnavailableDuration(), 2.5);
}

TEST(AvailabilityTrackerTest, MultiplePeriods) {
  AvailabilityTracker t(0.0, 10.0, 4);
  t.Update(1.0, false);
  t.Update(2.0, true);
  t.Update(11.0, false);
  t.Update(14.0, true);
  t.Finish(40.0);
  EXPECT_DOUBLE_EQ(t.UnavailableTime(), 4.0);
  EXPECT_EQ(t.NumUnavailablePeriods(), 2);
  EXPECT_DOUBLE_EQ(t.MeanUnavailableDuration(), 2.0);
}

TEST(AvailabilityTrackerTest, RedundantUpdatesDoNotSplitPeriods) {
  AvailabilityTracker t(0.0, 10.0, 2);
  t.Update(1.0, false);
  t.Update(2.0, false);  // still down: same period
  t.Update(3.0, false);
  t.Update(4.0, true);
  t.Finish(20.0);
  EXPECT_EQ(t.NumUnavailablePeriods(), 1);
  EXPECT_DOUBLE_EQ(t.UnavailableTime(), 3.0);
}

TEST(AvailabilityTrackerTest, WarmupIgnored) {
  // Window starts at t = 100: an outage entirely inside warm-up counts
  // for nothing.
  AvailabilityTracker t(100.0, 10.0, 5);
  t.Update(10.0, false);
  t.Update(20.0, true);
  t.Finish(150.0);
  EXPECT_EQ(t.UnavailableTime(), 0.0);
  EXPECT_EQ(t.NumUnavailablePeriods(), 0);
}

TEST(AvailabilityTrackerTest, OutageStraddlingWarmupBoundary) {
  AvailabilityTracker t(100.0, 10.0, 5);
  t.Update(95.0, false);
  t.Update(105.0, true);
  t.Finish(150.0);
  EXPECT_DOUBLE_EQ(t.UnavailableTime(), 5.0);  // clipped at 100
  EXPECT_EQ(t.NumUnavailablePeriods(), 1);
}

TEST(AvailabilityTrackerTest, OutageStraddlingEndClosedByFinish) {
  AvailabilityTracker t(0.0, 10.0, 2);
  t.Update(18.0, false);
  t.Finish(30.0);  // window ends at 20
  EXPECT_DOUBLE_EQ(t.UnavailableTime(), 2.0);
  EXPECT_EQ(t.NumUnavailablePeriods(), 1);
}

TEST(AvailabilityTrackerTest, BatchAttribution) {
  AvailabilityTracker t(0.0, 10.0, 3);
  t.Update(5.0, false);
  t.Update(15.0, true);  // 5 in batch 0, 5 in batch 1
  t.Update(25.0, false);
  t.Finish(30.0);  // 5 in batch 2
  const std::vector<double>& b = t.BatchUnavailabilities();
  ASSERT_EQ(b.size(), 3u);
  EXPECT_DOUBLE_EQ(b[0], 0.5);
  EXPECT_DOUBLE_EQ(b[1], 0.5);
  EXPECT_DOUBLE_EQ(b[2], 0.5);
  EXPECT_NEAR(t.Stats().mean, 0.5, 1e-12);
}

TEST(AvailabilityTrackerTest, OutageSpanningSeveralBatches) {
  AvailabilityTracker t(0.0, 10.0, 4);
  t.Update(5.0, false);
  t.Update(35.0, true);
  t.Finish(40.0);
  const std::vector<double>& b = t.BatchUnavailabilities();
  EXPECT_DOUBLE_EQ(b[0], 0.5);
  EXPECT_DOUBLE_EQ(b[1], 1.0);
  EXPECT_DOUBLE_EQ(b[2], 1.0);
  EXPECT_DOUBLE_EQ(b[3], 0.5);
  EXPECT_EQ(t.NumUnavailablePeriods(), 1);
  EXPECT_DOUBLE_EQ(t.MeanUnavailableDuration(), 30.0);
}

TEST(AvailabilityTrackerTest, ZeroLengthFlapsDoNotCount) {
  AvailabilityTracker t(0.0, 10.0, 1);
  t.Update(5.0, false);
  t.Update(5.0, true);  // zero-length outage
  t.Finish(10.0);
  EXPECT_EQ(t.UnavailableTime(), 0.0);
  EXPECT_EQ(t.NumUnavailablePeriods(), 0);
}

TEST(AvailabilityTrackerTest, UnavailableAcrossWholeWindow) {
  AvailabilityTracker t(0.0, 5.0, 2);
  t.Update(0.0, false);
  t.Finish(10.0);
  EXPECT_DOUBLE_EQ(t.Unavailability(), 1.0);
  EXPECT_EQ(t.NumUnavailablePeriods(), 1);
}

}  // namespace
}  // namespace dynvote
