// Randomized differential test: AvailabilityTracker against a brute-force
// reference that replays the full (time, status) sequence and integrates
// unavailable time, per-batch attribution and period counting directly.

#include <vector>

#include <gtest/gtest.h>

#include "stats/tracker.h"
#include "util/rng.h"

namespace dynvote {
namespace {

struct Sample {
  SimTime time;
  bool available;
};

struct Reference {
  double unavailable_time = 0.0;
  int periods = 0;
  std::vector<double> batch_unavailability;
};

Reference BruteForce(const std::vector<Sample>& samples, SimTime end,
                     SimTime start, SimTime batch_length, int batches) {
  Reference ref;
  ref.batch_unavailability.assign(batches, 0.0);
  SimTime window_end = start + batch_length * batches;

  // Integrate numerically interval by interval.
  bool in_period = false;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    SimTime from = samples[i].time;
    SimTime to = i + 1 < samples.size() ? samples[i + 1].time : end;
    bool available = samples[i].available;
    if (available) {
      in_period = false;
      continue;
    }
    double lo = std::max(from, start);
    double hi = std::min(to, window_end);
    if (hi > lo) {
      ref.unavailable_time += hi - lo;
      if (!in_period) {
        ++ref.periods;
        in_period = true;
      }
      for (int b = 0; b < batches; ++b) {
        double blo = std::max(lo, start + b * batch_length);
        double bhi = std::min(hi, start + (b + 1) * batch_length);
        if (bhi > blo) ref.batch_unavailability[b] += bhi - blo;
      }
    }
    // An unavailable stretch entirely outside the window neither counts
    // time nor opens a period; one that re-enters later is still the same
    // contiguous unavailable interval only if no available sample
    // intervened — handled by in_period staying true across zero-length
    // contributions? No: only intervals *inside* the window may chain a
    // period. Reset when this slice contributed nothing.
    if (hi <= lo) in_period = in_period && false;
  }
  for (double& u : ref.batch_unavailability) u /= batch_length;
  return ref;
}

TEST(TrackerFuzzTest, MatchesBruteForce) {
  Rng rng(0xACC0);
  for (int trial = 0; trial < 300; ++trial) {
    const SimTime start = static_cast<double>(rng.NextBounded(50));
    const int batches = 1 + static_cast<int>(rng.NextBounded(6));
    const SimTime batch_length = 10.0 + rng.NextDouble() * 20.0;
    const SimTime window_end = start + batches * batch_length;
    const SimTime end = window_end + rng.NextDouble() * 20.0;

    AvailabilityTracker tracker(start, batch_length, batches);
    std::vector<Sample> samples;
    samples.push_back({0.0, true});  // tracker's implicit initial state

    SimTime now = 0.0;
    bool available = true;
    int updates = 2 + static_cast<int>(rng.NextBounded(60));
    for (int i = 0; i < updates && now < end; ++i) {
      now += rng.NextDouble() * (end / updates) * 2.0;
      if (now > end) break;
      available = rng.NextBernoulli(0.5);
      tracker.Update(now, available);
      samples.push_back({now, available});
    }
    tracker.Finish(end);

    Reference ref = BruteForce(samples, end, start, batch_length, batches);
    ASSERT_NEAR(tracker.UnavailableTime(), ref.unavailable_time, 1e-9)
        << "trial " << trial;
    ASSERT_EQ(tracker.NumUnavailablePeriods(), ref.periods)
        << "trial " << trial;
    const std::vector<double>& got = tracker.BatchUnavailabilities();
    ASSERT_EQ(got.size(), ref.batch_unavailability.size());
    for (std::size_t b = 0; b < got.size(); ++b) {
      ASSERT_NEAR(got[b], ref.batch_unavailability[b], 1e-9)
          << "trial " << trial << " batch " << b;
    }
  }
}

}  // namespace
}  // namespace dynvote
