#include "stats/replication_stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/batch_means.h"

namespace dynvote {
namespace {

TEST(ReplicationStatsTest, EmptySummaryIsAllZero) {
  ReplicationStats stats;
  ReplicationSummary s = stats.Summary();
  EXPECT_EQ(s.num_samples, 0);
  EXPECT_EQ(s.num_censored, 0);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.ci95_halfwidth, 0.0);
}

TEST(ReplicationStatsTest, SingleSampleHasNoInterval) {
  ReplicationStats stats;
  stats.Add(3.5);
  ReplicationSummary s = stats.Summary();
  EXPECT_EQ(s.num_samples, 1);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.ci95_halfwidth, 0.0);
}

TEST(ReplicationStatsTest, MatchesHandComputedMoments) {
  // Values 2, 4, 6: mean 4, sample variance ((4+0+4)/2) = 4, stddev 2.
  ReplicationStats stats;
  stats.Add(2.0);
  stats.Add(4.0);
  stats.Add(6.0);
  ReplicationSummary s = stats.Summary();
  EXPECT_EQ(s.num_samples, 3);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  // t(0.975, df=2) * 2 / sqrt(3).
  EXPECT_NEAR(s.ci95_halfwidth, StudentT975(2) * 2.0 / std::sqrt(3.0),
              1e-12);
}

TEST(ReplicationStatsTest, CensoredObservationsAreExcludedFromMoments) {
  ReplicationStats stats;
  stats.Add(10.0);
  stats.Add(20.0);
  stats.AddCensored();
  stats.AddCensored();
  ReplicationSummary s = stats.Summary();
  EXPECT_EQ(s.num_samples, 2);
  EXPECT_EQ(s.num_censored, 2);
  // The mean is over the two uncensored values only — a censored
  // time-to-first-outage must not drag the estimate toward the horizon.
  EXPECT_DOUBLE_EQ(s.mean, 15.0);
}

TEST(ReplicationStatsTest, ToStringMentionsCensoring) {
  ReplicationStats stats;
  stats.Add(1.0);
  stats.AddCensored();
  std::string text = stats.Summary().ToString();
  EXPECT_NE(text.find("censored=1"), std::string::npos) << text;
  EXPECT_NE(text.find("R=1"), std::string::npos) << text;
}

TEST(ReplicationStatsTest, IdenticalValuesGiveZeroWidthInterval) {
  ReplicationStats stats;
  for (int i = 0; i < 8; ++i) stats.Add(0.25);
  ReplicationSummary s = stats.Summary();
  EXPECT_DOUBLE_EQ(s.mean, 0.25);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.ci95_halfwidth, 0.0);
}

}  // namespace
}  // namespace dynvote
