#include "stats/batch_means.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dynvote {
namespace {

TEST(StudentTTest, KnownQuantiles) {
  EXPECT_NEAR(StudentT975(1), 12.706, 1e-3);
  EXPECT_NEAR(StudentT975(10), 2.228, 1e-3);
  EXPECT_NEAR(StudentT975(30), 2.042, 1e-3);
  EXPECT_DOUBLE_EQ(StudentT975(100), 1.96);
  EXPECT_DOUBLE_EQ(StudentT975(0), 0.0);
}

TEST(BatchStatsTest, EmptyInput) {
  BatchStats s = ComputeBatchStats({});
  EXPECT_EQ(s.num_batches, 0);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.ci95_halfwidth, 0.0);
}

TEST(BatchStatsTest, SingleBatchHasNoInterval) {
  BatchStats s = ComputeBatchStats({0.4});
  EXPECT_EQ(s.num_batches, 1);
  EXPECT_EQ(s.mean, 0.4);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.ci95_halfwidth, 0.0);
}

TEST(BatchStatsTest, IdenticalBatchesHaveZeroWidth) {
  BatchStats s = ComputeBatchStats({0.2, 0.2, 0.2, 0.2});
  EXPECT_EQ(s.mean, 0.2);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.ci95_halfwidth, 0.0);
}

TEST(BatchStatsTest, KnownValues) {
  // values 1..5: mean 3, sample sd sqrt(2.5).
  BatchStats s = ComputeBatchStats({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(s.ci95_halfwidth, 2.776 * std::sqrt(2.5) / std::sqrt(5.0),
              1e-9);
}

TEST(BatchStatsTest, CoverageOnGaussianBatches) {
  // With 30 batches of N(0.5, 0.1) the CI should contain 0.5 most of the
  // time; rather than test coverage statistically, verify the width is
  // in the right ballpark for one fixed sample.
  std::vector<double> values;
  for (int i = 0; i < 30; ++i) {
    values.push_back(0.5 + 0.1 * std::sin(i * 2.39996));  // quasi-random
  }
  BatchStats s = ComputeBatchStats(values);
  EXPECT_NEAR(s.mean, 0.5, 0.03);
  EXPECT_GT(s.ci95_halfwidth, 0.0);
  EXPECT_LT(s.ci95_halfwidth, 0.05);
}

TEST(BatchStatsTest, ToStringFormat) {
  BatchStats s = ComputeBatchStats({0.001, 0.002});
  std::string str = s.ToString();
  EXPECT_NE(str.find("±"), std::string::npos);
  EXPECT_NE(str.find("n=2"), std::string::npos);
}

}  // namespace
}  // namespace dynvote
