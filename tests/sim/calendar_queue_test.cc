#include "sim/calendar_queue.h"

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"

namespace dynvote {
namespace {

/// Deterministic 64-bit LCG for generating schedules — the tests must be
/// a pure function of their source, so no std::random_device.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  std::uint64_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 11;
  }
  /// Uniform double in [0, range).
  double NextTime(double range) {
    return range * static_cast<double>(Next() % 1000000) / 1000000.0;
  }

 private:
  std::uint64_t state_;
};

std::vector<CalendarEvent> Drain(CalendarQueue& q) {
  std::vector<CalendarEvent> out;
  while (!q.Empty()) out.push_back(q.PopNext());
  return out;
}

void ExpectOrdered(const std::vector<CalendarEvent>& events) {
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_TRUE(events[i - 1].when < events[i].when ||
                (events[i - 1].when == events[i].when &&
                 events[i - 1].seq < events[i].seq))
        << "out of (when, seq) order at index " << i;
  }
}

TEST(CalendarQueueTest, StartsEmpty) {
  CalendarQueue q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
}

TEST(CalendarQueueTest, PopsInTimeOrder) {
  CalendarQueue q;
  q.Schedule(3.0, 3);
  q.Schedule(1.0, 1);
  q.Schedule(2.0, 2);
  EXPECT_EQ(q.PopNext().payload, 1u);
  EXPECT_EQ(q.PopNext().payload, 2u);
  EXPECT_EQ(q.PopNext().payload, 3u);
  EXPECT_TRUE(q.Empty());
}

TEST(CalendarQueueTest, FifoWithinTimestamp) {
  CalendarQueue q;
  for (std::uint64_t i = 0; i < 32; ++i) q.Schedule(1.0, i);
  for (std::uint64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(q.PopNext().payload, i);
  }
}

TEST(CalendarQueueTest, PeekDoesNotPop) {
  CalendarQueue q;
  q.Schedule(2.0, 7);
  EXPECT_EQ(q.PeekTime(), 2.0);
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_EQ(q.PopNext().payload, 7u);
}

TEST(CalendarQueueTest, InterleavedScheduleAndPop) {
  // Schedules racing ahead of pops, including events inserted *before*
  // the cached minimum, which must invalidate it.
  CalendarQueue q;
  q.Schedule(10.0, 10);
  q.Schedule(20.0, 20);
  EXPECT_EQ(q.PeekTime(), 10.0);
  q.Schedule(5.0, 5);  // precedes the cached minimum
  EXPECT_EQ(q.PopNext().payload, 5u);
  q.Schedule(15.0, 15);
  EXPECT_EQ(q.PopNext().payload, 10u);
  EXPECT_EQ(q.PopNext().payload, 15u);
  EXPECT_EQ(q.PopNext().payload, 20u);
}

TEST(CalendarQueueTest, ParityWithEventQueueOnRandomSchedules) {
  // The ordering contract: CalendarQueue pops in exactly the order the
  // comparison-based EventQueue fires, including same-timestamp ties
  // (both break ties by global schedule order). Timestamps are drawn
  // from a small grid so ties are frequent.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Lcg rng(seed);
    CalendarQueue calendar;
    EventQueue baseline;
    std::vector<std::uint64_t> baseline_order;
    for (std::uint64_t i = 0; i < 2000; ++i) {
      double when = static_cast<double>(rng.Next() % 97) * 0.5;
      calendar.Schedule(when, i);
      baseline.Schedule(when,
                        [&baseline_order, i](SimTime) {
                          baseline_order.push_back(i);
                        });
    }
    while (!baseline.Empty()) baseline.RunNext();

    std::vector<CalendarEvent> popped = Drain(calendar);
    ASSERT_EQ(popped.size(), baseline_order.size());
    for (std::size_t i = 0; i < popped.size(); ++i) {
      ASSERT_EQ(popped[i].payload, baseline_order[i])
          << "divergence at pop " << i << " (seed " << seed << ")";
    }
  }
}

TEST(CalendarQueueTest, ParityWithEventQueueInterleaved) {
  // Mixed schedule/pop phases: pop a prefix, then insert more events
  // both before and after the current head — the regime the batched
  // engine produces (repairs scheduled mid-run, accesses racing ahead).
  Lcg rng(42);
  CalendarQueue calendar;
  EventQueue baseline;
  std::vector<std::uint64_t> baseline_order;
  std::vector<std::uint64_t> calendar_order;
  std::uint64_t next_id = 0;
  auto schedule_both = [&](double when) {
    std::uint64_t id = next_id++;
    calendar.Schedule(when, id);
    baseline.Schedule(
        when, [&baseline_order, id](SimTime) { baseline_order.push_back(id); });
  };

  double clock = 0.0;
  for (int phase = 0; phase < 50; ++phase) {
    for (int i = 0; i < 40; ++i) {
      schedule_both(clock + rng.NextTime(30.0));
    }
    for (int i = 0; i < 25 && !calendar.Empty(); ++i) {
      CalendarEvent e = calendar.PopNext();
      calendar_order.push_back(e.payload);
      clock = e.when;
      baseline.RunNext();
    }
  }
  while (!calendar.Empty()) {
    calendar_order.push_back(calendar.PopNext().payload);
    baseline.RunNext();
  }
  ASSERT_EQ(calendar_order.size(), baseline_order.size());
  EXPECT_EQ(calendar_order, baseline_order);
}

TEST(CalendarQueueTest, ResizeStressPreservesOrderAndCount) {
  // Push through several grow thresholds, then drain through the shrink
  // thresholds; every event must come back exactly once, in order.
  CalendarQueue q;
  Lcg rng(7);
  const std::size_t n = 10000;
  for (std::uint64_t i = 0; i < n; ++i) {
    q.Schedule(rng.NextTime(365.0), i);
  }
  EXPECT_EQ(q.Size(), n);
  std::vector<CalendarEvent> popped = Drain(q);
  ASSERT_EQ(popped.size(), n);
  ExpectOrdered(popped);
  std::vector<bool> seen(n, false);
  for (const CalendarEvent& e : popped) {
    ASSERT_LT(e.payload, n);
    ASSERT_FALSE(seen[e.payload]) << "payload popped twice";
    seen[e.payload] = true;
  }
}

TEST(CalendarQueueTest, SparseTailAcrossYears) {
  // Exponential-flavored spacing: a dense head plus events years out.
  // Exercises the sparse-tail fallback (nothing due within one calendar
  // lap of the floor).
  CalendarQueue q;
  double when = 0.0;
  Lcg rng(13);
  for (std::uint64_t i = 0; i < 500; ++i) {
    when += 0.001 + rng.NextTime(i < 450 ? 0.1 : 5000.0);
    q.Schedule(when, i);
  }
  std::vector<CalendarEvent> popped = Drain(q);
  ASSERT_EQ(popped.size(), 500u);
  ExpectOrdered(popped);
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(popped[i].payload, i);
  }
}

TEST(CalendarQueueTest, DeterministicAcrossIdenticalRuns) {
  // Two queues fed the same schedule/pop sequence must pop identical
  // (when, seq, payload) triples — the engine's bit-identity depends on
  // the queue being a pure function of its inputs.
  auto run = [] {
    CalendarQueue q;
    Lcg rng(99);
    std::vector<CalendarEvent> popped;
    for (int phase = 0; phase < 20; ++phase) {
      for (std::uint64_t i = 0; i < 100; ++i) {
        q.Schedule(rng.NextTime(1000.0), phase * 100 + i);
      }
      for (int i = 0; i < 60 && !q.Empty(); ++i) popped.push_back(q.PopNext());
    }
    while (!q.Empty()) popped.push_back(q.PopNext());
    return popped;
  };
  std::vector<CalendarEvent> a = run();
  std::vector<CalendarEvent> b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].when, b[i].when);
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a[i].payload, b[i].payload);
  }
}

TEST(CalendarQueueTest, IdenticalTimestampsEverywhere) {
  // Degenerate width: every event at the same instant. The queue must
  // fall back gracefully (width floor) and still honor schedule order.
  CalendarQueue q;
  for (std::uint64_t i = 0; i < 1000; ++i) q.Schedule(5.0, i);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(q.PopNext().payload, i);
  }
}

}  // namespace
}  // namespace dynvote
