// Randomized differential test: EventQueue against a trivially correct
// reference implementation (sorted multimap), over long interleavings of
// schedule / cancel / run operations.

#include <map>
#include <optional>

#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "util/rng.h"

namespace dynvote {
namespace {

class ReferenceQueue {
 public:
  EventId Schedule(SimTime when) {
    EventId id = next_id_++;
    by_time_.emplace(std::make_pair(when, id), id);
    return id;
  }

  bool Cancel(EventId id) {
    for (auto it = by_time_.begin(); it != by_time_.end(); ++it) {
      if (it->second == id) {
        by_time_.erase(it);
        return true;
      }
    }
    return false;
  }

  bool Empty() const { return by_time_.empty(); }
  std::size_t Size() const { return by_time_.size(); }

  /// Pops the earliest event (FIFO within equal times thanks to the id
  /// tie-break) and returns (time, id).
  std::pair<SimTime, EventId> Pop() {
    auto it = by_time_.begin();
    auto out = std::make_pair(it->first.first, it->second);
    by_time_.erase(it);
    return out;
  }

 private:
  // key: (time, id) — id order equals insertion order, giving FIFO.
  std::map<std::pair<SimTime, EventId>, EventId> by_time_;
  EventId next_id_ = 1;
};

TEST(EventQueueFuzzTest, MatchesReferenceOverRandomOps) {
  Rng rng(0xD1FF);
  EventQueue queue;
  ReferenceQueue reference;
  std::vector<EventId> live_ids;  // same ids in both (issued in lockstep)
  std::optional<EventId> last_fired;

  for (int step = 0; step < 50000; ++step) {
    int op = static_cast<int>(rng.NextBounded(10));
    if (op < 5) {  // schedule
      SimTime when = static_cast<SimTime>(rng.NextBounded(1000));
      EventId fired_probe = 0;
      EventId id = queue.Schedule(
          when, [&fired_probe, step](SimTime) { fired_probe = step; });
      (void)fired_probe;
      EventId ref_id = reference.Schedule(when);
      ASSERT_EQ(id, ref_id) << "id streams diverged at step " << step;
      live_ids.push_back(id);
    } else if (op < 7) {  // cancel something (live, fired, or bogus)
      EventId target;
      if (!live_ids.empty() && rng.NextBernoulli(0.7)) {
        std::size_t idx = rng.NextBounded(live_ids.size());
        target = live_ids[idx];
      } else if (last_fired.has_value() && rng.NextBernoulli(0.5)) {
        target = *last_fired;  // already fired: both must refuse
      } else {
        target = 999999 + rng.NextBounded(100);  // never issued
      }
      ASSERT_EQ(queue.Cancel(target), reference.Cancel(target))
          << "cancel divergence at step " << step;
    } else {  // run next
      ASSERT_EQ(queue.Empty(), reference.Empty());
      if (queue.Empty()) continue;
      auto [ref_time, ref_id] = reference.Pop();
      ASSERT_EQ(queue.PeekTime(), ref_time) << "step " << step;
      SimTime t = queue.RunNext();
      ASSERT_EQ(t, ref_time) << "step " << step;
      last_fired = ref_id;
    }
    ASSERT_EQ(queue.Size(), reference.Size()) << "step " << step;
  }

  // Drain: remaining events must come out in identical order.
  while (!reference.Empty()) {
    auto [ref_time, ref_id] = reference.Pop();
    ASSERT_EQ(queue.RunNext(), ref_time);
    (void)ref_id;
  }
  EXPECT_TRUE(queue.Empty());
}

}  // namespace
}  // namespace dynvote
