#include "sim/event_queue.h"

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace dynvote {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(3.0, [&](SimTime) { order.push_back(3); });
  q.Schedule(1.0, [&](SimTime) { order.push_back(1); });
  q.Schedule(2.0, [&](SimTime) { order.push_back(2); });
  while (!q.Empty()) q.RunNext();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoWithinTimestamp) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(1.0, [&, i](SimTime) { order.push_back(i); });
  }
  while (!q.Empty()) q.RunNext();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CallbackReceivesScheduledTime) {
  EventQueue q;
  SimTime seen = -1.0;
  q.Schedule(4.5, [&](SimTime t) { seen = t; });
  EXPECT_EQ(q.RunNext(), 4.5);
  EXPECT_EQ(seen, 4.5);
}

TEST(EventQueueTest, PeekDoesNotPop) {
  EventQueue q;
  q.Schedule(2.0, [](SimTime) {});
  EXPECT_EQ(q.PeekTime(), 2.0);
  EXPECT_EQ(q.Size(), 1u);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  EventId id = q.Schedule(1.0, [&](SimTime) { ++fired; });
  q.Schedule(2.0, [&](SimTime) { ++fired; });
  EXPECT_TRUE(q.Cancel(id));
  while (!q.Empty()) q.RunNext();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancelUpdatesSizeImmediately) {
  EventQueue q;
  EventId id = q.Schedule(1.0, [](SimTime) {});
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, CancelTwiceFails) {
  EventQueue q;
  EventId id = q.Schedule(1.0, [](SimTime) {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelAfterFireFails) {
  EventQueue q;
  EventId id = q.Schedule(1.0, [](SimTime) {});
  q.RunNext();
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, CancelInvalidAndUnknownIdsFail) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
  EXPECT_FALSE(q.Cancel(12345));
}

TEST(EventQueueTest, CancelledHeadSkipped) {
  EventQueue q;
  int fired = -1;
  EventId first = q.Schedule(1.0, [&](SimTime) { fired = 1; });
  q.Schedule(2.0, [&](SimTime) { fired = 2; });
  q.Cancel(first);
  EXPECT_EQ(q.PeekTime(), 2.0);
  q.RunNext();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  std::vector<SimTime> fired;
  q.Schedule(1.0, [&](SimTime t) {
    fired.push_back(t);
    q.Schedule(t + 1.0, [&](SimTime t2) { fired.push_back(t2); });
  });
  while (!q.Empty() && fired.size() < 3) q.RunNext();
  EXPECT_EQ(fired, (std::vector<SimTime>{1.0, 2.0}));
}

TEST(EventQueueTest, ClearDropsEverything) {
  EventQueue q;
  int fired = 0;
  q.Schedule(1.0, [&](SimTime) { ++fired; });
  q.Schedule(2.0, [&](SimTime) { ++fired; });
  q.Clear();
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue q;
  // Insert in a scrambled order; expect monotone execution times.
  for (int i = 0; i < 1000; ++i) {
    q.Schedule(static_cast<SimTime>((i * 7919) % 997), [](SimTime) {});
  }
  SimTime last = -1.0;
  while (!q.Empty()) {
    SimTime t = q.RunNext();
    EXPECT_GE(t, last);
    last = t;
  }
}

TEST(EventQueueTest, TiesFireInScheduleOrderUnderRandomLoad) {
  // Property: across random schedules drawn from a coarse timestamp grid
  // (so ties are common), events sharing a timestamp always fire in the
  // order they were scheduled — the FIFO tie-break the calendar queue
  // and the batched engine's bit-identity contract both lean on. The
  // generator is a fixed LCG, so the test is a pure function of its
  // source.
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  for (int trial = 0; trial < 8; ++trial) {
    EventQueue q;
    std::vector<std::pair<SimTime, int>> fired;  // (when, schedule index)
    std::vector<SimTime> scheduled_when(500);
    for (int i = 0; i < 500; ++i) {
      SimTime when = static_cast<SimTime>(next() % 23);
      scheduled_when[i] = when;
      q.Schedule(when, [&fired, when, i](SimTime) {
        fired.push_back({when, i});
      });
    }
    while (!q.Empty()) q.RunNext();

    ASSERT_EQ(fired.size(), 500u);
    for (std::size_t i = 1; i < fired.size(); ++i) {
      ASSERT_LE(fired[i - 1].first, fired[i].first);
      if (fired[i - 1].first == fired[i].first) {
        ASSERT_LT(fired[i - 1].second, fired[i].second)
            << "tie at t=" << fired[i].first
            << " fired out of schedule order (trial " << trial << ")";
      }
    }
  }
}

TEST(EventQueueTest, SameTimeRescheduleFiresAfterIncumbents) {
  // An event scheduled *during* a callback at the current timestamp gets
  // a later sequence number than everything already queued at that time,
  // so it fires after all incumbents.
  EventQueue q;
  std::vector<int> order;
  q.Schedule(1.0, [&](SimTime t) {
    order.push_back(0);
    q.Schedule(t, [&](SimTime) { order.push_back(9); });
  });
  q.Schedule(1.0, [&](SimTime) { order.push_back(1); });
  q.Schedule(1.0, [&](SimTime) { order.push_back(2); });
  while (!q.Empty()) q.RunNext();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 9}));
}

TEST(EventQueueTest, CancellationDoesNotPerturbTieOrder) {
  // Cancelling one member of a tie group leaves the survivors' relative
  // order untouched.
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(q.Schedule(2.0, [&order, i](SimTime) {
      order.push_back(i);
    }));
  }
  EXPECT_TRUE(q.Cancel(ids[0]));
  EXPECT_TRUE(q.Cancel(ids[3]));
  while (!q.Empty()) q.RunNext();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 5}));
}

}  // namespace
}  // namespace dynvote
