#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

namespace dynvote {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0.0);
  EXPECT_EQ(sim.EventsRun(), 0u);
  EXPECT_TRUE(sim.Idle());
}

TEST(SimulatorTest, RunUntilAdvancesClockToHorizon) {
  Simulator sim;
  ASSERT_TRUE(sim.RunUntil(10.0).ok());
  EXPECT_EQ(sim.Now(), 10.0);
}

TEST(SimulatorTest, RunUntilRejectsPastHorizon) {
  Simulator sim;
  ASSERT_TRUE(sim.RunUntil(5.0).ok());
  EXPECT_TRUE(sim.RunUntil(4.0).IsInvalidArgument());
}

TEST(SimulatorTest, CallbacksSeeConsistentNow) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.ScheduleIn(2.0, [&](SimTime t) {
    seen.push_back(t);
    EXPECT_EQ(sim.Now(), t);
  });
  sim.ScheduleIn(7.0, [&](SimTime t) {
    seen.push_back(t);
    EXPECT_EQ(sim.Now(), t);
  });
  ASSERT_TRUE(sim.RunUntil(10.0).ok());
  EXPECT_EQ(seen, (std::vector<SimTime>{2.0, 7.0}));
  EXPECT_EQ(sim.EventsRun(), 2u);
}

TEST(SimulatorTest, EventsBeyondHorizonStayPending) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleIn(5.0, [&](SimTime) { ++fired; });
  sim.ScheduleIn(15.0, [&](SimTime) { ++fired; });
  ASSERT_TRUE(sim.RunUntil(10.0).ok());
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.Idle());
  ASSERT_TRUE(sim.RunUntil(20.0).ok());
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventAtExactHorizonRuns) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleIn(10.0, [&](SimTime) { ++fired; });
  ASSERT_TRUE(sim.RunUntil(10.0).ok());
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator sim;
  ASSERT_TRUE(sim.RunUntil(3.0).ok());
  SimTime seen = -1.0;
  sim.ScheduleAt(5.0, [&](SimTime t) { seen = t; });
  ASSERT_TRUE(sim.RunUntil(6.0).ok());
  EXPECT_EQ(seen, 5.0);
}

TEST(SimulatorTest, SelfReschedulingProcess) {
  Simulator sim;
  int count = 0;
  std::function<void(SimTime)> tick = [&](SimTime) {
    ++count;
    sim.ScheduleIn(1.0, tick);
  };
  sim.ScheduleIn(1.0, tick);
  ASSERT_TRUE(sim.RunUntil(10.5).ok());
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.Now(), 10.5);
}

TEST(SimulatorTest, CancelScheduledEvent) {
  Simulator sim;
  int fired = 0;
  EventId id = sim.ScheduleIn(1.0, [&](SimTime) { ++fired; });
  EXPECT_TRUE(sim.Cancel(id));
  ASSERT_TRUE(sim.RunUntil(2.0).ok());
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, StepRunsOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleIn(1.0, [&](SimTime) { ++fired; });
  sim.ScheduleIn(2.0, [&](SimTime) { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 1.0);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, ClearPendingDropsEvents) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleIn(1.0, [&](SimTime) { ++fired; });
  sim.ClearPending();
  ASSERT_TRUE(sim.RunUntil(2.0).ok());
  EXPECT_EQ(fired, 0);
}

TEST(SimTimeTest, UnitConversions) {
  EXPECT_DOUBLE_EQ(Days(2.0), 2.0);
  EXPECT_DOUBLE_EQ(Hours(24.0), 1.0);
  EXPECT_DOUBLE_EQ(Hours(3.0), 0.125);
  EXPECT_DOUBLE_EQ(Minutes(1440.0), 1.0);
  EXPECT_DOUBLE_EQ(Minutes(15.0), 15.0 / 1440.0);
  EXPECT_DOUBLE_EQ(Years(1.0), 365.0);
  EXPECT_DOUBLE_EQ(ToHours(0.5), 12.0);
  EXPECT_DOUBLE_EQ(ToMinutes(1.0), 1440.0);
  EXPECT_DOUBLE_EQ(ToYears(730.0), 2.0);
}

}  // namespace
}  // namespace dynvote
