#include "util/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace dynvote {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<int> err = Status::Internal("x");
  EXPECT_EQ(err.ValueOr(7), 7);
  Result<int> ok = 3;
  EXPECT_EQ(ok.ValueOr(7), 3);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = r.MoveValue();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 9);
}

TEST(ResultTest, MutableAccess) {
  Result<int> r = 1;
  *r = 5;
  EXPECT_EQ(*r, 5);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseParsed(int x, int* out) {
  DYNVOTE_ASSIGN_OR_RETURN(*out, ParsePositive(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseParsed(4, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_TRUE(UseParsed(-4, &out).IsInvalidArgument());
  EXPECT_EQ(out, 4);  // untouched on error
}

TEST(ResultTest, RvalueDereference) {
  std::string s = *Result<std::string>(std::string("move me"));
  EXPECT_EQ(s, "move me");
}

}  // namespace
}  // namespace dynvote
