#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dynvote {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
}

TEST(ThreadPoolTest, WaitCanBeReusedAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { ++count; });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), 10 * (batch + 1));
  }
}

TEST(ThreadPoolTest, TasksMaySubmitFurtherTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&pool, &count] {
    ++count;
    for (int i = 0; i < 5; ++i) {
      pool.Submit([&count] { ++count; });
    }
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 6);
}

TEST(ThreadPoolTest, SlotWritesAreVisibleAfterWait) {
  // The intended usage pattern: each task writes its own pre-assigned
  // slot, the coordinator reads all slots after Wait().
  ThreadPool pool(4);
  std::vector<int> slots(64, -1);
  for (int i = 0; i < 64; ++i) {
    int* slot = &slots[i];
    pool.Submit([slot, i] { *slot = i * i; });
  }
  pool.Wait();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(slots[i], i * i) << "slot " << i;
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++count;
      });
    }
  }  // destructor must run all 20 before joining
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolTest, TaskExceptionPropagatesToWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&count, i] {
      ++count;
      if (i == 3) throw std::runtime_error("task 3 failed");
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // Every task still ran: one throwing task never cancels the batch.
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, WaitClearsTheExceptionSlot) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("once"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The pool stays usable and the next batch is unaffected.
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, FirstExceptionWinsLaterOnesAreDropped) {
  ThreadPool pool(4);
  for (int i = 0; i < 16; ++i) {
    pool.Submit([] { throw std::runtime_error("boom"); });
  }
  // Exactly one rethrow regardless of how many tasks threw.
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  pool.Wait();  // slot cleared: second Wait returns normally
}

TEST(ThreadPoolTest, ShutdownRunsAllQueuedTasksBeforeReturning) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&count] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++count;
    });
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, DoubleShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Shutdown();
  pool.Shutdown();  // must not deadlock, double-join, or crash
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, DestructorAfterExplicitShutdownIsSafe) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    pool.Submit([&count] { ++count; });
    pool.Shutdown();
  }  // destructor's implicit Shutdown() must be a no-op
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ShutdownSwallowsUncollectedExceptions) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("never collected"); });
  pool.Shutdown();  // must not throw or terminate
}

TEST(ThreadPoolDeathTest, SubmitAfterShutdownDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_DEATH(pool.Submit([] {}), "shut-down ThreadPool");
}

}  // namespace
}  // namespace dynvote
