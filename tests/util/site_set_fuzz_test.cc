// Differential test: SiteSet against std::set<int> over long random
// operation sequences.

#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/site_set.h"

namespace dynvote {
namespace {

SiteSet FromReference(const std::set<int>& reference) {
  SiteSet out;
  for (int s : reference) out.Add(s);
  return out;
}

TEST(SiteSetFuzzTest, MatchesStdSet) {
  Rng rng(0x5E75);
  SiteSet set;
  std::set<int> reference;

  for (int step = 0; step < 100000; ++step) {
    SiteId s = static_cast<SiteId>(rng.NextBounded(64));
    switch (rng.NextBounded(3)) {
      case 0:
        set.Add(s);
        reference.insert(s);
        break;
      case 1:
        set.Remove(s);
        reference.erase(s);
        break;
      case 2:
        ASSERT_EQ(set.Contains(s), reference.count(s) == 1) << step;
        break;
    }
    ASSERT_EQ(set.Size(), static_cast<int>(reference.size())) << step;
    ASSERT_EQ(set.Empty(), reference.empty()) << step;
    if (!reference.empty()) {
      ASSERT_EQ(set.RankMax(), *reference.begin()) << step;
      ASSERT_EQ(set.RankMin(), *reference.rbegin()) << step;
    }
    if (step % 1000 == 0) {
      // Full iteration equality check (amortised).
      std::set<int> iterated(set.begin(), set.end());
      ASSERT_EQ(iterated, reference) << step;
    }
  }
}

TEST(SiteSetFuzzTest, AlgebraMatchesStdSetOperations) {
  Rng rng(0xA15E);
  for (int trial = 0; trial < 2000; ++trial) {
    std::set<int> ra;
    std::set<int> rb;
    for (int i = 0; i < 10; ++i) {
      ra.insert(static_cast<int>(rng.NextBounded(64)));
      rb.insert(static_cast<int>(rng.NextBounded(64)));
    }
    SiteSet a = FromReference(ra);
    SiteSet b = FromReference(rb);

    std::set<int> union_ref = ra;
    union_ref.insert(rb.begin(), rb.end());
    ASSERT_EQ(a.Union(b), FromReference(union_ref));

    std::set<int> inter_ref;
    for (int s : ra) {
      if (rb.count(s)) inter_ref.insert(s);
    }
    ASSERT_EQ(a.Intersect(b), FromReference(inter_ref));

    std::set<int> minus_ref;
    for (int s : ra) {
      if (!rb.count(s)) minus_ref.insert(s);
    }
    ASSERT_EQ(a.Minus(b), FromReference(minus_ref));

    ASSERT_EQ(a.Intersects(b), !inter_ref.empty());
    ASSERT_EQ(a.IsSubsetOf(b), minus_ref.empty());
  }
}

}  // namespace
}  // namespace dynvote
