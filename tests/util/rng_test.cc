#include "util/rng.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace dynvote {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, OpenLowIntervalNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextDoubleOpenLow();
    ASSERT_GT(u, 0.0);
    ASSERT_LE(u, 1.0);
  }
}

TEST(RngTest, UniformMeanAndVariance) {
  Rng rng(99);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double u = rng.NextDouble();
    sum += u;
    sq += u * u;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.NextBounded(7), 7u);
  }
  // bound 1 always returns 0
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RngTest, BoundedCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_FALSE(rng.NextBernoulli(0.0));
    ASSERT_TRUE(rng.NextBernoulli(1.0));
    ASSERT_FALSE(rng.NextBernoulli(-1.0));
    ASSERT_TRUE(rng.NextBernoulli(2.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(23);
  const int n = 200000;
  const double mean = 36.5;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextExponential(mean);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, mean, mean * 0.02);
}

TEST(RngTest, ExponentialMemorylessTail) {
  // P(X > mean) should be e^-1.
  Rng rng(29);
  const int n = 100000;
  int over = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.NextExponential(2.0) > 2.0) ++over;
  }
  EXPECT_NEAR(static_cast<double>(over) / n, std::exp(-1.0), 0.01);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(31);
  Rng child = parent.Split();
  // The child stream should not collide with the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, StdDistributionCompatibility) {
  // Rng satisfies UniformRandomBitGenerator.
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng rng(41);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace dynvote
