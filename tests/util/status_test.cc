#include "util/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace dynvote {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status s = Status::NoQuorum("not enough votes");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNoQuorum());
  EXPECT_EQ(s.message(), "not enough votes");
  EXPECT_EQ(s.ToString(), "NoQuorum: not enough votes");

  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
}

TEST(StatusTest, IsChecksExactCode) {
  Status s = Status::NotFound("missing");
  EXPECT_TRUE(s.Is(StatusCode::kNotFound));
  EXPECT_FALSE(s.Is(StatusCode::kNoQuorum));
  EXPECT_FALSE(s.Is(StatusCode::kOk));
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NoQuorum("a"), Status::NoQuorum("a"));
  EXPECT_FALSE(Status::NoQuorum("a") == Status::NoQuorum("b"));
  EXPECT_FALSE(Status::NoQuorum("a") == Status::NotFound("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, StreamInsertionMatchesToString) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "Internal: boom");
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNoQuorum), "NoQuorum");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotSupported), "NotSupported");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x) {
  DYNVOTE_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Caller(3).ok());
  EXPECT_TRUE(Caller(-1).IsInvalidArgument());
}

}  // namespace
}  // namespace dynvote
