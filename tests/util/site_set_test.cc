#include "util/site_set.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace dynvote {
namespace {

TEST(SiteSetTest, DefaultIsEmpty) {
  SiteSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Size(), 0);
  EXPECT_FALSE(s.Contains(0));
}

TEST(SiteSetTest, InitializerList) {
  SiteSet s{0, 2, 5};
  EXPECT_EQ(s.Size(), 3);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_TRUE(s.Contains(2));
  EXPECT_TRUE(s.Contains(5));
}

TEST(SiteSetTest, AddRemove) {
  SiteSet s;
  s.Add(3);
  EXPECT_TRUE(s.Contains(3));
  s.Add(3);  // idempotent
  EXPECT_EQ(s.Size(), 1);
  s.Remove(3);
  EXPECT_TRUE(s.Empty());
  s.Remove(3);  // idempotent
  EXPECT_TRUE(s.Empty());
}

TEST(SiteSetTest, OutOfRangeIdsIgnored) {
  SiteSet s;
  s.Add(-1);
  s.Add(64);
  EXPECT_TRUE(s.Empty());
  EXPECT_FALSE(s.Contains(-1));
  EXPECT_FALSE(s.Contains(64));
}

TEST(SiteSetTest, BoundaryIds) {
  SiteSet s{0, 63};
  EXPECT_EQ(s.Size(), 2);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(63));
  EXPECT_EQ(s.RankMax(), 0);
  EXPECT_EQ(s.RankMin(), 63);
}

TEST(SiteSetTest, FirstN) {
  EXPECT_EQ(SiteSet::FirstN(0), SiteSet());
  EXPECT_EQ(SiteSet::FirstN(3), (SiteSet{0, 1, 2}));
  EXPECT_EQ(SiteSet::FirstN(64).Size(), 64);
  EXPECT_EQ(SiteSet::FirstN(100).Size(), 64);  // clamped high
}

TEST(SiteSetTest, FirstNClampsNegativeToEmpty) {
  // A negative n used to reach `1 << n`, which is undefined behaviour;
  // it now clamps to the empty set like n == 0.
  EXPECT_EQ(SiteSet::FirstN(-1), SiteSet());
  EXPECT_EQ(SiteSet::FirstN(-64), SiteSet());
  EXPECT_EQ(SiteSet::FirstN(std::numeric_limits<int>::min()), SiteSet());
}

TEST(SiteSetTest, SetAlgebra) {
  SiteSet a{0, 1, 2};
  SiteSet b{2, 3};
  EXPECT_EQ(a.Union(b), (SiteSet{0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b), SiteSet{2});
  EXPECT_EQ(a.Minus(b), (SiteSet{0, 1}));
  EXPECT_EQ(b.Minus(a), SiteSet{3});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(SiteSet{4}));
}

TEST(SiteSetTest, SubsetRelation) {
  SiteSet a{1, 2};
  SiteSet b{0, 1, 2, 3};
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(SiteSet().IsSubsetOf(a));
}

TEST(SiteSetTest, RankMaxIsLowestIdPerPaperOrdering) {
  // The paper orders A > B > C; we map the first-listed (highest-ranked)
  // site to the lowest id.
  SiteSet s{4, 2, 7};
  EXPECT_EQ(s.RankMax(), 2);
  EXPECT_EQ(s.RankMin(), 7);
}

TEST(SiteSetTest, IterationAscending) {
  SiteSet s{5, 0, 63, 17};
  std::vector<SiteId> seen(s.begin(), s.end());
  EXPECT_EQ(seen, (std::vector<SiteId>{0, 5, 17, 63}));
}

TEST(SiteSetTest, IterationOfEmptySet) {
  SiteSet s;
  EXPECT_EQ(s.begin(), s.end());
}

TEST(SiteSetTest, ToString) {
  EXPECT_EQ(SiteSet().ToString(), "{}");
  EXPECT_EQ((SiteSet{2, 0, 5}).ToString(), "{0, 2, 5}");
}

TEST(SiteSetTest, MaskRoundTrip) {
  SiteSet s{1, 3};
  EXPECT_EQ(SiteSet::FromMask(s.mask()), s);
  EXPECT_EQ(s.mask(), 0b1010u);
}

TEST(SiteSetTest, EqualityIsValueBased) {
  SiteSet a{1, 2};
  SiteSet b;
  b.Add(2);
  b.Add(1);
  EXPECT_EQ(a, b);
}

// Exhaustive cross-check of Size/RankMax/RankMin against a reference for
// all 12-bit masks.
TEST(SiteSetTest, ExhaustiveSmallMasks) {
  for (std::uint64_t mask = 1; mask < (1u << 12); ++mask) {
    SiteSet s = SiteSet::FromMask(mask);
    int size = 0;
    int lo = -1;
    int hi = -1;
    for (int i = 0; i < 12; ++i) {
      if (mask & (1u << i)) {
        ++size;
        if (lo < 0) lo = i;
        hi = i;
      }
    }
    ASSERT_EQ(s.Size(), size) << mask;
    ASSERT_EQ(s.RankMax(), lo) << mask;
    ASSERT_EQ(s.RankMin(), hi) << mask;
  }
}

}  // namespace
}  // namespace dynvote
