#include "util/distributions.h"

#include <gtest/gtest.h>

namespace dynvote {
namespace {

TEST(ConstantDistributionTest, AlwaysSameValue) {
  auto d = ConstantDistribution::Make(2.5);
  ASSERT_TRUE(d.ok());
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ((*d)->Sample(&rng), 2.5);
  }
  EXPECT_EQ((*d)->Mean(), 2.5);
}

TEST(ConstantDistributionTest, RejectsNegative) {
  EXPECT_TRUE(ConstantDistribution::Make(-0.1).status().IsInvalidArgument());
  EXPECT_TRUE(ConstantDistribution::Make(0.0).ok());
}

TEST(ExponentialDistributionTest, SampleMean) {
  auto d = ExponentialDistribution::Make(10.0);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->Mean(), 10.0);
  Rng rng(2);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += (*d)->Sample(&rng);
  EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(ExponentialDistributionTest, RejectsNonPositiveMean) {
  EXPECT_TRUE(ExponentialDistribution::Make(0.0).status().IsInvalidArgument());
  EXPECT_TRUE(
      ExponentialDistribution::Make(-3.0).status().IsInvalidArgument());
}

TEST(ShiftedExponentialTest, SamplesAtLeastOffset) {
  auto d = ShiftedExponentialDistribution::Make(168.0, 168.0);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->Mean(), 336.0);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_GE((*d)->Sample(&rng), 168.0);
  }
}

TEST(ShiftedExponentialTest, ZeroExpPartDegeneratesToConstant) {
  auto d = ShiftedExponentialDistribution::Make(4.0, 0.0);
  ASSERT_TRUE(d.ok());
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ((*d)->Sample(&rng), 4.0);
  }
}

TEST(ShiftedExponentialTest, SampleMean) {
  auto d = ShiftedExponentialDistribution::Make(10.0, 5.0);
  ASSERT_TRUE(d.ok());
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += (*d)->Sample(&rng);
  EXPECT_NEAR(sum / n, 15.0, 0.2);
}

TEST(ShiftedExponentialTest, RejectsNegativeParts) {
  EXPECT_FALSE(ShiftedExponentialDistribution::Make(-1.0, 1.0).ok());
  EXPECT_FALSE(ShiftedExponentialDistribution::Make(1.0, -1.0).ok());
}

std::unique_ptr<Distribution> MustMake(
    Result<std::unique_ptr<Distribution>> r) {
  EXPECT_TRUE(r.ok()) << r.status();
  return r.MoveValue();
}

TEST(MixtureDistributionTest, MeanIsWeightedAverage) {
  // Table 1's repair model: 10% hardware (exp mean 2), 90% software
  // (constant 20 min).
  auto mix = MixtureDistribution::Make(
      0.1, MustMake(ExponentialDistribution::Make(2.0)),
      MustMake(ConstantDistribution::Make(0.5)));
  ASSERT_TRUE(mix.ok());
  EXPECT_NEAR((*mix)->Mean(), 0.1 * 2.0 + 0.9 * 0.5, 1e-12);
}

TEST(MixtureDistributionTest, SampleMeanMatches) {
  auto mix = MixtureDistribution::Make(
      0.5, MustMake(ConstantDistribution::Make(0.0)),
      MustMake(ConstantDistribution::Make(1.0)));
  ASSERT_TRUE(mix.ok());
  Rng rng(6);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += (*mix)->Sample(&rng);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(MixtureDistributionTest, DegenerateProbabilities) {
  auto always_first = MixtureDistribution::Make(
      1.0, MustMake(ConstantDistribution::Make(1.0)),
      MustMake(ConstantDistribution::Make(2.0)));
  ASSERT_TRUE(always_first.ok());
  Rng rng(7);
  EXPECT_EQ((*always_first)->Sample(&rng), 1.0);

  auto always_second = MixtureDistribution::Make(
      0.0, MustMake(ConstantDistribution::Make(1.0)),
      MustMake(ConstantDistribution::Make(2.0)));
  ASSERT_TRUE(always_second.ok());
  EXPECT_EQ((*always_second)->Sample(&rng), 2.0);
}

TEST(MixtureDistributionTest, RejectsBadArguments) {
  EXPECT_FALSE(MixtureDistribution::Make(
                   1.5, MustMake(ConstantDistribution::Make(1.0)),
                   MustMake(ConstantDistribution::Make(2.0)))
                   .ok());
  EXPECT_FALSE(
      MixtureDistribution::Make(0.5, nullptr,
                                MustMake(ConstantDistribution::Make(2.0)))
          .ok());
}

TEST(DistributionsTest, ToStringsAreInformative) {
  Rng rng(8);
  EXPECT_EQ(MustMake(ConstantDistribution::Make(4))->ToString(), "Const(4)");
  EXPECT_EQ(MustMake(ExponentialDistribution::Make(36.5))->ToString(),
            "Exp(mean=36.5)");
  EXPECT_EQ(
      MustMake(ShiftedExponentialDistribution::Make(168, 168))->ToString(),
      "Const(168)+Exp(mean=168)");
}

}  // namespace
}  // namespace dynvote
