// The leveled logger: threshold filtering, SetLogLevel round-trips, the
// iostream-free formatting overloads, and the CHECK/DCHECK contracts.

#include "util/logging.h"

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>

#include "util/site_set.h"

namespace dynvote {
namespace {

/// Captures std::cerr for one test and restores level + stream buffer on
/// teardown, so logging tests cannot leak state into their neighbours.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = GetLogLevel();
    saved_buf_ = std::cerr.rdbuf(captured_.rdbuf());
  }
  void TearDown() override {
    std::cerr.rdbuf(saved_buf_);
    SetLogLevel(saved_level_);
  }

  std::string captured() const { return captured_.str(); }

  std::ostringstream captured_;
  std::streambuf* saved_buf_ = nullptr;
  LogLevel saved_level_ = LogLevel::kWarning;
};

TEST_F(LoggingTest, SetLogLevelRoundTrips) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarning, LogLevel::kError}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST_F(LoggingTest, MessagesBelowThresholdAreDropped) {
  SetLogLevel(LogLevel::kWarning);
  DYNVOTE_LOG(Debug) << "quiet";
  DYNVOTE_LOG(Info) << "also quiet";
  EXPECT_EQ(captured(), "");
}

TEST_F(LoggingTest, MessagesAtOrAboveThresholdAreWritten) {
  SetLogLevel(LogLevel::kWarning);
  DYNVOTE_LOG(Warning) << "warned";
  DYNVOTE_LOG(Error) << "errored";
  std::string out = captured();
  EXPECT_NE(out.find("[WARN "), std::string::npos) << out;
  EXPECT_NE(out.find("warned"), std::string::npos) << out;
  EXPECT_NE(out.find("[ERROR "), std::string::npos) << out;
  EXPECT_NE(out.find("errored"), std::string::npos) << out;
}

TEST_F(LoggingTest, RaisingTheThresholdAdmitsLowerLevels) {
  SetLogLevel(LogLevel::kDebug);
  DYNVOTE_LOG(Debug) << "now visible";
  EXPECT_NE(captured().find("now visible"), std::string::npos);
}

TEST_F(LoggingTest, FormattingOverloadsCoverTheCommonTypes) {
  SetLogLevel(LogLevel::kInfo);
  DYNVOTE_LOG(Info) << "n=" << 42 << " d=" << 1.5 << " c=" << 'x'
                    << " b=" << true << " s=" << std::string("str")
                    << " set=" << SiteSet{0, 2};
  std::string out = captured();
  EXPECT_NE(out.find("n=42"), std::string::npos) << out;
  EXPECT_NE(out.find("d=1.5"), std::string::npos) << out;
  EXPECT_NE(out.find("c=x"), std::string::npos) << out;
  EXPECT_NE(out.find("b=true"), std::string::npos) << out;
  EXPECT_NE(out.find("s=str"), std::string::npos) << out;
  // SiteSet renders through its ToString() member.
  EXPECT_NE(out.find("set=" + SiteSet{0, 2}.ToString()), std::string::npos)
      << out;
}

TEST_F(LoggingTest, DisabledMessagesSkipFormatting) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto costly = [&evaluations] {
    ++evaluations;
    return std::string("expensive");
  };
  // Operands are still evaluated (stream semantics), but nothing may
  // reach the stream.
  DYNVOTE_LOG(Info) << costly();
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(captured(), "");
}

TEST(LoggingDeathTest, CheckMsgAbortsWithExpressionAndMessage) {
  EXPECT_DEATH(DYNVOTE_CHECK_MSG(1 == 2, "one is not two"),
               "check failed: 1 == 2.*one is not two");
}

TEST(LoggingDeathTest, CheckPassesSilently) {
  DYNVOTE_CHECK(1 + 1 == 2);
  DYNVOTE_CHECK_MSG(true, "never printed");
}

TEST(LoggingDeathTest, DcheckMatchesBuildType) {
#ifdef NDEBUG
  // Release: the expression must not even be evaluated.
  int evaluations = 0;
  auto fails = [&evaluations] {
    ++evaluations;
    return false;
  };
  DYNVOTE_DCHECK(fails());
  DYNVOTE_DCHECK_MSG(fails(), "unused");
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_DEATH(DYNVOTE_DCHECK(2 < 1), "check failed: 2 < 1");
  EXPECT_DEATH(DYNVOTE_DCHECK_MSG(2 < 1, "ordering"), "ordering");
#endif
}

}  // namespace
}  // namespace dynvote
