// Contract documentation via death tests: the library's CHECK-guarded
// preconditions are part of its API — violating one is a bug at the call
// site, and these tests pin down that the process aborts (rather than
// silently corrupting protocol state, which for consistency-control code
// would be strictly worse than crashing).

#include <gtest/gtest.h>

#include "repl/replica_store.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "stats/tracker.h"

namespace dynvote {
namespace {

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, EventQueueRunNextOnEmptyAborts) {
  EventQueue q;
  EXPECT_DEATH(q.RunNext(), "RunNext on empty queue");
}

TEST(ContractDeathTest, EventQueuePeekOnEmptyAborts) {
  EventQueue q;
  EXPECT_DEATH(q.PeekTime(), "PeekTime on empty queue");
}

TEST(ContractDeathTest, EventQueueNullCallbackAborts) {
  EventQueue q;
  EXPECT_DEATH(q.Schedule(1.0, nullptr), "null callback");
}

TEST(ContractDeathTest, SimulatorNegativeDelayAborts) {
  Simulator sim;
  EXPECT_DEATH(sim.ScheduleIn(-1.0, [](SimTime) {}),
               "finite and non-negative");
}

TEST(ContractDeathTest, SimulatorPastAbsoluteTimeAborts) {
  Simulator sim;
  ASSERT_TRUE(sim.RunUntil(10.0).ok());
  EXPECT_DEATH(sim.ScheduleAt(5.0, [](SimTime) {}), "not in the past");
}

TEST(ContractDeathTest, TrackerTimeMovingBackwardsAborts) {
  AvailabilityTracker t(0.0, 10.0, 2);
  t.Update(5.0, false);
  EXPECT_DEATH(t.Update(4.0, true), "time moved backwards");
}

TEST(ContractDeathTest, TrackerDoubleFinishAborts) {
  AvailabilityTracker t(0.0, 10.0, 2);
  t.Finish(20.0);
  EXPECT_DEATH(t.Finish(20.0), "Finish called twice");
}

TEST(ContractDeathTest, ReplicaStoreNonMemberQueryAborts) {
  auto store = ReplicaStore::Make(SiteSet{0, 1}).MoveValue();
  EXPECT_DEATH(store.state(5), "holds no copy");
}

}  // namespace
}  // namespace dynvote
