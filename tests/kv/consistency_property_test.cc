// One-copy serialisability under random fault injection: for every
// partition-safe protocol, every successful Get must return the value of
// the most recent successful Put — across thousands of randomized
// kill/restart/partition/heal/put/get schedules and topologies.
//
// The topological variants are exercised too, with the weaker assertion
// set matching their documented hazard (reads may serve stale data after
// lineage forks; see tests/core/topological_unsoundness_test.cc) so that
// a *regression making them worse than the literal paper algorithm* (e.g.
// granting two sides of a pure partition) is still caught.

#include <map>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "core/test_topologies.h"
#include "kv/cluster.h"
#include "util/rng.h"

namespace dynvote {
namespace {

struct ConsistencyCase {
  std::string protocol;
  std::string topology;  // "single" or "section3"
  bool strict;           // assert one-copy serialisability
};

std::shared_ptr<const Topology> BuildTopology(const std::string& name) {
  if (name == "single") return testing_util::SingleSegment(4);
  return testing_util::Section3Network();
}

class KvConsistencyTest : public ::testing::TestWithParam<ConsistencyCase> {
};

TEST_P(KvConsistencyTest, LastWriteWinsUnderFaults) {
  const ConsistencyCase& c = GetParam();
  auto topo = BuildTopology(c.topology);
  SiteSet placement = SiteSet::FirstN(topo->num_sites());
  auto cluster_result = KvCluster::Make(topo, placement, c.protocol);
  ASSERT_TRUE(cluster_result.ok()) << cluster_result.status();
  KvCluster& cluster = **cluster_result;

  Rng rng(0xBEEF ^ std::hash<std::string>{}(c.protocol + c.topology));
  std::map<std::string, std::string> oracle;  // last committed values
  int committed_puts = 0;
  int successful_gets = 0;
  int counter = 0;

  for (int step = 0; step < 6000; ++step) {
    int kind = static_cast<int>(rng.NextBounded(10));
    if (kind < 2) {  // kill or restart a site
      SiteId s = static_cast<SiteId>(rng.NextBounded(topo->num_sites()));
      if (cluster.net().IsSiteUp(s)) {
        cluster.KillSite(s);
      } else {
        cluster.RestartSite(s);
        // Give the optimistic protocols their retry loop ("repeat until
        // successful"): a recovery attempt that may or may not succeed.
        Status st = cluster.TryRecover(s);
        ASSERT_TRUE(st.ok() || st.IsNoQuorum() || st.IsUnavailable()) << st;
      }
    } else if (kind == 2 && topo->num_repeaters() > 0) {
      RepeaterId r =
          static_cast<RepeaterId>(rng.NextBounded(topo->num_repeaters()));
      if (cluster.net().IsRepeaterUp(r)) {
        cluster.KillRepeater(r);
      } else {
        cluster.RestartRepeater(r);
      }
    } else if (kind < 6) {  // put
      SiteId origin =
          static_cast<SiteId>(rng.NextBounded(topo->num_sites()));
      std::string key = "k" + std::to_string(rng.NextBounded(4));
      std::string value = "v" + std::to_string(counter++);
      Status st = cluster.Put(origin, key, value);
      ASSERT_TRUE(st.ok() || st.IsNoQuorum() || st.IsUnavailable()) << st;
      if (st.ok()) {
        oracle[key] = value;
        ++committed_puts;
      }
    } else {  // get
      SiteId origin =
          static_cast<SiteId>(rng.NextBounded(topo->num_sites()));
      std::string key = "k" + std::to_string(rng.NextBounded(4));
      auto got = cluster.Get(origin, key);
      if (got.ok() || got.status().IsNotFound()) {
        ++successful_gets;
        if (c.strict) {
          auto expected = oracle.find(key);
          if (expected == oracle.end()) {
            ASSERT_TRUE(got.status().IsNotFound())
                << "step " << step << ": phantom value " << *got;
          } else {
            ASSERT_TRUE(got.ok())
                << "step " << step << ": lost " << expected->second;
            ASSERT_EQ(*got, expected->second) << "step " << step;
          }
        }
      } else {
        ASSERT_TRUE(got.status().IsNoQuorum() ||
                    got.status().IsUnavailable())
            << got.status();
      }
    }
  }
  // The schedule must have actually exercised the store.
  EXPECT_GT(committed_puts, 100);
  EXPECT_GT(successful_gets, 100);
}

std::vector<ConsistencyCase> MakeCases() {
  std::vector<ConsistencyCase> cases;
  for (const char* proto : {"MCV", "DV", "LDV", "ODV", "JM-DV"}) {
    cases.push_back({proto, "single", true});
    cases.push_back({proto, "section3", true});
  }
  // Topological variants: strict on... nothing — the fork hazard is real
  // on both topology classes (co-segment copies exist in both).
  for (const char* proto : {"TDV", "OTDV"}) {
    cases.push_back({proto, "single", false});
    cases.push_back({proto, "section3", false});
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<ConsistencyCase>& info) {
  std::string name = info.param.protocol + "_" + info.param.topology;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, KvConsistencyTest,
                         ::testing::ValuesIn(MakeCases()), CaseName);

}  // namespace
}  // namespace dynvote
