#include "kv/cluster.h"

#include <gtest/gtest.h>

#include "core/test_topologies.h"

namespace dynvote {
namespace {

using testing_util::Section3Network;
using testing_util::SingleSegment;

TEST(KvClusterTest, MakeValidates) {
  auto topo = SingleSegment(3);
  EXPECT_FALSE(KvCluster::Make(nullptr, SiteSet{0}, "LDV").ok());
  EXPECT_FALSE(KvCluster::Make(topo, SiteSet{0, 1}, "NOPE").ok());
  EXPECT_TRUE(KvCluster::Make(topo, SiteSet{0, 1, 2}, "LDV").ok());
}

TEST(KvClusterTest, BasicOperation) {
  auto topo = SingleSegment(3);
  auto cluster = KvCluster::Make(topo, SiteSet{0, 1, 2}, "LDV").MoveValue();
  EXPECT_TRUE(cluster->IsAvailable());
  ASSERT_TRUE(cluster->Put(0, "user:1", "alice").ok());
  EXPECT_EQ(*cluster->Get(2, "user:1"), "alice");
}

TEST(KvClusterTest, SurvivesMinorityFailure) {
  auto topo = SingleSegment(3);
  auto cluster = KvCluster::Make(topo, SiteSet{0, 1, 2}, "LDV").MoveValue();
  ASSERT_TRUE(cluster->Put(0, "k", "v1").ok());
  cluster->KillSite(2);
  EXPECT_TRUE(cluster->IsAvailable());
  ASSERT_TRUE(cluster->Put(0, "k", "v2").ok());
  cluster->KillSite(1);  // quorum shrank to {0, 1}; 0 carries the tie
  EXPECT_TRUE(cluster->IsAvailable());
  EXPECT_EQ(*cluster->Get(0, "k"), "v2");
}

TEST(KvClusterTest, PartitionMinoritySideRefused) {
  auto topo = Section3Network();  // A,B | C | D with repeaters X, Y
  auto cluster =
      KvCluster::Make(topo, SiteSet{0, 1, 2, 3}, "LDV").MoveValue();
  ASSERT_TRUE(cluster->Put(0, "k", "v").ok());
  cluster->KillRepeater(0);  // C (site 2) cut off
  EXPECT_TRUE(cluster->Get(2, "k").status().IsNoQuorum());
  EXPECT_TRUE(cluster->Put(2, "k", "evil").IsNoQuorum());
  // The majority side continues.
  ASSERT_TRUE(cluster->Put(0, "k", "v2").ok());
  // Heal: C reintegrates instantly (LDV) and serves the latest value.
  cluster->RestartRepeater(0);
  EXPECT_EQ(*cluster->Get(2, "k"), "v2");
}

TEST(KvClusterTest, OptimisticRecoveryViaExplicitRecover) {
  auto topo = SingleSegment(3);
  auto cluster = KvCluster::Make(topo, SiteSet{0, 1, 2}, "ODV").MoveValue();
  ASSERT_TRUE(cluster->Put(0, "k", "v1").ok());
  cluster->KillSite(2);
  ASSERT_TRUE(cluster->Put(0, "k", "v2").ok());  // 2 misses this
  cluster->RestartSite(2);
  ASSERT_TRUE(cluster->TryRecover(2).ok());
  EXPECT_EQ(cluster->store().ReplicaContents(2).at("k"), "v2");
}

TEST(KvClusterTest, TotalFailureBlocksUntilRightSiteReturns) {
  auto topo = SingleSegment(2);
  auto cluster = KvCluster::Make(topo, SiteSet{0, 1}, "LDV").MoveValue();
  ASSERT_TRUE(cluster->Put(0, "k", "v").ok());
  cluster->KillSite(1);  // majority {0} via tie-break
  ASSERT_TRUE(cluster->Put(0, "k", "v2").ok());
  cluster->KillSite(0);
  EXPECT_FALSE(cluster->IsAvailable());
  cluster->RestartSite(1);  // stale: must stay blocked
  EXPECT_FALSE(cluster->IsAvailable());
  EXPECT_TRUE(cluster->Get(1, "k").status().IsNoQuorum());
  cluster->RestartSite(0);
  EXPECT_TRUE(cluster->IsAvailable());
  EXPECT_EQ(*cluster->Get(1, "k"), "v2");
}

}  // namespace
}  // namespace dynvote
