#include "kv/scenario.h"

#include <gtest/gtest.h>

#include "core/test_topologies.h"

namespace dynvote {
namespace {

std::shared_ptr<const Topology> ThreeSites() {
  auto builder = Topology::Builder();
  SegmentId lan = builder.AddSegment("lan");
  builder.AddSite("A", lan);
  builder.AddSite("B", lan);
  builder.AddSite("C", lan);
  auto topo = builder.Build();
  EXPECT_TRUE(topo.ok());
  return topo.MoveValue();
}

std::unique_ptr<KvCluster> Cluster(std::shared_ptr<const Topology> topo,
                                   const std::string& protocol = "LDV") {
  auto c = KvCluster::Make(std::move(topo), SiteSet{0, 1, 2}, protocol);
  EXPECT_TRUE(c.ok());
  return c.MoveValue();
}

TEST(ScenarioParseTest, ParsesCommandsAndComments) {
  auto topo = ThreeSites();
  auto scenario = Scenario::Parse(topo, R"(
# a comment line
put A color blue     # trailing comment
get B color expect blue
delete C color
get A color expect missing
kill B
restart B
recover B expect ok
expect-available yes
)");
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  EXPECT_EQ(scenario->steps().size(), 8u);
  EXPECT_EQ(scenario->steps()[0].kind, ScenarioStep::Kind::kPut);
  EXPECT_EQ(scenario->steps()[0].value, "blue");
  EXPECT_EQ(scenario->steps()[3].expect, ScenarioStep::Expect::kMissing);
  EXPECT_EQ(scenario->steps()[7].kind,
            ScenarioStep::Kind::kExpectAvailable);
}

TEST(ScenarioParseTest, RejectsBadInput) {
  auto topo = ThreeSites();
  EXPECT_FALSE(Scenario::Parse(topo, "put A").ok());          // too short
  EXPECT_FALSE(Scenario::Parse(topo, "put Z k v").ok());      // bad site
  EXPECT_FALSE(Scenario::Parse(topo, "get A k").ok());        // no expect
  EXPECT_FALSE(Scenario::Parse(topo, "frobnicate A").ok());   // unknown
  EXPECT_FALSE(Scenario::Parse(topo, "expect-available maybe").ok());
  EXPECT_FALSE(Scenario::Parse(topo, "kill-repeater X").ok());  // none
  EXPECT_FALSE(Scenario::Parse(nullptr, "kill A").ok());
  // Error message carries the line number.
  Status st = Scenario::Parse(topo, "put A k v\nbogus").status();
  EXPECT_NE(st.message().find("line 2"), std::string::npos);
}

TEST(ScenarioRunTest, HappyPath) {
  auto topo = ThreeSites();
  auto cluster = Cluster(topo);
  auto scenario = Scenario::Parse(topo, R"(
put A color blue
get C color expect blue
kill C
put A color green
kill B
get A color expect green
expect-available yes
restart B
recover B expect ok
get B color expect green
)");
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  std::string transcript;
  Status st = scenario->Run(cluster.get(), &transcript);
  EXPECT_TRUE(st.ok()) << st << "\n" << transcript;
  EXPECT_NE(transcript.find("put A color=blue"), std::string::npos);
}

TEST(ScenarioRunTest, DeniedExpectations) {
  auto topo = ThreeSites();
  auto cluster = Cluster(topo);
  auto scenario = Scenario::Parse(topo, R"(
put A k v1
kill A
kill B
get C k expect denied
put C k v2 expect denied
recover C expect denied
expect-available no
restart A
restart B
get C k expect v1
)");
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  Status st = scenario->Run(cluster.get());
  EXPECT_TRUE(st.ok()) << st;
}

TEST(ScenarioRunTest, FailedExpectationNamesLine) {
  auto topo = ThreeSites();
  auto cluster = Cluster(topo);
  auto scenario = Scenario::Parse(topo, "put A k v1\nget B k expect WRONG");
  ASSERT_TRUE(scenario.ok());
  Status st = scenario->Run(cluster.get());
  ASSERT_TRUE(st.IsInternal());
  EXPECT_NE(st.message().find("line 2"), std::string::npos);
  EXPECT_NE(st.message().find("WRONG"), std::string::npos);
}

TEST(ScenarioRunTest, RepeaterCommands) {
  // Section 3 network with named repeaters X and Y.
  auto topo = testing_util::Section3Network();
  auto cluster = KvCluster::Make(topo, SiteSet{0, 1, 2, 3}, "LDV")
                     .MoveValue();
  auto scenario = Scenario::Parse(topo, R"(
put A k v1
kill-repeater X
get C k expect denied      # C is partitioned away
put A k v2
restart-repeater X
get C k expect v2          # instantaneous reintegration
)");
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  Status st = scenario->Run(cluster.get());
  EXPECT_TRUE(st.ok()) << st;
}

TEST(ScenarioRunTest, TieBreakScenario) {
  // The quickstart story as a script: A survives alone, B cannot.
  auto topo = ThreeSites();
  auto cluster = Cluster(topo);
  auto scenario = Scenario::Parse(topo, R"(
put A k v1
kill C
put A k v2
kill B
put A k v3             # A is half of {A,B} with the max element
kill A
restart B
expect-available no    # B alone must stay blocked
recover B expect denied
restart A
expect-available yes
get B k expect v3
)");
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  std::string transcript;
  Status st = scenario->Run(cluster.get(), &transcript);
  EXPECT_TRUE(st.ok()) << st << "\n" << transcript;
}

}  // namespace
}  // namespace dynvote
