#include "kv/kv_store.h"

#include <gtest/gtest.h>

#include "core/dynamic_voting.h"
#include "core/registry.h"
#include "core/test_topologies.h"

namespace dynvote {
namespace {

using testing_util::SingleSegment;

std::unique_ptr<ReplicatedKvStore> MakeStore(
    std::shared_ptr<const Topology> topo, SiteSet placement,
    const std::string& protocol = "LDV") {
  auto p = MakeProtocolByName(protocol, std::move(topo), placement);
  EXPECT_TRUE(p.ok());
  auto store = ReplicatedKvStore::Make(p.MoveValue());
  EXPECT_TRUE(store.ok());
  return store.MoveValue();
}

TEST(ReplicatedKvStoreTest, MakeValidates) {
  EXPECT_TRUE(ReplicatedKvStore::Make(nullptr).status().IsInvalidArgument());
}

TEST(ReplicatedKvStoreTest, PutThenGet) {
  auto topo = SingleSegment(3);
  auto store = MakeStore(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  ASSERT_TRUE(store->Put(net, 0, "k", "v1").ok());
  auto got = store->Get(net, 2, "k");
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, "v1");
}

TEST(ReplicatedKvStoreTest, GetMissingKeyIsNotFound) {
  auto topo = SingleSegment(3);
  auto store = MakeStore(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  EXPECT_TRUE(store->Get(net, 0, "nope").status().IsNotFound());
}

TEST(ReplicatedKvStoreTest, OverwriteAndDelete) {
  auto topo = SingleSegment(3);
  auto store = MakeStore(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  ASSERT_TRUE(store->Put(net, 0, "k", "v1").ok());
  ASSERT_TRUE(store->Put(net, 1, "k", "v2").ok());
  EXPECT_EQ(*store->Get(net, 2, "k"), "v2");
  ASSERT_TRUE(store->Delete(net, 2, "k").ok());
  EXPECT_TRUE(store->Get(net, 0, "k").status().IsNotFound());
}

TEST(ReplicatedKvStoreTest, WritesReplicateToAllCurrentCopies) {
  auto topo = SingleSegment(3);
  auto store = MakeStore(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  ASSERT_TRUE(store->Put(net, 0, "k", "v").ok());
  for (SiteId s : {0, 1, 2}) {
    EXPECT_EQ(store->ReplicaContents(s).at("k"), "v") << s;
  }
}

TEST(ReplicatedKvStoreTest, NoQuorumNoMutation) {
  auto topo = SingleSegment(3);
  auto store = MakeStore(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(0, false);
  net.SetSiteUp(1, false);
  store->protocol()->OnNetworkEvent(net);
  EXPECT_TRUE(store->Put(net, 2, "k", "v").IsNoQuorum());
  EXPECT_TRUE(store->ReplicaContents(2).empty());
  EXPECT_TRUE(store->Get(net, 2, "k").status().IsNoQuorum());
}

TEST(ReplicatedKvStoreTest, DownReplicaMissesWritesThenRecovers) {
  auto topo = SingleSegment(3);
  auto store = MakeStore(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(2, false);
  store->protocol()->OnNetworkEvent(net);
  ASSERT_TRUE(store->Put(net, 0, "k", "v").ok());
  EXPECT_TRUE(store->ReplicaContents(2).empty());
  net.SetSiteUp(2, true);
  store->protocol()->OnNetworkEvent(net);  // instantaneous recovery copies
  EXPECT_EQ(store->ReplicaContents(2).at("k"), "v");
}

TEST(ReplicatedKvStoreTest, StaleReplicaNeverServesReads) {
  auto topo = SingleSegment(3);
  auto store = MakeStore(topo, SiteSet{0, 1, 2}, "ODV");
  NetworkState net(topo);
  ASSERT_TRUE(store->Put(net, 0, "k", "old").ok());
  net.SetSiteUp(2, false);
  ASSERT_TRUE(store->Put(net, 0, "k", "new").ok());
  net.SetSiteUp(2, true);
  // Optimistic protocol: site 2 is back but stale (no recovery ran). A
  // read issued anywhere in the majority partition must see "new".
  for (SiteId origin : {0, 1, 2}) {
    auto got = store->Get(net, origin, "k");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, "new") << "origin " << origin;
  }
}

TEST(ReplicatedKvStoreTest, SizeThroughQuorum) {
  auto topo = SingleSegment(3);
  auto store = MakeStore(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  ASSERT_TRUE(store->Put(net, 0, "a", "1").ok());
  ASSERT_TRUE(store->Put(net, 0, "b", "2").ok());
  auto size = store->Size(net, 1);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 2u);
}

TEST(ReplicatedKvStoreTest, WitnessesHoldNoData) {
  auto topo = SingleSegment(3);
  DynamicVotingOptions options;
  options.witnesses = SiteSet{2};
  auto dv = DynamicVoting::Make(topo, SiteSet{0, 1, 2}, options);
  ASSERT_TRUE(dv.ok());
  auto store = ReplicatedKvStore::Make(dv.MoveValue()).MoveValue();
  NetworkState net(topo);
  EXPECT_EQ(store->protocol()->data_sites(), (SiteSet{0, 1}));
  ASSERT_TRUE(store->Put(net, 0, "k", "v").ok());
  EXPECT_EQ(store->ReplicaContents(0).at("k"), "v");
  EXPECT_EQ(store->ReplicaContents(1).at("k"), "v");
  // The witness voted on the commit but holds no data; reads are served
  // from data copies.
  auto got = store->Get(net, 1, "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v");
  // Even with a data copy down, witness + one data copy form a quorum and
  // reads still return the value.
  net.SetSiteUp(1, false);
  store->protocol()->OnNetworkEvent(net);
  auto got2 = store->Get(net, 0, "k");
  ASSERT_TRUE(got2.ok());
  EXPECT_EQ(*got2, "v");
}

}  // namespace
}  // namespace dynvote
