// Integration: the replicated KV store on top of the regenerable-witness
// protocol — data moves correctly even as the membership itself changes
// under it.

#include <gtest/gtest.h>

#include "core/regenerating.h"
#include "core/test_topologies.h"
#include "kv/kv_store.h"
#include "util/rng.h"

namespace dynvote {
namespace {

std::unique_ptr<ReplicatedKvStore> MakeStore(
    std::shared_ptr<const Topology> topo, SiteSet data, SiteSet witnesses,
    int threshold) {
  RegeneratingOptions options;
  options.regeneration_threshold = threshold;
  auto protocol =
      RegeneratingVoting::Make(std::move(topo), data, witnesses, options);
  EXPECT_TRUE(protocol.ok());
  auto store = ReplicatedKvStore::Make(protocol.MoveValue());
  EXPECT_TRUE(store.ok());
  return store.MoveValue();
}

TEST(RegeneratingKvTest, DataFollowsTheQuorumThroughRegeneration) {
  auto topo = testing_util::SingleSegment(5);
  auto store = MakeStore(topo, SiteSet{0, 1}, SiteSet{2}, 1);
  auto* protocol =
      static_cast<RegeneratingVoting*>(store->protocol());
  NetworkState net(topo);

  ASSERT_TRUE(store->Put(net, 0, "k", "v1").ok());
  EXPECT_EQ(store->ReplicaContents(0).at("k"), "v1");
  EXPECT_EQ(store->ReplicaContents(1).at("k"), "v1");

  // Witness host dies; regeneration moves the witness to site 3.
  net.SetSiteUp(2, false);
  protocol->OnNetworkEvent(net);
  ASSERT_EQ(protocol->witnesses(), SiteSet{3});

  // Writes keep flowing with the fresh witness voting; data still lives
  // only on the data copies.
  net.SetSiteUp(1, false);
  protocol->OnNetworkEvent(net);
  ASSERT_TRUE(store->Put(net, 0, "k", "v2").ok());
  EXPECT_EQ(store->ReplicaContents(0).at("k"), "v2");

  // Data copy 1 returns and recovers through the quorum.
  net.SetSiteUp(1, true);
  protocol->OnNetworkEvent(net);
  EXPECT_EQ(store->ReplicaContents(1).at("k"), "v2");

  // Reads are served from data copies, never from witnesses.
  auto got = store->Get(net, 0, "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v2");
}

TEST(RegeneratingKvTest, LastWriteWinsUnderChurnWithRegeneration) {
  auto topo = testing_util::SingleSegment(5);
  auto store = MakeStore(topo, SiteSet{0, 1}, SiteSet{2}, 2);
  auto* protocol =
      static_cast<RegeneratingVoting*>(store->protocol());
  NetworkState net(topo);
  Rng rng(0x5EED);

  std::string last_committed;
  int counter = 0;
  int commits = 0;
  for (int step = 0; step < 3000; ++step) {
    SiteId s = static_cast<SiteId>(rng.NextBounded(5));
    net.SetSiteUp(s, rng.NextBernoulli(0.7));
    protocol->OnNetworkEvent(net);

    if (rng.NextBernoulli(0.4)) {
      std::string value = "v" + std::to_string(counter++);
      for (SiteId origin = 0; origin < 5; ++origin) {
        if (!net.IsSiteUp(origin)) continue;
        Status st = store->Put(net, origin, "k", value);
        ASSERT_TRUE(st.ok() || st.IsNoQuorum()) << st;
        if (st.ok()) {
          last_committed = value;
          ++commits;
          break;
        }
      }
    } else {
      for (SiteId origin = 0; origin < 5; ++origin) {
        if (!net.IsSiteUp(origin)) continue;
        auto got = store->Get(net, origin, "k");
        if (got.status().IsNoQuorum() || got.status().IsUnavailable()) {
          continue;
        }
        if (last_committed.empty()) {
          ASSERT_TRUE(got.status().IsNotFound()) << "step " << step;
        } else {
          ASSERT_TRUE(got.ok()) << got.status() << " step " << step;
          ASSERT_EQ(*got, last_committed) << "step " << step;
        }
      }
    }
  }
  EXPECT_GT(commits, 200);
  EXPECT_GT(protocol->regenerations(), 0u);
}

}  // namespace
}  // namespace dynvote
