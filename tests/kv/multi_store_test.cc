#include "kv/multi_store.h"

#include <gtest/gtest.h>

#include "core/test_topologies.h"
#include "model/site_profile.h"

namespace dynvote {
namespace {

TEST(MultiKvStoreTest, MakeValidates) {
  auto topo = testing_util::SingleSegment(3);
  EXPECT_FALSE(MultiKvStore::Make(nullptr, "LDV", SiteSet{0}).ok());
  EXPECT_FALSE(MultiKvStore::Make(topo, "NOPE", SiteSet{0}).ok());
  EXPECT_FALSE(MultiKvStore::Make(topo, "LDV", SiteSet{}).ok());
  EXPECT_TRUE(MultiKvStore::Make(topo, "LDV", SiteSet{0, 1, 2}).ok());
}

TEST(MultiKvStoreTest, LazyObjectCreationWithDefaultPlacement) {
  auto topo = testing_util::SingleSegment(3);
  auto store = MultiKvStore::Make(topo, "LDV", SiteSet{0, 1, 2})
                   .MoveValue();
  NetworkState net(topo);
  EXPECT_EQ(store->num_objects(), 0u);
  ASSERT_TRUE(store->Put(net, 0, "a", "1").ok());
  ASSERT_TRUE(store->Put(net, 0, "b", "2").ok());
  EXPECT_EQ(store->num_objects(), 2u);
  EXPECT_EQ(*store->Get(net, 2, "a"), "1");
  EXPECT_TRUE(store->Get(net, 2, "missing").status().IsNotFound());
}

TEST(MultiKvStoreTest, DeclareKeyRejectsDuplicates) {
  auto topo = testing_util::SingleSegment(3);
  auto store = MultiKvStore::Make(topo, "LDV", SiteSet{0, 1, 2})
                   .MoveValue();
  ASSERT_TRUE(store->DeclareKey("a", SiteSet{0, 1}).ok());
  EXPECT_TRUE(store->DeclareKey("a", SiteSet{0, 1})
                  .IsInvalidArgument());
}

TEST(MultiKvStoreTest, PerKeyPlacementsFailIndependently) {
  // Key "left" lives on sites {0,1} of the left segment; key "spread"
  // has a majority on the right. Killing both left sites kills "left"
  // while "spread" adapts and stays writable: per-object quorums fail
  // independently.
  auto topo = testing_util::TwoPairSegments();
  auto store = MultiKvStore::Make(topo, "LDV", SiteSet{0, 1, 2, 3})
                   .MoveValue();
  NetworkState net(topo);
  ASSERT_TRUE(store->DeclareKey("left", SiteSet{0, 1}).ok());
  ASSERT_TRUE(store->DeclareKey("spread", SiteSet{0, 2, 3}).ok());
  ASSERT_TRUE(store->Put(net, 0, "left", "L").ok());
  ASSERT_TRUE(store->Put(net, 0, "spread", "S").ok());

  net.SetSiteUp(0, false);
  store->OnNetworkEvent(net);
  net.SetSiteUp(1, false);
  store->OnNetworkEvent(net);

  EXPECT_FALSE(*store->IsKeyAvailable(net, "left"));
  EXPECT_TRUE(*store->IsKeyAvailable(net, "spread"));
  EXPECT_EQ(*store->Get(net, 2, "spread"), "S");
  EXPECT_TRUE(store->Get(net, 2, "left").status().IsNoQuorum());
  EXPECT_TRUE(store->IsKeyAvailable(net, "nope").status().IsNotFound());
}

TEST(MultiKvStoreTest, MixedProtocolsPerKey) {
  auto topo = testing_util::SingleSegment(4);
  auto store = MultiKvStore::Make(topo, "LDV", SiteSet{0, 1, 2})
                   .MoveValue();
  ASSERT_TRUE(store->DeclareKey("static", SiteSet{0, 1, 2}, "MCV").ok());
  ASSERT_TRUE(store->DeclareKey("topo", SiteSet{0, 1, 2, 3}, "TDV").ok());
  EXPECT_EQ(store->protocol_of("static")->name(), "MCV");
  EXPECT_EQ(store->protocol_of("topo")->name(), "TDV");
  EXPECT_EQ(store->protocol_of("nope"), nullptr);
  NetworkState net(topo);
  ASSERT_TRUE(store->Put(net, 0, "static", "s").ok());
  ASSERT_TRUE(store->Put(net, 0, "topo", "t").ok());
  EXPECT_EQ(*store->Get(net, 3, "topo"), "t");
}

TEST(MultiKvStoreTest, MessageCostScalesWithObjectCount) {
  // The [BMP87] practicality point: instantaneous protocols pay the
  // connection-vector cost per object.
  auto topo = testing_util::SingleSegment(3);
  auto ldv_store = MultiKvStore::Make(topo, "LDV", SiteSet{0, 1, 2})
                       .MoveValue();
  auto odv_store = MultiKvStore::Make(topo, "ODV", SiteSet{0, 1, 2})
                       .MoveValue();
  NetworkState net(topo);
  for (int k = 0; k < 20; ++k) {
    std::string key = "k" + std::to_string(k);
    ASSERT_TRUE(ldv_store->Put(net, 0, key, "v").ok());
    ASSERT_TRUE(odv_store->Put(net, 0, key, "v").ok());
  }
  std::uint64_t ldv_before = ldv_store->TotalMessages();
  std::uint64_t odv_before = odv_store->TotalMessages();
  for (int event = 0; event < 10; ++event) {
    net.SetSiteUp(2, event % 2 == 0);
    ldv_store->OnNetworkEvent(net);
    odv_store->OnNetworkEvent(net);
  }
  // LDV paid refresh traffic for all 20 objects on every event; ODV paid
  // nothing.
  EXPECT_GT(ldv_store->TotalMessages(), ldv_before + 20 * 10);
  EXPECT_EQ(odv_store->TotalMessages(), odv_before);
}

TEST(MultiKvStoreTest, DeleteThroughQuorum) {
  auto topo = testing_util::SingleSegment(3);
  auto store = MultiKvStore::Make(topo, "LDV", SiteSet{0, 1, 2})
                   .MoveValue();
  NetworkState net(topo);
  ASSERT_TRUE(store->Put(net, 0, "k", "v").ok());
  ASSERT_TRUE(store->Delete(net, 1, "k").ok());
  EXPECT_TRUE(store->Get(net, 2, "k").status().IsNotFound());
  EXPECT_TRUE(store->Delete(net, 1, "never").IsNotFound());
}

}  // namespace
}  // namespace dynvote
