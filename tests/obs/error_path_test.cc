// Error paths of the observability plumbing: the trace reader on
// truncated and garbage input, the JSONL sink on a stream that already
// failed (e.g. an unwritable path), and WriteFile on paths that cannot
// be created. None of these may crash, and failures must surface as
// counted malformed lines or a clean Status — never as an exception.

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "model/export.h"
#include "obs/trace_reader.h"
#include "obs/trace_sink.h"

namespace dynvote {
namespace {

TEST(TraceReaderErrorTest, GarbageLinesAreCountedNotFatal) {
  std::istringstream in(
      "this is not json\n"
      "{\"ev\":\"sim\",\"t\":1.0,\"seq\":1,\"op\":\"x\"}\n"
      "\x01\x02\x03 binary junk\n"
      "[\"an\",\"array\",\"line\"]\n"
      "{\"unterminated\": \"value\n");
  TraceSummary summary = SummarizeTrace(in);
  EXPECT_EQ(summary.total_lines, 5u);
  EXPECT_EQ(summary.sim_events, 1u);
  EXPECT_EQ(summary.malformed_lines, 4u);
}

TEST(TraceReaderErrorTest, TruncatedTraceStillSummarizesThePrefix) {
  // A trace cut off mid-write: header, one good event, then a partial
  // line with no trailing newline.
  std::istringstream in(
      "{\"schema\":\"dynvote-trace-v1\",\"seed\":7}\n"
      "{\"ev\":\"sim\",\"t\":1.0,\"seq\":1,\"op\":\"site_fail\"}\n"
      "{\"ev\":\"sim\",\"t\":2.0,\"se");
  TraceSummary summary = SummarizeTrace(in);
  EXPECT_EQ(summary.schema, "dynvote-trace-v1");
  EXPECT_EQ(summary.sim_events, 1u);
  EXPECT_GE(summary.malformed_lines, 1u);
}

TEST(TraceReaderErrorTest, EmptyStreamYieldsEmptySummary) {
  std::istringstream in("");
  TraceSummary summary = SummarizeTrace(in);
  EXPECT_EQ(summary.total_lines, 0u);
  EXPECT_EQ(summary.malformed_lines, 0u);
  EXPECT_TRUE(summary.schema.empty());
  // ToString on an empty summary must also be safe.
  EXPECT_FALSE(summary.ToString().empty());
}

TEST(TraceReaderErrorTest, ParseTraceLineRejectsNonObjects) {
  std::map<std::string, std::string> fields;
  EXPECT_FALSE(ParseTraceLine("", &fields));
  EXPECT_FALSE(ParseTraceLine("42", &fields));
  EXPECT_FALSE(ParseTraceLine("[1,2]", &fields));
  EXPECT_FALSE(ParseTraceLine("{\"key\": }", &fields));
  EXPECT_FALSE(ParseTraceLine("{\"key\"}", &fields));
}

TEST(JsonlTraceSinkErrorTest, FailedStreamDoesNotCrashAndKeepsCounting) {
  // An ofstream on an unwritable path is open()-failed from the start;
  // the sink must tolerate writing into it indefinitely.
  std::ofstream out("/nonexistent-dir-dynvote/trace.jsonl");
  ASSERT_FALSE(out.good());
  JsonlTraceSink sink(&out);
  TraceEvent e;
  e.type = TraceEventType::kSim;
  e.op = "site_fail";
  for (int i = 0; i < 100; ++i) {
    e.seq = static_cast<std::uint64_t>(i);
    sink.Write(e);
  }
  EXPECT_EQ(sink.total_events(), 100u);
  EXPECT_FALSE(out.good());
}

TEST(WriteFileErrorTest, UnwritablePathReturnsCleanStatus) {
  Status st = WriteFile("/nonexistent-dir-dynvote/out.json", "content");
  EXPECT_FALSE(st.ok());
  // The status must carry the offending path for the CLI error message.
  EXPECT_NE(st.ToString().find("/nonexistent-dir-dynvote/out.json"),
            std::string::npos)
      << st;
}

TEST(WriteFileErrorTest, DirectoryTargetReturnsCleanStatus) {
  EXPECT_FALSE(WriteFile("/tmp", "content").ok());
}

}  // namespace
}  // namespace dynvote
