// Error paths of the observability plumbing: the trace reader on
// truncated and garbage input, the JSONL sink on a stream that already
// failed (e.g. an unwritable path), and WriteFile on paths that cannot
// be created. None of these may crash, and failures must surface as
// counted malformed lines or a clean Status — never as an exception.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <streambuf>

#include <gtest/gtest.h>

#include "model/export.h"
#include "obs/async_writer.h"
#include "obs/binary_trace.h"
#include "obs/trace_reader.h"
#include "obs/trace_sink.h"

namespace dynvote {
namespace {

/// A streambuf that accepts `limit` bytes and then fails every write —
/// the unit-test stand-in for a disk filling up mid-trace.
class FailingStreambuf : public std::streambuf {
 public:
  explicit FailingStreambuf(std::size_t limit) : limit_(limit) {}

 protected:
  int overflow(int ch) override {
    if (written_ >= limit_) return traits_type::eof();
    ++written_;
    return ch;
  }
  std::streamsize xsputn(const char* /*s*/, std::streamsize n) override {
    std::streamsize room =
        static_cast<std::streamsize>(limit_ - written_);
    std::streamsize accepted = std::min(n, room);
    written_ += static_cast<std::size_t>(accepted);
    return accepted;  // a short write makes the ostream set badbit
  }

 private:
  std::size_t limit_;
  std::size_t written_ = 0;
};

TEST(TraceReaderErrorTest, GarbageLinesAreCountedNotFatal) {
  std::istringstream in(
      "this is not json\n"
      "{\"ev\":\"sim\",\"t\":1.0,\"seq\":1,\"op\":\"x\"}\n"
      "\x01\x02\x03 binary junk\n"
      "[\"an\",\"array\",\"line\"]\n"
      "{\"unterminated\": \"value\n");
  TraceSummary summary = SummarizeTrace(in);
  EXPECT_EQ(summary.total_lines, 5u);
  EXPECT_EQ(summary.sim_events, 1u);
  EXPECT_EQ(summary.malformed_lines, 4u);
}

TEST(TraceReaderErrorTest, TruncatedTraceStillSummarizesThePrefix) {
  // A trace cut off mid-write: header, one good event, then a partial
  // line with no trailing newline.
  std::istringstream in(
      "{\"schema\":\"dynvote-trace-v1\",\"seed\":7}\n"
      "{\"ev\":\"sim\",\"t\":1.0,\"seq\":1,\"op\":\"site_fail\"}\n"
      "{\"ev\":\"sim\",\"t\":2.0,\"se");
  TraceSummary summary = SummarizeTrace(in);
  EXPECT_EQ(summary.schema, "dynvote-trace-v1");
  EXPECT_EQ(summary.sim_events, 1u);
  EXPECT_GE(summary.malformed_lines, 1u);
}

TEST(TraceReaderErrorTest, EmptyStreamYieldsEmptySummary) {
  std::istringstream in("");
  TraceSummary summary = SummarizeTrace(in);
  EXPECT_EQ(summary.total_lines, 0u);
  EXPECT_EQ(summary.malformed_lines, 0u);
  EXPECT_TRUE(summary.schema.empty());
  // ToString on an empty summary must also be safe.
  EXPECT_FALSE(summary.ToString().empty());
}

TEST(TraceReaderErrorTest, ParseTraceLineRejectsNonObjects) {
  std::map<std::string, std::string> fields;
  EXPECT_FALSE(ParseTraceLine("", &fields));
  EXPECT_FALSE(ParseTraceLine("42", &fields));
  EXPECT_FALSE(ParseTraceLine("[1,2]", &fields));
  EXPECT_FALSE(ParseTraceLine("{\"key\": }", &fields));
  EXPECT_FALSE(ParseTraceLine("{\"key\"}", &fields));
}

TEST(JsonlTraceSinkErrorTest, FailedStreamDoesNotCrashAndKeepsCounting) {
  // An ofstream on an unwritable path is open()-failed from the start;
  // the sink must tolerate writing into it indefinitely.
  std::ofstream out("/nonexistent-dir-dynvote/trace.jsonl");
  ASSERT_FALSE(out.good());
  JsonlTraceSink sink(&out);
  TraceEvent e;
  e.type = TraceEventType::kSim;
  e.op = "site_fail";
  for (int i = 0; i < 100; ++i) {
    e.seq = static_cast<std::uint64_t>(i);
    sink.Write(e);
  }
  EXPECT_EQ(sink.total_events(), 100u);
  EXPECT_FALSE(out.good());
  // The failure is no longer silent: error state is set and the
  // written count exposes that nothing landed.
  EXPECT_FALSE(sink.ok());
  EXPECT_FALSE(sink.error().empty());
  EXPECT_EQ(sink.events_written(), 0u);
}

TEST(JsonlTraceSinkErrorTest, MidStreamFailureSurfacesAndReconciles) {
  // Regression: the sink used to ignore stream state entirely, so a
  // disk filling up mid-run silently truncated the trace while
  // total_events() kept climbing. Now the first failed line sets sticky
  // error state and events_written() stops, so the CLI can report
  // "M of N events written".
  FailingStreambuf buf(150);  // room for a couple of lines, then ENOSPC
  std::ostream out(&buf);
  JsonlTraceSink sink(&out);
  TraceEvent e;
  e.type = TraceEventType::kSim;
  e.op = "site_fail";
  for (int i = 0; i < 50; ++i) {
    e.seq = static_cast<std::uint64_t>(i);
    sink.Write(e);
  }
  EXPECT_EQ(sink.total_events(), 50u);
  EXPECT_FALSE(sink.ok());
  EXPECT_FALSE(sink.error().empty());
  EXPECT_GE(sink.events_written(), 1u);  // the lines that fit
  EXPECT_LT(sink.events_written(), 50u);
  // Flush on a failed sink stays failed and must not clear the error.
  sink.Flush();
  EXPECT_FALSE(sink.ok());
}

TEST(JsonlTraceSinkErrorTest, FlushDetectsDeferredFailure) {
  std::ostringstream out;
  JsonlTraceSink sink(&out);
  TraceEvent e;
  e.type = TraceEventType::kSim;
  e.op = "x";
  sink.Write(e);
  EXPECT_TRUE(sink.ok());
  out.setstate(std::ios::badbit);  // failure lands between write and flush
  sink.Flush();
  EXPECT_FALSE(sink.ok());
}

TEST(TraceSummaryRatesTest, ZeroDenominatorsRenderDashNotNan) {
  // A protocol with availability transitions but no accesses and no
  // quorum evaluations: every rate denominator is zero.
  std::istringstream in(
      "{\"schema\":\"dynvote-trace-v1\",\"seed\":1}\n"
      "{\"ev\":\"avail\",\"t\":1,\"seq\":0,\"protocol\":\"DV\","
      "\"available\":false}\n");
  TraceSummary summary = SummarizeTrace(in);
  std::string text = summary.ToString();
  EXPECT_NE(text.find("grant_rate=- cache_hit_rate=-"), std::string::npos)
      << text;
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
  EXPECT_EQ(text.find("inf"), std::string::npos) << text;
}

TEST(TraceSummaryRatesTest, HeaderOnlyTracesAreSafeInBothFormats) {
  std::istringstream jsonl("{\"schema\":\"dynvote-trace-v1\",\"seed\":3}\n");
  TraceSummary js = SummarizeTrace(jsonl);
  EXPECT_EQ(js.schema, "dynvote-trace-v1");
  EXPECT_EQ(js.malformed_lines, 0u);
  EXPECT_FALSE(js.ToString().empty());

  std::istringstream binary(BinaryTraceHeader(3));
  TraceSummary bs = SummarizeTrace(binary);
  EXPECT_EQ(bs.schema, kBinaryTraceSchema);
  EXPECT_EQ(bs.total_lines, 1u);
  EXPECT_EQ(bs.malformed_lines, 0u);
  EXPECT_TRUE(bs.decode_error.empty());
  EXPECT_FALSE(bs.ToString().empty());
}

TEST(TraceSummaryRatesTest, TruncatedBinaryTraceSummarizesThePrefix) {
  std::ostringstream encoded;
  encoded << BinaryTraceHeader(9);
  StreamPageSink pages(&encoded);
  BinaryTraceSink sink(&pages);
  TraceEvent e;
  e.type = TraceEventType::kSim;
  e.op = "site_fail";
  for (int i = 0; i < 10; ++i) {
    e.seq = static_cast<std::uint64_t>(i);
    sink.Write(e);
  }
  sink.Flush();
  std::string file = encoded.str();
  std::istringstream in(file.substr(0, file.size() - 4));
  TraceSummary summary = SummarizeTrace(in);
  EXPECT_EQ(summary.schema, kBinaryTraceSchema);
  EXPECT_GE(summary.sim_events, 1u);
  EXPECT_EQ(summary.malformed_lines, 1u);
  EXPECT_FALSE(summary.decode_error.empty());
  std::string text = summary.ToString();
  EXPECT_NE(text.find("malformed=1"), std::string::npos) << text;
  EXPECT_NE(text.find("warning: trace truncated"), std::string::npos)
      << text;
}

TEST(WriteFileErrorTest, UnwritablePathReturnsCleanStatus) {
  Status st = WriteFile("/nonexistent-dir-dynvote/out.json", "content");
  EXPECT_FALSE(st.ok());
  // The status must carry the offending path for the CLI error message.
  EXPECT_NE(st.ToString().find("/nonexistent-dir-dynvote/out.json"),
            std::string::npos)
      << st;
}

TEST(WriteFileErrorTest, DirectoryTargetReturnsCleanStatus) {
  EXPECT_FALSE(WriteFile("/tmp", "content").ok());
}

}  // namespace
}  // namespace dynvote
