// dynvote-btrace-v1 round trips: randomized events of every type decode
// back bit-identically, conversion to JSONL byte-matches a direct
// JsonlTraceSink run, concatenated per-replication bodies decode behind
// one header, and truncated or corrupt input yields clean errors.

#include "obs/binary_trace.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/async_writer.h"
#include "obs/trace_sink.h"
#include "util/rng.h"

namespace dynvote {
namespace {

// A randomized event of any of the six types. Cache-hit quorum events
// leave the paper sets at zero, matching what the instrumented code
// emits (and what both wire formats omit).
TraceEvent RandomEvent(Rng& rng, std::uint64_t seq) {
  static const char* const kOps[] = {"dispatch", "sample", "refresh"};
  static const char* const kProtocols[] = {"MCV", "DV", "LDV", "ODV"};
  TraceEvent e;
  e.t = rng.NextDouble() * 1e4;
  e.seq = seq;
  if (rng.NextBernoulli(0.5)) {
    e.replication = static_cast<int>(rng.NextBounded(1000));
  }
  switch (rng.NextBounded(6)) {
    case 0: {
      e.type = TraceEventType::kNet;
      e.repeater = rng.NextBernoulli(0.3);
      e.site = static_cast<int>(rng.NextBounded(8));
      e.up = rng.NextBernoulli(0.5);
      e.generation = rng.NextBounded(1 << 20);
      e.components.resize(rng.NextBounded(4));
      for (std::uint64_t& mask : e.components) mask = rng.Next() & 0xFF;
      break;
    }
    case 1:
      e.type = TraceEventType::kSim;
      e.op = kOps[rng.NextBounded(3)];
      break;
    case 2: {
      e.type = TraceEventType::kQuorum;
      e.protocol = kProtocols[rng.NextBounded(4)];
      e.write = rng.NextBernoulli(0.5);
      e.granted = rng.NextBernoulli(0.5);
      e.reason = static_cast<QuorumReason>(rng.NextBounded(kNumQuorumReasons));
      e.group = rng.Next() & 0xFF;
      if (e.reason != QuorumReason::kCacheHit) {
        e.set_r = rng.Next() & 0xFF;
        e.set_q = rng.Next() & 0xFF;
        e.set_s = rng.Next() & 0xFF;
        e.set_t = rng.Next() & 0xFF;
        e.set_pm = rng.Next() & 0xFF;
      }
      break;
    }
    case 3:
      e.type = TraceEventType::kAccess;
      e.protocol = kProtocols[rng.NextBounded(4)];
      e.write = rng.NextBernoulli(0.5);
      e.origin = static_cast<int>(rng.NextBounded(8));
      e.granted = rng.NextBernoulli(0.5);
      e.reason = static_cast<QuorumReason>(rng.NextBounded(kNumQuorumReasons));
      break;
    case 4:
      e.type = TraceEventType::kServing;
      e.protocol = kProtocols[rng.NextBounded(4)];
      e.write = rng.NextBernoulli(0.5);
      e.origin = static_cast<int>(rng.NextBounded(8));
      e.granted = rng.NextBernoulli(0.5);
      e.latency_ms = rng.NextDouble() * 50.0;
      e.msgs = static_cast<std::uint32_t>(rng.NextBounded(40));
      e.depth = static_cast<std::uint32_t>(rng.NextBounded(16));
      break;
    default:
      e.type = TraceEventType::kAvail;
      e.protocol = kProtocols[rng.NextBounded(4)];
      e.available = rng.NextBernoulli(0.5);
      break;
  }
  return e;
}

// Encodes `events` as one headered binary stream through the sink.
std::string Encode(const std::vector<TraceEvent>& events,
                   std::uint64_t seed, std::size_t page_bytes = 512) {
  std::ostringstream out;
  out << BinaryTraceHeader(seed);
  StreamPageSink pages(&out);
  BinaryTraceSink sink(&pages, page_bytes);
  for (const TraceEvent& e : events) sink.Write(e);
  sink.Flush();
  EXPECT_TRUE(sink.ok()) << sink.error();
  EXPECT_EQ(sink.events_written(), events.size());
  return out.str();
}

// The JSONL rendering is the canonical flattening of an event; comparing
// renderings compares every serialized field at once.
std::string Jsonl(const TraceEvent& e) {
  std::string line;
  AppendTraceEventJson(e, &line);
  return line;
}

TEST(BinaryTraceTest, RoundTripsRandomizedEventsOfEveryType) {
  Rng rng(20260807);
  std::vector<TraceEvent> events;
  for (std::uint64_t seq = 0; seq < 500; ++seq) {
    events.push_back(RandomEvent(rng, seq));
  }
  std::istringstream in(Encode(events, 42));
  BinaryTraceReader reader(&in);
  ASSERT_TRUE(reader.ReadHeader().ok());
  EXPECT_EQ(reader.seed(), 42u);
  EXPECT_EQ(reader.schema(), kBinaryTraceSchema);
  TraceEvent decoded;
  for (const TraceEvent& expected : events) {
    auto more = reader.Next(&decoded);
    ASSERT_TRUE(more.ok()) << more.status();
    ASSERT_TRUE(*more);
    EXPECT_EQ(Jsonl(decoded), Jsonl(expected));
    EXPECT_EQ(decoded.replication, expected.replication);
  }
  auto end = reader.Next(&decoded);
  ASSERT_TRUE(end.ok()) << end.status();
  EXPECT_FALSE(*end);
  EXPECT_EQ(reader.events_decoded(), events.size());
}

TEST(BinaryTraceTest, TimestampsSurviveBitExactly) {
  // Raw IEEE-754 storage must reproduce awkward doubles (%.17g output
  // depends on every bit).
  std::vector<TraceEvent> events;
  for (double t : {0.1, 1.0 / 3.0, 12345.678901234567, 1e-300, 0.0}) {
    TraceEvent e;
    e.type = TraceEventType::kSim;
    e.t = t;
    e.op = "dispatch";
    events.push_back(e);
  }
  std::istringstream in(Encode(events, 7));
  BinaryTraceReader reader(&in);
  ASSERT_TRUE(reader.ReadHeader().ok());
  TraceEvent decoded;
  for (const TraceEvent& expected : events) {
    ASSERT_TRUE(*reader.Next(&decoded));
    EXPECT_EQ(Jsonl(decoded), Jsonl(expected));
  }
}

TEST(BinaryTraceTest, ConversionMatchesDirectJsonlByteForByte) {
  Rng rng(99);
  std::vector<TraceEvent> events;
  for (std::uint64_t seq = 0; seq < 300; ++seq) {
    events.push_back(RandomEvent(rng, seq));
  }

  std::ostringstream direct;
  direct << TraceHeaderLine(123) << "\n";
  JsonlTraceSink jsonl(&direct);
  for (const TraceEvent& e : events) jsonl.Write(e);

  std::istringstream binary_in(Encode(events, 123));
  std::ostringstream converted;
  auto n = ConvertBinaryTraceToJsonl(binary_in, converted);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, events.size());
  EXPECT_EQ(converted.str(), direct.str());
}

TEST(BinaryTraceTest, TypedFastPathsMatchTheGenericEncoding) {
  // The emission sites use the typed WriteSim/WriteQuorum/WriteAccess/
  // WriteAvail fast paths; routing the equivalent TraceEvents through
  // the generic Write() must produce the identical byte stream.
  const std::string tdv = "TDV";
  const std::string jm = "JM-DV";

  std::ostringstream typed_out;
  StreamPageSink typed_pages(&typed_out);
  BinaryTraceSink typed(&typed_pages, 64);
  QuorumSetMasks full;
  full.group = 0x1F;
  full.r = 0x0F;
  full.q = 0x02;
  full.s = 0x02;
  full.t = 0x03;
  full.pm = 0x03;
  QuorumSetMasks hit;
  hit.group = 0x07;
  TraceLabelCache dispatch_label;
  TraceLabelCache tdv_label;
  TraceLabelCache jm_label;
  typed.WriteSim(0.5, 1, -1, "dispatch",
                 dispatch_label.Resolve(&typed, "dispatch"));
  typed.WriteQuorum(1.25, 2, 3, tdv, tdv_label.Resolve(&typed, tdv), false,
                    true, QuorumReason::kGrantedTopologicalCarry, full);
  typed.WriteQuorum(1.5, 3, 3, jm, jm_label.Resolve(&typed, jm), true, true,
                    QuorumReason::kCacheHit, hit);
  typed.WriteAccess(2.0, 4, -1, tdv, tdv_label.Resolve(&typed, tdv), true,
                    false, QuorumReason::kDeniedMinority, 5);
  typed.WriteAvail(3.0, 5, 0, jm, jm_label.Resolve(&typed, jm), true);
  typed.WriteSim(4.0, 6, -1, "dispatch",
                 dispatch_label.Resolve(&typed, "dispatch"));  // id reused
  typed.Flush();
  ASSERT_TRUE(typed.ok()) << typed.error();

  std::ostringstream generic_out;
  StreamPageSink generic_pages(&generic_out);
  BinaryTraceSink generic(&generic_pages, 64);
  TraceEvent e;
  e.type = TraceEventType::kSim;
  e.t = 0.5;
  e.seq = 1;
  e.op = "dispatch";
  generic.Write(e);
  e = TraceEvent();
  e.type = TraceEventType::kQuorum;
  e.t = 1.25;
  e.seq = 2;
  e.replication = 3;
  e.protocol = tdv;
  e.granted = true;
  e.reason = QuorumReason::kGrantedTopologicalCarry;
  e.group = full.group;
  e.set_r = full.r;
  e.set_q = full.q;
  e.set_s = full.s;
  e.set_t = full.t;
  e.set_pm = full.pm;
  generic.Write(e);
  e = TraceEvent();
  e.type = TraceEventType::kQuorum;
  e.t = 1.5;
  e.seq = 3;
  e.replication = 3;
  e.protocol = jm;
  e.write = true;
  e.granted = true;
  e.reason = QuorumReason::kCacheHit;
  e.group = hit.group;
  generic.Write(e);
  e = TraceEvent();
  e.type = TraceEventType::kAccess;
  e.t = 2.0;
  e.seq = 4;
  e.protocol = tdv;
  e.write = true;
  e.reason = QuorumReason::kDeniedMinority;
  e.origin = 5;
  generic.Write(e);
  e = TraceEvent();
  e.type = TraceEventType::kAvail;
  e.t = 3.0;
  e.seq = 5;
  e.replication = 0;
  e.protocol = jm;
  e.available = true;
  generic.Write(e);
  e = TraceEvent();
  e.type = TraceEventType::kSim;
  e.t = 4.0;
  e.seq = 6;
  e.op = "dispatch";
  generic.Write(e);
  generic.Flush();
  ASSERT_TRUE(generic.ok()) << generic.error();

  EXPECT_EQ(typed_out.str(), generic_out.str());
}

TEST(BinaryTraceTest, LabelCacheFollowsTheSinkEpoch) {
  // One emission site alternating between two sinks must re-register on
  // every swap: label tokens are sink-scoped, and the process-unique
  // epochs are what detect the swap.
  const std::string proto = "PROTO";
  TraceLabelCache cache;
  std::ostringstream out1;
  std::ostringstream out2;
  StreamPageSink pages1(&out1);
  StreamPageSink pages2(&out2);
  BinaryTraceSink sink1(&pages1);
  BinaryTraceSink sink2(&pages2);
  sink1.WriteAvail(1.0, 1, -1, proto, cache.Resolve(&sink1, proto), true);
  sink2.WriteAvail(2.0, 2, -1, proto, cache.Resolve(&sink2, proto), false);
  sink1.WriteAvail(3.0, 3, -1, proto, cache.Resolve(&sink1, proto), true);
  sink1.Flush();
  sink2.Flush();
  ASSERT_TRUE(sink1.ok());
  ASSERT_TRUE(sink2.ok());

  for (std::ostringstream* out : {&out1, &out2}) {
    std::istringstream in(BinaryTraceHeader(0) + out->str());
    BinaryTraceReader reader(&in);
    ASSERT_TRUE(reader.ReadHeader().ok());
    TraceEvent decoded;
    std::uint64_t events = 0;
    for (;;) {
      auto more = reader.Next(&decoded);
      ASSERT_TRUE(more.ok()) << more.status();
      if (!*more) break;
      ++events;
      EXPECT_EQ(decoded.protocol, "PROTO");
    }
    EXPECT_GT(events, 0u);
  }
}

TEST(BinaryTraceTest, StaleLabelTokensNeverAliasAcrossSinkLifetimes) {
  // A caller holding a token from a destroyed sink must re-register with
  // whatever sink it meets next — even one allocated where the old sink
  // lived, and even when the caller now carries a different name (as a
  // reconstructed protocol between replications does). Epochs are never
  // reused, so the stale token cannot alias another sink's table.
  TraceLabelCache cache;
  std::ostringstream out1;
  auto pages1 = std::make_unique<StreamPageSink>(&out1);
  auto sink1 = std::make_unique<BinaryTraceSink>(pages1.get());
  const std::string first = "FIRST";
  sink1->WriteAvail(1.0, 1, -1, first, cache.Resolve(sink1.get(), first),
                    true);
  sink1->Flush();
  ASSERT_TRUE(sink1->ok());
  sink1.reset();  // best effort to let the next sink reuse the allocation

  std::ostringstream out2;
  StreamPageSink pages2(&out2);
  BinaryTraceSink sink2(&pages2);
  const std::string second = "SECOND";
  sink2.WriteAvail(2.0, 2, -1, second, cache.Resolve(&sink2, second), false);
  sink2.WriteAvail(3.0, 3, -1, second, cache.Resolve(&sink2, second), true);
  sink2.Flush();
  ASSERT_TRUE(sink2.ok());

  std::istringstream in(BinaryTraceHeader(0) + out2.str());
  BinaryTraceReader reader(&in);
  ASSERT_TRUE(reader.ReadHeader().ok());
  TraceEvent decoded;
  std::vector<std::string> protocols;
  for (;;) {
    auto more = reader.Next(&decoded);
    ASSERT_TRUE(more.ok()) << more.status();
    if (!*more) break;
    protocols.push_back(std::string(decoded.protocol));
  }
  ASSERT_EQ(protocols.size(), 2u);
  EXPECT_EQ(protocols[0], "SECOND");
  EXPECT_EQ(protocols[1], "SECOND");
}

TEST(BinaryTraceTest, ConcatenatedBodiesShareOneHeader) {
  // Two independently-encoded bodies (string tables restarting from id
  // 0, as per-replication workers produce) decode behind one header —
  // the redefinition-allowed rule in action.
  TraceEvent a;
  a.type = TraceEventType::kSim;
  a.op = "alpha";
  TraceEvent b;
  b.type = TraceEventType::kAvail;
  b.protocol = "beta";
  b.available = true;

  auto encode_body = [](const TraceEvent& e) {
    std::ostringstream out;
    StreamPageSink pages(&out);
    BinaryTraceSink sink(&pages);
    sink.Write(e);
    sink.Flush();
    return out.str();
  };
  std::istringstream in(BinaryTraceHeader(5) + encode_body(a) +
                        encode_body(b));
  BinaryTraceReader reader(&in);
  ASSERT_TRUE(reader.ReadHeader().ok());
  TraceEvent decoded;
  ASSERT_TRUE(*reader.Next(&decoded));
  EXPECT_STREQ(decoded.op, "alpha");
  ASSERT_TRUE(*reader.Next(&decoded));
  EXPECT_EQ(decoded.protocol, "beta");
  EXPECT_FALSE(*reader.Next(&decoded));
}

TEST(BinaryTraceTest, SmallPagesAndLargePagesEncodeIdentically) {
  Rng rng(7);
  std::vector<TraceEvent> events;
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    events.push_back(RandomEvent(rng, seq));
  }
  // Page size only affects hand-off granularity, never the byte stream.
  EXPECT_EQ(Encode(events, 1, /*page_bytes=*/1),
            Encode(events, 1, /*page_bytes=*/1 << 20));
}

TEST(BinaryTraceTest, TruncatedFileIsACleanError) {
  TraceEvent e;
  e.type = TraceEventType::kQuorum;
  e.protocol = "DV";
  e.group = 3;
  std::string file = Encode({e, e, e}, 9);
  // Every proper prefix either decodes fewer events or reports a
  // truncation error — never a crash, never a bogus event.
  for (std::size_t len = 0; len < file.size(); ++len) {
    std::istringstream in(file.substr(0, len));
    BinaryTraceReader reader(&in);
    Status header = reader.ReadHeader();
    if (!header.ok()) continue;
    TraceEvent decoded;
    for (int i = 0; i < 4; ++i) {
      auto more = reader.Next(&decoded);
      if (!more.ok() || !*more) break;
      EXPECT_EQ(decoded.protocol, "DV");
    }
  }
}

TEST(BinaryTraceTest, GarbageAfterMagicIsACleanError) {
  std::string garbage(kBinaryTraceMagic, kBinaryTraceMagicSize);
  garbage += "\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF";
  std::istringstream in(garbage);
  BinaryTraceReader reader(&in);
  EXPECT_FALSE(reader.ReadHeader().ok());
}

TEST(BinaryTraceTest, WrongMagicIsRejected) {
  std::istringstream jsonl("{\"schema\":\"dynvote-trace-v1\",\"seed\":1}\n");
  EXPECT_FALSE(LooksLikeBinaryTrace(jsonl));
  BinaryTraceReader reader(&jsonl);
  Status st = reader.ReadHeader();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(BinaryTraceTest, UnknownRecordKindIsRejected) {
  std::string file = BinaryTraceHeader(1);
  file.push_back(2);     // payload length
  file.push_back(42);    // unknown kind
  file.push_back(0);
  std::istringstream in(file);
  BinaryTraceReader reader(&in);
  ASSERT_TRUE(reader.ReadHeader().ok());
  TraceEvent decoded;
  auto more = reader.Next(&decoded);
  ASSERT_FALSE(more.ok());
  EXPECT_TRUE(more.status().IsInvalidArgument());
}

TEST(BinaryTraceTest, OutOfRangeReasonIsRejected) {
  TraceEvent e;
  e.type = TraceEventType::kAccess;
  e.protocol = "DV";
  std::string file = Encode({e}, 1);
  // The access record is the last one; its reason byte sits after the
  // string id. Corrupt every byte of the tail and require the decoder to
  // fail cleanly or keep producing the valid event — never crash.
  for (std::size_t i = kBinaryTraceMagicSize; i < file.size(); ++i) {
    std::string corrupt = file;
    corrupt[i] = static_cast<char>(0xEE);
    std::istringstream in(corrupt);
    BinaryTraceReader reader(&in);
    if (!reader.ReadHeader().ok()) continue;
    TraceEvent decoded;
    for (int hops = 0; hops < 4; ++hops) {
      auto more = reader.Next(&decoded);
      if (!more.ok() || !*more) break;
    }
  }
}

TEST(BinaryTraceTest, LooksLikeBinaryTraceDoesNotConsume) {
  std::istringstream in(BinaryTraceHeader(3));
  EXPECT_TRUE(LooksLikeBinaryTrace(in));
  BinaryTraceReader reader(&in);
  EXPECT_TRUE(reader.ReadHeader().ok());  // magic still fully present
  EXPECT_EQ(reader.seed(), 3u);
}

TEST(BinaryTraceTest, FailingPageSinkSurfacesInSinkState) {
  std::ostringstream out;
  out.setstate(std::ios::failbit);
  StreamPageSink pages(&out);
  BinaryTraceSink sink(&pages, /*page_bytes=*/16);
  TraceEvent e;
  e.type = TraceEventType::kSim;
  e.op = "dispatch";
  for (int i = 0; i < 100; ++i) sink.Write(e);
  sink.Flush();
  EXPECT_FALSE(sink.ok());
  EXPECT_EQ(sink.total_events(), 100u);
  EXPECT_EQ(sink.events_written(), 0u);
}

}  // namespace
}  // namespace dynvote
