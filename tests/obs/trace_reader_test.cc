// The trace reader: flat-JSON line parsing (round-tripping what the
// sinks emit), malformed-line accounting, and the per-protocol summary
// aggregation behind the trace-summary subcommand.

#include "obs/trace_reader.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/async_writer.h"
#include "obs/binary_trace.h"
#include "obs/trace_sink.h"

namespace dynvote {
namespace {

TEST(ParseTraceLineTest, ParsesScalarsStringsAndArrays) {
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(ParseTraceLine(
      R"({"ev":"net","t":1.5,"up":false,"components":[3,24]})", &fields));
  EXPECT_EQ(fields.at("ev"), "net");
  EXPECT_EQ(fields.at("t"), "1.5");
  EXPECT_EQ(fields.at("up"), "false");
  EXPECT_EQ(fields.at("components"), "[3,24]");
}

TEST(ParseTraceLineTest, UndoesStringEscapes) {
  std::map<std::string, std::string> fields;
  // The three escape forms the sink emits: \", \\ and \u00XX.
  ASSERT_TRUE(
      ParseTraceLine("{\"name\":\"a\\\"b\\\\c\\u000a\"}", &fields));
  EXPECT_EQ(fields.at("name"), "a\"b\\c\n");
}

TEST(ParseTraceLineTest, RejectsNonObjects) {
  std::map<std::string, std::string> fields;
  EXPECT_FALSE(ParseTraceLine("not json", &fields));
  EXPECT_FALSE(ParseTraceLine("[1,2]", &fields));
  EXPECT_FALSE(ParseTraceLine(R"({"unterminated":"str)", &fields));
  EXPECT_FALSE(ParseTraceLine(R"({"no_value":})", &fields));
  EXPECT_TRUE(ParseTraceLine("{}", &fields));
  EXPECT_TRUE(fields.empty());
}

TEST(ParseTraceLineTest, RoundTripsSinkOutput) {
  TraceEvent e;
  e.type = TraceEventType::kQuorum;
  e.t = 0.1 + 0.2;
  e.protocol = "OTDV";
  e.granted = true;
  e.reason = QuorumReason::kGrantedTieLex;
  e.group = 31;
  std::string line;
  AppendTraceEventJson(e, &line);
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(ParseTraceLine(line, &fields)) << line;
  EXPECT_EQ(fields.at("ev"), "quorum");
  EXPECT_EQ(fields.at("protocol"), "OTDV");
  EXPECT_EQ(fields.at("granted"), "true");
  EXPECT_EQ(fields.at("reason"), "granted_tie_lex");
  EXPECT_EQ(fields.at("t"), "0.30000000000000004");
}

/// Builds a small synthetic trace through the real sink so reader tests
/// track the writer format automatically.
std::string SyntheticTrace() {
  std::ostringstream out;
  out << TraceHeaderLine(7) << "\n";
  JsonlTraceSink sink(&out);

  TraceEvent sim;
  sim.type = TraceEventType::kSim;
  sim.op = "dispatch";
  sink.Write(sim);

  TraceEvent net;
  net.type = TraceEventType::kNet;
  net.site = 1;
  net.components = {1};
  sink.Write(net);

  TraceEvent quorum;
  quorum.type = TraceEventType::kQuorum;
  quorum.protocol = "LDV";
  quorum.granted = true;
  quorum.reason = QuorumReason::kGrantedMajority;
  sink.Write(quorum);
  quorum.reason = QuorumReason::kCacheHit;
  sink.Write(quorum);
  sink.Write(quorum);

  TraceEvent access;
  access.type = TraceEventType::kAccess;
  access.protocol = "LDV";
  access.granted = true;
  access.reason = QuorumReason::kGrantedMajority;
  sink.Write(access);
  access.granted = false;
  access.reason = QuorumReason::kDeniedTieLost;
  sink.Write(access);

  TraceEvent avail;
  avail.type = TraceEventType::kAvail;
  avail.protocol = "LDV";
  avail.available = false;
  sink.Write(avail);
  return out.str();
}

TEST(SummarizeTraceTest, AggregatesPerProtocol) {
  std::istringstream in(SyntheticTrace());
  TraceSummary summary = SummarizeTrace(in);
  EXPECT_EQ(summary.schema, kTraceSchema);
  EXPECT_EQ(summary.total_lines, 9u);
  EXPECT_EQ(summary.malformed_lines, 0u);
  EXPECT_EQ(summary.sim_events, 1u);
  EXPECT_EQ(summary.net_events, 1u);
  ASSERT_EQ(summary.per_protocol.count("LDV"), 1u);
  const ProtocolTraceSummary& ldv = summary.per_protocol.at("LDV");
  EXPECT_EQ(ldv.quorum_evaluations, 1u);
  EXPECT_EQ(ldv.cache_hits, 2u);
  EXPECT_EQ(ldv.quorum_reasons.at("granted_majority"), 1u);
  EXPECT_EQ(ldv.accesses, 2u);
  EXPECT_EQ(ldv.granted, 1u);
  EXPECT_EQ(ldv.denied, 1u);
  EXPECT_EQ(ldv.access_reasons.at("denied_tie_lost"), 1u);
  EXPECT_EQ(ldv.availability_transitions, 1u);
}

TEST(SummarizeTraceTest, CountsMalformedLinesAndKeepsGoing) {
  std::istringstream in(
      "garbage\n"
      "{\"ev\":\"sim\",\"t\":0,\"seq\":0,\"op\":\"x\"}\n"
      "{\"no_ev_key\":1}\n"
      "{\"ev\":\"quorum\"}\n");  // quorum without protocol
  TraceSummary summary = SummarizeTrace(in);
  EXPECT_EQ(summary.total_lines, 4u);
  EXPECT_EQ(summary.malformed_lines, 3u);
  EXPECT_EQ(summary.sim_events, 1u);
}

TEST(SummarizeTraceTest, EmptyInputIsEmptySummary) {
  std::istringstream in("");
  TraceSummary summary = SummarizeTrace(in);
  EXPECT_EQ(summary.total_lines, 0u);
  EXPECT_TRUE(summary.schema.empty());
  EXPECT_TRUE(summary.per_protocol.empty());
}

TEST(SummarizeTraceTest, ServingEventsFoldIdenticallyFromBothFormats) {
  // Serving records reconcile exactly with the serving metrics because
  // the reader accumulates them into the very same HistogramData the
  // metrics shard uses — assert that, and that the JSONL and binary
  // paths (which share FoldTraceEvent) agree field for field.
  std::vector<TraceEvent> events;
  HistogramData expected_latency;
  std::uint64_t expected_msgs = 0;
  for (int i = 0; i < 6; ++i) {
    TraceEvent e;
    e.type = TraceEventType::kServing;
    e.t = 0.5 * i;
    e.seq = static_cast<std::uint64_t>(i);
    e.protocol = "ODV";
    e.write = (i % 2) == 0;
    e.origin = i % 3;
    e.granted = i != 4;
    e.latency_ms = 1.25 * (i + 1);
    e.msgs = static_cast<std::uint32_t>(2 * i);
    e.depth = static_cast<std::uint32_t>(i % 2);
    events.push_back(e);
    expected_latency.Observe(e.latency_ms);
    expected_msgs += e.msgs;
  }

  std::ostringstream jsonl;
  jsonl << TraceHeaderLine(11) << "\n";
  JsonlTraceSink sink(&jsonl);
  for (const TraceEvent& e : events) sink.Write(e);

  std::istringstream jsonl_in(jsonl.str());
  TraceSummary from_jsonl = SummarizeTrace(jsonl_in);
  EXPECT_EQ(from_jsonl.malformed_lines, 0u);
  ASSERT_EQ(from_jsonl.per_protocol.count("ODV"), 1u);
  const ProtocolTraceSummary& odv = from_jsonl.per_protocol.at("ODV");
  EXPECT_EQ(odv.serving_events, events.size());
  EXPECT_EQ(odv.serving_messages, expected_msgs);
  EXPECT_EQ(odv.accesses, 0u);  // serving events are not access events
  EXPECT_EQ(odv.serving_latency_ms.count, expected_latency.count);
  EXPECT_EQ(odv.serving_latency_ms.sum, expected_latency.sum);
  EXPECT_EQ(odv.serving_latency_ms.min, expected_latency.min);
  EXPECT_EQ(odv.serving_latency_ms.max, expected_latency.max);
  EXPECT_EQ(odv.serving_latency_ms.buckets, expected_latency.buckets);

  std::ostringstream binary;
  binary << BinaryTraceHeader(11);
  StreamPageSink pages(&binary);
  BinaryTraceSink bsink(&pages, 256);
  for (const TraceEvent& e : events) bsink.Write(e);
  bsink.Flush();
  ASSERT_TRUE(bsink.ok()) << bsink.error();
  std::istringstream binary_in(binary.str());
  TraceSummary from_binary = SummarizeTrace(binary_in);
  EXPECT_TRUE(from_binary.decode_error.empty()) << from_binary.decode_error;
  ASSERT_EQ(from_binary.per_protocol.count("ODV"), 1u);
  const ProtocolTraceSummary& bodv = from_binary.per_protocol.at("ODV");
  EXPECT_EQ(bodv.serving_events, odv.serving_events);
  EXPECT_EQ(bodv.serving_messages, odv.serving_messages);
  EXPECT_EQ(bodv.serving_latency_ms.sum, odv.serving_latency_ms.sum);
  EXPECT_EQ(bodv.serving_latency_ms.buckets, odv.serving_latency_ms.buckets);

  EXPECT_NE(from_jsonl.ToString().find("serving: events=6"),
            std::string::npos)
      << from_jsonl.ToString();
}

TEST(SummarizeTraceTest, ToStringNamesEveryProtocolSection) {
  std::istringstream in(SyntheticTrace());
  std::string text = SummarizeTrace(in).ToString();
  EXPECT_NE(text.find("schema=dynvote-trace-v1"), std::string::npos) << text;
  EXPECT_NE(text.find("LDV: accesses=2 granted=1 denied=1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("denied_tie_lost"), std::string::npos) << text;
}

}  // namespace
}  // namespace dynvote
