// AsyncTraceSink: pages reach the inner sink in order, back-pressure
// bounds the queue without deadlock, stream failures surface as sticky
// error state, writer-thread exceptions rethrow at Flush(), and the
// destructor drains cleanly. Thread interactions are exercised under
// TSan by the thread-sanitize CI job (AsyncTraceSink* filter).

#include "obs/async_writer.h"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace dynvote {
namespace {

std::string Page(const std::string& contents) { return contents; }

/// Records every page it receives; optionally dawdles to force the
/// producer into the back-pressure wait.
class RecordingPageSink : public TracePageSink {
 public:
  explicit RecordingPageSink(std::chrono::milliseconds delay =
                                 std::chrono::milliseconds(0))
      : delay_(delay) {}

  void WritePage(std::string* page) override {
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    pages_.push_back(*page);
    page->clear();
  }
  void Flush() override { ++flushes_; }
  bool ok() const override { return true; }
  std::string error() const override { return ""; }

  // Safe to read after AsyncTraceSink::Flush(): the drain wait under the
  // sink's mutex orders the writer thread's stores before these loads.
  const std::vector<std::string>& pages() const { return pages_; }
  int flushes() const { return flushes_; }

 private:
  std::chrono::milliseconds delay_;
  std::vector<std::string> pages_;
  int flushes_ = 0;
};

class ThrowingPageSink : public TracePageSink {
 public:
  void WritePage(std::string* page) override {
    page->clear();
    throw std::runtime_error("writer boom");
  }
  void Flush() override {}
  bool ok() const override { return true; }
  std::string error() const override { return ""; }
};

TEST(AsyncTraceSinkTest, DeliversPagesInOrder) {
  RecordingPageSink inner;
  AsyncTraceSink sink(&inner);
  for (int i = 0; i < 50; ++i) {
    std::string page = Page("page-" + std::to_string(i));
    sink.WritePage(&page);
    EXPECT_TRUE(page.empty());  // consumed (or recycled-empty) buffer back
  }
  sink.Flush();
  ASSERT_EQ(inner.pages().size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(inner.pages()[i], "page-" + std::to_string(i));
  }
  EXPECT_EQ(inner.flushes(), 1);
  EXPECT_EQ(sink.pages_accepted(), 50u);
  EXPECT_TRUE(sink.ok());
}

TEST(AsyncTraceSinkTest, BackPressureBlocksInsteadOfBuffering) {
  // A slow writer with a 2-page bound: the producer must finish all
  // pages (no drops) without the queue absorbing them all at once. The
  // assertion is completion + order; TSan checks the synchronization.
  RecordingPageSink inner(std::chrono::milliseconds(2));
  AsyncTraceSink sink(&inner, /*max_queued_pages=*/2);
  for (int i = 0; i < 20; ++i) {
    std::string page = Page(std::to_string(i));
    sink.WritePage(&page);
  }
  sink.Flush();
  ASSERT_EQ(inner.pages().size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(inner.pages()[i], std::to_string(i));
  }
}

TEST(AsyncTraceSinkTest, StreamFailureSurfacesAndDropsWithoutWedging) {
  std::ostringstream out;
  out.setstate(std::ios::badbit);
  StreamPageSink inner(&out);
  AsyncTraceSink sink(&inner, /*max_queued_pages=*/2);
  // Far more pages than the queue bound: after the failure registers the
  // producer must drop rather than block on a queue that never drains.
  for (int i = 0; i < 100; ++i) {
    std::string page = Page("x");
    sink.WritePage(&page);
  }
  sink.Flush();
  EXPECT_FALSE(sink.ok());
  EXPECT_FALSE(sink.error().empty());
  EXPECT_EQ(sink.pages_accepted(), 100u);
}

TEST(AsyncTraceSinkTest, WriterExceptionRethrownAtFlush) {
  ThrowingPageSink inner;
  AsyncTraceSink sink(&inner);
  std::string page = Page("boom");
  sink.WritePage(&page);
  EXPECT_THROW(sink.Flush(), std::runtime_error);
  // The exception slot is cleared by the rethrow, like ThreadPool::Wait.
  sink.Flush();
}

TEST(AsyncTraceSinkTest, DestructorDrainsWithoutFlush) {
  RecordingPageSink inner;
  {
    AsyncTraceSink sink(&inner);
    for (int i = 0; i < 10; ++i) {
      std::string page = Page(std::to_string(i));
      sink.WritePage(&page);
    }
    // No Flush: the destructor must still deliver everything queued.
  }
  EXPECT_EQ(inner.pages().size(), 10u);
}

TEST(AsyncTraceSinkTest, DestructorSwallowsUncollectedException) {
  ThrowingPageSink inner;
  {
    AsyncTraceSink sink(&inner);
    std::string page = Page("boom");
    sink.WritePage(&page);
    // Destroyed without Flush(): the captured exception is logged and
    // dropped, never rethrown from a destructor.
  }
}

TEST(AsyncTraceSinkTest, RecyclesBufferCapacityToProducer) {
  RecordingPageSink inner;
  AsyncTraceSink sink(&inner);
  bool saw_recycled_capacity = false;
  for (int i = 0; i < 200; ++i) {
    std::string page(4096, 'x');
    sink.WritePage(&page);
    ASSERT_TRUE(page.empty());
    if (page.capacity() >= 4096) saw_recycled_capacity = true;
  }
  sink.Flush();
  EXPECT_EQ(inner.pages().size(), 200u);
  // Double buffering: at least sometimes the producer gets a drained
  // buffer back instead of a fresh empty string.
  EXPECT_TRUE(saw_recycled_capacity);
}

TEST(StreamPageSinkTest, WritesBytesAndCounts) {
  std::ostringstream out;
  StreamPageSink sink(&out);
  std::string page = Page("hello ");
  sink.WritePage(&page);
  page = Page("world");
  sink.WritePage(&page);
  sink.Flush();
  EXPECT_TRUE(sink.ok());
  EXPECT_EQ(out.str(), "hello world");
  EXPECT_EQ(sink.bytes_written(), 11u);
}

TEST(StreamPageSinkTest, FailedStreamSetsStickyError) {
  std::ostringstream out;
  out.setstate(std::ios::failbit);
  StreamPageSink sink(&out);
  std::string page = Page("doomed");
  sink.WritePage(&page);
  EXPECT_FALSE(sink.ok());
  EXPECT_EQ(sink.bytes_written(), 0u);
  EXPECT_TRUE(page.empty());  // still consumed, producers never wedge
}

}  // namespace
}  // namespace dynvote
