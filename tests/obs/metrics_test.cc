// The metrics registry: counter/gauge/histogram semantics, deterministic
// shard merging, the stable JSON export, and thread-safety of the
// registry facade (exercised under TSan in CI).

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace dynvote {
namespace {

TEST(MetricsShardTest, CountersAccumulate) {
  MetricsShard shard;
  shard.Add("events");
  shard.Add("events", 4);
  EXPECT_EQ(shard.counters().at("events"), 5u);
}

TEST(MetricsShardTest, GaugesKeepTheLastValue) {
  MetricsShard shard;
  shard.Set("queue_depth", 3.0);
  shard.Set("queue_depth", 1.5);
  EXPECT_EQ(shard.gauges().at("queue_depth"), 1.5);
}

TEST(MetricsShardTest, HistogramTracksCountSumMinMax) {
  MetricsShard shard;
  shard.Observe("latency", 2.0);
  shard.Observe("latency", 8.0);
  shard.Observe("latency", 0.5);
  const HistogramData& h = shard.histograms().at("latency");
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 10.5);
  EXPECT_EQ(h.min, 0.5);
  EXPECT_EQ(h.max, 8.0);
}

TEST(MetricsShardTest, HistogramBucketsArePowersOfTwo) {
  HistogramData h;
  h.Observe(1.0);   // [2^0, 2^1)
  h.Observe(1.5);   // [2^0, 2^1)
  h.Observe(2.0);   // [2^1, 2^2)
  h.Observe(0.25);  // [2^-2, 2^-1)
  EXPECT_EQ(h.buckets.at(0), 2u);
  EXPECT_EQ(h.buckets.at(1), 1u);
  EXPECT_EQ(h.buckets.at(-2), 1u);
}

TEST(MetricsShardTest, NonPositiveValuesLandInTheLowestBucket) {
  HistogramData h;
  h.Observe(0.0);
  h.Observe(-3.0);
  EXPECT_EQ(h.count, 2u);
  ASSERT_EQ(h.buckets.size(), 1u);
  // Whatever the floor exponent is, both land together below every
  // positive value's bucket.
  EXPECT_EQ(h.buckets.begin()->second, 2u);
  EXPECT_LT(h.buckets.begin()->first, std::ilogb(0.25));
}

TEST(MetricsShardTest, MergeCombinesAllThreeKinds) {
  MetricsShard a;
  a.Add("hits", 2);
  a.Set("level", 1.0);
  a.Observe("size", 4.0);
  MetricsShard b;
  b.Add("hits", 3);
  b.Add("misses");
  b.Set("level", 2.0);
  b.Observe("size", 16.0);
  a.Merge(b);
  EXPECT_EQ(a.counters().at("hits"), 5u);
  EXPECT_EQ(a.counters().at("misses"), 1u);
  EXPECT_EQ(a.gauges().at("level"), 2.0);  // incoming value wins
  EXPECT_EQ(a.histograms().at("size").count, 2u);
  EXPECT_EQ(a.histograms().at("size").sum, 20.0);
}

TEST(MetricsShardTest, JsonIsInsertionOrderIndependent) {
  MetricsShard forward;
  forward.Add("a");
  forward.Add("b", 2);
  forward.Observe("h", 1.0);
  MetricsShard backward;
  backward.Observe("h", 1.0);
  backward.Add("b", 2);
  backward.Add("a");
  EXPECT_EQ(forward.ToJson(), backward.ToJson());
}

TEST(MetricsShardTest, JsonNamesTheSchema) {
  MetricsShard shard;
  EXPECT_NE(shard.ToJson().find(kMetricsSchema), std::string::npos);
}

TEST(MetricsShardTest, ClearEmptiesTheShard) {
  MetricsShard shard;
  shard.Add("x");
  shard.Set("y", 1.0);
  shard.Observe("z", 1.0);
  EXPECT_FALSE(shard.empty());
  shard.Clear();
  EXPECT_TRUE(shard.empty());
}

TEST(MetricKeyTest, BuildsLabeledKeys) {
  EXPECT_EQ(MetricKey("access_reason", "protocol=LDV,reason=denied_tie_lost"),
            "access_reason{protocol=LDV,reason=denied_tie_lost}");
  EXPECT_EQ(MetricKey("plain", ""), "plain");
}

TEST(MetricsRegistryTest, ConcurrentMergesAreSafeAndComplete) {
  // The replicated-experiment join path: many worker shards folding into
  // one registry. Run under TSan in CI to pin down the locking.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kMergesPerThread = 50;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      for (int i = 0; i < kMergesPerThread; ++i) {
        MetricsShard shard;
        shard.Add("merges");
        shard.Observe("payload", 1.0);
        registry.Merge(shard);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  MetricsShard merged = registry.Snapshot();
  EXPECT_EQ(merged.counters().at("merges"),
            static_cast<std::uint64_t>(kThreads * kMergesPerThread));
  EXPECT_EQ(merged.histograms().at("payload").count,
            static_cast<std::uint64_t>(kThreads * kMergesPerThread));
  EXPECT_EQ(registry.ToJson(), merged.ToJson());
}

}  // namespace
}  // namespace dynvote
