// The metrics registry: counter/gauge/histogram semantics, deterministic
// shard merging, the stable JSON export, and thread-safety of the
// registry facade (exercised under TSan in CI).

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace dynvote {
namespace {

TEST(MetricsShardTest, CountersAccumulate) {
  MetricsShard shard;
  shard.Add("events");
  shard.Add("events", 4);
  EXPECT_EQ(shard.counters().at("events"), 5u);
}

TEST(MetricsShardTest, GaugesKeepTheLastValue) {
  MetricsShard shard;
  shard.Set("queue_depth", 3.0);
  shard.Set("queue_depth", 1.5);
  EXPECT_EQ(shard.gauges().at("queue_depth"), 1.5);
}

TEST(MetricsShardTest, HistogramTracksCountSumMinMax) {
  MetricsShard shard;
  shard.Observe("latency", 2.0);
  shard.Observe("latency", 8.0);
  shard.Observe("latency", 0.5);
  const HistogramData& h = shard.histograms().at("latency");
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 10.5);
  EXPECT_EQ(h.min, 0.5);
  EXPECT_EQ(h.max, 8.0);
}

TEST(MetricsShardTest, HistogramBucketsArePowersOfTwo) {
  HistogramData h;
  h.Observe(1.0);   // [2^0, 2^1)
  h.Observe(1.5);   // [2^0, 2^1)
  h.Observe(2.0);   // [2^1, 2^2)
  h.Observe(0.25);  // [2^-2, 2^-1)
  EXPECT_EQ(h.buckets.at(0), 2u);
  EXPECT_EQ(h.buckets.at(1), 1u);
  EXPECT_EQ(h.buckets.at(-2), 1u);
}

TEST(MetricsShardTest, NonPositiveValuesLandInTheLowestBucket) {
  HistogramData h;
  h.Observe(0.0);
  h.Observe(-3.0);
  EXPECT_EQ(h.count, 2u);
  ASSERT_EQ(h.buckets.size(), 1u);
  // Whatever the floor exponent is, both land together below every
  // positive value's bucket.
  EXPECT_EQ(h.buckets.begin()->second, 2u);
  EXPECT_LT(h.buckets.begin()->first, std::ilogb(0.25));
}

TEST(MetricsShardTest, MergeCombinesAllThreeKinds) {
  MetricsShard a;
  a.Add("hits", 2);
  a.Set("level", 1.0);
  a.Observe("size", 4.0);
  MetricsShard b;
  b.Add("hits", 3);
  b.Add("misses");
  b.Set("level", 2.0);
  b.Observe("size", 16.0);
  a.Merge(b);
  EXPECT_EQ(a.counters().at("hits"), 5u);
  EXPECT_EQ(a.counters().at("misses"), 1u);
  EXPECT_EQ(a.gauges().at("level"), 2.0);  // incoming value wins
  EXPECT_EQ(a.histograms().at("size").count, 2u);
  EXPECT_EQ(a.histograms().at("size").sum, 20.0);
}

TEST(MetricsShardTest, JsonIsInsertionOrderIndependent) {
  MetricsShard forward;
  forward.Add("a");
  forward.Add("b", 2);
  forward.Observe("h", 1.0);
  MetricsShard backward;
  backward.Observe("h", 1.0);
  backward.Add("b", 2);
  backward.Add("a");
  EXPECT_EQ(forward.ToJson(), backward.ToJson());
}

TEST(MetricsShardTest, JsonNamesTheSchema) {
  MetricsShard shard;
  EXPECT_NE(shard.ToJson().find(kMetricsSchema), std::string::npos);
}

TEST(MetricsShardTest, ClearEmptiesTheShard) {
  MetricsShard shard;
  shard.Add("x");
  shard.Set("y", 1.0);
  shard.Observe("z", 1.0);
  EXPECT_FALSE(shard.empty());
  shard.Clear();
  EXPECT_TRUE(shard.empty());
}

TEST(HistogramQuantileTest, EmptyHistogramReturnsZero) {
  HistogramData h;
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
}

TEST(HistogramQuantileTest, EndpointsAreTheExactExtrema) {
  HistogramData h;
  for (double v : {3.7, 9.1, 250.0, 0.4}) h.Observe(v);
  EXPECT_EQ(h.Quantile(0.0), 0.4);
  EXPECT_EQ(h.Quantile(1.0), 250.0);
  // Out-of-range q clamps rather than extrapolating.
  EXPECT_EQ(h.Quantile(-1.0), 0.4);
  EXPECT_EQ(h.Quantile(2.0), 250.0);
}

TEST(HistogramQuantileTest, SingleValueHistogramIsFlat) {
  HistogramData h;
  h.Observe(42.0);
  for (double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_EQ(h.Quantile(q), 42.0) << "q=" << q;
  }
}

TEST(HistogramQuantileTest, EstimatesStayWithinTheBucketWidth) {
  // The documented error bound: the estimate lands in the same
  // power-of-two bucket as the exact nearest-rank order statistic, so it
  // is off by at most a factor of two.
  Rng rng(20260808);
  std::vector<double> samples;
  HistogramData h;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.NextExponential(25.0) + 0.01;
    samples.push_back(v);
    h.Observe(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    double rank = q * static_cast<double>(samples.size());
    if (rank < 1.0) rank = 1.0;
    const double exact =
        samples[static_cast<std::size_t>(std::ceil(rank)) - 1];
    const double estimate = h.Quantile(q);
    EXPECT_GE(estimate, exact / 2.0) << "q=" << q;
    EXPECT_LE(estimate, exact * 2.0) << "q=" << q;
  }
}

TEST(HistogramQuantileTest, QuantilesAreMonotone) {
  Rng rng(7);
  HistogramData h;
  for (int i = 0; i < 500; ++i) h.Observe(rng.NextDouble() * 100.0 + 0.5);
  double prev = h.Quantile(0.0);
  for (int i = 1; i <= 100; ++i) {
    const double cur = h.Quantile(static_cast<double>(i) / 100.0);
    EXPECT_GE(cur, prev) << "q=" << i / 100.0;
    prev = cur;
  }
}

TEST(MetricsShardTest, MergeHistogramMatchesIndividualObserves) {
  // The batched flush path (ServingStage::Finish) must be
  // indistinguishable from per-value Observe calls.
  HistogramData local;
  local.Observe(1.0);
  local.Observe(6.5);
  local.Observe(0.125);
  MetricsShard batched;
  batched.Observe("lat", 99.0);  // pre-existing data folds, not replaces
  batched.MergeHistogram("lat", local);
  MetricsShard individual;
  individual.Observe("lat", 99.0);
  individual.Observe("lat", 1.0);
  individual.Observe("lat", 6.5);
  individual.Observe("lat", 0.125);
  EXPECT_EQ(batched.ToJson(), individual.ToJson());
}

TEST(MetricsShardTest, CounterCellPointerIsStableAcrossInserts) {
  MetricsShard shard;
  std::uint64_t* cell = shard.CounterCell("hot");
  *cell += 5;
  // Map growth must not move the node the pointer refers to.
  for (int i = 0; i < 100; ++i) {
    shard.CounterCell("k" + std::to_string(i));
  }
  *cell += 1;
  EXPECT_EQ(shard.CounterCell("hot"), cell);
  EXPECT_EQ(shard.counters().at("hot"), 6u);
  // Add() and the cached cell hit the same storage.
  shard.Add("hot", 4);
  EXPECT_EQ(*cell, 10u);
}

TEST(MetricsShardTest, ClearBumpsTheCellEpoch) {
  MetricsShard shard;
  const std::uint64_t before = shard.cell_epoch();
  *shard.CounterCell("hot") = 3;
  shard.Clear();
  // Every cached CounterCell pointer just died; the epoch is the
  // caller's signal to re-resolve.
  EXPECT_GT(shard.cell_epoch(), before);
  EXPECT_TRUE(shard.empty());
  EXPECT_EQ(*shard.CounterCell("hot"), 0u);
}

TEST(MetricKeyTest, BuildsLabeledKeys) {
  EXPECT_EQ(MetricKey("access_reason", "protocol=LDV,reason=denied_tie_lost"),
            "access_reason{protocol=LDV,reason=denied_tie_lost}");
  EXPECT_EQ(MetricKey("plain", ""), "plain");
}

TEST(MetricsRegistryTest, ConcurrentMergesAreSafeAndComplete) {
  // The replicated-experiment join path: many worker shards folding into
  // one registry. Run under TSan in CI to pin down the locking.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kMergesPerThread = 50;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      for (int i = 0; i < kMergesPerThread; ++i) {
        MetricsShard shard;
        shard.Add("merges");
        shard.Observe("payload", 1.0);
        registry.Merge(shard);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  MetricsShard merged = registry.Snapshot();
  EXPECT_EQ(merged.counters().at("merges"),
            static_cast<std::uint64_t>(kThreads * kMergesPerThread));
  EXPECT_EQ(merged.histograms().at("payload").count,
            static_cast<std::uint64_t>(kThreads * kMergesPerThread));
  EXPECT_EQ(registry.ToJson(), merged.ToJson());
}

}  // namespace
}  // namespace dynvote
