// Trace sinks: ring-buffer bounding, JSONL rendering of every event
// type, string escaping, and the schema header line.

#include "obs/trace_sink.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace dynvote {
namespace {

TraceEvent SimEvent(double t, std::uint64_t seq) {
  TraceEvent e;
  e.type = TraceEventType::kSim;
  e.t = t;
  e.seq = seq;
  e.op = "dispatch";
  return e;
}

TEST(RingTraceSinkTest, KeepsTheMostRecentEvents) {
  RingTraceSink sink(3);
  for (int i = 0; i < 5; ++i) sink.Write(SimEvent(i, i));
  EXPECT_EQ(sink.total_events(), 5u);
  ASSERT_EQ(sink.events().size(), 3u);
  EXPECT_EQ(sink.events().front().seq, 2u);
  EXPECT_EQ(sink.events().back().seq, 4u);
}

TEST(RingTraceSinkTest, ZeroCapacityOnlyCounts) {
  RingTraceSink sink(0);
  sink.Write(SimEvent(1.0, 1));
  EXPECT_EQ(sink.total_events(), 1u);
  EXPECT_TRUE(sink.events().empty());
}

TEST(RingTraceSinkTest, ClearDropsEventsButNotTheCount) {
  RingTraceSink sink;
  sink.Write(SimEvent(1.0, 1));
  sink.Clear();
  EXPECT_TRUE(sink.events().empty());
  EXPECT_EQ(sink.total_events(), 1u);
}

TEST(RingTraceSinkTest, WrapsManyTimesWithoutLosingOrder) {
  // The ring now reuses preallocated slots instead of deep-copying each
  // event into a fresh deque node; wrapping several times over must
  // still yield the newest events, oldest first.
  RingTraceSink sink(4);
  TraceEvent net;
  net.type = TraceEventType::kNet;
  net.components = {0x1, 0x2, 0x3};  // per-slot vector storage is reused
  for (int i = 0; i < 103; ++i) {
    net.seq = static_cast<std::uint64_t>(i);
    sink.Write(net);
  }
  EXPECT_EQ(sink.total_events(), 103u);
  std::vector<TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, static_cast<std::uint64_t>(99 + i));
    EXPECT_EQ(events[i].components.size(), 3u);
  }
  sink.Clear();
  EXPECT_EQ(sink.capacity(), 4u);
  sink.Write(SimEvent(1.0, 7));
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(sink.events().front().seq, 7u);
}

TEST(JsonlTest, SimEventRendersCompactly) {
  std::string line;
  AppendTraceEventJson(SimEvent(2.5, 7), &line);
  EXPECT_EQ(line, "{\"ev\":\"sim\",\"t\":2.5,\"seq\":7,\"op\":\"dispatch\"}");
}

TEST(JsonlTest, ReplicationIndexAppearsOnlyWhenSet) {
  TraceEvent e = SimEvent(1.0, 0);
  e.replication = 3;
  std::string line;
  AppendTraceEventJson(e, &line);
  EXPECT_NE(line.find("\"rep\":3"), std::string::npos) << line;
  line.clear();
  e.replication = -1;
  AppendTraceEventJson(e, &line);
  EXPECT_EQ(line.find("\"rep\""), std::string::npos) << line;
}

TEST(JsonlTest, NetEventCarriesComponentMasks) {
  TraceEvent e;
  e.type = TraceEventType::kNet;
  e.t = 4.0;
  e.seq = 9;
  e.site = 2;
  e.up = false;
  e.generation = 11;
  e.components = {0x3, 0x18};
  std::string line;
  AppendTraceEventJson(e, &line);
  EXPECT_EQ(line,
            "{\"ev\":\"net\",\"t\":4,\"seq\":9,\"site\":2,\"up\":false,"
            "\"gen\":11,\"components\":[3,24]}");
}

TEST(JsonlTest, RepeaterFlipUsesTheRepeaterKey) {
  TraceEvent e;
  e.type = TraceEventType::kNet;
  e.site = 0;
  e.repeater = true;
  e.up = true;
  std::string line;
  AppendTraceEventJson(e, &line);
  EXPECT_NE(line.find("\"repeater\":0"), std::string::npos) << line;
  EXPECT_EQ(line.find("\"site\""), std::string::npos) << line;
}

TEST(JsonlTest, QuorumEventCarriesThePaperSets) {
  TraceEvent e;
  e.type = TraceEventType::kQuorum;
  e.protocol = "TDV";
  e.granted = true;
  e.reason = QuorumReason::kGrantedTopologicalCarry;
  e.group = 0x1F;
  e.set_r = 0x0F;
  e.set_q = 0x02;
  e.set_s = 0x02;
  e.set_t = 0x03;
  e.set_pm = 0x03;
  std::string line;
  AppendTraceEventJson(e, &line);
  EXPECT_NE(line.find("\"reason\":\"granted_topological_carry\""),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"R\":15"), std::string::npos) << line;
  EXPECT_NE(line.find("\"Q\":2"), std::string::npos) << line;
  EXPECT_NE(line.find("\"S\":2"), std::string::npos) << line;
  EXPECT_NE(line.find("\"T\":3"), std::string::npos) << line;
  EXPECT_NE(line.find("\"Pm\":3"), std::string::npos) << line;
}

TEST(JsonlTest, CacheHitOmitsThePaperSets) {
  TraceEvent e;
  e.type = TraceEventType::kQuorum;
  e.protocol = "LDV";
  e.reason = QuorumReason::kCacheHit;
  e.group = 0x7;
  e.set_r = 0x7;  // populated or not, a cache hit must not render sets
  std::string line;
  AppendTraceEventJson(e, &line);
  EXPECT_NE(line.find("\"reason\":\"cache_hit\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"group\":7"), std::string::npos) << line;
  EXPECT_EQ(line.find("\"R\":"), std::string::npos) << line;
  EXPECT_EQ(line.find("\"Pm\":"), std::string::npos) << line;
}

TEST(JsonlTest, StringsAreEscaped) {
  TraceEvent e;
  e.type = TraceEventType::kAvail;
  e.protocol = "a\"b\\c\n";
  e.available = true;
  std::string line;
  AppendTraceEventJson(e, &line);
  EXPECT_NE(line.find("\"a\\\"b\\\\c\\u000a\""), std::string::npos) << line;
}

TEST(JsonlTest, DoublesRoundTripAtFullPrecision) {
  TraceEvent e = SimEvent(0.1 + 0.2, 0);  // classic non-representable sum
  std::string line;
  AppendTraceEventJson(e, &line);
  EXPECT_NE(line.find("0.30000000000000004"), std::string::npos) << line;
}

TEST(JsonlTest, SinkWritesOneLinePerEvent) {
  std::ostringstream out;
  JsonlTraceSink sink(&out);
  sink.Write(SimEvent(1.0, 1));
  sink.Write(SimEvent(2.0, 2));
  EXPECT_EQ(sink.total_events(), 2u);
  std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_EQ(text.find('{'), 0u);
}

TEST(JsonlTest, HeaderLineNamesSchemaAndSeed) {
  EXPECT_EQ(TraceHeaderLine(42),
            std::string("{\"schema\":\"") + kTraceSchema +
                "\",\"seed\":42}");
}

}  // namespace
}  // namespace dynvote
