// Regression tests documenting a genuine property of the published
// algorithm: Topological Dynamic Voting *as printed in the 1988 paper*
// does not preserve mutual exclusion across failure/recovery sequences.
//
// The paper argues consistency as long as "the same unavailable site
// belonging to the previous majority block cannot be concurrently claimed
// by two disjoint attempts to build rival majority blocks" — a guarantee
// about *concurrent* claims. The hazard below is sequential: a site that
// advances the lineage alone, by carrying a down segment-mate's vote,
// leaves the other former members with a stale partition set that can
// still muster a (topological) majority once the solo site fails. The two
// lineages then coexist. Our availability simulation observes exactly
// this in the paper's own configuration D (copies on gremlin/rip/mangle),
// and the paper's reported TDV availability advantage in that
// configuration comes from precisely these grants.
//
// The library reproduces the algorithm literally and surfaces the hazard
// (ConsistencyProtocol::partition_safe() is false for the topological
// variants; the simulation driver counts dual-majority instants).

#include <gtest/gtest.h>

#include "core/dynamic_voting.h"
#include "core/test_topologies.h"
#include "net/network_state.h"

namespace dynvote {
namespace {

TEST(TopologicalUnsoundnessTest, PartitionSafeFlags) {
  auto topo = testing_util::SingleSegment(3);
  SiteSet p{0, 1, 2};
  EXPECT_TRUE((*MakeDV(topo, p))->partition_safe());
  EXPECT_TRUE((*MakeLDV(topo, p))->partition_safe());
  EXPECT_TRUE((*MakeODV(topo, p))->partition_safe());
  EXPECT_FALSE((*MakeTDV(topo, p))->partition_safe());
  EXPECT_FALSE((*MakeOTDV(topo, p))->partition_safe());
}

TEST(TopologicalUnsoundnessTest, SequentialSoloAdvanceForksLineage) {
  // Minimal scenario, two copies on one segment:
  //   1. x and y current, P = {x, y}.
  //   2. y fails; x solo-advances carrying y's vote (TDV's whole point),
  //      commits writes with P = {x}.
  //   3. x fails; y restarts. y's state still says P = {x, y}, and y
  //      carries the (down) x's vote: granted. y now serves STALE data
  //      and x's committed writes are invisible — lost update.
  auto topo = testing_util::SingleSegment(2);
  const SiteId x = 0, y = 1;
  auto tdv = *MakeTDV(topo, SiteSet{x, y});
  NetworkState net(topo);

  net.SetSiteUp(y, false);
  tdv->OnNetworkEvent(net);
  ASSERT_TRUE(tdv->Write(net, x).ok());
  VersionNumber committed = tdv->store().state(x).version;
  ASSERT_EQ(tdv->store().state(x).partition_set, SiteSet{x});

  net.SetSiteUp(x, false);
  net.SetSiteUp(y, true);
  tdv->OnNetworkEvent(net);

  // The literal Figure 5 test grants y: Q = {y}, Pm = {x, y}, T = {x, y}.
  EXPECT_TRUE(tdv->WouldGrant(net, y, AccessType::kRead));
  ASSERT_TRUE(tdv->Read(net, y).ok());
  // ... and the data y serves predates x's committed write.
  EXPECT_LT(tdv->store().state(y).version, committed);

  // When x restarts, two rival lineages exist. Both singleton groups
  // would be granted if x were isolated; reconnected on one segment the
  // tie goes to whichever happens to hold the higher operation number —
  // committed writes on the other lineage are silently lost.
  net.SetSiteUp(x, true);
  EXPECT_TRUE(tdv->WouldGrant(net, x, AccessType::kRead));
}

TEST(TopologicalUnsoundnessTest, LdvRefusesTheSameScenario) {
  // Plain lexicographic dynamic voting keeps the lineage singular: after
  // x solo-advances... it cannot: {x} is half of {x, y} and x ranks
  // higher, so LDV grants x too (tie-break). The difference shows when
  // the ranks are reversed: give y the higher rank (lower id).
  auto topo = testing_util::SingleSegment(2);
  const SiteId y = 0, x = 1;  // y outranks x
  auto ldv = *MakeLDV(topo, SiteSet{x, y});
  auto tdv = *MakeTDV(topo, SiteSet{x, y});
  NetworkState net(topo);

  // y fails. LDV: x is half of {x, y} without the max element — frozen.
  net.SetSiteUp(y, false);
  ldv->OnNetworkEvent(net);
  tdv->OnNetworkEvent(net);
  EXPECT_TRUE(ldv->Write(net, x).IsNoQuorum());
  EXPECT_FALSE(ldv->IsAvailable(net));
  // TDV: x carries y and proceeds — availability bought at the price of
  // the fork hazard above.
  EXPECT_TRUE(tdv->Write(net, x).ok());

  // Under LDV the stale-side grant can never happen: swap roles and the
  // recovering x (now alone) reads Pm = {x, y} with max = y not in Q.
  net.SetSiteUp(x, false);
  net.SetSiteUp(y, true);
  ldv->OnNetworkEvent(net);
  EXPECT_TRUE(ldv->WouldGrant(net, y, AccessType::kRead));
  // y was the max element, so y alone is legitimate for LDV — and safe,
  // because x could never have advanced without y.
}

TEST(TopologicalUnsoundnessTest, DriverWouldCountDualMajorities) {
  // Both singleton groups granted at once: the state the simulation
  // driver tallies as a dual-majority instant. Reached by isolating the
  // two forked lineages of SequentialSoloAdvanceForksLineage on separate
  // segments.
  auto topo = testing_util::TwoPairSegments();  // {0,1} | {2,3}
  // Copies on 0 and 2 — different segments — plus their segment-mates
  // not holding copies... here instead use copies on 0,1 (left) and let
  // the fork occur between them, then partition is impossible: the fork
  // on one segment resolves by operation number. So demonstrate with
  // copies 1 and 2: segment-mates 0 and 3 hold no copies; no carrying is
  // possible across, and the pair behaves like LDV. The dangerous shape
  // is specifically co-segment copies, as in the previous test.
  auto tdv = *MakeTDV(topo, SiteSet{1, 2});
  NetworkState net(topo);
  net.SetSiteUp(2, false);
  tdv->OnNetworkEvent(net);
  // 1 cannot carry 2 (different segments): tie, max(P) = 1 in Q: granted
  // by lexicographic rule only.
  EXPECT_TRUE(tdv->WouldGrant(net, 1, AccessType::kWrite));
  net.AllUp();
  net.SetSiteUp(1, false);
  tdv->OnNetworkEvent(net);
  // 2 is half without max and cannot carry: denied. No fork possible.
  EXPECT_FALSE(tdv->WouldGrant(net, 2, AccessType::kWrite));
}

}  // namespace
}  // namespace dynvote
