// Voting with witnesses (Pâris 1986), the extension the paper's
// conclusion calls for: witnesses hold the (o, v, P) ensemble and vote,
// but store no data, so an access additionally needs a current *data*
// copy in the quorum.

#include <gtest/gtest.h>

#include "core/dynamic_voting.h"
#include "core/test_topologies.h"
#include "net/network_state.h"

namespace dynvote {
namespace {

using testing_util::SingleSegment;

std::unique_ptr<DynamicVoting> MakeWithWitness(
    std::shared_ptr<const Topology> topo, SiteSet placement,
    SiteSet witnesses) {
  DynamicVotingOptions options;
  options.witnesses = witnesses;
  auto dv = DynamicVoting::Make(std::move(topo), placement, options);
  EXPECT_TRUE(dv.ok()) << dv.status();
  return dv.MoveValue();
}

TEST(WitnessTest, NameAndDataCopies) {
  auto topo = SingleSegment(3);
  auto dv = MakeWithWitness(topo, SiteSet{0, 1, 2}, SiteSet{2});
  EXPECT_EQ(dv->name(), "LDV+wit");
  EXPECT_EQ(dv->data_copies(), (SiteSet{0, 1}));
}

TEST(WitnessTest, WitnessBreaksTies) {
  // Two data copies + one witness: when data copy 1 fails, data copy 0
  // plus the witness form 2 of 3 — the witness substitutes for a third
  // data copy at a fraction of the storage.
  auto topo = SingleSegment(3);
  auto dv = MakeWithWitness(topo, SiteSet{0, 1, 2}, SiteSet{2});
  NetworkState net(topo);
  net.SetSiteUp(1, false);
  dv->OnNetworkEvent(net);
  EXPECT_TRUE(dv->WouldGrant(net, 0, AccessType::kWrite));
  ASSERT_TRUE(dv->Write(net, 0).ok());
  // The witness tracks the version number without holding data.
  EXPECT_EQ(dv->store().state(2).version, dv->store().state(0).version);
}

TEST(WitnessTest, QuorumOfWitnessesAloneIsRefused) {
  // Witness + witness may outvote a lone data copy, but without a current
  // data copy there is nothing to read or write.
  auto topo = SingleSegment(3);
  auto dv = MakeWithWitness(topo, SiteSet{0, 1, 2}, SiteSet{1, 2});
  NetworkState net(topo);
  net.SetSiteUp(0, false);  // the only data copy
  dv->OnNetworkEvent(net);
  EXPECT_FALSE(dv->WouldGrant(net, 1, AccessType::kRead));
  EXPECT_TRUE(dv->UserAccess(net, AccessType::kRead).IsNoQuorum());
}

TEST(WitnessTest, StaleDataCopyCannotServeCurrentData) {
  // Lineage: all three current. Data copy 0 goes down; 1 (data) + 2
  // (witness) continue and commit writes, shrinking the block to {1, 2}.
  // Then 1 fails and 0 returns: 0 is a stale non-member (its operation
  // number predates the {1, 2} lineage), so the quorum rule refuses the
  // group even though it would hold 2 of 3 sites — the current data
  // lives at 1 and nothing may be served until 1 returns.
  auto topo = SingleSegment(3);
  auto dv = MakeWithWitness(topo, SiteSet{0, 1, 2}, SiteSet{2});
  NetworkState net(topo);
  net.SetSiteUp(0, false);
  dv->OnNetworkEvent(net);
  ASSERT_TRUE(dv->Write(net, 1).ok());
  net.SetSiteUp(1, false);
  net.SetSiteUp(0, true);
  dv->OnNetworkEvent(net);
  EXPECT_FALSE(dv->WouldGrant(net, 0, AccessType::kRead));

  // Once 1 returns, everything reintegrates and works again.
  net.SetSiteUp(1, true);
  dv->OnNetworkEvent(net);
  EXPECT_TRUE(dv->WouldGrant(net, 0, AccessType::kRead));
  EXPECT_EQ(dv->store().state(0).version, dv->store().state(1).version);
}

TEST(WitnessTest, RecoveringWitnessDoesNotCopyTheFile) {
  auto topo = SingleSegment(3);
  auto dv = MakeWithWitness(topo, SiteSet{0, 1, 2}, SiteSet{2});
  NetworkState net(topo);
  net.SetSiteUp(2, false);
  dv->OnNetworkEvent(net);
  ASSERT_TRUE(dv->Write(net, 0).ok());
  net.SetSiteUp(2, true);
  dv->OnNetworkEvent(net);
  EXPECT_EQ(dv->store().state(2).version, dv->store().state(0).version);
  EXPECT_EQ(dv->counter()->count(MessageKind::kFileCopy), 0u);
}

TEST(WitnessTest, StaleDataCopyWithoutDataSourceGetsDistinctRefusal) {
  // Data copies 1, 2 and witness 0. Copy 2 misses a write (block shrinks
  // to {0, 1}, version advances), then 1 fails and 2 returns: the group
  // {0, 2} wins the raw vote by tie-break (Q = {0}, half of Pm = {0, 1}
  // with its max element), but the only current member is the witness —
  // there is no data source for 2's stale copy. The recovery must be
  // refused with the witness-specific status, and no file copy may be
  // counted: historically Recover incremented kFileCopy on the counting
  // path whether or not a transfer could be delivered.
  auto topo = SingleSegment(3);
  auto dv = MakeWithWitness(topo, SiteSet{0, 1, 2}, SiteSet{0});
  NetworkState net(topo);
  net.SetSiteUp(2, false);
  dv->OnNetworkEvent(net);
  ASSERT_TRUE(dv->Write(net, 1).ok());
  net.SetSiteUp(1, false);
  net.SetSiteUp(2, true);
  dv->OnNetworkEvent(net);

  Status st = dv->Recover(net, 2);
  EXPECT_TRUE(st.IsNoQuorum()) << st;
  EXPECT_NE(st.ToString().find("no reachable data source"),
            std::string::npos)
      << st;
  EXPECT_EQ(dv->counter()->count(MessageKind::kFileCopy), 0u);
  // Site 2 stays stale — nothing was committed.
  EXPECT_LT(dv->store().state(2).version, dv->store().state(0).version);

  // Once data copy 1 returns the same recovery succeeds, with exactly
  // one file transfer, counted and delivered together.
  net.SetSiteUp(1, true);
  dv->OnNetworkEvent(net);
  EXPECT_EQ(dv->store().state(2).version, dv->store().state(1).version);
  EXPECT_EQ(dv->counter()->count(MessageKind::kFileCopy), 1u);
}

TEST(WitnessTest, OptimisticWitnessVariant) {
  auto topo = SingleSegment(3);
  DynamicVotingOptions options;
  options.optimistic = true;
  options.witnesses = SiteSet{2};
  auto dv = *DynamicVoting::Make(topo, SiteSet{0, 1, 2}, options);
  EXPECT_EQ(dv->name(), "ODV+wit");
  NetworkState net(topo);
  net.SetSiteUp(1, false);
  ASSERT_TRUE(dv->UserAccess(net, AccessType::kWrite).ok());
  EXPECT_EQ(dv->store().state(0).partition_set, (SiteSet{0, 2}));
}

}  // namespace
}  // namespace dynvote
