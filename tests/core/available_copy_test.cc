#include "core/available_copy.h"

#include <gtest/gtest.h>

#include "core/test_topologies.h"
#include "net/network_state.h"

namespace dynvote {
namespace {

using testing_util::SingleSegment;

TEST(AvailableCopyTest, MakeValidates) {
  EXPECT_TRUE(AvailableCopy::Make(SiteSet()).status().IsInvalidArgument());
  auto ac = AvailableCopy::Make(SiteSet{0, 1});
  ASSERT_TRUE(ac.ok());
  EXPECT_EQ((*ac)->name(), "AC");
  EXPECT_FALSE((*ac)->partition_safe());
  EXPECT_TRUE((*ac)->uses_instantaneous_information());
}

TEST(AvailableCopyTest, SurvivesAllButOneFailure) {
  // The whole point of AC: on a non-partitionable network one copy is
  // enough.
  auto topo = SingleSegment(3);
  auto ac = *AvailableCopy::Make(SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(0, false);
  ac->OnNetworkEvent(net);
  net.SetSiteUp(1, false);
  ac->OnNetworkEvent(net);
  EXPECT_TRUE(ac->WouldGrant(net, 2, AccessType::kWrite));
  EXPECT_TRUE(ac->Write(net, 2).ok());
  EXPECT_EQ(ac->current_set(), SiteSet{2});
}

TEST(AvailableCopyTest, WritesGoToAllLiveCopies) {
  auto topo = SingleSegment(3);
  auto ac = *AvailableCopy::Make(SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(1, false);
  ac->OnNetworkEvent(net);
  ASSERT_TRUE(ac->Write(net, 0).ok());
  EXPECT_EQ(ac->store().state(0).version, 2);
  EXPECT_EQ(ac->store().state(2).version, 2);
  EXPECT_EQ(ac->store().state(1).version, 1);
  EXPECT_EQ(ac->current_set(), (SiteSet{0, 2}));
}

TEST(AvailableCopyTest, DownCopyStaysCurrentIfNoWritesMissed) {
  // A copy that was down across no writes is still current on restart.
  auto topo = SingleSegment(2);
  auto ac = *AvailableCopy::Make(SiteSet{0, 1});
  NetworkState net(topo);
  net.SetSiteUp(1, false);
  ac->OnNetworkEvent(net);
  EXPECT_TRUE(ac->current_set().Contains(1));
  net.SetSiteUp(1, true);
  ac->OnNetworkEvent(net);
  EXPECT_TRUE(ac->WouldGrant(net, 1, AccessType::kRead));
}

TEST(AvailableCopyTest, StaleCopyRecoversAutomatically) {
  auto topo = SingleSegment(2);
  auto ac = *AvailableCopy::Make(SiteSet{0, 1});
  NetworkState net(topo);
  net.SetSiteUp(1, false);
  ac->OnNetworkEvent(net);
  ASSERT_TRUE(ac->Write(net, 0).ok());  // 1 misses the write
  EXPECT_EQ(ac->current_set(), SiteSet{0});
  net.SetSiteUp(1, true);
  ac->OnNetworkEvent(net);  // instantaneous reintegration
  EXPECT_EQ(ac->current_set(), (SiteSet{0, 1}));
  EXPECT_EQ(ac->store().state(1).version, 2);
  EXPECT_EQ(ac->counter()->count(MessageKind::kFileCopy), 1u);
}

TEST(AvailableCopyTest, TotalFailureNeedsLastCurrentCopyBack) {
  auto topo = SingleSegment(3);
  auto ac = *AvailableCopy::Make(SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(0, false);
  ac->OnNetworkEvent(net);
  ASSERT_TRUE(ac->Write(net, 1).ok());  // current = {1, 2}
  net.SetSiteUp(1, false);
  ac->OnNetworkEvent(net);
  ASSERT_TRUE(ac->Write(net, 2).ok());  // current = {2}
  net.SetSiteUp(2, false);
  ac->OnNetworkEvent(net);

  // Total failure. Site 0 restarting does not help: it is stale.
  net.SetSiteUp(0, true);
  ac->OnNetworkEvent(net);
  EXPECT_FALSE(ac->IsAvailable(net));
  EXPECT_TRUE(ac->Read(net, 0).IsNoQuorum());
  EXPECT_TRUE(ac->Recover(net, 0).IsNoQuorum());

  // Only the last current copy (site 2) restores availability — and then
  // site 0 can catch up.
  net.SetSiteUp(2, true);
  ac->OnNetworkEvent(net);
  EXPECT_TRUE(ac->IsAvailable(net));
  EXPECT_EQ(ac->store().state(0).version, 3);
  EXPECT_TRUE(ac->current_set().Contains(0));
}

TEST(AvailableCopyTest, ReadNeedsCurrentCopy) {
  auto topo = SingleSegment(2);
  auto ac = *AvailableCopy::Make(SiteSet{0, 1});
  NetworkState net(topo);
  net.SetSiteUp(1, false);
  ac->OnNetworkEvent(net);
  ASSERT_TRUE(ac->Write(net, 0).ok());
  net.SetSiteUp(0, false);
  net.SetSiteUp(1, true);
  // Note: OnNetworkEvent would try (and fail) to recover site 1; reads
  // must likewise be refused — site 1's copy is stale.
  ac->OnNetworkEvent(net);
  EXPECT_FALSE(ac->WouldGrant(net, 1, AccessType::kRead));
}

TEST(AvailableCopyTest, NotPartitionSafeByDesign) {
  // On a partitionable topology, both sides of a partition keep current
  // copies and both grant writes: the documented reason AC requires a
  // non-partitionable network.
  auto topo = testing_util::TwoPairSegments();
  auto ac = *AvailableCopy::Make(SiteSet{0, 1, 2, 3});
  NetworkState net(topo);
  net.SetRepeaterUp(0, false);
  int granted = 0;
  for (const SiteSet& group : net.Components()) {
    if (ac->WouldGrant(net, group.RankMax(), AccessType::kWrite)) ++granted;
  }
  EXPECT_EQ(granted, 2);
}

TEST(AvailableCopyTest, RecoverFromDownSiteFails) {
  auto topo = SingleSegment(2);
  auto ac = *AvailableCopy::Make(SiteSet{0, 1});
  NetworkState net(topo);
  net.SetSiteUp(1, false);
  EXPECT_TRUE(ac->Recover(net, 1).IsUnavailable());
  EXPECT_TRUE(ac->Recover(net, 5).IsInvalidArgument());
}

TEST(AvailableCopyTest, ResetRestores) {
  auto topo = SingleSegment(2);
  auto ac = *AvailableCopy::Make(SiteSet{0, 1});
  NetworkState net(topo);
  net.SetSiteUp(1, false);
  ac->OnNetworkEvent(net);
  ASSERT_TRUE(ac->Write(net, 0).ok());
  ac->Reset();
  EXPECT_EQ(ac->current_set(), (SiteSet{0, 1}));
  EXPECT_EQ(ac->store().state(0).version, 1);
}

}  // namespace
}  // namespace dynvote
