#include "core/regenerating.h"

#include <gtest/gtest.h>

#include "core/dynamic_voting.h"
#include "core/test_topologies.h"
#include "net/network_state.h"
#include "util/rng.h"

namespace dynvote {
namespace {

using testing_util::SingleSegment;

std::unique_ptr<RegeneratingVoting> MakeR(
    std::shared_ptr<const Topology> topo, SiteSet data, SiteSet witnesses,
    int threshold = 2) {
  RegeneratingOptions options;
  options.regeneration_threshold = threshold;
  auto r = RegeneratingVoting::Make(std::move(topo), data, witnesses,
                                    options);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.MoveValue();
}

TEST(RegeneratingTest, MakeValidates) {
  auto topo = SingleSegment(4);
  EXPECT_FALSE(
      RegeneratingVoting::Make(nullptr, SiteSet{0}, SiteSet{}).ok());
  EXPECT_FALSE(
      RegeneratingVoting::Make(topo, SiteSet{}, SiteSet{1}).ok());
  // Witness overlapping a data copy.
  EXPECT_FALSE(
      RegeneratingVoting::Make(topo, SiteSet{0, 1}, SiteSet{1}).ok());
  RegeneratingOptions bad;
  bad.regeneration_threshold = 0;
  EXPECT_FALSE(
      RegeneratingVoting::Make(topo, SiteSet{0, 1}, SiteSet{2}, bad).ok());
  auto ok = RegeneratingVoting::Make(topo, SiteSet{0, 1}, SiteSet{2});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->name(), "RLDV");
  EXPECT_EQ((*ok)->placement(), (SiteSet{0, 1, 2}));
  EXPECT_EQ((*ok)->data_sites(), (SiteSet{0, 1}));
  EXPECT_EQ((*ok)->witnesses(), SiteSet{2});
}

TEST(RegeneratingTest, BehavesLikeWitnessLdvBeforeAnyRegeneration) {
  auto topo = SingleSegment(4);
  auto r = MakeR(topo, SiteSet{0, 1}, SiteSet{2}, /*threshold=*/100);
  NetworkState net(topo);
  ASSERT_TRUE(r->Write(net, 0).ok());
  net.SetSiteUp(1, false);
  r->OnNetworkEvent(net);
  // Data copy 0 + witness 2 form 2 of 3.
  EXPECT_TRUE(r->WouldGrant(net, 0, AccessType::kWrite));
  net.SetSiteUp(0, false);
  r->OnNetworkEvent(net);
  // Witness alone can vote but not serve data.
  EXPECT_FALSE(r->IsAvailable(net));
}

TEST(RegeneratingTest, WitnessRegeneratesAfterThresholdMisses) {
  auto topo = SingleSegment(4);
  auto r = MakeR(topo, SiteSet{0, 1}, SiteSet{2}, /*threshold=*/2);
  NetworkState net(topo);

  net.SetSiteUp(2, false);  // witness host crashes
  r->OnNetworkEvent(net);   // miss 1
  EXPECT_EQ(r->regenerations(), 0u);
  EXPECT_EQ(r->witnesses(), SiteSet{2});
  net.SetSiteUp(3, true);   // (no-op: already up) second event via flap
  net.SetSiteUp(3, false);
  r->OnNetworkEvent(net);   // miss 2 -> regenerate... but host 3 is down
  net.SetSiteUp(3, true);
  r->OnNetworkEvent(net);   // miss 3 -> regenerate on site 3
  EXPECT_EQ(r->regenerations(), 1u);
  EXPECT_EQ(r->witnesses(), SiteSet{3});
  EXPECT_EQ(r->placement(), (SiteSet{0, 1, 3}));

  // The fresh witness is a full voting member: data copy 1 + witness 3
  // carry on when 0 fails.
  net.SetSiteUp(0, false);
  r->OnNetworkEvent(net);
  EXPECT_TRUE(r->WouldGrant(net, 1, AccessType::kWrite));
  ASSERT_TRUE(r->Write(net, 1).ok());
}

TEST(RegeneratingTest, RetiredWitnessCannotDisturbTheLineage) {
  auto topo = SingleSegment(4);
  auto r = MakeR(topo, SiteSet{0, 1}, SiteSet{2}, /*threshold=*/1);
  NetworkState net(topo);
  ASSERT_TRUE(r->Write(net, 0).ok());
  net.SetSiteUp(2, false);
  r->OnNetworkEvent(net);  // threshold 1: regenerates immediately on 3
  ASSERT_EQ(r->witnesses(), SiteSet{3});
  ASSERT_TRUE(r->Write(net, 0).ok());

  // The retired witness restarts: it is no longer a member; its stale
  // ensemble is ignored and it never forms or joins a quorum.
  net.SetSiteUp(2, true);
  r->OnNetworkEvent(net);
  EXPECT_FALSE(r->placement().Contains(2));
  EXPECT_TRUE(r->Recover(net, 2).IsInvalidArgument());
  int granted = 0;
  for (const SiteSet& group : net.Components()) {
    if (r->WouldGrant(net, group.RankMax(), AccessType::kWrite)) ++granted;
  }
  EXPECT_EQ(granted, 1);
}

TEST(RegeneratingTest, NoRegenerationWithoutCandidateHost) {
  // Three sites total: data on 0, 1; witness on 2; nowhere to regenerate.
  auto topo = SingleSegment(3);
  auto r = MakeR(topo, SiteSet{0, 1}, SiteSet{2}, /*threshold=*/1);
  NetworkState net(topo);
  net.SetSiteUp(2, false);
  r->OnNetworkEvent(net);
  r->OnNetworkEvent(net);
  EXPECT_EQ(r->regenerations(), 0u);
  EXPECT_EQ(r->witnesses(), SiteSet{2});
  // And the witness reintegrates normally when it returns.
  net.SetSiteUp(2, true);
  r->OnNetworkEvent(net);
  EXPECT_TRUE(r->WouldGrant(net, 0, AccessType::kWrite));
}

TEST(RegeneratingTest, HostAllowListRespected) {
  auto topo = SingleSegment(5);
  RegeneratingOptions options;
  options.regeneration_threshold = 1;
  options.witness_hosts = SiteSet{4};  // only site 4 may host witnesses
  auto r = *RegeneratingVoting::Make(topo, SiteSet{0, 1}, SiteSet{2},
                                     options);
  NetworkState net(topo);
  net.SetSiteUp(2, false);
  r->OnNetworkEvent(net);
  EXPECT_EQ(r->witnesses(), SiteSet{4});  // not 3, despite higher rank
}

TEST(RegeneratingTest, RegenerationImprovesAvailabilityUnderChurn) {
  // Random churn where witness hosts die for long stretches: the
  // regenerating protocol should grant at least as often as the fixed
  // -witness one, never less.
  auto topo = SingleSegment(6);
  auto fixed_result = DynamicVoting::Make(topo, SiteSet{0, 1, 2}, [] {
    DynamicVotingOptions o;
    o.witnesses = SiteSet{2};
    return o;
  }());
  ASSERT_TRUE(fixed_result.ok());
  auto& fixed = *fixed_result;
  auto regen = MakeR(topo, SiteSet{0, 1}, SiteSet{2}, /*threshold=*/2);

  NetworkState net(topo);
  Rng rng(0x9E9E);
  int fixed_available = 0;
  int regen_available = 0;
  for (int step = 0; step < 4000; ++step) {
    SiteId s = static_cast<SiteId>(rng.NextBounded(6));
    net.SetSiteUp(s, rng.NextBernoulli(0.7));
    fixed->OnNetworkEvent(net);
    regen->OnNetworkEvent(net);
    if (fixed->IsAvailable(net)) ++fixed_available;
    if (regen->IsAvailable(net)) ++regen_available;
    // Mutual exclusion for both, every step.
    for (ConsistencyProtocol* p :
         {static_cast<ConsistencyProtocol*>(fixed.get()),
          static_cast<ConsistencyProtocol*>(regen.get())}) {
      int granted = 0;
      for (const SiteSet& group : net.Components()) {
        SiteSet copies = group.Intersect(p->placement());
        if (!copies.Empty() &&
            p->WouldGrant(net, copies.RankMax(), AccessType::kWrite)) {
          ++granted;
        }
      }
      ASSERT_LE(granted, 1) << p->name() << " step " << step;
    }
  }
  EXPECT_GT(regen->regenerations(), 0u);
  EXPECT_GE(regen_available, fixed_available);
}

}  // namespace
}  // namespace dynvote
