// Replays the worked example of Section 2.1 step by step and checks that
// every intermediate (o, v, P) ensemble matches the states printed in the
// paper. Sites: A = 0, B = 1, C = 2 (lower id = higher rank, so A > B > C
// as the paper assumes).

#include <gtest/gtest.h>

#include "core/dynamic_voting.h"
#include "core/test_topologies.h"
#include "net/network_state.h"

namespace dynvote {
namespace {

class PaperWalkthroughTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A and C must be separable by a partition ("assume that the link
    // between A and C fails"), so each site gets its own segment, joined
    // in a star around A's segment: killing the ac repeater separates A
    // and C even while B's segment is bridged.
    auto builder = Topology::Builder();
    SegmentId sa = builder.AddSegment("seg-a");
    SegmentId sb = builder.AddSegment("seg-b");
    SegmentId sc = builder.AddSegment("seg-c");
    a_ = builder.AddSite("A", sa);
    b_ = builder.AddSite("B", sb);
    c_ = builder.AddSite("C", sc);
    ab_link_ = builder.AddRepeater("ab", sa, sb);
    ac_link_ = builder.AddRepeater("ac", sa, sc);
    auto topo = builder.Build();
    ASSERT_TRUE(topo.ok());
    topo_ = topo.MoveValue();
    net_ = std::make_unique<NetworkState>(topo_);

    // The walkthrough uses plain (non-optimistic) lexicographic dynamic
    // voting driven explicitly: we call the operations ourselves, so an
    // optimistic instance gives full control over when state changes.
    auto dv = MakeODV(topo_, SiteSet{a_, b_, c_});
    ASSERT_TRUE(dv.ok());
    dv_ = dv.MoveValue();
  }

  void ExpectState(SiteId site, OpNumber o, VersionNumber v, SiteSet p) {
    const ReplicaState& s = dv_->store().state(site);
    EXPECT_EQ(s.op_number, o) << "site " << site;
    EXPECT_EQ(s.version, v) << "site " << site;
    EXPECT_EQ(s.partition_set, p) << "site " << site;
  }

  std::shared_ptr<const Topology> topo_;
  std::unique_ptr<NetworkState> net_;
  std::unique_ptr<DynamicVoting> dv_;
  SiteId a_ = -1, b_ = -1, c_ = -1;
  RepeaterId ab_link_ = -1, ac_link_ = -1;
};

TEST_F(PaperWalkthroughTest, FullScenario) {
  // Initial state: o = v = 1, P = {A, B, C} everywhere.
  for (SiteId s : {a_, b_, c_}) ExpectState(s, 1, 1, SiteSet{a_, b_, c_});

  // "After seven write operations are successfully completed": o = v = 8.
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(dv_->Write(*net_, a_).ok());
  }
  for (SiteId s : {a_, b_, c_}) ExpectState(s, 8, 8, SiteSet{a_, b_, c_});

  // "Suppose now that site B fails. Information is exchanged only at
  // access time, so there is no change in the state information."
  net_->SetSiteUp(b_, false);
  for (SiteId s : {a_, b_, c_}) ExpectState(s, 8, 8, SiteSet{a_, b_, c_});

  // "The partition consisting of sites A and C contains a majority ... it
  // will therefore become the new majority partition. After three more
  // write operations": A and C at o = v = 11, P = {A, C}; B unchanged.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(dv_->Write(*net_, c_).ok());
  }
  ExpectState(a_, 11, 11, SiteSet{a_, c_});
  ExpectState(b_, 8, 8, SiteSet{a_, b_, c_});
  ExpectState(c_, 11, 11, SiteSet{a_, c_});

  // "Assume that the link between A and C fails. Again, no information is
  // exchanged ... "
  net_->SetRepeaterUp(ac_link_, false);
  ExpectState(a_, 11, 11, SiteSet{a_, c_});
  ExpectState(c_, 11, 11, SiteSet{a_, c_});

  // "site A, by itself, constitutes the new majority partition" (A ranks
  // above C). "By the same reasoning, site C determines that it is not
  // the majority partition."
  EXPECT_TRUE(dv_->WouldGrant(*net_, a_, AccessType::kWrite));
  EXPECT_FALSE(dv_->WouldGrant(*net_, c_, AccessType::kWrite));
  EXPECT_TRUE(dv_->Write(*net_, c_).IsNoQuorum());

  // "Four more write operations would leave the file in the state"
  // A: o = v = 15, P = {A}; B and C unchanged.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(dv_->Write(*net_, a_).ok());
  }
  ExpectState(a_, 15, 15, SiteSet{a_});
  ExpectState(b_, 8, 8, SiteSet{a_, b_, c_});
  ExpectState(c_, 11, 11, SiteSet{a_, c_});
}

TEST_F(PaperWalkthroughTest, ReadsBumpOperationNumberOnly) {
  // The operation/version split of Section 2.1: reads advance o (so the
  // partition set can shrink without forcing file copies) but not v.
  ASSERT_TRUE(dv_->Read(*net_, b_).ok());
  for (SiteId s : {a_, b_, c_}) ExpectState(s, 2, 1, SiteSet{a_, b_, c_});
}

TEST_F(PaperWalkthroughTest, RecoveryReintegratesStaleCopy) {
  // Continue the scenario: B restarts while A and C hold the majority.
  net_->SetSiteUp(b_, false);
  ASSERT_TRUE(dv_->Write(*net_, a_).ok());  // P shrinks to {A, C}
  net_->SetSiteUp(b_, true);

  // B alone is not the majority partition, so its recovery must fail
  // while it cannot reach A or C.
  net_->SetRepeaterUp(ab_link_, false);
  EXPECT_TRUE(dv_->Recover(*net_, b_).IsNoQuorum());

  // Once reconnected, RECOVER copies the file and rejoins: partition set
  // becomes S ∪ {B} = {A, B, C}, version unchanged, o bumped.
  net_->SetRepeaterUp(ab_link_, true);
  ASSERT_TRUE(dv_->Recover(*net_, b_).ok());
  ExpectState(b_, 3, 2, SiteSet{a_, b_, c_});
  ExpectState(a_, 3, 2, SiteSet{a_, b_, c_});
  EXPECT_EQ(dv_->counter()->count(MessageKind::kFileCopy), 1u);
}

}  // namespace
}  // namespace dynvote
