// Golden-sequence test: the Section 2.1 walkthrough produces a known,
// exact sequence of quorum decisions. Pinning the trace guards the whole
// decision pipeline (evaluation, tie-break, commit bookkeeping, logging)
// against silent behavioural drift.

#include <gtest/gtest.h>

#include "core/dynamic_voting.h"
#include "core/test_topologies.h"
#include "net/network_state.h"

namespace dynvote {
namespace {

TEST(GoldenTraceTest, WalkthroughDecisionSequence) {
  // A(0), B(1), C(2) on separate segments star-bridged through A.
  auto builder = Topology::Builder();
  SegmentId sa = builder.AddSegment("a");
  SegmentId sb = builder.AddSegment("b");
  SegmentId sc = builder.AddSegment("c");
  builder.AddSite("A", sa);
  builder.AddSite("B", sb);
  builder.AddSite("C", sc);
  builder.AddRepeater("ab", sa, sb);
  RepeaterId ac = builder.AddRepeater("ac", sa, sc);
  auto topo = builder.Build().MoveValue();

  auto odv = MakeODV(topo, SiteSet{0, 1, 2}).MoveValue();
  DecisionLog log;
  odv->set_decision_log(&log);
  NetworkState net(topo);

  ASSERT_TRUE(odv->Write(net, 0).ok());       // full quorum
  net.SetSiteUp(1, false);                    // B fails
  ASSERT_TRUE(odv->Write(net, 2).ok());       // {A, C} majority
  net.SetRepeaterUp(ac, false);               // A-C link fails
  ASSERT_TRUE(odv->Write(net, 0).ok());       // A wins the tie
  ASSERT_TRUE(odv->Write(net, 2).IsNoQuorum());  // C loses it
  net.SetRepeaterUp(ac, true);
  ASSERT_TRUE(odv->Recover(net, 2).ok());     // C reintegrates
  net.SetSiteUp(1, true);
  ASSERT_TRUE(odv->Recover(net, 1).ok());     // B reintegrates, copies

  const std::string expected =
      "#1 ODV write@0 GRANTED R={0, 1, 2} Q={0, 1, 2} S={0, 1, 2} "
      "counted={0, 1, 2} Pm={0, 1, 2}\n"
      "#2 ODV write@2 GRANTED R={0, 2} Q={0, 2} S={0, 2} "
      "counted={0, 2} Pm={0, 1, 2}\n"
      "#3 ODV write@0 GRANTED (tie-break) R={0} Q={0} S={0} "
      "counted={0} Pm={0, 2}\n"
      "#4 ODV write@2 DENIED R={2} Q={2} S={2} "
      "counted={2} Pm={0, 2}\n"
      "#5 ODV recover@2 GRANTED R={0, 2} Q={0} S={0} "
      "counted={0} Pm={0}\n"
      "#6 ODV recover@1 GRANTED R={0, 1, 2} Q={0, 2} S={0, 2} "
      "counted={0, 2} Pm={0, 2}\n";
  EXPECT_EQ(log.ToString(), expected);

  EXPECT_EQ(log.granted_count(), 5u);
  EXPECT_EQ(log.denied_count(), 1u);

  // The CSV rendering carries the same rows.
  std::string csv = log.ToCsv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7);  // header + 6
  EXPECT_NE(csv.find("3,ODV,write,0,1,1"), std::string::npos)
      << "tie-break flag column\n" << csv;
}

}  // namespace
}  // namespace dynvote
