// Regression tests for the WouldGrant memoization (ConsistencyProtocol::
// CachedWouldGrant): the cache must be invalidated by every mutation path
// — Commit, Reset, mutable_state handouts (all three move the store
// epoch) and network changes (which change the component mask) — so a
// cached answer can never diverge from a fresh WouldGrant call.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_voting.h"
#include "core/registry.h"
#include "model/site_profile.h"
#include "net/network_state.h"
#include "repl/replica_store.h"
#include "util/rng.h"

namespace dynvote {
namespace {

std::shared_ptr<const Topology> SingleSegmentTopology(int num_sites) {
  auto builder = Topology::Builder();
  SegmentId seg = builder.AddSegment("lan");
  for (int i = 0; i < num_sites; ++i) {
    builder.AddSite("s" + std::to_string(i), seg);
  }
  auto topo = builder.Build();
  EXPECT_TRUE(topo.ok());
  return topo.MoveValue();
}

// Every mutation path of the store moves the epoch — the invalidation
// key CachedWouldGrant relies on.
TEST(QuorumCacheTest, StoreEpochMovesOnEveryMutationPath) {
  auto store = ReplicaStore::Make(SiteSet{0, 1, 2});
  ASSERT_TRUE(store.ok());
  std::uint64_t epoch = store->epoch();

  store->Commit(SiteSet{0, 1, 2}, 2, 2, SiteSet{0, 1, 2});
  EXPECT_GT(store->epoch(), epoch);
  epoch = store->epoch();

  // Conservative by design: every handout counts as a mutation, whether
  // or not the caller writes through it.
  (void)store->mutable_state(1);
  EXPECT_GT(store->epoch(), epoch);
  epoch = store->epoch();

  store->Reset();
  EXPECT_GT(store->epoch(), epoch);
}

// Reset returns the store to the initial partition set; a cached grant
// computed against the pre-Reset state must not survive. The network is
// held fixed so the component mask — the cache key — is identical before
// and after, making a stale entry the only way this test can fail.
TEST(QuorumCacheTest, ResetInvalidatesCachedGrant) {
  auto topology = SingleSegmentTopology(3);
  auto ldv = MakeLDV(topology, SiteSet{0, 1, 2});
  ASSERT_TRUE(ldv.ok());
  DynamicVoting* p = ldv->get();
  NetworkState net(topology);

  // Shrink the majority block to {0} via two instantaneous refreshes.
  net.SetSiteUp(2, false);
  p->OnNetworkEvent(net);
  net.SetSiteUp(1, false);
  p->OnNetworkEvent(net);
  ASSERT_TRUE(p->CachedWouldGrant(net, 0, AccessType::kWrite));  // primes

  // Back to partition set {0, 1, 2}: site 0 alone is 1 of 3 — no quorum.
  p->Reset();
  EXPECT_FALSE(p->CachedWouldGrant(net, 0, AccessType::kWrite));
  EXPECT_FALSE(p->WouldGrant(net, 0, AccessType::kWrite));
}

// A network change moves the origin into a different (smaller) component;
// the cached grant for the old component must not be returned for it.
TEST(QuorumCacheTest, NetworkChangeInvalidatesCachedGrant) {
  auto topology = SingleSegmentTopology(3);
  auto ldv = MakeLDV(topology, SiteSet{0, 1, 2});
  ASSERT_TRUE(ldv.ok());
  DynamicVoting* p = ldv->get();
  NetworkState net(topology);

  ASSERT_TRUE(p->CachedWouldGrant(net, 2, AccessType::kWrite));  // primes

  // Optimistic-style setup: take sites 0 and 1 down *without* letting the
  // protocol refresh, so the replica state still says partition {0,1,2}.
  net.SetSiteUp(0, false);
  net.SetSiteUp(1, false);
  EXPECT_FALSE(p->CachedWouldGrant(net, 2, AccessType::kWrite));
  EXPECT_FALSE(p->WouldGrant(net, 2, AccessType::kWrite));
}

// Differential fuzz over every registered protocol on the paper network:
// random site/repeater flips, accesses (which Commit), recoveries, resets
// and refreshes, asserting after every step that the memoized answer
// equals a fresh WouldGrant for every live origin and both access types.
// Any missed invalidation path shows up as a divergence.
TEST(QuorumCacheTest, CachedAnswerNeverDivergesFromWouldGrant) {
  auto network = MakePaperNetwork();
  ASSERT_TRUE(network.ok());
  std::shared_ptr<const Topology> topology = network->topology;
  const SiteSet placement{0, 1, 3, 5, 7};
  const int num_sites = topology->num_sites();
  const int num_repeaters = topology->num_repeaters();

  Rng rng(0xCACE);
  for (const std::string& name : KnownProtocolNames()) {
    auto protocol = MakeProtocolByName(name, topology, placement);
    ASSERT_TRUE(protocol.ok()) << name;
    ConsistencyProtocol* p = protocol->get();
    NetworkState net(topology);

    for (int step = 0; step < 400; ++step) {
      double coin = rng.NextDouble();
      if (coin < 0.35) {
        SiteId s = static_cast<SiteId>(rng.NextBounded(num_sites));
        net.SetSiteUp(s, rng.NextBernoulli(0.7));
        p->OnNetworkEvent(net);
      } else if (coin < 0.45 && num_repeaters > 0) {
        RepeaterId r =
            static_cast<RepeaterId>(rng.NextBounded(num_repeaters));
        net.SetRepeaterUp(r, rng.NextBernoulli(0.7));
        p->OnNetworkEvent(net);
      } else if (coin < 0.75) {
        AccessType type = rng.NextBernoulli(0.5) ? AccessType::kWrite
                                                 : AccessType::kRead;
        (void)p->UserAccess(net, type);  // Commit path on grant
      } else if (coin < 0.85) {
        SiteId s = placement.RankMax();
        for (SiteId candidate : placement) {
          if (rng.NextBernoulli(0.3)) s = candidate;
        }
        if (net.IsSiteUp(s)) (void)p->Recover(net, s);
      } else if (coin < 0.9) {
        p->Reset();
      } else {
        net.AllUp();
        p->OnNetworkEvent(net);
      }

      for (SiteId s = 0; s < num_sites; ++s) {
        if (!net.IsSiteUp(s)) continue;
        for (AccessType type : {AccessType::kRead, AccessType::kWrite}) {
          ASSERT_EQ(p->CachedWouldGrant(net, s, type),
                    p->WouldGrant(net, s, type))
              << name << " diverged at step " << step << " origin " << s;
        }
      }
    }
  }
}

}  // namespace
}  // namespace dynvote
