// Bounded-exhaustive model checking: enumerate EVERY sequence of actions
// (site crash/restart, repeater toggle, quorum write, quorum read-check,
// recovery) up to a fixed depth on small universes, replaying each
// sequence from the initial state, and assert after every step that
//
//   (1) at most one group of communicating sites is granted (mutual
//       exclusion), for partition-safe protocols;
//   (2) every granted read observes the most recently committed write
//       (one-copy serialisability), for partition-safe protocols;
//   (3) for the topological variants (documented fork hazard), reads may
//       be stale but must never observe a value that was never committed.
//
// Unlike the randomized property tests, failures here come with a
// complete, minimal-by-depth action sequence.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/test_topologies.h"
#include "kv/cluster.h"

namespace dynvote {
namespace {

struct ModelCheckCase {
  std::string protocol;
  std::string topology;  // "single3" or "pairs"
  bool strict;           // enforce (1) and (2); otherwise only (3)
  int depth;
};

void PrintTo(const ModelCheckCase& c, std::ostream* os) {
  *os << c.protocol << " on " << c.topology << " depth " << c.depth
      << (c.strict ? " (strict)" : " (loose)");
}

std::string CaseName(const ::testing::TestParamInfo<ModelCheckCase>& info) {
  std::string name = info.param.protocol + "_" + info.param.topology;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class ModelCheckTest : public ::testing::TestWithParam<ModelCheckCase> {};

TEST_P(ModelCheckTest, ExhaustiveActionSequences) {
  const ModelCheckCase& c = GetParam();
  const bool pairs = c.topology == "pairs";
  auto topo = pairs ? testing_util::TwoPairSegments()
                    : testing_util::SingleSegment(3);
  const int num_sites = topo->num_sites();
  SiteSet placement = SiteSet::FirstN(num_sites);

  // Action alphabet: toggle each site, toggle the repeater (pairs only),
  // write, read-check, recover-all.
  const int num_actions = num_sites + (pairs ? 1 : 0) + 3;

  std::uint64_t total_sequences = 1;
  for (int i = 0; i < c.depth; ++i) total_sequences *= num_actions;

  std::uint64_t commits_seen = 0;
  std::uint64_t reads_checked = 0;

  for (std::uint64_t seq = 0; seq < total_sequences; ++seq) {
    auto cluster_result = KvCluster::Make(topo, placement, c.protocol);
    ASSERT_TRUE(cluster_result.ok());
    KvCluster& cluster = **cluster_result;

    std::vector<std::string> committed;  // committed values, in order
    int counter = 0;
    std::uint64_t rest = seq;

    for (int step = 0; step < c.depth; ++step) {
      int action = static_cast<int>(rest % num_actions);
      rest /= num_actions;

      auto context = [&]() {
        std::string s = c.protocol + " sequence";
        std::uint64_t r = seq;
        for (int i = 0; i < c.depth; ++i) {
          s += " " + std::to_string(r % num_actions);
          r /= num_actions;
        }
        return s + " at step " + std::to_string(step);
      };

      if (action < num_sites) {
        SiteId s = action;
        if (cluster.net().IsSiteUp(s)) {
          cluster.KillSite(s);
        } else {
          cluster.RestartSite(s);
        }
      } else if (pairs && action == num_sites) {
        if (cluster.net().IsRepeaterUp(0)) {
          cluster.KillRepeater(0);
        } else {
          cluster.RestartRepeater(0);
        }
      } else {
        int op = action - num_sites - (pairs ? 1 : 0);
        if (op == 0) {  // write
          std::string value = "v" + std::to_string(counter++);
          for (SiteId s = 0; s < num_sites; ++s) {
            if (!cluster.net().IsSiteUp(s)) continue;
            Status st = cluster.Put(s, "k", value);
            ASSERT_TRUE(st.ok() || st.IsNoQuorum()) << context();
            if (st.ok()) {
              committed.push_back(value);
              ++commits_seen;
              break;
            }
          }
        } else if (op == 1) {  // read-check
          for (SiteId s = 0; s < num_sites; ++s) {
            if (!cluster.net().IsSiteUp(s)) continue;
            auto got = cluster.Get(s, "k");
            if (got.status().IsNoQuorum() ||
                got.status().IsUnavailable()) {
              continue;
            }
            ++reads_checked;
            if (c.strict) {
              if (committed.empty()) {
                ASSERT_TRUE(got.status().IsNotFound()) << context();
              } else {
                ASSERT_TRUE(got.ok()) << got.status() << " " << context();
                ASSERT_EQ(*got, committed.back()) << context();
              }
            } else if (got.ok()) {
              // Loose mode: the value must at least have been committed
              // at some point — never fabricated.
              ASSERT_TRUE(std::find(committed.begin(), committed.end(),
                                    *got) != committed.end())
                  << context();
            }
          }
        } else {  // recover-all
          for (SiteId s = 0; s < num_sites; ++s) {
            if (!cluster.net().IsSiteUp(s)) continue;
            Status st = cluster.TryRecover(s);
            ASSERT_TRUE(st.ok() || st.IsNoQuorum()) << context();
          }
        }
      }

      // Invariant (1): mutual exclusion, checked after every action.
      if (c.strict) {
        int granted = 0;
        for (const SiteSet& group : cluster.net().Components()) {
          if (cluster.store().protocol()->WouldGrant(
                  cluster.net(), group.RankMax(), AccessType::kWrite)) {
            ++granted;
          }
        }
        ASSERT_LE(granted, 1) << context();
      }
    }
  }
  // The exploration must have exercised real work.
  EXPECT_GT(commits_seen, total_sequences / 10);
  EXPECT_GT(reads_checked, 0u);
}

std::vector<ModelCheckCase> MakeCases() {
  return {
      {"MCV", "single3", true, 6},  {"DV", "single3", true, 6},
      {"JM-DV", "single3", true, 6},
      {"LDV", "single3", true, 6},  {"ODV", "single3", true, 6},
      {"TDV", "single3", false, 6}, {"OTDV", "single3", false, 6},
      {"LDV", "pairs", true, 5},    {"ODV", "pairs", true, 5},
      {"JM-DV", "pairs", true, 5},
      {"MCV", "pairs", true, 5},    {"DV", "pairs", true, 5},
  };
}

INSTANTIATE_TEST_SUITE_P(Bounded, ModelCheckTest,
                         ::testing::ValuesIn(MakeCases()), CaseName);

}  // namespace
}  // namespace dynvote
