// Interaction of the two quorum-rule generalisations: per-site vote
// weights combined with the topological closure (weighted TDV, the
// paper's two future-work directions applied together).

#include <gtest/gtest.h>

#include "core/dynamic_voting.h"
#include "core/test_topologies.h"
#include "net/network_state.h"

namespace dynvote {
namespace {

using testing_util::Section3Network;

std::unique_ptr<DynamicVoting> MakeWeightedTdv(
    std::shared_ptr<const Topology> topo, SiteSet placement,
    std::vector<int> weights) {
  DynamicVotingOptions options;
  options.topological = true;
  options.weights = VoteWeights::Make(std::move(weights)).MoveValue();
  auto dv = DynamicVoting::Make(std::move(topo), placement, options);
  EXPECT_TRUE(dv.ok()) << dv.status();
  return dv.MoveValue();
}

TEST(WeightedTopologicalTest, CarriedVotesCountWithTheirWeights) {
  // A(0), B(1) on alpha with weights 1 and 3; C(2) on gamma with 2.
  // Block = {A, B, C}, total 6. A alone carries B: T = {A, B} = 4 > 3.
  auto topo = Section3Network();
  auto dv = MakeWeightedTdv(topo, SiteSet{0, 1, 2}, {1, 3, 2});
  EXPECT_EQ(dv->name(), "WTDV");
  NetworkState net(topo);
  net.SetSiteUp(1, false);
  net.SetRepeaterUp(0, false);  // C partitioned away
  dv->OnNetworkEvent(net);
  EXPECT_TRUE(dv->WouldGrant(net, 0, AccessType::kWrite));
  // C alone: weight 2 of 6, and it cannot carry anyone: denied.
  EXPECT_FALSE(dv->WouldGrant(net, 2, AccessType::kWrite));
}

TEST(WeightedTopologicalTest, HeavySiteAloneOnItsSegmentGainsNothing) {
  // Give the cross-segment singleton C weight 3 (of 5): C alone is a
  // strict weighted majority, carried votes irrelevant — and safe,
  // because the others can never outvote it.
  auto topo = Section3Network();
  auto dv = MakeWeightedTdv(topo, SiteSet{0, 1, 2}, {1, 1, 3});
  NetworkState net(topo);
  net.SetRepeaterUp(0, false);
  dv->OnNetworkEvent(net);
  EXPECT_TRUE(dv->WouldGrant(net, 2, AccessType::kWrite));
  // A carrying B gives weight 2 of 5: denied.
  EXPECT_FALSE(dv->WouldGrant(net, 0, AccessType::kWrite));
  // Never two granted groups at once.
  int granted = 0;
  for (const SiteSet& group : net.Components()) {
    SiteSet copies = group.Intersect(dv->placement());
    if (!copies.Empty() &&
        dv->WouldGrant(net, copies.RankMax(), AccessType::kWrite)) {
      ++granted;
    }
  }
  EXPECT_EQ(granted, 1);
}

TEST(WeightedTopologicalTest, WeightedTieUsesQNotT) {
  // Weighted tie: the tie-winning element must be in Q (reachable and
  // current), exactly as in the unweighted Figure 5 condition.
  auto topo = Section3Network();
  // A=2, B=1, C=1: total 4. Block {A,B,C}. C alone: weight 1 < 2. B
  // carrying A: T = {A, B} weight 3 > 2: granted. A down + B down: C has
  // 1 of 4: denied.
  auto dv = MakeWeightedTdv(topo, SiteSet{0, 1, 2}, {2, 1, 1});
  NetworkState net(topo);
  net.SetSiteUp(0, false);
  dv->OnNetworkEvent(net);
  EXPECT_TRUE(dv->WouldGrant(net, 1, AccessType::kWrite));
  net.SetSiteUp(1, false);
  dv->OnNetworkEvent(net);
  EXPECT_FALSE(dv->WouldGrant(net, 2, AccessType::kWrite));
}

TEST(WeightedTopologicalTest, WitnessWeightAndTopologyCompose) {
  // A data copy pair on alpha, a *witness* on gamma with weight 2: the
  // witness's votes break what would otherwise be a 2-2 structure, and
  // the alpha pair still enjoys intra-segment vote carrying.
  auto topo = Section3Network();
  DynamicVotingOptions options;
  options.topological = true;
  options.witnesses = SiteSet{2};
  options.weights = VoteWeights::Make({1, 1, 2}).MoveValue();
  auto dv = DynamicVoting::Make(topo, SiteSet{0, 1, 2}, options)
                .MoveValue();
  EXPECT_EQ(dv->name(), "WTDV+wit");
  NetworkState net(topo);
  // Witness partitioned away: A carries B... T = {A, B} = 2 = half of 4:
  // tie, max(Pm) = A in Q: granted.
  net.SetRepeaterUp(0, false);
  dv->OnNetworkEvent(net);
  EXPECT_TRUE(dv->WouldGrant(net, 0, AccessType::kWrite));
  // The witness side alone has weight 2 = half but no data copy: denied.
  EXPECT_FALSE(dv->WouldGrant(net, 2, AccessType::kWrite));
}

}  // namespace
}  // namespace dynvote
