#include "core/quorum.h"

#include <gtest/gtest.h>

#include "core/test_topologies.h"

namespace dynvote {
namespace {

using testing_util::Section3Network;

ReplicaStore MustMake(SiteSet placement) {
  auto store = ReplicaStore::Make(placement);
  EXPECT_TRUE(store.ok());
  return store.MoveValue();
}

TEST(VoteWeightsTest, DefaultIsUniform) {
  VoteWeights w;
  EXPECT_TRUE(w.IsUniform());
  EXPECT_EQ(w.WeightOf(5), 1);
  EXPECT_EQ(w.WeightOf(SiteSet{0, 3, 7}), 3);
}

TEST(VoteWeightsTest, ExplicitWeights) {
  auto w = VoteWeights::Make({2, 1, 1});
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(w->IsUniform());
  EXPECT_EQ(w->WeightOf(0), 2);
  EXPECT_EQ(w->WeightOf(2), 1);
  EXPECT_EQ(w->WeightOf(SiteSet{0, 1}), 3);
}

TEST(VoteWeightsTest, RejectsNegative) {
  EXPECT_TRUE(VoteWeights::Make({1, -1}).status().IsInvalidArgument());
}

TEST(VoteWeightsTest, CoversTracksTableLength) {
  auto w = VoteWeights::Make({2, 1, 1});
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w->Covers(SiteSet{0, 1, 2}));
  EXPECT_FALSE(w->Covers(SiteSet{0, 3}));
  EXPECT_TRUE(w->Covers(SiteSet{}));
  EXPECT_TRUE(VoteWeights().Covers(SiteSet{0, 63}));  // uniform covers all
}

TEST(VoteWeightsTest, WeightBeyondTableIsAContractViolation) {
  // Historically WeightOf silently returned 1 past the end of the table,
  // which let an accidentally short table flip grant/deny decisions (see
  // ShortWeightTableFlipRegression). It is now a CHECK.
  auto w = VoteWeights::Make({2, 1, 1});
  ASSERT_TRUE(w.ok());
  EXPECT_DEATH(w->WeightOf(9), "no entry");
  EXPECT_DEATH(w->WeightOf(SiteSet{0, 9}), "no entry");
}

TEST(VoteWeightsTest, MakePaddedFillsWithOnes) {
  auto w = VoteWeights::MakePadded({3, 2}, 4);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->WeightOf(0), 3);
  EXPECT_EQ(w->WeightOf(1), 2);
  EXPECT_EQ(w->WeightOf(2), 1);
  EXPECT_EQ(w->WeightOf(3), 1);
  EXPECT_TRUE(w->Covers(SiteSet{0, 1, 2, 3}));
  EXPECT_TRUE(
      VoteWeights::MakePadded({1, 2, 3}, 2).status().IsInvalidArgument());
  EXPECT_TRUE(
      VoteWeights::MakePadded({1, -2}, 4).status().IsInvalidArgument());
}

TEST(VoteWeightsTest, ShortWeightTableFlipRegression) {
  // The silent weight-1 default was not just cosmetic: with intended
  // weights {1, 1, 3, 3} over placement {0, 1, 2, 3}, a table
  // accidentally one entry short ({1, 1, 3}, old behaviour: site 3
  // defaults to 1) gives group {1, 2} 4 votes of a 6-vote block —
  // GRANTED — where the intended table gives 4 of 8 — an exact tie,
  // DENIED without a tie-break rule.
  ReplicaStore store = MustMake(SiteSet{0, 1, 2, 3});

  auto intended = VoteWeights::Make({1, 1, 3, 3});
  ASSERT_TRUE(intended.ok());
  QuorumDecision correct = EvaluateDynamicQuorum(
      store, SiteSet{1, 2}, TieBreak::kNone, nullptr, *intended);
  EXPECT_FALSE(correct.granted);

  auto padded_as_before = VoteWeights::MakePadded({1, 1, 3}, 4);
  ASSERT_TRUE(padded_as_before.ok());
  QuorumDecision flipped = EvaluateDynamicQuorum(
      store, SiteSet{1, 2}, TieBreak::kNone, nullptr, *padded_as_before);
  EXPECT_TRUE(flipped.granted);  // what the old silent default produced
}

TEST(QuorumTest, StrictMajorityGrants) {
  ReplicaStore store = MustMake(SiteSet{0, 1, 2});
  QuorumDecision d =
      EvaluateDynamicQuorum(store, SiteSet{0, 1}, TieBreak::kNone);
  EXPECT_TRUE(d.granted);
  EXPECT_FALSE(d.by_tie_break);
  EXPECT_EQ(d.quorum_set, (SiteSet{0, 1}));
  EXPECT_EQ(d.prev_partition, (SiteSet{0, 1, 2}));
}

TEST(QuorumTest, MinorityDenied) {
  ReplicaStore store = MustMake(SiteSet{0, 1, 2});
  QuorumDecision d =
      EvaluateDynamicQuorum(store, SiteSet{2}, TieBreak::kLexicographic);
  EXPECT_FALSE(d.granted);
}

TEST(QuorumTest, NoCopiesReachableDenied) {
  ReplicaStore store = MustMake(SiteSet{0, 1, 2});
  QuorumDecision d =
      EvaluateDynamicQuorum(store, SiteSet{5, 6}, TieBreak::kLexicographic);
  EXPECT_FALSE(d.granted);
  EXPECT_TRUE(d.reachable_copies.Empty());
}

TEST(QuorumTest, TieDeniedWithoutTieBreak) {
  ReplicaStore store = MustMake(SiteSet{0, 1});
  QuorumDecision d =
      EvaluateDynamicQuorum(store, SiteSet{0}, TieBreak::kNone);
  EXPECT_FALSE(d.granted);
}

TEST(QuorumTest, TieGrantedToMaxElementSide) {
  // The paper's running example: P = {A, C}, A > C; A alone is the
  // majority partition, C alone is not.
  ReplicaStore store = MustMake(SiteSet{0, 2});
  QuorumDecision a =
      EvaluateDynamicQuorum(store, SiteSet{0}, TieBreak::kLexicographic);
  EXPECT_TRUE(a.granted);
  EXPECT_TRUE(a.by_tie_break);
  QuorumDecision c =
      EvaluateDynamicQuorum(store, SiteSet{2}, TieBreak::kLexicographic);
  EXPECT_FALSE(c.granted);
}

TEST(QuorumTest, StaleSitesExcludedFromQ) {
  // Site 2 missed the last operation (lower o): it may be reachable but
  // contributes nothing to the quorum count.
  ReplicaStore store = MustMake(SiteSet{0, 1, 2});
  store.Commit(SiteSet{0, 1}, 2, 1, SiteSet{0, 1});
  QuorumDecision d =
      EvaluateDynamicQuorum(store, SiteSet{1, 2}, TieBreak::kLexicographic);
  EXPECT_EQ(d.quorum_set, SiteSet{1});
  EXPECT_EQ(d.prev_partition, (SiteSet{0, 1}));
  // |Q| = 1 = |Pm|/2 but max(Pm) = 0 is not in Q.
  EXPECT_FALSE(d.granted);
}

TEST(QuorumTest, StaleMajorityCannotOverrideNewLineage) {
  // P advanced to {0, 1}; sites 2, 3 still hold the original {0,1,2,3}.
  // Even all of {2, 3} together must not be granted: Q is read from the
  // stale lineage, which requires its own majority including max rules.
  ReplicaStore store = MustMake(SiteSet{0, 1, 2, 3});
  store.Commit(SiteSet{0, 1}, 5, 3, SiteSet{0, 1});
  QuorumDecision d =
      EvaluateDynamicQuorum(store, SiteSet{2, 3}, TieBreak::kLexicographic);
  EXPECT_EQ(d.prev_partition, (SiteSet{0, 1, 2, 3}));
  EXPECT_EQ(d.quorum_set, (SiteSet{2, 3}));
  EXPECT_FALSE(d.granted);  // 2 = half of 4 but max (0) not in Q
}

TEST(QuorumTest, CurrentSetTracksVersions) {
  ReplicaStore store = MustMake(SiteSet{0, 1, 2});
  store.mutable_state(0)->version = 9;
  store.mutable_state(1)->version = 9;
  QuorumDecision d = EvaluateDynamicQuorum(store, SiteSet{0, 1, 2},
                                           TieBreak::kLexicographic);
  EXPECT_EQ(d.current_set, (SiteSet{0, 1}));
}

TEST(QuorumTest, RepresentativeIsInQ) {
  ReplicaStore store = MustMake(SiteSet{0, 1, 2});
  store.Commit(SiteSet{1, 2}, 4, 2, SiteSet{1, 2});
  QuorumDecision d = EvaluateDynamicQuorum(store, SiteSet{0, 1, 2},
                                           TieBreak::kLexicographic);
  EXPECT_TRUE(d.quorum_set.Contains(d.representative));
  EXPECT_EQ(d.prev_partition, (SiteSet{1, 2}));
}

TEST(QuorumTest, WeightedMajority) {
  // Site 0 carries 3 votes, sites 1 and 2 one each: site 0 alone is a
  // strict weighted majority of the initial block.
  ReplicaStore store = MustMake(SiteSet{0, 1, 2});
  auto w = VoteWeights::Make({3, 1, 1});
  ASSERT_TRUE(w.ok());
  QuorumDecision d = EvaluateDynamicQuorum(store, SiteSet{0},
                                           TieBreak::kNone, nullptr, *w);
  EXPECT_TRUE(d.granted);
  QuorumDecision d2 = EvaluateDynamicQuorum(store, SiteSet{1, 2},
                                            TieBreak::kNone, nullptr, *w);
  EXPECT_FALSE(d2.granted);
}

TEST(QuorumTest, WeightedTieUsesMaxElement) {
  // Weights 1,1,2: {0,1} and {2} are both exactly half (2 of 4).
  ReplicaStore store = MustMake(SiteSet{0, 1, 2});
  auto w = VoteWeights::Make({1, 1, 2});
  ASSERT_TRUE(w.ok());
  QuorumDecision d01 = EvaluateDynamicQuorum(
      store, SiteSet{0, 1}, TieBreak::kLexicographic, nullptr, *w);
  EXPECT_TRUE(d01.granted);
  EXPECT_TRUE(d01.by_tie_break);
  QuorumDecision d2 = EvaluateDynamicQuorum(
      store, SiteSet{2}, TieBreak::kLexicographic, nullptr, *w);
  EXPECT_FALSE(d2.granted);
}

TEST(QuorumTest, WeightedTieUnderPlainAndTopologicalRules) {
  // Non-uniform weights {1, 2, 2, 1} over Section 3's network (A, B on
  // segment alpha; C on gamma; D on delta): total weight 6, and both
  // {A, B} and {C, D} weigh exactly half. The lexicographic rule must
  // resolve the 2*w(counted) == w(Pm) branch identically under the plain
  // and topological vote counts — only the composition of the counted
  // set differs.
  auto topo = Section3Network();
  auto w = VoteWeights::Make({1, 2, 2, 1});
  ASSERT_TRUE(w.ok());
  ReplicaStore store = MustMake(SiteSet{0, 1, 2, 3});

  // Plain rule, group {A, B}: counted = Q = {0, 1}, weight 3 of 6, and
  // max(Pm) = A is reachable: granted by tie-break.
  QuorumDecision ab = EvaluateDynamicQuorum(
      store, SiteSet{0, 1}, TieBreak::kLexicographic, nullptr, *w);
  EXPECT_TRUE(ab.granted);
  EXPECT_TRUE(ab.by_tie_break);
  // Plain rule, group {C, D}: also weight 3 of 6 but without max(Pm):
  // denied — and DV (no tie-break) denies both halves.
  QuorumDecision cd = EvaluateDynamicQuorum(
      store, SiteSet{2, 3}, TieBreak::kLexicographic, nullptr, *w);
  EXPECT_FALSE(cd.granted);
  QuorumDecision dv = EvaluateDynamicQuorum(store, SiteSet{0, 1},
                                            TieBreak::kNone, nullptr, *w);
  EXPECT_FALSE(dv.granted);

  // Topological rule, group {A} alone: A carries segment-mate B, so the
  // counted set is {0, 1} with the same half-weight tie, resolved the
  // same way.
  QuorumDecision a = EvaluateDynamicQuorum(
      store, SiteSet{0}, TieBreak::kLexicographic, topo.get(), *w);
  EXPECT_EQ(a.counted_set, (SiteSet{0, 1}));
  EXPECT_TRUE(a.granted);
  EXPECT_TRUE(a.by_tie_break);
  // Topological rule, group {C, D}: no cross-segment carry, tie without
  // max(Pm): denied.
  QuorumDecision tcd = EvaluateDynamicQuorum(
      store, SiteSet{2, 3}, TieBreak::kLexicographic, topo.get(), *w);
  EXPECT_EQ(tcd.counted_set, (SiteSet{2, 3}));
  EXPECT_FALSE(tcd.granted);
}

TEST(QuorumTest, TopologicalClosureCarriesSegmentMates) {
  // Section 3's motivating case: copies at A, B (same segment alpha).
  // B alone can carry A's vote when A fails, because a live segment
  // never partitions.
  auto topo = Section3Network();
  ReplicaStore store = MustMake(SiteSet{0, 1});  // A, B
  QuorumDecision d = EvaluateDynamicQuorum(
      store, SiteSet{1}, TieBreak::kLexicographic, topo.get());
  EXPECT_EQ(d.counted_set, (SiteSet{0, 1}));  // B plus carried A
  EXPECT_TRUE(d.granted);
  EXPECT_FALSE(d.by_tie_break);
}

TEST(QuorumTest, TopologicalClosureDoesNotCrossSegments) {
  // Copies at A (alpha) and C (gamma): C cannot carry A's vote.
  auto topo = Section3Network();
  ReplicaStore store = MustMake(SiteSet{0, 2});
  QuorumDecision d = EvaluateDynamicQuorum(
      store, SiteSet{2}, TieBreak::kLexicographic, topo.get());
  EXPECT_EQ(d.counted_set, SiteSet{2});
  EXPECT_FALSE(d.granted);  // 1 = half of 2, max (A=0) not in Q
}

TEST(QuorumTest, TopologicalTieStillRequiresMaxInQ) {
  // Figure 5's tie condition reads max(Pm) ∈ Q even in the topological
  // algorithm. Copies A,B on alpha and C,D on gamma/delta: group {C, D}
  // counts only itself (2 = half of 4) and lacks the max element.
  auto topo = Section3Network();
  ReplicaStore store = MustMake(SiteSet{0, 1, 2, 3});
  QuorumDecision d = EvaluateDynamicQuorum(
      store, SiteSet{2, 3}, TieBreak::kLexicographic, topo.get());
  EXPECT_EQ(d.counted_set, (SiteSet{2, 3}));
  EXPECT_FALSE(d.granted);
  // Group {A} carries B (same segment): 2 = half, with max in Q: granted.
  QuorumDecision da = EvaluateDynamicQuorum(
      store, SiteSet{0}, TieBreak::kLexicographic, topo.get());
  EXPECT_EQ(da.counted_set, (SiteSet{0, 1}));
  EXPECT_TRUE(da.granted);
  EXPECT_TRUE(da.by_tie_break);
}

TEST(QuorumTest, TopologicalStaleCarrierIsGrantedLiterally) {
  // A second face of the topological fork hazard (see
  // topological_unsoundness_test.cc): B, a *stale* member, evaluates its
  // own out-of-date Pm = {A,B,C}, carries down segment-mate A, and is
  // granted with T = {A, B} — a majority of the stale block — even though
  // the true lineage moved on to {A, C}. The literal Figure 5 rule has no
  // way to see that; we implement it literally and document the hazard.
  auto topo = Section3Network();
  ReplicaStore store = MustMake(SiteSet{0, 1, 2});  // A, B on alpha; C
  // Lineage advanced to {A, C}; B was down and is stale.
  store.Commit(SiteSet{0, 2}, 3, 2, SiteSet{0, 2});
  QuorumDecision d = EvaluateDynamicQuorum(
      store, SiteSet{1}, TieBreak::kLexicographic, topo.get());
  EXPECT_EQ(d.counted_set, (SiteSet{0, 1}));
  EXPECT_TRUE(d.granted);
  // Without the topological rule the same group is refused — plain LDV
  // keeps the lineage singular.
  QuorumDecision plain =
      EvaluateDynamicQuorum(store, SiteSet{1}, TieBreak::kLexicographic);
  EXPECT_FALSE(plain.granted);
  // Group {C}: Pm = {A, C}; C cannot carry A across segments: tie without
  // max -> denied.
  QuorumDecision dc = EvaluateDynamicQuorum(
      store, SiteSet{2}, TieBreak::kLexicographic, topo.get());
  EXPECT_FALSE(dc.granted);
}

TEST(StaticMajorityTest, Basics) {
  SiteSet placement{0, 1, 2, 3};
  EXPECT_TRUE(HasStaticMajority(SiteSet{0, 1, 2}, placement));
  EXPECT_FALSE(HasStaticMajority(SiteSet{0, 1}, placement));  // exact half
  EXPECT_FALSE(HasStaticMajority(SiteSet{3}, placement));
  EXPECT_TRUE(HasStaticMajority(SiteSet{0, 1, 2, 3, 9}, placement));
}

TEST(StaticMajorityTest, Weighted) {
  auto w = VoteWeights::Make({3, 1, 1, 1});
  ASSERT_TRUE(w.ok());
  SiteSet placement{0, 1, 2, 3};
  EXPECT_TRUE(HasStaticMajority(SiteSet{0, 1}, placement, *w));  // 4 of 6
  EXPECT_FALSE(HasStaticMajority(SiteSet{1, 2, 3}, placement, *w));
}

}  // namespace
}  // namespace dynvote
