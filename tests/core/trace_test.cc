#include "core/trace.h"

#include <gtest/gtest.h>

#include "core/dynamic_voting.h"
#include "core/mcv.h"
#include "core/test_topologies.h"
#include "net/network_state.h"

namespace dynvote {
namespace {

using testing_util::SingleSegment;

DecisionRecord MakeRecord(bool granted) {
  DecisionRecord r;
  r.protocol = "LDV";
  r.operation = DecisionRecord::Operation::kWrite;
  r.origin = 0;
  r.granted = granted;
  return r;
}

TEST(DecisionLogTest, AssignsSequenceNumbers) {
  DecisionLog log;
  log.Record(MakeRecord(true));
  log.Record(MakeRecord(false));
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[0].sequence, 1u);
  EXPECT_EQ(log.records()[1].sequence, 2u);
  EXPECT_EQ(log.total_recorded(), 2u);
  EXPECT_EQ(log.granted_count(), 1u);
  EXPECT_EQ(log.denied_count(), 1u);
}

TEST(DecisionLogTest, BoundedCapacity) {
  DecisionLog log(3);
  for (int i = 0; i < 10; ++i) log.Record(MakeRecord(true));
  EXPECT_EQ(log.records().size(), 3u);
  EXPECT_EQ(log.total_recorded(), 10u);
  EXPECT_EQ(log.records().front().sequence, 8u);  // oldest retained
}

TEST(DecisionLogTest, ClearResets) {
  DecisionLog log;
  log.Record(MakeRecord(true));
  log.Clear();
  EXPECT_TRUE(log.records().empty());
  EXPECT_EQ(log.total_recorded(), 0u);
}

TEST(DecisionLogTest, OperationNames) {
  EXPECT_EQ(DecisionRecord::OperationName(DecisionRecord::Operation::kRead),
            "read");
  EXPECT_EQ(
      DecisionRecord::OperationName(DecisionRecord::Operation::kRecover),
      "recover");
  EXPECT_EQ(
      DecisionRecord::OperationName(DecisionRecord::Operation::kRefresh),
      "refresh");
}

TEST(DecisionLogTest, ProtocolIntegration) {
  auto topo = SingleSegment(3);
  auto ldv = *MakeLDV(topo, SiteSet{0, 1, 2});
  DecisionLog log;
  ldv->set_decision_log(&log);
  NetworkState net(topo);

  ASSERT_TRUE(ldv->Write(net, 0).ok());
  net.SetSiteUp(1, false);
  ldv->OnNetworkEvent(net);  // refresh decision
  net.SetSiteUp(0, false);
  ldv->OnNetworkEvent(net);  // tie-losing refresh
  EXPECT_TRUE(ldv->Read(net, 2).IsNoQuorum());

  ASSERT_GE(log.total_recorded(), 4u);
  const DecisionRecord& first = log.records().front();
  EXPECT_EQ(first.protocol, "LDV");
  EXPECT_EQ(first.operation, DecisionRecord::Operation::kWrite);
  EXPECT_EQ(first.origin, 0);
  EXPECT_TRUE(first.granted);
  EXPECT_EQ(first.decision.prev_partition, (SiteSet{0, 1, 2}));

  const DecisionRecord& last = log.records().back();
  EXPECT_EQ(last.operation, DecisionRecord::Operation::kRead);
  EXPECT_FALSE(last.granted);
  EXPECT_GT(log.denied_count(), 0u);
}

TEST(DecisionLogTest, RecoverDecisionsLogged) {
  auto topo = SingleSegment(3);
  auto ldv = *MakeLDV(topo, SiteSet{0, 1, 2});
  DecisionLog log;
  ldv->set_decision_log(&log);
  NetworkState net(topo);
  net.SetSiteUp(2, false);
  ldv->OnNetworkEvent(net);
  ASSERT_TRUE(ldv->Write(net, 0).ok());
  net.SetSiteUp(2, true);
  ASSERT_TRUE(ldv->Recover(net, 2).ok());
  bool saw_recover = false;
  for (const DecisionRecord& r : log.records()) {
    if (r.operation == DecisionRecord::Operation::kRecover) {
      saw_recover = true;
      EXPECT_EQ(r.origin, 2);
      EXPECT_TRUE(r.granted);
    }
  }
  EXPECT_TRUE(saw_recover);
}

TEST(DecisionLogTest, McvDecisionsLogged) {
  auto topo = SingleSegment(3);
  auto mcv = *MajorityConsensusVoting::Make(SiteSet{0, 1, 2});
  DecisionLog log;
  mcv->set_decision_log(&log);
  NetworkState net(topo);
  ASSERT_TRUE(mcv->Write(net, 0).ok());
  net.SetSiteUp(0, false);
  net.SetSiteUp(1, false);
  EXPECT_TRUE(mcv->Read(net, 2).IsNoQuorum());
  ASSERT_EQ(log.total_recorded(), 2u);
  EXPECT_TRUE(log.records()[0].granted);
  EXPECT_FALSE(log.records()[1].granted);
  // Static voting: the "previous partition" is always the placement.
  EXPECT_EQ(log.records()[1].decision.prev_partition, (SiteSet{0, 1, 2}));
}

TEST(DecisionLogTest, ToStringAndCsv) {
  DecisionLog log;
  DecisionRecord r = MakeRecord(true);
  r.decision.reachable_copies = SiteSet{0, 1};
  r.decision.prev_partition = SiteSet{0, 1, 2};
  log.Record(r);
  std::string text = log.ToString();
  EXPECT_NE(text.find("#1 LDV write@0"), std::string::npos);
  std::string csv = log.ToCsv();
  EXPECT_NE(csv.find("sequence,protocol"), std::string::npos);
  EXPECT_NE(csv.find("1,LDV,write,0,1,0"), std::string::npos);
}

}  // namespace
}  // namespace dynvote
