#include "core/mcv.h"

#include <gtest/gtest.h>

#include "core/test_topologies.h"
#include "net/network_state.h"

namespace dynvote {
namespace {

using testing_util::SingleSegment;
using testing_util::TwoPairSegments;

TEST(McvMakeTest, DefaultsToStrictMajority) {
  auto mcv = MajorityConsensusVoting::Make(SiteSet{0, 1, 2});
  ASSERT_TRUE(mcv.ok());
  EXPECT_EQ((*mcv)->read_quorum(), 2);
  EXPECT_EQ((*mcv)->write_quorum(), 2);
  EXPECT_EQ((*mcv)->name(), "MCV");
}

TEST(McvMakeTest, ValidatesGiffordConstraints) {
  McvOptions r1w1;
  r1w1.read_quorum = 1;
  r1w1.write_quorum = 1;
  EXPECT_TRUE(MajorityConsensusVoting::Make(SiteSet{0, 1, 2}, r1w1)
                  .status()
                  .IsInvalidArgument());  // r + w <= n

  McvOptions r1w3;
  r1w3.read_quorum = 1;
  r1w3.write_quorum = 3;
  EXPECT_TRUE(MajorityConsensusVoting::Make(SiteSet{0, 1, 2}, r1w3).ok());

  McvOptions w_too_small;
  w_too_small.read_quorum = 3;
  w_too_small.write_quorum = 2;  // 2w <= n for n = 4
  EXPECT_TRUE(
      MajorityConsensusVoting::Make(SiteSet{0, 1, 2, 3}, w_too_small)
          .status()
          .IsInvalidArgument());

  McvOptions out_of_range;
  out_of_range.read_quorum = 9;
  EXPECT_TRUE(MajorityConsensusVoting::Make(SiteSet{0, 1, 2}, out_of_range)
                  .status()
                  .IsInvalidArgument());
}

TEST(McvTest, MajorityGrantsMinorityDenied) {
  auto topo = SingleSegment(3);
  auto mcv = *MajorityConsensusVoting::Make(SiteSet{0, 1, 2});
  NetworkState net(topo);
  EXPECT_TRUE(mcv->WouldGrant(net, 0, AccessType::kWrite));
  net.SetSiteUp(1, false);
  EXPECT_TRUE(mcv->WouldGrant(net, 0, AccessType::kWrite));
  net.SetSiteUp(2, false);
  EXPECT_FALSE(mcv->WouldGrant(net, 0, AccessType::kWrite));
  EXPECT_TRUE(mcv->Write(net, 0).IsNoQuorum());
}

TEST(McvTest, QuorumIsStatic) {
  // The defining weakness: even after running happily on {0, 1} for a
  // long time, MCV still needs 2 of the original 3 — unlike dynamic
  // voting it never adapts. With 0 and 1 down, site 2 alone stays blocked
  // forever even though it held the last writes... and conversely, the
  // quorum never shrinks below 2.
  auto topo = SingleSegment(3);
  auto mcv = *MajorityConsensusVoting::Make(SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(2, false);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(mcv->Write(net, 0).ok());
  }
  net.SetSiteUp(1, false);
  EXPECT_FALSE(mcv->WouldGrant(net, 0, AccessType::kWrite));
}

TEST(McvTest, EvenSplitTieBrokenByMaxSite) {
  // Default MCV resolves a 2-2 split toward the group holding site 0
  // (see McvOptions::tie_break for why the paper's Table 2 requires a
  // tie-resolving static scheme).
  auto topo = TwoPairSegments();
  auto mcv = *MajorityConsensusVoting::Make(SiteSet{0, 1, 2, 3});
  NetworkState net(topo);
  net.SetRepeaterUp(0, false);
  EXPECT_TRUE(mcv->WouldGrant(net, 0, AccessType::kWrite));
  EXPECT_FALSE(mcv->WouldGrant(net, 2, AccessType::kWrite));
}

TEST(McvTest, StrictVariantBlocksOnTie) {
  auto topo = TwoPairSegments();
  McvOptions options;
  options.tie_break = TieBreak::kNone;
  auto mcv = *MajorityConsensusVoting::Make(SiteSet{0, 1, 2, 3}, options);
  NetworkState net(topo);
  net.SetRepeaterUp(0, false);
  EXPECT_FALSE(mcv->WouldGrant(net, 0, AccessType::kWrite));
  EXPECT_FALSE(mcv->WouldGrant(net, 2, AccessType::kWrite));
}

TEST(McvTest, GiffordAsymmetricQuorums) {
  // r = 1, w = 3 on three copies: reads survive two failures, writes
  // survive none.
  auto topo = SingleSegment(3);
  McvOptions options;
  options.read_quorum = 1;
  options.write_quorum = 3;
  auto mcv = *MajorityConsensusVoting::Make(SiteSet{0, 1, 2}, options);
  NetworkState net(topo);
  net.SetSiteUp(1, false);
  EXPECT_TRUE(mcv->WouldGrant(net, 0, AccessType::kRead));
  EXPECT_FALSE(mcv->WouldGrant(net, 0, AccessType::kWrite));
}

TEST(McvTest, RejectsWeightTableShorterThanPlacement) {
  // Pre-fix the missing entries silently weighed 1, shifting quorum
  // thresholds; construction now requires full coverage (or explicit
  // padding via VoteWeights::MakePadded).
  McvOptions short_table;
  short_table.weights = *VoteWeights::Make({2, 1});
  EXPECT_TRUE(MajorityConsensusVoting::Make(SiteSet{0, 1, 2}, short_table)
                  .status()
                  .IsInvalidArgument());
  McvOptions padded;
  padded.weights = *VoteWeights::MakePadded({2, 1}, 3);
  EXPECT_TRUE(MajorityConsensusVoting::Make(SiteSet{0, 1, 2}, padded).ok());
}

TEST(McvTest, WeightedVoting) {
  // Gifford's weighted voting: site 0 holds 2 of 4 votes; {0, any} is a
  // majority but {1, 2} (2 votes) is exactly half and — with the strict
  // rule — denied.
  auto topo = SingleSegment(3);
  McvOptions options;
  options.weights = *VoteWeights::Make({2, 1, 1});
  options.tie_break = TieBreak::kNone;
  auto mcv = *MajorityConsensusVoting::Make(SiteSet{0, 1, 2}, options);
  EXPECT_EQ(mcv->name(), "WMCV");
  EXPECT_EQ(mcv->write_quorum(), 3);
  NetworkState net(topo);
  net.SetSiteUp(1, false);
  EXPECT_TRUE(mcv->WouldGrant(net, 0, AccessType::kWrite));
  net.AllUp();
  net.SetSiteUp(0, false);
  EXPECT_FALSE(mcv->WouldGrant(net, 1, AccessType::kWrite));
}

TEST(McvTest, WritesPropagateVersions) {
  auto topo = SingleSegment(3);
  auto mcv = *MajorityConsensusVoting::Make(SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(2, false);
  ASSERT_TRUE(mcv->Write(net, 0).ok());
  ASSERT_TRUE(mcv->Write(net, 1).ok());
  EXPECT_EQ(mcv->store().state(0).version, 3);
  EXPECT_EQ(mcv->store().state(1).version, 3);
  EXPECT_EQ(mcv->store().state(2).version, 1);  // down: missed both
}

TEST(McvTest, RecoverRefreshesStaleCopy) {
  auto topo = SingleSegment(3);
  auto mcv = *MajorityConsensusVoting::Make(SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(2, false);
  ASSERT_TRUE(mcv->Write(net, 0).ok());
  net.SetSiteUp(2, true);
  ASSERT_TRUE(mcv->Recover(net, 2).ok());
  EXPECT_EQ(mcv->store().state(2).version, 2);
  EXPECT_EQ(mcv->counter()->count(MessageKind::kFileCopy), 1u);
}

TEST(McvTest, PartitionSafety) {
  // Under any partition at most one side has a strict majority; with the
  // lexicographic tie rule at most one side has half-plus-max.
  auto topo = TwoPairSegments();
  auto mcv = *MajorityConsensusVoting::Make(SiteSet{0, 1, 2, 3});
  EXPECT_TRUE(mcv->partition_safe());
  NetworkState net(topo);
  net.SetRepeaterUp(0, false);
  int granted = 0;
  for (const SiteSet& group : net.Components()) {
    if (mcv->WouldGrant(net, group.RankMax(), AccessType::kWrite)) {
      ++granted;
    }
  }
  EXPECT_LE(granted, 1);
}

TEST(McvTest, IsAvailableChecksAllGroups) {
  auto topo = TwoPairSegments();
  auto mcv = *MajorityConsensusVoting::Make(SiteSet{1, 2, 3});
  NetworkState net(topo);
  net.SetRepeaterUp(0, false);
  // Group {2,3} holds 2 of 3 votes even though group {0,1} does not.
  EXPECT_TRUE(mcv->IsAvailable(net));
  net.SetSiteUp(3, false);
  EXPECT_FALSE(mcv->IsAvailable(net));
}

}  // namespace
}  // namespace dynvote
