// Behaviour of Topological Dynamic Voting (Section 3): vote-carrying
// within a segment, degeneration into Available Copy on one segment, and
// the Section 3 worked example.

#include <gtest/gtest.h>

#include "core/dynamic_voting.h"
#include "core/test_topologies.h"
#include "net/network_state.h"
#include "obs/context.h"
#include "obs/trace_sink.h"

namespace dynvote {
namespace {

using testing_util::Section3Network;
using testing_util::SingleSegment;

TEST(TopologicalTest, Section3MotivatingExample) {
  // "Assume now that the file is in the state ... where the majority
  // block consists of sites A and B. Assume now that site A fails. Under
  // Lexicographic Dynamic Voting, site B cannot become the majority
  // partition ... The situation is different here: ... B knows that A
  // must be unavailable and can safely become the majority block."
  auto topo = Section3Network();
  const SiteId a = 0, b = 1, c = 2, d = 3;

  auto tdv = *MakeTDV(topo, SiteSet{a, b, c, d});
  auto ldv = *MakeLDV(topo, SiteSet{a, b, c, d});
  NetworkState net(topo);

  // Drive both into the paper's state: majority block {A, B} after C and
  // D dropped out (fail C, then D, with writes in between).
  for (auto* p : {tdv.get(), ldv.get()}) {
    net.AllUp();
    p->OnNetworkEvent(net);
    net.SetSiteUp(d, false);
    p->OnNetworkEvent(net);
    net.SetSiteUp(c, false);
    p->OnNetworkEvent(net);
    ASSERT_TRUE(p->Write(net, a).ok());
    net.AllUp();
    net.SetSiteUp(c, false);
    net.SetSiteUp(d, false);
  }
  EXPECT_EQ(tdv->store().state(a).partition_set, (SiteSet{a, b}));

  // Site A fails. LDV: B is half of {A, B} without the max element —
  // file unavailable. TDV: B carries A's vote (same segment) — available.
  net.SetSiteUp(a, false);
  ldv->OnNetworkEvent(net);
  tdv->OnNetworkEvent(net);
  EXPECT_FALSE(ldv->WouldGrant(net, b, AccessType::kWrite));
  EXPECT_TRUE(tdv->WouldGrant(net, b, AccessType::kWrite));
  EXPECT_TRUE(tdv->Write(net, b).ok());
}

TEST(TopologicalTest, CannotCarryVotesAcrossSegments) {
  auto topo = Section3Network();
  const SiteId a = 0, b = 1, c = 2, d = 3;
  auto tdv = *MakeTDV(topo, SiteSet{a, b, c, d});
  NetworkState net(topo);

  // A and B fail: C and D together hold 2 of 4 votes without the max
  // element, and neither is on A/B's segment, so no carrying.
  net.SetSiteUp(a, false);
  net.SetSiteUp(b, false);
  tdv->OnNetworkEvent(net);
  EXPECT_FALSE(tdv->IsAvailable(net));
}

TEST(TopologicalTest, DegeneratesIntoAvailableCopyOnOneSegment) {
  // "When all the sites are on the same segment, the modified topological
  // algorithm degenerates into an available copy protocol as a quorum is
  // guaranteed as long as one copy remains available."
  auto topo = SingleSegment(4);
  auto tdv = *MakeTDV(topo, SiteSet{0, 1, 2, 3});
  NetworkState net(topo);
  // Kill three of four in sequence; the last copy still has a quorum.
  for (SiteId s : {0, 1, 2}) {
    net.SetSiteUp(s, false);
    tdv->OnNetworkEvent(net);
    EXPECT_TRUE(tdv->IsAvailable(net)) << "after killing " << s;
  }
  EXPECT_TRUE(tdv->Write(net, 3).ok());
  EXPECT_EQ(tdv->store().state(3).partition_set, SiteSet{3});
}

TEST(TopologicalTest, PartitionAloneCannotForkTdv) {
  // Pure partitions (no site failures): at most one group can be granted.
  // The carried votes of *down* sites are the only extension, and a
  // partition leaves every site up, so TDV behaves exactly like LDV.
  auto topo = testing_util::TwoPairSegments();
  auto tdv = *MakeTDV(topo, SiteSet{0, 1, 2, 3});
  NetworkState net(topo);
  net.SetRepeaterUp(0, false);
  tdv->OnNetworkEvent(net);
  int granted = 0;
  for (const SiteSet& group : net.Components()) {
    if (tdv->WouldGrant(net, group.RankMax(), AccessType::kWrite)) {
      ++granted;
    }
  }
  EXPECT_EQ(granted, 1);  // the side with the max element
  EXPECT_TRUE(tdv->WouldGrant(net, 0, AccessType::kWrite));
}

TEST(TopologicalTest, OtdvIsOptimistic) {
  // OTDV only exchanges state at access time but still counts carried
  // votes.
  auto topo = SingleSegment(3);
  auto otdv = *MakeOTDV(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(0, false);
  net.SetSiteUp(1, false);
  otdv->OnNetworkEvent(net);
  EXPECT_EQ(otdv->store().state(2).partition_set, (SiteSet{0, 1, 2}));
  // Down sites 0 and 1 are carried by live segment-mate 2.
  EXPECT_TRUE(otdv->WouldGrant(net, 2, AccessType::kWrite));
  ASSERT_TRUE(otdv->UserAccess(net, AccessType::kWrite).ok());
  EXPECT_EQ(otdv->store().state(2).partition_set, SiteSet{2});
}

TEST(TopologicalTest, CarryDecisiveGrantIsAttributedInTraces) {
  // Re-run the Section 3 motivating example with tracing attached: the
  // final TDV grant exists *only* because B carries A's segment votes, so
  // its quorum event must say granted_topological_carry — while ODV,
  // driven through the identical failure history, never carries and must
  // emit no carry reason at all.
  auto topo = Section3Network();
  const SiteId a = 0, b = 1, c = 2, d = 3;
  auto tdv = *MakeTDV(topo, SiteSet{a, b, c, d});
  auto odv = *MakeODV(topo, SiteSet{a, b, c, d});
  NetworkState net(topo);

  RingTraceSink sink;
  MetricsShard metrics;
  ObsContext obs;
  obs.sink = &sink;
  obs.metrics = &metrics;
  tdv->set_obs(&obs);
  odv->set_obs(&obs);

  for (auto* p : {tdv.get(), odv.get()}) {
    net.AllUp();
    p->OnNetworkEvent(net);
    net.SetSiteUp(d, false);
    p->OnNetworkEvent(net);
    net.SetSiteUp(c, false);
    p->OnNetworkEvent(net);
    ASSERT_TRUE(p->Write(net, a).ok());
    net.AllUp();
    net.SetSiteUp(c, false);
    net.SetSiteUp(d, false);
  }
  net.SetSiteUp(a, false);
  tdv->OnNetworkEvent(net);
  odv->OnNetworkEvent(net);
  EXPECT_TRUE(tdv->WouldGrant(net, b, AccessType::kWrite));
  EXPECT_FALSE(odv->WouldGrant(net, b, AccessType::kWrite));

  int tdv_carries = 0;
  int odv_carries = 0;
  for (const TraceEvent& event : sink.events()) {
    if (event.type != TraceEventType::kQuorum) continue;
    if (event.reason != QuorumReason::kGrantedTopologicalCarry) continue;
    if (event.protocol == "TDV") ++tdv_carries;
    if (event.protocol == "ODV") ++odv_carries;
  }
  EXPECT_GE(tdv_carries, 1);
  EXPECT_EQ(odv_carries, 0);
  // The same attribution lands in the metrics shard, under the key the
  // trace-summary and CI smoke checks read.
  EXPECT_GE(metrics.counters().at(
                "quorum_evaluations{protocol=TDV,"
                "reason=granted_topological_carry}"),
            1u);
  EXPECT_EQ(metrics.counters().count(
                "quorum_evaluations{protocol=ODV,"
                "reason=granted_topological_carry}"),
            0u);
}

TEST(TopologicalTest, GatewayHostBelongsToOneSegmentOnly) {
  // A gateway host's votes can only be carried by its home segment: the
  // paper's rule for avoiding rival claims from both sides.
  auto builder = Topology::Builder();
  SegmentId main = builder.AddSegment("main");
  SegmentId second = builder.AddSegment("second");
  SiteId m0 = builder.AddSite("m0", main);
  SiteId gw = builder.AddSite("gw", main);  // home segment: main
  SiteId s0 = builder.AddSite("s0", second);
  builder.AddGateway(gw, second);
  auto topo_result = builder.Build();
  ASSERT_TRUE(topo_result.ok());
  auto topo = topo_result.MoveValue();

  auto tdv = *MakeTDV(topo, SiteSet{m0, gw, s0});
  NetworkState net(topo);
  // Gateway fails: s0 is partitioned away. s0 must NOT claim the
  // gateway's vote ({gw, s0} would be a majority of 3): the gateway
  // belongs to "main".
  net.SetSiteUp(gw, false);
  tdv->OnNetworkEvent(net);
  EXPECT_FALSE(tdv->WouldGrant(net, s0, AccessType::kWrite));
  // m0 does carry it: {m0, gw} is 2 of 3.
  EXPECT_TRUE(tdv->WouldGrant(net, m0, AccessType::kWrite));
}

}  // namespace
}  // namespace dynvote
