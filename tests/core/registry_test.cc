#include "core/registry.h"

#include <gtest/gtest.h>

#include "core/test_topologies.h"

namespace dynvote {
namespace {

TEST(RegistryTest, KnownNames) {
  EXPECT_EQ(KnownProtocolNames().size(), 8u);
  EXPECT_EQ(PaperProtocolNames(),
            (std::vector<std::string>{"MCV", "DV", "LDV", "ODV", "TDV",
                                      "OTDV"}));
}

TEST(RegistryTest, BuildsEveryKnownProtocol) {
  auto topo = testing_util::SingleSegment(4);
  for (const std::string& name : KnownProtocolNames()) {
    auto p = MakeProtocolByName(name, topo, SiteSet{0, 1, 2});
    ASSERT_TRUE(p.ok()) << name << ": " << p.status();
    EXPECT_EQ((*p)->name(), name);
    EXPECT_EQ((*p)->placement(), (SiteSet{0, 1, 2}));
  }
}

TEST(RegistryTest, UnknownNameFails) {
  auto topo = testing_util::SingleSegment(2);
  EXPECT_TRUE(MakeProtocolByName("PAXOS", topo, SiteSet{0, 1})
                  .status()
                  .IsInvalidArgument());
}

TEST(RegistryTest, PropagatesConstructionErrors) {
  auto topo = testing_util::SingleSegment(2);
  EXPECT_FALSE(MakeProtocolByName("LDV", topo, SiteSet{0, 5}).ok());
  EXPECT_FALSE(MakeProtocolByName("MCV", topo, SiteSet()).ok());
}

}  // namespace
}  // namespace dynvote
