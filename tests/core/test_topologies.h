// Shared topology fixtures for the protocol tests.

#pragma once

#include <memory>

#include <gtest/gtest.h>

#include "net/topology.h"

namespace dynvote {
namespace testing_util {

/// N sites on one indivisible segment (no partitions possible).
inline std::shared_ptr<const Topology> SingleSegment(int n) {
  auto builder = Topology::Builder();
  SegmentId seg = builder.AddSegment("lan");
  for (int i = 0; i < n; ++i) {
    builder.AddSite("s" + std::to_string(i), seg);
  }
  auto topo = builder.Build();
  EXPECT_TRUE(topo.ok()) << topo.status();
  return topo.MoveValue();
}

/// The Section 3 example: sites 0 (A) and 1 (B) on segment alpha, 2 (C)
/// on gamma, 3 (D) on delta; repeater 0 (X) joins alpha-gamma, repeater 1
/// (Y) joins alpha-delta.
inline std::shared_ptr<const Topology> Section3Network() {
  auto builder = Topology::Builder();
  SegmentId alpha = builder.AddSegment("alpha");
  SegmentId gamma = builder.AddSegment("gamma");
  SegmentId delta = builder.AddSegment("delta");
  builder.AddSite("A", alpha);
  builder.AddSite("B", alpha);
  builder.AddSite("C", gamma);
  builder.AddSite("D", delta);
  builder.AddRepeater("X", alpha, gamma);
  builder.AddRepeater("Y", alpha, delta);
  auto topo = builder.Build();
  EXPECT_TRUE(topo.ok()) << topo.status();
  return topo.MoveValue();
}

/// Two two-site segments joined by a repeater: the smallest topology on
/// which the topological variants' vote-carrying and its hazards show up.
inline std::shared_ptr<const Topology> TwoPairSegments() {
  auto builder = Topology::Builder();
  SegmentId left = builder.AddSegment("left");
  SegmentId right = builder.AddSegment("right");
  builder.AddSite("L0", left);
  builder.AddSite("L1", left);
  builder.AddSite("R0", right);
  builder.AddSite("R1", right);
  builder.AddRepeater("bridge", left, right);
  auto topo = builder.Build();
  EXPECT_TRUE(topo.ok()) << topo.status();
  return topo.MoveValue();
}

}  // namespace testing_util
}  // namespace dynvote
