// Property-based tests: every protocol is driven through thousands of
// random failure / repair / partition / access histories on several
// topologies, and protocol invariants are asserted at every step.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_voting.h"
#include "core/registry.h"
#include "core/test_topologies.h"
#include "net/network_state.h"
#include "util/rng.h"

namespace dynvote {
namespace {

struct PropertyCase {
  std::string topology;       // "single", "section3", "pairs"
  std::string protocol;       // registry name
  SiteSet placement;
};

std::shared_ptr<const Topology> BuildTopology(const std::string& name) {
  if (name == "single") return testing_util::SingleSegment(5);
  if (name == "section3") return testing_util::Section3Network();
  return testing_util::TwoPairSegments();
}

void PrintTo(const PropertyCase& c, std::ostream* os) {
  *os << c.protocol << " on " << c.topology << " placement "
      << c.placement.ToString();
}

class ProtocolPropertyTest : public ::testing::TestWithParam<PropertyCase> {
};

// Applies a random mutation to the network; returns false if it was a
// no-op.
bool RandomMutation(Rng* rng, NetworkState* net) {
  const Topology& topo = net->topology();
  int kinds = topo.num_repeaters() > 0 ? 2 : 1;
  if (rng->NextBounded(kinds) == 0) {
    SiteId s = static_cast<SiteId>(rng->NextBounded(topo.num_sites()));
    bool up = rng->NextBernoulli(0.5);
    if (net->IsSiteUp(s) == up) return false;
    net->SetSiteUp(s, up);
    return true;
  }
  RepeaterId r =
      static_cast<RepeaterId>(rng->NextBounded(topo.num_repeaters()));
  bool up = rng->NextBernoulli(0.6);
  if (net->IsRepeaterUp(r) == up) return false;
  net->SetRepeaterUp(r, up);
  return true;
}

TEST_P(ProtocolPropertyTest, InvariantsUnderRandomHistories) {
  const PropertyCase& c = GetParam();
  auto topo = BuildTopology(c.topology);
  auto protocol = MakeProtocolByName(c.protocol, topo, c.placement);
  ASSERT_TRUE(protocol.ok()) << protocol.status();
  ConsistencyProtocol& p = **protocol;
  NetworkState net(topo);
  Rng rng(0xC0FFEE ^ std::hash<std::string>{}(c.protocol + c.topology) ^
          c.placement.mask());

  // Track per-site operation numbers for monotonicity (dynamic voting
  // only; MCV/AC do not promise op monotonicity at stale sites).
  auto* dv = dynamic_cast<DynamicVoting*>(protocol->get());
  std::vector<OpNumber> last_op(kMaxSites, 0);

  std::uint64_t granted_accesses = 0;
  for (int step = 0; step < 4000; ++step) {
    if (rng.NextBernoulli(0.6)) {
      RandomMutation(&rng, &net);
      p.OnNetworkEvent(net);
    } else {
      AccessType type = rng.NextBernoulli(0.5) ? AccessType::kWrite
                                               : AccessType::kRead;
      Status st = p.UserAccess(net, type);
      ASSERT_TRUE(st.ok() || st.IsNoQuorum()) << st;
      if (st.ok()) ++granted_accesses;
    }

    // Invariant 1: mutual exclusion for partition-safe protocols — at
    // most one group of communicating sites may be granted.
    if (p.partition_safe()) {
      int granted = 0;
      for (const SiteSet& group : net.Components()) {
        SiteSet copies = group.Intersect(p.placement());
        if (!copies.Empty() &&
            p.WouldGrant(net, copies.RankMax(), AccessType::kWrite)) {
          ++granted;
        }
      }
      ASSERT_LE(granted, 1) << "step " << step;
    }

    // Invariant 2: IsAvailable agrees with per-group WouldGrant.
    bool any = false;
    for (const SiteSet& group : net.Components()) {
      SiteSet copies = group.Intersect(p.placement());
      if (!copies.Empty() &&
          p.WouldGrant(net, copies.RankMax(), AccessType::kWrite)) {
        any = true;
      }
    }
    ASSERT_EQ(p.IsAvailable(net), any) << "step " << step;

    // Invariant 3 (dynamic voting): operation numbers never decrease,
    // versions never decrease, and every partition set contains its
    // owner's... not the down sites' stale owners — only that live
    // current members agree on the lineage head.
    if (dv != nullptr) {
      for (SiteId s : dv->placement()) {
        const ReplicaState& rs = dv->store().state(s);
        ASSERT_GE(rs.op_number, last_op[s]) << "step " << step;
        last_op[s] = rs.op_number;
        ASSERT_FALSE(rs.partition_set.Empty());
        ASSERT_TRUE(rs.partition_set.IsSubsetOf(dv->placement()));
      }
      // All max-op sites share one partition set (the lineage head).
      // Only guaranteed for the partition-safe variants: the topological
      // fork hazard (see topological_unsoundness_test.cc) can produce two
      // lineages at equal operation numbers.
      if (p.partition_safe()) {
        SiteSet heads = dv->store().MaxOpSites(dv->placement());
        SiteSet head_p = dv->store().state(heads.RankMax()).partition_set;
        for (SiteId s : heads) {
          ASSERT_EQ(dv->store().state(s).partition_set, head_p)
              << "step " << step;
        }
      }
    }
  }
  // Sanity: the history should not have been trivially all-denied.
  EXPECT_GT(granted_accesses, 0u);
}

std::vector<PropertyCase> MakeCases() {
  std::vector<PropertyCase> cases;
  for (const char* proto : {"MCV", "DV", "LDV", "ODV", "TDV", "OTDV"}) {
    cases.push_back({"single", proto, SiteSet{0, 1, 2}});
    cases.push_back({"single", proto, SiteSet{0, 1, 2, 3, 4}});
    cases.push_back({"section3", proto, SiteSet{0, 1, 2, 3}});
    cases.push_back({"pairs", proto, SiteSet{0, 1, 2, 3}});
    cases.push_back({"pairs", proto, SiteSet{1, 2, 3}});
  }
  // AC only on the non-partitionable topology (its stated requirement).
  cases.push_back({"single", "AC", SiteSet{0, 1, 2}});
  cases.push_back({"single", "AC", SiteSet{0, 1, 2, 3, 4}});
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  return info.param.protocol + "_" + info.param.topology + "_" +
         std::to_string(info.param.placement.mask());
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolPropertyTest,
                         ::testing::ValuesIn(MakeCases()), CaseName);

// The optimism equivalence: ODV whose only state exchanges happen at
// accesses, driven with an access after *every* network event, tracks
// LDV's availability exactly (the paper's limit argument: as the access
// rate grows, ODV converges to LDV).
TEST(OptimismLimitTest, OdvWithAccessEveryEventMatchesLdv) {
  for (const char* topo_cstr : {"single", "section3", "pairs"}) {
    const std::string topo_name = topo_cstr;
    auto topo = BuildTopology(topo_name);
    SiteSet placement = topo_name == "single" ? SiteSet{0, 1, 2, 3, 4}
                                              : SiteSet{0, 1, 2, 3};
    auto odv = *MakeODV(topo, placement);
    auto ldv = *MakeLDV(topo, placement);
    NetworkState net(topo);
    Rng rng(0xFACADE + topo->num_segments());

    for (int step = 0; step < 3000; ++step) {
      RandomMutation(&rng, &net);
      ldv->OnNetworkEvent(net);
      odv->OnNetworkEvent(net);  // no-op by design
      Status st = odv->UserAccess(net, AccessType::kRead);
      ASSERT_TRUE(st.ok() || st.IsNoQuorum());
      ASSERT_EQ(odv->IsAvailable(net), ldv->IsAvailable(net))
          << topo_name << " step " << step;
    }
  }
}

}  // namespace
}  // namespace dynvote
