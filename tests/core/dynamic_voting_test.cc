#include "core/dynamic_voting.h"

#include <gtest/gtest.h>

#include "core/test_topologies.h"
#include "net/network_state.h"

namespace dynvote {
namespace {

using testing_util::SingleSegment;

TEST(DynamicVotingMakeTest, ValidatesArguments) {
  auto topo = SingleSegment(3);
  EXPECT_TRUE(DynamicVoting::Make(nullptr, SiteSet{0, 1})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DynamicVoting::Make(topo, SiteSet())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DynamicVoting::Make(topo, SiteSet{0, 7})
                  .status()
                  .IsInvalidArgument());
  DynamicVotingOptions bad_witness;
  bad_witness.witnesses = SiteSet{2};
  EXPECT_TRUE(DynamicVoting::Make(topo, SiteSet{0, 1}, bad_witness)
                  .status()
                  .IsInvalidArgument());
  DynamicVotingOptions all_witness;
  all_witness.witnesses = SiteSet{0, 1};
  EXPECT_TRUE(DynamicVoting::Make(topo, SiteSet{0, 1}, all_witness)
                  .status()
                  .IsInvalidArgument());
}

TEST(DynamicVotingMakeTest, RejectsWeightTableShorterThanPlacement) {
  // A two-entry table over a three-site placement used to give site 2 a
  // silent default weight of 1, miscounting weighted quorums; it is now
  // rejected at construction. Explicit padding remains available.
  auto topo = SingleSegment(3);
  DynamicVotingOptions short_table;
  short_table.weights = *VoteWeights::Make({3, 1});
  EXPECT_TRUE(DynamicVoting::Make(topo, SiteSet{0, 1, 2}, short_table)
                  .status()
                  .IsInvalidArgument());
  DynamicVotingOptions padded;
  padded.weights = *VoteWeights::MakePadded({3, 1}, 3);
  EXPECT_TRUE(DynamicVoting::Make(topo, SiteSet{0, 1, 2}, padded).ok());
}

TEST(DynamicVotingMakeTest, DerivedNames) {
  auto topo = SingleSegment(4);
  SiteSet p{0, 1, 2};
  EXPECT_EQ((*MakeDV(topo, p))->name(), "DV");
  EXPECT_EQ((*MakeLDV(topo, p))->name(), "LDV");
  EXPECT_EQ((*MakeODV(topo, p))->name(), "ODV");
  EXPECT_EQ((*MakeTDV(topo, p))->name(), "TDV");
  EXPECT_EQ((*MakeOTDV(topo, p))->name(), "OTDV");
}

TEST(DynamicVotingTest, InstantaneousFlagMatchesVariant) {
  auto topo = SingleSegment(3);
  SiteSet p{0, 1, 2};
  EXPECT_TRUE((*MakeLDV(topo, p))->uses_instantaneous_information());
  EXPECT_TRUE((*MakeTDV(topo, p))->uses_instantaneous_information());
  EXPECT_FALSE((*MakeODV(topo, p))->uses_instantaneous_information());
  EXPECT_FALSE((*MakeOTDV(topo, p))->uses_instantaneous_information());
}

TEST(DynamicVotingTest, AccessFromDownSiteIsUnavailable) {
  auto topo = SingleSegment(3);
  auto dv = *MakeLDV(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(0, false);
  EXPECT_TRUE(dv->Read(net, 0).IsUnavailable());
  EXPECT_FALSE(dv->WouldGrant(net, 0, AccessType::kRead));
}

TEST(DynamicVotingTest, RecoverValidatesSite) {
  auto topo = SingleSegment(4);
  auto dv = *MakeLDV(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  EXPECT_TRUE(dv->Recover(net, 3).IsInvalidArgument());  // no copy there
  net.SetSiteUp(1, false);
  EXPECT_TRUE(dv->Recover(net, 1).IsUnavailable());  // still down
}

TEST(DynamicVotingTest, InstantaneousShrinksOnFailureEvent) {
  auto topo = SingleSegment(3);
  auto ldv = *MakeLDV(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(2, false);
  ldv->OnNetworkEvent(net);
  EXPECT_EQ(ldv->store().state(0).partition_set, (SiteSet{0, 1}));
  EXPECT_EQ(ldv->store().state(1).partition_set, (SiteSet{0, 1}));
  // The down copy keeps its stale ensemble.
  EXPECT_EQ(ldv->store().state(2).partition_set, (SiteSet{0, 1, 2}));
}

TEST(DynamicVotingTest, InstantaneousReintegratesOnRepairEvent) {
  auto topo = SingleSegment(3);
  auto ldv = *MakeLDV(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(2, false);
  ldv->OnNetworkEvent(net);
  ASSERT_TRUE(ldv->Write(net, 0).ok());  // site 2 misses a write
  net.SetSiteUp(2, true);
  ldv->OnNetworkEvent(net);
  EXPECT_EQ(ldv->store().state(2).partition_set, (SiteSet{0, 1, 2}));
  EXPECT_EQ(ldv->store().state(2).version, ldv->store().state(0).version);
}

TEST(DynamicVotingTest, OptimisticIgnoresNetworkEvents) {
  auto topo = SingleSegment(3);
  auto odv = *MakeODV(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(2, false);
  odv->OnNetworkEvent(net);
  // No state change: information is exchanged only at access time.
  EXPECT_EQ(odv->store().state(0).partition_set, (SiteSet{0, 1, 2}));
  EXPECT_EQ(odv->store().state(0).op_number, 1);
}

TEST(DynamicVotingTest, OptimisticUpdatesAtAccess) {
  auto topo = SingleSegment(3);
  auto odv = *MakeODV(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(2, false);
  ASSERT_TRUE(odv->UserAccess(net, AccessType::kWrite).ok());
  EXPECT_EQ(odv->store().state(0).partition_set, (SiteSet{0, 1}));
}

TEST(DynamicVotingTest, UserAccessReintegratesStaleCopies) {
  auto topo = SingleSegment(3);
  auto odv = *MakeODV(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(2, false);
  ASSERT_TRUE(odv->UserAccess(net, AccessType::kWrite).ok());
  net.SetSiteUp(2, true);
  // Site 2 is stale and excluded until the next access touches it.
  EXPECT_EQ(odv->store().state(2).op_number, 1);
  ASSERT_TRUE(odv->UserAccess(net, AccessType::kRead).ok());
  EXPECT_EQ(odv->store().state(2).partition_set, (SiteSet{0, 1, 2}));
  EXPECT_EQ(odv->store().state(2).version, odv->store().state(0).version);
}

TEST(DynamicVotingTest, UserAccessFailsWithNoQuorumAnywhere) {
  auto topo = SingleSegment(3);
  auto ldv = *MakeLDV(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(0, false);
  net.SetSiteUp(1, false);
  ldv->OnNetworkEvent(net);
  EXPECT_TRUE(ldv->UserAccess(net, AccessType::kRead).IsNoQuorum());
}

TEST(DynamicVotingTest, DvTieBlocksBothSides) {
  // Plain DV on four copies split 2-2 by a repeater failure: neither side
  // may proceed (the weakness lexicographic voting fixes).
  auto topo = testing_util::TwoPairSegments();
  auto dv = *MakeDV(topo, SiteSet{0, 1, 2, 3});
  NetworkState net(topo);
  net.SetRepeaterUp(0, false);
  dv->OnNetworkEvent(net);
  EXPECT_FALSE(dv->WouldGrant(net, 0, AccessType::kWrite));
  EXPECT_FALSE(dv->WouldGrant(net, 2, AccessType::kWrite));
  EXPECT_FALSE(dv->IsAvailable(net));
  // LDV in the same situation grants the side holding the max element.
  auto ldv = *MakeLDV(topo, SiteSet{0, 1, 2, 3});
  ldv->OnNetworkEvent(net);
  EXPECT_TRUE(ldv->WouldGrant(net, 0, AccessType::kWrite));
  EXPECT_FALSE(ldv->WouldGrant(net, 2, AccessType::kWrite));
  EXPECT_TRUE(ldv->IsAvailable(net));
}

TEST(DynamicVotingTest, DvTieResolvesWhenNetworkHeals) {
  auto topo = testing_util::TwoPairSegments();
  auto dv = *MakeDV(topo, SiteSet{0, 1, 2, 3});
  NetworkState net(topo);
  net.SetRepeaterUp(0, false);
  dv->OnNetworkEvent(net);
  EXPECT_FALSE(dv->IsAvailable(net));
  net.SetRepeaterUp(0, true);
  dv->OnNetworkEvent(net);
  EXPECT_TRUE(dv->IsAvailable(net));
  EXPECT_TRUE(dv->UserAccess(net, AccessType::kWrite).ok());
}

TEST(DynamicVotingTest, QuorumShrinksToOneAndRecovers) {
  // Cascade: 3 copies -> 2 -> 1, then repair in reverse order.
  auto topo = SingleSegment(3);
  auto ldv = *MakeLDV(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(2, false);
  ldv->OnNetworkEvent(net);
  net.SetSiteUp(1, false);
  ldv->OnNetworkEvent(net);
  // P = {0, 1}, only 0 left: 1 = half with max element -> still available.
  EXPECT_TRUE(ldv->IsAvailable(net));
  EXPECT_EQ(ldv->store().state(0).partition_set, SiteSet{0});
  net.SetSiteUp(0, false);
  ldv->OnNetworkEvent(net);
  EXPECT_FALSE(ldv->IsAvailable(net));

  // Sites 1 and 2 restart, but the majority block is {0}: the file must
  // stay unavailable until site 0 returns.
  net.SetSiteUp(1, true);
  net.SetSiteUp(2, true);
  ldv->OnNetworkEvent(net);
  EXPECT_FALSE(ldv->IsAvailable(net));
  net.SetSiteUp(0, true);
  ldv->OnNetworkEvent(net);
  EXPECT_TRUE(ldv->IsAvailable(net));
  EXPECT_EQ(ldv->store().state(2).partition_set, (SiteSet{0, 1, 2}));
}

TEST(DynamicVotingTest, LastSiteStandingMustBeTheRightOne) {
  // After P shrinks to {1} (site 0 down first), a restart of site 0 alone
  // must NOT grant: its state is stale.
  auto topo = SingleSegment(2);
  auto ldv = *MakeLDV(topo, SiteSet{0, 1});
  NetworkState net(topo);
  net.SetSiteUp(0, false);
  ldv->OnNetworkEvent(net);
  // Site 1 is half of {0, 1} without the max element: frozen. No write
  // can advance the lineage behind site 0's back.
  EXPECT_TRUE(ldv->Write(net, 1).IsNoQuorum());
  EXPECT_EQ(ldv->store().state(1).op_number, 1);
  net.SetSiteUp(1, false);
  ldv->OnNetworkEvent(net);
  net.SetSiteUp(0, true);
  ldv->OnNetworkEvent(net);
  // Site 0 reads its own P = {0, 1}: 1 = half with max (0) in Q. The
  // grant is safe precisely because site 1 could never have advanced
  // alone above.
  EXPECT_TRUE(ldv->WouldGrant(net, 0, AccessType::kWrite));
}

TEST(DynamicVotingTest, MessageAccounting) {
  auto topo = SingleSegment(3);
  auto ldv = *MakeLDV(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  ASSERT_TRUE(ldv->Read(net, 0).ok());
  const MessageCounter& c = *ldv->counter();
  EXPECT_EQ(c.count(MessageKind::kProbe), 3u);
  EXPECT_EQ(c.count(MessageKind::kProbeReply), 3u);
  EXPECT_EQ(c.count(MessageKind::kStateRequest), 3u);
  EXPECT_EQ(c.count(MessageKind::kStateReply), 3u);
  EXPECT_EQ(c.count(MessageKind::kCommit), 3u);
  EXPECT_EQ(c.count(MessageKind::kAbort), 0u);
}

TEST(DynamicVotingTest, AbortCountedOnDenial) {
  auto topo = SingleSegment(3);
  auto odv = *MakeODV(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(0, false);
  net.SetSiteUp(1, false);
  EXPECT_TRUE(odv->Read(net, 2).IsNoQuorum());
  EXPECT_GT(odv->counter()->count(MessageKind::kAbort), 0u);
}

TEST(DynamicVotingTest, ResetRestoresInitialState) {
  auto topo = SingleSegment(3);
  auto ldv = *MakeLDV(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  ASSERT_TRUE(ldv->Write(net, 0).ok());
  ldv->Reset();
  EXPECT_EQ(ldv->store().state(0).op_number, 1);
  EXPECT_EQ(ldv->store().state(0).version, 1);
  EXPECT_EQ(ldv->store().state(0).partition_set, (SiteSet{0, 1, 2}));
}

TEST(DynamicVotingTest, WeightedDynamicVoting) {
  // Weight 3 on site 0: it alone holds a strict majority of the initial
  // block, so it can keep operating with both other copies down.
  auto topo = SingleSegment(3);
  DynamicVotingOptions options;
  options.weights = *VoteWeights::Make({3, 1, 1});
  auto wdv = *DynamicVoting::Make(topo, SiteSet{0, 1, 2}, options);
  EXPECT_EQ(wdv->name(), "WLDV");
  NetworkState net(topo);
  net.SetSiteUp(1, false);
  net.SetSiteUp(2, false);
  wdv->OnNetworkEvent(net);
  EXPECT_TRUE(wdv->WouldGrant(net, 0, AccessType::kWrite));
  // And conversely sites 1+2 (weight 2 of 5) cannot proceed without 0.
  net.AllUp();
  net.SetSiteUp(0, false);
  wdv->Reset();
  wdv->OnNetworkEvent(net);
  EXPECT_FALSE(wdv->IsAvailable(net));
}

}  // namespace
}  // namespace dynvote
