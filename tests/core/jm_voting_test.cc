#include "core/jm_voting.h"

#include <gtest/gtest.h>

#include "core/dynamic_voting.h"
#include "core/test_topologies.h"
#include "net/network_state.h"
#include "util/rng.h"

namespace dynvote {
namespace {

using testing_util::SingleSegment;

TEST(JmVotingTest, MakeValidates) {
  auto topo = SingleSegment(3);
  EXPECT_FALSE(JajodiaMutchlerVoting::Make(nullptr, SiteSet{0}).ok());
  EXPECT_FALSE(JajodiaMutchlerVoting::Make(topo, SiteSet()).ok());
  EXPECT_FALSE(JajodiaMutchlerVoting::Make(topo, SiteSet{0, 9}).ok());
  auto jm = JajodiaMutchlerVoting::Make(topo, SiteSet{0, 1, 2});
  ASSERT_TRUE(jm.ok());
  EXPECT_EQ((*jm)->name(), "JM-DV");
  EXPECT_TRUE((*jm)->uses_instantaneous_information());
  EXPECT_TRUE((*jm)->partition_safe());
}

TEST(JmVotingTest, InitialStateAndBasicOperation) {
  auto topo = SingleSegment(3);
  auto jm = *JajodiaMutchlerVoting::Make(topo, SiteSet{0, 1, 2});
  EXPECT_EQ(jm->state(0).update_number, 1);
  EXPECT_EQ(jm->state(0).last_cardinality, 3);
  NetworkState net(topo);
  ASSERT_TRUE(jm->Write(net, 0).ok());
  EXPECT_EQ(jm->state(1).update_number, 2);
  EXPECT_EQ(jm->state(1).data_version, 2);
  EXPECT_EQ(jm->state(1).last_cardinality, 3);
}

TEST(JmVotingTest, CardinalityShrinksWithTheQuorum) {
  auto topo = SingleSegment(3);
  auto jm = *JajodiaMutchlerVoting::Make(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(2, false);
  jm->OnNetworkEvent(net);
  EXPECT_EQ(jm->state(0).last_cardinality, 2);
  // 1 of 2 is a tie — and JM has no tie-break: both halves blocked.
  net.SetSiteUp(1, false);
  jm->OnNetworkEvent(net);
  EXPECT_FALSE(jm->WouldGrant(net, 0, AccessType::kWrite));
  EXPECT_FALSE(jm->IsAvailable(net));
}

TEST(JmVotingTest, StaleMembersCatchUpOnUpdate) {
  auto topo = SingleSegment(3);
  auto jm = *JajodiaMutchlerVoting::Make(topo, SiteSet{0, 1, 2});
  NetworkState net(topo);
  net.SetSiteUp(2, false);
  jm->OnNetworkEvent(net);
  ASSERT_TRUE(jm->Write(net, 0).ok());
  net.SetSiteUp(2, true);
  jm->OnNetworkEvent(net);  // whole partition made current
  EXPECT_EQ(jm->state(2).data_version, jm->state(0).data_version);
  EXPECT_EQ(jm->state(2).last_cardinality, 3);
  EXPECT_GT(jm->counter()->count(MessageKind::kFileCopy), 0u);
}

TEST(JmVotingTest, StaleSiteAloneStaysBlocked) {
  auto topo = SingleSegment(2);
  auto jm = *JajodiaMutchlerVoting::Make(topo, SiteSet{0, 1});
  NetworkState net(topo);
  // Either site alone is 1 of 2: blocked — JM's known cost at two copies.
  net.SetSiteUp(1, false);
  jm->OnNetworkEvent(net);
  EXPECT_FALSE(jm->IsAvailable(net));
}

// The headline: on identical histories the cardinality-based protocol is
// availability-equivalent to the partition-set implementation of plain
// DV — the two representations carry the same quorum information. (The
// lexicographic tie-break, by contrast, is inexpressible without the
// member identities; see the last test.)
TEST(JmVotingTest, AvailabilityEquivalentToPartitionSetDv) {
  for (const char* topo_kind : {"single", "pairs", "section3"}) {
    std::shared_ptr<const Topology> topo;
    if (std::string(topo_kind) == "single") {
      topo = SingleSegment(5);
    } else if (std::string(topo_kind) == "pairs") {
      topo = testing_util::TwoPairSegments();
    } else {
      topo = testing_util::Section3Network();
    }
    SiteSet placement = SiteSet::FirstN(std::min(4, topo->num_sites()));
    auto jm = *JajodiaMutchlerVoting::Make(topo, placement);
    auto dv = *MakeDV(topo, placement);
    NetworkState net(topo);
    Rng rng(0x1987 + topo->num_segments());

    for (int step = 0; step < 5000; ++step) {
      // Random mutation.
      if (topo->num_repeaters() > 0 && rng.NextBernoulli(0.2)) {
        RepeaterId r = static_cast<RepeaterId>(
            rng.NextBounded(topo->num_repeaters()));
        net.SetRepeaterUp(r, !net.IsRepeaterUp(r));
      } else {
        SiteId s =
            static_cast<SiteId>(rng.NextBounded(topo->num_sites()));
        net.SetSiteUp(s, !net.IsSiteUp(s));
      }
      jm->OnNetworkEvent(net);
      dv->OnNetworkEvent(net);
      if (rng.NextBernoulli(0.3)) {
        Status a = jm->UserAccess(net, AccessType::kWrite);
        Status b = dv->UserAccess(net, AccessType::kWrite);
        ASSERT_EQ(a.ok(), b.ok()) << topo_kind << " step " << step;
      }
      for (SiteId s = 0; s < topo->num_sites(); ++s) {
        if (!net.IsSiteUp(s) || !placement.Contains(s)) continue;
        ASSERT_EQ(jm->WouldGrant(net, s, AccessType::kWrite),
                  dv->WouldGrant(net, s, AccessType::kWrite))
            << topo_kind << " step " << step << " site " << s;
      }
    }
  }
}

TEST(JmVotingTest, CannotExpressLexicographicTieBreak) {
  // LDV keeps the file available through a clean 2-2 partition; JM's
  // state has no distinguished member, so it must block — the storage /
  // capability trade-off Section 2.1 describes.
  auto topo = testing_util::TwoPairSegments();
  auto jm = *JajodiaMutchlerVoting::Make(topo, SiteSet{0, 1, 2, 3});
  auto ldv = *MakeLDV(topo, SiteSet{0, 1, 2, 3});
  NetworkState net(topo);
  net.SetRepeaterUp(0, false);
  jm->OnNetworkEvent(net);
  ldv->OnNetworkEvent(net);
  EXPECT_FALSE(jm->IsAvailable(net));
  EXPECT_TRUE(ldv->IsAvailable(net));
}

}  // namespace
}  // namespace dynvote
