// Unit tests for the dynvote_lint rule engine. Each rule is exercised
// both firing (fixture files under fixtures/) and suppressed, per the
// suppression syntax in docs/static_analysis.md.

#include "lint/lint.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dynvote {
namespace lint {
namespace {

/// Loads fixtures/<rel>, returning it under the virtual path <rel> so
/// path classification matches a real checkout layout.
FileInput LoadFixture(const std::string& rel) {
  const std::string path = std::string(DYNVOTE_LINT_FIXTURE_DIR) + "/" + rel;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return {rel, buffer.str()};
}

std::vector<std::string> RuleNames(const RunResult& result) {
  std::vector<std::string> names;
  names.reserve(result.findings.size());
  for (const Finding& f : result.findings) names.push_back(f.rule);
  return names;
}

int CountRule(const RunResult& result, const std::string& rule) {
  const std::vector<std::string> names = RuleNames(result);
  return static_cast<int>(std::count(names.begin(), names.end(), rule));
}

TEST(LintNondeterminismTest, FiresOnEveryBannedSource) {
  RunResult r = RunLint({LoadFixture("src/core/nondet_fire.cc")}, {});
  EXPECT_EQ(CountRule(r, "nondeterminism"), 3);  // rand, random_device, time
  for (const Finding& f : r.findings) {
    EXPECT_EQ(f.file, "src/core/nondet_fire.cc");
    EXPECT_GT(f.line, 0);
  }
}

TEST(LintNondeterminismTest, SuppressionsAndNonCodeMentionsAreClean) {
  RunResult r = RunLint({LoadFixture("src/core/nondet_allow.cc")}, {});
  EXPECT_TRUE(r.findings.empty()) << ToText(r);
}

TEST(LintNondeterminismTest, OutOfScopeDirectoriesAreIgnored) {
  // tests/ and examples/ are outside the lint's jurisdiction.
  FileInput file{"tests/core/foo_test.cc", "int x = std::rand();\n"};
  RunResult r = RunLint({file}, {});
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintWallClockTest, FiresInBenchButAllowsSteadyClock) {
  RunResult r = RunLint({LoadFixture("bench/wallclock_fire.cc")}, {});
  EXPECT_EQ(CountRule(r, "wall-clock"), 1);
}

TEST(LintWallClockTest, ObsMayReadTheWallClock) {
  FileInput file{"src/obs/stamp.cc",
                 "auto t = std::chrono::system_clock::now();\n"};
  RunResult r = RunLint({file}, {});
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintUnorderedTest, FiresInResultAffectingDirs) {
  RunResult r = RunLint({LoadFixture("src/sim/unordered_fire.h")}, {});
  EXPECT_EQ(CountRule(r, "unordered-container"), 1);
}

TEST(LintUnorderedTest, SuppressiblePerLineAndPreviousLine) {
  FileInput file{"src/sim/audited.h",
                 "// dynvote-lint: allow(unordered-container)\n"
                 "std::unordered_set<int> a;\n"
                 "std::unordered_set<int> b;  "
                 "// dynvote-lint: allow(unordered-container)\n"};
  RunResult r = RunLint({file}, {});
  EXPECT_TRUE(r.findings.empty()) << ToText(r);
}

TEST(LintUnorderedTest, FineOutsideResultAffectingDirs) {
  FileInput file{"src/model/cache.cc", "std::unordered_map<int, int> m;\n"};
  RunResult r = RunLint({file}, {});
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintIostreamTest, FiresInHeadersOnly) {
  RunResult r = RunLint({LoadFixture("src/util/iostream_fire.h"),
                         FileInput{"src/util/fine.cc",
                                   "#include <iostream>\n"}},
                        {});
  ASSERT_EQ(CountRule(r, "iostream-header"), 1);
  EXPECT_EQ(r.findings[0].file, "src/util/iostream_fire.h");
  EXPECT_TRUE(r.findings[0].fixable);
}

TEST(LintIostreamTest, FixRewritesToIosfwd) {
  FileInput fixture = LoadFixture("src/util/iostream_fire.h");
  Options options;
  options.apply_fixes = true;
  RunResult r = RunLint({fixture}, options);
  EXPECT_EQ(r.fixes_applied, 1);
  EXPECT_TRUE(r.findings.empty()) << ToText(r);
  ASSERT_EQ(r.fixes.count(fixture.path), 1u);
  const std::string& fixed = r.fixes.at(fixture.path);
  EXPECT_NE(fixed.find("#include <iosfwd>"), std::string::npos);
  EXPECT_EQ(fixed.find("<iostream>"), std::string::npos);
  // Everything else survives byte for byte.
  EXPECT_NE(fixed.find("void PrintTo(std::ostream& os"), std::string::npos);
}

TEST(LintIostreamTest, SuppressionBeatsFix) {
  FileInput file{"src/util/noisy.h",
                 "#include <iostream>  "
                 "// dynvote-lint: allow(iostream-header)\n"};
  Options options;
  options.apply_fixes = true;
  RunResult r = RunLint({file}, options);
  EXPECT_EQ(r.fixes_applied, 0);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_TRUE(r.fixes.empty());
}

TEST(LintRawMutexTest, FiresOutsideAnnotationsHeader) {
  RunResult r = RunLint({LoadFixture("src/model/raw_mutex_fire.cc")}, {});
  EXPECT_EQ(CountRule(r, "raw-mutex"), 2);  // declaration + lock_guard
}

TEST(LintRawMutexTest, AnnotationsHeaderIsExempt) {
  FileInput file{"src/util/thread_annotations.h",
                 "std::mutex mu_;\nstd::condition_variable_any cv_;\n"};
  RunResult r = RunLint({file}, {});
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintLayeringTest, FiresUpwardAndOnUnknownDirs) {
  RunResult r = RunLint({LoadFixture("src/core/layering_fire.cc")}, {});
  EXPECT_EQ(CountRule(r, "layering"), 2);
  // The util include on line 5 is legal and must not appear.
  for (const Finding& f : r.findings) {
    EXPECT_NE(f.line, 5) << f.message;
  }
}

TEST(LintLayeringTest, Suppressible) {
  FileInput file{"src/core/experimental.cc",
                 "#include \"sim/simulator.h\"  "
                 "// dynvote-lint: allow(layering)\n"};
  RunResult r = RunLint({file}, {});
  EXPECT_TRUE(r.findings.empty()) << ToText(r);
}

TEST(LintLayeringTest, DownwardIncludesAreClean) {
  FileInput file{"src/model/engine.cc",
                 "#include \"core/quorum.h\"\n#include \"stats/table.h\"\n"};
  RunResult r = RunLint({file}, {});
  EXPECT_TRUE(r.findings.empty()) << ToText(r);
}

TEST(LintSchemaTest, CrossChecksBothDirections) {
  RunResult r = RunLint({LoadFixture("src/core/schema_fire.h"),
                         LoadFixture("docs/schema.md")},
                        {});
  ASSERT_EQ(CountRule(r, "schema-docs"), 2) << ToText(r);
  std::set<std::string> mentioned;
  for (const Finding& f : r.findings) mentioned.insert(f.message);
  bool phantom = false;
  bool stale = false;
  for (const std::string& m : mentioned) {
    phantom = phantom || m.find("dynvote-phantom-v3") != std::string::npos;
    stale = stale || m.find("dynvote-stale-v9") != std::string::npos;
  }
  EXPECT_TRUE(phantom) << "undocumented source schema not reported";
  EXPECT_TRUE(stale) << "stale doc schema not reported";
}

TEST(LintSchemaTest, SkippedWhenDocsAreNotScanned) {
  RunResult r = RunLint({LoadFixture("src/core/schema_fire.h")}, {});
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintSchemaTest, Suppressible) {
  FileInput code{"src/core/wip.h",
                 "// dynvote-lint: allow(schema-docs)\n"
                 "constexpr char kWip[] = \"dynvote-wip-v1\";\n"};
  FileInput doc{"docs/real.md", "documents dynvote-real-v1\n"};
  FileInput real{"src/core/real.h",
                 "constexpr char kReal[] = \"dynvote-real-v1\";\n"};
  RunResult r = RunLint({code, doc, real}, {});
  EXPECT_TRUE(r.findings.empty()) << ToText(r);
}

TEST(LintOutputTest, JsonCarriesSchemaAndFindings) {
  RunResult r = RunLint({LoadFixture("src/sim/unordered_fire.h")}, {});
  const std::string json = ToJson(r);
  EXPECT_NE(json.find("\"schema\": \"dynvote-lint-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"unordered-container\""),
            std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
}

TEST(LintOutputTest, TextSummarizesCounts) {
  RunResult clean = RunLint({FileInput{"src/core/ok.cc", "int x = 1;\n"}}, {});
  EXPECT_NE(ToText(clean).find("0 finding(s) in 1 file(s)"),
            std::string::npos);
}

TEST(LintCatalogTest, RuleNamesAreUniqueAndComplete) {
  std::set<std::string> names;
  for (const RuleInfo& rule : Rules()) {
    EXPECT_TRUE(names.insert(rule.name).second)
        << "duplicate rule " << rule.name;
    EXPECT_FALSE(rule.summary.empty());
  }
  for (const char* expected :
       {"nondeterminism", "wall-clock", "unordered-container",
        "iostream-header", "raw-mutex", "layering", "schema-docs"}) {
    EXPECT_EQ(names.count(expected), 1u) << "missing rule " << expected;
  }
}

TEST(LintEngineTest, BlockCommentsSpanningLinesDoNotFire) {
  FileInput file{"src/core/commented.cc",
                 "/* std::rand()\n   std::random_device\n*/\nint x = 0;\n"};
  RunResult r = RunLint({file}, {});
  EXPECT_TRUE(r.findings.empty()) << ToText(r);
}

TEST(LintEngineTest, MultipleRulesInOneAllowList) {
  FileInput file{"src/core/multi.cc",
                 "#include \"sim/simulator.h\"  "
                 "// dynvote-lint: allow(layering, nondeterminism)\n"};
  RunResult r = RunLint({file}, {});
  EXPECT_TRUE(r.findings.empty()) << ToText(r);
}

TEST(LintEngineTest, RawStringsAndContinuationsAreNotCode) {
  // Banned tokens inside raw string bodies (default and custom
  // delimiters, multi-line), backslash-continued // comments and
  // backslash-continued strings must not fire — including a #include
  // spelled inside a raw string.
  RunResult r = RunLint({LoadFixture("src/core/rawscan_allow.cc")}, {});
  EXPECT_TRUE(r.findings.empty()) << ToText(r);
}

TEST(LintEngineTest, LineContinuationExtendsTheComment) {
  FileInput file{"src/core/cont.cc",
                 "// a comment that continues \\\nstd::rand();\nint x;\n"};
  RunResult r = RunLint({file}, {});
  EXPECT_TRUE(r.findings.empty()) << ToText(r);
}

TEST(LintEngineTest, RawStringEndsOnItsClosingDelimiter) {
  // Code after the raw literal closes is scanned again.
  FileInput file{"src/core/raw_end.cc",
                 "const char* s = R\"(std::rand())\"; int y = std::rand();\n"};
  RunResult r = RunLint({file}, {});
  EXPECT_EQ(CountRule(r, "nondeterminism"), 1);
}

}  // namespace
}  // namespace lint
}  // namespace dynvote
