// Unit tests for the symbol-aware analyzer: the tokenizer, the four
// rule families (each firing and suppressed, per the fixture pairs
// under fixtures/analyze/), and the DOT/JSON renderings.

#include "lint/analyze.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/token.h"

namespace dynvote {
namespace lint {
namespace {

/// Loads fixtures/<rel>, returning it under the virtual path <rel> so
/// path classification matches a real checkout layout.
FileInput LoadFixture(const std::string& rel) {
  const std::string path = std::string(DYNVOTE_LINT_FIXTURE_DIR) + "/" + rel;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return {rel, buffer.str()};
}

int CountRule(const AnalyzeResult& result, const std::string& rule) {
  int n = 0;
  for (const Finding& f : result.findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

bool HasEdge(const LockGraph& graph, const std::string& from,
             const std::string& to) {
  for (const LockEdge& e : graph.edges) {
    if (e.from == from && e.to == to) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

std::vector<std::string> TokenTexts(const std::string& src) {
  std::vector<std::string> texts;
  for (const Token& t : Tokenize(src)) texts.push_back(t.text);
  return texts;
}

TEST(TokenizerTest, IdentifiersPunctuationAndLines) {
  std::vector<Token> toks = Tokenize("a::b->c();\nint x = 2;\n");
  ASSERT_GE(toks.size(), 8u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "::");
  EXPECT_EQ(toks[3].text, "->");
  EXPECT_EQ(toks[0].line, 1);
  bool saw_x = false;
  for (const Token& t : toks) {
    if (t.text == "x") {
      EXPECT_EQ(t.line, 2);
      saw_x = true;
    }
  }
  EXPECT_TRUE(saw_x);
}

TEST(TokenizerTest, RawStringsAreSingleTokens) {
  std::vector<Token> toks =
      Tokenize("auto s = R\"(not ) a \" closer)\"; int y;");
  std::vector<std::string> strings;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kString) strings.push_back(t.text);
  }
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0], "R\"(not ) a \" closer)\"");
  const std::vector<std::string> texts = TokenTexts(
      "auto s = R\"(not ) a \" closer)\"; int y;");
  EXPECT_NE(std::find(texts.begin(), texts.end(), "y"), texts.end());
}

TEST(TokenizerTest, CustomDelimiterRawStringSpansLines) {
  std::vector<Token> toks =
      Tokenize("auto s = R\"x(line one\n)\" fake\n)x\";\nint after;");
  int after_line = 0;
  for (const Token& t : toks) {
    if (t.text == "after") after_line = t.line;
  }
  EXPECT_EQ(after_line, 4);
}

TEST(TokenizerTest, CommentsAndPreprocessorAreSkipped) {
  const std::vector<std::string> texts = TokenTexts(
      "#include <map>\n// gone\n/* also\ngone */ kept\n#define A \\\n  B\n"
      "last");
  EXPECT_EQ(texts, (std::vector<std::string>{"kept", "last"}));
}

TEST(TokenizerTest, ShiftIsTwoCloseAngles) {
  const std::vector<std::string> texts = TokenTexts("map<int, set<int>> m;");
  int close = 0;
  for (const std::string& t : texts) {
    if (t == ">") ++close;
  }
  EXPECT_EQ(close, 2);
  EXPECT_EQ(std::count(texts.begin(), texts.end(), ">>"), 0);
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

TEST(AnalyzeLockOrderTest, InconsistentOrderIsACycle) {
  AnalyzeResult r =
      RunAnalyze({LoadFixture("analyze/src/util/lockorder_fire.cc")});
  EXPECT_FALSE(r.lock_graph.acyclic);
  EXPECT_EQ(CountRule(r, "lock-order"), 1);
  EXPECT_TRUE(HasEdge(r.lock_graph, "Alpha::a_", "Alpha::b_"));
  EXPECT_TRUE(HasEdge(r.lock_graph, "Alpha::b_", "Alpha::a_"));
  ASSERT_EQ(r.lock_graph.cycles.size(), 1u);
  EXPECT_NE(r.lock_graph.cycles[0].find("Alpha::a_"), std::string::npos);
}

TEST(AnalyzeLockOrderTest, SuppressedAcquisitionDropsTheEdge) {
  AnalyzeResult r =
      RunAnalyze({LoadFixture("analyze/src/util/lockorder_allow.cc")});
  EXPECT_TRUE(r.lock_graph.acyclic) << ToText(r);
  EXPECT_EQ(CountRule(r, "lock-order"), 0);
  EXPECT_TRUE(HasEdge(r.lock_graph, "Alpha::a_", "Alpha::b_"));
  EXPECT_FALSE(HasEdge(r.lock_graph, "Alpha::b_", "Alpha::a_"));
}

TEST(AnalyzeLockOrderTest, RequiresAnnotationSeedsHeldSet) {
  AnalyzeResult r =
      RunAnalyze({LoadFixture("analyze/src/util/lockorder_annotated.cc")});
  EXPECT_TRUE(r.lock_graph.acyclic) << ToText(r);
  EXPECT_TRUE(HasEdge(r.lock_graph, "Gamma::g_", "Gamma::h_"));
}

TEST(AnalyzeLockOrderTest, SequentialGuardsCreateNoEdges) {
  FileInput file{"src/util/seq.cc",
                 "class S {\n"
                 " public:\n"
                 "  void A() { MutexLock l(m_); }\n"
                 "  void B() { MutexLock l(m_); }\n"
                 " private:\n"
                 "  Mutex m_;\n"
                 "};\n"};
  AnalyzeResult r = RunAnalyze({file});
  EXPECT_TRUE(r.lock_graph.edges.empty());
  EXPECT_TRUE(r.lock_graph.acyclic);
  ASSERT_EQ(r.lock_graph.nodes.size(), 1u);
  EXPECT_EQ(r.lock_graph.nodes[0], "S::m_");
}

TEST(AnalyzeLockOrderTest, RecursiveAcquisitionIsASelfCycle) {
  FileInput file{"src/util/rec.cc",
                 "class R {\n"
                 "  void F() {\n"
                 "    MutexLock a(m_);\n"
                 "    MutexLock b(m_);\n"
                 "  }\n"
                 "  Mutex m_;\n"
                 "};\n"};
  AnalyzeResult r = RunAnalyze({file});
  EXPECT_FALSE(r.lock_graph.acyclic);
  EXPECT_EQ(CountRule(r, "lock-order"), 1);
}

// ---------------------------------------------------------------------------
// guarded-by
// ---------------------------------------------------------------------------

TEST(AnalyzeGuardedByTest, UnannotatedMutableMemberFires) {
  AnalyzeResult r =
      RunAnalyze({LoadFixture("analyze/src/obs/guardedby_fire.h")});
  EXPECT_EQ(CountRule(r, "guarded-by"), 1) << ToText(r);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_NE(r.findings[0].message.find("misses_"), std::string::npos);
}

TEST(AnalyzeGuardedByTest, ProofSuppressionIsClean) {
  AnalyzeResult r =
      RunAnalyze({LoadFixture("analyze/src/obs/guardedby_allow.h")});
  EXPECT_TRUE(r.findings.empty()) << ToText(r);
}

TEST(AnalyzeGuardedByTest, OnlyThreadedDirsAreInScope) {
  // Same shape as the firing fixture, but core/ has no threads.
  FileInput file{"src/core/single.h",
                 "class C {\n  Mutex mutex_;\n  int unguarded_ = 0;\n};\n"};
  AnalyzeResult r = RunAnalyze({file});
  EXPECT_TRUE(r.findings.empty()) << ToText(r);
}

TEST(AnalyzeGuardedByTest, MutexFreeClassesAreExempt) {
  FileInput file{"src/obs/plain.h",
                 "class P {\n  int counter_ = 0;\n};\n"};
  AnalyzeResult r = RunAnalyze({file});
  EXPECT_TRUE(r.findings.empty()) << ToText(r);
}

// ---------------------------------------------------------------------------
// lock-hygiene
// ---------------------------------------------------------------------------

TEST(AnalyzeHygieneTest, ThrowStreamsLogAndSinkDispatchFire) {
  AnalyzeResult r =
      RunAnalyze({LoadFixture("analyze/src/util/hygiene_fire.cc")});
  EXPECT_EQ(CountRule(r, "lock-hygiene"), 4) << ToText(r);
  std::set<std::string> mentioned;
  for (const Finding& f : r.findings) {
    if (f.message.find("throw") != std::string::npos) {
      mentioned.insert("throw");
    }
    if (f.message.find("cerr") != std::string::npos) mentioned.insert("cerr");
    if (f.message.find("DYNVOTE_LOG") != std::string::npos) {
      mentioned.insert("log");
    }
    if (f.message.find("sink") != std::string::npos) mentioned.insert("sink");
  }
  EXPECT_EQ(mentioned.size(), 4u) << ToText(r);
}

TEST(AnalyzeHygieneTest, SuppressionsAndScopedWorkAreClean) {
  AnalyzeResult r =
      RunAnalyze({LoadFixture("analyze/src/util/hygiene_allow.cc")});
  EXPECT_TRUE(r.findings.empty()) << ToText(r);
}

TEST(AnalyzeHygieneTest, LoggingOutsideTheGuardScopeIsClean) {
  FileInput file{"src/util/scoped.cc",
                 "class L {\n"
                 "  void F() {\n"
                 "    { MutexLock l(m_); touch(); }\n"
                 "    DYNVOTE_LOG(Info) << \"outside\";\n"
                 "  }\n"
                 "  void touch();\n"
                 "  Mutex m_;\n"
                 "};\n"};
  AnalyzeResult r = RunAnalyze({file});
  EXPECT_TRUE(r.findings.empty()) << ToText(r);
}

// ---------------------------------------------------------------------------
// schema-fields
// ---------------------------------------------------------------------------

std::vector<FileInput> SchemaTree(const std::string& variant) {
  return {
      LoadFixture("analyze/" + variant + "/src/obs/trace_event.h"),
      LoadFixture("analyze/" + variant + "/src/obs/trace_sink.cc"),
      LoadFixture("analyze/" + variant + "/src/obs/binary_trace.cc"),
      LoadFixture("analyze/" + variant + "/docs/observability.md"),
  };
}

TEST(AnalyzeSchemaFieldsTest, DriftFiresOnEverySide) {
  AnalyzeResult r = RunAnalyze(SchemaTree("drift"));
  // orphan: not encoded + not decoded; ghost: no field + undocumented;
  // phantom: documented but never emitted.
  EXPECT_EQ(CountRule(r, "schema-fields"), 5) << ToText(r);
  std::set<std::string> sides;
  for (const Finding& f : r.findings) {
    if (f.message.find("orphan") != std::string::npos) sides.insert("struct");
    if (f.message.find("ghost") != std::string::npos) sides.insert("encoder");
    if (f.message.find("phantom") != std::string::npos) sides.insert("docs");
  }
  EXPECT_EQ(sides.size(), 3u) << ToText(r);
}

TEST(AnalyzeSchemaFieldsTest, ConsistentTreeIsCleanAndAliasesResolve) {
  // The clean tree exercises the alias map: latency_ms serializes as
  // lat_ms and type as ev.
  AnalyzeResult r = RunAnalyze(SchemaTree("clean"));
  EXPECT_TRUE(r.findings.empty()) << ToText(r);
}

TEST(AnalyzeSchemaFieldsTest, InactiveWithoutAllParticipants) {
  // The struct alone (or struct + encoder) must not demand the rest of
  // the tree be passed.
  AnalyzeResult r = RunAnalyze(
      {LoadFixture("analyze/drift/src/obs/trace_event.h"),
       LoadFixture("analyze/drift/src/obs/trace_sink.cc")});
  EXPECT_EQ(CountRule(r, "schema-fields"), 0) << ToText(r);
}

// ---------------------------------------------------------------------------
// Output formats
// ---------------------------------------------------------------------------

TEST(AnalyzeOutputTest, DotExportIsByteStable) {
  AnalyzeResult r =
      RunAnalyze({LoadFixture("analyze/src/util/lockorder_annotated.cc")});
  const std::string expected =
      "digraph lock_order {\n"
      "  rankdir=LR;\n"
      "  node [shape=box];\n"
      "  \"Gamma::g_\" -> \"Gamma::h_\" "
      "[label=\"analyze/src/util/lockorder_annotated.cc:15\"];\n"
      "}\n";
  EXPECT_EQ(ToDot(r.lock_graph), expected);
}

TEST(AnalyzeOutputTest, JsonCarriesSchemaFindingsAndGraph) {
  AnalyzeResult r =
      RunAnalyze({LoadFixture("analyze/src/util/lockorder_fire.cc")});
  const std::string json = ToJson(r);
  EXPECT_NE(json.find("\"schema\": \"dynvote-analyze-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"acyclic\": false"), std::string::npos);
  EXPECT_NE(json.find("\"cycles\": ["), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"lock-order\""), std::string::npos);
}

TEST(AnalyzeOutputTest, TextSummarizesTheGraph) {
  AnalyzeResult clean =
      RunAnalyze({FileInput{"src/core/ok.cc", "int x = 1;\n"}});
  const std::string text = ToText(clean);
  EXPECT_NE(text.find("0 finding(s) in 1 file(s) analyzed"),
            std::string::npos);
  EXPECT_NE(text.find("acyclic."), std::string::npos);
}

TEST(AnalyzeCatalogTest, RuleNamesAreUniqueAndComplete) {
  std::set<std::string> names;
  for (const RuleInfo& rule : AnalyzeRules()) {
    EXPECT_TRUE(names.insert(rule.name).second)
        << "duplicate rule " << rule.name;
    EXPECT_FALSE(rule.summary.empty());
  }
  for (const char* expected :
       {"lock-order", "guarded-by", "lock-hygiene", "schema-fields"}) {
    EXPECT_EQ(names.count(expected), 1u) << "missing rule " << expected;
  }
}

}  // namespace
}  // namespace lint
}  // namespace dynvote
