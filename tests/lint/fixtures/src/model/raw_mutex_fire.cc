// Fixture: raw standard-library mutex outside util/thread_annotations.h.
#include <mutex>

std::mutex g_fixture_mutex;

void LockedFixture() {
  std::lock_guard<std::mutex> lock(g_fixture_mutex);
}
