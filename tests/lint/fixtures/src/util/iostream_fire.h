// Fixture: the heavyweight stream header included from a header;
// --fix rewrites the include to the forward-declaration header.
#pragma once
#include <iostream>
#include <string>

void PrintTo(std::ostream& os, const std::string& s);
