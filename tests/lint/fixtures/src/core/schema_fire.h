// Fixture: one documented schema string and one undocumented one.
#pragma once

inline constexpr const char kDocumentedSchema[] = "dynvote-fixture-v1";
inline constexpr const char kUndocumentedSchema[] = "dynvote-phantom-v3";
