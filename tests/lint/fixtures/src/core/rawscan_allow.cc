// Fixture: scanner blind spots. Every banned token below sits inside a
// raw string literal, a backslash-continued // comment, or a
// backslash-continued string — none of it is code, so the lint must
// stay silent.

#include <string>

namespace dynvote {

const char* kUsage = R"(usage text quoting forbidden things:
  std::rand() seeds nondeterminism
  std::unordered_map<int, int> iterates unordered
  #include <iostream> drags in static initializers
  "quotes inside raw strings are fine" — and so is )";

const char* kDelimited = R"doc(
  custom delimiters too: std::random_device entropy;
  even a fake closer )" stays inside until )doc";

// A continued line comment hides the next physical line: \
std::rand();  still part of the comment above

const char* kSpliced =
    "a string may continue across a backslash newline: \
std::mt19937 gen; is still string content here";

int Real() { return 1; }

}  // namespace dynvote
