// Fixture: every banned nondeterminism source, unsuppressed.
#include <cstdlib>
#include <ctime>
#include <random>

int NondetSeed() {
  int a = std::rand();
  std::random_device rd;
  long t = time(nullptr);
  return a + static_cast<int>(rd()) + static_cast<int>(t);
}
