// Fixture: src/core reaching up into src/sim and into an unknown
// directory — both are layering findings.
#include "sim/simulator.h"
#include "viz/renderer.h"
#include "util/site_set.h"  // allowed: util is below core

int LayeringFixture() { return 0; }
