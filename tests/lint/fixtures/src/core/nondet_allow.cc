// Fixture: the same sources, all suppressed (same-line and previous-line
// forms), plus a mention in a comment (std::rand) and inside a string
// literal, neither of which may fire.
#include <cstdlib>
#include <ctime>
#include <random>

int NondetSeed() {
  int a = std::rand();  // dynvote-lint: allow(nondeterminism)
  // dynvote-lint: allow(nondeterminism)
  std::random_device rd;
  const char* msg = "docs say std::random_device is banned";
  return a + static_cast<int>(rd()) + (msg != nullptr ? 1 : 0);
}
