// Fixture: unordered container in a result-affecting directory.
#pragma once
#include <unordered_map>

struct Fixture {
  std::unordered_map<int, int> by_id;
};
