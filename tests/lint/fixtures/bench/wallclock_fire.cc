// Fixture: wall-clock time source in a bench (steady_clock is the
// sanctioned alternative and must not fire).
#include <chrono>

double WallclockFixture() {
  auto wall = std::chrono::system_clock::now();
  auto mono = std::chrono::steady_clock::now();
  return static_cast<double>(wall.time_since_epoch().count()) +
         static_cast<double>(mono.time_since_epoch().count());
}
