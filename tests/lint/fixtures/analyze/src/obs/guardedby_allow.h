// Fixture: the coverage gap from guardedby_fire.h closed by a proof
// suppression instead of an annotation.

class Cache {
 public:
  void Touch();

 private:
  Mutex mutex_;
  int hits_ DYNVOTE_GUARDED_BY(mutex_) = 0;
  // Only the owner thread writes misses_, and it reads it back only
  // after Join() — confinement, not locking, is the proof.
  // dynvote-lint: allow(guarded-by)
  int misses_ = 0;
};
