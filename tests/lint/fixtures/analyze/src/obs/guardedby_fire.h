// Fixture: GUARDED_BY coverage. `misses_` is the one mutable,
// non-atomic, non-annotated member of a Mutex-owning class in a
// threaded dir — exactly one finding. Every other member exercises an
// exemption: annotated, atomic, const, static, the mutex itself, a
// condition variable.

class Cache {
 public:
  void Touch();

 private:
  Mutex mutex_;
  CondVar ready_;
  int hits_ DYNVOTE_GUARDED_BY(mutex_) = 0;
  int misses_ = 0;
  std::atomic<int> lookups_{0};
  const std::string name_;
  static int instances_;
};
