// Fixture: inconsistent lock ordering. Both() acquires a_ then b_;
// Reverse() acquires b_ then a_ — the acquisition graph has the cycle
// Alpha::a_ -> Alpha::b_ -> Alpha::a_. Never compiled, only scanned.

class Alpha {
 public:
  void Both() {
    MutexLock la(a_);
    MutexLock lb(b_);
    use();
  }

  void Reverse() {
    MutexLock lb(b_);
    MutexLock la(a_);
    use();
  }

 private:
  void use();

  Mutex a_;
  Mutex b_;
};
