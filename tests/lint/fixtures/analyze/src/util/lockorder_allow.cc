// Fixture: the same inconsistent ordering as lockorder_fire.cc, but
// the out-of-order acquisition carries a proof suppression — the edge
// (and with it the cycle) is silenced.

class Alpha {
 public:
  void Both() {
    MutexLock la(a_);
    MutexLock lb(b_);
    use();
  }

  void Reverse() {
    MutexLock lb(b_);
    // Safe: Reverse() is only ever called before the worker threads
    // start, so the two guards can never interleave with Both().
    // dynvote-lint: allow(lock-order)
    MutexLock la(a_);
    use();
  }

 private:
  void use();

  Mutex a_;
  Mutex b_;
};
