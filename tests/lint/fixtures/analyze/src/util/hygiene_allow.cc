// Fixture: the hygiene sites from hygiene_fire.cc, each silenced by a
// suppression on its own line or the line above. Also shows the clean
// pattern: do the slow work after the guard's scope closes.

class Logger {
 public:
  void Work();

 private:
  bool bad();

  Mutex mutex_;
  TraceSink* sink_ DYNVOTE_GUARDED_BY(mutex_);
};

void Logger::Work() {
  bool failed = false;
  {
    MutexLock lock(mutex_);
    // The exception unwinds through ~MutexLock, so the lock never
    // outlives the throw; accepted while the error path is migrated.
    // dynvote-lint: allow(lock-hygiene)
    if (bad()) throw std::runtime_error("invariant violated");
    std::cerr << "one-shot startup banner\n";  // dynvote-lint: allow(lock-hygiene)
    failed = bad();
  }
  if (failed) DYNVOTE_LOG(Warning) << "logged outside the lock";
}
