// Fixture: everything the lock-hygiene rule bans, all inside one
// critical section: a throw-expression, direct std::cerr I/O, the
// stream-backed DYNVOTE_LOG macro, and virtual dispatch through a
// trace-sink member. Four findings.

class Logger {
 public:
  void Work();

 private:
  bool bad();

  Mutex mutex_;
  TraceSink* sink_ DYNVOTE_GUARDED_BY(mutex_);
};

void Logger::Work() {
  MutexLock lock(mutex_);
  if (bad()) throw std::runtime_error("invariant violated");
  std::cerr << "diagnosing under the lock\n";
  DYNVOTE_LOG(Warning) << "still under the lock";
  sink_->WritePage(nullptr);
}
