// Fixture: annotation-seeded ordering. Locked() declares via
// DYNVOTE_REQUIRES that g_ is held on entry; its body then acquires
// h_, producing the edge Gamma::g_ -> Gamma::h_ without any textual
// MutexLock nesting.

class Gamma {
 public:
  void Locked() DYNVOTE_REQUIRES(g_);

  Mutex g_;
  Mutex h_;
};

void Gamma::Locked() {
  MutexLock lh(h_);
}
