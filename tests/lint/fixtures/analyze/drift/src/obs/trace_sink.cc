// Fixture: schema drift, encoder side. `ghost` corresponds to no
// TraceEvent field and is absent from the docs tables — two findings
// anchored at its emission site.

void Encode(const TraceEvent& event, std::string* out) {
  Append(out, "{\"ev\":");
  Append(out, event.type);
  Append(out, ",\"t\":");
  Append(out, event.t);
  Append(out, ",\"lat_ms\":");
  Append(out, event.latency_ms);
  Append(out, ",\"ghost\":0}");
}
