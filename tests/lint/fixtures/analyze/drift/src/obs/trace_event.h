// Fixture: schema drift, struct side. `orphan` is neither emitted by
// the JSONL encoder (trace_sink.cc) nor referenced by the binary codec
// (binary_trace.cc) — two findings anchored here.

struct TraceEvent {
  int type = 0;
  double t = 0;
  double latency_ms = 0;
  int orphan = 0;
};
