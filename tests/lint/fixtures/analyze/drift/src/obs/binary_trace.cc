// Fixture: schema drift, codec side. Decodes type, t and latency_ms
// but never touches `orphan` — the struct-side finding points at the
// field the codec forgot.

void DecodeRecord(Cursor* cur, TraceEvent* out) {
  TraceEvent& event = *out;
  ReadVarint(cur, &event.type);
  ReadDouble(cur, &event.t);
  ReadDouble(cur, &event.latency_ms);
}
