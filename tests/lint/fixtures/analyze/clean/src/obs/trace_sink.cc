// Fixture: schema agreement, encoder side. The header keys (schema,
// seed) are exempt from the field cross-check by design.

void EncodeHeader(std::string* out) {
  Append(out, "{\"schema\":\"dynvote-trace-v1\",\"seed\":0}");
}

void Encode(const TraceEvent& event, std::string* out) {
  Append(out, "{\"ev\":");
  Append(out, event.type);
  Append(out, ",\"t\":");
  Append(out, event.t);
  Append(out, ",\"lat_ms\":");
  Append(out, event.latency_ms);
  Append(out, "}");
}
