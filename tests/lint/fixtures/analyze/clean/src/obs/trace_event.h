// Fixture: schema agreement, struct side. Every field is emitted
// (under its wire alias where one exists), decoded, and documented.

struct TraceEvent {
  int type = 0;
  double t = 0;
  double latency_ms = 0;
};
