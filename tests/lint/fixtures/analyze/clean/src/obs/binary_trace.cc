// Fixture: schema agreement, codec side.

void DecodeRecord(Cursor* cur, TraceEvent* out) {
  TraceEvent& event = *out;
  ReadVarint(cur, &event.type);
  ReadDouble(cur, &event.t);
  ReadDouble(cur, &event.latency_ms);
}
