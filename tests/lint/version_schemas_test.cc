// Cross-checks the `dynvote --version` schema registry
// (tools/version_schemas.h) against the source tree: every
// dynvote-*-vN token the lint scanner finds under src/, bench/ and
// tools/ must be registered, and every registered token must still
// exist in the tree. Adding a seventh schema without touching the
// registry — the bug --version shipped with when the lint schema
// landed — fails here, not in code review.

#include "version_schemas.h"

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "lint/lint.h"

namespace dynvote {
namespace {

namespace fs = std::filesystem;

std::string ReadFileOrDie(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

/// Every schema token in the repo's emitting directories. Tests are
/// deliberately excluded: a test may mention a hypothetical token
/// without emitting it.
std::set<std::string> TreeSchemaTokens() {
  const fs::path root(DYNVOTE_REPO_ROOT);
  std::set<std::string> tokens;
  for (const char* dir : {"src", "bench", "tools"}) {
    for (const fs::directory_entry& entry :
         fs::recursive_directory_iterator(root / dir)) {
      if (!entry.is_regular_file() || !IsSourceFile(entry.path())) continue;
      for (std::string& token :
           lint::CollectSchemaTokens(ReadFileOrDie(entry.path()))) {
        tokens.insert(std::move(token));
      }
    }
  }
  return tokens;
}

std::set<std::string> RegisteredTokens() {
  std::set<std::string> tokens;
  for (const VersionedSchema& schema : kAllSchemas) {
    tokens.insert(schema.token);
  }
  return tokens;
}

TEST(VersionSchemasTest, RegistryEntriesAreUniqueAndLabeled) {
  EXPECT_EQ(RegisteredTokens().size(), kAllSchemas.size())
      << "duplicate token in kAllSchemas";
  std::set<std::string> labels;
  for (const VersionedSchema& schema : kAllSchemas) {
    EXPECT_FALSE(std::string(schema.label).empty());
    EXPECT_TRUE(labels.insert(schema.label).second)
        << "duplicate label " << schema.label;
  }
}

TEST(VersionSchemasTest, RegistryMatchesSourceTreeExactly) {
  const std::set<std::string> in_tree = TreeSchemaTokens();
  const std::set<std::string> registered = RegisteredTokens();

  for (const std::string& token : in_tree) {
    EXPECT_TRUE(registered.count(token))
        << "schema `" << token << "` appears in src/bench/tools but is "
        << "missing from tools/version_schemas.h (--version would omit it)";
  }
  for (const std::string& token : registered) {
    EXPECT_TRUE(in_tree.count(token))
        << "schema `" << token << "` is registered for --version but no "
        << "longer appears anywhere in src/bench/tools (stale registry?)";
  }
}

TEST(VersionSchemasTest, CollectorSeesKnownShapes) {
  // The collector must match the same grammar the schema-docs lint rule
  // uses: multi-word tokens, single occurrences, and dedup.
  auto tokens = lint::CollectSchemaTokens(
      "a dynvote-trace-v1 b dynvote-hotpath-bench-v1 dynvote-trace-v1");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "dynvote-trace-v1");
  EXPECT_EQ(tokens[1], "dynvote-hotpath-bench-v1");
  EXPECT_TRUE(lint::CollectSchemaTokens("no schemas here").empty());
}

}  // namespace
}  // namespace dynvote
