#include "model/access_model.h"

#include <gtest/gtest.h>

namespace dynvote {
namespace {

TEST(AccessProcessTest, MakeValidates) {
  Simulator sim;
  AccessOptions bad_rate;
  bad_rate.rate_per_day = 0.0;
  EXPECT_FALSE(AccessProcess::Make(&sim, bad_rate, 1).ok());
  AccessOptions bad_write;
  bad_write.write_fraction = 1.5;
  EXPECT_FALSE(AccessProcess::Make(&sim, bad_write, 1).ok());
  EXPECT_FALSE(AccessProcess::Make(nullptr, AccessOptions{}, 1).ok());
}

TEST(AccessProcessTest, PoissonRateApproximatelyCorrect) {
  Simulator sim;
  AccessOptions options;
  options.rate_per_day = 2.0;
  auto access = AccessProcess::Make(&sim, options, 7).MoveValue();
  int count = 0;
  access->set_callback([&](AccessType) { ++count; });
  access->Start();
  ASSERT_TRUE(sim.RunUntil(Days(5000)).ok());
  EXPECT_NEAR(count / 5000.0, 2.0, 0.1);
  EXPECT_EQ(access->total_accesses(), static_cast<std::uint64_t>(count));
}

TEST(AccessProcessTest, DeterministicArrivals) {
  Simulator sim;
  AccessOptions options;
  options.rate_per_day = 1.0;
  options.deterministic = true;
  auto access = AccessProcess::Make(&sim, options, 7).MoveValue();
  std::vector<double> times;
  access->set_callback([&](AccessType) { times.push_back(sim.Now()); });
  access->Start();
  ASSERT_TRUE(sim.RunUntil(Days(5.5)).ok());
  ASSERT_EQ(times.size(), 5u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_DOUBLE_EQ(times[i], static_cast<double>(i + 1));
  }
}

TEST(AccessProcessTest, WriteFractionRespected) {
  Simulator sim;
  AccessOptions options;
  options.rate_per_day = 10.0;
  options.write_fraction = 0.25;
  auto access = AccessProcess::Make(&sim, options, 13).MoveValue();
  int writes = 0;
  int total = 0;
  access->set_callback([&](AccessType type) {
    ++total;
    if (type == AccessType::kWrite) ++writes;
  });
  access->Start();
  ASSERT_TRUE(sim.RunUntil(Days(2000)).ok());
  EXPECT_NEAR(static_cast<double>(writes) / total, 0.25, 0.02);
}

TEST(AccessProcessTest, AllReadsOrAllWrites) {
  for (double fraction : {0.0, 1.0}) {
    Simulator sim;
    AccessOptions options;
    options.rate_per_day = 5.0;
    options.write_fraction = fraction;
    auto access = AccessProcess::Make(&sim, options, 17).MoveValue();
    bool mixed = false;
    access->set_callback([&](AccessType type) {
      bool is_write = type == AccessType::kWrite;
      if (is_write != (fraction == 1.0)) mixed = true;
    });
    access->Start();
    ASSERT_TRUE(sim.RunUntil(Days(100)).ok());
    EXPECT_FALSE(mixed);
  }
}

TEST(AccessProcessTest, DisabledGeneratesNothing) {
  Simulator sim;
  AccessOptions options;
  options.enabled = false;
  options.rate_per_day = -5.0;  // ignored when disabled
  auto access = AccessProcess::Make(&sim, options, 19).MoveValue();
  int count = 0;
  access->set_callback([&](AccessType) { ++count; });
  access->Start();
  ASSERT_TRUE(sim.RunUntil(Days(100)).ok());
  EXPECT_EQ(count, 0);
  EXPECT_TRUE(sim.Idle());
}

}  // namespace
}  // namespace dynvote
