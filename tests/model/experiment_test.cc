#include "model/experiment.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/mcv.h"
#include "core/registry.h"
#include "core/test_topologies.h"

namespace dynvote {
namespace {

ExperimentOptions ShortOptions() {
  ExperimentOptions options;
  options.warmup = Days(30);
  options.num_batches = 5;
  options.batch_length = Years(2);
  options.seed = 12345;
  return options;
}

TEST(ExperimentTest, ValidatesInputs) {
  ExperimentSpec spec;  // null topology
  std::vector<std::unique_ptr<ConsistencyProtocol>> none;
  EXPECT_FALSE(RunAvailabilityExperiment(spec, std::move(none)).ok());

  auto paper = MakePaperNetwork();
  ASSERT_TRUE(paper.ok());
  ExperimentSpec spec2;
  spec2.topology = paper->topology;
  spec2.profiles = paper->profiles;
  std::vector<std::unique_ptr<ConsistencyProtocol>> empty;
  EXPECT_TRUE(RunAvailabilityExperiment(spec2, std::move(empty))
                  .status()
                  .IsInvalidArgument());
}

TEST(ExperimentTest, RunPaperExperimentProducesResults) {
  auto results = RunPaperExperiment('A', {"MCV", "LDV"}, ShortOptions());
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].name, "MCV");
  EXPECT_EQ((*results)[1].name, "LDV");
  for (const PolicyResult& r : *results) {
    EXPECT_GE(r.unavailability, 0.0);
    EXPECT_LE(r.unavailability, 1.0);
    EXPECT_NEAR(r.measured_time, Years(10), 1e-6);
    EXPECT_GT(r.accesses_attempted, 3000u);
    EXPECT_GT(r.accesses_granted, 0u);
    EXPECT_LE(r.accesses_granted, r.accesses_attempted);
    EXPECT_EQ(r.stats.num_batches, 5);
    EXPECT_EQ(r.dual_majority_instants, 0u);
    EXPECT_GT(r.messages.Total(), 0u);
  }
}

TEST(ExperimentTest, UnknownConfigurationFails) {
  EXPECT_TRUE(RunPaperExperiment('Z', {"MCV"}, ShortOptions())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RunPaperExperiment('A', {"NOPE"}, ShortOptions())
                  .status()
                  .IsInvalidArgument());
}

TEST(ExperimentTest, DeterministicForFixedSeed) {
  auto a = RunPaperExperiment('B', PaperProtocolNames(), ShortOptions());
  auto b = RunPaperExperiment('B', PaperProtocolNames(), ShortOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].unavailability, (*b)[i].unavailability);
    EXPECT_EQ((*a)[i].num_unavailable_periods,
              (*b)[i].num_unavailable_periods);
    EXPECT_EQ((*a)[i].messages.Total(), (*b)[i].messages.Total());
  }
}

TEST(ExperimentTest, DifferentSeedsDiffer) {
  ExperimentOptions o1 = ShortOptions();
  ExperimentOptions o2 = ShortOptions();
  o2.seed = 54321;
  auto a = RunPaperExperiment('B', {"LDV"}, o1);
  auto b = RunPaperExperiment('B', {"LDV"}, o2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE((*a)[0].unavailability, (*b)[0].unavailability);
}

TEST(ExperimentTest, SingleCopyMatchesMarkovTheory) {
  // One copy on a failing site: the file is available iff the site is up,
  // for every protocol. Exponential failure (MTTF m) + exponential repair
  // (mean r) gives unavailability r / (m + r) — a closed-form check of
  // the simulation end to end (process model, protocol, tracker).
  auto topo = testing_util::SingleSegment(1);
  SiteProfile p;
  p.name = "solo";
  p.mttf_days = 10.0;
  p.hardware_fraction = 1.0;
  p.hw_repair_exp_hours = 24.0;  // 1 day

  ExperimentSpec spec;
  spec.topology = topo;
  spec.profiles = {p};
  spec.options.warmup = Days(100);
  spec.options.num_batches = 20;
  spec.options.batch_length = Years(50);
  spec.options.seed = 777;

  std::vector<std::unique_ptr<ConsistencyProtocol>> protocols;
  protocols.push_back(MakeProtocolByName("LDV", topo, SiteSet{0}).MoveValue());
  protocols.push_back(MakeProtocolByName("MCV", topo, SiteSet{0}).MoveValue());
  auto results = RunAvailabilityExperiment(spec, std::move(protocols));
  ASSERT_TRUE(results.ok()) << results.status();
  const double expected = 1.0 / 11.0;
  for (const PolicyResult& r : *results) {
    EXPECT_NEAR(r.unavailability, expected, 0.01) << r.name;
    // Mean unavailable period should approximate the mean repair time.
    EXPECT_NEAR(r.mean_unavailable_duration, 1.0, 0.1) << r.name;
  }
}

TEST(ExperimentTest, TwoCopyMcvMatchesSeriesSystem) {
  // Strict-majority MCV on two copies needs both sites up:
  // unavailability = 1 - A1*A2 for independent sites.
  auto topo = testing_util::SingleSegment(2);
  SiteProfile p;
  p.name = "s";
  p.mttf_days = 20.0;
  p.hardware_fraction = 1.0;
  p.hw_repair_exp_hours = 48.0;  // 2 days

  ExperimentSpec spec;
  spec.topology = topo;
  spec.profiles = {p, p};
  spec.options.warmup = Days(100);
  spec.options.num_batches = 20;
  spec.options.batch_length = Years(50);
  spec.options.seed = 778;

  McvOptions options;
  options.tie_break = TieBreak::kNone;
  std::vector<std::unique_ptr<ConsistencyProtocol>> protocols;
  protocols.push_back(
      MajorityConsensusVoting::Make(SiteSet{0, 1}, options).MoveValue());
  auto results = RunAvailabilityExperiment(spec, std::move(protocols));
  ASSERT_TRUE(results.ok()) << results.status();
  const double a = 20.0 / 22.0;
  EXPECT_NEAR((*results)[0].unavailability, 1.0 - a * a, 0.01);
}

TEST(ExperimentTest, TopologicalVariantsMayForkButAreCounted) {
  // Configuration D is where the dual-majority hazard manifests; the run
  // must complete (no CHECK) and report the tally.
  auto results = RunPaperExperiment('D', {"TDV", "OTDV"}, ShortOptions());
  ASSERT_TRUE(results.ok()) << results.status();
  // Not asserting > 0: short runs may not hit it. The full-length Table 2
  // runs do; what matters here is the accounting path works.
  for (const PolicyResult& r : *results) {
    EXPECT_GE(r.dual_majority_instants, 0u);
  }
}

TEST(ExperimentTest, HigherAccessRateBringsOdvTowardLdv) {
  // The optimism trade-off (paper Section 4): more frequent accesses mean
  // fresher state. ODV at 32 accesses/day must be at least as close to
  // LDV as ODV at 1/32 per day.
  ExperimentOptions slow = ShortOptions();
  slow.batch_length = Years(10);
  slow.access.rate_per_day = 1.0 / 32.0;
  ExperimentOptions fast = slow;
  fast.access.rate_per_day = 32.0;

  auto slow_r = RunPaperExperiment('B', {"LDV", "ODV"}, slow);
  auto fast_r = RunPaperExperiment('B', {"LDV", "ODV"}, fast);
  ASSERT_TRUE(slow_r.ok());
  ASSERT_TRUE(fast_r.ok());
  double slow_gap = std::abs((*slow_r)[1].unavailability -
                             (*slow_r)[0].unavailability);
  double fast_gap = std::abs((*fast_r)[1].unavailability -
                             (*fast_r)[0].unavailability);
  EXPECT_LE(fast_gap, slow_gap + 1e-9);
}

TEST(ExperimentTest, MessageTrafficOrdering) {
  // Instantaneous protocols pay connection-vector traffic on every
  // network event; optimistic ones only pay per access — the paper's
  // efficiency argument (Section 2.1).
  auto results =
      RunPaperExperiment('B', {"MCV", "LDV", "ODV"}, ShortOptions());
  ASSERT_TRUE(results.ok());
  const PolicyResult& mcv = (*results)[0];
  const PolicyResult& ldv = (*results)[1];
  const PolicyResult& odv = (*results)[2];
  EXPECT_GT(ldv.messages.count(MessageKind::kInstantRefresh), 0u);
  EXPECT_EQ(odv.messages.count(MessageKind::kInstantRefresh), 0u);
  EXPECT_EQ(mcv.messages.count(MessageKind::kInstantRefresh), 0u);
  // ODV's total control traffic is within a small factor of MCV's.
  double ratio = static_cast<double>(odv.messages.ControlTotal()) /
                 static_cast<double>(mcv.messages.ControlTotal());
  EXPECT_LT(ratio, 1.5);
}

}  // namespace
}  // namespace dynvote
