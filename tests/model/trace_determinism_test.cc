// Tracing must be a pure observer: collecting traces/metrics may never
// perturb the statistical outputs, the event streams must be identical
// for any worker count and across same-seed runs, and the trace's access
// accounting must reconcile exactly with the experiment's counters.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/registry.h"
#include "model/export.h"
#include "model/replicated_experiment.h"
#include "obs/binary_trace.h"
#include "obs/trace_reader.h"

namespace dynvote {
namespace {

ExperimentOptions ShortOptions() {
  ExperimentOptions options;
  options.warmup = Days(30);
  options.num_batches = 5;
  options.batch_length = Years(2);
  options.seed = 12345;
  return options;
}

ReplicationOptions Reps(int replications, int jobs, bool collect) {
  ReplicationOptions r;
  r.replications = replications;
  r.jobs = jobs;
  r.collect_traces = collect;
  r.collect_metrics = collect;
  return r;
}

Result<ReplicatedResults> RunConfigB(const ReplicationOptions& reps) {
  return RunReplicatedPaperExperiment('B', PaperProtocolNames(),
                                      ShortOptions(), reps);
}

std::string JoinTraces(const ReplicatedResults& results) {
  std::string out;
  for (const std::string& body : results.traces) out += body;
  return out;
}

TEST(TraceDeterminismTest, TracingNeverChangesStatisticalOutputs) {
  auto untraced = RunConfigB(Reps(3, 2, /*collect=*/false));
  ASSERT_TRUE(untraced.ok()) << untraced.status();
  auto traced = RunConfigB(Reps(3, 2, /*collect=*/true));
  ASSERT_TRUE(traced.ok()) << traced.status();

  // Byte-identical exported JSON: the strongest form of "no perturbation".
  EXPECT_EQ(ReplicatedResultsToJson("config-B", *untraced),
            ReplicatedResultsToJson("config-B", *traced));
  EXPECT_TRUE(untraced->traces.empty());
  EXPECT_TRUE(untraced->metrics.empty());
  ASSERT_EQ(traced->traces.size(), 3u);
  EXPECT_FALSE(traced->metrics.empty());
}

TEST(TraceDeterminismTest, TracesAreIdenticalForAnyJobCount) {
  auto serial = RunConfigB(Reps(4, 1, /*collect=*/true));
  ASSERT_TRUE(serial.ok()) << serial.status();
  auto parallel = RunConfigB(Reps(4, 4, /*collect=*/true));
  ASSERT_TRUE(parallel.ok()) << parallel.status();

  EXPECT_EQ(ReplicatedResultsToJson("config-B", *serial),
            ReplicatedResultsToJson("config-B", *parallel));
  ASSERT_EQ(serial->traces.size(), parallel->traces.size());
  for (std::size_t r = 0; r < serial->traces.size(); ++r) {
    EXPECT_EQ(serial->traces[r], parallel->traces[r]) << "replication " << r;
  }
  EXPECT_EQ(serial->metrics.ToJson(), parallel->metrics.ToJson());
}

TEST(TraceDeterminismTest, SameSeedRunsProduceIdenticalEventStreams) {
  auto first = RunConfigB(Reps(2, 2, /*collect=*/true));
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = RunConfigB(Reps(2, 2, /*collect=*/true));
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_EQ(first->traces.size(), second->traces.size());
  for (std::size_t r = 0; r < first->traces.size(); ++r) {
    EXPECT_EQ(first->traces[r], second->traces[r]) << "replication " << r;
  }
}

TEST(TraceDeterminismTest, EventsCarryTheirReplicationIndex) {
  auto traced = RunConfigB(Reps(2, 2, /*collect=*/true));
  ASSERT_TRUE(traced.ok()) << traced.status();
  for (std::size_t r = 0; r < traced->traces.size(); ++r) {
    std::string tag = "\"rep\":" + std::to_string(r);
    ASSERT_FALSE(traced->traces[r].empty());
    std::istringstream lines(traced->traces[r]);
    std::string line;
    while (std::getline(lines, line)) {
      ASSERT_NE(line.find(tag), std::string::npos)
          << "replication " << r << " line: " << line;
    }
  }
}

TEST(TraceDeterminismTest, BinaryTracesAreIdenticalForAnyJobCount) {
  ReplicationOptions serial_opts = Reps(3, 1, /*collect=*/true);
  serial_opts.trace_format = TraceFormat::kBinary;
  ReplicationOptions parallel_opts = Reps(3, 3, /*collect=*/true);
  parallel_opts.trace_format = TraceFormat::kBinary;
  auto serial = RunConfigB(serial_opts);
  ASSERT_TRUE(serial.ok()) << serial.status();
  auto parallel = RunConfigB(parallel_opts);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ASSERT_EQ(serial->traces.size(), 3u);
  for (std::size_t r = 0; r < serial->traces.size(); ++r) {
    EXPECT_EQ(serial->traces[r], parallel->traces[r]) << "replication " << r;
  }
  EXPECT_EQ(ReplicatedResultsToJson("config-B", *serial),
            ReplicatedResultsToJson("config-B", *parallel));
}

TEST(TraceDeterminismTest, BinaryTraceConvertsToTheExactJsonlRun) {
  // The end-to-end byte-identity contract behind `dynvote trace-convert`:
  // a binary collection of the same seed, decoded to JSONL, matches the
  // JSONL collection byte for byte — header line included.
  ReplicationOptions jsonl_opts = Reps(2, 2, /*collect=*/true);
  auto jsonl = RunConfigB(jsonl_opts);
  ASSERT_TRUE(jsonl.ok()) << jsonl.status();
  ReplicationOptions binary_opts = Reps(2, 2, /*collect=*/true);
  binary_opts.trace_format = TraceFormat::kBinary;
  auto binary = RunConfigB(binary_opts);
  ASSERT_TRUE(binary.ok()) << binary.status();

  const std::uint64_t seed = ShortOptions().seed;
  std::istringstream binary_file(BinaryTraceHeader(seed) +
                                 JoinTraces(*binary));
  std::ostringstream converted;
  auto events = ConvertBinaryTraceToJsonl(binary_file, converted);
  ASSERT_TRUE(events.ok()) << events.status();
  EXPECT_GT(*events, 0u);

  std::string direct = TraceHeaderLine(seed) + "\n" + JoinTraces(*jsonl);
  EXPECT_EQ(converted.str(), direct);
}

TEST(TraceDeterminismTest, TraceAccessCountsReconcileWithResults) {
  auto traced = RunConfigB(Reps(3, 2, /*collect=*/true));
  ASSERT_TRUE(traced.ok()) << traced.status();

  std::istringstream trace(JoinTraces(*traced));
  TraceSummary summary = SummarizeTrace(trace);
  EXPECT_EQ(summary.malformed_lines, 0u);

  ASSERT_FALSE(traced->aggregate.empty());
  for (const AggregatePolicyResult& agg : traced->aggregate) {
    ASSERT_EQ(summary.per_protocol.count(agg.name), 1u) << agg.name;
    const ProtocolTraceSummary& proto = summary.per_protocol.at(agg.name);
    // Exactly one access event per UserAccess call: the trace totals
    // reconcile with the experiment's own counters, not approximately
    // but exactly.
    EXPECT_EQ(proto.accesses,
              static_cast<std::uint64_t>(agg.accesses_attempted))
        << agg.name;
    EXPECT_EQ(proto.granted,
              static_cast<std::uint64_t>(agg.accesses_granted))
        << agg.name;
    EXPECT_EQ(proto.denied, proto.accesses - proto.granted) << agg.name;

    // The merged metrics shard agrees with both.
    auto counter = [&](const std::string& name) -> std::uint64_t {
      auto it = traced->metrics.counters().find(name + "{protocol=" +
                                                agg.name + "}");
      return it == traced->metrics.counters().end() ? 0 : it->second;
    };
    EXPECT_EQ(counter("accesses_attempted"), proto.accesses) << agg.name;
    EXPECT_EQ(counter("accesses_granted"), proto.granted) << agg.name;
  }
}

}  // namespace
}  // namespace dynvote
