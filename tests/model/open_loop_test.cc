// The serving model's building blocks (docs/serving.md): argument
// validation and arrival determinism of the open-loop traffic source,
// and ServingStage's Lindley queue arithmetic, message attribution and
// metrics flush.

#include "model/open_loop.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "repl/message_bus.h"
#include "sim/simulator.h"
#include "util/site_set.h"

namespace dynvote {
namespace {

ServingOptions TestServing() {
  ServingOptions o;
  o.enabled = true;
  o.arrival_rate_per_day = 90.0;
  o.service_time_ms = 2.0;
  o.msg_cost_ms = 0.5;
  o.write_fraction = 0.5;
  return o;
}

TEST(OpenLoopProcessTest, MakeRejectsBadArguments) {
  Simulator sim;
  const SiteSet sites{0, 1, 2};
  EXPECT_FALSE(
      OpenLoopProcess::Make(nullptr, sites, TestServing(), 1).ok());
  EXPECT_FALSE(
      OpenLoopProcess::Make(&sim, SiteSet{}, TestServing(), 1).ok());
  ServingOptions bad_rate = TestServing();
  bad_rate.arrival_rate_per_day = 0.0;
  EXPECT_FALSE(OpenLoopProcess::Make(&sim, sites, bad_rate, 1).ok());
  ServingOptions bad_service = TestServing();
  bad_service.service_time_ms = -1.0;
  EXPECT_FALSE(OpenLoopProcess::Make(&sim, sites, bad_service, 1).ok());
  ServingOptions bad_cost = TestServing();
  bad_cost.msg_cost_ms = -0.1;
  EXPECT_FALSE(OpenLoopProcess::Make(&sim, sites, bad_cost, 1).ok());
  ServingOptions bad_fraction = TestServing();
  bad_fraction.write_fraction = 1.5;
  EXPECT_FALSE(OpenLoopProcess::Make(&sim, sites, bad_fraction, 1).ok());
}

struct Arrival {
  double t;
  SiteId site;
  AccessType type;

  bool operator==(const Arrival&) const = default;
};

std::vector<Arrival> CollectArrivals(std::uint64_t seed, double horizon) {
  Simulator sim;
  auto process =
      OpenLoopProcess::Make(&sim, SiteSet{1, 3, 5}, TestServing(), seed);
  EXPECT_TRUE(process.ok()) << process.status();
  std::vector<Arrival> arrivals;
  (*process)->set_callback([&](SiteId site, AccessType type) {
    arrivals.push_back(Arrival{sim.Now(), site, type});
  });
  (*process)->Start();
  EXPECT_TRUE(sim.RunUntil(horizon).ok());
  EXPECT_EQ((*process)->total_arrivals(), arrivals.size());
  return arrivals;
}

TEST(OpenLoopProcessTest, SameSeedReproducesTheArrivalSequence) {
  const std::vector<Arrival> first = CollectArrivals(42, 20.0);
  const std::vector<Arrival> second = CollectArrivals(42, 20.0);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first, CollectArrivals(43, 20.0));
}

TEST(OpenLoopProcessTest, SplitsTheAggregateRateAcrossReplicas) {
  // 90/day over 50 days: expect ~4500 arrivals, ~1500 per site, both
  // access types drawn. Deterministic, so the loose bands never flake.
  const std::vector<Arrival> arrivals = CollectArrivals(7, 50.0);
  EXPECT_GT(arrivals.size(), 3600u);
  EXPECT_LT(arrivals.size(), 5400u);
  std::uint64_t per_site[6] = {};
  std::uint64_t writes = 0;
  for (const Arrival& a : arrivals) {
    ASSERT_GE(a.site, 0);
    ASSERT_LT(a.site, 6);
    ++per_site[a.site];
    if (a.type == AccessType::kWrite) ++writes;
  }
  EXPECT_EQ(per_site[0] + per_site[2] + per_site[4], 0u);
  for (SiteId site : {1, 3, 5}) {
    EXPECT_GT(per_site[site], 1000u) << "site " << site;
    EXPECT_LT(per_site[site], 2000u) << "site " << site;
  }
  EXPECT_GT(writes, arrivals.size() / 3);
  EXPECT_LT(writes, 2 * arrivals.size() / 3);
}

TEST(ServingStageTest, FirstArrivalLatencyIsTheServiceTime) {
  ServingStage stage("ODV", TestServing(), /*num_sites=*/4);
  // service = 2.0 ms base + 0.5 ms x 4 control messages.
  const ServingStage::Outcome out =
      stage.OnArrival(/*now_days=*/10.0, /*origin=*/2, /*msgs=*/4,
                      /*granted=*/true);
  EXPECT_NEAR(out.latency_ms, 4.0, 1e-6);
  EXPECT_EQ(out.depth, 0u);
  EXPECT_EQ(stage.served(), 1u);
  EXPECT_EQ(stage.granted(), 1u);
  EXPECT_EQ(stage.rejected(), 0u);
}

TEST(ServingStageTest, BackToBackArrivalsQueueLindleyStyle) {
  ServingStage stage("ODV", TestServing(), 4);
  const double t = 1.0;
  const auto first = stage.OnArrival(t, 0, 0, true);  // 2 ms service
  EXPECT_NEAR(first.latency_ms, 2.0, 1e-6);
  const auto second = stage.OnArrival(t, 0, 0, false);  // waits for first
  EXPECT_NEAR(second.latency_ms, 4.0, 1e-6);
  EXPECT_EQ(second.depth, 1u);
  // A different replica has its own server.
  const auto elsewhere = stage.OnArrival(t, 3, 0, true);
  EXPECT_NEAR(elsewhere.latency_ms, 2.0, 1e-6);
  EXPECT_EQ(elsewhere.depth, 0u);
  // Once both completions have passed, the origin queue drains.
  const auto after = stage.OnArrival(t + 1.0, 0, 0, true);
  EXPECT_NEAR(after.latency_ms, 2.0, 1e-6);
  EXPECT_EQ(after.depth, 0u);
  EXPECT_EQ(stage.served(), 4u);
  EXPECT_EQ(stage.granted(), 3u);
}

TEST(ServingStageTest, AttributeMessagesReturnsTheControlDelta) {
  ServingStage stage("ODV", TestServing(), 2);
  MessageCounter counter;
  counter.Add(MessageKind::kProbe, 3);
  counter.Add(MessageKind::kFileCopy, 2);  // data plane: not control cost
  EXPECT_EQ(stage.AttributeMessages(counter, ServingStage::Phase::kAccess),
            3u);
  counter.Add(MessageKind::kCommit, 1);
  counter.Add(MessageKind::kInstantRefresh, 4);
  EXPECT_EQ(stage.AttributeMessages(counter, ServingStage::Phase::kRefresh),
            5u);
  // No movement since the last call: zero delta.
  EXPECT_EQ(stage.AttributeMessages(counter, ServingStage::Phase::kAccess),
            0u);
}

TEST(ServingStageTest, FinishFlushesTheServingKeys) {
  ServingStage stage("ODV", TestServing(), 2);
  MessageCounter counter;
  counter.Add(MessageKind::kProbe, 2);
  counter.Add(MessageKind::kFileCopy, 1);
  const std::uint64_t msgs =
      stage.AttributeMessages(counter, ServingStage::Phase::kAccess);
  EXPECT_EQ(msgs, 2u);
  stage.OnArrival(0.0, 0, msgs, true);
  stage.OnArrival(0.0, 0, 0, false);
  stage.OnRejected();
  MetricsShard shard;
  stage.Finish(&shard);
  EXPECT_EQ(shard.counters().at("serving_arrivals{protocol=ODV}"), 3u);
  EXPECT_EQ(shard.counters().at("serving_rejected{protocol=ODV}"), 1u);
  EXPECT_EQ(shard.counters().at("serving_granted{protocol=ODV}"), 1u);
  EXPECT_EQ(shard.counters().at("serving_denied{protocol=ODV}"), 1u);
  EXPECT_EQ(shard.counters().at(
                "serving_messages{kind=probe,phase=access,protocol=ODV}"),
            2u);
  EXPECT_EQ(
      shard.counters().at(
          "serving_messages{kind=file_copy,phase=access,protocol=ODV}"),
      1u);
  // Kinds the protocol never sent are not exported as zero cells.
  EXPECT_EQ(shard.counters().count(
                "serving_messages{kind=commit,phase=access,protocol=ODV}"),
            0u);
  const HistogramData& lat =
      shard.histograms().at("serving_latency_ms{protocol=ODV}");
  EXPECT_EQ(lat.count, 2u);
  EXPECT_NEAR(lat.min, 3.0, 1e-6);  // 2.0 base + 0.5 x 2 msgs
  EXPECT_EQ(shard.gauges().at("serving_queue_depth_max{protocol=ODV}"),
            1.0);
  stage.Finish(nullptr);  // null shard is a safe no-op
}

}  // namespace
}  // namespace dynvote
