#include "model/replicated_experiment.h"

#include <gtest/gtest.h>

#include "core/registry.h"
#include "model/export.h"
#include "util/rng.h"

namespace dynvote {
namespace {

ExperimentOptions ShortOptions() {
  ExperimentOptions options;
  options.warmup = Days(30);
  options.num_batches = 5;
  options.batch_length = Years(2);
  options.seed = 12345;
  return options;
}

ReplicationOptions Reps(int replications, int jobs) {
  ReplicationOptions r;
  r.replications = replications;
  r.jobs = jobs;
  return r;
}

TEST(ReplicationSeedTest, ReplicationZeroIsTheMasterSeed) {
  EXPECT_EQ(ReplicationSeed(12345, 0), 12345u);
  EXPECT_EQ(ReplicationSeed(0, 0), 0u);
}

TEST(ReplicationSeedTest, FollowsTheSplitMixStream) {
  SplitMix64 mix(99);
  EXPECT_EQ(ReplicationSeed(99, 1), mix.Next());
  EXPECT_EQ(ReplicationSeed(99, 2), mix.Next());
  EXPECT_EQ(ReplicationSeed(99, 3), mix.Next());
}

TEST(ReplicationSeedTest, SeedsAreDistinct) {
  for (int r = 1; r < 16; ++r) {
    EXPECT_NE(ReplicationSeed(12345, r), ReplicationSeed(12345, r - 1));
  }
}

TEST(ReplicatedExperimentTest, ValidatesOptions) {
  EXPECT_TRUE(RunReplicatedPaperExperiment('A', {"MCV"}, ShortOptions(),
                                           Reps(0, 1))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RunReplicatedPaperExperiment('A', {"MCV"}, ShortOptions(),
                                           Reps(1, -1))
                  .status()
                  .IsInvalidArgument());
}

TEST(ReplicatedExperimentTest, SingleReplicationMatchesSequentialRun) {
  // --reps=1 must reproduce today's sequential output exactly: same seed,
  // same sample path, same counters.
  auto sequential =
      RunPaperExperiment('B', PaperProtocolNames(), ShortOptions());
  ASSERT_TRUE(sequential.ok()) << sequential.status();

  auto replicated = RunReplicatedPaperExperiment(
      'B', PaperProtocolNames(), ShortOptions(), Reps(1, 1));
  ASSERT_TRUE(replicated.ok()) << replicated.status();
  ASSERT_EQ(replicated->per_replication.size(), 1u);
  ASSERT_EQ(replicated->seeds.size(), 1u);
  EXPECT_EQ(replicated->seeds[0], ShortOptions().seed);

  const std::vector<PolicyResult>& rep0 = replicated->per_replication[0];
  ASSERT_EQ(rep0.size(), sequential->size());
  for (std::size_t p = 0; p < rep0.size(); ++p) {
    EXPECT_EQ(rep0[p].name, (*sequential)[p].name);
    EXPECT_EQ(rep0[p].unavailability, (*sequential)[p].unavailability);
    EXPECT_EQ(rep0[p].accesses_attempted,
              (*sequential)[p].accesses_attempted);
    EXPECT_EQ(rep0[p].accesses_granted, (*sequential)[p].accesses_granted);
    EXPECT_EQ(rep0[p].messages.Total(), (*sequential)[p].messages.Total());
    EXPECT_EQ(rep0[p].time_to_first_outage,
              (*sequential)[p].time_to_first_outage);
  }

  // MeanPolicyResults with R=1 is exactly replication 0.
  std::vector<PolicyResult> mean = MeanPolicyResults(*replicated);
  ASSERT_EQ(mean.size(), rep0.size());
  for (std::size_t p = 0; p < mean.size(); ++p) {
    EXPECT_EQ(mean[p].unavailability, rep0[p].unavailability);
    EXPECT_EQ(mean[p].stats.ci95_halfwidth, rep0[p].stats.ci95_halfwidth);
  }
}

TEST(ReplicatedExperimentTest, JobCountNeverChangesResults) {
  // The determinism contract: serialized output is byte-identical for
  // any --jobs value.
  auto serial = RunReplicatedPaperExperiment('B', {"MCV", "LDV", "ODV"},
                                             ShortOptions(), Reps(4, 1));
  ASSERT_TRUE(serial.ok()) << serial.status();
  auto parallel = RunReplicatedPaperExperiment('B', {"MCV", "LDV", "ODV"},
                                               ShortOptions(), Reps(4, 8));
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(ReplicatedResultsToJson("B", *serial),
            ReplicatedResultsToJson("B", *parallel));
}

TEST(ReplicatedExperimentTest, AggregateMatchesPerReplicationRows) {
  auto results = RunReplicatedPaperExperiment('A', {"MCV", "LDV"},
                                              ShortOptions(), Reps(3, 2));
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->per_replication.size(), 3u);
  ASSERT_EQ(results->aggregate.size(), 2u);

  for (std::size_t p = 0; p < results->aggregate.size(); ++p) {
    const AggregatePolicyResult& agg = results->aggregate[p];
    EXPECT_EQ(agg.replications, 3);
    double sum = 0.0;
    std::uint64_t attempted = 0;
    for (const auto& rows : results->per_replication) {
      EXPECT_EQ(rows[p].name, agg.name);
      sum += rows[p].unavailability;
      attempted += rows[p].accesses_attempted;
    }
    EXPECT_NEAR(agg.unavailability.mean, sum / 3.0, 1e-15);
    EXPECT_EQ(agg.accesses_attempted, attempted);
    EXPECT_EQ(agg.unavailability.num_samples +
                  agg.unavailability.num_censored,
              3);
    // Every replication either saw an outage or was censored.
    EXPECT_EQ(agg.time_to_first_outage.num_samples +
                  agg.time_to_first_outage.num_censored,
              3);
  }
}

TEST(ReplicatedExperimentTest, ReplicationsAreIndependentSamplePaths) {
  // Different seeds must give different sample paths; with three 10-year
  // replications of a partition-prone configuration the access counts
  // essentially cannot collide all at once.
  auto results = RunReplicatedPaperExperiment('B', {"LDV"}, ShortOptions(),
                                              Reps(3, 1));
  ASSERT_TRUE(results.ok()) << results.status();
  const auto& reps = results->per_replication;
  EXPECT_FALSE(reps[0][0].accesses_attempted ==
                   reps[1][0].accesses_attempted &&
               reps[1][0].accesses_attempted ==
                   reps[2][0].accesses_attempted)
      << "three replications produced identical access streams";
}

TEST(ReplicatedExperimentTest, FactoryErrorsPropagate) {
  auto results = RunReplicatedPaperExperiment('A', {"NOPE"}, ShortOptions(),
                                              Reps(2, 2));
  EXPECT_TRUE(results.status().IsInvalidArgument());
}

TEST(ReplicatedExperimentTest, NullFactoryIsRejected) {
  ExperimentSpec spec;
  EXPECT_TRUE(RunReplicatedExperiment(spec, ProtocolSetFactory(),
                                      Reps(1, 1))
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace dynvote
