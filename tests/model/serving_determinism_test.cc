// The serving model inherits every determinism contract of the
// replicated harness: byte-identical outputs for any --jobs, collection
// that never perturbs statistics, --objects grouping falling back
// cleanly (the batched engine has no serving stage), and exact
// reconciliation between trace-derived and metrics-derived serving
// counters.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

#include "core/registry.h"
#include "model/export.h"
#include "model/open_loop.h"
#include "model/replicated_experiment.h"
#include "obs/trace_reader.h"

namespace dynvote {
namespace {

ExperimentOptions ServingShortOptions() {
  ExperimentOptions options;
  options.warmup = Days(15);
  options.num_batches = 3;
  options.batch_length = Days(40);
  options.seed = 20260808;
  options.serving.enabled = true;
  options.serving.arrival_rate_per_day = 50.0;
  options.serving.service_time_ms = 1.5;
  options.serving.msg_cost_ms = 0.2;
  return options;
}

ReplicationOptions Reps(int replications, int jobs, bool collect) {
  ReplicationOptions r;
  r.replications = replications;
  r.jobs = jobs;
  r.collect_traces = collect;
  r.collect_metrics = collect;
  return r;
}

Result<ReplicatedResults> RunServingConfigB(const ReplicationOptions& reps) {
  return RunReplicatedPaperExperiment('B', PaperProtocolNames(),
                                      ServingShortOptions(), reps);
}

std::string JoinTraces(const ReplicatedResults& results) {
  std::string out;
  for (const std::string& body : results.traces) out += body;
  return out;
}

TEST(ServingDeterminismTest, ResultsAreIdenticalForAnyJobCount) {
  auto serial = RunServingConfigB(Reps(4, 1, /*collect=*/true));
  ASSERT_TRUE(serial.ok()) << serial.status();
  auto parallel = RunServingConfigB(Reps(4, 4, /*collect=*/true));
  ASSERT_TRUE(parallel.ok()) << parallel.status();

  EXPECT_EQ(ReplicatedResultsToJson("config-B", *serial),
            ReplicatedResultsToJson("config-B", *parallel));
  ASSERT_EQ(serial->traces.size(), parallel->traces.size());
  for (std::size_t r = 0; r < serial->traces.size(); ++r) {
    EXPECT_EQ(serial->traces[r], parallel->traces[r]) << "replication " << r;
  }
  EXPECT_EQ(serial->metrics.ToJson(), parallel->metrics.ToJson());
  // The serving keys are actually there to compare.
  EXPECT_NE(serial->metrics.ToJson().find("serving_latency_ms"),
            std::string::npos);
}

TEST(ServingDeterminismTest, CollectionNeverPerturbsStatistics) {
  auto bare = RunServingConfigB(Reps(3, 2, /*collect=*/false));
  ASSERT_TRUE(bare.ok()) << bare.status();
  auto collected = RunServingConfigB(Reps(3, 2, /*collect=*/true));
  ASSERT_TRUE(collected.ok()) << collected.status();
  EXPECT_EQ(ReplicatedResultsToJson("config-B", *bare),
            ReplicatedResultsToJson("config-B", *collected));
  EXPECT_TRUE(bare->traces.empty());
  EXPECT_TRUE(bare->metrics.empty());
}

TEST(ServingDeterminismTest, ObjectGroupingDoesNotChangeServingResults) {
  // The batched multi-object engine has no serving stage; a serving run
  // with --objects > 1 must fall back to per-replication execution with
  // byte-identical output, never silently drop the serving model.
  auto plain = RunServingConfigB(Reps(3, 2, /*collect=*/false));
  ASSERT_TRUE(plain.ok()) << plain.status();
  ReplicationOptions grouped = Reps(3, 2, /*collect=*/false);
  grouped.objects = 3;
  auto via_groups = RunServingConfigB(grouped);
  ASSERT_TRUE(via_groups.ok()) << via_groups.status();
  EXPECT_EQ(ReplicatedResultsToJson("config-B", *plain),
            ReplicatedResultsToJson("config-B", *via_groups));
}

TEST(ServingDeterminismTest, TraceServingCountsReconcileWithMetrics) {
  auto traced = RunServingConfigB(Reps(3, 2, /*collect=*/true));
  ASSERT_TRUE(traced.ok()) << traced.status();

  std::istringstream trace(JoinTraces(*traced));
  TraceSummary summary = SummarizeTrace(trace);
  EXPECT_EQ(summary.malformed_lines, 0u);

  const auto& counters = traced->metrics.counters();
  auto counter = [&](const std::string& name,
                     const std::string& proto) -> std::uint64_t {
    auto it = counters.find(name + "{protocol=" + proto + "}");
    return it == counters.end() ? 0 : it->second;
  };

  ASSERT_FALSE(traced->aggregate.empty());
  for (const AggregatePolicyResult& agg : traced->aggregate) {
    ASSERT_EQ(summary.per_protocol.count(agg.name), 1u) << agg.name;
    const ProtocolTraceSummary& proto = summary.per_protocol.at(agg.name);

    // One serving event per served arrival: trace totals equal the
    // metrics counters exactly, and both equal the experiment's own
    // access accounting (every served arrival runs one UserAccess).
    const std::uint64_t arrivals = counter("serving_arrivals", agg.name);
    const std::uint64_t rejected = counter("serving_rejected", agg.name);
    ASSERT_GT(arrivals, 0u) << agg.name;
    EXPECT_EQ(proto.serving_events, arrivals - rejected) << agg.name;
    EXPECT_EQ(proto.serving_events,
              static_cast<std::uint64_t>(agg.accesses_attempted))
        << agg.name;
    EXPECT_EQ(counter("serving_granted", agg.name),
              static_cast<std::uint64_t>(agg.accesses_granted))
        << agg.name;
    EXPECT_EQ(counter("serving_granted", agg.name) +
                  counter("serving_denied", agg.name),
              proto.serving_events)
        << agg.name;

    // The latency histograms are the same HistogramData on both sides:
    // counts, buckets and extrema agree exactly. Only the sum is
    // association-sensitive (metrics add per-replication partial sums at
    // merge; the trace folds one value at a time), so it gets an
    // ulp-scale tolerance.
    auto hist = traced->metrics.histograms().find("serving_latency_ms{protocol=" +
                                                  agg.name + "}");
    ASSERT_NE(hist, traced->metrics.histograms().end()) << agg.name;
    EXPECT_EQ(proto.serving_latency_ms.count, hist->second.count) << agg.name;
    EXPECT_NEAR(proto.serving_latency_ms.sum, hist->second.sum,
                1e-9 * hist->second.sum)
        << agg.name;
    EXPECT_EQ(proto.serving_latency_ms.min, hist->second.min) << agg.name;
    EXPECT_EQ(proto.serving_latency_ms.max, hist->second.max) << agg.name;
    EXPECT_EQ(proto.serving_latency_ms.buckets, hist->second.buckets)
        << agg.name;

    // Per-access control messages: the trace sums the per-event msgs
    // field; the metrics split the same traffic by kind in the access
    // phase (file copies are data plane, excluded from the per-access
    // control cost on both sides).
    std::uint64_t access_control = 0;
    const std::string phase_suffix =
        ",phase=access,protocol=" + agg.name + "}";
    for (const auto& [key, value] : counters) {
      if (key.rfind("serving_messages{kind=", 0) != 0) continue;
      if (key.size() < phase_suffix.size() ||
          key.compare(key.size() - phase_suffix.size(), phase_suffix.size(),
                      phase_suffix) != 0) {
        continue;
      }
      if (key.find("kind=file_copy,") != std::string::npos) continue;
      access_control += value;
    }
    EXPECT_EQ(proto.serving_messages, access_control) << agg.name;
  }
}

}  // namespace
}  // namespace dynvote
