// End-to-end regression for the quorum-decision cache: the memoization is
// a pure wall-clock optimization, so a full experiment run with caching
// enabled must be bit-identical to one with --no-quorum-cache — every
// PolicyResult field and the serialized replicated-run JSON.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "model/experiment.h"
#include "model/export.h"
#include "model/replicated_experiment.h"

namespace dynvote {
namespace {

ExperimentOptions ShortRun(bool quorum_cache) {
  ExperimentOptions options;
  options.warmup = Days(30);
  options.num_batches = 5;
  options.batch_length = Years(1.0);
  options.seed = 0xD15C;
  options.quorum_cache = quorum_cache;
  return options;
}

void ExpectIdenticalResults(const PolicyResult& cached,
                            const PolicyResult& plain) {
  EXPECT_EQ(cached.name, plain.name);
  // Bit-identical, not approximately equal: the cache must not change the
  // arithmetic at all.
  EXPECT_EQ(cached.unavailability, plain.unavailability);
  EXPECT_EQ(cached.mean_unavailable_duration,
            plain.mean_unavailable_duration);
  EXPECT_EQ(cached.num_unavailable_periods, plain.num_unavailable_periods);
  EXPECT_EQ(cached.accesses_attempted, plain.accesses_attempted);
  EXPECT_EQ(cached.accesses_granted, plain.accesses_granted);
  EXPECT_EQ(cached.messages.Total(), plain.messages.Total());
  EXPECT_EQ(cached.measured_time, plain.measured_time);
  EXPECT_EQ(cached.dual_majority_instants, plain.dual_majority_instants);
  EXPECT_EQ(cached.time_to_first_outage, plain.time_to_first_outage);
  EXPECT_EQ(cached.stats.mean, plain.stats.mean);
  EXPECT_EQ(cached.stats.ci95_halfwidth, plain.stats.ci95_halfwidth);
}

TEST(QuorumCacheEquivalenceTest, PaperExperimentBitIdentical) {
  auto cached =
      RunPaperExperiment('D', PaperProtocolNames(), ShortRun(true));
  auto plain =
      RunPaperExperiment('D', PaperProtocolNames(), ShortRun(false));
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(cached->size(), plain->size());
  for (std::size_t i = 0; i < cached->size(); ++i) {
    ExpectIdenticalResults((*cached)[i], (*plain)[i]);
  }
}

TEST(QuorumCacheEquivalenceTest, ReplicatedJsonBitIdentical) {
  ReplicationOptions replication;
  replication.replications = 2;
  replication.jobs = 1;
  auto cached = RunReplicatedPaperExperiment('B', PaperProtocolNames(),
                                             ShortRun(true), replication);
  auto plain = RunReplicatedPaperExperiment('B', PaperProtocolNames(),
                                            ShortRun(false), replication);
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(ReplicatedResultsToJson("B", *cached),
            ReplicatedResultsToJson("B", *plain));
}

}  // namespace
}  // namespace dynvote
