#include "model/export.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace dynvote {
namespace {

LabeledResult SampleRow() {
  LabeledResult row;
  row.label = "B";
  row.result.name = "ODV";
  row.result.unavailability = 0.000808;
  row.result.stats.ci95_halfwidth = 0.000133;
  row.result.mean_unavailable_duration = 0.066;
  row.result.num_unavailable_periods = 2671;
  row.result.accesses_attempted = 219000;
  row.result.accesses_granted = 218800;
  row.result.messages.Add(MessageKind::kProbe, 100);
  row.result.messages.Add(MessageKind::kFileCopy, 7);
  row.result.dual_majority_instants = 0;
  row.result.measured_time = 219000.0;
  return row;
}

TEST(ExportTest, CsvHasHeaderAndRow) {
  std::string csv = ResultsToCsv({SampleRow()});
  EXPECT_NE(csv.find("label,policy,unavailability"), std::string::npos);
  EXPECT_NE(csv.find("B,ODV,0.000808"), std::string::npos);
  EXPECT_NE(csv.find(",2671,"), std::string::npos);
  // Exactly two lines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(ExportTest, CsvEmptyInput) {
  std::string csv = ResultsToCsv({});
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);  // header only
}

TEST(ExportTest, JsonWellFormedEnough) {
  std::string json = ResultsToJson({SampleRow(), SampleRow()});
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"policy\": \"ODV\""), std::string::npos);
  EXPECT_NE(json.find("\"unavailability\": 0.000808"), std::string::npos);
  EXPECT_NE(json.find("\"file_copies\": 7"), std::string::npos);
  // Two objects, comma-separated.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 2);
  EXPECT_NE(json.find("},"), std::string::npos);
}

TEST(ExportTest, WriteFileRoundTrip) {
  std::string path = ::testing::TempDir() + "/dynvote_export_test.csv";
  std::string contents = ResultsToCsv({SampleRow()});
  ASSERT_TRUE(WriteFile(path, contents).ok());
  std::ifstream in(path);
  std::string read_back((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  EXPECT_EQ(read_back, contents);
  std::remove(path.c_str());
}

TEST(ExportTest, WriteFileBadPathFails) {
  EXPECT_FALSE(WriteFile("/nonexistent-dir/x/y.csv", "data").ok());
}

}  // namespace
}  // namespace dynvote
