#include "model/failure_model.h"

#include <gtest/gtest.h>

#include "core/test_topologies.h"

namespace dynvote {
namespace {

SiteProfile SimpleProfile(double mttf_days, double repair_hours) {
  SiteProfile p;
  p.name = "site";
  p.mttf_days = mttf_days;
  p.hardware_fraction = 1.0;
  p.hw_repair_const_hours = 0.0;
  p.hw_repair_exp_hours = repair_hours;
  return p;
}

TEST(NetworkProcessModelTest, MakeValidates) {
  auto topo = testing_util::SingleSegment(2);
  Simulator sim;
  NetworkState net(topo);
  // Wrong profile count.
  EXPECT_FALSE(NetworkProcessModel::Make(&sim, &net, {SimpleProfile(10, 2)},
                                         {}, 1)
                   .ok());
  // Bad MTTF.
  EXPECT_FALSE(NetworkProcessModel::Make(
                   &sim, &net, {SimpleProfile(0, 2), SimpleProfile(10, 2)},
                   {}, 1)
                   .ok());
  // Bad hardware fraction.
  SiteProfile bad = SimpleProfile(10, 2);
  bad.hardware_fraction = 1.5;
  EXPECT_FALSE(NetworkProcessModel::Make(
                   &sim, &net, {bad, SimpleProfile(10, 2)}, {}, 1)
                   .ok());
  // Null pointers.
  EXPECT_FALSE(NetworkProcessModel::Make(nullptr, &net, {}, {}, 1).ok());
  EXPECT_FALSE(NetworkProcessModel::Make(&sim, nullptr, {}, {}, 1).ok());
}

TEST(NetworkProcessModelTest, GeneratesFailuresAndRepairs) {
  auto topo = testing_util::SingleSegment(1);
  Simulator sim;
  NetworkState net(topo);
  auto model = NetworkProcessModel::Make(&sim, &net,
                                         {SimpleProfile(10.0, 24.0)}, {}, 7)
                   .MoveValue();
  int transitions = 0;
  model->set_on_change([&]() { ++transitions; });
  model->Start();
  ASSERT_TRUE(sim.RunUntil(Years(10)).ok());
  // ~365 failures expected over 10 years; each has a failure and a repair
  // transition.
  EXPECT_GT(model->total_failures(), 200u);
  EXPECT_LT(model->total_failures(), 600u);
  EXPECT_EQ(static_cast<std::uint64_t>(transitions),
            2 * model->total_failures());
}

TEST(NetworkProcessModelTest, SingleSiteAvailabilityMatchesTheory) {
  // Exponential failures (MTTF m) with exponential repair (mean r) give
  // steady-state availability m / (m + r). This validates the whole
  // failure/repair pipeline against the Markov closed form.
  const double mttf = 10.0;
  const double repair_days = 1.0;
  auto topo = testing_util::SingleSegment(1);
  Simulator sim;
  NetworkState net(topo);
  auto model = NetworkProcessModel::Make(
                   &sim, &net, {SimpleProfile(mttf, repair_days * 24.0)},
                   {}, 99)
                   .MoveValue();
  double up_time = 0.0;
  double last_t = 0.0;
  bool was_up = true;
  model->set_on_change([&]() {
    if (was_up) up_time += sim.Now() - last_t;
    last_t = sim.Now();
    was_up = net.IsSiteUp(0);
  });
  model->Start();
  const double horizon = Years(4000);
  ASSERT_TRUE(sim.RunUntil(horizon).ok());
  if (was_up) up_time += horizon - last_t;
  double availability = up_time / horizon;
  EXPECT_NEAR(availability, mttf / (mttf + repair_days), 0.005);
}

TEST(NetworkProcessModelTest, MixedRepairsUsesRestartForSoftware) {
  // hardware_fraction = 0: every repair is a (fast) software restart, so
  // availability must be very high even with a huge hardware repair term.
  SiteProfile p = SimpleProfile(1.0, 10000.0);
  p.hardware_fraction = 0.0;
  p.restart_minutes = 1.0;
  auto topo = testing_util::SingleSegment(1);
  Simulator sim;
  NetworkState net(topo);
  auto model = NetworkProcessModel::Make(&sim, &net, {p}, {}, 5).MoveValue();
  double down_time = 0.0;
  double last_t = 0.0;
  bool was_up = true;
  model->set_on_change([&]() {
    if (!was_up) down_time += sim.Now() - last_t;
    last_t = sim.Now();
    was_up = net.IsSiteUp(0);
  });
  model->Start();
  ASSERT_TRUE(sim.RunUntil(Years(20)).ok());
  // Expected unavailability ~ 1 minute per day ~ 7e-4.
  EXPECT_LT(down_time / Years(20), 0.01);
  EXPECT_GT(model->total_failures(), 1000u);
}

TEST(NetworkProcessModelTest, MaintenanceWindowsHappen) {
  SiteProfile p = SimpleProfile(1e9, 1.0);  // effectively never fails
  p.maintenance_interval_days = 90.0;
  p.maintenance_hours = 3.0;
  auto topo = testing_util::SingleSegment(1);
  Simulator sim;
  NetworkState net(topo);
  auto model = NetworkProcessModel::Make(&sim, &net, {p}, {}, 3).MoveValue();
  double down_time = 0.0;
  double last_t = 0.0;
  bool was_up = true;
  int down_transitions = 0;
  model->set_on_change([&]() {
    if (!was_up) down_time += sim.Now() - last_t;
    if (was_up && !net.IsSiteUp(0)) ++down_transitions;
    last_t = sim.Now();
    was_up = net.IsSiteUp(0);
  });
  model->Start();
  const double horizon = Days(900.0);
  ASSERT_TRUE(sim.RunUntil(horizon).ok());
  // 9-10 windows of 3 h in 900 days.
  EXPECT_GE(down_transitions, 9);
  EXPECT_LE(down_transitions, 11);
  EXPECT_NEAR(down_time, down_transitions * Hours(3.0), 1e-9);
}

TEST(NetworkProcessModelTest, RepeaterFailuresPartition) {
  auto topo = testing_util::TwoPairSegments();
  Simulator sim;
  NetworkState net(topo);
  std::vector<SiteProfile> profiles(4, SimpleProfile(1e9, 1.0));
  RepeaterProfile bridge{"bridge", 5.0, 0.0, 24.0};
  auto model =
      NetworkProcessModel::Make(&sim, &net, profiles, {bridge}, 11)
          .MoveValue();
  int partitions = 0;
  model->set_on_change([&]() {
    if (net.Components().size() > 1) ++partitions;
  });
  model->Start();
  ASSERT_TRUE(sim.RunUntil(Years(2)).ok());
  EXPECT_GT(partitions, 50);  // ~140 repeater failures expected
}

TEST(NetworkProcessModelTest, DeterministicForFixedSeed) {
  auto topo = testing_util::SingleSegment(3);
  std::vector<SiteProfile> profiles(3, SimpleProfile(5.0, 12.0));
  std::vector<double> first_times;
  for (int run = 0; run < 2; ++run) {
    Simulator sim;
    NetworkState net(topo);
    auto model =
        NetworkProcessModel::Make(&sim, &net, profiles, {}, 42).MoveValue();
    std::vector<double>* times =
        run == 0 ? &first_times : nullptr;
    std::vector<double> this_times;
    model->set_on_change([&]() { this_times.push_back(sim.Now()); });
    model->Start();
    ASSERT_TRUE(sim.RunUntil(Years(1)).ok());
    if (times != nullptr) {
      *times = this_times;
    } else {
      EXPECT_EQ(this_times, first_times);
    }
  }
}

}  // namespace
}  // namespace dynvote
