// Integration smoke over the full Table 2 grid: every configuration A-H
// with all six policies on a shortened run. Asserts structural sanity and
// the orderings that hold robustly even at short horizons.

#include <gtest/gtest.h>

#include "core/registry.h"
#include "model/experiment.h"
#include "model/site_profile.h"

namespace dynvote {
namespace {

class PaperGridTest : public ::testing::TestWithParam<char> {};

TEST_P(PaperGridTest, AllPoliciesRunAndBehave) {
  char config = GetParam();
  ExperimentOptions options;
  options.warmup = Days(360);
  options.num_batches = 8;
  options.batch_length = Years(5);
  options.seed = 4242;

  auto results = RunPaperExperiment(config, PaperProtocolNames(), options);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 6u);

  auto find = [&](const std::string& name) -> const PolicyResult& {
    for (const PolicyResult& r : *results) {
      if (r.name == name) return r;
    }
    ADD_FAILURE() << name << " missing";
    return (*results)[0];
  };

  for (const PolicyResult& r : *results) {
    EXPECT_GE(r.unavailability, 0.0) << r.name;
    EXPECT_LE(r.unavailability, 0.5) << r.name;
    EXPECT_GT(r.accesses_attempted, 10000u) << r.name;
    EXPECT_GE(r.accesses_granted,
              static_cast<std::uint64_t>(0.8 * r.accesses_attempted))
        << r.name;
    EXPECT_GT(r.messages.Total(), 0u) << r.name;
    if (r.num_unavailable_periods > 0) {
      EXPECT_GT(r.mean_unavailable_duration, 0.0) << r.name;
    } else {
      EXPECT_EQ(r.mean_unavailable_duration, 0.0) << r.name;
    }
    // The paper's user model at 1 access/day: granted fraction tracks
    // (1 - unavailability) loosely.
    double granted_fraction = static_cast<double>(r.accesses_granted) /
                              r.accesses_attempted;
    EXPECT_NEAR(granted_fraction, 1.0 - r.unavailability, 0.02) << r.name;
  }

  // Robust orderings.
  EXPECT_LE(find("LDV").unavailability, find("DV").unavailability);
  EXPECT_LE(find("TDV").unavailability,
            find("LDV").unavailability + 1e-9);
  // Partition-safe policies never fork.
  for (const char* safe : {"MCV", "DV", "LDV", "ODV"}) {
    EXPECT_EQ(find(safe).dual_majority_instants, 0u) << safe;
  }
  // Instantaneous protocols pay refresh traffic; optimistic ones do not.
  EXPECT_GT(find("LDV").messages.count(MessageKind::kInstantRefresh), 0u);
  EXPECT_EQ(find("ODV").messages.count(MessageKind::kInstantRefresh), 0u);
  EXPECT_EQ(find("OTDV").messages.count(MessageKind::kInstantRefresh), 0u);
}

INSTANTIATE_TEST_SUITE_P(Configurations, PaperGridTest,
                         ::testing::Values('A', 'B', 'C', 'D', 'E', 'F',
                                           'G', 'H'),
                         [](const ::testing::TestParamInfo<char>& info) {
                           return std::string(1, info.param);
                         });

}  // namespace
}  // namespace dynvote
