#include "model/config_parser.h"

#include <gtest/gtest.h>

namespace dynvote {
namespace {

constexpr char kSmallConfig[] = R"(
# two segments joined by a repeater
segment left
segment right
site a left mttf=10 hw=0.25 restart=5 repair-const=1 repair-exp=12
site b left
site c right maint-interval=30 maint-hours=2
repeater bridge left right mttf=100 repair-exp=6
)";

TEST(ConfigParserTest, ParsesSegmentsSitesRepeaters) {
  auto config = ParseNetworkConfig(kSmallConfig);
  ASSERT_TRUE(config.ok()) << config.status();
  const Topology& topo = *config->topology;
  EXPECT_EQ(topo.num_segments(), 2);
  EXPECT_EQ(topo.num_sites(), 3);
  EXPECT_EQ(topo.num_repeaters(), 1);
  EXPECT_EQ(topo.site(0).name, "a");
  EXPECT_FALSE(topo.SameSegment(0, 2));

  const SiteProfile& a = config->profiles[0];
  EXPECT_EQ(a.mttf_days, 10.0);
  EXPECT_EQ(a.hardware_fraction, 0.25);
  EXPECT_EQ(a.restart_minutes, 5.0);
  EXPECT_EQ(a.hw_repair_const_hours, 1.0);
  EXPECT_EQ(a.hw_repair_exp_hours, 12.0);

  // Defaults applied.
  const SiteProfile& b = config->profiles[1];
  EXPECT_EQ(b.mttf_days, 365.0);
  EXPECT_EQ(b.hardware_fraction, 0.5);
  EXPECT_EQ(b.restart_minutes, 15.0);

  const SiteProfile& c = config->profiles[2];
  EXPECT_EQ(c.maintenance_interval_days, 30.0);
  EXPECT_EQ(c.maintenance_hours, 2.0);

  ASSERT_EQ(config->repeater_profiles.size(), 1u);
  EXPECT_EQ(config->repeater_profiles[0].mttf_days, 100.0);
  EXPECT_EQ(config->repeater_profiles[0].repair_exp_hours, 6.0);
}

TEST(ConfigParserTest, GatewayMayPrecedeSiteDeclaration) {
  auto config = ParseNetworkConfig(R"(
segment m
segment s
gateway g s
site g m
site leaf s
)");
  ASSERT_TRUE(config.ok()) << config.status();
  ASSERT_EQ(config->topology->num_bridges(), 1);
  EXPECT_EQ(config->topology->bridges()[0].gateway_site, 0);
}

TEST(ConfigParserTest, ErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    const char* needle;
  };
  const Case cases[] = {
      {"segment a\nsegment a", "line 2: duplicate segment"},
      {"site x nowhere", "line 1: unknown segment"},
      {"segment s\nsite x s mttf=abc", "bad number"},
      {"segment s\nsite x s mttf=1 mttf=2", "duplicate key"},
      {"segment s\nsite x s frob=1", "unknown key"},
      {"segment s\nsite x s mttf=-1", "mttf must be > 0"},
      {"segment s\nsite x s hw=1.5", "hw must be in [0, 1]"},
      {"bogus decl", "unknown declaration"},
      {"segment s\ngateway ghost s", "unknown site"},
      {"segment s\nsite x s\nsite x s", "duplicate site"},
      {"segment a\nsegment b\nrepeater r a missing", "unknown segment"},
  };
  for (const Case& c : cases) {
    Status st = ParseNetworkConfig(c.text).status();
    ASSERT_TRUE(st.IsInvalidArgument()) << c.text;
    EXPECT_NE(st.message().find(c.needle), std::string::npos)
        << c.text << " -> " << st.message();
  }
}

TEST(ConfigParserTest, EmptyConfigFailsAtBuild) {
  EXPECT_FALSE(ParseNetworkConfig("# nothing\n").ok());
}

TEST(ConfigParserTest, PaperNetworkFileMatchesBuiltin) {
  // The shipped examples/networks/paper.net must parse to exactly the
  // built-in MakePaperNetwork(). Locate the file relative to the source
  // tree via the compile-time path of this test file.
  std::string source_dir = __FILE__;
  source_dir = source_dir.substr(0, source_dir.rfind("/tests/"));
  auto config =
      LoadNetworkConfig(source_dir + "/examples/networks/paper.net");
  ASSERT_TRUE(config.ok()) << config.status();

  auto builtin = MakePaperNetwork();
  ASSERT_TRUE(builtin.ok());
  const Topology& parsed = *config->topology;
  const Topology& expected = *builtin->topology;
  ASSERT_EQ(parsed.num_sites(), expected.num_sites());
  ASSERT_EQ(parsed.num_segments(), expected.num_segments());
  ASSERT_EQ(parsed.num_bridges(), expected.num_bridges());
  for (SiteId s = 0; s < expected.num_sites(); ++s) {
    EXPECT_EQ(parsed.site(s).name, expected.site(s).name);
    EXPECT_EQ(parsed.SegmentOf(s), expected.SegmentOf(s));
    const SiteProfile& p = config->profiles[s];
    const SiteProfile& e = builtin->profiles[s];
    EXPECT_EQ(p.mttf_days, e.mttf_days) << s;
    EXPECT_EQ(p.hardware_fraction, e.hardware_fraction) << s;
    EXPECT_EQ(p.restart_minutes, e.restart_minutes) << s;
    EXPECT_EQ(p.hw_repair_const_hours, e.hw_repair_const_hours) << s;
    EXPECT_EQ(p.hw_repair_exp_hours, e.hw_repair_exp_hours) << s;
    EXPECT_EQ(p.maintenance_interval_days, e.maintenance_interval_days)
        << s;
    EXPECT_EQ(p.maintenance_hours, e.maintenance_hours) << s;
  }
}

TEST(ConfigParserTest, RoundTripThroughToString) {
  auto config = ParseNetworkConfig(kSmallConfig);
  ASSERT_TRUE(config.ok());
  std::string rendered = NetworkConfigToString(*config);
  auto reparsed = ParseNetworkConfig(rendered);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << rendered;
  EXPECT_EQ(reparsed->topology->num_sites(), 3);
  EXPECT_EQ(reparsed->profiles[0].mttf_days, 10.0);
  EXPECT_EQ(reparsed->repeater_profiles[0].repair_exp_hours, 6.0);
  EXPECT_EQ(NetworkConfigToString(*reparsed), rendered);
}

TEST(ConfigParserTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadNetworkConfig("/no/such/file.net").ok());
}

TEST(ConfigParserTest, ExperimentDeclarationDefaults) {
  auto config = ParseNetworkConfig(kSmallConfig);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->replications, 1);
  EXPECT_EQ(config->jobs, 1);
}

TEST(ConfigParserTest, ExperimentDeclarationParsesAndRoundTrips) {
  auto config = ParseNetworkConfig(std::string(kSmallConfig) +
                                   "experiment replications=8 jobs=4\n");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config->replications, 8);
  EXPECT_EQ(config->jobs, 4);

  std::string rendered = NetworkConfigToString(*config);
  auto reparsed = ParseNetworkConfig(rendered);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << rendered;
  EXPECT_EQ(reparsed->replications, 8);
  EXPECT_EQ(reparsed->jobs, 4);
  EXPECT_EQ(NetworkConfigToString(*reparsed), rendered);
}

TEST(ConfigParserTest, ExperimentDeclarationValidates) {
  auto bad_reps = ParseNetworkConfig("experiment replications=0\n");
  EXPECT_TRUE(bad_reps.status().IsInvalidArgument());
  auto fractional = ParseNetworkConfig("experiment replications=1.5\n");
  EXPECT_TRUE(fractional.status().IsInvalidArgument());
  auto negative = ParseNetworkConfig("experiment jobs=-2\n");
  EXPECT_TRUE(negative.status().IsInvalidArgument());
  auto unknown = ParseNetworkConfig("experiment threads=4\n");
  EXPECT_TRUE(unknown.status().IsInvalidArgument());
  auto duplicate = ParseNetworkConfig(
      "experiment jobs=2\nexperiment jobs=3\n");
  EXPECT_TRUE(duplicate.status().IsInvalidArgument());
}

}  // namespace
}  // namespace dynvote
