// Property test: the closed-form static-voting availability agrees with
// the discrete-event simulation on randomly generated topologies and
// failure profiles. This pins the entire simulation pipeline (failure
// processes, connectivity, quorum rule, tracker) to an independent
// computation for every memoryless case we can enumerate.

#include <gtest/gtest.h>

#include "core/mcv.h"
#include "model/analytic.h"
#include "model/experiment.h"
#include "util/rng.h"

namespace dynvote {
namespace {

struct RandomCase {
  std::shared_ptr<const Topology> topology;
  std::vector<SiteProfile> profiles;
  SiteSet placement;
};

RandomCase MakeCase(Rng* rng) {
  RandomCase c;
  auto builder = Topology::Builder();
  int num_segments = 1 + static_cast<int>(rng->NextBounded(3));
  std::vector<SegmentId> segments;
  for (int i = 0; i < num_segments; ++i) {
    segments.push_back(builder.AddSegment("seg" + std::to_string(i)));
  }
  int num_sites = 3 + static_cast<int>(rng->NextBounded(4));
  std::vector<SegmentId> home;
  for (int i = 0; i < num_sites; ++i) {
    // Keep segment 0 populated; spread the rest.
    SegmentId seg = i == 0 ? segments[0]
                           : segments[rng->NextBounded(segments.size())];
    builder.AddSite("s" + std::to_string(i), seg);
    home.push_back(seg);

    SiteProfile p;
    p.name = "s" + std::to_string(i);
    p.mttf_days = 5.0 + rng->NextDouble() * 60.0;
    p.hardware_fraction = rng->NextDouble();
    p.restart_minutes = 10.0 + rng->NextDouble() * 30.0;
    p.hw_repair_const_hours = rng->NextDouble() * 24.0;
    p.hw_repair_exp_hours = 1.0 + rng->NextDouble() * 72.0;
    c.profiles.push_back(std::move(p));
  }
  // Bridge every non-main segment to segment 0 through a gateway host
  // homed on it (guaranteeing connectivity when everything is up).
  for (int seg = 1; seg < num_segments; ++seg) {
    // Find a site homed on segment 0 to act as gateway.
    for (int i = 0; i < num_sites; ++i) {
      if (home[i] == segments[0]) {
        builder.AddGateway(i, segments[seg]);
        break;
      }
    }
  }
  auto topo = builder.Build();
  EXPECT_TRUE(topo.ok()) << topo.status();
  c.topology = topo.MoveValue();

  // Random placement of 3..num_sites copies.
  int copies = 3 + static_cast<int>(rng->NextBounded(num_sites - 2));
  while (c.placement.Size() < copies) {
    c.placement.Add(static_cast<SiteId>(rng->NextBounded(num_sites)));
  }
  return c;
}

TEST(AnalyticPropertyTest, SimulationMatchesClosedFormOnRandomSystems) {
  Rng rng(0xA11A);
  for (int trial = 0; trial < 8; ++trial) {
    RandomCase c = MakeCase(&rng);

    auto analytic = AnalyticMcvAvailability(c.topology, c.profiles,
                                            c.placement);
    ASSERT_TRUE(analytic.ok()) << analytic.status();
    double analytic_u = 1.0 - *analytic;

    ExperimentSpec spec;
    spec.topology = c.topology;
    spec.profiles = c.profiles;
    spec.options.warmup = Days(50);
    spec.options.num_batches = 10;
    spec.options.batch_length = Years(40);
    spec.options.seed = 555 + trial;
    std::vector<std::unique_ptr<ConsistencyProtocol>> protocols;
    protocols.push_back(
        MajorityConsensusVoting::Make(c.placement).MoveValue());
    auto results = RunAvailabilityExperiment(spec, std::move(protocols));
    ASSERT_TRUE(results.ok()) << results.status();

    double sim_u = (*results)[0].unavailability;
    double ci = (*results)[0].stats.ci95_halfwidth;
    // Within 4 CI halfwidths or 20% relative — the analytic value
    // ignores O(u^2) maintenance/failure interactions, the simulation
    // has finite-run noise.
    EXPECT_NEAR(sim_u, analytic_u,
                std::max(4 * ci, 0.2 * analytic_u + 1e-5))
        << "trial " << trial << " placement " << c.placement.ToString()
        << " (analytic " << analytic_u << ", simulated " << sim_u << " ± "
        << ci << ")";
  }
}

}  // namespace
}  // namespace dynvote
