#include "model/analytic.h"

#include <gtest/gtest.h>

#include "core/test_topologies.h"
#include "model/experiment.h"

namespace dynvote {
namespace {

SiteProfile Simple(double mttf_days, double repair_days) {
  SiteProfile p;
  p.name = "s";
  p.mttf_days = mttf_days;
  p.hardware_fraction = 1.0;
  p.hw_repair_exp_hours = repair_days * 24.0;
  return p;
}

TEST(SteadyStateTest, FailureOnly) {
  // MTTF 10, repair 1: availability 10/11.
  EXPECT_NEAR(SteadyStateAvailability(Simple(10, 1)), 10.0 / 11.0, 1e-12);
}

TEST(SteadyStateTest, MaintenanceOnly) {
  SiteProfile p = Simple(1e12, 1e-9);
  p.maintenance_interval_days = 90.0;
  p.maintenance_hours = 3.0;
  EXPECT_NEAR(SteadyStateUnavailability(p), (3.0 / 24.0) / 90.0, 1e-9);
}

TEST(SteadyStateTest, PaperTable1Values) {
  auto paper = MakePaperNetwork();
  ASSERT_TRUE(paper.ok());
  // wizard: 50% of failures take 336 h, 50% take 15 min -> u ~ 0.123.
  EXPECT_NEAR(SteadyStateUnavailability(paper->profiles[3]), 0.123, 0.005);
  // csvax: tiny failure repair + 3 h / 90 d maintenance -> u ~ 0.0020.
  EXPECT_NEAR(SteadyStateUnavailability(paper->profiles[0]), 0.0020,
              0.0003);
}

TEST(EnumerateAvailabilityTest, Validates) {
  auto topo = testing_util::SingleSegment(2);
  std::vector<SiteProfile> profiles(2, Simple(10, 1));
  EXPECT_FALSE(EnumerateAvailability(nullptr, profiles, SiteSet{0},
                                     [](const NetworkState&) {
                                       return true;
                                     })
                   .ok());
  EXPECT_FALSE(EnumerateAvailability(topo, {}, SiteSet{0},
                                     [](const NetworkState&) {
                                       return true;
                                     })
                   .ok());
  EXPECT_FALSE(
      EnumerateAvailability(topo, profiles, SiteSet{0}, nullptr).ok());
  EXPECT_FALSE(EnumerateAvailability(topo, profiles, SiteSet{0, 5},
                                     [](const NetworkState&) {
                                       return true;
                                     })
                   .ok());
}

TEST(EnumerateAvailabilityTest, SingleSiteRule) {
  auto topo = testing_util::SingleSegment(1);
  std::vector<SiteProfile> profiles = {Simple(10, 1)};
  auto up = EnumerateAvailability(
      topo, profiles, SiteSet{0},
      [](const NetworkState& net) { return net.IsSiteUp(0); });
  ASSERT_TRUE(up.ok());
  EXPECT_NEAR(*up, 10.0 / 11.0, 1e-12);
}

TEST(EnumerateAvailabilityTest, SeriesAndParallel) {
  auto topo = testing_util::SingleSegment(2);
  std::vector<SiteProfile> profiles = {Simple(10, 1), Simple(20, 2)};
  double a0 = 10.0 / 11.0;
  double a1 = 20.0 / 22.0;
  auto both = EnumerateAvailability(
      topo, profiles, SiteSet{0, 1}, [](const NetworkState& net) {
        return net.IsSiteUp(0) && net.IsSiteUp(1);
      });
  ASSERT_TRUE(both.ok());
  EXPECT_NEAR(*both, a0 * a1, 1e-12);
  auto either = EnumerateAvailability(
      topo, profiles, SiteSet{0, 1}, [](const NetworkState& net) {
        return net.IsSiteUp(0) || net.IsSiteUp(1);
      });
  ASSERT_TRUE(either.ok());
  EXPECT_NEAR(*either, 1.0 - (1.0 - a0) * (1.0 - a1), 1e-12);
}

TEST(AnalyticMcvTest, ThreeCopiesMajority) {
  // 2-of-3 majority on one segment: availability = sum of states with
  // >= 2 sites up.
  auto topo = testing_util::SingleSegment(3);
  std::vector<SiteProfile> profiles(3, Simple(10, 1));
  double a = 10.0 / 11.0;
  auto result = AnalyticMcvAvailability(topo, profiles, SiteSet{0, 1, 2});
  ASSERT_TRUE(result.ok());
  double expected = a * a * a + 3 * a * a * (1 - a);
  EXPECT_NEAR(*result, expected, 1e-12);
}

TEST(AnalyticMcvTest, TieBreakMatters) {
  // Four copies: with the lexicographic tie rule, the 2-up states
  // containing site 0 also count.
  auto topo = testing_util::SingleSegment(4);
  std::vector<SiteProfile> profiles(4, Simple(10, 1));
  double a = 10.0 / 11.0;
  auto strict = AnalyticMcvAvailability(topo, profiles, SiteSet{0, 1, 2, 3},
                                        TieBreak::kNone);
  auto lex = AnalyticMcvAvailability(topo, profiles, SiteSet{0, 1, 2, 3},
                                     TieBreak::kLexicographic);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(lex.ok());
  double p4 = a * a * a * a;
  double p3 = 4 * a * a * a * (1 - a);
  double p2_with0 = 3 * a * a * (1 - a) * (1 - a);  // {0,x}: 3 choices
  EXPECT_NEAR(*strict, p4 + p3, 1e-12);
  EXPECT_NEAR(*lex, p4 + p3 + p2_with0, 1e-12);
  EXPECT_GT(*lex, *strict);
}

TEST(AnalyticMcvTest, GatewayPartitionAccounted) {
  // Paper configuration B (copies at 0, 1, 5): site 5 is reachable only
  // through gateway 3, so the analytic rule must treat "gateway down" as
  // "copy 5 unreachable".
  auto paper = MakePaperNetwork();
  ASSERT_TRUE(paper.ok());
  auto with_gateway = AnalyticMcvAvailability(
      paper->topology, paper->profiles, SiteSet{0, 1, 5});
  ASSERT_TRUE(with_gateway.ok());

  // Hand computation with effective availability of copy 5 = a5 * a3:
  double a0 = SteadyStateAvailability(paper->profiles[0]);
  double a1 = SteadyStateAvailability(paper->profiles[1]);
  double a5 = SteadyStateAvailability(paper->profiles[5]) *
              SteadyStateAvailability(paper->profiles[3]);
  double expected = a0 * a1 * a5 + a0 * a1 * (1 - a5) +
                    a0 * (1 - a1) * a5 + (1 - a0) * a1 * a5;
  EXPECT_NEAR(*with_gateway, expected, 1e-9);
}

TEST(AnalyticMcvTest, AgreesWithSimulationOnPaperConfigs) {
  // The end-to-end cross-check: analytic MCV availability within the
  // simulation's confidence interval (a few tolerance multiples) for the
  // paper's three-copy configurations.
  auto paper = MakePaperNetwork();
  ASSERT_TRUE(paper.ok());
  ExperimentOptions options;
  options.warmup = Days(360);
  options.num_batches = 10;
  options.batch_length = Years(30);
  for (char config : {'A', 'B', 'C'}) {
    const PaperConfiguration* pc = nullptr;
    for (const auto& c : PaperConfigurations()) {
      if (c.label == config) pc = &c;
    }
    ASSERT_NE(pc, nullptr);
    auto analytic = AnalyticMcvAvailability(paper->topology,
                                            paper->profiles, pc->placement);
    ASSERT_TRUE(analytic.ok());
    auto simulated = RunPaperExperiment(config, {"MCV"}, options);
    ASSERT_TRUE(simulated.ok());
    double sim_u = (*simulated)[0].unavailability;
    double ana_u = 1.0 - *analytic;
    EXPECT_NEAR(sim_u, ana_u,
                std::max(3 * (*simulated)[0].stats.ci95_halfwidth,
                         0.25 * ana_u))
        << "config " << config;
  }
}

}  // namespace
}  // namespace dynvote
