#include "model/batched_experiment.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "model/export.h"
#include "model/replicated_experiment.h"
#include "model/site_profile.h"

namespace dynvote {
namespace {

// The paper's five-copy placement (configuration B): csvax, beowulf,
// wizard, gremlin, mangle — spans all three segments, so partitions and
// divergent replica states occur routinely.
constexpr SiteSet kFiveCopyPlacement{0, 1, 3, 5, 7};

ExperimentSpec PaperSpec(bool quorum_cache = true) {
  auto network = MakePaperNetwork();
  EXPECT_TRUE(network.ok()) << network.status();
  ExperimentSpec spec;
  spec.topology = network->topology;
  spec.profiles = network->profiles;
  spec.options.warmup = Days(90);
  spec.options.num_batches = 3;
  spec.options.batch_length = Years(1);
  spec.options.quorum_cache = quorum_cache;
  return spec;
}

std::vector<std::unique_ptr<ConsistencyProtocol>> MakeProtocols(
    const ExperimentSpec& spec, const std::vector<std::string>& names) {
  std::vector<std::unique_ptr<ConsistencyProtocol>> protocols;
  for (const std::string& name : names) {
    auto p = MakeProtocolByName(name, spec.topology, kFiveCopyPlacement);
    EXPECT_TRUE(p.ok()) << p.status();
    protocols.push_back(p.MoveValue());
  }
  return protocols;
}

/// Asserts object `k` of a batched run reproduces a solo run bit for bit
/// — every statistic, counter and message tally, not just the headline
/// unavailability.
void ExpectBitIdentical(const PolicyResult& batched, const PolicyResult& solo) {
  EXPECT_EQ(batched.name, solo.name);
  EXPECT_EQ(batched.unavailability, solo.unavailability);
  EXPECT_EQ(batched.mean_unavailable_duration, solo.mean_unavailable_duration);
  EXPECT_EQ(batched.time_to_first_outage, solo.time_to_first_outage);
  EXPECT_EQ(batched.num_unavailable_periods, solo.num_unavailable_periods);
  EXPECT_EQ(batched.accesses_attempted, solo.accesses_attempted);
  EXPECT_EQ(batched.accesses_granted, solo.accesses_granted);
  EXPECT_EQ(batched.dual_majority_instants, solo.dual_majority_instants);
  EXPECT_EQ(batched.measured_time, solo.measured_time);
  EXPECT_EQ(batched.stats.num_batches, solo.stats.num_batches);
  EXPECT_EQ(batched.stats.mean, solo.stats.mean);
  EXPECT_EQ(batched.stats.stddev, solo.stats.stddev);
  EXPECT_EQ(batched.stats.ci95_halfwidth, solo.stats.ci95_halfwidth);
  for (int k = 0; k < kNumMessageKinds; ++k) {
    MessageKind kind = static_cast<MessageKind>(k);
    EXPECT_EQ(batched.messages.count(kind), solo.messages.count(kind))
        << "message kind " << k;
  }
}

TEST(BatchedEngineSupportsTest, PaperSetIsSupported) {
  EXPECT_TRUE(BatchedEngineSupports(PaperProtocolNames()));
  EXPECT_TRUE(BatchedEngineSupports({"MCV"}));
  EXPECT_TRUE(BatchedEngineSupports({"DV", "ODV"}));
}

TEST(BatchedEngineSupportsTest, RejectsProtocolsWithoutFastPath) {
  EXPECT_FALSE(BatchedEngineSupports({"AC"}));
  EXPECT_FALSE(BatchedEngineSupports({"MCV", "AC"}));
  EXPECT_FALSE(BatchedEngineSupports({"NOPE"}));
}

TEST(BatchedExperimentTest, EveryObjectMatchesItsSoloRunBitForBit) {
  // The engine's hard constraint: object k in a batch of N reproduces a
  // solo RunAvailabilityExperiment with seed seeds[k] exactly. Five
  // objects over three years of the partition-prone placement exercise
  // uniform mode, divergence, reintegration and recovery.
  ExperimentSpec spec = PaperSpec();
  const std::vector<std::string>& names = PaperProtocolNames();
  BatchedProtocolSpec batched_spec{names, kFiveCopyPlacement};
  std::vector<std::uint64_t> seeds{11, 5150, 77777, 4242424242ull, 90210};

  auto batched = RunBatchedAvailabilityExperiment(spec, batched_spec, seeds);
  ASSERT_TRUE(batched.ok()) << batched.status();
  ASSERT_EQ(batched->size(), seeds.size());

  for (std::size_t k = 0; k < seeds.size(); ++k) {
    ExperimentSpec solo_spec = spec;
    solo_spec.options.seed = seeds[k];
    auto solo = RunAvailabilityExperiment(solo_spec,
                                          MakeProtocols(spec, names));
    ASSERT_TRUE(solo.ok()) << solo.status();
    ASSERT_EQ((*batched)[k].size(), solo->size());
    for (std::size_t p = 0; p < solo->size(); ++p) {
      SCOPED_TRACE("seed " + std::to_string(seeds[k]) + " policy " +
                   (*solo)[p].name);
      ExpectBitIdentical((*batched)[k][p], (*solo)[p]);
    }
  }
}

TEST(BatchedExperimentTest, QuorumCacheOffStillMatchesSolo) {
  // --no-quorum-cache disables grant memoization in both engines; the
  // batched engine must keep bit-identity in that mode too.
  ExperimentSpec spec = PaperSpec(/*quorum_cache=*/false);
  const std::vector<std::string>& names = PaperProtocolNames();
  BatchedProtocolSpec batched_spec{names, kFiveCopyPlacement};
  std::vector<std::uint64_t> seeds{303, 999983};

  auto batched = RunBatchedAvailabilityExperiment(spec, batched_spec, seeds);
  ASSERT_TRUE(batched.ok()) << batched.status();
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    ExperimentSpec solo_spec = spec;
    solo_spec.options.seed = seeds[k];
    auto solo = RunAvailabilityExperiment(solo_spec,
                                          MakeProtocols(spec, names));
    ASSERT_TRUE(solo.ok()) << solo.status();
    for (std::size_t p = 0; p < solo->size(); ++p) {
      SCOPED_TRACE("seed " + std::to_string(seeds[k]) + " policy " +
                   (*solo)[p].name);
      ExpectBitIdentical((*batched)[k][p], (*solo)[p]);
    }
  }
}

TEST(BatchedExperimentTest, BatchSizeNeverChangesResults) {
  // Splitting the same seeds across different batch sizes (or running
  // them solo through a batch of one) is invisible in the output.
  ExperimentSpec spec = PaperSpec();
  BatchedProtocolSpec batched_spec{{"MCV", "DV", "TDV"}, kFiveCopyPlacement};
  std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5, 6};

  auto all = RunBatchedAvailabilityExperiment(spec, batched_spec, seeds);
  ASSERT_TRUE(all.ok()) << all.status();
  auto first_half = RunBatchedAvailabilityExperiment(
      spec, batched_spec,
      std::vector<std::uint64_t>(seeds.begin(), seeds.begin() + 3));
  ASSERT_TRUE(first_half.ok()) << first_half.status();
  auto one = RunBatchedAvailabilityExperiment(spec, batched_spec, {seeds[4]});
  ASSERT_TRUE(one.ok()) << one.status();

  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t p = 0; p < (*all)[k].size(); ++p) {
      ExpectBitIdentical((*first_half)[k][p], (*all)[k][p]);
    }
  }
  for (std::size_t p = 0; p < (*all)[4].size(); ++p) {
    ExpectBitIdentical((*one)[0][p], (*all)[4][p]);
  }
}

TEST(BatchedExperimentTest, RejectsUnknownPolicyAndEmptyBatch) {
  ExperimentSpec spec = PaperSpec();
  BatchedProtocolSpec bad{{"NOPE"}, kFiveCopyPlacement};
  EXPECT_FALSE(RunBatchedAvailabilityExperiment(spec, bad, {1}).ok());

  BatchedProtocolSpec ok_spec{{"MCV"}, kFiveCopyPlacement};
  EXPECT_FALSE(RunBatchedAvailabilityExperiment(spec, ok_spec, {}).ok());
}

TEST(ReplicatedObjectsTest, ObjectsGroupingIsByteInvisible) {
  // The integration contract: --objects only changes wall-clock time.
  // The serialized JSON (the CLI's --json output) must be byte-identical
  // across objects ∈ {1, 3, N} and jobs ∈ {1, 4}, including a group size
  // that does not divide the replication count.
  ExperimentOptions options;
  options.warmup = Days(90);
  options.num_batches = 3;
  options.batch_length = Years(1);
  options.seed = 20260808;

  auto run = [&](int objects, int jobs) {
    ReplicationOptions replication;
    replication.replications = 7;
    replication.jobs = jobs;
    replication.objects = objects;
    auto results = RunReplicatedPaperExperiment('B', PaperProtocolNames(),
                                                options, replication);
    EXPECT_TRUE(results.ok()) << results.status();
    return ReplicatedResultsToJson("B", *results);
  };

  const std::string baseline = run(1, 1);
  EXPECT_EQ(run(3, 1), baseline);
  EXPECT_EQ(run(3, 4), baseline);
  EXPECT_EQ(run(7, 2), baseline);
  EXPECT_EQ(run(16, 4), baseline);
}

TEST(ReplicatedObjectsTest, UnsupportedPolicyFallsBackToProtocolObjects) {
  // AC has no batched fast path; the gate must silently route through
  // the per-replication engine and still produce identical bytes.
  ExperimentOptions options;
  options.warmup = Days(30);
  options.num_batches = 2;
  options.batch_length = Years(1);
  options.seed = 777;

  auto run = [&](int objects) {
    ReplicationOptions replication;
    replication.replications = 3;
    replication.jobs = 2;
    replication.objects = objects;
    auto results = RunReplicatedPaperExperiment('B', {"MCV", "AC"}, options,
                                                replication);
    EXPECT_TRUE(results.ok()) << results.status();
    return ReplicatedResultsToJson("B", *results);
  };
  EXPECT_EQ(run(4), run(1));
}

TEST(ReplicatedObjectsTest, ValidatesObjects) {
  ExperimentOptions options;
  ReplicationOptions replication;
  replication.objects = 0;
  EXPECT_TRUE(RunReplicatedPaperExperiment('A', {"MCV"}, options, replication)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace dynvote
