#include "model/site_profile.h"

#include <gtest/gtest.h>

namespace dynvote {
namespace {

TEST(PaperNetworkTest, MatchesFigure8) {
  auto paper = MakePaperNetwork();
  ASSERT_TRUE(paper.ok());
  const Topology& topo = *paper->topology;
  EXPECT_EQ(topo.num_sites(), 8);
  EXPECT_EQ(topo.num_segments(), 3);
  EXPECT_EQ(topo.num_repeaters(), 0);  // gateway hosts only
  EXPECT_EQ(topo.num_bridges(), 2);

  // Five sites on the main segment; gateways wizard (3) and amos (4)
  // belong to it.
  EXPECT_EQ(topo.SitesOnSegment(topo.SegmentOf(0)).Size(), 5);
  EXPECT_TRUE(topo.SameSegment(0, 3));
  EXPECT_TRUE(topo.SameSegment(0, 4));
  EXPECT_FALSE(topo.SameSegment(0, 5));
  EXPECT_TRUE(topo.SameSegment(6, 7));  // rip and mangle

  // Names match Table 1 order.
  EXPECT_EQ(topo.site(0).name, "csvax");
  EXPECT_EQ(topo.site(1).name, "beowulf");
  EXPECT_EQ(topo.site(7).name, "mangle");
}

TEST(PaperNetworkTest, ProfilesMatchTable1) {
  auto paper = MakePaperNetwork();
  ASSERT_TRUE(paper.ok());
  ASSERT_EQ(paper->profiles.size(), 8u);
  const SiteProfile& csvax = paper->profiles[0];
  EXPECT_EQ(csvax.mttf_days, 36.5);
  EXPECT_EQ(csvax.hardware_fraction, 0.10);
  EXPECT_EQ(csvax.restart_minutes, 20.0);
  EXPECT_EQ(csvax.hw_repair_const_hours, 0.0);
  EXPECT_EQ(csvax.hw_repair_exp_hours, 2.0);
  EXPECT_EQ(csvax.maintenance_interval_days, 90.0);
  EXPECT_EQ(csvax.maintenance_hours, 3.0);

  const SiteProfile& wizard = paper->profiles[3];
  EXPECT_EQ(wizard.mttf_days, 50.0);
  EXPECT_EQ(wizard.hardware_fraction, 0.50);
  EXPECT_EQ(wizard.hw_repair_const_hours, 168.0);
  EXPECT_EQ(wizard.hw_repair_exp_hours, 168.0);
  EXPECT_EQ(wizard.maintenance_interval_days, 0.0);

  // Sites 1, 3, 5 (ids 0, 2, 4) have maintenance; others do not.
  for (int id : {0, 2, 4}) {
    EXPECT_GT(paper->profiles[id].maintenance_interval_days, 0.0) << id;
  }
  for (int id : {1, 3, 5, 6, 7}) {
    EXPECT_EQ(paper->profiles[id].maintenance_interval_days, 0.0) << id;
  }
}

TEST(SiteProfileTest, MeanRepairDays) {
  // wizard: 50% hw (168 + 168 h) + 50% sw (15 min).
  SiteProfile wizard{"wizard", 50.0, 0.50, 15.0, 168.0, 168.0, 0.0, 0.0};
  double expected = 0.5 * (336.0 / 24.0) + 0.5 * (15.0 / 1440.0);
  EXPECT_NEAR(wizard.MeanRepairDays(), expected, 1e-12);
}

TEST(PaperConfigurationsTest, AllEightWithCorrectPlacements) {
  const auto& configs = PaperConfigurations();
  ASSERT_EQ(configs.size(), 8u);
  EXPECT_EQ(configs[0].label, 'A');
  EXPECT_EQ(configs[0].placement, (SiteSet{0, 1, 3}));
  EXPECT_EQ(configs[3].label, 'D');
  EXPECT_EQ(configs[3].placement, (SiteSet{5, 6, 7}));
  EXPECT_EQ(configs[7].label, 'H');
  EXPECT_EQ(configs[7].placement, (SiteSet{0, 1, 6, 7}));
  // First four have three copies, last four have four.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(configs[i].placement.Size(), 3);
  for (int i = 4; i < 8; ++i) EXPECT_EQ(configs[i].placement.Size(), 4);
}

TEST(PaperTablesTest, Table2Lookups) {
  EXPECT_DOUBLE_EQ(PaperTable2Value('A', "MCV"), 0.002130);
  EXPECT_DOUBLE_EQ(PaperTable2Value('F', "DV"), 0.108034);
  EXPECT_DOUBLE_EQ(PaperTable2Value('E', "TDV"), 0.000000);
  EXPECT_DOUBLE_EQ(PaperTable2Value('H', "OTDV"), 0.000043);
  EXPECT_EQ(PaperTable2Value('Z', "MCV"), -1.0);
  EXPECT_EQ(PaperTable2Value('A', "PAXOS"), -1.0);
}

TEST(PaperTablesTest, Table3Lookups) {
  EXPECT_DOUBLE_EQ(PaperTable3Value('A', "MCV"), 0.101968);
  EXPECT_DOUBLE_EQ(PaperTable3Value('D', "LDV"), 7.443789);
  // "-" entries: configuration E never became unavailable under TDV/OTDV.
  EXPECT_EQ(PaperTable3Value('E', "TDV"), -1.0);
  EXPECT_EQ(PaperTable3Value('E', "OTDV"), -1.0);
}

TEST(PaperTablesTest, Table2CoversFullGrid) {
  for (const auto& config : PaperConfigurations()) {
    for (const char* policy : {"MCV", "DV", "LDV", "ODV", "TDV", "OTDV"}) {
      EXPECT_GE(PaperTable2Value(config.label, policy), 0.0)
          << config.label << "/" << policy;
    }
  }
}

}  // namespace
}  // namespace dynvote
