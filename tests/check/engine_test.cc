// The check engine itself: the find -> shrink -> replay pipeline on the
// weakened-invariant hook, shrinker minimality, differential-oracle
// wiring, swarm determinism, and the memoization bookkeeping the CLI
// reports.

#include <gtest/gtest.h>

#include "check/checker.h"
#include "check/shrink.h"

namespace dynvote {
namespace check {
namespace {

TEST(CheckEngineTest, WeakenedInvariantYieldsMinimalReplayableRepro) {
  CheckOptions options;
  options.protocol = "ODV";
  options.topology = "single3";
  options.depth = 4;
  options.policy.max_granted_groups = 0;  // the test hook: any grant trips

  auto report = RunCheck(options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->counterexample.has_value());
  const CounterExample& ce = *report->counterexample;
  EXPECT_EQ(ce.violation.invariant, "mutual_exclusion");
  // All copies start available, so a single action suffices — the shrunk
  // schedule must be exactly that minimal.
  EXPECT_EQ(ce.schedule.size(), 1u);
  EXPECT_EQ(ce.violation.step, 0);

  EXPECT_TRUE(ReplayCounterExample(ce).ok());

  // And the replay is sensitive to the recorded claim: a different
  // invariant name must not be accepted.
  CounterExample tampered = ce;
  tampered.violation.invariant = "one_copy_serialisability";
  EXPECT_FALSE(ReplayCounterExample(tampered).ok());
}

TEST(CheckEngineTest, SwarmFindsAndShrinksWeakenedInvariant) {
  CheckOptions options;
  options.protocol = "LDV";
  options.topology = "pairs";
  options.mode = CheckMode::kSwarm;
  options.swarm_schedules = 8;
  options.swarm_depth = 10;
  options.seed = 42;
  options.policy.max_granted_groups = 0;

  auto report = RunCheck(options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->counterexample.has_value());
  EXPECT_EQ(report->counterexample->schedule.size(), 1u);
  EXPECT_TRUE(ReplayCounterExample(*report->counterexample).ok());
}

TEST(CheckEngineTest, SwarmIsDeterministicPerSeed) {
  CheckOptions options;
  options.protocol = "ODV";
  options.topology = "pairs";
  options.mode = CheckMode::kSwarm;
  options.swarm_schedules = 16;
  options.swarm_depth = 12;
  options.seed = 7;

  auto a = RunCheck(options);
  auto b = RunCheck(options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->transitions, b->transitions);
  EXPECT_EQ(a->commits, b->commits);
  EXPECT_EQ(a->reads_checked, b->reads_checked);
  EXPECT_EQ(a->counterexample.has_value(), b->counterexample.has_value());

  options.seed = 8;
  auto c = RunCheck(options);
  ASSERT_TRUE(c.ok());
  // Different seed, different schedules: the work totals differ (checked
  // to hold for these constants).
  EXPECT_TRUE(a->commits != c->commits ||
              a->reads_checked != c->reads_checked);
}

TEST(CheckEngineTest, MemoizationPrunesWithoutChangingTheVerdict) {
  CheckOptions options;
  options.protocol = "DV";
  options.topology = "single3";
  options.depth = 5;

  auto memoized = RunCheck(options);
  options.memoize = false;
  auto unpruned = RunCheck(options);
  ASSERT_TRUE(memoized.ok() && unpruned.ok());
  EXPECT_TRUE(memoized->memoized);
  EXPECT_FALSE(unpruned->memoized);
  EXPECT_FALSE(memoized->counterexample.has_value());
  EXPECT_FALSE(unpruned->counterexample.has_value());
  // Merging must strictly reduce the explored frontier...
  EXPECT_LT(memoized->states_visited, unpruned->states_visited);
  EXPECT_LT(memoized->transitions, unpruned->transitions);
  // ...and without merging, every sequence is its own "state".
  EXPECT_EQ(unpruned->states_visited, 1 + unpruned->unpruned_sequences);
}

TEST(CheckEngineTest, QuorumCacheOracleHoldsExhaustively) {
  CheckOptions options;
  options.protocol = "ODV";
  options.topology = "single3";
  options.depth = 5;
  options.policy.oracle = DifferentialOracle::kQuorumCache;
  auto report = RunCheck(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->counterexample.has_value());
}

TEST(CheckEngineTest, JmEquivalenceOracleHoldsExhaustively) {
  CheckOptions options;
  options.protocol = "DV";
  options.topology = "pairs";
  options.depth = 5;
  options.policy.oracle = DifferentialOracle::kJmEquivalence;
  auto report = RunCheck(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->counterexample.has_value());
}

TEST(CheckEngineTest, LexPairOracleIsRefutedOnFiveSites) {
  // The deliberately refutable oracle: optimistic (ODV) partition state
  // lags instantaneous (LDV) state after unaccessed failures, and three
  // kills on five sites expose a no-tie grant disagreement.
  CheckOptions options;
  options.protocol = "LDV";
  options.topology = "single5";
  options.depth = 4;
  options.policy.oracle = DifferentialOracle::kLexPair;
  auto report = RunCheck(options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->counterexample.has_value());
  EXPECT_EQ(report->counterexample->violation.invariant,
            "lex_pair_divergence");
  EXPECT_EQ(report->counterexample->schedule.size(), 3u);
  EXPECT_TRUE(ReplayCounterExample(*report->counterexample).ok());
}

TEST(CheckEngineTest, OracleProtocolMismatchIsAConfigurationError) {
  CheckOptions options;
  options.protocol = "ODV";
  options.topology = "single3";
  options.policy.oracle = DifferentialOracle::kJmEquivalence;
  EXPECT_FALSE(RunCheck(options).ok());
  options.policy.oracle = DifferentialOracle::kLexPair;
  EXPECT_FALSE(RunCheck(options).ok());
}

TEST(CheckEngineTest, UnknownProtocolAndTopologyAreErrors) {
  CheckOptions options;
  options.protocol = "NOPE";
  EXPECT_FALSE(RunCheck(options).ok());
  options.protocol = "ODV";
  options.topology = "ring9";
  EXPECT_FALSE(RunCheck(options).ok());
}

TEST(ShrinkScheduleTest, RemovesEverythingButTheCulprits) {
  // Synthetic oracle: fails iff both toggle_site:1 and toggle_site:3
  // survive, regardless of anything between them.
  std::vector<CheckAction> schedule;
  for (int i = 0; i < 8; ++i) {
    schedule.push_back({ActionKind::kToggleSite, i});
  }
  int calls = 0;
  auto still_fails = [&calls](const std::vector<CheckAction>& s) {
    ++calls;
    bool one = false, three = false;
    for (const CheckAction& a : s) {
      if (a.target == 1) one = true;
      if (a.target == 3) three = true;
    }
    return one && three;
  };
  auto minimal = ShrinkSchedule(schedule, still_fails);
  ASSERT_EQ(minimal.size(), 2u);
  EXPECT_EQ(minimal[0].target, 1);
  EXPECT_EQ(minimal[1].target, 3);
  EXPECT_GT(calls, 0);
}

TEST(ShrinkScheduleTest, AlreadyMinimalScheduleIsUntouched) {
  std::vector<CheckAction> schedule = {{ActionKind::kWrite, -1}};
  auto minimal = ShrinkSchedule(
      schedule, [](const std::vector<CheckAction>&) { return true; });
  EXPECT_EQ(minimal, schedule);
}

TEST(ShrinkScheduleTest, ResultIsOneMinimal) {
  // Fails iff at least 3 writes survive; any 3-write subsequence is
  // 1-minimal.
  std::vector<CheckAction> schedule(9, CheckAction{ActionKind::kWrite, -1});
  auto still_fails = [](const std::vector<CheckAction>& s) {
    return s.size() >= 3;
  };
  auto minimal = ShrinkSchedule(schedule, still_fails);
  EXPECT_EQ(minimal.size(), 3u);
}

}  // namespace
}  // namespace check
}  // namespace dynvote
