// Bounded-exhaustive model checking of every registered protocol on
// small universes, driven by the check engine (the successor of the
// inline enumeration this test once carried). Canonical-state
// memoization merges equivalent interleavings, which is what lets the
// same wall-clock budget reach depth 9 on single3 and depth 7 on pairs
// where the naive enumeration stopped at 6 and 5.
//
// Strict cases assert mutual exclusion and one-copy serialisability;
// the topological variants (documented fork hazard) run loose and are
// only held to never-uncommitted reads. Their forks are locked as
// explicit counterexamples in tests/check/corpus/ instead.

#include <string>

#include <gtest/gtest.h>

#include "check/checker.h"

namespace dynvote {
namespace check {
namespace {

struct ModelCheckCase {
  std::string protocol;
  std::string topology;  // "single3" or "pairs"
  bool strict;           // mutual exclusion + 1SR; otherwise loose
  int depth;
};

void PrintTo(const ModelCheckCase& c, std::ostream* os) {
  *os << c.protocol << " on " << c.topology << " depth " << c.depth
      << (c.strict ? " (strict)" : " (loose)");
}

std::string CaseName(const ::testing::TestParamInfo<ModelCheckCase>& info) {
  std::string name = info.param.protocol + "_" + info.param.topology;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class ModelCheckTest : public ::testing::TestWithParam<ModelCheckCase> {};

TEST_P(ModelCheckTest, ExhaustiveActionSequences) {
  const ModelCheckCase& c = GetParam();

  CheckOptions options;
  options.protocol = c.protocol;
  options.topology = c.topology;
  options.depth = c.depth;
  options.policy.strict = c.strict;

  auto report = RunCheck(options);
  ASSERT_TRUE(report.ok()) << report.status();

  if (report->counterexample.has_value()) {
    const CounterExample& ce = *report->counterexample;
    FAIL() << "violation of '" << ce.violation.invariant << "' at step "
           << ce.violation.step << ": " << ce.violation.detail
           << "\nminimal schedule: " << ScheduleToString(ce.schedule);
  }

  // Memoization must actually prune: the state space of these universes
  // saturates far below the naive sequence count.
  EXPECT_TRUE(report->memoized);
  EXPECT_LT(report->states_visited, report->unpruned_sequences);
  // The exploration must have exercised real work.
  EXPECT_GT(report->commits, 0u);
  EXPECT_GT(report->reads_checked, 0u);
}

std::vector<ModelCheckCase> MakeCases() {
  return {
      {"MCV", "single3", true, 9},  {"DV", "single3", true, 9},
      {"JM-DV", "single3", true, 9},
      {"LDV", "single3", true, 9},  {"ODV", "single3", true, 9},
      {"TDV", "single3", false, 9}, {"OTDV", "single3", false, 9},
      {"LDV", "pairs", true, 7},    {"ODV", "pairs", true, 7},
      {"JM-DV", "pairs", true, 7},
      {"MCV", "pairs", true, 7},    {"DV", "pairs", true, 7},
  };
}

INSTANTIATE_TEST_SUITE_P(Bounded, ModelCheckTest,
                         ::testing::ValuesIn(MakeCases()), CaseName);

}  // namespace
}  // namespace check
}  // namespace dynvote
