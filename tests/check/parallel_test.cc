// The parallel engine's determinism contract: every CheckReport field —
// verdict, counts, digest, and the first counterexample's exact JSON —
// is bit-identical for any --check-jobs value, with and without
// partial-order reduction; and POR itself never changes the
// visited-state *set*, only the expansions spent covering it.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/checker.h"
#include "check/counterexample.h"

namespace dynvote {
namespace check {
namespace {

/// Full-report equality, counterexample compared through its canonical
/// JSON so every recorded field (schedule, step, detail) participates.
void ExpectReportsIdentical(const CheckReport& a, const CheckReport& b,
                            const std::string& label) {
  EXPECT_EQ(a.states_visited, b.states_visited) << label;
  EXPECT_EQ(a.transitions, b.transitions) << label;
  EXPECT_EQ(a.schedules_run, b.schedules_run) << label;
  EXPECT_EQ(a.unpruned_sequences, b.unpruned_sequences) << label;
  EXPECT_EQ(a.commits, b.commits) << label;
  EXPECT_EQ(a.reads_checked, b.reads_checked) << label;
  EXPECT_EQ(a.memoized, b.memoized) << label;
  EXPECT_EQ(a.por_active, b.por_active) << label;
  EXPECT_EQ(a.visited_digest, b.visited_digest) << label;
  ASSERT_EQ(a.counterexample.has_value(), b.counterexample.has_value())
      << label;
  if (a.counterexample.has_value()) {
    EXPECT_EQ(CounterExampleToJson(*a.counterexample),
              CounterExampleToJson(*b.counterexample))
        << label;
  }
}

/// Runs `options` at jobs = 1, 2, 4 and asserts all three reports are
/// identical. Returns the jobs=1 report for further assertions.
CheckReport ExpectJobsInvariant(CheckOptions options,
                                const std::string& label) {
  options.jobs = 1;
  auto solo = RunCheck(options);
  EXPECT_TRUE(solo.ok()) << label << ": " << solo.status();
  for (int jobs : {2, 4}) {
    options.jobs = jobs;
    auto parallel = RunCheck(options);
    EXPECT_TRUE(parallel.ok()) << label << ": " << parallel.status();
    if (solo.ok() && parallel.ok()) {
      ExpectReportsIdentical(*solo, *parallel,
                             label + " jobs=" + std::to_string(jobs));
    }
  }
  return solo.ok() ? *solo : CheckReport{};
}

TEST(ParallelCheckTest, ExhaustiveIsJobsInvariantWithAndWithoutPor) {
  struct Case {
    const char* protocol;
    const char* topology;
    int depth;
  };
  for (const Case& c : {Case{"ODV", "single3", 7}, Case{"ODV", "pairs", 6}}) {
    for (bool por : {true, false}) {
      CheckOptions options;
      options.protocol = c.protocol;
      options.topology = c.topology;
      options.depth = c.depth;
      options.por = por;
      const std::string label = std::string(c.topology) +
                                (por ? " por" : " no-por");
      CheckReport report = ExpectJobsInvariant(options, label);
      EXPECT_EQ(report.por_active, por) << label;
      EXPECT_FALSE(report.counterexample.has_value()) << label;
    }
  }
}

TEST(ParallelCheckTest, ViolationAndItsJsonAreJobsInvariant) {
  // TDV on pairs rediscovers the topological fork hazard under strict
  // checking; the shrunk counterexample must come out byte-identical
  // whichever worker first replayed the violating schedule.
  CheckOptions options;
  options.protocol = "TDV";
  options.topology = "pairs";
  options.depth = 5;
  options.policy.strict = true;
  for (bool por : {true, false}) {
    options.por = por;
    CheckReport report =
        ExpectJobsInvariant(options, por ? "tdv por" : "tdv no-por");
    ASSERT_TRUE(report.counterexample.has_value());
    EXPECT_EQ(report.counterexample->violation.invariant,
              "mutual_exclusion");
  }
}

TEST(ParallelCheckTest, SwarmIsJobsInvariant) {
  CheckOptions options;
  options.protocol = "ODV";
  options.topology = "pairs";
  options.mode = CheckMode::kSwarm;
  options.swarm_schedules = 48;
  options.swarm_depth = 12;
  options.seed = 7;
  CheckReport clean = ExpectJobsInvariant(options, "swarm clean");
  EXPECT_EQ(clean.schedules_run, 48u);

  // And with a violation: the counterexample must come from the first
  // violating schedule in index order, not completion order, so later
  // schedules' work is excluded from the totals identically everywhere.
  options.policy.max_granted_groups = 0;  // test hook: any grant trips
  CheckReport tripped = ExpectJobsInvariant(options, "swarm violation");
  ASSERT_TRUE(tripped.counterexample.has_value());
  EXPECT_LT(tripped.schedules_run, 48u);
}

TEST(ParallelCheckTest, JobsZeroUsesAllCoresWithoutChangingResults) {
  CheckOptions options;
  options.protocol = "ODV";
  options.topology = "single3";
  options.depth = 6;
  auto solo = RunCheck(options);
  options.jobs = 0;
  auto all_cores = RunCheck(options);
  ASSERT_TRUE(solo.ok() && all_cores.ok());
  ExpectReportsIdentical(*solo, *all_cores, "jobs=0");
}

TEST(ParallelCheckTest, PorPreservesTheVisitedStateSet) {
  // The differential contract: POR on and off reach the identical state
  // set at equal depth — equal count AND equal order-independent digest
  // — while POR strictly reduces the expansions spent getting there.
  struct Case {
    const char* protocol;
    const char* topology;
    int depth;
  };
  for (const Case& c : {Case{"ODV", "single3", 8}, Case{"ODV", "section3", 5},
                        Case{"MCV", "pairs", 6}}) {
    CheckOptions options;
    options.protocol = c.protocol;
    options.topology = c.topology;
    options.depth = c.depth;
    auto with_por = RunCheck(options);
    options.por = false;
    auto without = RunCheck(options);
    ASSERT_TRUE(with_por.ok() && without.ok()) << c.topology;
    EXPECT_TRUE(with_por->por_active) << c.protocol;
    EXPECT_FALSE(without->por_active);
    EXPECT_EQ(with_por->states_visited, without->states_visited)
        << c.protocol << " on " << c.topology;
    EXPECT_EQ(with_por->visited_digest, without->visited_digest)
        << c.protocol << " on " << c.topology;
    EXPECT_LT(with_por->transitions, without->transitions);
  }
}

TEST(ParallelCheckTest, PorIsInactiveWhereTogglesDoNotCommute) {
  // Instantaneous protocols commit partition-set updates per network
  // event, so toggle order is observable and reduction would be unsound:
  // the harness must refuse it and the report must say so.
  for (const char* protocol : {"DV", "LDV", "TDV", "AC"}) {
    CheckOptions options;
    options.protocol = protocol;
    options.topology = "single3";
    options.depth = 5;
    options.policy.strict = false;  // hazards of TDV/AC are not the point
    auto with_por = RunCheck(options);
    options.por = false;
    auto without = RunCheck(options);
    ASSERT_TRUE(with_por.ok() && without.ok()) << protocol;
    EXPECT_FALSE(with_por->por_active) << protocol;
    ExpectReportsIdentical(*with_por, *without, protocol);
  }
}

TEST(ParallelCheckTest, PorIsInactiveInSwarmMode) {
  CheckOptions options;
  options.protocol = "ODV";
  options.topology = "pairs";
  options.mode = CheckMode::kSwarm;
  options.swarm_schedules = 8;
  auto report = RunCheck(options);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->por_active);
}

TEST(ParallelCheckTest, NegativeJobsIsAConfigurationError) {
  CheckOptions options;
  options.jobs = -1;
  EXPECT_FALSE(RunCheck(options).ok());
}

}  // namespace
}  // namespace check
}  // namespace dynvote
