// The dynvote-counterexample-v1 schema: JSON round-trips losslessly,
// malformed input is rejected with a clean status, and replay validates
// the recorded claim against a rebuilt harness.

#include <gtest/gtest.h>

#include "check/counterexample.h"

namespace dynvote {
namespace check {
namespace {

CounterExample SampleCounterExample() {
  CounterExample ce;
  ce.protocol = "TDV";
  ce.topology = "pairs";
  ce.placement = SiteSet::FirstN(4);
  ce.policy.strict = true;
  ce.policy.max_granted_groups = 1;
  ce.policy.oracle = DifferentialOracle::kNone;
  ce.schedule = {{ActionKind::kToggleSite, 0},
                 {ActionKind::kToggleSite, 1},
                 {ActionKind::kToggleRepeater, 0},
                 {ActionKind::kToggleSite, 0}};
  ce.violation.invariant = "mutual_exclusion";
  ce.violation.step = 3;
  ce.violation.detail = "2 groups granted (threshold 1)";
  return ce;
}

TEST(CounterExampleTest, JsonRoundTripsLosslessly) {
  CounterExample ce = SampleCounterExample();
  std::string json = CounterExampleToJson(ce);
  EXPECT_NE(json.find(kCounterExampleSchema), std::string::npos);

  auto parsed = ParseCounterExampleJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->protocol, ce.protocol);
  EXPECT_EQ(parsed->topology, ce.topology);
  EXPECT_EQ(parsed->placement.mask(), ce.placement.mask());
  EXPECT_EQ(parsed->policy.strict, ce.policy.strict);
  EXPECT_EQ(parsed->policy.max_granted_groups, ce.policy.max_granted_groups);
  EXPECT_EQ(parsed->policy.oracle, ce.policy.oracle);
  EXPECT_EQ(parsed->schedule, ce.schedule);
  EXPECT_EQ(parsed->violation.invariant, ce.violation.invariant);
  EXPECT_EQ(parsed->violation.step, ce.violation.step);
  EXPECT_EQ(parsed->violation.detail, ce.violation.detail);
}

TEST(CounterExampleTest, DetailsWithQuotesSurviveTheRoundTrip) {
  CounterExample ce = SampleCounterExample();
  ce.violation.detail = "read observed \"v3\", expected \"v4\"";
  auto parsed = ParseCounterExampleJson(CounterExampleToJson(ce));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->violation.detail, ce.violation.detail);
}

TEST(CounterExampleTest, RejectsNonJsonAndWrongSchema) {
  EXPECT_FALSE(ParseCounterExampleJson("").ok());
  EXPECT_FALSE(ParseCounterExampleJson("not json at all").ok());
  CounterExample ce = SampleCounterExample();
  std::string json = CounterExampleToJson(ce);
  auto corrupted = json;
  std::size_t at = corrupted.find("counterexample-v1");
  corrupted.replace(at, 17, "counterexample-v9");
  EXPECT_FALSE(ParseCounterExampleJson(corrupted).ok());
}

TEST(CounterExampleTest, RejectsMissingAndMalformedFields) {
  CounterExample ce = SampleCounterExample();
  std::string json = CounterExampleToJson(ce);

  auto drop = [&json](const std::string& key) {
    std::string out;
    for (std::size_t pos = 0; pos < json.size();) {
      std::size_t eol = json.find('\n', pos);
      if (eol == std::string::npos) eol = json.size();
      std::string line = json.substr(pos, eol - pos);
      if (line.find("\"" + key + "\"") == std::string::npos) {
        out += line;
        out.push_back('\n');
      }
      pos = eol + 1;
    }
    return out;
  };
  for (const char* key :
       {"schema", "protocol", "topology", "placement", "strict",
        "max_granted_groups", "oracle", "invariant", "step", "schedule"}) {
    EXPECT_FALSE(ParseCounterExampleJson(drop(key)).ok())
        << "missing '" << key << "' must be rejected";
  }

  auto replaced = [&json](const std::string& from, const std::string& to) {
    std::string out = json;
    std::size_t at = out.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    out.replace(at, from.size(), to);
    return out;
  };
  EXPECT_FALSE(
      ParseCounterExampleJson(replaced("[0,1,2,3]", "\"zero\"")).ok());
  EXPECT_FALSE(ParseCounterExampleJson(replaced("[0,1,2,3]", "[]")).ok());
  EXPECT_FALSE(ParseCounterExampleJson(replaced("\"step\": 3", "\"step\": x"))
                   .ok());
  EXPECT_FALSE(
      ParseCounterExampleJson(replaced("\"none\"", "\"psychic\"")).ok());
  EXPECT_FALSE(ParseCounterExampleJson(
                   replaced("toggle_repeater:0", "warp_core:0"))
                   .ok());
}

TEST(CounterExampleTest, RejectsGarbageAndTruncatedDocuments) {
  // Every rejection must be a clean InvalidArgument — never a crash or
  // an exception escaping — whatever bytes the file held.
  const std::string json = CounterExampleToJson(SampleCounterExample());
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{1}, json.size() / 4, json.size() / 2,
        json.size() - 2}) {
    auto parsed = ParseCounterExampleJson(json.substr(0, keep));
    EXPECT_FALSE(parsed.ok()) << "truncated at " << keep;
    EXPECT_TRUE(parsed.status().IsInvalidArgument()) << parsed.status();
  }
  for (const char* garbage :
       {"{", "{}", "[]", "{\"schema\":}", "\x01\x02\xff binary",
        "{\"schema\": \"dynvote-counterexample-v1\"}",
        "{\"schema\": \"dynvote-counterexample-v1\", \"schedule\": \"\"}"}) {
    auto parsed = ParseCounterExampleJson(garbage);
    EXPECT_FALSE(parsed.ok()) << garbage;
    EXPECT_TRUE(parsed.status().IsInvalidArgument()) << parsed.status();
  }
}

TEST(CounterExampleTest, RejectsStepsOutsideTheSchedule) {
  const std::string json = CounterExampleToJson(SampleCounterExample());
  auto with_step = [&json](const std::string& step) {
    std::string out = json;
    std::size_t at = out.find("\"step\": 3");
    EXPECT_NE(at, std::string::npos);
    out.replace(at, 9, "\"step\": " + step);
    return out;
  };
  EXPECT_TRUE(ParseCounterExampleJson(with_step("3")).ok());
  for (const char* step : {"-1", "4", "100"}) {
    auto parsed = ParseCounterExampleJson(with_step(step));
    EXPECT_FALSE(parsed.ok()) << "step " << step;
    EXPECT_TRUE(parsed.status().IsInvalidArgument()) << parsed.status();
  }
}

TEST(CounterExampleTest, RejectsOutOfRangePlacementSites) {
  const std::string json = CounterExampleToJson(SampleCounterExample());
  auto with_placement = [&json](const std::string& placement) {
    std::string out = json;
    std::size_t at = out.find("[0,1,2,3]");
    EXPECT_NE(at, std::string::npos);
    out.replace(at, 9, placement);
    return out;
  };
  // SiteSet would silently drop these; the parser must reject instead.
  for (const char* placement : {"[-1]", "[0,1,99]", "[64]"}) {
    auto parsed = ParseCounterExampleJson(with_placement(placement));
    EXPECT_FALSE(parsed.ok()) << placement;
    EXPECT_TRUE(parsed.status().IsInvalidArgument()) << parsed.status();
  }
}

TEST(CounterExampleTest, ReplayRejectsNonReproducingRecords) {
  // A syntactically valid record whose schedule never violates anything.
  CounterExample ce = SampleCounterExample();
  ce.protocol = "ODV";
  ce.schedule = {{ActionKind::kWrite, -1}};
  ce.violation.step = 0;
  Status st = ReplayCounterExample(ce);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInternal()) << st;
}

TEST(CounterExampleTest, ReplayRejectsUnknownTopology) {
  CounterExample ce = SampleCounterExample();
  ce.topology = "moebius";
  EXPECT_FALSE(ReplayCounterExample(ce).ok());
}

}  // namespace
}  // namespace check
}  // namespace dynvote
