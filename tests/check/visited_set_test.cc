// The sharded visited set under contention: colliding concurrent inserts
// must resolve to the single minimum claim token, and the set's size and
// order-independent digest must not depend on which worker won which
// race. Runs under the thread-sanitize CI filter.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/visited_set.h"
#include "util/thread_pool.h"

namespace dynvote {
namespace check {
namespace {

TEST(ShardedVisitedSetTest, InsertMinKeepsTheMinimumToken) {
  ShardedVisitedSet set;
  EXPECT_EQ(set.MinToken("s"), ShardedVisitedSet::kNotVisited);
  EXPECT_EQ(set.Size(), 0u);

  EXPECT_EQ(set.InsertMin("s", 7), 7u);
  EXPECT_EQ(set.InsertMin("s", 9), 7u);  // larger token loses
  EXPECT_EQ(set.InsertMin("s", 3), 3u);  // smaller token wins
  EXPECT_EQ(set.MinToken("s"), 3u);
  EXPECT_EQ(set.Size(), 1u);
}

TEST(ShardedVisitedSetTest, HashIsExplicitFnv1a64) {
  // The digest must be stable across standard libraries and builds —
  // CI diffs it between runs — so the hash is pinned to FNV-1a 64
  // known-answer values, not std::hash.
  EXPECT_EQ(ShardedVisitedSet::HashSignature(""), 14695981039346656037ull);
  EXPECT_EQ(ShardedVisitedSet::HashSignature("a"), 12638187200555641996ull);
}

TEST(ShardedVisitedSetTest, DigestIsTheSumOfMemberHashes) {
  ShardedVisitedSet set;
  set.InsertMin("alpha", 1);
  set.InsertMin("beta", 2);
  set.InsertMin("alpha", 0);  // re-insert must not double-count
  EXPECT_EQ(set.Digest(), ShardedVisitedSet::HashSignature("alpha") +
                              ShardedVisitedSet::HashSignature("beta"));
  EXPECT_EQ(set.Size(), 2u);
}

TEST(ShardedVisitedSetTest, ConcurrentCollidingInsertsResolveToGlobalMin) {
  // Every worker claims every signature with its own distinct token, in
  // a different order per worker, so shards see heavy same-key races.
  // Whatever the interleaving: exactly one claimant (the global minimum
  // token) survives per signature, and size/digest match a sequential
  // build of the same set.
  constexpr int kWorkers = 8;
  constexpr int kSignatures = 200;
  auto signature = [](int i) { return "state-" + std::to_string(i); };
  auto token = [](int worker, int i) {
    // Distinct across (worker, i); minimum over workers is worker 0's.
    return static_cast<std::uint64_t>(i) * kWorkers +
           static_cast<std::uint64_t>(worker);
  };

  ShardedVisitedSet set;
  ThreadPool pool(4);
  for (int w = 0; w < kWorkers; ++w) {
    pool.Submit([&, w] {
      for (int i = 0; i < kSignatures; ++i) {
        // Stagger the iteration order per worker to vary lock collisions.
        const int j = (i * 7 + w * 31) % kSignatures;
        const std::uint64_t min = set.InsertMin(signature(j), token(w, j));
        EXPECT_LE(min, token(w, j));
      }
    });
  }
  pool.Wait();

  ShardedVisitedSet sequential;
  for (int i = 0; i < kSignatures; ++i) {
    sequential.InsertMin(signature(i), token(0, i));
  }
  EXPECT_EQ(set.Size(), static_cast<std::size_t>(kSignatures));
  EXPECT_EQ(set.Digest(), sequential.Digest());
  for (int i = 0; i < kSignatures; ++i) {
    EXPECT_EQ(set.MinToken(signature(i)), token(0, i)) << i;
  }
}

TEST(ShardedVisitedSetTest, DigestIsInterleavingIndependent) {
  // Build the same signature set twice with different worker counts and
  // insertion orders; the order-independent digest must agree.
  auto build = [](int workers) {
    ShardedVisitedSet set;
    ThreadPool pool(workers);
    for (int w = 0; w < workers; ++w) {
      pool.Submit([&set, w, workers] {
        for (int i = w; i < 500; i += workers) {
          set.InsertMin("sig" + std::to_string(i % 97),
                        static_cast<std::uint64_t>(i));
        }
      });
    }
    pool.Wait();
    return set.Digest();
  };
  const std::uint64_t a = build(1);
  const std::uint64_t b = build(3);
  const std::uint64_t c = build(8);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

}  // namespace
}  // namespace check
}  // namespace dynvote
