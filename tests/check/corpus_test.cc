// Replays every checked-in counterexample in tests/check/corpus/ and
// requires each to reproduce its recorded violation exactly. The corpus
// is the regression lock for hazards the checker has already found once:
// the topological variants' fork (TDV, OTDV), available-copies under a
// partition it assumes away, the LDV/ODV lex_pair divergence, and the
// weakened-mutex pipeline demo. If a protocol change "fixes" or shifts
// one of these, this test fails and the corpus entry must be
// regenerated with `dynvote check` — a deliberate, visible step.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/counterexample.h"

#ifndef DYNVOTE_CHECK_CORPUS_DIR
#error "build must define DYNVOTE_CHECK_CORPUS_DIR"
#endif

namespace dynvote {
namespace check {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(DYNVOTE_CHECK_CORPUS_DIR)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorpusTest, DirectoryIsPopulated) {
  // Catches a misconfigured corpus path before the parameterized replay
  // silently runs zero cases.
  EXPECT_GE(CorpusFiles().size(), 9u);
}

class CorpusReplayTest
    : public ::testing::TestWithParam<std::filesystem::path> {};

std::string CorpusCaseName(
    const ::testing::TestParamInfo<std::filesystem::path>& info) {
  std::string name = info.param.stem().string();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

TEST_P(CorpusReplayTest, ReproducesRecordedViolation) {
  std::ifstream in(GetParam());
  ASSERT_TRUE(in) << "cannot read " << GetParam();
  std::stringstream buffer;
  buffer << in.rdbuf();

  auto ce = ParseCounterExampleJson(buffer.str());
  ASSERT_TRUE(ce.ok()) << GetParam() << ": " << ce.status();
  EXPECT_FALSE(ce->violation.invariant.empty());

  Status st = ReplayCounterExample(*ce);
  EXPECT_TRUE(st.ok()) << GetParam() << ": " << st;
}

TEST_P(CorpusReplayTest, JsonIsCanonical) {
  // Corpus files are exactly what CounterExampleToJson emits — hand
  // edits that still parse get normalized away here.
  std::ifstream in(GetParam());
  ASSERT_TRUE(in);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto ce = ParseCounterExampleJson(buffer.str());
  ASSERT_TRUE(ce.ok()) << ce.status();
  EXPECT_EQ(CounterExampleToJson(*ce), buffer.str()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Checked, CorpusReplayTest,
                         ::testing::ValuesIn(CorpusFiles()),
                         CorpusCaseName);

}  // namespace
}  // namespace check
}  // namespace dynvote
