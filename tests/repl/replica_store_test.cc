#include "repl/replica_store.h"

#include <gtest/gtest.h>

namespace dynvote {
namespace {

ReplicaStore MustMake(SiteSet placement) {
  auto store = ReplicaStore::Make(placement);
  EXPECT_TRUE(store.ok());
  return store.MoveValue();
}

TEST(ReplicaStateTest, ToString) {
  ReplicaState s{8, 8, SiteSet{0, 1, 2}};
  EXPECT_EQ(s.ToString(), "o=8 v=8 P={0, 1, 2}");
}

TEST(ReplicaStoreTest, RejectsEmptyPlacement) {
  EXPECT_TRUE(ReplicaStore::Make(SiteSet()).status().IsInvalidArgument());
}

TEST(ReplicaStoreTest, InitialStateMatchesPaper) {
  // "the initial operation numbers and version numbers are 1 and the
  // partition vectors are {A, B, C} for all three copies."
  ReplicaStore store = MustMake(SiteSet{0, 1, 2});
  for (SiteId s : SiteSet{0, 1, 2}) {
    EXPECT_EQ(store.state(s).op_number, 1);
    EXPECT_EQ(store.state(s).version, 1);
    EXPECT_EQ(store.state(s).partition_set, (SiteSet{0, 1, 2}));
  }
}

TEST(ReplicaStoreTest, SparsePlacement) {
  ReplicaStore store = MustMake(SiteSet{2, 5});
  EXPECT_EQ(store.num_copies(), 2);
  EXPECT_EQ(store.placement(), (SiteSet{2, 5}));
  EXPECT_EQ(store.state(5).op_number, 1);
}

TEST(ReplicaStoreTest, CopiesAmongFiltersNonCopies) {
  ReplicaStore store = MustMake(SiteSet{1, 3});
  EXPECT_EQ(store.CopiesAmong(SiteSet{0, 1, 2, 3, 4}), (SiteSet{1, 3}));
  EXPECT_EQ(store.CopiesAmong(SiteSet{0, 2}), SiteSet());
}

TEST(ReplicaStoreTest, MaxQueries) {
  ReplicaStore store = MustMake(SiteSet{0, 1, 2});
  store.mutable_state(0)->op_number = 5;
  store.mutable_state(0)->version = 3;
  store.mutable_state(1)->op_number = 7;
  store.mutable_state(1)->version = 2;

  EXPECT_EQ(store.MaxOp(SiteSet{0, 1, 2}), 7);
  EXPECT_EQ(store.MaxVersion(SiteSet{0, 1, 2}), 3);
  EXPECT_EQ(store.MaxOpSites(SiteSet{0, 1, 2}), SiteSet{1});
  EXPECT_EQ(store.MaxVersionSites(SiteSet{0, 1, 2}), SiteSet{0});

  // Restricted to a subset, the maxima are over that subset only.
  EXPECT_EQ(store.MaxOp(SiteSet{0, 2}), 5);
  EXPECT_EQ(store.MaxOpSites(SiteSet{0, 2}), SiteSet{0});
  EXPECT_EQ(store.MaxVersionSites(SiteSet{1, 2}), SiteSet{1});
  EXPECT_EQ(store.MaxVersion(SiteSet{1, 2}), 2);
}

TEST(ReplicaStoreTest, MaxOpSitesWithTies) {
  ReplicaStore store = MustMake(SiteSet{0, 1, 2});
  EXPECT_EQ(store.MaxOpSites(SiteSet{0, 1, 2}), (SiteSet{0, 1, 2}));
}

TEST(ReplicaStoreTest, CommitInstallsEnsembleAtParticipants) {
  ReplicaStore store = MustMake(SiteSet{0, 1, 2});
  store.Commit(SiteSet{0, 2}, 9, 4, SiteSet{0, 2});
  EXPECT_EQ(store.state(0).op_number, 9);
  EXPECT_EQ(store.state(0).version, 4);
  EXPECT_EQ(store.state(0).partition_set, (SiteSet{0, 2}));
  EXPECT_EQ(store.state(2).op_number, 9);
  // Non-participant untouched.
  EXPECT_EQ(store.state(1).op_number, 1);
  EXPECT_EQ(store.state(1).partition_set, (SiteSet{0, 1, 2}));
}

TEST(ReplicaStoreTest, CommitIgnoresNonCopies) {
  ReplicaStore store = MustMake(SiteSet{0, 1});
  store.Commit(SiteSet{0, 1, 5}, 2, 2, SiteSet{0, 1});
  EXPECT_EQ(store.state(0).op_number, 2);
  EXPECT_EQ(store.state(1).op_number, 2);
}

TEST(ReplicaStoreTest, ResetRestoresInitialState) {
  ReplicaStore store = MustMake(SiteSet{0, 1});
  store.Commit(SiteSet{0, 1}, 10, 10, SiteSet{0});
  store.Reset();
  EXPECT_EQ(store.state(0).op_number, 1);
  EXPECT_EQ(store.state(1).partition_set, (SiteSet{0, 1}));
}

}  // namespace
}  // namespace dynvote
