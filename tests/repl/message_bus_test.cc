#include "repl/message_bus.h"

#include <gtest/gtest.h>

namespace dynvote {
namespace {

TEST(MessageCounterTest, StartsAtZero) {
  MessageCounter c;
  EXPECT_EQ(c.Total(), 0u);
  for (int k = 0; k < kNumMessageKinds; ++k) {
    EXPECT_EQ(c.count(static_cast<MessageKind>(k)), 0u);
  }
}

TEST(MessageCounterTest, AddAccumulates) {
  MessageCounter c;
  c.Add(MessageKind::kProbe, 3);
  c.Add(MessageKind::kProbe);
  c.Add(MessageKind::kCommit, 2);
  EXPECT_EQ(c.count(MessageKind::kProbe), 4u);
  EXPECT_EQ(c.count(MessageKind::kCommit), 2u);
  EXPECT_EQ(c.Total(), 6u);
}

TEST(MessageCounterTest, ControlTotalExcludesFileCopies) {
  MessageCounter c;
  c.Add(MessageKind::kCommit, 5);
  c.Add(MessageKind::kFileCopy, 2);
  EXPECT_EQ(c.Total(), 7u);
  EXPECT_EQ(c.ControlTotal(), 5u);
}

TEST(MessageCounterTest, ResetClears) {
  MessageCounter c;
  c.Add(MessageKind::kAbort, 9);
  c.Reset();
  EXPECT_EQ(c.Total(), 0u);
}

TEST(MessageCounterTest, KindNamesDistinct) {
  for (int i = 0; i < kNumMessageKinds; ++i) {
    for (int j = i + 1; j < kNumMessageKinds; ++j) {
      EXPECT_NE(MessageKindName(static_cast<MessageKind>(i)),
                MessageKindName(static_cast<MessageKind>(j)));
    }
  }
}

TEST(MessageCounterTest, ToStringContainsCounts) {
  MessageCounter c;
  c.Add(MessageKind::kProbe, 12);
  std::string s = c.ToString();
  EXPECT_NE(s.find("probe=12"), std::string::npos);
  EXPECT_NE(s.find("total=12"), std::string::npos);
}

}  // namespace
}  // namespace dynvote
