// Differential test of NetworkState's union-find connectivity against a
// brute-force breadth-first search over the bridge graph, on randomly
// generated topologies and random up/down states.

#include <queue>
#include <vector>

#include <gtest/gtest.h>

#include "net/network_state.h"
#include "util/rng.h"

namespace dynvote {
namespace {

struct RandomNetwork {
  std::shared_ptr<const Topology> topology;
};

RandomNetwork MakeRandomTopology(Rng* rng) {
  auto builder = Topology::Builder();
  int num_segments = 1 + static_cast<int>(rng->NextBounded(5));
  std::vector<SegmentId> segments;
  for (int i = 0; i < num_segments; ++i) {
    segments.push_back(builder.AddSegment("seg" + std::to_string(i)));
  }
  int num_sites = 2 + static_cast<int>(rng->NextBounded(9));
  std::vector<SiteId> sites;
  std::vector<SegmentId> home;  // home[i] = segment of site i
  for (int i = 0; i < num_sites; ++i) {
    SegmentId seg = segments[rng->NextBounded(segments.size())];
    sites.push_back(builder.AddSite("s" + std::to_string(i), seg));
    home.push_back(seg);
  }
  // Random bridges: mix of repeaters and gateway hosts.
  int num_bridges = static_cast<int>(rng->NextBounded(6));
  for (int i = 0; i < num_bridges && num_segments > 1; ++i) {
    SegmentId a = segments[rng->NextBounded(segments.size())];
    SegmentId b = segments[rng->NextBounded(segments.size())];
    if (a == b) continue;
    // Pick a site homed on `a` as the gateway host if one exists and the
    // coin says so; otherwise use a standalone repeater.
    SiteId host = -1;
    if (rng->NextBernoulli(0.5)) {
      for (std::size_t s = 0; s < sites.size(); ++s) {
        if (home[s] == a) host = sites[s];
      }
    }
    if (host >= 0) {
      builder.AddGateway(host, b);
    } else {
      builder.AddRepeater("r" + std::to_string(i), a, b);
    }
  }
  auto topo = builder.Build();
  EXPECT_TRUE(topo.ok());
  return RandomNetwork{topo.MoveValue()};
}

/// Reference: BFS over segments joined by live bridges.
bool ReferenceCanCommunicate(const NetworkState& net, SiteId a, SiteId b) {
  const Topology& topo = net.topology();
  if (!net.IsSiteUp(a) || !net.IsSiteUp(b)) return false;
  std::vector<std::vector<int>> adjacent(topo.num_segments());
  for (const BridgeInfo& bridge : topo.bridges()) {
    bool up = bridge.gateway_site.has_value()
                  ? net.IsSiteUp(*bridge.gateway_site)
                  : net.IsRepeaterUp(bridge.repeater);
    if (!up) continue;
    adjacent[bridge.segment_a].push_back(bridge.segment_b);
    adjacent[bridge.segment_b].push_back(bridge.segment_a);
  }
  std::vector<bool> seen(topo.num_segments(), false);
  std::queue<int> frontier;
  frontier.push(topo.SegmentOf(a));
  seen[topo.SegmentOf(a)] = true;
  while (!frontier.empty()) {
    int seg = frontier.front();
    frontier.pop();
    if (seg == topo.SegmentOf(b)) return true;
    for (int next : adjacent[seg]) {
      if (!seen[next]) {
        seen[next] = true;
        frontier.push(next);
      }
    }
  }
  return false;
}

TEST(ConnectivityFuzzTest, MatchesBfsReference) {
  Rng rng(0xBF5);
  for (int trial = 0; trial < 60; ++trial) {
    RandomNetwork rn = MakeRandomTopology(&rng);
    NetworkState net(rn.topology);
    const int n = rn.topology->num_sites();
    for (int step = 0; step < 200; ++step) {
      // Random mutation.
      if (rn.topology->num_repeaters() > 0 && rng.NextBernoulli(0.3)) {
        RepeaterId r = static_cast<RepeaterId>(
            rng.NextBounded(rn.topology->num_repeaters()));
        net.SetRepeaterUp(r, rng.NextBernoulli(0.6));
      } else {
        SiteId s = static_cast<SiteId>(rng.NextBounded(n));
        net.SetSiteUp(s, rng.NextBernoulli(0.7));
      }
      // Spot-check pairwise connectivity.
      for (int probe = 0; probe < 6; ++probe) {
        SiteId a = static_cast<SiteId>(rng.NextBounded(n));
        SiteId b = static_cast<SiteId>(rng.NextBounded(n));
        ASSERT_EQ(net.CanCommunicate(a, b),
                  ReferenceCanCommunicate(net, a, b))
            << "trial " << trial << " step " << step << " pair (" << a
            << ", " << b << ")";
      }
      // Components must agree with pairwise reachability.
      auto groups = net.Components();
      for (const SiteSet& group : groups) {
        SiteId representative = group.RankMax();
        for (SiteId member : group) {
          ASSERT_TRUE(ReferenceCanCommunicate(net, representative, member));
        }
      }
      // And every live site is in exactly one group.
      SiteSet covered;
      for (const SiteSet& group : groups) {
        ASSERT_FALSE(covered.Intersects(group));
        covered = covered.Union(group);
      }
      ASSERT_EQ(covered, net.LiveSites());
    }
  }
}

}  // namespace
}  // namespace dynvote
