#include "net/topology.h"

#include <gtest/gtest.h>

namespace dynvote {
namespace {

// The Section 3 example: sites A, B on segment alpha; C on gamma; D on
// delta; repeaters X (alpha-gamma) and Y (alpha-delta).
struct Section3Example {
  std::shared_ptr<const Topology> topo;
  SegmentId alpha, gamma, delta;
  SiteId a, b, c, d;
  RepeaterId x, y;
};

Section3Example MakeSection3() {
  Section3Example e;
  auto builder = Topology::Builder();
  e.alpha = builder.AddSegment("alpha");
  e.gamma = builder.AddSegment("gamma");
  e.delta = builder.AddSegment("delta");
  e.a = builder.AddSite("A", e.alpha);
  e.b = builder.AddSite("B", e.alpha);
  e.c = builder.AddSite("C", e.gamma);
  e.d = builder.AddSite("D", e.delta);
  e.x = builder.AddRepeater("X", e.alpha, e.gamma);
  e.y = builder.AddRepeater("Y", e.alpha, e.delta);
  auto topo = builder.Build();
  EXPECT_TRUE(topo.ok()) << topo.status();
  e.topo = topo.MoveValue();
  return e;
}

TEST(TopologyTest, BasicCounts) {
  Section3Example e = MakeSection3();
  EXPECT_EQ(e.topo->num_sites(), 4);
  EXPECT_EQ(e.topo->num_segments(), 3);
  EXPECT_EQ(e.topo->num_repeaters(), 2);
  EXPECT_EQ(e.topo->num_bridges(), 2);
}

TEST(TopologyTest, SegmentMembership) {
  Section3Example e = MakeSection3();
  EXPECT_EQ(e.topo->SegmentOf(e.a), e.alpha);
  EXPECT_EQ(e.topo->SegmentOf(e.b), e.alpha);
  EXPECT_EQ(e.topo->SegmentOf(e.c), e.gamma);
  EXPECT_TRUE(e.topo->SameSegment(e.a, e.b));
  EXPECT_FALSE(e.topo->SameSegment(e.a, e.c));
  EXPECT_EQ(e.topo->SitesOnSegment(e.alpha), (SiteSet{e.a, e.b}));
  EXPECT_EQ(e.topo->SitesOnSegment(e.delta), SiteSet{e.d});
}

TEST(TopologyTest, AllSites) {
  Section3Example e = MakeSection3();
  EXPECT_EQ(e.topo->AllSites(), SiteSet::FirstN(4));
}

TEST(TopologyTest, FindSiteByName) {
  Section3Example e = MakeSection3();
  auto c = e.topo->FindSite("C");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, e.c);
  EXPECT_TRUE(e.topo->FindSite("Z").status().IsNotFound());
}

TEST(TopologyTest, GatewayHostBridge) {
  auto builder = Topology::Builder();
  SegmentId main = builder.AddSegment("main");
  SegmentId second = builder.AddSegment("second");
  SiteId gw = builder.AddSite("gw", main);
  builder.AddSite("leaf", second);
  builder.AddGateway(gw, second);
  auto topo = builder.Build();
  ASSERT_TRUE(topo.ok());
  ASSERT_EQ((*topo)->num_bridges(), 1);
  EXPECT_EQ((*topo)->bridges()[0].gateway_site, gw);
  EXPECT_EQ((*topo)->num_repeaters(), 0);
}

TEST(TopologyTest, ToStringMentionsEverything) {
  Section3Example e = MakeSection3();
  std::string s = e.topo->ToString();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("A"), std::string::npos);
  EXPECT_NE(s.find("repeater"), std::string::npos);
}

TEST(TopologyBuilderTest, RejectsEmptyTopology) {
  auto topo = Topology::Builder().Build();
  EXPECT_TRUE(topo.status().IsInvalidArgument());
}

TEST(TopologyBuilderTest, RejectsDuplicateSiteNames) {
  auto builder = Topology::Builder();
  SegmentId seg = builder.AddSegment("s");
  builder.AddSite("dup", seg);
  builder.AddSite("dup", seg);
  EXPECT_TRUE(builder.Build().status().IsInvalidArgument());
}

TEST(TopologyBuilderTest, RejectsUnknownSegment) {
  auto builder = Topology::Builder();
  builder.AddSegment("s");
  builder.AddSite("a", 7);
  EXPECT_TRUE(builder.Build().status().IsInvalidArgument());
}

TEST(TopologyBuilderTest, RejectsSelfBridgingGateway) {
  auto builder = Topology::Builder();
  SegmentId seg = builder.AddSegment("s");
  SiteId a = builder.AddSite("a", seg);
  builder.AddGateway(a, seg);
  EXPECT_TRUE(builder.Build().status().IsInvalidArgument());
}

TEST(TopologyBuilderTest, RejectsSelfBridgingRepeater) {
  auto builder = Topology::Builder();
  SegmentId seg = builder.AddSegment("s");
  builder.AddSite("a", seg);
  builder.AddRepeater("r", seg, seg);
  EXPECT_TRUE(builder.Build().status().IsInvalidArgument());
}

TEST(TopologyBuilderTest, RejectsGatewayWithUnknownSite) {
  auto builder = Topology::Builder();
  SegmentId s1 = builder.AddSegment("s1");
  builder.AddSegment("s2");
  builder.AddSite("a", s1);
  builder.AddGateway(5, 1);
  EXPECT_TRUE(builder.Build().status().IsInvalidArgument());
}

TEST(TopologyBuilderTest, FirstErrorWins) {
  auto builder = Topology::Builder();
  builder.AddSite("a", 3);     // unknown segment (first error)
  builder.AddRepeater("r", 9, 9);  // later error
  Status st = builder.Build().status();
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("unknown segment"), std::string::npos);
}

}  // namespace
}  // namespace dynvote
