#include "net/partition_analysis.h"

#include <gtest/gtest.h>

#include "model/site_profile.h"

namespace dynvote {
namespace {

// Section 3 example topology (same as net tests).
std::shared_ptr<const Topology> Section3() {
  auto builder = Topology::Builder();
  SegmentId alpha = builder.AddSegment("alpha");
  SegmentId gamma = builder.AddSegment("gamma");
  SegmentId delta = builder.AddSegment("delta");
  builder.AddSite("A", alpha);
  builder.AddSite("B", alpha);
  builder.AddSite("C", gamma);
  builder.AddSite("D", delta);
  builder.AddRepeater("X", alpha, gamma);
  builder.AddRepeater("Y", alpha, delta);
  auto topo = builder.Build();
  EXPECT_TRUE(topo.ok());
  return topo.MoveValue();
}

TEST(PartitionAnalysisTest, Validates) {
  auto topo = Section3();
  EXPECT_FALSE(AnalyzePartitionPoints(nullptr, SiteSet{0}).ok());
  EXPECT_FALSE(AnalyzePartitionPoints(topo, SiteSet()).ok());
  EXPECT_FALSE(AnalyzePartitionPoints(topo, SiteSet{9}).ok());
  EXPECT_FALSE(EnumeratePlacementPartitions(nullptr, SiteSet{0}).ok());
}

TEST(PartitionAnalysisTest, Section3CutPoints) {
  auto topo = Section3();
  auto v = AnalyzePartitionPoints(topo, SiteSet{0, 1, 2, 3});
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->partitionable());
  EXPECT_TRUE(v->gateway_cut_points.empty());
  EXPECT_EQ(v->repeater_cut_points, (std::vector<RepeaterId>{0, 1}));
}

TEST(PartitionAnalysisTest, SameSegmentPlacementUnpartitionable) {
  auto topo = Section3();
  auto v = AnalyzePartitionPoints(topo, SiteSet{0, 1});  // A, B on alpha
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->partitionable());
}

TEST(PartitionAnalysisTest, Section3EnumerationMatchesPaper) {
  // "the only possible partitions are {{A,B,C},{D}}, {{A,B,D},{C}} and
  // {{A,B},{C},{D}}" — plus the unpartitioned pattern.
  auto topo = Section3();
  auto patterns = EnumeratePlacementPartitions(topo, SiteSet{0, 1, 2, 3});
  ASSERT_TRUE(patterns.ok());
  ASSERT_EQ(patterns->size(), 4u);

  auto contains = [&](const std::vector<SiteSet>& pattern) {
    return std::find(patterns->begin(), patterns->end(), pattern) !=
           patterns->end();
  };
  // Groups within a pattern are sorted by mask (canonical form).
  EXPECT_TRUE(contains({SiteSet{0, 1, 2, 3}}));
  EXPECT_TRUE(contains({SiteSet{0, 1, 2}, SiteSet{3}}));
  EXPECT_TRUE(contains({SiteSet{2}, SiteSet{0, 1, 3}}));
  EXPECT_TRUE(contains({SiteSet{0, 1}, SiteSet{2}, SiteSet{3}}));
}

TEST(PartitionAnalysisTest, PaperNetworkConfigurations) {
  // Section 4's descriptions, verified mechanically: A and E allow no
  // partitions; B and F have the single point wizard; C and G have wizard
  // and amos; D has wizard or amos; H has only amos.
  auto paper = MakePaperNetwork();
  ASSERT_TRUE(paper.ok());
  auto points = [&](SiteSet placement) {
    auto v = AnalyzePartitionPoints(paper->topology, placement);
    EXPECT_TRUE(v.ok());
    return v->gateway_cut_points;
  };
  EXPECT_TRUE(points(SiteSet{0, 1, 3}).empty());              // A
  EXPECT_EQ(points(SiteSet{0, 1, 5}), (std::vector<SiteId>{3}));   // B
  EXPECT_EQ(points(SiteSet{0, 5, 7}), (std::vector<SiteId>{3, 4}));  // C
  EXPECT_EQ(points(SiteSet{5, 6, 7}), (std::vector<SiteId>{3, 4}));  // D
  EXPECT_TRUE(points(SiteSet{0, 1, 2, 3}).empty());           // E
  EXPECT_EQ(points(SiteSet{0, 1, 3, 5}), (std::vector<SiteId>{3}));  // F
  EXPECT_EQ(points(SiteSet{0, 1, 5, 7}),
            (std::vector<SiteId>{3, 4}));                     // G
  EXPECT_EQ(points(SiteSet{0, 1, 6, 7}), (std::vector<SiteId>{4}));  // H
}

TEST(PartitionAnalysisTest, PaperNetworkEnumeration) {
  // Configuration H: the only nontrivial pattern is {1,2} | {7,8}
  // (amos down); wizard's failure does not split H's members.
  auto paper = MakePaperNetwork();
  ASSERT_TRUE(paper.ok());
  auto patterns =
      EnumeratePlacementPartitions(paper->topology, SiteSet{0, 1, 6, 7});
  ASSERT_TRUE(patterns.ok());
  ASSERT_EQ(patterns->size(), 2u);
  EXPECT_EQ((*patterns)[0], (std::vector<SiteSet>{SiteSet{0, 1, 6, 7}}));
  EXPECT_EQ((*patterns)[1],
            (std::vector<SiteSet>{SiteSet{0, 1}, SiteSet{6, 7}}));
}

}  // namespace
}  // namespace dynvote
