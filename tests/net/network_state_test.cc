#include "net/network_state.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "model/site_profile.h"

namespace dynvote {
namespace {

// Section 3 example topology (repeaters X, Y) — see topology_test.cc.
struct Net {
  std::shared_ptr<const Topology> topo;
  SiteId a = 0, b = 1, c = 2, d = 3;
  RepeaterId x = 0, y = 1;
};

Net MakeNet() {
  Net n;
  auto builder = Topology::Builder();
  SegmentId alpha = builder.AddSegment("alpha");
  SegmentId gamma = builder.AddSegment("gamma");
  SegmentId delta = builder.AddSegment("delta");
  builder.AddSite("A", alpha);
  builder.AddSite("B", alpha);
  builder.AddSite("C", gamma);
  builder.AddSite("D", delta);
  builder.AddRepeater("X", alpha, gamma);
  builder.AddRepeater("Y", alpha, delta);
  auto topo = builder.Build();
  EXPECT_TRUE(topo.ok());
  n.topo = topo.MoveValue();
  return n;
}

TEST(NetworkStateTest, EverythingUpInitially) {
  Net n = MakeNet();
  NetworkState net(n.topo);
  EXPECT_EQ(net.LiveSites(), SiteSet::FirstN(4));
  EXPECT_TRUE(net.CanCommunicate(n.a, n.d));
  auto groups = net.Components();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], SiteSet::FirstN(4));
}

TEST(NetworkStateTest, SiteFailureRemovesFromComponents) {
  Net n = MakeNet();
  NetworkState net(n.topo);
  net.SetSiteUp(n.b, false);
  EXPECT_FALSE(net.IsSiteUp(n.b));
  EXPECT_EQ(net.LiveSites(), (SiteSet{n.a, n.c, n.d}));
  EXPECT_FALSE(net.CanCommunicate(n.a, n.b));
  EXPECT_EQ(net.ComponentOf(n.b), SiteSet());
  EXPECT_EQ(net.ComponentOf(n.a), (SiteSet{n.a, n.c, n.d}));
}

TEST(NetworkStateTest, RepeaterFailurePartitions) {
  Net n = MakeNet();
  NetworkState net(n.topo);
  net.SetRepeaterUp(n.x, false);
  // The only possible partitions of the Section 3 example are
  // {{A,B,C},{D}}, {{A,B,D},{C}} and {{A,B},{C},{D}}.
  EXPECT_FALSE(net.CanCommunicate(n.a, n.c));
  EXPECT_TRUE(net.CanCommunicate(n.a, n.d));
  auto groups = net.Components();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_TRUE(std::count(groups.begin(), groups.end(),
                         (SiteSet{n.a, n.b, n.d})) == 1);
  EXPECT_TRUE(std::count(groups.begin(), groups.end(), SiteSet{n.c}) == 1);
}

TEST(NetworkStateTest, BothRepeatersDownTriplePartition) {
  Net n = MakeNet();
  NetworkState net(n.topo);
  net.SetRepeaterUp(n.x, false);
  net.SetRepeaterUp(n.y, false);
  auto groups = net.Components();
  EXPECT_EQ(groups.size(), 3u);
  EXPECT_TRUE(net.CanCommunicate(n.a, n.b));  // same segment, unaffected
  EXPECT_FALSE(net.CanCommunicate(n.c, n.d));
}

TEST(NetworkStateTest, SameSegmentNeverPartitioned) {
  Net n = MakeNet();
  NetworkState net(n.topo);
  net.SetRepeaterUp(n.x, false);
  net.SetRepeaterUp(n.y, false);
  EXPECT_TRUE(net.CanCommunicate(n.a, n.b));
}

TEST(NetworkStateTest, RepairRestoresConnectivity) {
  Net n = MakeNet();
  NetworkState net(n.topo);
  net.SetRepeaterUp(n.x, false);
  EXPECT_FALSE(net.CanCommunicate(n.a, n.c));
  net.SetRepeaterUp(n.x, true);
  EXPECT_TRUE(net.CanCommunicate(n.a, n.c));
  net.SetSiteUp(n.a, false);
  net.SetSiteUp(n.a, true);
  EXPECT_TRUE(net.CanCommunicate(n.a, n.d));
}

TEST(NetworkStateTest, AllUpResets) {
  Net n = MakeNet();
  NetworkState net(n.topo);
  net.SetSiteUp(n.a, false);
  net.SetRepeaterUp(n.y, false);
  net.AllUp();
  EXPECT_EQ(net.Components().size(), 1u);
  EXPECT_TRUE(net.IsSiteUp(n.a));
  EXPECT_TRUE(net.IsRepeaterUp(n.y));
}

TEST(NetworkStateTest, FullyConnected) {
  Net n = MakeNet();
  NetworkState net(n.topo);
  EXPECT_TRUE(net.FullyConnected(SiteSet{n.a, n.c, n.d}));
  EXPECT_TRUE(net.FullyConnected(SiteSet()));
  net.SetRepeaterUp(n.x, false);
  EXPECT_FALSE(net.FullyConnected(SiteSet{n.a, n.c}));
  EXPECT_TRUE(net.FullyConnected(SiteSet{n.a, n.b, n.d}));
  net.SetSiteUp(n.d, false);
  EXPECT_FALSE(net.FullyConnected(SiteSet{n.a, n.d}));
}

TEST(NetworkStateTest, ComponentsPartitionLiveSites) {
  Net n = MakeNet();
  NetworkState net(n.topo);
  net.SetRepeaterUp(n.x, false);
  net.SetSiteUp(n.b, false);
  SiteSet all_in_groups;
  for (const SiteSet& g : net.Components()) {
    EXPECT_FALSE(g.Intersects(all_in_groups)) << "groups overlap";
    all_in_groups = all_in_groups.Union(g);
  }
  EXPECT_EQ(all_in_groups, net.LiveSites());
}

// Paper network (Figure 8): gateway hosts wizard (id 3) and amos (id 4).
TEST(NetworkStateTest, PaperNetworkGatewayFailures) {
  auto paper = MakePaperNetwork();
  ASSERT_TRUE(paper.ok());
  NetworkState net(paper->topology);

  // All up: single component of 8.
  ASSERT_EQ(net.Components().size(), 1u);

  // Wizard (id 3) down: gremlin (id 5) is cut off.
  net.SetSiteUp(3, false);
  EXPECT_FALSE(net.CanCommunicate(0, 5));
  EXPECT_TRUE(net.CanCommunicate(0, 6));  // third segment still bridged
  EXPECT_EQ(net.ComponentOf(5), SiteSet{5});

  // Amos (id 4) down as well: rip and mangle (6, 7) also cut off, but
  // still talking to each other (same segment).
  net.SetSiteUp(4, false);
  EXPECT_FALSE(net.CanCommunicate(0, 6));
  EXPECT_TRUE(net.CanCommunicate(6, 7));
  auto groups = net.Components();
  EXPECT_EQ(groups.size(), 3u);

  // Gateways back: fully connected again.
  net.SetSiteUp(3, true);
  net.SetSiteUp(4, true);
  EXPECT_EQ(net.Components().size(), 1u);
}

TEST(NetworkStateTest, PaperNetworkConfigurationsMatchDescriptions) {
  auto paper = MakePaperNetwork();
  ASSERT_TRUE(paper.ok());
  NetworkState net(paper->topology);

  // Config A (ids 0,1,3) "allows for no partitions": all three live on the
  // main segment regardless of gateway state.
  net.SetSiteUp(4, false);
  EXPECT_TRUE(net.FullyConnected(SiteSet{0, 1, 3}));
  net.AllUp();

  // Config B (ids 0,1,5) has its single partition point at wizard (id 3).
  net.SetSiteUp(3, false);
  EXPECT_FALSE(net.FullyConnected(SiteSet{0, 1, 5}));
  net.AllUp();
  net.SetSiteUp(4, false);
  EXPECT_TRUE(net.FullyConnected(SiteSet{0, 1, 5}));
}

}  // namespace
}  // namespace dynvote
