// Property test for NetworkState's incrementally maintained state: after
// any randomized sequence of SetSiteUp / SetRepeaterUp / AllUp mutations,
// the cached Components() / LiveSites() / ComponentOf() answers must be
// identical to those of a freshly constructed NetworkState that replays
// only the *final* up/down state. Also pins down the generation()
// contract: no bump on no-op mutations, exactly one bump per effective
// flip.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "net/network_state.h"
#include "util/rng.h"

namespace dynvote {
namespace {

std::shared_ptr<const Topology> MakeRandomTopology(Rng* rng) {
  auto builder = Topology::Builder();
  int num_segments = 1 + static_cast<int>(rng->NextBounded(5));
  std::vector<SegmentId> segments;
  for (int i = 0; i < num_segments; ++i) {
    segments.push_back(builder.AddSegment("seg" + std::to_string(i)));
  }
  int num_sites = 2 + static_cast<int>(rng->NextBounded(9));
  std::vector<SiteId> sites;
  std::vector<SegmentId> home;
  for (int i = 0; i < num_sites; ++i) {
    SegmentId seg = segments[rng->NextBounded(segments.size())];
    sites.push_back(builder.AddSite("s" + std::to_string(i), seg));
    home.push_back(seg);
  }
  int num_bridges = static_cast<int>(rng->NextBounded(6));
  for (int i = 0; i < num_bridges && num_segments > 1; ++i) {
    SegmentId a = segments[rng->NextBounded(segments.size())];
    SegmentId b = segments[rng->NextBounded(segments.size())];
    if (a == b) continue;
    SiteId host = -1;
    if (rng->NextBernoulli(0.5)) {
      for (std::size_t s = 0; s < sites.size(); ++s) {
        if (home[s] == a) host = sites[s];
      }
    }
    if (host >= 0) {
      builder.AddGateway(host, b);
    } else {
      builder.AddRepeater("r" + std::to_string(i), a, b);
    }
  }
  auto topo = builder.Build();
  EXPECT_TRUE(topo.ok());
  return topo.MoveValue();
}

/// A fresh NetworkState that replays only `net`'s final up/down state.
NetworkState ReplayFinalState(const std::shared_ptr<const Topology>& topology,
                              const NetworkState& net) {
  NetworkState fresh(topology);
  const Topology& topo = *topology;
  for (SiteId s = 0; s < topo.num_sites(); ++s) {
    fresh.SetSiteUp(s, net.IsSiteUp(s));
  }
  for (RepeaterId r = 0; r < topo.num_repeaters(); ++r) {
    fresh.SetRepeaterUp(r, net.IsRepeaterUp(r));
  }
  return fresh;
}

void ExpectSameConnectivity(const NetworkState& incremental,
                            const NetworkState& fresh, int trial, int step) {
  ASSERT_EQ(incremental.LiveSites(), fresh.LiveSites())
      << "trial " << trial << " step " << step;
  ASSERT_EQ(incremental.Components(), fresh.Components())
      << "trial " << trial << " step " << step;
  const int n = incremental.topology().num_sites();
  for (SiteId s = 0; s < n; ++s) {
    ASSERT_EQ(incremental.ComponentOf(s), fresh.ComponentOf(s))
        << "trial " << trial << " step " << step << " site " << s;
  }
}

TEST(NetworkStatePropertyTest, IncrementalStateMatchesFreshReplay) {
  Rng rng(0x17C);
  for (int trial = 0; trial < 40; ++trial) {
    auto topology = MakeRandomTopology(&rng);
    NetworkState net(topology);
    const int n = topology->num_sites();
    for (int step = 0; step < 120; ++step) {
      double coin = rng.NextDouble();
      if (coin < 0.05) {
        net.AllUp();
      } else if (coin < 0.3 && topology->num_repeaters() > 0) {
        RepeaterId r = static_cast<RepeaterId>(
            rng.NextBounded(topology->num_repeaters()));
        net.SetRepeaterUp(r, rng.NextBernoulli(0.6));
      } else {
        SiteId s = static_cast<SiteId>(rng.NextBounded(n));
        net.SetSiteUp(s, rng.NextBernoulli(0.7));
      }
      // Interleave queries so later checks exercise the *cached* answers,
      // not a freshly rebuilt state.
      if (rng.NextBernoulli(0.5)) {
        (void)net.Components();
        (void)net.ComponentOf(static_cast<SiteId>(rng.NextBounded(n)));
      }
      NetworkState fresh = ReplayFinalState(topology, net);
      ExpectSameConnectivity(net, fresh, trial, step);
    }
  }
}

TEST(NetworkStatePropertyTest, GenerationBumpsOnlyOnEffectiveChanges) {
  Rng rng(0x6E4);
  for (int trial = 0; trial < 20; ++trial) {
    auto topology = MakeRandomTopology(&rng);
    NetworkState net(topology);
    const int n = topology->num_sites();
    for (int step = 0; step < 150; ++step) {
      std::uint64_t before = net.generation();
      bool effective = false;
      double coin = rng.NextDouble();
      if (coin < 0.1) {
        effective = net.LiveSites() != topology->AllSites();
        for (RepeaterId r = 0; r < topology->num_repeaters() && !effective;
             ++r) {
          effective = !net.IsRepeaterUp(r);
        }
        net.AllUp();
      } else if (coin < 0.3 && topology->num_repeaters() > 0) {
        RepeaterId r = static_cast<RepeaterId>(
            rng.NextBounded(topology->num_repeaters()));
        bool up = rng.NextBernoulli(0.5);
        effective = net.IsRepeaterUp(r) != up;
        net.SetRepeaterUp(r, up);
      } else {
        SiteId s = static_cast<SiteId>(rng.NextBounded(n));
        bool up = rng.NextBernoulli(0.5);
        effective = net.IsSiteUp(s) != up;
        net.SetSiteUp(s, up);
      }
      if (effective) {
        ASSERT_GT(net.generation(), before)
            << "trial " << trial << " step " << step;
      } else {
        ASSERT_EQ(net.generation(), before)
            << "trial " << trial << " step " << step;
      }
    }
  }
}

TEST(NetworkStatePropertyTest, EqualGenerationsImplyEqualState) {
  auto builder = Topology::Builder();
  SegmentId a = builder.AddSegment("a");
  SegmentId b = builder.AddSegment("b");
  SiteId s0 = builder.AddSite("s0", a);
  builder.AddSite("s1", b);
  builder.AddRepeater("r", a, b);
  auto topo = builder.Build();
  ASSERT_TRUE(topo.ok());
  NetworkState net(topo.MoveValue());

  std::uint64_t g0 = net.generation();
  net.SetSiteUp(s0, true);        // no-op: already up
  net.SetRepeaterUp(0, true);     // no-op: already up
  net.AllUp();                    // no-op: everything already up
  EXPECT_EQ(net.generation(), g0);

  net.SetSiteUp(s0, false);
  std::uint64_t g1 = net.generation();
  EXPECT_GT(g1, g0);
  net.SetSiteUp(s0, false);  // no-op: already down
  EXPECT_EQ(net.generation(), g1);

  net.AllUp();  // effective: s0 comes back up
  EXPECT_GT(net.generation(), g1);
}

}  // namespace
}  // namespace dynvote
