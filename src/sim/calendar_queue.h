// CalendarQueue: a bucketed event queue (R. Brown's calendar queue) with
// O(1) amortized Schedule/PopNext for the stationary event populations
// the batched multi-object engine produces. Events are plain data — a
// timestamp plus a caller-packed 64-bit payload — so a pop never touches
// a std::function and the queue can be scanned cache-linearly.
//
// Ordering contract (load-bearing for solo/batched bit-identity): events
// pop in ascending (when, seq) order, where seq is the global schedule
// order. Two events with equal timestamps therefore fire in the order
// they were scheduled — exactly the EventQueue tie-break — and since the
// batched engine schedules each object's events in the same relative
// order as a solo run, per-object dispatch order is preserved verbatim.
//
// There is deliberately no Cancel: the one cancellation in the system
// (a pending site failure cancelled at maintenance start) is expressed
// by the caller as a generation counter carried in the payload and
// checked at dispatch, which keeps the queue free of tombstone
// bookkeeping on the hot path.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace dynvote {

/// One scheduled occurrence. `payload` is opaque to the queue.
struct CalendarEvent {
  SimTime when = 0.0;
  std::uint64_t seq = 0;
  std::uint64_t payload = 0;
};

/// Bucketed priority queue over CalendarEvent, deterministic pop order
/// by (when, seq). Not thread-safe; timestamps must be >= 0.
class CalendarQueue {
 public:
  CalendarQueue();

  /// Enqueues an event; assigns the next global sequence number.
  void Schedule(SimTime when, std::uint64_t payload);

  bool Empty() const { return size_ == 0; }
  std::size_t Size() const { return size_; }

  /// Timestamp of the next event. Queue must be non-empty.
  SimTime PeekTime();

  /// Removes and returns the (when, seq)-least event. Queue must be
  /// non-empty.
  CalendarEvent PopNext();

 private:
  /// Index of the bucket holding timestamp `when` at the current width.
  std::size_t BucketOf(SimTime when) const;
  /// Locates the next event; caches (bucket, slot) for PopNext.
  void FindMin();
  /// Rebuilds the calendar with a bucket count sized to `size_` and a
  /// width derived from the current contents (deterministic: depends
  /// only on the stored events, never on wall-clock or randomness).
  void Resize(std::size_t new_buckets);

  std::vector<std::vector<CalendarEvent>> buckets_;
  std::size_t num_buckets_ = 0;  // always a power of two
  double width_ = 1.0;
  /// Cached 1 / width_: the hot path classifies events with a multiply.
  /// Every classification uses the same floor(when * inv_width_)
  /// expression, so insertion and scan can never disagree on a bucket.
  double inv_width_ = 1.0;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  /// Lower bound on every stored event's timestamp; the calendar search
  /// starts from this position.
  SimTime floor_time_ = 0.0;

  // Head-spacing estimate driving the bucket width: EWMA of the time
  // between consecutive pops, and a counter bounding in-place re-bucket
  // frequency. Both are pure functions of the event sequence, keeping
  // the queue deterministic.
  SimTime last_pop_time_ = 0.0;
  double avg_pop_gap_ = 0.0;
  std::size_t pops_since_rewidth_ = 0;

  // Cached location of the minimum, valid between FindMin and the next
  // mutation.
  bool min_valid_ = false;
  std::size_t min_bucket_ = 0;
  std::size_t min_slot_ = 0;
};

}  // namespace dynvote
