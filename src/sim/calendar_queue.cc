#include "sim/calendar_queue.h"

#include <cmath>

#include "util/logging.h"

namespace dynvote {

namespace {

/// Smallest calendar. Below this, bucket management costs more than the
/// linear scans it saves.
constexpr std::size_t kMinBuckets = 8;

/// Width this small would overflow the virtual bucket index for any
/// realistic horizon; treat the event population as degenerate instead.
constexpr double kMinWidth = 1e-9;

/// Bucket width as a multiple of the mean pop gap: a few due events per
/// floor bucket, amortizing the bucket-step overhead without degrading
/// into a linear scan.
constexpr double kWidthGapFactor = 2.0;

}  // namespace

CalendarQueue::CalendarQueue() {
  num_buckets_ = kMinBuckets;
  buckets_.resize(num_buckets_);
}

std::size_t CalendarQueue::BucketOf(SimTime when) const {
  // Virtual (un-wrapped) bucket index; the calendar wraps it modulo the
  // power-of-two bucket count.
  double vb = std::floor(when * inv_width_);
  return static_cast<std::size_t>(static_cast<std::uint64_t>(vb)) &
         (num_buckets_ - 1);
}

void CalendarQueue::Schedule(SimTime when, std::uint64_t payload) {
  DYNVOTE_CHECK_MSG(when >= 0.0 && std::isfinite(when),
                    "calendar event time must be finite and >= 0");
  if (size_ == 0 || when < floor_time_) floor_time_ = when;
  // The cached minimum survives unless the new event precedes it: at an
  // equal timestamp the incumbent's smaller sequence number wins, and
  // push_back never moves events already in place.
  if (min_valid_ && when < buckets_[min_bucket_][min_slot_].when) {
    min_valid_ = false;
  }
  buckets_[BucketOf(when)].push_back(
      CalendarEvent{when, next_seq_++, payload});
  ++size_;
  if (size_ > 2 * num_buckets_) Resize(num_buckets_ * 2);
}

void CalendarQueue::FindMin() {
  DYNVOTE_CHECK_MSG(size_ > 0, "FindMin on an empty calendar queue");
  if (min_valid_) return;

  // Walk one calendar lap starting at the floor's bucket. In lap step k
  // only events whose virtual bucket equals start_vb + k are due; events
  // stored in the same physical bucket for a later lap are skipped. The
  // lap membership test recomputes floor(when * inv_width) — the exact
  // expression BucketOf used at insertion — so an event can never fall
  // between laps through floating-point rounding of a derived limit.
  const double start_vb = std::floor(floor_time_ * inv_width_);
  const std::size_t start_index =
      static_cast<std::size_t>(static_cast<std::uint64_t>(start_vb));
  for (std::size_t k = 0; k < num_buckets_; ++k) {
    const std::size_t b = (start_index + k) & (num_buckets_ - 1);
    const double lap_vb = start_vb + static_cast<double>(k);
    const std::vector<CalendarEvent>& bucket = buckets_[b];
    bool found = false;
    std::size_t best = 0;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const CalendarEvent& e = bucket[i];
      if (std::floor(e.when * inv_width_) > lap_vb) continue;  // a later lap
      if (!found || e.when < bucket[best].when ||
          (e.when == bucket[best].when && e.seq < bucket[best].seq)) {
        best = i;
        found = true;
      }
    }
    if (found) {
      min_bucket_ = b;
      min_slot_ = best;
      min_valid_ = true;
      return;
    }
  }

  // Sparse tail: nothing within one lap of the floor. Direct search for
  // the global (when, seq) minimum, then advance the floor to it so the
  // next lap walk starts in the right year.
  bool found = false;
  for (std::size_t b = 0; b < num_buckets_; ++b) {
    const std::vector<CalendarEvent>& bucket = buckets_[b];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const CalendarEvent& e = bucket[i];
      if (!found || e.when < buckets_[min_bucket_][min_slot_].when ||
          (e.when == buckets_[min_bucket_][min_slot_].when &&
           e.seq < buckets_[min_bucket_][min_slot_].seq)) {
        min_bucket_ = b;
        min_slot_ = i;
        found = true;
      }
    }
  }
  DYNVOTE_CHECK_MSG(found, "calendar queue lost an event");
  floor_time_ = buckets_[min_bucket_][min_slot_].when;
  min_valid_ = true;
}

SimTime CalendarQueue::PeekTime() {
  FindMin();
  return buckets_[min_bucket_][min_slot_].when;
}

CalendarEvent CalendarQueue::PopNext() {
  FindMin();
  std::vector<CalendarEvent>& bucket = buckets_[min_bucket_];
  CalendarEvent out = bucket[min_slot_];
  // Swap-remove: in-bucket order is irrelevant, the minimum is always
  // re-scanned with the (when, seq) tie-break.
  bucket[min_slot_] = bucket.back();
  bucket.pop_back();
  --size_;
  min_valid_ = false;
  floor_time_ = out.when;

  // Track the mean spacing of dequeued events (EWMA, weight 1/8). The
  // bucket width wants to match the spacing *at the head* of the queue,
  // not the global span: with exponentially distributed failure times the
  // span is dominated by a far tail, and span-derived buckets pack
  // hundreds of near-term events into the floor bucket.
  const double gap = out.when - last_pop_time_;
  last_pop_time_ = out.when;
  avg_pop_gap_ += (gap - avg_pop_gap_) * 0.125;
  ++pops_since_rewidth_;

  if (num_buckets_ > kMinBuckets && size_ < num_buckets_ / 2) {
    Resize(num_buckets_ / 2);
  } else if (pops_since_rewidth_ >= num_buckets_ && avg_pop_gap_ > 0.0) {
    // Re-bucket in place when the width has drifted far from the popping
    // rate (the event population's spacing changed, e.g. after the
    // initial schedule ramp). Amortized: at most one O(n) rebuild per
    // num_buckets_ pops. Deterministic: a pure function of the popped
    // event sequence.
    const double target = kWidthGapFactor * avg_pop_gap_;
    if (width_ > 4.0 * target || width_ < 0.25 * target) {
      Resize(num_buckets_);
    }
  }
  return out;
}

void CalendarQueue::Resize(std::size_t new_buckets) {
  std::vector<CalendarEvent> all;
  all.reserve(size_);
  for (std::vector<CalendarEvent>& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  buckets_.resize(new_buckets);
  num_buckets_ = new_buckets;
  min_valid_ = false;
  pops_since_rewidth_ = 0;
  if (all.empty()) return;

  // Width selection. Once events have been popped, match the spacing at
  // the head of the queue (a small multiple of the mean pop gap), so the
  // floor bucket holds a handful of due events regardless of how far the
  // tail stretches. Before the first pop (initial schedule ramp) no gap
  // estimate exists; fall back to the mean spacing the stored events
  // would have if laid out uniformly over their span. Both rules are
  // deterministic — pure functions of the event sequence so far.
  double width;
  if (avg_pop_gap_ > 0.0) {
    width = kWidthGapFactor * avg_pop_gap_;
  } else {
    double lo = all.front().when;
    double hi = all.front().when;
    for (const CalendarEvent& e : all) {
      if (e.when < lo) lo = e.when;
      if (e.when > hi) hi = e.when;
    }
    width = (hi - lo) / static_cast<double>(all.size());
  }
  width_ = width > kMinWidth ? width : 1.0;
  inv_width_ = 1.0 / width_;

  for (const CalendarEvent& e : all) {
    buckets_[BucketOf(e.when)].push_back(e);
  }
}

}  // namespace dynvote
