// A discrete-event calendar: a binary min-heap of (time, sequence) keyed
// events with O(log n) insertion and extraction and O(1) lazy cancellation.
// Ties in time are broken by insertion order, so runs are deterministic.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace dynvote {

/// Opaque handle identifying a scheduled event; used for cancellation.
using EventId = std::uint64_t;

/// Sentinel returned when no event was scheduled.
inline constexpr EventId kInvalidEventId = 0;

/// Priority queue of timed callbacks.
///
/// Not thread-safe: the simulator is single-threaded by design (discrete
/// event simulation has a total order of events).
class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `callback` to fire at absolute time `when`. Returns a handle
  /// that can be passed to Cancel().
  EventId Schedule(SimTime when, Callback callback);

  /// Cancels a scheduled event. Returns true if the event existed and had
  /// not yet fired. Cancellation is lazy: the entry stays in the heap and
  /// is dropped when popped.
  bool Cancel(EventId id);

  /// True iff no live events remain.
  bool Empty() const { return live_.empty(); }

  /// Number of live (scheduled, uncancelled, unfired) events.
  std::size_t Size() const { return live_.size(); }

  /// Time of the earliest live event. Must not be called when Empty().
  SimTime PeekTime();

  /// Pops and runs the earliest live event. Returns its time. Must not be
  /// called when Empty().
  SimTime RunNext();

  /// Removes all events.
  void Clear();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    EventId id;
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Drops cancelled entries from the heap top.
  void SkimCancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // Audited for iteration-order hazards: both sets are membership-only —
  // insert/erase/find/size/clear, never iterated — so their unordered
  // layout cannot leak into event order; dispatch order comes solely
  // from the (time, seq) heap above.
  // dynvote-lint: allow(unordered-container)
  std::unordered_set<EventId> live_;
  // dynvote-lint: allow(unordered-container)
  std::unordered_set<EventId> cancelled_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace dynvote
