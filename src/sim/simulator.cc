#include "sim/simulator.h"

#include <cmath>

#include "obs/binary_trace.h"

#include "util/logging.h"

namespace dynvote {

EventId Simulator::ScheduleIn(SimTime delay, EventQueue::Callback callback) {
  DYNVOTE_CHECK_MSG(delay >= 0.0 && std::isfinite(delay),
                    "event delay must be finite and non-negative");
  return queue_.Schedule(now_ + delay, std::move(callback));
}

EventId Simulator::ScheduleAt(SimTime when, EventQueue::Callback callback) {
  DYNVOTE_CHECK_MSG(when >= now_ && std::isfinite(when),
                    "event time must be finite and not in the past");
  return queue_.Schedule(when, std::move(callback));
}

Status Simulator::RunUntil(SimTime horizon) {
  if (!(horizon >= now_) || !std::isfinite(horizon)) {
    return Status::InvalidArgument("horizon must be finite and >= Now()");
  }
  while (!queue_.Empty() && queue_.PeekTime() <= horizon) {
    now_ = queue_.PeekTime();
    if (obs_ != nullptr) EmitDispatch();
    queue_.RunNext();
    ++events_run_;
  }
  now_ = horizon;
  return Status::OK();
}

bool Simulator::Step() {
  if (queue_.Empty()) return false;
  now_ = queue_.PeekTime();
  if (obs_ != nullptr) EmitDispatch();
  queue_.RunNext();
  ++events_run_;
  return true;
}

void Simulator::EmitDispatch() {
  obs_->now = now_;
  obs_->seq = events_run_;
  if (obs_->sink != nullptr) {
    TraceSink* sink = obs_->sink;
    // Devirtualized fast path, as in the protocol emitters.
    if (dispatch_label_.BinaryHit(sink)) {
      static_cast<BinaryTraceSink*>(sink)->EncodeSim(
          now_, events_run_, obs_->replication, dispatch_label_.id);
    } else {
      sink->WriteSim(now_, events_run_, obs_->replication, "dispatch",
                     dispatch_label_.Resolve(sink, "dispatch"));
    }
  }
  if (obs_->metrics != nullptr) {
    MetricsShard* shard = obs_->metrics;
    if (shard != cell_shard_ || cell_epoch_ != shard->cell_epoch()) {
      cell_shard_ = shard;
      cell_epoch_ = shard->cell_epoch();
      sim_events_cell_ = shard->CounterCell("sim_events");
    }
    ++*sim_events_cell_;
  }
}

}  // namespace dynvote
