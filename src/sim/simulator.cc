#include "sim/simulator.h"

#include <cmath>

#include "util/logging.h"

namespace dynvote {

EventId Simulator::ScheduleIn(SimTime delay, EventQueue::Callback callback) {
  DYNVOTE_CHECK_MSG(delay >= 0.0 && std::isfinite(delay),
                    "event delay must be finite and non-negative");
  return queue_.Schedule(now_ + delay, std::move(callback));
}

EventId Simulator::ScheduleAt(SimTime when, EventQueue::Callback callback) {
  DYNVOTE_CHECK_MSG(when >= now_ && std::isfinite(when),
                    "event time must be finite and not in the past");
  return queue_.Schedule(when, std::move(callback));
}

Status Simulator::RunUntil(SimTime horizon) {
  if (!(horizon >= now_) || !std::isfinite(horizon)) {
    return Status::InvalidArgument("horizon must be finite and >= Now()");
  }
  while (!queue_.Empty() && queue_.PeekTime() <= horizon) {
    now_ = queue_.PeekTime();
    if (obs_ != nullptr) EmitDispatch();
    queue_.RunNext();
    ++events_run_;
  }
  now_ = horizon;
  return Status::OK();
}

bool Simulator::Step() {
  if (queue_.Empty()) return false;
  now_ = queue_.PeekTime();
  if (obs_ != nullptr) EmitDispatch();
  queue_.RunNext();
  ++events_run_;
  return true;
}

void Simulator::EmitDispatch() {
  obs_->now = now_;
  obs_->seq = events_run_;
  if (obs_->sink != nullptr) {
    TraceEvent event;
    event.type = TraceEventType::kSim;
    event.t = now_;
    event.replication = obs_->replication;
    event.seq = events_run_;
    event.op = "dispatch";
    obs_->sink->Write(event);
  }
  if (obs_->metrics != nullptr) obs_->metrics->Add("sim_events");
}

}  // namespace dynvote
