// Simulation time. The paper quotes all of Table 1 in mixed units (days,
// hours, minutes); we standardise on *days* as the simulation time unit and
// provide explicit conversions so unit slips are impossible to write
// silently.

#pragma once

namespace dynvote {

/// Simulated time in days since the start of the run.
using SimTime = double;

/// Unit conversions into days.
constexpr SimTime Days(double d) { return d; }
constexpr SimTime Hours(double h) { return h / 24.0; }
constexpr SimTime Minutes(double m) { return m / (24.0 * 60.0); }
constexpr SimTime Years(double y) { return y * 365.0; }

/// Conversions out of days.
constexpr double ToHours(SimTime t) { return t * 24.0; }
constexpr double ToMinutes(SimTime t) { return t * 24.0 * 60.0; }
constexpr double ToYears(SimTime t) { return t / 365.0; }

}  // namespace dynvote
