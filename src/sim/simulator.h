// The discrete-event simulator: a clock plus an event calendar. Processes
// (failure generators, maintenance schedules, access workloads) schedule
// callbacks; RunUntil() advances the clock through them in time order.

#pragma once

#include <cstdint>

#include "obs/context.h"
#include "sim/event_queue.h"
#include "sim/time.h"
#include "util/status.h"

namespace dynvote {

/// Single-threaded discrete-event simulator.
///
/// Invariants: the clock never moves backwards; callbacks observe
/// `Now() == when` for their scheduled time; scheduling in the past fails.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Number of events executed so far.
  std::uint64_t EventsRun() const { return events_run_; }

  /// Schedules `callback` to run `delay` days from now. `delay` must be
  /// >= 0 and finite; a zero delay runs after all earlier-scheduled events
  /// at the current instant (FIFO within a timestamp).
  EventId ScheduleIn(SimTime delay, EventQueue::Callback callback);

  /// Schedules `callback` at absolute time `when` (>= Now()).
  EventId ScheduleAt(SimTime when, EventQueue::Callback callback);

  /// Cancels a scheduled event; see EventQueue::Cancel.
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  /// Runs events in time order until the calendar is empty or the next
  /// event is later than `horizon`. The clock finishes at
  /// min(horizon, time of last executed event ... horizon): it is set to
  /// `horizon` exactly, so time-weighted statistics can close their last
  /// interval.
  Status RunUntil(SimTime horizon);

  /// Runs a single event if one exists. Returns true if an event ran.
  bool Step();

  /// Discards all pending events without advancing the clock.
  void ClearPending() { queue_.Clear(); }

  /// True iff no events are pending.
  bool Idle() const { return queue_.Empty(); }

  /// Attaches an observability context. Before dispatching each event the
  /// simulator stamps `obs->now`/`obs->seq` (so downstream emitters —
  /// NetworkState, protocols, trackers — timestamp without knowing the
  /// clock) and emits one kSim event. Not owned; null disables this.
  void set_obs(ObsContext* obs) { obs_ = obs; }

 private:
  /// Stamps the context and emits the dispatch event; called only when
  /// obs_ is attached.
  void EmitDispatch();

  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t events_run_ = 0;
  ObsContext* obs_ = nullptr;
  TraceLabelCache dispatch_label_;  // the sink's token for "dispatch"
  /// Cached "sim_events" counter cell — one map walk per (shard, epoch)
  /// instead of one per dispatched event.
  MetricsShard* cell_shard_ = nullptr;
  std::uint64_t cell_epoch_ = 0;
  std::uint64_t* sim_events_cell_ = nullptr;
};

}  // namespace dynvote
