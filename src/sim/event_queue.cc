#include "sim/event_queue.h"

#include "util/logging.h"

namespace dynvote {

EventId EventQueue::Schedule(SimTime when, Callback callback) {
  DYNVOTE_CHECK_MSG(callback != nullptr, "scheduled a null callback");
  EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id, std::move(callback)});
  live_.insert(id);
  return id;
}

bool EventQueue::Cancel(EventId id) {
  // Only ids that are still live (scheduled, unfired, uncancelled) may be
  // cancelled; anything else — never issued, already fired, already
  // cancelled — is a no-op.
  if (live_.erase(id) == 0) return false;
  cancelled_.insert(id);
  return true;
}

void EventQueue::SkimCancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

SimTime EventQueue::PeekTime() {
  SkimCancelled();
  DYNVOTE_CHECK_MSG(!heap_.empty(), "PeekTime on empty queue");
  return heap_.top().when;
}

SimTime EventQueue::RunNext() {
  SkimCancelled();
  DYNVOTE_CHECK_MSG(!heap_.empty(), "RunNext on empty queue");
  // priority_queue::top() is const; moving the callback out requires a
  // const_cast, which is safe because we pop immediately afterwards.
  Entry& top = const_cast<Entry&>(heap_.top());
  SimTime when = top.when;
  EventId id = top.id;
  Callback cb = std::move(top.callback);
  heap_.pop();
  live_.erase(id);
  cb(when);
  return when;
}

void EventQueue::Clear() {
  while (!heap_.empty()) heap_.pop();
  cancelled_.clear();
  live_.clear();
}

}  // namespace dynvote
