#include "check/visited_set.h"

namespace dynvote {
namespace check {

std::uint64_t ShardedVisitedSet::HashSignature(const std::string& signature) {
  std::uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  for (unsigned char c : signature) {
    hash ^= c;
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

std::uint64_t ShardedVisitedSet::InsertMin(const std::string& signature,
                                           std::uint64_t token) {
  const std::uint64_t hash = HashSignature(signature);
  Shard& shard = ShardFor(hash);
  MutexLock lock(shard.mutex);
  auto [it, inserted] = shard.min_token.try_emplace(signature, token);
  if (inserted) {
    shard.digest += hash;  // unsigned: wraps mod 2^64 by definition
  } else if (token < it->second) {
    it->second = token;
  }
  return it->second;
}

std::uint64_t ShardedVisitedSet::MinToken(const std::string& signature) const {
  const Shard& shard = ShardFor(HashSignature(signature));
  MutexLock lock(shard.mutex);
  auto it = shard.min_token.find(signature);
  return it == shard.min_token.end() ? kNotVisited : it->second;
}

std::size_t ShardedVisitedSet::Size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    total += shard.min_token.size();
  }
  return total;
}

std::uint64_t ShardedVisitedSet::Digest() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    total += shard.digest;
  }
  return total;
}

}  // namespace check
}  // namespace dynvote
