// The action alphabet the model checker explores: every fault-injection
// and data-plane move a schedule can make against a KvCluster. Actions
// serialize to stable string tokens ("toggle_site:2", "write", ...) so a
// schedule round-trips through the dynvote-counterexample-v1 JSON schema.

#pragma once

#include <string>
#include <vector>

#include "net/topology.h"
#include "util/result.h"

namespace dynvote {
namespace check {

/// One move of a model-checking schedule.
enum class ActionKind {
  /// Crash the target site if up, restart it if down (fail-stop, as the
  /// paper assumes; a gateway site toggle doubles as a partition flip).
  kToggleSite,
  /// Fail the target repeater if up, repair it if down (partition flip).
  kToggleRepeater,
  /// Attempt one write at the first live site the protocol grants.
  kWrite,
  /// Attempt a read at every live site and check it against the committed
  /// history.
  kReadCheck,
  /// Run the recovery procedure at every live site.
  kRecoverAll,
};

struct CheckAction {
  ActionKind kind = ActionKind::kWrite;
  /// Site id for kToggleSite, repeater id for kToggleRepeater, unused
  /// otherwise.
  int target = -1;

  friend bool operator==(const CheckAction& a,
                         const CheckAction& b) = default;

  /// Stable token: "toggle_site:N", "toggle_repeater:N", "write",
  /// "read_check", "recover_all".
  std::string Token() const;
};

/// Inverse of CheckAction::Token.
Result<CheckAction> ParseActionToken(const std::string& token);

/// Every action applicable to `topology`: one toggle per site, one per
/// repeater, plus the three data-plane moves, in that order.
std::vector<CheckAction> ActionAlphabet(const Topology& topology);

/// Position of a toggle action in the alphabet's toggle prefix (site
/// toggles 0..S-1, repeater toggles S..S+R-1), or -1 for the data-plane
/// actions. This is the total order partial-order reduction canonicalizes
/// adjacent commuting toggles into (ascending runs only).
int ToggleOrderIndex(const CheckAction& action, int num_sites);

/// Space-separated action tokens.
std::string ScheduleToString(const std::vector<CheckAction>& schedule);

/// Inverse of ScheduleToString. An empty string is an empty schedule.
Result<std::vector<CheckAction>> ParseSchedule(const std::string& text);

}  // namespace check
}  // namespace dynvote
