#include "check/topologies.h"

namespace dynvote {
namespace check {
namespace {

Result<std::shared_ptr<const Topology>> Single(int n) {
  auto builder = Topology::Builder();
  SegmentId seg = builder.AddSegment("lan");
  for (int i = 0; i < n; ++i) {
    builder.AddSite("s" + std::to_string(i), seg);
  }
  auto topo = builder.Build();
  if (!topo.ok()) return topo.status();
  return std::shared_ptr<const Topology>(topo.MoveValue());
}

Result<std::shared_ptr<const Topology>> Pairs() {
  auto builder = Topology::Builder();
  SegmentId left = builder.AddSegment("left");
  SegmentId right = builder.AddSegment("right");
  builder.AddSite("L0", left);
  builder.AddSite("L1", left);
  builder.AddSite("R0", right);
  builder.AddSite("R1", right);
  builder.AddRepeater("bridge", left, right);
  auto topo = builder.Build();
  if (!topo.ok()) return topo.status();
  return std::shared_ptr<const Topology>(topo.MoveValue());
}

Result<std::shared_ptr<const Topology>> Section3() {
  auto builder = Topology::Builder();
  SegmentId alpha = builder.AddSegment("alpha");
  SegmentId gamma = builder.AddSegment("gamma");
  SegmentId delta = builder.AddSegment("delta");
  builder.AddSite("A", alpha);
  builder.AddSite("B", alpha);
  builder.AddSite("C", gamma);
  builder.AddSite("D", delta);
  builder.AddRepeater("X", alpha, gamma);
  builder.AddRepeater("Y", alpha, delta);
  auto topo = builder.Build();
  if (!topo.ok()) return topo.status();
  return std::shared_ptr<const Topology>(topo.MoveValue());
}

}  // namespace

Result<std::shared_ptr<const Topology>> MakeCheckTopology(
    const std::string& name) {
  if (name == "pairs") return Pairs();
  if (name == "section3") return Section3();
  if (name.rfind("single", 0) == 0) {
    const std::string digits = name.substr(6);
    try {
      std::size_t used = 0;
      int n = std::stoi(digits, &used);
      if (used == digits.size() && n >= 2 && n <= 8) return Single(n);
    } catch (const std::exception&) {
    }
  }
  return Status::InvalidArgument(
      "unknown check topology '" + name +
      "' (expected singleN with 2<=N<=8, pairs, or section3)");
}

const std::vector<std::string>& CheckTopologyNames() {
  static const std::vector<std::string> names = {
      "single3", "single4", "single5", "pairs", "section3"};
  return names;
}

}  // namespace check
}  // namespace dynvote
