#include "check/counterexample.h"

#include <map>

#include "check/topologies.h"
#include "obs/trace_reader.h"

namespace dynvote {
namespace check {
namespace {

/// Minimal JSON string escaping for the fields we emit (details carry
/// quotes from SiteSet::ToString and Status messages).
void AppendEscaped(const std::string& in, std::string* out) {
  for (char c : in) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

}  // namespace

std::string CounterExampleToJson(const CounterExample& ce) {
  std::string out = "{\n";
  auto field = [&out](const char* key, const std::string& value,
                      bool quoted) {
    out += "  \"";
    out += key;
    out += "\": ";
    if (quoted) out.push_back('"');
    AppendEscaped(value, &out);
    if (quoted) out.push_back('"');
    out += ",\n";
  };
  field("schema", kCounterExampleSchema, true);
  field("protocol", ce.protocol, true);
  field("topology", ce.topology, true);
  std::string placement = "[";
  for (SiteId s : ce.placement) {
    if (placement.size() > 1) placement.push_back(',');
    placement += std::to_string(s);
  }
  placement.push_back(']');
  field("placement", placement, false);
  field("strict", ce.policy.strict ? "true" : "false", false);
  field("max_granted_groups",
        std::to_string(ce.policy.max_granted_groups), false);
  field("oracle", DifferentialOracleName(ce.policy.oracle), true);
  field("invariant", ce.violation.invariant, true);
  field("step", std::to_string(ce.violation.step), false);
  field("detail", ce.violation.detail, true);
  field("schedule", ScheduleToString(ce.schedule), true);
  out.pop_back();  // trailing newline
  out.pop_back();  // trailing comma
  out += "\n}\n";
  return out;
}

Result<CounterExample> ParseCounterExampleJson(const std::string& text) {
  // The schema is a flat object; collapse the pretty-printing into one
  // line and reuse the trace reader's flat-JSON parser.
  std::string line = text;
  for (char& c : line) {
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  // The flat-line parser tolerates a missing closing brace (trace tails
  // are handled elsewhere); a counterexample file is a single complete
  // object, so a truncated one must be rejected here.
  const std::size_t first = line.find_first_not_of(' ');
  const std::size_t last = line.find_last_not_of(' ');
  if (first == std::string::npos || line[first] != '{' || line[last] != '}') {
    return Status::InvalidArgument(
        "counterexample is not a complete JSON object (truncated file?)");
  }
  std::map<std::string, std::string> fields;
  if (!ParseTraceLine(line, &fields)) {
    return Status::InvalidArgument("counterexample is not a flat JSON object");
  }
  auto require = [&fields](const char* key) -> Result<std::string> {
    auto it = fields.find(key);
    if (it == fields.end()) {
      return Status::InvalidArgument(std::string("counterexample missing '") +
                                     key + "'");
    }
    return it->second;
  };

  DYNVOTE_ASSIGN_OR_RETURN(std::string schema, require("schema"));
  if (schema != kCounterExampleSchema) {
    return Status::InvalidArgument("unsupported counterexample schema '" +
                                   schema + "' (expected " +
                                   kCounterExampleSchema + ")");
  }

  CounterExample ce;
  DYNVOTE_ASSIGN_OR_RETURN(ce.protocol, require("protocol"));
  DYNVOTE_ASSIGN_OR_RETURN(ce.topology, require("topology"));

  DYNVOTE_ASSIGN_OR_RETURN(std::string placement, require("placement"));
  if (placement.size() < 2 || placement.front() != '[' ||
      placement.back() != ']') {
    return Status::InvalidArgument("placement must be a numeric array");
  }
  std::string body = placement.substr(1, placement.size() - 2);
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    try {
      // SiteSet::Add silently ignores out-of-range ids; a record naming
      // site 99 is corrupt, not a record with fewer copies.
      int site = std::stoi(body.substr(pos, comma - pos));
      if (site < 0 || site >= kMaxSites) {
        return Status::InvalidArgument("placement site out of range in " +
                                       placement);
      }
      ce.placement.Add(site);
    } catch (const std::exception&) {
      return Status::InvalidArgument("bad placement entry in " + placement);
    }
    pos = comma + 1;
  }
  if (ce.placement.Empty()) {
    return Status::InvalidArgument("placement must not be empty");
  }

  DYNVOTE_ASSIGN_OR_RETURN(std::string strict, require("strict"));
  if (strict != "true" && strict != "false") {
    return Status::InvalidArgument("strict must be true or false");
  }
  ce.policy.strict = strict == "true";
  DYNVOTE_ASSIGN_OR_RETURN(std::string threshold,
                           require("max_granted_groups"));
  try {
    ce.policy.max_granted_groups = std::stoi(threshold);
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad max_granted_groups '" + threshold +
                                   "'");
  }
  DYNVOTE_ASSIGN_OR_RETURN(std::string oracle, require("oracle"));
  DYNVOTE_ASSIGN_OR_RETURN(ce.policy.oracle, ParseDifferentialOracle(oracle));

  DYNVOTE_ASSIGN_OR_RETURN(ce.violation.invariant, require("invariant"));
  DYNVOTE_ASSIGN_OR_RETURN(std::string step, require("step"));
  try {
    ce.violation.step = std::stoi(step);
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad step '" + step + "'");
  }
  if (auto it = fields.find("detail"); it != fields.end()) {
    ce.violation.detail = it->second;
  }
  DYNVOTE_ASSIGN_OR_RETURN(std::string schedule, require("schedule"));
  DYNVOTE_ASSIGN_OR_RETURN(ce.schedule, ParseSchedule(schedule));
  if (ce.schedule.empty()) {
    return Status::InvalidArgument("schedule must not be empty");
  }
  // The violation is claimed at a schedule step; a step outside the
  // recorded schedule can never replay and marks a truncated or
  // hand-edited file.
  if (ce.violation.step < 0 ||
      static_cast<std::size_t>(ce.violation.step) >= ce.schedule.size()) {
    return Status::InvalidArgument(
        "step " + std::to_string(ce.violation.step) +
        " is outside the recorded schedule (" +
        std::to_string(ce.schedule.size()) + " action(s))");
  }
  return ce;
}

Status ReplayCounterExample(const CounterExample& ce) {
  auto topology = MakeCheckTopology(ce.topology);
  if (!topology.ok()) return topology.status();
  auto harness =
      CheckHarness::Make(*topology, ce.placement, ce.protocol, ce.policy);
  if (!harness.ok()) return harness.status();
  for (std::size_t i = 0; i < ce.schedule.size(); ++i) {
    auto violation = (*harness)->Apply(ce.schedule[i]);
    if (!violation.has_value()) continue;
    if (violation->invariant != ce.violation.invariant) {
      return Status::Internal(
          "replay tripped '" + violation->invariant + "' at step " +
          std::to_string(violation->step) + ", expected '" +
          ce.violation.invariant + "': " + violation->detail);
    }
    if (violation->step != ce.violation.step) {
      return Status::Internal(
          "replay tripped '" + violation->invariant + "' at step " +
          std::to_string(violation->step) + ", recorded step is " +
          std::to_string(ce.violation.step));
    }
    return Status::OK();
  }
  return Status::Internal("replay completed all " +
                          std::to_string(ce.schedule.size()) +
                          " actions without tripping '" +
                          ce.violation.invariant + "'");
}

}  // namespace check
}  // namespace dynvote
