#include "check/checker.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "check/shrink.h"
#include "check/topologies.h"
#include "check/visited_set.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dynvote {
namespace check {
namespace {

/// Shared context of one RunCheck invocation.
struct Exploration {
  CheckOptions options;
  std::shared_ptr<const Topology> topology;
  SiteSet placement;
  std::vector<CheckAction> alphabet;
  /// Alphabet prefix that is toggles (sites then repeaters) — the total
  /// order POR canonicalizes adjacent commuting toggles into.
  std::size_t num_toggles = 0;
  /// POR requested, exhaustive mode, and the harness proved toggles
  /// commute (CheckHarness::TogglesCommute).
  bool por_active = false;
  /// Null when jobs == 1: the fan-out runs inline on the caller thread.
  /// Either way the algorithm — work-list order, claim tokens, merge —
  /// is identical, which is what makes reports bit-identical per jobs.
  ThreadPool* pool = nullptr;
  CheckReport report;
};

Result<std::unique_ptr<CheckHarness>> FreshHarness(const Exploration& ex) {
  return CheckHarness::Make(ex.topology, ex.placement, ex.options.protocol,
                            ex.options.policy);
}

/// Replays `schedule` on a fresh harness; returns the violation it trips,
/// if any, and hands the harness back for signature extraction.
Result<std::optional<Violation>> Replay(
    const Exploration& ex, const std::vector<CheckAction>& schedule,
    std::unique_ptr<CheckHarness>* harness_out) {
  DYNVOTE_ASSIGN_OR_RETURN(std::unique_ptr<CheckHarness> harness,
                           FreshHarness(ex));
  std::optional<Violation> violation;
  for (const CheckAction& action : schedule) {
    violation = harness->Apply(action);
    if (violation.has_value()) break;
  }
  *harness_out = std::move(harness);
  return violation;
}

/// Shrinks a failing schedule to 1-minimality (preserving the tripped
/// invariant), re-runs it to refresh step/detail, and packages the
/// counterexample. Sequential by design: shrink candidates depend on the
/// previous candidate's outcome.
Result<CounterExample> BuildCounterExample(const Exploration& ex,
                                           std::vector<CheckAction> schedule,
                                           const Violation& violation) {
  if (ex.options.shrink) {
    const std::string invariant = violation.invariant;
    schedule = ShrinkSchedule(
        std::move(schedule),
        [&ex, &invariant](const std::vector<CheckAction>& candidate) {
          std::unique_ptr<CheckHarness> harness;
          auto replayed = Replay(ex, candidate, &harness);
          return replayed.ok() && replayed->has_value() &&
                 (*replayed)->invariant == invariant;
        });
  }
  // Re-run the final schedule so step/detail match it exactly, and drop
  // any trailing actions past the violation.
  std::unique_ptr<CheckHarness> harness;
  DYNVOTE_ASSIGN_OR_RETURN(std::optional<Violation> final_violation,
                           Replay(ex, schedule, &harness));
  if (!final_violation.has_value()) {
    return Status::Internal("shrunk schedule no longer fails: " +
                            ScheduleToString(schedule));
  }
  schedule.resize(static_cast<std::size_t>(final_violation->step) + 1);

  CounterExample ce;
  ce.protocol = ex.options.protocol;
  ce.topology = ex.options.topology;
  ce.placement = ex.placement;
  ce.policy = ex.options.policy;
  ce.schedule = std::move(schedule);
  ce.violation = *final_violation;
  return ce;
}

/// sum over d = 1..depth of |alphabet|^d, saturating at uint64 max.
std::uint64_t UnprunedSequences(std::size_t alphabet, int depth) {
  const std::uint64_t kMax = ~std::uint64_t{0};
  std::uint64_t total = 0;
  std::uint64_t layer = 1;
  for (int d = 0; d < depth; ++d) {
    if (layer > kMax / alphabet) return kMax;
    layer *= alphabet;
    if (total > kMax - layer) return kMax;
    total += layer;
  }
  return total;
}

/// Runs body(i) for every i in [0, n): inline without a pool, otherwise
/// fanned out in contiguous chunks over the workers. Bodies must be
/// independent and write only their own pre-assigned slot — determinism
/// never depends on completion order.
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& body) {
  if (pool == nullptr || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // A few chunks per worker so a slow chunk (deep replays) does not
  // leave the rest of the pool idle at the level barrier.
  const std::size_t target =
      static_cast<std::size_t>(pool->num_threads()) * 4;
  const std::size_t chunk = std::max<std::size_t>(1, (n + target - 1) / target);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    pool->Submit([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  pool->Wait();
}

/// One (prefix, action) expansion of the current BFS level: the work-list
/// entry built deterministically up front, the per-worker replay results
/// filled in phase A, both consumed by the sequential phase-B merge.
struct Expansion {
  std::vector<CheckAction> schedule;  // prefix + appended action
  /// ToggleOrderIndex of the appended action (-1 for data-plane moves);
  /// carried into the next frontier for the POR skip decision.
  int last_toggle = -1;
  /// Deterministic claim token: the global BFS expansion index. The
  /// visited set keeps the minimum token per signature, so the merge can
  /// tell "first schedule to reach this state in BFS order" apart from
  /// "lost the race to an earlier-ordered expansion".
  std::uint64_t token = 0;

  // Phase-A results.
  Status status;  // harness construction / replay configuration errors
  std::optional<Violation> violation;
  std::string signature;
  bool canonical = false;
  std::uint64_t commits = 0;
  std::uint64_t reads = 0;
};

/// One frontier entry: a representative schedule for a distinct reached
/// state, plus the toggle order of its final action.
struct FrontierEntry {
  std::vector<CheckAction> schedule;
  int last_toggle = -1;
};

Status RunExhaustive(Exploration* ex) {
  ex->report.unpruned_sequences =
      UnprunedSequences(ex->alphabet.size(), ex->options.depth);

  // Level-synchronous BFS. The harness has no snapshot, so each expansion
  // replays its prefix from the initial state; the frontier holds one
  // representative schedule per distinct reached state. Claim tokens grow
  // monotonically across levels, so a state first reached at an earlier
  // level always outranks (is smaller than) every current-level claim.
  ShardedVisitedSet visited;
  bool all_canonical = true;
  std::uint64_t next_token = 1;

  const bool memoize = ex->options.memoize;
  auto finish = [ex, &visited, &all_canonical, memoize] {
    ex->report.memoized = memoize && all_canonical;
    ex->report.visited_digest = memoize ? visited.Digest() : 0;
  };

  std::vector<FrontierEntry> frontier;
  {
    std::unique_ptr<CheckHarness> harness;
    DYNVOTE_ASSIGN_OR_RETURN(std::optional<Violation> violation,
                             Replay(*ex, {}, &harness));
    (void)violation;  // empty schedule cannot violate
    std::string signature;
    if (harness->AppendSignature(&signature)) {
      visited.InsertMin(signature, 0);
    } else {
      all_canonical = false;
    }
    frontier.push_back({{}, -1});
    ex->report.states_visited = 1;
  }

  for (int d = 0; d < ex->options.depth && !frontier.empty(); ++d) {
    // The level work list, in the exact order a sequential BFS would
    // expand (frontier order x alphabet order), minus the interleavings
    // POR canonicalizes away: appending toggle a after toggle b with
    // order(a) < order(b) is skipped, because a's and b's effects
    // commute and the ascending twin ...a,b reaches the same state (the
    // intermediate states are themselves explored as shorter prefixes).
    std::vector<Expansion> slots;
    slots.reserve(frontier.size() * ex->alphabet.size());
    for (const FrontierEntry& entry : frontier) {
      for (std::size_t ai = 0; ai < ex->alphabet.size(); ++ai) {
        const int toggle =
            ai < ex->num_toggles ? static_cast<int>(ai) : -1;
        if (ex->por_active && toggle >= 0 && entry.last_toggle > toggle) {
          continue;
        }
        Expansion e;
        e.schedule = entry.schedule;
        e.schedule.push_back(ex->alphabet[ai]);
        e.last_toggle = toggle;
        e.token = next_token++;
        slots.push_back(std::move(e));
      }
    }

    // Phase A: replay every expansion. Workers fill disjoint slots and
    // publish canonical signatures into the sharded visited set under
    // per-shard locks; min-combine makes the set's final contents
    // independent of the interleaving.
    ParallelFor(ex->pool, slots.size(), [ex, &slots,
                                         &visited](std::size_t i) {
      Expansion& e = slots[i];
      std::unique_ptr<CheckHarness> harness;
      auto replayed = Replay(*ex, e.schedule, &harness);
      if (!replayed.ok()) {
        e.status = replayed.status();
        return;
      }
      e.violation = *replayed;
      e.commits = harness->commits();
      e.reads = harness->reads_checked();
      if (e.violation.has_value()) return;
      e.canonical = harness->AppendSignature(&e.signature);
      if (ex->options.memoize && e.canonical) {
        visited.InsertMin(e.signature, e.token);
      }
    });

    // Phase B: merge in claim-token (= sequential BFS) order. This is
    // the same discipline MetricsRegistry uses: workers fill
    // pre-assigned slots, one thread folds them in a fixed order, so
    // verdicts, counts and the first counterexample are bit-identical
    // for any job count.
    std::vector<FrontierEntry> next;
    for (Expansion& e : slots) {
      DYNVOTE_RETURN_NOT_OK(e.status);
      ++ex->report.transitions;
      ex->report.commits += e.commits;
      ex->report.reads_checked += e.reads;
      if (e.violation.has_value()) {
        DYNVOTE_ASSIGN_OR_RETURN(
            ex->report.counterexample,
            BuildCounterExample(*ex, std::move(e.schedule), *e.violation));
        finish();
        return Status::OK();
      }
      if (!e.canonical) all_canonical = false;
      if (ex->options.memoize && e.canonical &&
          visited.MinToken(e.signature) != e.token) {
        // An expansion earlier in BFS order (previous level, or this
        // level with a smaller token) already claimed this state.
        continue;
      }
      ++ex->report.states_visited;
      if (d + 1 < ex->options.depth) {
        next.push_back({std::move(e.schedule), e.last_toggle});
      }
    }
    frontier = std::move(next);
  }
  finish();
  return Status::OK();
}

/// One swarm schedule's pre-assigned result slot.
struct SwarmSlot {
  std::vector<CheckAction> schedule;
  std::uint64_t transitions = 0;
  std::uint64_t commits = 0;
  std::uint64_t reads = 0;
  std::optional<Violation> violation;
  Status status;
};

Status RunSwarm(Exploration* ex) {
  const int n = ex->options.swarm_schedules;
  std::vector<SwarmSlot> slots(static_cast<std::size_t>(std::max(n, 0)));

  // Each schedule gets an independent stream derived from (seed, k), so
  // any single schedule can be re-derived in isolation — and run on any
  // worker without coordination.
  ParallelFor(ex->pool, slots.size(), [ex, &slots](std::size_t k) {
    SwarmSlot& slot = slots[k];
    Rng rng(SplitMix64(ex->options.seed + static_cast<std::uint64_t>(k))
                .Next());
    auto harness = FreshHarness(*ex);
    if (!harness.ok()) {
      slot.status = harness.status();
      return;
    }
    slot.schedule.reserve(static_cast<std::size_t>(ex->options.swarm_depth));
    for (int step = 0; step < ex->options.swarm_depth; ++step) {
      const CheckAction& action =
          ex->alphabet[rng.NextBounded(ex->alphabet.size())];
      slot.schedule.push_back(action);
      ++slot.transitions;
      slot.violation = (*harness)->Apply(action);
      if (slot.violation.has_value()) break;
    }
    slot.commits = (*harness)->commits();
    slot.reads = (*harness)->reads_checked();
  });

  // Deterministic merge in schedule order: the first violating schedule
  // (by index, not by completion time) becomes the counterexample, and
  // later slots' work is discarded exactly as a sequential loop would
  // never have run them.
  for (SwarmSlot& slot : slots) {
    DYNVOTE_RETURN_NOT_OK(slot.status);
    ex->report.transitions += slot.transitions;
    ++ex->report.schedules_run;
    ex->report.commits += slot.commits;
    ex->report.reads_checked += slot.reads;
    if (slot.violation.has_value()) {
      DYNVOTE_ASSIGN_OR_RETURN(
          ex->report.counterexample,
          BuildCounterExample(*ex, std::move(slot.schedule),
                              *slot.violation));
      return Status::OK();
    }
  }
  return Status::OK();
}

}  // namespace

Result<CheckReport> RunCheck(const CheckOptions& options) {
  Exploration ex;
  ex.options = options;
  DYNVOTE_ASSIGN_OR_RETURN(ex.topology, MakeCheckTopology(options.topology));
  ex.placement =
      options.placement.Empty() ? ex.topology->AllSites() : options.placement;
  ex.alphabet = ActionAlphabet(*ex.topology);
  ex.num_toggles = static_cast<std::size_t>(ex.topology->num_sites() +
                                            ex.topology->num_repeaters());
  if (options.depth < 1 && options.mode == CheckMode::kExhaustive) {
    return Status::InvalidArgument("depth must be at least 1");
  }
  if (options.jobs < 0) {
    return Status::InvalidArgument("jobs must be >= 0 (0 = all cores)");
  }

  // Surface configuration errors (unknown protocol, oracle mismatch)
  // before exploring — and ask the probe whether toggles commute, which
  // gates partial-order reduction.
  DYNVOTE_ASSIGN_OR_RETURN(std::unique_ptr<CheckHarness> probe,
                           FreshHarness(ex));
  ex.por_active = options.por && options.mode == CheckMode::kExhaustive &&
                  probe->TogglesCommute();
  ex.report.por_active = ex.por_active;
  probe.reset();

  const int jobs =
      options.jobs == 0 ? ThreadPool::DefaultThreads() : options.jobs;
  std::unique_ptr<ThreadPool> pool;
  if (jobs > 1) {
    pool = std::make_unique<ThreadPool>(jobs);
    ex.pool = pool.get();
  }

  Status status = options.mode == CheckMode::kExhaustive ? RunExhaustive(&ex)
                                                         : RunSwarm(&ex);
  DYNVOTE_RETURN_NOT_OK(status);
  return std::move(ex.report);
}

}  // namespace check
}  // namespace dynvote
