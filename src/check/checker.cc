#include "check/checker.h"

#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "check/shrink.h"
#include "check/topologies.h"
#include "util/rng.h"

namespace dynvote {
namespace check {
namespace {

/// Shared context of one RunCheck invocation.
struct Exploration {
  CheckOptions options;
  std::shared_ptr<const Topology> topology;
  SiteSet placement;
  std::vector<CheckAction> alphabet;
  CheckReport report;
};

Result<std::unique_ptr<CheckHarness>> FreshHarness(const Exploration& ex) {
  return CheckHarness::Make(ex.topology, ex.placement, ex.options.protocol,
                            ex.options.policy);
}

/// Replays `schedule` on a fresh harness; returns the violation it trips,
/// if any, and hands the harness back for signature extraction.
Result<std::optional<Violation>> Replay(
    const Exploration& ex, const std::vector<CheckAction>& schedule,
    std::unique_ptr<CheckHarness>* harness_out) {
  DYNVOTE_ASSIGN_OR_RETURN(std::unique_ptr<CheckHarness> harness,
                           FreshHarness(ex));
  std::optional<Violation> violation;
  for (const CheckAction& action : schedule) {
    violation = harness->Apply(action);
    if (violation.has_value()) break;
  }
  *harness_out = std::move(harness);
  return violation;
}

/// Shrinks a failing schedule to 1-minimality (preserving the tripped
/// invariant), re-runs it to refresh step/detail, and packages the
/// counterexample.
Result<CounterExample> BuildCounterExample(const Exploration& ex,
                                           std::vector<CheckAction> schedule,
                                           const Violation& violation) {
  if (ex.options.shrink) {
    const std::string invariant = violation.invariant;
    schedule = ShrinkSchedule(
        std::move(schedule),
        [&ex, &invariant](const std::vector<CheckAction>& candidate) {
          std::unique_ptr<CheckHarness> harness;
          auto replayed = Replay(ex, candidate, &harness);
          return replayed.ok() && replayed->has_value() &&
                 (*replayed)->invariant == invariant;
        });
  }
  // Re-run the final schedule so step/detail match it exactly, and drop
  // any trailing actions past the violation.
  std::unique_ptr<CheckHarness> harness;
  DYNVOTE_ASSIGN_OR_RETURN(std::optional<Violation> final_violation,
                           Replay(ex, schedule, &harness));
  if (!final_violation.has_value()) {
    return Status::Internal("shrunk schedule no longer fails: " +
                            ScheduleToString(schedule));
  }
  schedule.resize(static_cast<std::size_t>(final_violation->step) + 1);

  CounterExample ce;
  ce.protocol = ex.options.protocol;
  ce.topology = ex.options.topology;
  ce.placement = ex.placement;
  ce.policy = ex.options.policy;
  ce.schedule = std::move(schedule);
  ce.violation = *final_violation;
  return ce;
}

/// sum over d = 1..depth of |alphabet|^d, saturating at uint64 max.
std::uint64_t UnprunedSequences(std::size_t alphabet, int depth) {
  const std::uint64_t kMax = ~std::uint64_t{0};
  std::uint64_t total = 0;
  std::uint64_t layer = 1;
  for (int d = 0; d < depth; ++d) {
    if (layer > kMax / alphabet) return kMax;
    layer *= alphabet;
    if (total > kMax - layer) return kMax;
    total += layer;
  }
  return total;
}

Status RunExhaustive(Exploration* ex) {
  ex->report.unpruned_sequences =
      UnprunedSequences(ex->alphabet.size(), ex->options.depth);

  // BFS by depth layers. The harness has no snapshot, so each expansion
  // replays its prefix from the initial state; the frontier holds one
  // schedule per distinct reached state.
  std::unordered_set<std::string> visited;
  bool all_canonical = true;

  std::vector<std::vector<CheckAction>> frontier;
  {
    std::unique_ptr<CheckHarness> harness;
    DYNVOTE_ASSIGN_OR_RETURN(std::optional<Violation> violation,
                             Replay(*ex, {}, &harness));
    (void)violation;  // empty schedule cannot violate
    std::string signature;
    if (harness->AppendSignature(&signature)) {
      visited.insert(std::move(signature));
    } else {
      all_canonical = false;
    }
    frontier.push_back({});
    ex->report.states_visited = 1;
  }

  for (int d = 0; d < ex->options.depth && !frontier.empty(); ++d) {
    std::vector<std::vector<CheckAction>> next;
    for (const std::vector<CheckAction>& prefix : frontier) {
      for (const CheckAction& action : ex->alphabet) {
        std::vector<CheckAction> schedule = prefix;
        schedule.push_back(action);
        ++ex->report.transitions;

        std::unique_ptr<CheckHarness> harness;
        DYNVOTE_ASSIGN_OR_RETURN(std::optional<Violation> violation,
                                 Replay(*ex, schedule, &harness));
        ex->report.commits += harness->commits();
        ex->report.reads_checked += harness->reads_checked();
        if (violation.has_value()) {
          DYNVOTE_ASSIGN_OR_RETURN(
              ex->report.counterexample,
              BuildCounterExample(*ex, std::move(schedule), *violation));
          ex->report.memoized = ex->options.memoize && all_canonical;
          return Status::OK();
        }

        std::string signature;
        bool canonical = harness->AppendSignature(&signature);
        if (!canonical) all_canonical = false;
        if (ex->options.memoize && canonical) {
          if (!visited.insert(std::move(signature)).second) continue;
        }
        ++ex->report.states_visited;
        if (d + 1 < ex->options.depth) next.push_back(std::move(schedule));
      }
    }
    frontier = std::move(next);
  }
  ex->report.memoized = ex->options.memoize && all_canonical;
  return Status::OK();
}

Status RunSwarm(Exploration* ex) {
  for (int k = 0; k < ex->options.swarm_schedules; ++k) {
    // Each schedule gets an independent stream derived from (seed, k) so
    // any single schedule can be re-derived in isolation.
    Rng rng(SplitMix64(ex->options.seed + static_cast<std::uint64_t>(k))
                .Next());
    DYNVOTE_ASSIGN_OR_RETURN(std::unique_ptr<CheckHarness> harness,
                             FreshHarness(*ex));
    std::vector<CheckAction> schedule;
    schedule.reserve(static_cast<std::size_t>(ex->options.swarm_depth));
    std::optional<Violation> violation;
    for (int step = 0; step < ex->options.swarm_depth; ++step) {
      const CheckAction& action =
          ex->alphabet[rng.NextBounded(ex->alphabet.size())];
      schedule.push_back(action);
      ++ex->report.transitions;
      violation = harness->Apply(action);
      if (violation.has_value()) break;
    }
    ++ex->report.schedules_run;
    ex->report.commits += harness->commits();
    ex->report.reads_checked += harness->reads_checked();
    if (violation.has_value()) {
      DYNVOTE_ASSIGN_OR_RETURN(
          ex->report.counterexample,
          BuildCounterExample(*ex, std::move(schedule), *violation));
      return Status::OK();
    }
  }
  return Status::OK();
}

}  // namespace

Result<CheckReport> RunCheck(const CheckOptions& options) {
  Exploration ex;
  ex.options = options;
  DYNVOTE_ASSIGN_OR_RETURN(ex.topology, MakeCheckTopology(options.topology));
  ex.placement =
      options.placement.Empty() ? ex.topology->AllSites() : options.placement;
  ex.alphabet = ActionAlphabet(*ex.topology);
  if (options.depth < 1 && options.mode == CheckMode::kExhaustive) {
    return Status::InvalidArgument("depth must be at least 1");
  }

  // Surface configuration errors (unknown protocol, oracle mismatch)
  // before exploring.
  DYNVOTE_ASSIGN_OR_RETURN(std::unique_ptr<CheckHarness> probe,
                           FreshHarness(ex));
  probe.reset();

  Status status = options.mode == CheckMode::kExhaustive ? RunExhaustive(&ex)
                                                         : RunSwarm(&ex);
  DYNVOTE_RETURN_NOT_OK(status);
  return std::move(ex.report);
}

}  // namespace check
}  // namespace dynvote
