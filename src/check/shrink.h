// Greedy delta-debugging over action schedules: remove ever-smaller
// chunks while the schedule still trips the same invariant, down to a
// 1-minimal reproducer (no single action can be removed).

#pragma once

#include <functional>
#include <vector>

#include "check/action.h"

namespace dynvote {
namespace check {

/// Returns true iff `schedule` still reproduces the failure under
/// investigation (same invariant). Must be deterministic.
using ScheduleOracle =
    std::function<bool(const std::vector<CheckAction>& schedule)>;

/// Shrinks `schedule` (which must satisfy `still_fails`) by greedy
/// chunk removal with halving chunk sizes, iterated to a fixpoint. The
/// result satisfies `still_fails` and is 1-minimal: removing any single
/// remaining action makes the failure disappear.
std::vector<CheckAction> ShrinkSchedule(std::vector<CheckAction> schedule,
                                        const ScheduleOracle& still_fails);

}  // namespace check
}  // namespace dynvote
