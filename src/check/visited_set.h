// The parallel checker's visited-state table: canonical signatures
// sharded by hash, each shard behind its own Mutex, so concurrent
// expansion workers insert without a global lock. Every insert carries
// the expansion's deterministic claim token (the global BFS order index)
// and the shard keeps the *minimum* token per signature — min is
// commutative and associative, so the table's final contents after a
// level's Wait() barrier are independent of worker interleaving, and the
// merge phase can resolve "which schedule first reached this state" in
// the exact order a sequential breadth-first search would have.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "util/thread_annotations.h"

namespace dynvote {
namespace check {

class ShardedVisitedSet {
 public:
  /// Shard count. A fixed power of two: the shard index is the top bits
  /// of the signature hash, so resizing would reshuffle every entry.
  static constexpr int kShards = 16;

  /// Returned by MinToken() for signatures never inserted.
  static constexpr std::uint64_t kNotVisited = ~std::uint64_t{0};

  /// Records that the expansion holding claim token `token` reached the
  /// state with canonical signature `signature`. Keeps the minimum token
  /// per signature and returns that minimum after this insert (== token
  /// exactly when this call claimed the state first — in token order,
  /// not wall-clock order). Thread-safe; only the owning shard locks.
  std::uint64_t InsertMin(const std::string& signature, std::uint64_t token);

  /// The minimum claim token recorded for `signature`, or kNotVisited.
  std::uint64_t MinToken(const std::string& signature) const;

  /// Distinct signatures across all shards (merged in ascending shard
  /// order; the count is interleaving-independent).
  std::size_t Size() const;

  /// Order-independent digest of the signature *set*: the mod-2^64 sum
  /// of every signature's FNV-1a hash, folded across shards in ascending
  /// shard order. Two sets are overwhelmingly likely to digest equally
  /// iff they contain the same signatures, regardless of the insertion
  /// interleaving that built them — this is what the POR-equivalence and
  /// jobs-determinism checks compare.
  std::uint64_t Digest() const;

  /// FNV-1a 64-bit. Implemented here (not std::hash) so digests are
  /// stable across standard libraries and builds.
  static std::uint64_t HashSignature(const std::string& signature);

 private:
  struct Shard {
    mutable Mutex mutex;
    std::unordered_map<std::string, std::uint64_t> min_token
        DYNVOTE_GUARDED_BY(mutex);
    std::uint64_t digest DYNVOTE_GUARDED_BY(mutex) = 0;
  };

  Shard& ShardFor(std::uint64_t hash) {
    return shards_[hash >> (64 - 4)];  // top log2(kShards) bits
  }
  const Shard& ShardFor(std::uint64_t hash) const {
    return shards_[hash >> (64 - 4)];
  }

  std::array<Shard, kShards> shards_;
};

}  // namespace check
}  // namespace dynvote
