#include "check/shrink.h"

namespace dynvote {
namespace check {
namespace {

std::vector<CheckAction> WithoutRange(const std::vector<CheckAction>& in,
                                      std::size_t begin, std::size_t end) {
  std::vector<CheckAction> out;
  out.reserve(in.size() - (end - begin));
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (i < begin || i >= end) out.push_back(in[i]);
  }
  return out;
}

}  // namespace

std::vector<CheckAction> ShrinkSchedule(std::vector<CheckAction> schedule,
                                        const ScheduleOracle& still_fails) {
  bool progressed = true;
  while (progressed && schedule.size() > 1) {
    progressed = false;
    // Chunk sizes halve from |schedule|/2 down to single actions; each
    // successful removal restarts the size ladder on the shorter
    // schedule (greedy ddmin).
    for (std::size_t chunk = schedule.size() / 2; chunk >= 1; chunk /= 2) {
      for (std::size_t begin = 0; begin + chunk <= schedule.size();) {
        std::vector<CheckAction> candidate =
            WithoutRange(schedule, begin, begin + chunk);
        if (!candidate.empty() && still_fails(candidate)) {
          schedule = std::move(candidate);
          progressed = true;
          // Retry at the same offset: the next chunk slid into place.
        } else {
          begin += chunk;
        }
      }
    }
  }
  return schedule;
}

}  // namespace check
}  // namespace dynvote
