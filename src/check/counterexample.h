// The dynvote-counterexample-v1 schema: a self-contained, replayable
// record of one invariant violation — protocol, named topology,
// placement, invariant policy, the action schedule, and what failed where.
// Produced by the checker (after shrinking), consumed by `dynvote check
// --replay` and the corpus regression tests.

#pragma once

#include <string>

#include "check/action.h"
#include "check/harness.h"
#include "util/result.h"
#include "util/site_set.h"

namespace dynvote {
namespace check {

/// Schema identifier written into every counterexample JSON.
inline constexpr const char kCounterExampleSchema[] =
    "dynvote-counterexample-v1";

struct CounterExample {
  std::string protocol;  // registry name ("ODV", "TDV", ...)
  std::string topology;  // check topology name (see topologies.h)
  SiteSet placement;
  InvariantPolicy policy;
  std::vector<CheckAction> schedule;
  Violation violation;
};

/// Pretty-printed JSON (flat object; the schedule is one space-separated
/// token string, the placement a numeric array).
std::string CounterExampleToJson(const CounterExample& ce);

/// Inverse of CounterExampleToJson; rejects unknown schemas and
/// malformed fields.
Result<CounterExample> ParseCounterExampleJson(const std::string& text);

/// Replays the schedule from the initial state and verifies that the
/// recorded invariant trips at the recorded step. Returns OK exactly
/// when the counterexample reproduces; Internal with a diagnostic
/// otherwise. Deterministic: the harness has no hidden inputs.
Status ReplayCounterExample(const CounterExample& ce);

}  // namespace check
}  // namespace dynvote
