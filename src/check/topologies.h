// The named small universes the model checker explores and the
// counterexample schema refers to by name, so a checked-in JSON
// counterexample rebuilds its exact topology on replay.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/topology.h"
#include "util/result.h"

namespace dynvote {
namespace check {

/// Builds a check topology by name:
///   "singleN"  — N sites (2 <= N <= 8) on one indivisible segment;
///   "pairs"    — two two-site segments joined by one repeater, the
///                smallest universe where the topological variants'
///                vote-carrying (and its fork hazard) shows up;
///   "section3" — the paper's Section 3 example: segments alpha (sites
///                A, B), gamma (C) and delta (D) joined by repeaters X
///                (alpha-gamma) and Y (alpha-delta).
Result<std::shared_ptr<const Topology>> MakeCheckTopology(
    const std::string& name);

/// The names MakeCheckTopology accepts ("singleN" listed as single3..5).
const std::vector<std::string>& CheckTopologyNames();

}  // namespace check
}  // namespace dynvote
