// The model-checking engine: explores action schedules against a
// CheckHarness either bounded-exhaustively (level-synchronous BFS with
// canonical-state memoization, so equivalent interleavings are expanded
// once) or as a seeded swarm of random schedules. Both modes fan their
// independent replays out over a ThreadPool (`jobs`) and merge results
// in deterministic expansion order, so every report field — verdicts,
// state counts, the first counterexample — is bit-identical for any job
// count. Exhaustive mode additionally applies partial-order reduction
// over commuting toggles when the harness proves them independent. The
// first invariant violation is shrunk to a 1-minimal reproducer and
// returned as a replayable CounterExample.

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "check/counterexample.h"
#include "check/harness.h"
#include "util/result.h"
#include "util/site_set.h"

namespace dynvote {
namespace check {

enum class CheckMode {
  /// Enumerate every schedule up to `depth` actions, merging states with
  /// equal canonical signatures (when memoization is on and the protocol
  /// canonicalizes).
  kExhaustive,
  /// Run `swarm_schedules` random schedules of `swarm_depth` actions
  /// each, deterministically derived from `seed`.
  kSwarm,
};

struct CheckOptions {
  std::string protocol = "ODV";   // registry name
  std::string topology = "single3";  // see topologies.h
  /// Copy placement; empty means every site of the topology.
  SiteSet placement;
  CheckMode mode = CheckMode::kExhaustive;
  /// Exhaustive bound: maximum schedule length.
  int depth = 5;
  /// Merge canonically-equal states during exhaustive exploration.
  bool memoize = true;
  std::uint64_t seed = 1;
  int swarm_schedules = 256;
  int swarm_depth = 12;
  InvariantPolicy policy;
  /// Delta-debug a found violation down to a 1-minimal schedule.
  bool shrink = true;
  /// Worker threads for the replay fan-out (0 = all cores). Never
  /// changes any report field, only wall-clock time.
  int jobs = 1;
  /// Partial-order reduction (exhaustive mode): canonicalize runs of
  /// adjacent commuting toggles to the single ascending-order
  /// interleaving. Applied only when the harness proves toggles commute
  /// (CheckHarness::TogglesCommute); the visited-state *set* at any
  /// depth is unchanged, only the expansions needed to cover it shrink.
  bool por = true;
};

struct CheckReport {
  /// Distinct canonical states reached (including the initial state).
  /// Without memoization this counts explored schedule prefixes instead.
  std::uint64_t states_visited = 0;
  /// (state, action) expansions performed (exhaustive) or actions
  /// applied (swarm).
  std::uint64_t transitions = 0;
  /// Complete schedules the swarm ran; 0 in exhaustive mode.
  std::uint64_t schedules_run = 0;
  /// Naive sequence count the exhaustive bound covers:
  /// sum over d = 1..depth of |alphabet|^d (saturating).
  std::uint64_t unpruned_sequences = 0;
  /// Committed writes / checked reads across every harness replay.
  std::uint64_t commits = 0;
  std::uint64_t reads_checked = 0;
  /// True iff state merging was actually in effect (memoize requested
  /// and every reached state canonicalized).
  bool memoized = false;
  /// True iff partial-order reduction was actually in effect (requested,
  /// exhaustive mode, and the harness proved toggles commute).
  bool por_active = false;
  /// Order-independent digest of the visited canonical-signature set
  /// (exhaustive + memoized runs; 0 otherwise). Equal digests mean equal
  /// state *sets*: the POR on/off equivalence and jobs-determinism
  /// checks compare this, not just the count.
  std::uint64_t visited_digest = 0;
  /// Present iff an invariant violation was found (already shrunk when
  /// options.shrink).
  std::optional<CounterExample> counterexample;
};

/// Runs the configured exploration. A found violation is reported in the
/// CheckReport, not as an error status; errors mean the configuration
/// itself is invalid (unknown protocol/topology, oracle mismatch, ...).
Result<CheckReport> RunCheck(const CheckOptions& options);

}  // namespace check
}  // namespace dynvote
