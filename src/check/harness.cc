#include "check/harness.h"

#include <map>

#include "core/dynamic_voting.h"

namespace dynvote {
namespace check {
namespace {

/// The single key every schedule reads and writes: the paper replicates
/// whole files, so one object is fully general.
constexpr const char kKey[] = "k";

bool IsTieDecision(const QuorumDecision& d) {
  return d.by_tie_break || d.reason == QuorumReason::kGrantedTieLex ||
         d.reason == QuorumReason::kDeniedTieLost;
}

}  // namespace

const char* DifferentialOracleName(DifferentialOracle oracle) {
  switch (oracle) {
    case DifferentialOracle::kNone:
      return "none";
    case DifferentialOracle::kQuorumCache:
      return "quorum_cache";
    case DifferentialOracle::kJmEquivalence:
      return "jm_equivalence";
    case DifferentialOracle::kLexPair:
      return "lex_pair";
  }
  return "?";
}

Result<DifferentialOracle> ParseDifferentialOracle(const std::string& name) {
  if (name == "none") return DifferentialOracle::kNone;
  if (name == "quorum_cache") return DifferentialOracle::kQuorumCache;
  if (name == "jm_equivalence") return DifferentialOracle::kJmEquivalence;
  if (name == "lex_pair") return DifferentialOracle::kLexPair;
  return Status::InvalidArgument("unknown differential oracle '" + name +
                                 "'");
}

Result<std::unique_ptr<CheckHarness>> CheckHarness::Make(
    std::shared_ptr<const Topology> topology, SiteSet placement,
    const std::string& protocol, InvariantPolicy policy) {
  std::string shadow_protocol;
  switch (policy.oracle) {
    case DifferentialOracle::kNone:
      break;
    case DifferentialOracle::kQuorumCache:
      shadow_protocol = protocol;
      break;
    case DifferentialOracle::kJmEquivalence:
      if (protocol != "DV") {
        return Status::InvalidArgument(
            "the jm_equivalence oracle requires --protocol=DV (got '" +
            protocol + "')");
      }
      shadow_protocol = "JM-DV";
      break;
    case DifferentialOracle::kLexPair:
      if (protocol != "LDV") {
        return Status::InvalidArgument(
            "the lex_pair oracle requires --protocol=LDV (got '" + protocol +
            "')");
      }
      shadow_protocol = "ODV";
      break;
  }

  auto harness =
      std::unique_ptr<CheckHarness>(new CheckHarness(policy));
  auto add_arm = [&](const std::string& name) -> Status {
    auto cluster = KvCluster::Make(topology, placement, name);
    if (!cluster.ok()) return cluster.status();
    HarnessArm arm;
    arm.cluster = cluster.MoveValue();
    arm.strict = policy.strict;
    harness->arms_.push_back(std::move(arm));
    return Status::OK();
  };
  DYNVOTE_RETURN_NOT_OK(add_arm(protocol));
  if (!shadow_protocol.empty()) {
    DYNVOTE_RETURN_NOT_OK(add_arm(shadow_protocol));
    if (policy.oracle == DifferentialOracle::kQuorumCache) {
      harness->arms_[1].cluster->store().protocol()
          ->set_quorum_cache_enabled(false);
    }
  }
  return harness;
}

bool CheckHarness::TogglesCommute() const {
  for (const HarnessArm& arm : arms_) {
    if (arm.cluster->protocol().uses_instantaneous_information()) {
      return false;
    }
  }
  return true;
}

std::optional<Violation> CheckHarness::Violate(const std::string& invariant,
                                               std::string detail) const {
  Violation v;
  v.invariant = invariant;
  v.step = steps_;
  v.detail = std::move(detail);
  return v;
}

std::optional<Violation> CheckHarness::ApplyToArm(HarnessArm* arm,
                                                  const CheckAction& action) {
  KvCluster& cluster = *arm->cluster;
  const int num_sites = cluster.net().topology().num_sites();
  arm->last_statuses.clear();
  const bool is_primary = arm == &arms_.front();

  switch (action.kind) {
    case ActionKind::kToggleSite: {
      if (action.target < 0 || action.target >= num_sites) {
        return Violate("invalid_action",
                       "no site " + std::to_string(action.target));
      }
      SiteId s = action.target;
      if (cluster.net().IsSiteUp(s)) {
        cluster.KillSite(s);
      } else {
        cluster.RestartSite(s);
      }
      break;
    }
    case ActionKind::kToggleRepeater: {
      if (action.target < 0 ||
          action.target >= cluster.net().topology().num_repeaters()) {
        return Violate("invalid_action",
                       "no repeater " + std::to_string(action.target));
      }
      RepeaterId r = action.target;
      if (cluster.net().IsRepeaterUp(r)) {
        cluster.KillRepeater(r);
      } else {
        cluster.RestartRepeater(r);
      }
      break;
    }
    case ActionKind::kWrite: {
      std::string value = "v" + std::to_string(arm->counter++);
      for (SiteId s = 0; s < num_sites; ++s) {
        if (!cluster.net().IsSiteUp(s)) continue;
        Status st = cluster.Put(s, kKey, value);
        arm->last_statuses.push_back(static_cast<int>(st.code()));
        if (st.ok()) {
          arm->committed.push_back(value);
          if (is_primary) ++commits_;
          break;
        }
        if (!st.IsNoQuorum()) {
          return Violate("status_contract", "write at site " +
                                                std::to_string(s) +
                                                " returned " + st.ToString());
        }
      }
      break;
    }
    case ActionKind::kReadCheck: {
      for (SiteId s = 0; s < num_sites; ++s) {
        if (!cluster.net().IsSiteUp(s)) continue;
        auto got = cluster.Get(s, kKey);
        const Status& st = got.status();
        arm->last_statuses.push_back(static_cast<int>(st.code()));
        if (st.IsNoQuorum() || st.IsUnavailable()) continue;
        if (!st.ok() && !st.IsNotFound()) {
          return Violate("status_contract", "read at site " +
                                                std::to_string(s) +
                                                " returned " + st.ToString());
        }
        if (is_primary) ++reads_checked_;
        if (arm->strict) {
          if (arm->committed.empty()) {
            if (!st.IsNotFound()) {
              return Violate("one_copy_serialisability",
                             "read at site " + std::to_string(s) +
                                 " observed '" + *got +
                                 "' before any write committed");
            }
          } else if (!st.ok() || *got != arm->committed.back()) {
            return Violate(
                "one_copy_serialisability",
                "read at site " + std::to_string(s) + " observed " +
                    (st.ok() ? "'" + *got + "'" : st.ToString()) +
                    ", expected latest commit '" + arm->committed.back() +
                    "'");
          }
        } else if (st.ok()) {
          bool known = false;
          for (const std::string& v : arm->committed) {
            if (v == *got) {
              known = true;
              break;
            }
          }
          if (!known) {
            return Violate("uncommitted_read",
                           "read at site " + std::to_string(s) +
                               " observed '" + *got +
                               "', which was never committed");
          }
        }
      }
      break;
    }
    case ActionKind::kRecoverAll: {
      for (SiteId s = 0; s < num_sites; ++s) {
        if (!cluster.net().IsSiteUp(s)) continue;
        Status st = cluster.TryRecover(s);
        arm->last_statuses.push_back(static_cast<int>(st.code()));
        if (!st.ok() && !st.IsNoQuorum()) {
          return Violate("status_contract", "recovery at site " +
                                                std::to_string(s) +
                                                " returned " + st.ToString());
        }
      }
      break;
    }
  }

  // Mutual exclusion, after every action. The weakened threshold (the
  // test hook proving the pipeline) applies even to exempt protocols.
  if (arm->strict || policy_.max_granted_groups == 0) {
    int granted = 0;
    SiteSet granted_example;
    for (const SiteSet& group : cluster.net().Components()) {
      if (cluster.protocol().WouldGrant(cluster.net(), group.RankMax(),
                                        AccessType::kWrite)) {
        ++granted;
        granted_example = group;
      }
    }
    if (granted > policy_.max_granted_groups) {
      return Violate(
          "mutual_exclusion",
          std::to_string(granted) + " groups granted (threshold " +
              std::to_string(policy_.max_granted_groups) + "), e.g. group " +
              granted_example.ToString());
    }
  }
  return std::nullopt;
}

std::optional<Violation> CheckHarness::CheckOracle(
    const CheckAction& action) {
  if (policy_.oracle == DifferentialOracle::kNone) return std::nullopt;
  const HarnessArm& primary = arms_[0];
  const HarnessArm& shadow = arms_[1];
  const char* name =
      policy_.oracle == DifferentialOracle::kQuorumCache ? "cache_divergence"
      : policy_.oracle == DifferentialOracle::kJmEquivalence
          ? "jm_divergence"
          : "lex_pair_divergence";

  if (policy_.oracle == DifferentialOracle::kLexPair) {
    // Tie-gated per-component grant comparison; statuses and histories
    // may legitimately diverge once a tie has been decided.
    const auto* ldv =
        dynamic_cast<const DynamicVoting*>(&primary.cluster->protocol());
    const auto* odv =
        dynamic_cast<const DynamicVoting*>(&shadow.cluster->protocol());
    if (ldv == nullptr || odv == nullptr) return std::nullopt;
    for (const SiteSet& group : primary.cluster->net().Components()) {
      QuorumDecision a = ldv->Evaluate(group);
      QuorumDecision b = odv->Evaluate(group);
      if (IsTieDecision(a) || IsTieDecision(b)) continue;
      if (a.granted != b.granted) {
        return Violate(name, "after " + action.Token() + ", group " +
                                 group.ToString() + ": LDV " +
                                 (a.granted ? "grants" : "denies") +
                                 " but ODV " +
                                 (b.granted ? "grants" : "denies") +
                                 " with no tie-break involved");
      }
    }
    return std::nullopt;
  }

  // Strict oracles: the shadow must be operationally indistinguishable.
  if (primary.last_statuses != shadow.last_statuses) {
    return Violate(name, "after " + action.Token() +
                             ": per-site status codes diverge");
  }
  if (primary.committed.size() != shadow.committed.size()) {
    return Violate(name, "after " + action.Token() +
                             ": committed histories diverge (" +
                             std::to_string(primary.committed.size()) +
                             " vs " +
                             std::to_string(shadow.committed.size()) + ")");
  }
  for (const SiteSet& group : primary.cluster->net().Components()) {
    for (AccessType type : {AccessType::kRead, AccessType::kWrite}) {
      bool a = primary.cluster->protocol().CachedWouldGrant(
          primary.cluster->net(), group.RankMax(), type);
      bool b = shadow.cluster->protocol().CachedWouldGrant(
          shadow.cluster->net(), group.RankMax(), type);
      if (a != b) {
        return Violate(
            name, "after " + action.Token() + ", group " + group.ToString() +
                      (type == AccessType::kWrite ? " (write)" : " (read)") +
                      ": primary " + (a ? "grants" : "denies") +
                      " but shadow " + (b ? "grants" : "denies"));
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> CheckHarness::Apply(const CheckAction& action) {
  for (HarnessArm& arm : arms_) {
    if (auto v = ApplyToArm(&arm, action)) {
      ++steps_;
      return v;
    }
  }
  if (auto v = CheckOracle(action)) {
    ++steps_;
    return v;
  }
  ++steps_;
  return std::nullopt;
}

bool CheckHarness::AppendSignature(std::string* out) const {
  const NetworkState& net = arms_.front().cluster->net();
  out->push_back('n');
  *out += std::to_string(net.LiveSites().mask());
  out->push_back('r');
  for (RepeaterId r = 0; r < net.topology().num_repeaters(); ++r) {
    out->push_back(net.IsRepeaterUp(r) ? '1' : '0');
  }
  for (const HarnessArm& arm : arms_) {
    out->push_back('|');
    if (!arm.cluster->protocol().AppendStateSignature(out)) return false;
    // Replica contents relative to the committed history: 0 = no value,
    // 1 = the latest commit, 2+ = stale classes by first appearance.
    // Value identities beyond this partition cannot influence any future
    // invariant outcome (reads only ever compare against the latest
    // commit or test membership of the committed set).
    out->push_back('/');
    out->push_back(arm.committed.empty() ? 'e' : 'n');
    std::map<std::string, int> stale_class;
    int next_class = 2;
    for (SiteId s : arm.cluster->protocol().data_sites()) {
      const KvMap& contents = arm.cluster->store().ReplicaContents(s);
      auto it = contents.find(kKey);
      int code;
      if (it == contents.end()) {
        code = 0;
      } else if (!arm.committed.empty() &&
                 it->second == arm.committed.back()) {
        code = 1;
      } else {
        auto [slot, inserted] =
            stale_class.try_emplace(it->second, next_class);
        if (inserted) ++next_class;
        code = slot->second;
      }
      *out += std::to_string(code);
      out->push_back(',');
    }
  }
  return true;
}

}  // namespace check
}  // namespace dynvote
