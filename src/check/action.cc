#include "check/action.h"

#include <sstream>

namespace dynvote {
namespace check {

std::string CheckAction::Token() const {
  switch (kind) {
    case ActionKind::kToggleSite:
      return "toggle_site:" + std::to_string(target);
    case ActionKind::kToggleRepeater:
      return "toggle_repeater:" + std::to_string(target);
    case ActionKind::kWrite:
      return "write";
    case ActionKind::kReadCheck:
      return "read_check";
    case ActionKind::kRecoverAll:
      return "recover_all";
  }
  return "?";
}

Result<CheckAction> ParseActionToken(const std::string& token) {
  auto targeted = [&token](ActionKind kind,
                           const std::string& prefix) -> Result<CheckAction> {
    const std::string digits = token.substr(prefix.size());
    try {
      std::size_t used = 0;
      int target = std::stoi(digits, &used);
      if (used == digits.size() && target >= 0) {
        return CheckAction{kind, target};
      }
    } catch (const std::exception&) {
    }
    return Status::InvalidArgument("bad action target in '" + token + "'");
  };
  if (token.rfind("toggle_site:", 0) == 0) {
    return targeted(ActionKind::kToggleSite, "toggle_site:");
  }
  if (token.rfind("toggle_repeater:", 0) == 0) {
    return targeted(ActionKind::kToggleRepeater, "toggle_repeater:");
  }
  if (token == "write") return CheckAction{ActionKind::kWrite, -1};
  if (token == "read_check") return CheckAction{ActionKind::kReadCheck, -1};
  if (token == "recover_all") return CheckAction{ActionKind::kRecoverAll, -1};
  return Status::InvalidArgument("unknown action token '" + token + "'");
}

std::vector<CheckAction> ActionAlphabet(const Topology& topology) {
  std::vector<CheckAction> alphabet;
  for (SiteId s = 0; s < topology.num_sites(); ++s) {
    alphabet.push_back({ActionKind::kToggleSite, s});
  }
  for (RepeaterId r = 0; r < topology.num_repeaters(); ++r) {
    alphabet.push_back({ActionKind::kToggleRepeater, r});
  }
  alphabet.push_back({ActionKind::kWrite, -1});
  alphabet.push_back({ActionKind::kReadCheck, -1});
  alphabet.push_back({ActionKind::kRecoverAll, -1});
  return alphabet;
}

int ToggleOrderIndex(const CheckAction& action, int num_sites) {
  switch (action.kind) {
    case ActionKind::kToggleSite:
      return action.target;
    case ActionKind::kToggleRepeater:
      return num_sites + action.target;
    default:
      return -1;
  }
}

std::string ScheduleToString(const std::vector<CheckAction>& schedule) {
  std::string out;
  for (const CheckAction& action : schedule) {
    if (!out.empty()) out.push_back(' ');
    out += action.Token();
  }
  return out;
}

Result<std::vector<CheckAction>> ParseSchedule(const std::string& text) {
  std::vector<CheckAction> schedule;
  std::stringstream ss(text);
  std::string token;
  while (ss >> token) {
    auto action = ParseActionToken(token);
    if (!action.ok()) return action.status();
    schedule.push_back(*action);
  }
  return schedule;
}

}  // namespace check
}  // namespace dynvote
