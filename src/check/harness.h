// The replay harness behind the model checker: applies one schedule
// action at a time to a replicated KV cluster (plus optional shadow
// clusters for differential oracles), checks the paper's safety
// invariants after every action, and exposes a canonical signature of the
// complete reached state so the exhaustive engine can merge equivalent
// states.
//
// Invariants checked (per cluster):
//   mutual_exclusion          at most one group of communicating sites is
//                             granted;
//   one_copy_serialisability  every granted read observes the most
//                             recently committed write;
//   uncommitted_read          loose mode: reads must still never return a
//                             value that was never committed;
//   status_contract           data-plane and recovery calls return only
//                             OK / NoQuorum (reads also NotFound /
//                             Unavailable) — anything else is a bug.
//
// Differential oracles compare a second cluster driven by the identical
// schedule; see DifferentialOracle.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/action.h"
#include "kv/cluster.h"
#include "net/topology.h"
#include "util/result.h"
#include "util/site_set.h"

namespace dynvote {
namespace check {

/// Cross-implementation agreement checked alongside the safety
/// invariants.
enum class DifferentialOracle {
  kNone,
  /// Shadow = the same protocol with every quorum cache disabled (the
  /// CLI's --no-quorum-cache escape hatch). Every per-site operation
  /// status and every per-component grant decision must agree on every
  /// step: memoization must be invisible.
  kQuorumCache,
  /// Primary DV, shadow JM-DV: the Jajodia-Mutchler cardinality
  /// formulation must grant exactly where the partition-set formulation
  /// grants, on every step (the claim jm_voting.h substantiates).
  kJmEquivalence,
  /// Primary LDV, shadow ODV, compared per component and only when
  /// neither decision involves the tie-break. REFUTABLE: optimistic
  /// state lags instantaneous state after unaccessed network events, and
  /// the checker finds a three-action counterexample on single5 (kept in
  /// tests/check/corpus/ as a regression of the checker's power).
  kLexPair,
};

/// Name used in the counterexample schema ("none", "quorum_cache", ...).
const char* DifferentialOracleName(DifferentialOracle oracle);
Result<DifferentialOracle> ParseDifferentialOracle(const std::string& name);

/// What the harness enforces.
struct InvariantPolicy {
  /// Enforce mutual exclusion and one-copy serialisability. Callers
  /// normally set this to the protocol's partition_safe(): the
  /// topological variants' documented fork hazard and AC's no-partition
  /// assumption make strict checking fail BY DESIGN for them (the
  /// checker rediscovers those hazards — see tests/check/corpus/), and
  /// loose mode holds their reads to uncommitted_read only.
  bool strict = true;
  /// Mutual-exclusion threshold: a state with more granted groups than
  /// this violates. 1 is the paper's invariant; 0 is the deliberately
  /// weakened test hook (any grant at all trips), used to prove the
  /// find-shrink-replay pipeline end to end.
  int max_granted_groups = 1;
  DifferentialOracle oracle = DifferentialOracle::kNone;
};

/// A failed invariant: which one, at which schedule step, and a
/// human-readable account.
struct Violation {
  std::string invariant;
  int step = -1;
  std::string detail;
};

/// One cluster plus the bookkeeping the invariants need.
struct HarnessArm {
  std::unique_ptr<KvCluster> cluster;
  std::vector<std::string> committed;  // committed values, in order
  int counter = 0;                     // next write value suffix
  bool strict = false;                 // mutual exclusion + 1SR enforced
  /// StatusCode of each per-site operation the last action performed,
  /// in site order — the cross-arm comparison key for the strict
  /// oracles.
  std::vector<int> last_statuses;
};

/// Drives one schedule against a cluster (and oracle shadows).
/// Singleuse: make a fresh harness per schedule.
class CheckHarness {
 public:
  /// `protocol` is a registry name; the oracle dictates the shadow
  /// (kJmEquivalence requires protocol DV, kLexPair requires LDV).
  static Result<std::unique_ptr<CheckHarness>> Make(
      std::shared_ptr<const Topology> topology, SiteSet placement,
      const std::string& protocol, InvariantPolicy policy);

  /// Applies one action to every arm and checks every invariant.
  /// Returns the first violation, if any; the harness must not be used
  /// further after a violation.
  std::optional<Violation> Apply(const CheckAction& action);

  /// Appends a canonical signature of the complete reached state (all
  /// arms: network, protocol ensembles, replica contents relative to the
  /// committed history). Returns false if a protocol cannot canonicalize
  /// its state, in which case exploration must not merge states.
  bool AppendSignature(std::string* out) const;

  /// True iff site/repeater toggles on distinct targets commute for
  /// every arm: a toggle's only effect is then flipping one independent
  /// network bit (the protocol's OnNetworkEvent is a no-op — MCV and the
  /// optimistic variants), so reordering adjacent toggles reaches the
  /// same state. Partial-order reduction is sound exactly when this
  /// holds; instantaneous protocols commit partition-set updates *per
  /// network event*, so their toggle order is observable and the checker
  /// must not reduce it.
  bool TogglesCommute() const;

  /// Total committed writes / checked reads across all applied actions.
  std::uint64_t commits() const { return commits_; }
  std::uint64_t reads_checked() const { return reads_checked_; }
  int steps() const { return steps_; }

  const InvariantPolicy& policy() const { return policy_; }

 private:
  CheckHarness(InvariantPolicy policy) : policy_(policy) {}

  /// Applies the action to one arm; fills arm->last_statuses and may
  /// report a single-arm violation.
  std::optional<Violation> ApplyToArm(HarnessArm* arm,
                                      const CheckAction& action);
  /// Cross-arm agreement per the configured oracle.
  std::optional<Violation> CheckOracle(const CheckAction& action);
  std::optional<Violation> Violate(const std::string& invariant,
                                   std::string detail) const;

  InvariantPolicy policy_;
  std::vector<HarnessArm> arms_;  // [0] = primary, [1] = shadow (if any)
  int steps_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t reads_checked_ = 0;
};

}  // namespace check
}  // namespace dynvote
