// Reads a trace back in — dynvote-trace-v1 JSONL or dynvote-btrace-v1
// binary, auto-detected from the first byte — and aggregates it into the
// per-protocol why-unavailable breakdown the `trace-summary` CLI prints.
// The JSONL parser handles exactly the flat subset our sinks emit
// (string, number, bool, and flat-array values) — it is a schema reader,
// not a general JSON library.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace dynvote {

struct TraceEvent;

/// One parsed trace line as a flat field map; array values are kept as
/// raw text ("[1,2]"). Returns false on lines that are not JSON objects.
bool ParseTraceLine(std::string_view line,
                    std::map<std::string, std::string>* fields);

struct ProtocolTraceSummary {
  std::uint64_t accesses = 0;
  std::uint64_t granted = 0;
  std::uint64_t denied = 0;
  /// reason name -> count, over access events.
  std::map<std::string, std::uint64_t> access_reasons;
  /// reason name -> count, over fresh quorum evaluations.
  std::map<std::string, std::uint64_t> quorum_reasons;
  std::uint64_t quorum_evaluations = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t availability_transitions = 0;
  /// Serving-stage records (open-loop runs only, see docs/serving.md):
  /// event count, summed per-access control messages, and the
  /// arrival-to-completion latency histogram. The histogram is built
  /// with the same HistogramData the serving run's MetricsShard uses, so
  /// trace-derived and metrics-derived numbers reconcile exactly.
  std::uint64_t serving_events = 0;
  std::uint64_t serving_messages = 0;
  HistogramData serving_latency_ms;
};

struct TraceSummary {
  /// Schema string from the header ("" if the trace had none).
  std::string schema;
  /// JSONL: physical lines. Binary: header plus decoded event records.
  std::uint64_t total_lines = 0;
  std::uint64_t malformed_lines = 0;
  std::uint64_t net_events = 0;
  std::uint64_t sim_events = 0;
  std::map<std::string, ProtocolTraceSummary> per_protocol;
  /// Decoder error for a binary trace that ended mid-record ("" if the
  /// input decoded cleanly). The partial summary above is still valid.
  std::string decode_error;

  /// Human-readable rendering for the trace-summary subcommand.
  std::string ToString() const;
};

/// Folds one decoded event into a summary — the binary-side counterpart
/// of the per-line JSONL fold, so both formats aggregate identically.
void FoldTraceEvent(const TraceEvent& event, TraceSummary* summary);

/// Streams a trace — JSONL or binary, auto-detected — and folds it into
/// a TraceSummary.
TraceSummary SummarizeTrace(std::istream& in);

}  // namespace dynvote
