// Counters, gauges and histograms with per-thread sharding. Each
// replication worker mutates its own MetricsShard with no
// synchronization at all; shards are merged into the MetricsRegistry at
// join time, in replication order, so the exported JSON is deterministic
// for any --jobs. Keys are flat strings with inline labels, e.g.
//   access_reason{protocol=LDV,reason=denied_tie_lost}
// — ordering by key gives a stable export without a label model.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/thread_annotations.h"

namespace dynvote {

/// Metrics schema identifier in the exported JSON; bump on incompatible
/// field-set changes.
inline constexpr const char kMetricsSchema[] = "dynvote-metrics-v1";

/// Fixed-boundary histogram: count/sum/min/max plus sparse powers-of-two
/// buckets (bucket i counts values in [2^i, 2^(i+1)); negative i covers
/// sub-unit values; values <= 0 land in the lowest bucket).
struct HistogramData {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// bucket exponent -> count of observations in [2^e, 2^(e+1)).
  std::map<int, std::uint64_t> buckets;

  void Observe(double value);
  void Merge(const HistogramData& other);

  /// Estimates the q-quantile (q in [0, 1]) from the bucket counts with
  /// linear interpolation inside the covering bucket. The lowest and
  /// highest occupied buckets are clamped to the exact observed min/max,
  /// so Quantile(0) == min and Quantile(1) == max; an empty histogram
  /// returns 0. Error is bounded by the bucket width (a factor of 2).
  double Quantile(double q) const;
};

/// Single-writer bundle of metrics. Not thread-safe by design: one shard
/// per worker, merged under the registry lock at join.
class MetricsShard {
 public:
  void Add(std::string_view counter, std::uint64_t delta = 1);
  /// Returns the address of the named counter's value, inserting a zero
  /// cell if absent. std::map nodes never move, so the pointer stays
  /// valid until Clear() — the only operation that drops cells — which
  /// bumps cell_epoch(). Hot emitters resolve a key once per
  /// (shard, epoch) and then bump the cell directly, skipping the
  /// per-event key build and map walk.
  std::uint64_t* CounterCell(std::string_view counter);
  /// Invalidation token for cached CounterCell pointers.
  std::uint64_t cell_epoch() const { return cell_epoch_; }
  void Set(std::string_view gauge, double value);
  void Observe(std::string_view histogram, double value);
  /// Folds a pre-accumulated histogram into the named one — the bulk
  /// counterpart of Observe for stages that batch locally (ServingStage)
  /// and flush once.
  void MergeHistogram(std::string_view histogram, const HistogramData& data);

  /// Folds `other` into this shard: counters add, gauges take the
  /// incoming value (last merge wins — deterministic because merges run
  /// in replication order), histograms combine.
  void Merge(const MetricsShard& other);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void Clear();

  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, HistogramData, std::less<>>& histograms() const {
    return histograms_;
  }

  /// Renders the shard as a dynvote-metrics-v1 JSON document (sorted
  /// keys, %.17g doubles: byte-stable for identical contents).
  std::string ToJson() const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, HistogramData, std::less<>> histograms_;
  std::uint64_t cell_epoch_ = 0;
};

/// Thread-safe facade over a merged shard. Workers never touch it on the
/// hot path — they batch into local shards and call Merge once.
class MetricsRegistry {
 public:
  void Merge(const MetricsShard& shard) DYNVOTE_EXCLUDES(mutex_);
  /// Copies the merged state out under the lock.
  MetricsShard Snapshot() const DYNVOTE_EXCLUDES(mutex_);
  std::string ToJson() const DYNVOTE_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  MetricsShard merged_ DYNVOTE_GUARDED_BY(mutex_);
};

/// Builds "name{k1=v1,k2=v2}"-style keys without iostream machinery.
std::string MetricKey(std::string_view name, std::string_view label_csv);

}  // namespace dynvote
