#include "obs/metrics.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace dynvote {
namespace {

constexpr int kMinBucketExponent = -64;

int BucketExponent(double value) {
  if (!(value > 0.0)) return kMinBucketExponent;
  int exponent = 0;
  // frexp gives value = m * 2^e with m in [0.5, 1), so [2^i, 2^(i+1))
  // maps to e = i + 1.
  std::frexp(value, &exponent);
  exponent -= 1;
  return exponent < kMinBucketExponent ? kMinBucketExponent : exponent;
}

void AppendDouble(double value, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

void AppendU64(std::uint64_t value, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out->append(buf);
}

void AppendJsonString(std::string_view value, std::string* out) {
  out->push_back('"');
  for (char c : value) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

void HistogramData::Observe(double value) {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    if (value < min) min = value;
    if (value > max) max = value;
  }
  ++count;
  sum += value;
  ++buckets[BucketExponent(value)];
}

void HistogramData::Merge(const HistogramData& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  if (other.min < min) min = other.min;
  if (other.max > max) max = other.max;
  count += other.count;
  sum += other.sum;
  for (const auto& [exponent, n] : other.buckets) buckets[exponent] += n;
}

double HistogramData::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Nearest-rank target with within-bucket linear interpolation: the
  // k-th smallest observation (1-based) sits at rank k; the bucket
  // holding rank q*count is located by cumulative counts, then the
  // position inside it interpolates across the bucket's value range.
  double rank = q * static_cast<double>(count);
  if (rank < 1.0) rank = 1.0;
  std::uint64_t cumulative = 0;
  bool first_occupied = true;
  for (const auto& [exponent, n] : buckets) {
    if (n == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += n;
    const bool last_occupied = cumulative == count;
    if (static_cast<double>(cumulative) < rank && !last_occupied) {
      first_occupied = false;
      continue;
    }
    // The lowest and highest occupied buckets are clamped to the exact
    // observed extrema; interior buckets use their power-of-two range.
    double lo = first_occupied ? min : std::ldexp(1.0, exponent);
    double hi = last_occupied ? max : std::ldexp(1.0, exponent + 1);
    if (lo > hi) lo = hi;
    double value = lo + (hi - lo) * ((rank - before) / static_cast<double>(n));
    if (value < min) value = min;
    if (value > max) value = max;
    return value;
  }
  return max;
}

void MetricsShard::Add(std::string_view counter, std::uint64_t delta) {
  auto it = counters_.find(counter);
  if (it == counters_.end()) {
    counters_.emplace(std::string(counter), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t* MetricsShard::CounterCell(std::string_view counter) {
  auto it = counters_.find(counter);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(counter), 0).first;
  }
  return &it->second;
}

void MetricsShard::Set(std::string_view gauge, double value) {
  auto it = gauges_.find(gauge);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(gauge), value);
  } else {
    it->second = value;
  }
}

void MetricsShard::Observe(std::string_view histogram, double value) {
  auto it = histograms_.find(histogram);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(histogram), HistogramData{}).first;
  }
  it->second.Observe(value);
}

void MetricsShard::MergeHistogram(std::string_view histogram,
                                  const HistogramData& data) {
  auto it = histograms_.find(histogram);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(histogram), HistogramData{}).first;
  }
  it->second.Merge(data);
}

void MetricsShard::Merge(const MetricsShard& other) {
  for (const auto& [key, value] : other.counters_) {
    auto it = counters_.find(key);
    if (it == counters_.end()) {
      counters_.emplace(key, value);
    } else {
      it->second += value;
    }
  }
  for (const auto& [key, value] : other.gauges_) gauges_[key] = value;
  for (const auto& [key, value] : other.histograms_) {
    histograms_[key].Merge(value);
  }
}

void MetricsShard::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  ++cell_epoch_;  // every CounterCell pointer just died
}

std::string MetricsShard::ToJson() const {
  std::string out;
  out.reserve(256 + 64 * (counters_.size() + gauges_.size()));
  out.append("{\n  \"schema\": \"");
  out.append(kMetricsSchema);
  out.append("\",\n  \"counters\": {");
  bool first = true;
  for (const auto& [key, value] : counters_) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(key, &out);
    out.append(": ");
    AppendU64(value, &out);
  }
  out.append(first ? "}" : "\n  }");
  out.append(",\n  \"gauges\": {");
  first = true;
  for (const auto& [key, value] : gauges_) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(key, &out);
    out.append(": ");
    AppendDouble(value, &out);
  }
  out.append(first ? "}" : "\n  }");
  out.append(",\n  \"histograms\": {");
  first = true;
  for (const auto& [key, hist] : histograms_) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(key, &out);
    out.append(": {\"count\": ");
    AppendU64(hist.count, &out);
    out.append(", \"sum\": ");
    AppendDouble(hist.sum, &out);
    out.append(", \"min\": ");
    AppendDouble(hist.min, &out);
    out.append(", \"max\": ");
    AppendDouble(hist.max, &out);
    out.append(", \"buckets\": {");
    bool first_bucket = true;
    for (const auto& [exponent, n] : hist.buckets) {
      if (!first_bucket) out.append(", ");
      first_bucket = false;
      char buf[16];
      std::snprintf(buf, sizeof(buf), "\"%d\": ", exponent);
      out.append(buf);
      AppendU64(n, &out);
    }
    out.append("}}");
  }
  out.append(first ? "}" : "\n  }");
  out.append("\n}\n");
  return out;
}

void MetricsRegistry::Merge(const MetricsShard& shard) {
  MutexLock lock(mutex_);
  merged_.Merge(shard);
}

MetricsShard MetricsRegistry::Snapshot() const {
  MutexLock lock(mutex_);
  return merged_;
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(mutex_);
  return merged_.ToJson();
}

std::string MetricKey(std::string_view name, std::string_view label_csv) {
  std::string key;
  key.reserve(name.size() + label_csv.size() + 2);
  key.append(name);
  if (!label_csv.empty()) {
    key.push_back('{');
    key.append(label_csv);
    key.push_back('}');
  }
  return key;
}

}  // namespace dynvote
