#include "obs/binary_trace.h"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>
#include <utility>

#include "obs/async_writer.h"

namespace dynvote {
namespace {

// Records larger than this are rejected as corrupt rather than
// allocated: the biggest legitimate payload (a net event on a 64-site
// network, or a string definition) is a few hundred bytes.
constexpr std::uint64_t kMaxPayloadBytes = 1 << 20;

void AppendVarint(std::uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>(0x80 | (value & 0x7F)));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

std::int64_t UnZigZag(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

/// Cursor over one record payload; every read is bounds-checked so a
/// truncated or corrupt record decodes to a clean error.
struct PayloadCursor {
  std::string_view data;
  std::size_t pos = 0;

  bool ReadByte(std::uint8_t* out) {
    if (pos >= data.size()) return false;
    *out = static_cast<std::uint8_t>(data[pos++]);
    return true;
  }

  bool ReadVarint(std::uint64_t* out) {
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      std::uint8_t byte;
      if (!ReadByte(&byte)) return false;
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        *out = value;
        return true;
      }
    }
    return false;  // more than 10 continuation bytes: corrupt
  }

  bool ReadSigned(std::int64_t* out) {
    std::uint64_t raw;
    if (!ReadVarint(&raw)) return false;
    *out = UnZigZag(raw);
    return true;
  }

  bool ReadDoubleBits(double* out) {
    if (pos + 8 > data.size()) return false;
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(data[pos + i]))
              << (8 * i);
    }
    pos += 8;
    std::memcpy(out, &bits, sizeof(*out));
    return true;
  }

  bool AtEnd() const { return pos == data.size(); }
};

Status Corrupt(const char* what) {
  return Status::InvalidArgument(std::string("corrupt binary trace: ") +
                                 what);
}

}  // namespace

std::string BinaryTraceHeader(std::uint64_t seed) {
  std::string header(kBinaryTraceMagic, kBinaryTraceMagicSize);
  AppendVarint(std::strlen(kBinaryTraceSchema), &header);
  header.append(kBinaryTraceSchema);
  AppendVarint(seed, &header);
  return header;
}

bool LooksLikeBinaryTrace(std::istream& in) {
  return in.peek() ==
         static_cast<int>(static_cast<unsigned char>(kBinaryTraceMagic[0]));
}

// ---------------------------------------------------------------------
// Encoder

BinaryTraceSink::BinaryTraceSink(TracePageSink* pages,
                                 std::size_t page_bytes)
    : pages_(pages), page_bytes_(page_bytes == 0 ? 1 : page_bytes) {
  capacity_ = page_bytes_ + btrace::kCursorSlack;
  page_.resize(capacity_);
  ResetCursor();
}

void BinaryTraceSink::AppendFramed(std::string_view payload, bool is_event) {
  // Worst-case framing: a 10-byte length varint plus the payload.
  std::size_t need = payload.size() + 10;
  if (capacity_ - BufferUsed() < need) {
    EmitPage();
    if (capacity_ < need) {
      // A record larger than a whole page (cold: an oversized string
      // definition). Grow the empty buffer to fit it.
      capacity_ = need + btrace::kCursorSlack;
      page_.resize(capacity_);
      ResetCursor();
    }
  }
  char* p = btrace::PutVarint(payload.size(), cursor_);
  std::memcpy(p, payload.data(), payload.size());
  cursor_ = p + payload.size();
  if (is_event) ++events_in_page_;
  if (cursor_ >= fill_line_) EmitPage();
}

std::uint32_t BinaryTraceSink::InternString(std::string_view value) {
  auto it = interned_.find(value);
  if (it != interned_.end()) return it->second;
  auto id = static_cast<std::uint32_t>(interned_.size());
  interned_.emplace(std::string(value), id);
  // Definition record precedes the first event that references the id.
  scratch_.clear();
  scratch_.push_back(static_cast<char>(btrace::kRecordStringDef));
  AppendVarint(id, &scratch_);
  AppendVarint(value.size(), &scratch_);
  scratch_.append(value);
  AppendFramed(scratch_, /*is_event=*/false);
  return id;
}

std::uint32_t BinaryTraceSink::RegisterLabel(std::string_view label) {
  return InternString(label);
}

void BinaryTraceSink::Write(const TraceEvent& event) {
  CountEvent();
  if (!ok()) return;  // the page pipeline already failed; keep counting

  // Interning may emit definition records into the page first.
  std::uint32_t string_id = 0;
  switch (event.type) {
    case TraceEventType::kSim:
      string_id = InternString(event.op);
      break;
    case TraceEventType::kQuorum:
    case TraceEventType::kAccess:
    case TraceEventType::kAvail:
    case TraceEventType::kServing:
      string_id = InternString(event.protocol);
      break;
    case TraceEventType::kNet:
      break;
  }

  scratch_.clear();
  std::uint8_t flags = 0;
  if (event.repeater) flags |= btrace::kFlagRepeater;
  if (event.up) flags |= btrace::kFlagUp;
  if (event.write) flags |= btrace::kFlagWrite;
  if (event.granted) flags |= btrace::kFlagGranted;
  if (event.available) flags |= btrace::kFlagAvailable;
  std::uint8_t kind = 0;
  switch (event.type) {
    case TraceEventType::kNet:
      kind = btrace::kRecordNet;
      break;
    case TraceEventType::kSim:
      kind = btrace::kRecordSim;
      break;
    case TraceEventType::kQuorum:
      kind = btrace::kRecordQuorum;
      break;
    case TraceEventType::kAccess:
      kind = btrace::kRecordAccess;
      break;
    case TraceEventType::kAvail:
      kind = btrace::kRecordAvail;
      break;
    case TraceEventType::kServing:
      kind = btrace::kRecordServing;
      break;
  }
  // Same head logic (and same-instant state) as the typed fast paths, so
  // the two encodings stay byte-identical.
  char head[2 + 8 + 10 + 5];
  char* head_end =
      PutEventHead(kind, flags, event.t, event.seq, event.replication, head);
  scratch_.append(head, static_cast<std::size_t>(head_end - head));
  switch (event.type) {
    case TraceEventType::kNet:
      AppendVarint(btrace::ZigZag(event.site), &scratch_);
      AppendVarint(event.generation, &scratch_);
      AppendVarint(event.components.size(), &scratch_);
      for (std::uint64_t mask : event.components) {
        AppendVarint(mask, &scratch_);
      }
      break;
    case TraceEventType::kSim:
      AppendVarint(string_id, &scratch_);
      break;
    case TraceEventType::kQuorum:
      AppendVarint(string_id, &scratch_);
      scratch_.push_back(static_cast<char>(event.reason));
      AppendVarint(event.group, &scratch_);
      // Cache hits omit the paper sets, exactly as the JSONL form does.
      if (event.reason != QuorumReason::kCacheHit) {
        AppendVarint(event.set_r, &scratch_);
        AppendVarint(event.set_q, &scratch_);
        AppendVarint(event.set_s, &scratch_);
        AppendVarint(event.set_t, &scratch_);
        AppendVarint(event.set_pm, &scratch_);
      }
      break;
    case TraceEventType::kAccess:
      AppendVarint(string_id, &scratch_);
      scratch_.push_back(static_cast<char>(event.reason));
      AppendVarint(btrace::ZigZag(event.origin), &scratch_);
      break;
    case TraceEventType::kAvail:
      AppendVarint(string_id, &scratch_);
      break;
    case TraceEventType::kServing: {
      AppendVarint(string_id, &scratch_);
      AppendVarint(btrace::ZigZag(event.origin), &scratch_);
      // Raw IEEE-754 bits, like the timestamp, so conversion to JSONL
      // reproduces the direct %.17g rendering exactly.
      char bits[8];
      btrace::PutDoubleBits(event.latency_ms, bits);
      scratch_.append(bits, sizeof(bits));
      AppendVarint(event.msgs, &scratch_);
      AppendVarint(event.depth, &scratch_);
      break;
    }
  }
  AppendFramed(scratch_, /*is_event=*/true);
}

void BinaryTraceSink::EmitPage() {
  std::size_t used = BufferUsed();
  if (used == 0 && events_in_page_ == 0) return;
  // The accumulator itself is the handoff buffer: shrink to the encoded
  // length (no bytes move) and let the page sink consume or swap it.
  page_.resize(used);
  pages_->WritePage(&page_);
  if (pages_->ok()) {
    CountWritten(events_in_page_);
  } else {
    SetError(pages_->error());
  }
  events_in_page_ = 0;
  // WritePage left an empty (possibly recycled) buffer; size it back up
  // for the cursor. With a warm recycle pool this reuses capacity.
  if (page_.capacity() < capacity_) {
    page_ = std::string();  // don't copy bytes the resize will overwrite
    page_.reserve(capacity_);
  }
  page_.resize(capacity_);
  ResetCursor();
}

void BinaryTraceSink::Flush() {
  if (!ok()) return;
  EmitPage();
  pages_->Flush();  // may rethrow an async writer exception
  if (!pages_->ok()) SetError(pages_->error());
}

// ---------------------------------------------------------------------
// Decoder

Status BinaryTraceReader::ReadHeader() {
  char magic[kBinaryTraceMagicSize];
  in_->read(magic, kBinaryTraceMagicSize);
  if (in_->gcount() != static_cast<std::streamsize>(kBinaryTraceMagicSize) ||
      std::memcmp(magic, kBinaryTraceMagic, kBinaryTraceMagicSize) != 0) {
    return Status::InvalidArgument("not a binary trace (bad magic)");
  }
  // Schema string and seed use the same framing as record payloads.
  auto read_varint = [this](std::uint64_t* out) {
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      int c = in_->get();
      if (c == std::char_traits<char>::eof()) return false;
      value |= static_cast<std::uint64_t>(c & 0x7F) << shift;
      if ((c & 0x80) == 0) {
        *out = value;
        return true;
      }
    }
    return false;
  };
  std::uint64_t schema_len = 0;
  if (!read_varint(&schema_len) || schema_len > 256) {
    return Corrupt("header schema length");
  }
  schema_.resize(schema_len);
  in_->read(schema_.data(), static_cast<std::streamsize>(schema_len));
  if (in_->gcount() != static_cast<std::streamsize>(schema_len)) {
    return Corrupt("truncated header schema");
  }
  if (schema_ != kBinaryTraceSchema) {
    return Status::InvalidArgument("unsupported binary trace schema '" +
                                   schema_ + "' (expected " +
                                   kBinaryTraceSchema + ")");
  }
  if (!read_varint(&seed_)) return Corrupt("truncated header seed");
  return Status::OK();
}

Result<bool> BinaryTraceReader::Next(TraceEvent* event) {
  for (;;) {
    // Record length: clean EOF is only legal before its first byte.
    std::uint64_t payload_len = 0;
    {
      std::uint64_t value = 0;
      bool started = false;
      bool done = false;
      for (int shift = 0; shift < 64 && !done; shift += 7) {
        int c = in_->get();
        if (c == std::char_traits<char>::eof()) {
          if (!started) return false;  // end of trace at a record boundary
          return Corrupt("truncated record length");
        }
        started = true;
        value |= static_cast<std::uint64_t>(c & 0x7F) << shift;
        done = (c & 0x80) == 0;
      }
      if (!done) return Corrupt("record length overflow");
      payload_len = value;
    }
    if (payload_len == 0 || payload_len > kMaxPayloadBytes) {
      return Corrupt("implausible record length");
    }
    payload_.resize(payload_len);
    in_->read(payload_.data(), static_cast<std::streamsize>(payload_len));
    if (in_->gcount() != static_cast<std::streamsize>(payload_len)) {
      return Corrupt("truncated record payload");
    }
    bool is_event = false;
    Status st = DecodePayload(payload_, event, &is_event);
    if (!st.ok()) return st;
    if (is_event) {
      ++events_decoded_;
      return true;
    }
    // String definition: keep scanning for the next event record.
  }
}

Status BinaryTraceReader::DecodePayload(std::string_view payload,
                                        TraceEvent* event, bool* is_event) {
  PayloadCursor cur{payload};
  std::uint8_t kind = 0;
  if (!cur.ReadByte(&kind)) return Corrupt("empty record");

  if (kind == btrace::kRecordStringDef) {
    *is_event = false;
    std::uint64_t id = 0;
    std::uint64_t len = 0;
    if (!cur.ReadVarint(&id) || !cur.ReadVarint(&len) ||
        cur.pos + len != payload.size()) {
      return Corrupt("string definition");
    }
    // Sequential first-use ids; an existing id is a redefinition (a new
    // per-replication body starting its table over).
    if (id > strings_.size()) return Corrupt("string id out of order");
    std::string value(payload.substr(cur.pos, len));
    if (id == strings_.size()) {
      strings_.push_back(std::move(value));
    } else {
      strings_[id] = std::move(value);
    }
    return Status::OK();
  }

  *is_event = true;
  *event = TraceEvent();  // unserialized fields keep their defaults
  std::uint8_t flags = 0;
  if (!cur.ReadByte(&flags)) return Corrupt("event prefix");
  event->repeater = (flags & btrace::kFlagRepeater) != 0;
  event->up = (flags & btrace::kFlagUp) != 0;
  event->write = (flags & btrace::kFlagWrite) != 0;
  event->granted = (flags & btrace::kFlagGranted) != 0;
  event->available = (flags & btrace::kFlagAvailable) != 0;
  if ((flags & btrace::kFlagSameInstant) != 0) {
    // Head elided: this record shares the previous record's instant.
    if (!have_instant_) {
      return Corrupt("same-instant record with no predecessor");
    }
    event->t = last_t_;
    event->seq = last_seq_;
    event->replication = last_repl_;
  } else {
    if (!cur.ReadDoubleBits(&event->t) || !cur.ReadVarint(&event->seq)) {
      return Corrupt("event prefix");
    }
    if ((flags & btrace::kFlagHasReplication) != 0) {
      std::uint64_t rep = 0;
      if (!cur.ReadVarint(&rep) || rep > 0x7FFFFFFF) {
        return Corrupt("replication index");
      }
      event->replication = static_cast<int>(rep);
    }
    last_t_ = event->t;
    last_seq_ = event->seq;
    last_repl_ = event->replication;
    have_instant_ = true;
  }

  auto read_string = [&](std::string* out_protocol,
                         const char** out_op) -> bool {
    std::uint64_t id = 0;
    if (!cur.ReadVarint(&id) || id >= strings_.size()) return false;
    if (out_protocol != nullptr) *out_protocol = strings_[id];
    if (out_op != nullptr) *out_op = strings_[id].c_str();
    return true;
  };
  auto read_reason = [&](QuorumReason* out) -> bool {
    std::uint8_t raw = 0;
    if (!cur.ReadByte(&raw) || raw >= kNumQuorumReasons) return false;
    *out = static_cast<QuorumReason>(raw);
    return true;
  };

  switch (kind) {
    case btrace::kRecordNet: {
      event->type = TraceEventType::kNet;
      std::int64_t site = 0;
      std::uint64_t count = 0;
      if (!cur.ReadSigned(&site) || !cur.ReadVarint(&event->generation) ||
          !cur.ReadVarint(&count) || count > 64) {
        return Corrupt("net event");
      }
      event->site = static_cast<int>(site);
      event->components.resize(count);
      for (std::uint64_t& mask : event->components) {
        if (!cur.ReadVarint(&mask)) return Corrupt("net components");
      }
      break;
    }
    case btrace::kRecordSim: {
      event->type = TraceEventType::kSim;
      if (!read_string(nullptr, &event->op)) return Corrupt("sim op");
      break;
    }
    case btrace::kRecordQuorum: {
      event->type = TraceEventType::kQuorum;
      if (!read_string(&event->protocol, nullptr) ||
          !read_reason(&event->reason) || !cur.ReadVarint(&event->group)) {
        return Corrupt("quorum event");
      }
      if (event->reason != QuorumReason::kCacheHit &&
          (!cur.ReadVarint(&event->set_r) ||
           !cur.ReadVarint(&event->set_q) ||
           !cur.ReadVarint(&event->set_s) ||
           !cur.ReadVarint(&event->set_t) ||
           !cur.ReadVarint(&event->set_pm))) {
        return Corrupt("quorum sets");
      }
      break;
    }
    case btrace::kRecordAccess: {
      event->type = TraceEventType::kAccess;
      std::int64_t origin = 0;
      if (!read_string(&event->protocol, nullptr) ||
          !read_reason(&event->reason) || !cur.ReadSigned(&origin)) {
        return Corrupt("access event");
      }
      event->origin = static_cast<int>(origin);
      break;
    }
    case btrace::kRecordAvail: {
      event->type = TraceEventType::kAvail;
      if (!read_string(&event->protocol, nullptr)) {
        return Corrupt("avail event");
      }
      break;
    }
    case btrace::kRecordServing: {
      event->type = TraceEventType::kServing;
      std::int64_t origin = 0;
      std::uint64_t msgs = 0;
      std::uint64_t depth = 0;
      if (!read_string(&event->protocol, nullptr) ||
          !cur.ReadSigned(&origin) ||
          !cur.ReadDoubleBits(&event->latency_ms) ||
          !cur.ReadVarint(&msgs) || msgs > 0xFFFFFFFF ||
          !cur.ReadVarint(&depth) || depth > 0xFFFFFFFF) {
        return Corrupt("serving event");
      }
      event->origin = static_cast<int>(origin);
      event->msgs = static_cast<std::uint32_t>(msgs);
      event->depth = static_cast<std::uint32_t>(depth);
      break;
    }
    default:
      return Corrupt("unknown record kind");
  }
  if (!cur.AtEnd()) return Corrupt("trailing bytes in record");
  return Status::OK();
}

// ---------------------------------------------------------------------
// Conversion

Result<std::uint64_t> ConvertBinaryTraceToJsonl(std::istream& in,
                                                std::ostream& out) {
  BinaryTraceReader reader(&in);
  Status st = reader.ReadHeader();
  if (!st.ok()) return st;
  std::string line = TraceHeaderLine(reader.seed());
  line.push_back('\n');
  out.write(line.data(), static_cast<std::streamsize>(line.size()));
  TraceEvent event;
  for (;;) {
    auto more = reader.Next(&event);
    if (!more.ok()) return more.status();
    if (!*more) break;
    line.clear();
    AppendTraceEventJson(event, &line);
    line.push_back('\n');
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
    if (!out.good()) {
      return Status::Internal("JSONL output stream write failed");
    }
  }
  return reader.events_decoded();
}

}  // namespace dynvote
