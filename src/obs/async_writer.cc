#include "obs/async_writer.h"

#include <ostream>
#include <utility>

#include "util/logging.h"

namespace dynvote {

void StreamPageSink::WritePage(std::string* page) {
  if (error_.empty()) {
    out_->write(page->data(), static_cast<std::streamsize>(page->size()));
    if (out_->good()) {
      bytes_written_ += page->size();
    } else {
      error_ = "trace page write failed (disk full or unwritable path?)";
    }
  }
  page->clear();  // capacity retained for the producer to refill
}

void StreamPageSink::Flush() {
  if (!error_.empty()) return;
  out_->flush();
  if (!out_->good()) {
    error_ = "trace stream flush failed (disk full or unwritable path?)";
  }
}

AsyncTraceSink::AsyncTraceSink(TracePageSink* inner,
                               std::size_t max_queued_pages)
    : inner_(inner),
      max_queued_pages_(max_queued_pages == 0 ? 1 : max_queued_pages) {
  writer_ = std::thread([this] { WriterLoop(); });
}

AsyncTraceSink::~AsyncTraceSink() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  page_ready_.NotifyAll();
  writer_.join();  // the writer drains the queue before exiting
  std::exception_ptr uncollected;
  {
    MutexLock lock(mutex_);
    uncollected = std::exchange(writer_exception_, nullptr);
  }
  if (uncollected) {
    DYNVOTE_LOG(Warning)
        << "AsyncTraceSink destroyed with an uncollected writer "
           "exception; call Flush() to observe writer failures";
  }
}

void AsyncTraceSink::WritePage(std::string* page) {
  std::string recycled;
  {
    MutexLock lock(mutex_);
    ++pages_accepted_;
    // Back-pressure: never queue more than max_queued_pages_ — but once
    // the writer has failed there is nothing left to wait for, so drop
    // instead of blocking on a queue that may never drain.
    while (queue_.size() >= max_queued_pages_ && error_.empty() &&
           writer_exception_ == nullptr) {
      page_drained_.Wait(mutex_);
    }
    if (error_.empty() && writer_exception_ == nullptr) {
      if (!recycled_.empty()) {
        recycled = std::move(recycled_.back());
        recycled_.pop_back();
      }
      queue_.push_back(std::move(*page));
    }
  }
  page_ready_.NotifyOne();
  // Hand a drained buffer (with its capacity) back to the producer.
  recycled.clear();
  *page = std::move(recycled);
}

void AsyncTraceSink::Flush() {
  std::exception_ptr pending;
  std::deque<std::string> stolen;
  {
    MutexLock lock(mutex_);
    // Idle-writer fast path: steal the queued pages and write them
    // inline below instead of paying a wake-and-wait round trip. The
    // writer only touches inner_ while writer_busy_, and with the queue
    // emptied it stays parked, so the producer owns inner_ here.
    if (!writer_busy_ && writer_exception_ == nullptr && error_.empty()) {
      stolen.swap(queue_);
    }
    while (!queue_.empty() || writer_busy_) {
      page_drained_.Wait(mutex_);
    }
    pending = std::exchange(writer_exception_, nullptr);
  }
  if (pending) std::rethrow_exception(pending);
  // The queue is empty, the writer is idle, and the producer (our
  // caller) is here — nobody else can touch inner_ right now.
  for (std::string& page : stolen) {
    inner_->WritePage(&page);
  }
  inner_->Flush();
  if (!inner_->ok()) {
    // Read the sink's error before taking the lock: no virtual
    // dispatch inside the critical section (lock-hygiene).
    std::string err = inner_->error();
    MutexLock lock(mutex_);
    if (error_.empty()) error_ = std::move(err);
  }
  if (!stolen.empty()) {
    MutexLock lock(mutex_);
    while (!stolen.empty() && recycled_.size() < max_queued_pages_) {
      stolen.back().clear();
      recycled_.push_back(std::move(stolen.back()));
      stolen.pop_back();
    }
  }
}

bool AsyncTraceSink::ok() const {
  MutexLock lock(mutex_);
  return error_.empty();
}

std::string AsyncTraceSink::error() const {
  MutexLock lock(mutex_);
  return error_;
}

std::uint64_t AsyncTraceSink::pages_accepted() const {
  MutexLock lock(mutex_);
  return pages_accepted_;
}

void AsyncTraceSink::WriterLoop() {
  std::string page;
  for (;;) {
    {
      MutexLock lock(mutex_);
      writer_busy_ = false;
      page_drained_.NotifyAll();
      while (queue_.empty() && !shutting_down_) {
        page_ready_.Wait(mutex_);
      }
      if (queue_.empty()) return;  // shutting down and fully drained
      page = std::move(queue_.front());
      queue_.pop_front();
      writer_busy_ = true;
    }
    try {
      inner_->WritePage(&page);
      if (!inner_->ok()) {
        // Read the sink's error before taking the lock: no virtual
        // dispatch inside the critical section (lock-hygiene).
        std::string err = inner_->error();
        MutexLock lock(mutex_);
        if (error_.empty()) error_ = std::move(err);
      }
    } catch (...) {
      MutexLock lock(mutex_);
      if (writer_exception_ == nullptr) {
        writer_exception_ = std::current_exception();
      }
    }
    {
      MutexLock lock(mutex_);
      // Keep a bounded pool of drained buffers for producer reuse.
      if (recycled_.size() < max_queued_pages_) {
        page.clear();
        recycled_.push_back(std::move(page));
      }
    }
    page = std::string();
  }
}

}  // namespace dynvote
