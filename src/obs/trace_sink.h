// Where trace events go. Implementations: an in-memory ring (cheap,
// bounded, for tests and the overhead probe), a JSONL writer (one event
// per line in the dynvote-trace-v1 schema) and the binary writer in
// binary_trace.h (dynvote-btrace-v1). Emission sites hold a TraceSink*
// behind ObsContext and test it for null — that single branch is the
// entire disabled-tracing cost.

#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace_event.h"

namespace dynvote {

class TraceSink {
 public:
  TraceSink();  // claims a fresh label epoch
  virtual ~TraceSink() = default;

  /// Records one event. Called synchronously from the simulation thread
  /// that owns the sink; sinks are single-writer and need no locking.
  virtual void Write(const TraceEvent& event) = 0;

  // --- Typed fast paths ------------------------------------------------
  // One emitter per high-rate event kind. Each call is equivalent to
  // filling a TraceEvent with the same fields and passing it to Write()
  // — that is exactly what the default implementations do, so buffering
  // sinks behave as if the caller had built the event — but a
  // serializing sink (BinaryTraceSink) overrides them to encode straight
  // from the arguments, skipping the event object on the hot path.
  // `protocol` must reference storage that outlives the call (emission
  // sites pass the protocol object's own name string); `op` must be a
  // static label, as on TraceEvent::op. `label` is the RegisterLabel()
  // token for that same string — emission sites keep it in a
  // TraceLabelCache so a serializing sink never re-interns per event.

  virtual void WriteSim(double t, std::uint64_t seq, int replication,
                        const char* op, std::uint32_t label);
  virtual void WriteQuorum(double t, std::uint64_t seq, int replication,
                           const std::string& protocol, std::uint32_t label,
                           bool write, bool granted, QuorumReason reason,
                           const QuorumSetMasks& sets);
  virtual void WriteAccess(double t, std::uint64_t seq, int replication,
                           const std::string& protocol, std::uint32_t label,
                           bool write, bool granted, QuorumReason reason,
                           int origin);
  virtual void WriteAvail(double t, std::uint64_t seq, int replication,
                          const std::string& protocol, std::uint32_t label,
                          bool available);

  /// Declares a recurring string (a protocol name, a sim op) ahead of the
  /// typed writes that reference it, returning the token to pass as their
  /// `label`. A serializing sink interns the string once here; sinks that
  /// carry the string by value ignore labels entirely and return 0.
  /// Tokens are only meaningful on the sink that issued them — callers
  /// detect a different (or reconstructed) sink via label_epoch() and
  /// re-register, which TraceLabelCache packages up.
  virtual std::uint32_t RegisterLabel(std::string_view label);

  /// Identity of this sink's label space: process-unique, never reused
  /// across sink lifetimes. A cached label is valid iff the epoch it was
  /// issued under still matches.
  std::uint64_t label_epoch() const { return label_epoch_; }

  /// Which devirtualized fast path this sink supports. Only the (final)
  /// BinaryTraceSink returns kBinary; emission sites cache the answer
  /// next to their label epoch and static_cast to call its inline typed
  /// writes directly, skipping the virtual dispatch on every event of
  /// the per-access hot path. No other class may return kBinary.
  enum class FastPath : unsigned char { kGeneric, kBinary };
  virtual FastPath fast_path() const { return FastPath::kGeneric; }

  /// Completes any buffered or asynchronous work so every durably
  /// written event is visible at the destination. May surface deferred
  /// writer errors (error state, or a rethrown writer-thread exception
  /// for the async pipeline). Default: nothing buffered, nothing to do.
  virtual void Flush() {}

  /// Total events offered to the sink over its lifetime (including any
  /// a bounded sink has since evicted).
  std::uint64_t total_events() const { return total_events_; }

  /// Events the sink actually delivered to its destination. On a healthy
  /// sink this equals total_events() once Flush() returns; a smaller
  /// value together with a non-empty error() means the trace tail was
  /// silently lost (failed stream, full disk) and the file on disk is
  /// shorter than the run's event count.
  std::uint64_t events_written() const { return events_written_; }

  /// False once a write failed; the sink stops writing (but keeps
  /// counting offered events) so a full disk cannot busy-loop the run.
  bool ok() const { return error_.empty(); }

  /// First failure message ("" while ok()).
  const std::string& error() const { return error_; }

 protected:
  void CountEvent() { ++total_events_; }
  void CountWritten(std::uint64_t n = 1) { events_written_ += n; }

  /// Records the first failure; later calls keep the original message.
  void SetError(std::string message) {
    if (error_.empty()) error_ = std::move(message);
  }

 private:
  std::uint64_t total_events_ = 0;
  std::uint64_t events_written_ = 0;
  std::uint64_t label_epoch_;  // assigned at construction, see trace_sink.cc
  std::string error_;
};

/// Caller-side slot for one recurring label's RegisterLabel() token.
/// Emission sites keep one per label (a mutable member next to the string
/// it names) and call Resolve() with the current sink on every event: a
/// matching epoch is two loads and a compare, a mismatch — first use, or
/// a different sink since the last event — re-registers. Epochs are
/// process-unique, so a stale token can never leak across sinks, even
/// when a new sink is allocated where a destroyed one lived.
struct TraceLabelCache {
  std::uint64_t epoch = 0;  // 0: never registered (real epochs start at 1)
  std::uint32_t id = 0;
  /// Cached `sink->fast_path() == kBinary`, refreshed with the epoch, so
  /// the per-event devirtualization test is a plain flag load.
  bool binary = false;

  std::uint32_t Resolve(TraceSink* sink, std::string_view label) {
    if (sink->label_epoch() != epoch) {
      id = sink->RegisterLabel(label);
      epoch = sink->label_epoch();
      binary = sink->fast_path() == TraceSink::FastPath::kBinary;
    }
    return id;
  }

  /// True when `sink` is the BinaryTraceSink this cache last resolved
  /// against: `id` is valid for it, so the emission site may call the
  /// sink's non-virtual typed encoders directly — without recomputing
  /// the label string, which on the protocol hot path means skipping a
  /// virtual name() call per event. A mismatch (first event, or a new
  /// sink since) falls back to Resolve() + the virtual write, which
  /// also primes this fast path for the next event.
  bool BinaryHit(const TraceSink* sink) const {
    return binary && epoch == sink->label_epoch();
  }
};

/// Bounded in-memory sink: keeps the most recent `capacity` events in a
/// preallocated ring. Slots are reused by assignment, so after warmup a
/// Write() performs no heap allocation — the slot's `components` vector
/// (and the SSO protocol string) retain their capacity across reuse.
class RingTraceSink : public TraceSink {
 public:
  explicit RingTraceSink(std::size_t capacity = 4096)
      : capacity_(capacity), slots_(capacity) {}

  void Write(const TraceEvent& event) override;

  /// Buffered events, oldest first. Copies out of the ring — intended
  /// for tests and post-run inspection, never the emission hot path.
  std::vector<TraceEvent> events() const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }

  /// Forgets the buffered events (slot storage is retained) but not the
  /// lifetime counters.
  void Clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> slots_;  // fixed at capacity; reused in place
  std::size_t head_ = 0;           // next slot to overwrite
  std::size_t size_ = 0;           // occupied slots (<= capacity_)
};

/// Serializes each event as one JSON object per line (dynvote-trace-v1).
/// The stream is borrowed, not owned. A stream failure (ENOSPC, closed
/// pipe, unwritable path) is sticky: the sink records the error, stops
/// writing, and the lost tail shows up as events_written() falling short
/// of total_events().
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream* out) : out_(out) {}

  void Write(const TraceEvent& event) override;
  void Flush() override;

 private:
  std::ostream* out_;
  std::string line_;  // reused between events to avoid reallocation
};

/// Renders one event in the dynvote-trace-v1 JSONL form (no trailing
/// newline). Appends to `out` so callers can reuse a buffer.
void AppendTraceEventJson(const TraceEvent& event, std::string* out);

/// The JSONL header line identifying the schema; written once at the top
/// of a trace file, before any events.
std::string TraceHeaderLine(std::uint64_t seed);

}  // namespace dynvote
