// Where trace events go. Two implementations: an in-memory ring (cheap,
// bounded, for tests and the overhead probe) and a JSONL writer (one
// event per line in the dynvote-trace-v1 schema). Emission sites hold a
// TraceSink* behind ObsContext and test it for null — that single branch
// is the entire disabled-tracing cost.

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>

#include "obs/trace_event.h"

namespace dynvote {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Records one event. Called synchronously from the simulation thread
  /// that owns the sink; sinks are single-writer and need no locking.
  virtual void Write(const TraceEvent& event) = 0;

  /// Total events offered to the sink over its lifetime (including any
  /// a bounded sink has since evicted).
  std::uint64_t total_events() const { return total_events_; }

 protected:
  void CountEvent() { ++total_events_; }

 private:
  std::uint64_t total_events_ = 0;
};

/// Bounded in-memory sink: keeps the most recent `capacity` events.
class RingTraceSink : public TraceSink {
 public:
  explicit RingTraceSink(std::size_t capacity = 4096) : capacity_(capacity) {}

  void Write(const TraceEvent& event) override;

  const std::deque<TraceEvent>& events() const { return events_; }
  std::size_t capacity() const { return capacity_; }
  void Clear() { events_.clear(); }

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
};

/// Serializes each event as one JSON object per line (dynvote-trace-v1).
/// The stream is borrowed, not owned.
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream* out) : out_(out) {}

  void Write(const TraceEvent& event) override;

 private:
  std::ostream* out_;
  std::string line_;  // reused between events to avoid reallocation
};

/// Renders one event in the dynvote-trace-v1 JSONL form (no trailing
/// newline). Appends to `out` so callers can reuse a buffer.
void AppendTraceEventJson(const TraceEvent& event, std::string* out);

/// The JSONL header line identifying the schema; written once at the top
/// of a trace file, before any events.
std::string TraceHeaderLine(std::uint64_t seed);

}  // namespace dynvote
