#include "obs/trace_sink.h"

#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace dynvote {
namespace {

// %.17g round-trips every double, so traced and untraced runs (and
// traced runs on different thread counts) stay byte-comparable.
void AppendDouble(double value, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

void AppendU64(std::uint64_t value, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out->append(buf);
}

void AppendInt(int value, std::string* out) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", value);
  out->append(buf);
}

void AppendBool(bool value, std::string* out) {
  out->append(value ? "true" : "false");
}

// Protocol names and op labels are plain identifiers; escape anyway so a
// hostile name cannot corrupt the line structure.
void AppendJsonString(std::string_view value, std::string* out) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void AppendTraceEventJson(const TraceEvent& event, std::string* out) {
  out->append("{\"ev\":");
  AppendJsonString(TraceEventTypeName(event.type), out);
  out->append(",\"t\":");
  AppendDouble(event.t, out);
  if (event.replication >= 0) {
    out->append(",\"rep\":");
    AppendInt(event.replication, out);
  }
  out->append(",\"seq\":");
  AppendU64(event.seq, out);
  switch (event.type) {
    case TraceEventType::kNet: {
      out->append(event.repeater ? ",\"repeater\":" : ",\"site\":");
      AppendInt(event.site, out);
      out->append(",\"up\":");
      AppendBool(event.up, out);
      out->append(",\"gen\":");
      AppendU64(event.generation, out);
      out->append(",\"components\":[");
      for (std::size_t i = 0; i < event.components.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendU64(event.components[i], out);
      }
      out->push_back(']');
      break;
    }
    case TraceEventType::kSim: {
      out->append(",\"op\":");
      AppendJsonString(event.op, out);
      break;
    }
    case TraceEventType::kQuorum: {
      out->append(",\"protocol\":");
      AppendJsonString(event.protocol, out);
      out->append(",\"write\":");
      AppendBool(event.write, out);
      out->append(",\"granted\":");
      AppendBool(event.granted, out);
      out->append(",\"reason\":");
      AppendJsonString(QuorumReasonName(event.reason), out);
      out->append(",\"group\":");
      AppendU64(event.group, out);
      // The paper's quorum sets, only present for fresh evaluations
      // (cache hits have nothing new to report beyond the group).
      if (event.reason != QuorumReason::kCacheHit) {
        out->append(",\"R\":");
        AppendU64(event.set_r, out);
        out->append(",\"Q\":");
        AppendU64(event.set_q, out);
        out->append(",\"S\":");
        AppendU64(event.set_s, out);
        out->append(",\"T\":");
        AppendU64(event.set_t, out);
        out->append(",\"Pm\":");
        AppendU64(event.set_pm, out);
      }
      break;
    }
    case TraceEventType::kAccess: {
      out->append(",\"protocol\":");
      AppendJsonString(event.protocol, out);
      out->append(",\"write\":");
      AppendBool(event.write, out);
      out->append(",\"origin\":");
      AppendInt(event.origin, out);
      out->append(",\"granted\":");
      AppendBool(event.granted, out);
      out->append(",\"reason\":");
      AppendJsonString(QuorumReasonName(event.reason), out);
      break;
    }
    case TraceEventType::kAvail: {
      out->append(",\"protocol\":");
      AppendJsonString(event.protocol, out);
      out->append(",\"available\":");
      AppendBool(event.available, out);
      break;
    }
  }
  out->push_back('}');
}

std::string TraceHeaderLine(std::uint64_t seed) {
  std::string line = "{\"schema\":\"";
  line += kTraceSchema;
  line += "\",\"seed\":";
  AppendU64(seed, &line);
  line.push_back('}');
  return line;
}

void RingTraceSink::Write(const TraceEvent& event) {
  CountEvent();
  if (capacity_ == 0) return;
  if (events_.size() == capacity_) events_.pop_front();
  events_.push_back(event);
}

void JsonlTraceSink::Write(const TraceEvent& event) {
  CountEvent();
  line_.clear();
  AppendTraceEventJson(event, &line_);
  line_.push_back('\n');
  *out_ << line_;
}

}  // namespace dynvote
