#include "obs/trace_sink.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace dynvote {
namespace {

// %.17g round-trips every double, so traced and untraced runs (and
// traced runs on different thread counts) stay byte-comparable.
void AppendDouble(double value, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

void AppendU64(std::uint64_t value, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out->append(buf);
}

void AppendInt(int value, std::string* out) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", value);
  out->append(buf);
}

void AppendBool(bool value, std::string* out) {
  out->append(value ? "true" : "false");
}

// Protocol names and op labels are plain identifiers; escape anyway so a
// hostile name cannot corrupt the line structure.
void AppendJsonString(std::string_view value, std::string* out) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

TraceSink::TraceSink() {
  // Label epochs are handed out from a process-wide counter so no two
  // sinks — however allocated — ever share one. Atomic: worker threads
  // construct per-replication sinks concurrently.
  static std::atomic<std::uint64_t> next_epoch{1};
  label_epoch_ = next_epoch.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t TraceSink::RegisterLabel(std::string_view label) {
  // Sinks without a string table have nothing to intern; the typed
  // writes they inherit carry the string itself.
  (void)label;
  return 0;
}

// --- Typed fast paths: default implementations -------------------------
// Materialize the equivalent TraceEvent and forward to Write(), so every
// sink that does not override these behaves exactly as if the emission
// site had built the event itself.

void TraceSink::WriteSim(double t, std::uint64_t seq, int replication,
                         const char* op, std::uint32_t /*label*/) {
  TraceEvent event;
  event.type = TraceEventType::kSim;
  event.t = t;
  event.replication = replication;
  event.seq = seq;
  event.op = op;
  Write(event);
}

void TraceSink::WriteQuorum(double t, std::uint64_t seq, int replication,
                            const std::string& protocol,
                            std::uint32_t /*label*/, bool write, bool granted,
                            QuorumReason reason, const QuorumSetMasks& sets) {
  TraceEvent event;
  event.type = TraceEventType::kQuorum;
  event.t = t;
  event.replication = replication;
  event.seq = seq;
  event.protocol = protocol;
  event.write = write;
  event.granted = granted;
  event.reason = reason;
  event.group = sets.group;
  event.set_r = sets.r;
  event.set_q = sets.q;
  event.set_s = sets.s;
  event.set_t = sets.t;
  event.set_pm = sets.pm;
  Write(event);
}

void TraceSink::WriteAccess(double t, std::uint64_t seq, int replication,
                            const std::string& protocol,
                            std::uint32_t /*label*/, bool write, bool granted,
                            QuorumReason reason, int origin) {
  TraceEvent event;
  event.type = TraceEventType::kAccess;
  event.t = t;
  event.replication = replication;
  event.seq = seq;
  event.protocol = protocol;
  event.write = write;
  event.origin = origin;
  event.granted = granted;
  event.reason = reason;
  Write(event);
}

void TraceSink::WriteAvail(double t, std::uint64_t seq, int replication,
                           const std::string& protocol,
                           std::uint32_t /*label*/, bool available) {
  TraceEvent event;
  event.type = TraceEventType::kAvail;
  event.t = t;
  event.replication = replication;
  event.seq = seq;
  event.protocol = protocol;
  event.available = available;
  Write(event);
}

void AppendTraceEventJson(const TraceEvent& event, std::string* out) {
  out->append("{\"ev\":");
  AppendJsonString(TraceEventTypeName(event.type), out);
  out->append(",\"t\":");
  AppendDouble(event.t, out);
  if (event.replication >= 0) {
    out->append(",\"rep\":");
    AppendInt(event.replication, out);
  }
  out->append(",\"seq\":");
  AppendU64(event.seq, out);
  switch (event.type) {
    case TraceEventType::kNet: {
      out->append(event.repeater ? ",\"repeater\":" : ",\"site\":");
      AppendInt(event.site, out);
      out->append(",\"up\":");
      AppendBool(event.up, out);
      out->append(",\"gen\":");
      AppendU64(event.generation, out);
      out->append(",\"components\":[");
      for (std::size_t i = 0; i < event.components.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendU64(event.components[i], out);
      }
      out->push_back(']');
      break;
    }
    case TraceEventType::kSim: {
      out->append(",\"op\":");
      AppendJsonString(event.op, out);
      break;
    }
    case TraceEventType::kQuorum: {
      out->append(",\"protocol\":");
      AppendJsonString(event.protocol, out);
      out->append(",\"write\":");
      AppendBool(event.write, out);
      out->append(",\"granted\":");
      AppendBool(event.granted, out);
      out->append(",\"reason\":");
      AppendJsonString(QuorumReasonName(event.reason), out);
      out->append(",\"group\":");
      AppendU64(event.group, out);
      // The paper's quorum sets, only present for fresh evaluations
      // (cache hits have nothing new to report beyond the group).
      if (event.reason != QuorumReason::kCacheHit) {
        out->append(",\"R\":");
        AppendU64(event.set_r, out);
        out->append(",\"Q\":");
        AppendU64(event.set_q, out);
        out->append(",\"S\":");
        AppendU64(event.set_s, out);
        out->append(",\"T\":");
        AppendU64(event.set_t, out);
        out->append(",\"Pm\":");
        AppendU64(event.set_pm, out);
      }
      break;
    }
    case TraceEventType::kAccess: {
      out->append(",\"protocol\":");
      AppendJsonString(event.protocol, out);
      out->append(",\"write\":");
      AppendBool(event.write, out);
      out->append(",\"origin\":");
      AppendInt(event.origin, out);
      out->append(",\"granted\":");
      AppendBool(event.granted, out);
      out->append(",\"reason\":");
      AppendJsonString(QuorumReasonName(event.reason), out);
      break;
    }
    case TraceEventType::kAvail: {
      out->append(",\"protocol\":");
      AppendJsonString(event.protocol, out);
      out->append(",\"available\":");
      AppendBool(event.available, out);
      break;
    }
    case TraceEventType::kServing: {
      out->append(",\"protocol\":");
      AppendJsonString(event.protocol, out);
      out->append(",\"write\":");
      AppendBool(event.write, out);
      out->append(",\"origin\":");
      AppendInt(event.origin, out);
      out->append(",\"granted\":");
      AppendBool(event.granted, out);
      out->append(",\"lat_ms\":");
      AppendDouble(event.latency_ms, out);
      out->append(",\"msgs\":");
      AppendU64(event.msgs, out);
      out->append(",\"depth\":");
      AppendU64(event.depth, out);
      break;
    }
  }
  out->push_back('}');
}

std::string TraceHeaderLine(std::uint64_t seed) {
  std::string line = "{\"schema\":\"";
  line += kTraceSchema;
  line += "\",\"seed\":";
  AppendU64(seed, &line);
  line.push_back('}');
  return line;
}

void RingTraceSink::Write(const TraceEvent& event) {
  CountEvent();
  if (capacity_ == 0) return;
  // Assign into the preallocated slot: the slot's components vector and
  // protocol string keep their capacity, so steady-state writes are
  // allocation-free (the former push_back path deep-copied the event
  // into a fresh deque node on every call).
  slots_[head_] = event;
  head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
  if (size_ < capacity_) ++size_;
  CountWritten();
}

std::vector<TraceEvent> RingTraceSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // head_ is the oldest slot exactly when the ring is full; otherwise
  // the ring has never wrapped and slot 0 is the oldest.
  std::size_t first = size_ == capacity_ ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(slots_[(first + i) % capacity_]);
  }
  return out;
}

void JsonlTraceSink::Write(const TraceEvent& event) {
  CountEvent();
  if (!ok()) return;  // the stream already failed; drop, but keep counting
  line_.clear();
  AppendTraceEventJson(event, &line_);
  line_.push_back('\n');
  out_->write(line_.data(),
              static_cast<std::streamsize>(line_.size()));
  if (!out_->good()) {
    SetError("trace stream write failed (disk full or unwritable path?)");
    return;
  }
  CountWritten();
}

void JsonlTraceSink::Flush() {
  if (!ok()) return;
  out_->flush();
  if (!out_->good()) {
    SetError("trace stream flush failed (disk full or unwritable path?)");
  }
}

}  // namespace dynvote
