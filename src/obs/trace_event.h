// One typed record per observable occurrence in a run. A single struct
// (rather than a class hierarchy) keeps emission allocation-free on the
// ring-buffer path and lets sinks switch on `type` without RTTI; fields
// not meaningful for a given type keep their defaults and are omitted
// from the JSONL form.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/reason.h"

namespace dynvote {

/// Trace schema identifier written into every trace header and checked
/// by the reader; bump when the JSONL field set changes incompatibly.
inline constexpr const char kTraceSchema[] = "dynvote-trace-v1";

enum class TraceEventType : std::uint8_t {
  /// A site or repeater changed state and the component partition moved.
  kNet = 0,
  /// The simulator dispatched a scheduled event.
  kSim,
  /// A protocol evaluated a quorum for one group of communicating sites.
  kQuorum,
  /// A whole user access (possibly probing several groups) completed.
  kAccess,
  /// The tracked availability status flipped.
  kAvail,
  /// An open-loop serving arrival finished its queueing stage: carries
  /// the arrival-to-completion latency and the per-access message count
  /// (see model/open_loop.h and docs/serving.md).
  kServing,
};

constexpr const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kNet:
      return "net";
    case TraceEventType::kSim:
      return "sim";
    case TraceEventType::kQuorum:
      return "quorum";
    case TraceEventType::kAccess:
      return "access";
    case TraceEventType::kAvail:
      return "avail";
    case TraceEventType::kServing:
      return "serving";
  }
  return "?";
}

struct TraceEvent {
  TraceEventType type = TraceEventType::kSim;
  /// Simulation time of the event.
  double t = 0.0;
  /// Replication index (-1 outside replicated runs).
  int replication = -1;
  /// Simulator dispatch sequence number active when the event fired.
  std::uint64_t seq = 0;

  // --- net ---
  /// Site or repeater id that flipped (-1 when not applicable).
  int site = -1;
  /// True if the flip target is a repeater, not a site.
  bool repeater = false;
  bool up = false;
  /// NetworkState::generation() after the flip.
  std::uint64_t generation = 0;
  /// Component partition after the flip, one site mask per component.
  std::vector<std::uint64_t> components;

  // --- sim ---
  /// Static label of the dispatched event kind (e.g. "site_repair").
  const char* op = "";

  // --- quorum / access ---
  /// Protocol name (SSO-sized in practice: "MCV", "LDV", "OTDV", ...).
  std::string protocol;
  /// True for writes, false for reads.
  bool write = false;
  /// Originating site of the access (-1 when not applicable).
  int origin = -1;
  bool granted = false;
  QuorumReason reason = QuorumReason::kDeniedNoCopies;
  /// Quorum-evaluation site sets (masks): the probed group, reachable
  /// copies R, highest-operation set Q, current set S, counted set T,
  /// previous majority block Pm. Zero when not populated.
  std::uint64_t group = 0;
  std::uint64_t set_r = 0;
  std::uint64_t set_q = 0;
  std::uint64_t set_s = 0;
  std::uint64_t set_t = 0;
  std::uint64_t set_pm = 0;

  // --- avail ---
  bool available = false;

  // --- serving ---
  /// Arrival-to-completion latency of the serving stage, milliseconds.
  double latency_ms = 0.0;
  /// Control messages the protocol sent for this one access.
  std::uint32_t msgs = 0;
  /// Requests already queued at the arrival replica when this one arrived.
  std::uint32_t depth = 0;
};

/// The site-set masks of one quorum evaluation, bundled so the typed
/// TraceSink::WriteQuorum fast path stays a readable signature. Masks a
/// decision did not populate stay zero (a cache hit carries only
/// `group`).
struct QuorumSetMasks {
  std::uint64_t group = 0;
  std::uint64_t r = 0;
  std::uint64_t q = 0;
  std::uint64_t s = 0;
  std::uint64_t t = 0;
  std::uint64_t pm = 0;
};

}  // namespace dynvote
