// Page-level output plumbing for high-rate trace serialization. A
// serializing sink (BinaryTraceSink in binary_trace.h) fills fixed-size
// in-memory pages and hands each completed page to a TracePageSink:
// either the synchronous StreamPageSink, or AsyncTraceSink — a decorator
// that queues completed pages to a dedicated writer thread so file I/O
// overlaps simulation. The queue is bounded: when the writer falls
// behind, the producer blocks (back-pressure) instead of buffering
// unbounded memory, and drained page buffers are recycled back to the
// producer so the steady state runs allocation-free (double buffering).
//
// Error contract, mirroring ThreadPool: a writer-thread exception is
// captured and rethrown at the next Flush(); a destructor that never saw
// that Flush() logs and drops it. Stream-level failures (ENOSPC) are not
// exceptions — they surface as sticky ok()/error() state the CLI checks
// after every traced run.

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <iosfwd>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace dynvote {

/// Destination for completed trace pages (opaque byte blocks).
/// Single-producer: WritePage/Flush are called from the one thread that
/// owns the serializing sink.
class TracePageSink {
 public:
  virtual ~TracePageSink() = default;

  /// Consumes *page's bytes and leaves *page empty — possibly swapping
  /// in a recycled buffer whose capacity the caller should reuse. May
  /// block (back-pressure). After a failure, pages are accepted and
  /// dropped so producers never wedge on a dead writer.
  virtual void WritePage(std::string* page) = 0;

  /// Blocks until every accepted page reached the underlying stream,
  /// then flushes it. Rethrows a captured writer-thread exception, if
  /// any (the slot is cleared, like ThreadPool::Wait).
  virtual void Flush() = 0;

  /// False once any page failed to reach the destination.
  virtual bool ok() const = 0;

  /// First failure message ("" while ok()). By value: the async
  /// implementation reads it under its lock.
  virtual std::string error() const = 0;
};

/// Synchronous TracePageSink writing straight to a borrowed std::ostream.
class StreamPageSink final : public TracePageSink {
 public:
  explicit StreamPageSink(std::ostream* out) : out_(out) {}

  void WritePage(std::string* page) override;
  void Flush() override;
  bool ok() const override { return error_.empty(); }
  std::string error() const override { return error_; }

  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::ostream* out_;
  std::string error_;
  std::uint64_t bytes_written_ = 0;
};

/// Decorator that moves another TracePageSink's writes onto a dedicated
/// writer thread. WritePage() enqueues the page (blocking while
/// `max_queued_pages` are already pending) and swaps a drained buffer
/// back to the producer; the writer thread forwards pages to the inner
/// sink in order. Flush() drains the queue, flushes the inner sink and
/// rethrows any captured writer exception. The destructor drains and
/// joins; an uncollected exception is logged and dropped.
class AsyncTraceSink final : public TracePageSink {
 public:
  explicit AsyncTraceSink(TracePageSink* inner,
                          std::size_t max_queued_pages = 4);
  ~AsyncTraceSink() override;

  AsyncTraceSink(const AsyncTraceSink&) = delete;
  AsyncTraceSink& operator=(const AsyncTraceSink&) = delete;

  void WritePage(std::string* page) override DYNVOTE_EXCLUDES(mutex_);
  void Flush() override DYNVOTE_EXCLUDES(mutex_);
  bool ok() const override DYNVOTE_EXCLUDES(mutex_);
  std::string error() const override DYNVOTE_EXCLUDES(mutex_);

  /// Pages accepted over the sink's lifetime (including any dropped
  /// after a failure).
  std::uint64_t pages_accepted() const DYNVOTE_EXCLUDES(mutex_);

 private:
  void WriterLoop() DYNVOTE_EXCLUDES(mutex_);

  // Touched only by the writer thread, and by Flush() once the queue is
  // provably empty and the writer is idle — thread-confined, not
  // lock-guarded (proof: tier-1 TSan job runs the obs thread tests).
  // dynvote-lint: allow(guarded-by)
  TracePageSink* inner_;
  const std::size_t max_queued_pages_;

  mutable Mutex mutex_;
  CondVar page_ready_;    // signals the writer: work or shutdown
  CondVar page_drained_;  // signals producers: queue space / all done
  std::deque<std::string> queue_ DYNVOTE_GUARDED_BY(mutex_);
  std::vector<std::string> recycled_ DYNVOTE_GUARDED_BY(mutex_);
  bool writer_busy_ DYNVOTE_GUARDED_BY(mutex_) = false;
  bool shutting_down_ DYNVOTE_GUARDED_BY(mutex_) = false;
  std::string error_ DYNVOTE_GUARDED_BY(mutex_);
  /// First exception the writer thread threw since the last Flush().
  std::exception_ptr writer_exception_ DYNVOTE_GUARDED_BY(mutex_);
  std::uint64_t pages_accepted_ DYNVOTE_GUARDED_BY(mutex_) = 0;

  // Started last in the constructor, joined in the destructor, never
  // reassigned in between — confined to the owner thread, not
  // lock-guarded.
  // dynvote-lint: allow(guarded-by)
  std::thread writer_;
};

}  // namespace dynvote
