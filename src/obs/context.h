// The single handle instrumented components hold. Every instrumented
// class stores one `ObsContext*` (null by default), so disabled tracing
// costs exactly one pointer test per emission site. The Simulator stamps
// `now` before dispatching each event; downstream emitters (NetworkState,
// protocols, trackers) read it instead of knowing about the clock.

#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace dynvote {

struct ObsContext {
  /// Receives every trace event; null disables event tracing.
  TraceSink* sink = nullptr;
  /// Receives counter/gauge/histogram updates; null disables metrics.
  /// Single-writer: each replication worker owns its own shard.
  MetricsShard* metrics = nullptr;
  /// Simulation time of the event being dispatched, stamped by the
  /// Simulator. 0 before the first event.
  double now = 0.0;
  /// Monotonic sequence number of the event being dispatched (the
  /// Simulator's events_run counter); ties within a timestamp keep
  /// their dispatch order in the trace.
  std::uint64_t seq = 0;
  /// Replication index when running under replicated_experiment, else -1.
  int replication = -1;

  bool tracing() const { return sink != nullptr; }
};

}  // namespace dynvote
