// The reason-code vocabulary of the tracing layer: every quorum decision
// and every user access carries one code explaining *which rule of the
// paper* produced the outcome (Algorithm 1, Figures 1-3 and 5-7), so the
// availability differences between protocols decompose into mechanism
// counts instead of one aggregate number. The mapping from code to paper
// rule is tabulated in docs/observability.md.
//
// This header sits below core/ on purpose: the protocol layer attaches a
// reason to each QuorumDecision, and the sinks here serialize it.

#pragma once

#include <cstdint>

namespace dynvote {

/// Why a quorum evaluation (or a whole user access) was granted or denied.
enum class QuorumReason : std::uint8_t {
  /// The counted votes strictly exceed half of the previous majority
  /// block (or the static quorum, for MCV).
  kGrantedMajority = 0,
  /// Exactly half the votes, granted by the lexicographic tie-break
  /// (group holds the maximum element of the previous block).
  kGrantedTieLex,
  /// Granted only because a reachable member of the previous block
  /// carried the votes of unreachable members on its own segment
  /// (Section 3's topological rule); counting Q alone would have denied.
  kGrantedTopologicalCarry,
  /// Available Copy: granted because a current copy is reachable (no
  /// vote counting involved).
  kGrantedCurrentCopy,
  /// Fewer than half the votes of the previous majority block.
  kDeniedMinority,
  /// Exactly half the votes, and the tie was lost (no tie-break rule, or
  /// the maximum element of the previous block is elsewhere).
  kDeniedTieLost,
  /// The votes were there but no reachable *data* copy holds the current
  /// version (witness-only quorums; Available Copy denials).
  kDeniedNoCurrentCopy,
  /// No group of communicating sites holds any copy at all.
  kDeniedNoCopies,
  /// The decision was served from a memoized entry (CachedWouldGrant or
  /// the Evaluate memo); the underlying reason was recorded when the
  /// entry was first computed.
  kCacheHit,
};

inline constexpr int kNumQuorumReasons = 9;

/// Stable snake_case name used in traces, metrics and summaries.
constexpr const char* QuorumReasonName(QuorumReason reason) {
  switch (reason) {
    case QuorumReason::kGrantedMajority:
      return "granted_majority";
    case QuorumReason::kGrantedTieLex:
      return "granted_tie_lex";
    case QuorumReason::kGrantedTopologicalCarry:
      return "granted_topological_carry";
    case QuorumReason::kGrantedCurrentCopy:
      return "granted_current_copy";
    case QuorumReason::kDeniedMinority:
      return "denied_minority";
    case QuorumReason::kDeniedTieLost:
      return "denied_tie_lost";
    case QuorumReason::kDeniedNoCurrentCopy:
      return "denied_no_current_copy";
    case QuorumReason::kDeniedNoCopies:
      return "denied_no_copies";
    case QuorumReason::kCacheHit:
      return "cache_hit";
  }
  return "?";
}

/// True for the kGranted* codes (cache_hit is neither: the cached entry
/// carries its own outcome).
constexpr bool IsGrantReason(QuorumReason reason) {
  return reason == QuorumReason::kGrantedMajority ||
         reason == QuorumReason::kGrantedTieLex ||
         reason == QuorumReason::kGrantedTopologicalCarry ||
         reason == QuorumReason::kGrantedCurrentCopy;
}

/// Ranks denial codes by how close the group came to a grant, so a whole
/// user access that probed several groups reports the most informative
/// denial: a lost tie ("one vote short") over a witness-starved quorum
/// over a plain minority over "no copies reachable at all".
constexpr int DenialSeverity(QuorumReason reason) {
  switch (reason) {
    case QuorumReason::kDeniedTieLost:
      return 3;
    case QuorumReason::kDeniedNoCurrentCopy:
      return 2;
    case QuorumReason::kDeniedMinority:
      return 1;
    default:
      return 0;
  }
}

}  // namespace dynvote
