// Compact binary trace encoding (schema dynvote-btrace-v1): the cheap
// per-access tracing format the JSONL sink is too slow for. Events are
// length-prefixed records with LEB128 varint integers, zigzag-coded
// signed fields, raw IEEE-754 timestamps (so JSONL conversion reproduces
// %.17g output bit for bit) and interned protocol/op strings. A file is
//
//   header  = magic(8) | varint len | schema bytes | varint seed
//   records = varint payload_len | payload ...
//
// where payload[0] is the record kind: 0 = string definition (varint id,
// varint len, bytes), 1..6 = net/sim/quorum/access/avail/serving events. String
// ids are assigned sequentially from 0 in first-use order; a definition
// for an existing id *replaces* it, which is what lets per-replication
// bodies (each interning from scratch) simply concatenate behind one
// header. Decoding a trace then converting it to JSONL byte-matches a
// direct JsonlTraceSink run of the same events — asserted by tests and
// the trace-smoke CI job. See docs/observability.md for the field
// tables.

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "obs/trace_sink.h"
#include "util/result.h"

namespace dynvote {

class TracePageSink;

/// Wire-format constants and raw-pointer serialization helpers of the
/// dynvote-btrace-v1 encoding. Internal detail shared by the inline
/// typed encoders below and the decoder in binary_trace.cc — the public
/// surface is BinaryTraceSink / BinaryTraceReader.
namespace btrace {

// Record kinds (payload[0]).
inline constexpr std::uint8_t kRecordStringDef = 0;
inline constexpr std::uint8_t kRecordNet = 1;
inline constexpr std::uint8_t kRecordSim = 2;
inline constexpr std::uint8_t kRecordQuorum = 3;
inline constexpr std::uint8_t kRecordAccess = 4;
inline constexpr std::uint8_t kRecordAvail = 5;
inline constexpr std::uint8_t kRecordServing = 6;

// Event flag bits (payload[1] of event records).
inline constexpr std::uint8_t kFlagRepeater = 1 << 0;
inline constexpr std::uint8_t kFlagUp = 1 << 1;
inline constexpr std::uint8_t kFlagWrite = 1 << 2;
inline constexpr std::uint8_t kFlagGranted = 1 << 3;
inline constexpr std::uint8_t kFlagAvailable = 1 << 4;
inline constexpr std::uint8_t kFlagHasReplication = 1 << 5;
// The record reuses (t, seq, replication) of the record before it; the
// head carries no timestamp, sequence or replication fields at all.
// Protocols are observed in bursts — every protocol emits at the same
// dispatch instant — so most records elide the 8-byte timestamp this way.
inline constexpr std::uint8_t kFlagSameInstant = 1 << 6;

/// Worst-case typed-event payload: a quorum record with every varint at
/// its 10-byte maximum — 1 (kind) + 1 (flags) + 8 (t) + 10 (seq) +
/// 5 (replication) + 5 (string id) + 1 (reason) + 6 x 10 (group + five
/// sets) = 91 bytes. Still below 128, so the record length prefix is
/// always a single byte.
inline constexpr std::size_t kMaxTypedPayload = 96;

/// Headroom the page buffer keeps past the fill line so a typed record
/// (1 length byte + kMaxTypedPayload) always fits without a bounds check
/// on the hot path.
inline constexpr std::size_t kCursorSlack = 1 + kMaxTypedPayload + 31;

// Serialization is plain stores through the page cursor, which always
// has kCursorSlack bytes of headroom.

inline char* PutVarint(std::uint64_t value, char* p) {
  if (value < 0x80) {  // the common case: one store, no loop
    *p++ = static_cast<char>(value);
    return p;
  }
  do {
    *p++ = static_cast<char>(0x80 | (value & 0x7F));
    value >>= 7;
  } while (value >= 0x80);
  *p++ = static_cast<char>(value);
  return p;
}

inline char* PutDoubleBits(double value, char* p) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(p, &bits, sizeof(bits));  // single 8-byte store
    return p + 8;
  } else {
    for (int i = 0; i < 8; ++i) {
      *p++ = static_cast<char>(bits >> (8 * i));
    }
    return p;
  }
}

inline std::uint64_t ZigZag(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

}  // namespace btrace

/// Binary trace schema identifier, embedded in every file header; bump
/// when the record layout changes incompatibly.
inline constexpr const char kBinaryTraceSchema[] = "dynvote-btrace-v1";

/// File magic: a high-bit first byte so no JSONL (or other text) file
/// can collide, then an ASCII tag. Exactly 8 bytes on the wire.
inline constexpr char kBinaryTraceMagic[9] = "\xDBtrace1\n";
inline constexpr std::size_t kBinaryTraceMagicSize = 8;

/// The file header (magic + schema string + seed), the binary analogue
/// of TraceHeaderLine().
std::string BinaryTraceHeader(std::uint64_t seed);

/// True if the stream starts with the binary trace magic byte; consumes
/// nothing (single-character peek). Used by readers to auto-detect the
/// format.
bool LooksLikeBinaryTrace(std::istream& in);

/// TraceSink encoding events into fixed-size pages and handing each
/// completed page to `pages` (synchronous StreamPageSink or the
/// threaded AsyncTraceSink). Records serialize through a raw cursor
/// into one flat buffer — plain stores, no per-record string append —
/// and steady-state writes are allocation-free. Does NOT write the
/// file header — the owner of the output stream does, which is what
/// lets the replicated engine concatenate per-replication bodies
/// behind a single header.
class BinaryTraceSink final : public TraceSink {
 public:
  explicit BinaryTraceSink(TracePageSink* pages,
                           std::size_t page_bytes = 256 * 1024);

  void Write(const TraceEvent& event) override;

  /// Interns the label (emitting its definition record) and returns its
  /// string id for the typed writes below.
  std::uint32_t RegisterLabel(std::string_view label) override;

  /// Opts emission sites into the devirtualized path: with the class
  /// final and the typed writes inline, a direct call through a
  /// BinaryTraceSink* inlines the whole encoder into the emitter.
  FastPath fast_path() const override { return FastPath::kBinary; }

  // Non-virtual typed encoders: encode straight from the arguments into
  // the current page — no TraceEvent is materialized, the pre-registered
  // `label` replaces every per-event string argument (so devirtualized
  // emission sites skip even the virtual name() lookup), and each event
  // is a handful of stores through the page cursor. Byte-identical to
  // routing the equivalent TraceEvent through Write(). Defined inline
  // below the class; always_inline because emission sites pass
  // compile-time-constant `reason`/flag arguments, and inlining there
  // folds away whole encoding branches (e.g. the five mask varints on a
  // cache hit) that the size heuristic alone would keep behind a call.
  [[gnu::always_inline]] void EncodeSim(double t, std::uint64_t seq,
                                        int replication, std::uint32_t label);
  [[gnu::always_inline]] void EncodeQuorum(double t, std::uint64_t seq,
                                           int replication,
                                           std::uint32_t label, bool write,
                                           bool granted, QuorumReason reason,
                                           const QuorumSetMasks& sets);
  [[gnu::always_inline]] void EncodeAccess(double t, std::uint64_t seq,
                                           int replication,
                                           std::uint32_t label, bool write,
                                           bool granted, QuorumReason reason,
                                           int origin);
  [[gnu::always_inline]] void EncodeAvail(double t, std::uint64_t seq,
                                          int replication, std::uint32_t label,
                                          bool available);

  // Virtual typed writes: thin delegates to the encoders above. The
  // string arguments are unused — `label` was interned by RegisterLabel
  // and already names the protocol/op on the wire.
  void WriteSim(double t, std::uint64_t seq, int replication,
                const char* /*op*/, std::uint32_t label) override {
    EncodeSim(t, seq, replication, label);
  }
  void WriteQuorum(double t, std::uint64_t seq, int replication,
                   const std::string& /*protocol*/, std::uint32_t label,
                   bool write, bool granted, QuorumReason reason,
                   const QuorumSetMasks& sets) override {
    EncodeQuorum(t, seq, replication, label, write, granted, reason, sets);
  }
  void WriteAccess(double t, std::uint64_t seq, int replication,
                   const std::string& /*protocol*/, std::uint32_t label,
                   bool write, bool granted, QuorumReason reason,
                   int origin) override {
    EncodeAccess(t, seq, replication, label, write, granted, reason, origin);
  }
  void WriteAvail(double t, std::uint64_t seq, int replication,
                  const std::string& /*protocol*/, std::uint32_t label,
                  bool available) override {
    EncodeAvail(t, seq, replication, label, available);
  }

  /// Hands off the partial page and flushes the page pipeline; deferred
  /// writer errors surface here (error state, or a rethrown async
  /// writer exception).
  void Flush() override;

 private:
  std::uint32_t InternString(std::string_view value);

  /// Closes one typed event record serialized at `rec` (rec[0] is the
  /// length byte the emitters reserved; typed payloads are bounded far
  /// below 128 bytes so the prefix is always that single byte), advances
  /// the cursor and hands off the page when full. The cursor invariant —
  /// at least kCursorSlack bytes of headroom on entry to every typed
  /// write — holds because this emits as soon as the fill line is
  /// crossed.
  void FinishTypedRecord(char* rec, char* end) {
    rec[0] = static_cast<char>(end - rec - 1);
    cursor_ = end;
    ++events_in_page_;
    if (cursor_ >= fill_line_) EmitPage();
  }

  /// Appends a length-prefixed record of `payload` (generic path: string
  /// definitions and net events), growing the buffer in the cold case of
  /// a record larger than a whole page. `is_event` counts the record
  /// toward the page's event total (string definitions are not events).
  void AppendFramed(std::string_view payload, bool is_event);

  /// Writes one event record's prologue — kind, flags, then timestamp,
  /// sequence and replication, or just a same-instant flag when all
  /// three match the previous record's (protocols emit in bursts at one
  /// dispatch instant, so most records elide the whole head). Shared by
  /// the typed fast paths and the generic Write() so both produce
  /// byte-identical streams.
  char* PutEventHead(std::uint8_t kind, std::uint8_t flags, double t,
                     std::uint64_t seq, int replication, char* p) {
    *p++ = static_cast<char>(kind);
    std::uint64_t t_bits;
    std::memcpy(&t_bits, &t, sizeof(t_bits));
    if (t_bits == last_t_bits_ && seq == last_seq_ &&
        replication == last_repl_) {
      *p++ = static_cast<char>(flags | btrace::kFlagSameInstant);
      return p;
    }
    last_t_bits_ = t_bits;
    last_seq_ = seq;
    last_repl_ = replication;
    if (replication >= 0) flags |= btrace::kFlagHasReplication;
    *p++ = static_cast<char>(flags);
    p = btrace::PutDoubleBits(t, p);
    p = btrace::PutVarint(seq, p);
    if (replication >= 0) {
      p = btrace::PutVarint(static_cast<std::uint64_t>(replication), p);
    }
    return p;
  }

  void EmitPage();

  /// Points the cursor at page_'s storage (after construction, handoff
  /// or growth). page_ must already be sized to capacity_.
  void ResetCursor() {
    cursor_ = page_.data();
    fill_line_ = page_.data() + page_bytes_;
  }

  std::size_t BufferUsed() const {
    return static_cast<std::size_t>(cursor_ - page_.data());
  }

  TracePageSink* pages_;
  const std::size_t page_bytes_;
  // The page accumulator: records serialize through cursor_ straight
  // into page_'s storage (held at size capacity_ while encoding), and
  // EmitPage shrinks it to the used length and hands the same string to
  // pages_ — no copy between an encode buffer and a handoff buffer.
  std::string page_;
  char* cursor_ = nullptr;
  char* fill_line_ = nullptr;  // page_.data() + page_bytes_: emit at/after
  std::size_t capacity_ = 0;   // page_bytes_ + kCursorSlack (or grown)
  std::string scratch_;  // one event's payload, reused between events
  std::map<std::string, std::uint32_t, std::less<>> interned_;
  std::uint64_t events_in_page_ = 0;
  // Instant of the previous event record, for same-instant head elision.
  // last_repl_ = -2 can match no event, so the first head is never elided.
  std::uint64_t last_t_bits_ = 0;
  std::uint64_t last_seq_ = 0;
  int last_repl_ = -2;
};

// Inline typed encoders: on the hot path a devirtualized caller reduces
// each event to the stores below plus the page-full check.

inline void BinaryTraceSink::EncodeSim(double t, std::uint64_t seq,
                                       int replication, std::uint32_t label) {
  CountEvent();
  if (!ok()) return;
  char* rec = cursor_;
  char* p = PutEventHead(btrace::kRecordSim, 0, t, seq, replication, rec + 1);
  p = btrace::PutVarint(label, p);
  FinishTypedRecord(rec, p);
}

inline void BinaryTraceSink::EncodeQuorum(double t, std::uint64_t seq,
                                          int replication, std::uint32_t label,
                                          bool write, bool granted,
                                          QuorumReason reason,
                                          const QuorumSetMasks& sets) {
  CountEvent();
  if (!ok()) return;
  char* rec = cursor_;
  std::uint8_t flags = (write ? btrace::kFlagWrite : 0) |
                       (granted ? btrace::kFlagGranted : 0);
  char* p =
      PutEventHead(btrace::kRecordQuorum, flags, t, seq, replication, rec + 1);
  p = btrace::PutVarint(label, p);
  *p++ = static_cast<char>(reason);
  p = btrace::PutVarint(sets.group, p);
  if (reason != QuorumReason::kCacheHit) {
    p = btrace::PutVarint(sets.r, p);
    p = btrace::PutVarint(sets.q, p);
    p = btrace::PutVarint(sets.s, p);
    p = btrace::PutVarint(sets.t, p);
    p = btrace::PutVarint(sets.pm, p);
  }
  FinishTypedRecord(rec, p);
}

inline void BinaryTraceSink::EncodeAccess(double t, std::uint64_t seq,
                                          int replication, std::uint32_t label,
                                          bool write, bool granted,
                                          QuorumReason reason, int origin) {
  CountEvent();
  if (!ok()) return;
  char* rec = cursor_;
  std::uint8_t flags = (write ? btrace::kFlagWrite : 0) |
                       (granted ? btrace::kFlagGranted : 0);
  char* p =
      PutEventHead(btrace::kRecordAccess, flags, t, seq, replication, rec + 1);
  p = btrace::PutVarint(label, p);
  *p++ = static_cast<char>(reason);
  p = btrace::PutVarint(btrace::ZigZag(origin), p);
  FinishTypedRecord(rec, p);
}

inline void BinaryTraceSink::EncodeAvail(double t, std::uint64_t seq,
                                         int replication, std::uint32_t label,
                                         bool available) {
  CountEvent();
  if (!ok()) return;
  char* rec = cursor_;
  std::uint8_t flags = available ? btrace::kFlagAvailable : 0;
  char* p =
      PutEventHead(btrace::kRecordAvail, flags, t, seq, replication, rec + 1);
  p = btrace::PutVarint(label, p);
  FinishTypedRecord(rec, p);
}

/// Streaming decoder for a binary trace. Decoded events reference the
/// reader's string table (`op` and `protocol` stay valid until the next
/// Next() call). Truncated or corrupt input yields an error Status, not
/// a crash.
class BinaryTraceReader {
 public:
  explicit BinaryTraceReader(std::istream* in) : in_(in) {}

  /// Reads and validates magic, schema and seed. Must be called first.
  Status ReadHeader();

  std::uint64_t seed() const { return seed_; }
  const std::string& schema() const { return schema_; }
  std::uint64_t events_decoded() const { return events_decoded_; }

  /// Decodes the next event into *event (string-definition records are
  /// consumed transparently). Returns true on an event, false on clean
  /// end of file, an error Status on truncation or corruption.
  Result<bool> Next(TraceEvent* event);

 private:
  Status DecodePayload(std::string_view payload, TraceEvent* event,
                       bool* is_event);

  std::istream* in_;
  std::string schema_;
  std::uint64_t seed_ = 0;
  std::uint64_t events_decoded_ = 0;
  std::string payload_;              // record buffer, reused
  std::deque<std::string> strings_;  // id -> value; deque: stable refs
  // Instant of the previous event record (same-instant head elision).
  double last_t_ = 0.0;
  std::uint64_t last_seq_ = 0;
  int last_repl_ = -1;
  bool have_instant_ = false;
};

/// Streams a binary trace out as dynvote-trace-v1 JSONL (header line
/// plus one line per event) — byte-identical to what a JsonlTraceSink
/// run over the same events with the same seed produces. Returns the
/// number of event lines written, or an error on corrupt input / failed
/// output.
Result<std::uint64_t> ConvertBinaryTraceToJsonl(std::istream& in,
                                                std::ostream& out);

}  // namespace dynvote
