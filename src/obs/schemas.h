// One header naming every stable JSON schema this repo emits, so the CLI
// (--version) and the emitters cannot drift apart. Bump a constant here
// exactly when the corresponding field set changes incompatibly.

#pragma once

#include "obs/binary_trace.h"  // kBinaryTraceSchema
#include "obs/metrics.h"       // kMetricsSchema
#include "obs/trace_event.h"   // kTraceSchema

namespace dynvote {

/// Schema of BENCH_hotpath.json (bench/hotpath_micro.cc, validated by the
/// perf-smoke CI job).
inline constexpr const char kHotpathBenchSchema[] = "dynvote-hotpath-bench-v1";

/// Schema of BENCH_check.json (bench/check_throughput.cc): model-checker
/// throughput solo vs parallel, POR transition reduction, and the
/// deepest demonstrated exhaustive bounds. Validated by perf-smoke.
inline constexpr const char kCheckBenchSchema[] = "dynvote-checkbench-v1";

}  // namespace dynvote
