#include "obs/trace_reader.h"

#include <cinttypes>
#include <cstdio>
#include <istream>

namespace dynvote {
namespace {

void SkipSpaces(std::string_view line, std::size_t* pos) {
  while (*pos < line.size() &&
         (line[*pos] == ' ' || line[*pos] == '\t')) {
    ++*pos;
  }
}

// Parses a quoted string, undoing the escapes our sinks produce.
bool ParseString(std::string_view line, std::size_t* pos, std::string* out) {
  if (*pos >= line.size() || line[*pos] != '"') return false;
  ++*pos;
  out->clear();
  while (*pos < line.size()) {
    char c = line[*pos];
    if (c == '"') {
      ++*pos;
      return true;
    }
    if (c == '\\') {
      ++*pos;
      if (*pos >= line.size()) return false;
      char esc = line[*pos];
      if (esc == 'u') {
        // Our sinks only emit \u00XX for control bytes.
        if (*pos + 4 >= line.size()) return false;
        unsigned code = 0;
        if (std::sscanf(line.substr(*pos + 1, 4).data(), "%4x", &code) != 1) {
          return false;
        }
        out->push_back(static_cast<char>(code));
        *pos += 4;
      } else {
        out->push_back(esc);
      }
      ++*pos;
    } else {
      out->push_back(c);
      ++*pos;
    }
  }
  return false;
}

// Captures a scalar (number/bool/null) or a flat array as raw text.
bool ParseRawValue(std::string_view line, std::size_t* pos, std::string* out) {
  out->clear();
  if (*pos < line.size() && line[*pos] == '[') {
    std::size_t depth = 0;
    while (*pos < line.size()) {
      char c = line[*pos];
      out->push_back(c);
      ++*pos;
      if (c == '[') ++depth;
      if (c == ']' && --depth == 0) return true;
    }
    return false;
  }
  while (*pos < line.size() && line[*pos] != ',' && line[*pos] != '}') {
    out->push_back(line[*pos]);
    ++*pos;
  }
  return !out->empty();
}

}  // namespace

bool ParseTraceLine(std::string_view line,
                    std::map<std::string, std::string>* fields) {
  fields->clear();
  std::size_t pos = 0;
  SkipSpaces(line, &pos);
  if (pos >= line.size() || line[pos] != '{') return false;
  ++pos;
  SkipSpaces(line, &pos);
  if (pos < line.size() && line[pos] == '}') return true;
  std::string key;
  std::string value;
  while (true) {
    SkipSpaces(line, &pos);
    if (!ParseString(line, &pos, &key)) return false;
    SkipSpaces(line, &pos);
    if (pos >= line.size() || line[pos] != ':') return false;
    ++pos;
    SkipSpaces(line, &pos);
    if (pos < line.size() && line[pos] == '"') {
      if (!ParseString(line, &pos, &value)) return false;
    } else {
      if (!ParseRawValue(line, &pos, &value)) return false;
      // Trim trailing spaces from raw scalars.
      while (!value.empty() && value.back() == ' ') value.pop_back();
    }
    (*fields)[key] = value;
    SkipSpaces(line, &pos);
    if (pos >= line.size()) return false;
    if (line[pos] == '}') return true;
    if (line[pos] != ',') return false;
    ++pos;
  }
}

TraceSummary SummarizeTrace(std::istream& in) {
  TraceSummary summary;
  std::string line;
  std::map<std::string, std::string> fields;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++summary.total_lines;
    if (!ParseTraceLine(line, &fields)) {
      ++summary.malformed_lines;
      continue;
    }
    if (auto it = fields.find("schema"); it != fields.end()) {
      summary.schema = it->second;
      continue;
    }
    auto ev = fields.find("ev");
    if (ev == fields.end()) {
      ++summary.malformed_lines;
      continue;
    }
    const std::string& type = ev->second;
    if (type == "net") {
      ++summary.net_events;
      continue;
    }
    if (type == "sim") {
      ++summary.sim_events;
      continue;
    }
    auto proto_it = fields.find("protocol");
    if (proto_it == fields.end()) {
      ++summary.malformed_lines;
      continue;
    }
    ProtocolTraceSummary& proto = summary.per_protocol[proto_it->second];
    if (type == "avail") {
      ++proto.availability_transitions;
    } else if (type == "quorum") {
      const std::string& reason = fields["reason"];
      if (reason == "cache_hit") {
        ++proto.cache_hits;
      } else {
        ++proto.quorum_evaluations;
        ++proto.quorum_reasons[reason];
      }
    } else if (type == "access") {
      ++proto.accesses;
      if (fields["granted"] == "true") {
        ++proto.granted;
      } else {
        ++proto.denied;
      }
      ++proto.access_reasons[fields["reason"]];
    } else {
      ++summary.malformed_lines;
    }
  }
  return summary;
}

std::string TraceSummary::ToString() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "trace: schema=%s lines=%" PRIu64 " malformed=%" PRIu64
                " net=%" PRIu64 " sim=%" PRIu64 "\n",
                schema.empty() ? "(none)" : schema.c_str(), total_lines,
                malformed_lines, net_events, sim_events);
  out.append(buf);
  for (const auto& [name, proto] : per_protocol) {
    std::snprintf(buf, sizeof(buf),
                  "\n%s: accesses=%" PRIu64 " granted=%" PRIu64
                  " denied=%" PRIu64 " quorum_evals=%" PRIu64
                  " cache_hits=%" PRIu64 " avail_transitions=%" PRIu64 "\n",
                  name.c_str(), proto.accesses, proto.granted, proto.denied,
                  proto.quorum_evaluations, proto.cache_hits,
                  proto.availability_transitions);
    out.append(buf);
    if (!proto.access_reasons.empty()) {
      out.append("  access reasons:\n");
      for (const auto& [reason, count] : proto.access_reasons) {
        std::snprintf(buf, sizeof(buf), "    %-28s %" PRIu64 "\n",
                      reason.c_str(), count);
        out.append(buf);
      }
    }
    if (!proto.quorum_reasons.empty()) {
      out.append("  quorum reasons:\n");
      for (const auto& [reason, count] : proto.quorum_reasons) {
        std::snprintf(buf, sizeof(buf), "    %-28s %" PRIu64 "\n",
                      reason.c_str(), count);
        out.append(buf);
      }
    }
  }
  return out;
}

}  // namespace dynvote
