#include "obs/trace_reader.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <istream>

#include "obs/binary_trace.h"
#include "obs/trace_event.h"

namespace dynvote {
namespace {

// Renders a ratio as a percentage, or "-" when the denominator is zero
// (header-only traces, protocols that never saw an access). Guarding here
// keeps trace-summary from printing nan/inf on degenerate inputs.
std::string Percent(std::uint64_t numerator, std::uint64_t denominator) {
  if (denominator == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                100.0 * static_cast<double>(numerator) /
                    static_cast<double>(denominator));
  return buf;
}

void SkipSpaces(std::string_view line, std::size_t* pos) {
  while (*pos < line.size() &&
         (line[*pos] == ' ' || line[*pos] == '\t')) {
    ++*pos;
  }
}

// Parses a quoted string, undoing the escapes our sinks produce.
bool ParseString(std::string_view line, std::size_t* pos, std::string* out) {
  if (*pos >= line.size() || line[*pos] != '"') return false;
  ++*pos;
  out->clear();
  while (*pos < line.size()) {
    char c = line[*pos];
    if (c == '"') {
      ++*pos;
      return true;
    }
    if (c == '\\') {
      ++*pos;
      if (*pos >= line.size()) return false;
      char esc = line[*pos];
      if (esc == 'u') {
        // Our sinks only emit \u00XX for control bytes.
        if (*pos + 4 >= line.size()) return false;
        unsigned code = 0;
        if (std::sscanf(line.substr(*pos + 1, 4).data(), "%4x", &code) != 1) {
          return false;
        }
        out->push_back(static_cast<char>(code));
        *pos += 4;
      } else {
        out->push_back(esc);
      }
      ++*pos;
    } else {
      out->push_back(c);
      ++*pos;
    }
  }
  return false;
}

// Captures a scalar (number/bool/null) or a flat array as raw text.
bool ParseRawValue(std::string_view line, std::size_t* pos, std::string* out) {
  out->clear();
  if (*pos < line.size() && line[*pos] == '[') {
    std::size_t depth = 0;
    while (*pos < line.size()) {
      char c = line[*pos];
      out->push_back(c);
      ++*pos;
      if (c == '[') ++depth;
      if (c == ']' && --depth == 0) return true;
    }
    return false;
  }
  while (*pos < line.size() && line[*pos] != ',' && line[*pos] != '}') {
    out->push_back(line[*pos]);
    ++*pos;
  }
  return !out->empty();
}

}  // namespace

bool ParseTraceLine(std::string_view line,
                    std::map<std::string, std::string>* fields) {
  fields->clear();
  std::size_t pos = 0;
  SkipSpaces(line, &pos);
  if (pos >= line.size() || line[pos] != '{') return false;
  ++pos;
  SkipSpaces(line, &pos);
  if (pos < line.size() && line[pos] == '}') return true;
  std::string key;
  std::string value;
  while (true) {
    SkipSpaces(line, &pos);
    if (!ParseString(line, &pos, &key)) return false;
    SkipSpaces(line, &pos);
    if (pos >= line.size() || line[pos] != ':') return false;
    ++pos;
    SkipSpaces(line, &pos);
    if (pos < line.size() && line[pos] == '"') {
      if (!ParseString(line, &pos, &value)) return false;
    } else {
      if (!ParseRawValue(line, &pos, &value)) return false;
      // Trim trailing spaces from raw scalars.
      while (!value.empty() && value.back() == ' ') value.pop_back();
    }
    (*fields)[key] = value;
    SkipSpaces(line, &pos);
    if (pos >= line.size()) return false;
    if (line[pos] == '}') return true;
    if (line[pos] != ',') return false;
    ++pos;
  }
}

void FoldTraceEvent(const TraceEvent& event, TraceSummary* summary) {
  switch (event.type) {
    case TraceEventType::kNet:
      ++summary->net_events;
      return;
    case TraceEventType::kSim:
      ++summary->sim_events;
      return;
    case TraceEventType::kAvail:
      ++summary->per_protocol[event.protocol].availability_transitions;
      return;
    case TraceEventType::kQuorum: {
      ProtocolTraceSummary& proto = summary->per_protocol[event.protocol];
      if (event.reason == QuorumReason::kCacheHit) {
        ++proto.cache_hits;
      } else {
        ++proto.quorum_evaluations;
        ++proto.quorum_reasons[std::string(QuorumReasonName(event.reason))];
      }
      return;
    }
    case TraceEventType::kAccess: {
      ProtocolTraceSummary& proto = summary->per_protocol[event.protocol];
      ++proto.accesses;
      if (event.granted) {
        ++proto.granted;
      } else {
        ++proto.denied;
      }
      ++proto.access_reasons[std::string(QuorumReasonName(event.reason))];
      return;
    }
    case TraceEventType::kServing: {
      ProtocolTraceSummary& proto = summary->per_protocol[event.protocol];
      ++proto.serving_events;
      proto.serving_messages += event.msgs;
      proto.serving_latency_ms.Observe(event.latency_ms);
      return;
    }
  }
}

namespace {

TraceSummary SummarizeBinaryTrace(std::istream& in) {
  TraceSummary summary;
  BinaryTraceReader reader(&in);
  Status header = reader.ReadHeader();
  if (!header.ok()) {
    ++summary.total_lines;
    ++summary.malformed_lines;
    summary.decode_error = header.ToString();
    return summary;
  }
  summary.schema = reader.schema();
  ++summary.total_lines;  // the header, mirroring the JSONL header line
  TraceEvent event;
  for (;;) {
    auto more = reader.Next(&event);
    if (!more.ok()) {
      ++summary.total_lines;
      ++summary.malformed_lines;
      summary.decode_error = more.status().ToString();
      break;
    }
    if (!*more) break;
    ++summary.total_lines;
    FoldTraceEvent(event, &summary);
  }
  return summary;
}

}  // namespace

TraceSummary SummarizeTrace(std::istream& in) {
  if (LooksLikeBinaryTrace(in)) return SummarizeBinaryTrace(in);
  TraceSummary summary;
  std::string line;
  std::map<std::string, std::string> fields;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++summary.total_lines;
    if (!ParseTraceLine(line, &fields)) {
      ++summary.malformed_lines;
      continue;
    }
    if (auto it = fields.find("schema"); it != fields.end()) {
      summary.schema = it->second;
      continue;
    }
    auto ev = fields.find("ev");
    if (ev == fields.end()) {
      ++summary.malformed_lines;
      continue;
    }
    const std::string& type = ev->second;
    if (type == "net") {
      ++summary.net_events;
      continue;
    }
    if (type == "sim") {
      ++summary.sim_events;
      continue;
    }
    auto proto_it = fields.find("protocol");
    if (proto_it == fields.end()) {
      ++summary.malformed_lines;
      continue;
    }
    ProtocolTraceSummary& proto = summary.per_protocol[proto_it->second];
    if (type == "avail") {
      ++proto.availability_transitions;
    } else if (type == "quorum") {
      const std::string& reason = fields["reason"];
      if (reason == "cache_hit") {
        ++proto.cache_hits;
      } else {
        ++proto.quorum_evaluations;
        ++proto.quorum_reasons[reason];
      }
    } else if (type == "access") {
      ++proto.accesses;
      if (fields["granted"] == "true") {
        ++proto.granted;
      } else {
        ++proto.denied;
      }
      ++proto.access_reasons[fields["reason"]];
    } else if (type == "serving") {
      ++proto.serving_events;
      proto.serving_messages +=
          std::strtoull(fields["msgs"].c_str(), nullptr, 10);
      // strtod round-trips the sink's %.17g rendering exactly, so this
      // histogram matches a binary-trace fold (and the run's metrics
      // shard) bit for bit.
      proto.serving_latency_ms.Observe(
          std::strtod(fields["lat_ms"].c_str(), nullptr));
    } else {
      ++summary.malformed_lines;
    }
  }
  return summary;
}

std::string TraceSummary::ToString() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "trace: schema=%s lines=%" PRIu64 " malformed=%" PRIu64
                " net=%" PRIu64 " sim=%" PRIu64 "\n",
                schema.empty() ? "(none)" : schema.c_str(), total_lines,
                malformed_lines, net_events, sim_events);
  out.append(buf);
  if (!decode_error.empty()) {
    out.append("warning: trace truncated: ");
    out.append(decode_error);
    out.push_back('\n');
  }
  for (const auto& [name, proto] : per_protocol) {
    std::snprintf(buf, sizeof(buf),
                  "\n%s: accesses=%" PRIu64 " granted=%" PRIu64
                  " denied=%" PRIu64 " quorum_evals=%" PRIu64
                  " cache_hits=%" PRIu64 " avail_transitions=%" PRIu64 "\n",
                  name.c_str(), proto.accesses, proto.granted, proto.denied,
                  proto.quorum_evaluations, proto.cache_hits,
                  proto.availability_transitions);
    out.append(buf);
    // Rates are "-" when the denominator is zero, never nan/inf.
    std::snprintf(buf, sizeof(buf),
                  "  grant_rate=%s cache_hit_rate=%s\n",
                  Percent(proto.granted, proto.accesses).c_str(),
                  Percent(proto.cache_hits,
                          proto.quorum_evaluations + proto.cache_hits)
                      .c_str());
    out.append(buf);
    if (proto.serving_events > 0) {
      const HistogramData& lat = proto.serving_latency_ms;
      std::snprintf(buf, sizeof(buf),
                    "  serving: events=%" PRIu64
                    " msgs_per_access=%.2f p50=%.3fms p90=%.3fms "
                    "p99=%.3fms p999=%.3fms\n",
                    proto.serving_events,
                    static_cast<double>(proto.serving_messages) /
                        static_cast<double>(proto.serving_events),
                    lat.Quantile(0.50), lat.Quantile(0.90),
                    lat.Quantile(0.99), lat.Quantile(0.999));
      out.append(buf);
    }
    if (!proto.access_reasons.empty()) {
      out.append("  access reasons:\n");
      for (const auto& [reason, count] : proto.access_reasons) {
        std::snprintf(buf, sizeof(buf), "    %-28s %" PRIu64 "\n",
                      reason.c_str(), count);
        out.append(buf);
      }
    }
    if (!proto.quorum_reasons.empty()) {
      out.append("  quorum reasons:\n");
      for (const auto& [reason, count] : proto.quorum_reasons) {
        std::snprintf(buf, sizeof(buf), "    %-28s %" PRIu64 "\n",
                      reason.c_str(), count);
        out.append(buf);
      }
    }
  }
  return out;
}

}  // namespace dynvote
