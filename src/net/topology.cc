#include "net/topology.h"

#include <sstream>

namespace dynvote {

TopologyBuilder Topology::Builder() { return TopologyBuilder(); }

Result<SiteId> Topology::FindSite(const std::string& name) const {
  for (const SiteInfo& s : sites_) {
    if (s.name == name) return s.id;
  }
  return Status::NotFound("no site named '" + name + "'");
}

std::string Topology::ToString() const {
  std::ostringstream os;
  for (SegmentId seg = 0; seg < num_segments_; ++seg) {
    os << "segment " << segment_names_[seg] << ":";
    for (SiteId s : segment_sites_[seg]) {
      os << " " << sites_[s].name << "(" << s << ")";
    }
    os << "\n";
  }
  for (const BridgeInfo& b : bridges_) {
    os << "bridge " << b.name << ": " << segment_names_[b.segment_a]
       << " <-> " << segment_names_[b.segment_b];
    if (b.gateway_site.has_value()) {
      os << " via gateway host " << sites_[*b.gateway_site].name;
    } else {
      os << " via repeater";
    }
    os << "\n";
  }
  return os.str();
}

void TopologyBuilder::Defer(Status status) {
  if (deferred_error_.ok()) deferred_error_ = std::move(status);
}

SegmentId TopologyBuilder::AddSegment(std::string name) {
  SegmentId id = topo_.num_segments_++;
  topo_.segment_names_.push_back(std::move(name));
  topo_.segment_sites_.emplace_back();
  return id;
}

SiteId TopologyBuilder::AddSite(std::string name, SegmentId segment) {
  SiteId id = static_cast<SiteId>(topo_.sites_.size());
  if (segment < 0 || segment >= topo_.num_segments_) {
    Defer(Status::InvalidArgument("site '" + name +
                                  "' references unknown segment"));
    segment = 0;
  }
  if (id >= kMaxSites) {
    Defer(Status::InvalidArgument("too many sites (max 64)"));
  }
  topo_.sites_.push_back(SiteInfo{id, std::move(name), segment});
  if (segment < topo_.num_segments_) topo_.segment_sites_[segment].Add(id);
  return id;
}

TopologyBuilder& TopologyBuilder::AddGateway(SiteId gateway,
                                             SegmentId other_segment) {
  if (gateway < 0 || gateway >= topo_.num_sites()) {
    Defer(Status::InvalidArgument("gateway references unknown site"));
    return *this;
  }
  if (other_segment < 0 || other_segment >= topo_.num_segments_) {
    Defer(Status::InvalidArgument("gateway references unknown segment"));
    return *this;
  }
  const SiteInfo& host = topo_.sites_[gateway];
  if (host.segment == other_segment) {
    Defer(Status::InvalidArgument("gateway '" + host.name +
                                  "' bridges its own segment"));
    return *this;
  }
  BridgeInfo bridge;
  bridge.segment_a = host.segment;
  bridge.segment_b = other_segment;
  bridge.gateway_site = gateway;
  bridge.name = host.name;
  topo_.bridges_.push_back(std::move(bridge));
  return *this;
}

RepeaterId TopologyBuilder::AddRepeater(std::string name, SegmentId a,
                                        SegmentId b) {
  if (a < 0 || a >= topo_.num_segments_ || b < 0 ||
      b >= topo_.num_segments_) {
    Defer(Status::InvalidArgument("repeater '" + name +
                                  "' references unknown segment"));
    return -1;
  }
  if (a == b) {
    Defer(Status::InvalidArgument("repeater '" + name +
                                  "' bridges its own segment"));
    return -1;
  }
  RepeaterId id = topo_.num_repeaters_++;
  BridgeInfo bridge;
  bridge.segment_a = a;
  bridge.segment_b = b;
  bridge.repeater = id;
  bridge.name = std::move(name);
  topo_.bridges_.push_back(std::move(bridge));
  return id;
}

Result<std::shared_ptr<const Topology>> TopologyBuilder::Build() {
  if (!deferred_error_.ok()) return deferred_error_;
  if (topo_.sites_.empty()) {
    return Status::InvalidArgument("topology has no sites");
  }
  for (std::size_t i = 0; i < topo_.sites_.size(); ++i) {
    for (std::size_t j = i + 1; j < topo_.sites_.size(); ++j) {
      if (topo_.sites_[i].name == topo_.sites_[j].name) {
        return Status::InvalidArgument("duplicate site name '" +
                                       topo_.sites_[i].name + "'");
      }
    }
  }
  return std::shared_ptr<const Topology>(new Topology(std::move(topo_)));
}

}  // namespace dynvote
