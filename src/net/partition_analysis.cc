#include "net/partition_analysis.h"

#include <algorithm>

namespace dynvote {

namespace {

/// The groups of live placement members, canonically sorted by mask.
std::vector<SiteSet> PlacementGroups(const NetworkState& net,
                                     SiteSet placement) {
  std::vector<SiteSet> groups;
  for (const SiteSet& g : net.Components()) {
    SiteSet members = g.Intersect(placement);
    if (!members.Empty()) groups.push_back(members);
  }
  std::sort(groups.begin(), groups.end(),
            [](SiteSet a, SiteSet b) { return a.mask() < b.mask(); });
  return groups;
}

}  // namespace

Result<PartitionVulnerability> AnalyzePartitionPoints(
    std::shared_ptr<const Topology> topology, SiteSet placement) {
  if (topology == nullptr) {
    return Status::InvalidArgument("topology must not be null");
  }
  if (placement.Empty() ||
      !placement.IsSubsetOf(topology->AllSites())) {
    return Status::InvalidArgument("placement invalid for this topology");
  }

  PartitionVulnerability out;
  NetworkState net(topology);

  for (const BridgeInfo& bridge : topology->bridges()) {
    net.AllUp();
    if (bridge.gateway_site.has_value()) {
      net.SetSiteUp(*bridge.gateway_site, false);
      // Surviving members: everyone except the failed gateway itself.
      SiteSet survivors = placement;
      survivors.Remove(*bridge.gateway_site);
      if (PlacementGroups(net, survivors).size() > 1) {
        out.gateway_cut_points.push_back(*bridge.gateway_site);
      }
    } else {
      net.SetRepeaterUp(bridge.repeater, false);
      if (PlacementGroups(net, placement).size() > 1) {
        out.repeater_cut_points.push_back(bridge.repeater);
      }
    }
  }
  // A gateway may carry several bridges; deduplicate.
  auto& g = out.gateway_cut_points;
  std::sort(g.begin(), g.end());
  g.erase(std::unique(g.begin(), g.end()), g.end());
  return out;
}

Result<std::vector<std::vector<SiteSet>>> EnumeratePlacementPartitions(
    std::shared_ptr<const Topology> topology, SiteSet placement) {
  if (topology == nullptr) {
    return Status::InvalidArgument("topology must not be null");
  }
  if (placement.Empty() ||
      !placement.IsSubsetOf(topology->AllSites())) {
    return Status::InvalidArgument("placement invalid for this topology");
  }
  const int num_bridges = topology->num_bridges();
  if (num_bridges > 20) {
    return Status::InvalidArgument("enumeration limited to 20 bridges");
  }

  NetworkState net(topology);
  std::vector<std::vector<SiteSet>> patterns;
  for (std::uint64_t combo = 0; combo < (std::uint64_t{1} << num_bridges);
       ++combo) {
    net.AllUp();
    // Kill the selected bridges. A gateway-host bridge is killed by
    // failing the host; placement members that are gateways drop out of
    // the live pattern, matching what their failure really does.
    for (int i = 0; i < num_bridges; ++i) {
      if (!((combo >> i) & 1)) continue;
      const BridgeInfo& bridge = topology->bridges()[i];
      if (bridge.gateway_site.has_value()) {
        net.SetSiteUp(*bridge.gateway_site, false);
      } else {
        net.SetRepeaterUp(bridge.repeater, false);
      }
    }
    std::vector<SiteSet> groups = PlacementGroups(net, placement);
    if (std::find(patterns.begin(), patterns.end(), groups) ==
        patterns.end()) {
      patterns.push_back(std::move(groups));
    }
  }
  std::sort(patterns.begin(), patterns.end(),
            [](const std::vector<SiteSet>& a,
               const std::vector<SiteSet>& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              for (std::size_t i = 0; i < a.size(); ++i) {
                if (!(a[i] == b[i])) return a[i].mask() < b[i].mask();
              }
              return false;
            });
  return patterns;
}

}  // namespace dynvote
