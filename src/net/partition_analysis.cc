#include "net/partition_analysis.h"

#include <algorithm>
#include <cstdint>
#include <set>

namespace dynvote {

namespace {

/// The groups of live placement members, canonically sorted by mask.
/// `groups` is reused across calls to avoid reallocating per bridge
/// pattern (NetworkState::Components() itself is allocation-free).
void PlacementGroups(const NetworkState& net, SiteSet placement,
                     std::vector<SiteSet>* groups) {
  groups->clear();
  for (const SiteSet& g : net.Components()) {
    SiteSet members = g.Intersect(placement);
    if (!members.Empty()) groups->push_back(members);
  }
  std::sort(groups->begin(), groups->end(),
            [](SiteSet a, SiteSet b) { return a.mask() < b.mask(); });
}

/// Canonical key of a sorted group list, for set-based deduplication.
std::vector<std::uint64_t> PatternKey(const std::vector<SiteSet>& groups) {
  std::vector<std::uint64_t> key;
  key.reserve(groups.size());
  for (SiteSet g : groups) key.push_back(g.mask());
  return key;
}

}  // namespace

Result<PartitionVulnerability> AnalyzePartitionPoints(
    std::shared_ptr<const Topology> topology, SiteSet placement) {
  if (topology == nullptr) {
    return Status::InvalidArgument("topology must not be null");
  }
  if (placement.Empty() ||
      !placement.IsSubsetOf(topology->AllSites())) {
    return Status::InvalidArgument("placement invalid for this topology");
  }

  PartitionVulnerability out;
  NetworkState net(topology);
  std::vector<SiteSet> groups;

  for (const BridgeInfo& bridge : topology->bridges()) {
    net.AllUp();
    if (bridge.gateway_site.has_value()) {
      net.SetSiteUp(*bridge.gateway_site, false);
      // Surviving members: everyone except the failed gateway itself.
      SiteSet survivors = placement;
      survivors.Remove(*bridge.gateway_site);
      PlacementGroups(net, survivors, &groups);
      if (groups.size() > 1) {
        out.gateway_cut_points.push_back(*bridge.gateway_site);
      }
    } else {
      net.SetRepeaterUp(bridge.repeater, false);
      PlacementGroups(net, placement, &groups);
      if (groups.size() > 1) {
        out.repeater_cut_points.push_back(bridge.repeater);
      }
    }
  }
  // A gateway may carry several bridges; deduplicate.
  auto& g = out.gateway_cut_points;
  std::sort(g.begin(), g.end());
  g.erase(std::unique(g.begin(), g.end()), g.end());
  return out;
}

Result<std::vector<std::vector<SiteSet>>> EnumeratePlacementPartitions(
    std::shared_ptr<const Topology> topology, SiteSet placement) {
  if (topology == nullptr) {
    return Status::InvalidArgument("topology must not be null");
  }
  if (placement.Empty() ||
      !placement.IsSubsetOf(topology->AllSites())) {
    return Status::InvalidArgument("placement invalid for this topology");
  }
  const int num_bridges = topology->num_bridges();
  if (num_bridges > 20) {
    return Status::InvalidArgument("enumeration limited to 20 bridges");
  }

  NetworkState net(topology);
  std::vector<std::vector<SiteSet>> patterns;
  // Dedup via an ordered set of canonical mask keys: O(log n) per probe
  // instead of the historical std::find scan over every seen pattern.
  std::set<std::vector<std::uint64_t>> seen;
  std::vector<SiteSet> groups;
  for (std::uint64_t combo = 0; combo < (std::uint64_t{1} << num_bridges);
       ++combo) {
    net.AllUp();
    // Kill the selected bridges. A gateway-host bridge is killed by
    // failing the host; placement members that are gateways drop out of
    // the live pattern, matching what their failure really does.
    for (int i = 0; i < num_bridges; ++i) {
      if (!((combo >> i) & 1)) continue;
      const BridgeInfo& bridge = topology->bridges()[i];
      if (bridge.gateway_site.has_value()) {
        net.SetSiteUp(*bridge.gateway_site, false);
      } else {
        net.SetRepeaterUp(bridge.repeater, false);
      }
    }
    PlacementGroups(net, placement, &groups);
    if (seen.insert(PatternKey(groups)).second) {
      patterns.push_back(groups);
    }
  }
  std::sort(patterns.begin(), patterns.end(),
            [](const std::vector<SiteSet>& a,
               const std::vector<SiteSet>& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              for (std::size_t i = 0; i < a.size(); ++i) {
                if (!(a[i] == b[i])) return a[i].mask() < b[i].mask();
              }
              return false;
            });
  return patterns;
}

}  // namespace dynvote
