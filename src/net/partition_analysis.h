// Static analysis of partition vulnerability: which single bridge
// failures (gateway hosts or repeaters) can separate the sites of a
// placement, and what distinct partition patterns are reachable at all.
// Section 3 of the paper reasons exactly this way about its example ("the
// repeaters X and Y are the only possible partition points and the only
// possible partitions are ..."); Section 4 describes each configuration
// by its partition points. This module computes both mechanically.

#pragma once

#include <memory>
#include <vector>

#include "net/network_state.h"
#include "net/topology.h"
#include "util/result.h"
#include "util/site_set.h"

namespace dynvote {

/// Result of the single-failure cut-point analysis for one placement.
struct PartitionVulnerability {
  /// Gateway-host sites whose single failure splits the (otherwise live)
  /// placement into more than one group.
  std::vector<SiteId> gateway_cut_points;
  /// Repeaters with the same property.
  std::vector<RepeaterId> repeater_cut_points;

  bool partitionable() const {
    return !gateway_cut_points.empty() || !repeater_cut_points.empty();
  }
};

/// Finds every single gateway/repeater failure that partitions
/// `placement` (all placement sites assumed up). A gateway host that is
/// itself a placement member is not a *partition* point for this analysis
/// (its failure removes a copy rather than splitting the survivors);
/// gateways in the placement are reported only if the surviving members
/// split.
Result<PartitionVulnerability> AnalyzePartitionPoints(
    std::shared_ptr<const Topology> topology, SiteSet placement);

/// Enumerates the distinct groupings of `placement` reachable by failing
/// any subset of bridges (gateway hosts and repeaters; at most 20
/// bridges). Each grouping is the list of placement groups, each group a
/// SiteSet, sorted for canonical comparison; the trivial one-group
/// pattern is included. This is the paper's "the only possible partitions
/// are {{A,B,C},{D}}, {{A,B,D},{C}} and {{A,B},{C},{D}}" made executable.
Result<std::vector<std::vector<SiteSet>>> EnumeratePlacementPartitions(
    std::shared_ptr<const Topology> topology, SiteSet placement);

}  // namespace dynvote
