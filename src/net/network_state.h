// Mutable up/down state over an immutable Topology, plus the reachability
// queries every voting protocol needs: which live sites can currently talk
// to one another. Sites on one segment always communicate while up;
// cross-segment communication requires a path of live bridges.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/topology.h"
#include "obs/context.h"
#include "util/site_set.h"

namespace dynvote {

/// Up/down state of all sites and repeaters, with connectivity queries.
///
/// Connectivity queries are recomputed lazily and allocation-free on the
/// query path: mutations invalidate a cached union-find over segments
/// *and* the component list derived from it; both are rebuilt together by
/// the next query (`Refresh()`), after which every query is a cached
/// lookup. `Components()` returns the cached list by const reference —
/// the reference stays valid until the next mutation.
///
/// `generation()` is a monotonic counter bumped only by *effective*
/// mutations (a SetSiteUp that flips nothing leaves it unchanged), so
/// callers can memoize derived decisions keyed on it; see
/// ConsistencyProtocol::CachedWouldGrant.
class NetworkState {
 public:
  /// Creates a state with every site and repeater up.
  explicit NetworkState(std::shared_ptr<const Topology> topology);

  const Topology& topology() const { return *topology_; }

  /// --- mutation -----------------------------------------------------
  void SetSiteUp(SiteId site, bool up);
  void SetRepeaterUp(RepeaterId repeater, bool up);
  /// Resets every site and repeater to up.
  void AllUp();

  /// --- observation ---------------------------------------------------
  bool IsSiteUp(SiteId site) const { return live_sites_.Contains(site); }
  bool IsRepeaterUp(RepeaterId repeater) const {
    return repeater_up_[repeater];
  }

  /// Set of all live sites. Maintained incrementally; O(1).
  SiteSet LiveSites() const { return live_sites_; }

  /// Monotonic counter of effective state changes. Two observations with
  /// equal generation() saw identical up/down state (and therefore
  /// identical connectivity).
  std::uint64_t generation() const { return generation_; }

  /// True iff `a` and `b` are both up and can exchange messages.
  bool CanCommunicate(SiteId a, SiteId b) const;

  /// The set of live sites reachable from `site` (including `site`), or
  /// the empty set if `site` is down.
  SiteSet ComponentOf(SiteId site) const;

  /// All maximal groups of mutually communicating live sites. Every live
  /// site appears in exactly one group; down sites appear in none. The
  /// returned reference points at the internal cache and is invalidated
  /// by the next mutation.
  const std::vector<SiteSet>& Components() const;

  /// True iff all members of `sites` are live and mutually communicating.
  bool FullyConnected(SiteSet sites) const;

  /// Attaches an observability context; every *effective* site/repeater
  /// flip emits a kNet trace event carrying the new component partition.
  /// Not owned; null (the default) disables emission.
  void set_obs(ObsContext* obs) { obs_ = obs; }

 private:
  /// Emits the kNet event for an effective flip of `id` (site, or
  /// repeater when `repeater`). Forces Refresh() — pure and idempotent —
  /// so the event carries the post-flip components.
  void EmitFlip(int id, bool repeater, bool up) const;
  /// Rebuilds the segment-level union-find and the component list if
  /// state changed since the last query.
  void Refresh() const;
  int FindRoot(int segment) const;

  std::shared_ptr<const Topology> topology_;
  SiteSet live_sites_;
  std::vector<bool> repeater_up_;
  std::uint64_t generation_ = 0;
  ObsContext* obs_ = nullptr;

  // Lazily maintained caches, rebuilt together by Refresh():
  //  - union-find over segments (path-halving, flattened after build),
  //  - the component list (one live-site mask per connected component,
  //    ordered by root segment id),
  //  - root segment id -> index into components_ (-1 if no live sites).
  mutable std::vector<int> segment_root_;
  mutable std::vector<SiteSet> components_;
  mutable std::vector<SiteSet> root_live_;  // scratch, indexed by root
  mutable std::vector<int> component_of_root_;
  mutable bool dirty_ = true;
};

}  // namespace dynvote
