// Mutable up/down state over an immutable Topology, plus the reachability
// queries every voting protocol needs: which live sites can currently talk
// to one another. Sites on one segment always communicate while up;
// cross-segment communication requires a path of live bridges.

#pragma once

#include <memory>
#include <vector>

#include "net/topology.h"
#include "util/site_set.h"

namespace dynvote {

/// Up/down state of all sites and repeaters, with connectivity queries.
///
/// Connectivity queries are recomputed lazily: mutations invalidate a
/// cached union-find over segments, which is rebuilt on the next query.
class NetworkState {
 public:
  /// Creates a state with every site and repeater up.
  explicit NetworkState(std::shared_ptr<const Topology> topology);

  const Topology& topology() const { return *topology_; }

  /// --- mutation -----------------------------------------------------
  void SetSiteUp(SiteId site, bool up);
  void SetRepeaterUp(RepeaterId repeater, bool up);
  /// Resets every site and repeater to up.
  void AllUp();

  /// --- observation ---------------------------------------------------
  bool IsSiteUp(SiteId site) const { return site_up_[site]; }
  bool IsRepeaterUp(RepeaterId repeater) const {
    return repeater_up_[repeater];
  }

  /// Set of all live sites.
  SiteSet LiveSites() const;

  /// True iff `a` and `b` are both up and can exchange messages.
  bool CanCommunicate(SiteId a, SiteId b) const;

  /// The set of live sites reachable from `site` (including `site`), or
  /// the empty set if `site` is down.
  SiteSet ComponentOf(SiteId site) const;

  /// All maximal groups of mutually communicating live sites. Every live
  /// site appears in exactly one group; down sites appear in none.
  std::vector<SiteSet> Components() const;

  /// True iff all members of `sites` are live and mutually communicating.
  bool FullyConnected(SiteSet sites) const;

 private:
  /// Rebuilds the segment-level union-find if state changed.
  void Refresh() const;
  int FindRoot(int segment) const;

  std::shared_ptr<const Topology> topology_;
  std::vector<bool> site_up_;
  std::vector<bool> repeater_up_;

  // Lazily maintained union-find over segments (path-halving on a copy).
  mutable std::vector<int> segment_root_;
  mutable bool dirty_ = true;
};

}  // namespace dynvote
