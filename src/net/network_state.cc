#include "net/network_state.h"

#include <numeric>

#include "util/logging.h"

namespace dynvote {

NetworkState::NetworkState(std::shared_ptr<const Topology> topology)
    : topology_(std::move(topology)) {
  DYNVOTE_CHECK_MSG(topology_ != nullptr, "NetworkState needs a topology");
  site_up_.assign(topology_->num_sites(), true);
  repeater_up_.assign(topology_->num_repeaters(), true);
  segment_root_.assign(topology_->num_segments(), 0);
}

void NetworkState::SetSiteUp(SiteId site, bool up) {
  DYNVOTE_CHECK(site >= 0 && site < topology_->num_sites());
  if (site_up_[site] != up) {
    site_up_[site] = up;
    dirty_ = true;
  }
}

void NetworkState::SetRepeaterUp(RepeaterId repeater, bool up) {
  DYNVOTE_CHECK(repeater >= 0 && repeater < topology_->num_repeaters());
  if (repeater_up_[repeater] != up) {
    repeater_up_[repeater] = up;
    dirty_ = true;
  }
}

void NetworkState::AllUp() {
  site_up_.assign(topology_->num_sites(), true);
  repeater_up_.assign(topology_->num_repeaters(), true);
  dirty_ = true;
}

SiteSet NetworkState::LiveSites() const {
  SiteSet live;
  for (SiteId s = 0; s < topology_->num_sites(); ++s) {
    if (site_up_[s]) live.Add(s);
  }
  return live;
}

void NetworkState::Refresh() const {
  if (!dirty_) return;
  std::iota(segment_root_.begin(), segment_root_.end(), 0);
  for (const BridgeInfo& b : topology_->bridges()) {
    bool bridge_up = b.gateway_site.has_value()
                         ? site_up_[*b.gateway_site]
                         : repeater_up_[b.repeater];
    if (!bridge_up) continue;
    int ra = FindRoot(b.segment_a);
    int rb = FindRoot(b.segment_b);
    if (ra != rb) segment_root_[rb] = ra;
  }
  // Flatten so later FindRoot calls are O(1).
  for (int seg = 0; seg < topology_->num_segments(); ++seg) {
    segment_root_[seg] = FindRoot(seg);
  }
  dirty_ = false;
}

int NetworkState::FindRoot(int segment) const {
  int root = segment;
  while (segment_root_[root] != root) root = segment_root_[root];
  // Path compression.
  while (segment_root_[segment] != root) {
    int next = segment_root_[segment];
    segment_root_[segment] = root;
    segment = next;
  }
  return root;
}

bool NetworkState::CanCommunicate(SiteId a, SiteId b) const {
  if (!site_up_[a] || !site_up_[b]) return false;
  Refresh();
  return segment_root_[topology_->SegmentOf(a)] ==
         segment_root_[topology_->SegmentOf(b)];
}

SiteSet NetworkState::ComponentOf(SiteId site) const {
  if (!site_up_[site]) return SiteSet();
  Refresh();
  int root = segment_root_[topology_->SegmentOf(site)];
  SiteSet component;
  for (SiteId s = 0; s < topology_->num_sites(); ++s) {
    if (site_up_[s] && segment_root_[topology_->SegmentOf(s)] == root) {
      component.Add(s);
    }
  }
  return component;
}

std::vector<SiteSet> NetworkState::Components() const {
  Refresh();
  std::vector<SiteSet> by_root(topology_->num_segments());
  for (SiteId s = 0; s < topology_->num_sites(); ++s) {
    if (site_up_[s]) {
      by_root[segment_root_[topology_->SegmentOf(s)]].Add(s);
    }
  }
  std::vector<SiteSet> out;
  for (const SiteSet& group : by_root) {
    if (!group.Empty()) out.push_back(group);
  }
  return out;
}

bool NetworkState::FullyConnected(SiteSet sites) const {
  if (sites.Empty()) return true;
  SiteId first = sites.RankMax();
  if (!site_up_[first]) return false;
  return sites.IsSubsetOf(ComponentOf(first));
}

}  // namespace dynvote
