#include "net/network_state.h"

#include <numeric>

#include "util/logging.h"

namespace dynvote {

NetworkState::NetworkState(std::shared_ptr<const Topology> topology)
    : topology_(std::move(topology)) {
  DYNVOTE_CHECK_MSG(topology_ != nullptr, "NetworkState needs a topology");
  live_sites_ = topology_->AllSites();
  repeater_up_.assign(topology_->num_repeaters(), true);
  segment_root_.assign(topology_->num_segments(), 0);
  root_live_.assign(topology_->num_segments(), SiteSet());
  component_of_root_.assign(topology_->num_segments(), -1);
  components_.reserve(topology_->num_segments());
}

void NetworkState::SetSiteUp(SiteId site, bool up) {
  DYNVOTE_CHECK(site >= 0 && site < topology_->num_sites());
  if (live_sites_.Contains(site) == up) return;
  if (up) {
    live_sites_.Add(site);
  } else {
    live_sites_.Remove(site);
  }
  ++generation_;
  dirty_ = true;
  if (obs_ != nullptr) EmitFlip(site, /*repeater=*/false, up);
}

void NetworkState::SetRepeaterUp(RepeaterId repeater, bool up) {
  DYNVOTE_CHECK(repeater >= 0 && repeater < topology_->num_repeaters());
  if (repeater_up_[repeater] == up) return;
  repeater_up_[repeater] = up;
  ++generation_;
  dirty_ = true;
  if (obs_ != nullptr) EmitFlip(repeater, /*repeater=*/true, up);
}

void NetworkState::EmitFlip(int id, bool repeater, bool up) const {
  if (obs_->sink != nullptr) {
    Refresh();
    TraceEvent event;
    event.type = TraceEventType::kNet;
    event.t = obs_->now;
    event.replication = obs_->replication;
    event.seq = obs_->seq;
    event.site = id;
    event.repeater = repeater;
    event.up = up;
    event.generation = generation_;
    event.components.reserve(components_.size());
    for (const SiteSet& group : components_) {
      event.components.push_back(group.mask());
    }
    obs_->sink->Write(event);
  }
  if (obs_->metrics != nullptr) {
    obs_->metrics->Add(repeater ? (up ? "net_repeater_up" : "net_repeater_down")
                                : (up ? "net_site_up" : "net_site_down"));
  }
}

void NetworkState::AllUp() {
  bool repeaters_all_up = true;
  for (bool up : repeater_up_) repeaters_all_up &= up;
  if (live_sites_ == topology_->AllSites() && repeaters_all_up) return;
  live_sites_ = topology_->AllSites();
  repeater_up_.assign(topology_->num_repeaters(), true);
  ++generation_;
  dirty_ = true;
}

void NetworkState::Refresh() const {
  if (!dirty_) return;
  const int num_segments = topology_->num_segments();
  std::iota(segment_root_.begin(), segment_root_.end(), 0);
  for (const BridgeInfo& b : topology_->bridges()) {
    bool bridge_up = b.gateway_site.has_value()
                         ? live_sites_.Contains(*b.gateway_site)
                         : repeater_up_[b.repeater];
    if (!bridge_up) continue;
    int ra = FindRoot(b.segment_a);
    int rb = FindRoot(b.segment_b);
    if (ra != rb) segment_root_[rb] = ra;
  }
  // Flatten so later FindRoot calls are O(1), and gather each root's live
  // sites from the per-segment masks (one union per segment, no per-site
  // loop).
  for (int seg = 0; seg < num_segments; ++seg) {
    int root = FindRoot(seg);
    segment_root_[seg] = root;
    root_live_[seg] = SiteSet();
  }
  for (int seg = 0; seg < num_segments; ++seg) {
    SiteSet live_here = topology_->SitesOnSegment(seg).Intersect(live_sites_);
    if (!live_here.Empty()) {
      int root = segment_root_[seg];
      root_live_[root] = root_live_[root].Union(live_here);
    }
  }
  // Component list in ascending root order (the historical Components()
  // ordering, which golden traces depend on).
  components_.clear();
  for (int root = 0; root < num_segments; ++root) {
    if (root_live_[root].Empty()) {
      component_of_root_[root] = -1;
    } else {
      component_of_root_[root] = static_cast<int>(components_.size());
      components_.push_back(root_live_[root]);
    }
  }
  dirty_ = false;
}

int NetworkState::FindRoot(int segment) const {
  int root = segment;
  while (segment_root_[root] != root) root = segment_root_[root];
  // Path compression.
  while (segment_root_[segment] != root) {
    int next = segment_root_[segment];
    segment_root_[segment] = root;
    segment = next;
  }
  return root;
}

bool NetworkState::CanCommunicate(SiteId a, SiteId b) const {
  // Too hot for a Release check: both queries sit on the per-event
  // sampling path (see bench/hotpath_micro.cc).
  DYNVOTE_DCHECK(a >= 0 && a < topology_->num_sites());
  DYNVOTE_DCHECK(b >= 0 && b < topology_->num_sites());
  if (!live_sites_.Contains(a) || !live_sites_.Contains(b)) return false;
  Refresh();
  return segment_root_[topology_->SegmentOf(a)] ==
         segment_root_[topology_->SegmentOf(b)];
}

SiteSet NetworkState::ComponentOf(SiteId site) const {
  DYNVOTE_DCHECK(site >= 0 && site < topology_->num_sites());
  if (!live_sites_.Contains(site)) return SiteSet();
  Refresh();
  int idx = component_of_root_[segment_root_[topology_->SegmentOf(site)]];
  return idx < 0 ? SiteSet() : components_[idx];
}

const std::vector<SiteSet>& NetworkState::Components() const {
  Refresh();
  return components_;
}

bool NetworkState::FullyConnected(SiteSet sites) const {
  if (sites.Empty()) return true;
  SiteId first = sites.RankMax();
  if (!live_sites_.Contains(first)) return false;
  return sites.IsSubsetOf(ComponentOf(first));
}

}  // namespace dynvote
