// Static description of a local-area network in the paper's model: a set
// of indivisible *segments* (unsegmented carrier-sense networks or token
// rings, which can never partition internally), joined by *bridges*. A
// bridge is either a *gateway host* — a site that also forwards traffic, so
// the link is up exactly while that site is up — or a standalone *repeater*
// with its own failure state (the X and Y of the paper's Section 3
// example).
//
// Every site, including a gateway host, belongs to exactly one segment;
// this is the paper's rule that makes Topological Dynamic Voting's
// vote-carrying safe ("the simplest solution ... is to disallow membership
// to multiple segments").

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/site_set.h"

namespace dynvote {

/// Identifier of a network segment, dense from 0.
using SegmentId = int;

/// Identifier of a repeater (standalone bridge), dense from 0.
using RepeaterId = int;

/// One site: a machine that may hold a physical copy of the replicated
/// file and may additionally serve as a gateway between segments.
struct SiteInfo {
  SiteId id = -1;
  std::string name;
  /// The one segment the site belongs to.
  SegmentId segment = -1;
};

/// One bridge between two segments.
struct BridgeInfo {
  SegmentId segment_a = -1;
  SegmentId segment_b = -1;
  /// If set, the bridge is a gateway host: it forwards iff this site is up.
  std::optional<SiteId> gateway_site;
  /// If gateway_site is empty, the bridge is repeater `repeater` with its
  /// own up/down state.
  RepeaterId repeater = -1;
  std::string name;
};

class TopologyBuilder;

/// Immutable network description shared by all simulation state.
class Topology {
 public:
  /// Starts building a topology.
  static TopologyBuilder Builder();

  int num_sites() const { return static_cast<int>(sites_.size()); }
  int num_segments() const { return num_segments_; }
  int num_repeaters() const { return num_repeaters_; }
  int num_bridges() const { return static_cast<int>(bridges_.size()); }

  const SiteInfo& site(SiteId id) const { return sites_[id]; }
  const std::vector<SiteInfo>& sites() const { return sites_; }
  const std::vector<BridgeInfo>& bridges() const { return bridges_; }
  const std::string& segment_name(SegmentId id) const {
    return segment_names_[id];
  }

  /// The segment site `id` belongs to.
  SegmentId SegmentOf(SiteId id) const { return sites_[id].segment; }

  /// All sites whose home segment is `segment`.
  SiteSet SitesOnSegment(SegmentId segment) const {
    return segment_sites_[segment];
  }

  /// Set of all site ids.
  SiteSet AllSites() const { return SiteSet::FirstN(num_sites()); }

  /// True iff `a` and `b` share a home segment. Used by Topological
  /// Dynamic Voting: co-segment sites can never be separated by a
  /// partition, only by site failure.
  bool SameSegment(SiteId a, SiteId b) const {
    return sites_[a].segment == sites_[b].segment;
  }

  /// Resolves a site name; fails if unknown.
  Result<SiteId> FindSite(const std::string& name) const;

  /// Multi-line human-readable description of segments, sites and bridges.
  std::string ToString() const;

 private:
  friend class TopologyBuilder;
  Topology() = default;

  std::vector<SiteInfo> sites_;
  std::vector<BridgeInfo> bridges_;
  std::vector<std::string> segment_names_;
  std::vector<SiteSet> segment_sites_;
  int num_segments_ = 0;
  int num_repeaters_ = 0;
};

/// Incremental construction of a Topology. Usage:
///
///   auto b = Topology::Builder();
///   SegmentId alpha = b.AddSegment("alpha");
///   SegmentId beta  = b.AddSegment("beta");
///   SiteId a = b.AddSite("A", alpha);
///   b.AddSite("B", beta);
///   b.AddGateway(a, beta);          // site A bridges alpha <-> beta
///   auto topo = b.Build();          // Result<std::shared_ptr<Topology>>
class TopologyBuilder {
 public:
  /// Declares a new segment and returns its id.
  SegmentId AddSegment(std::string name);

  /// Declares a new site on `segment` and returns its id.
  SiteId AddSite(std::string name, SegmentId segment);

  /// Declares that site `gateway` (on its home segment) also bridges to
  /// `other_segment`.
  TopologyBuilder& AddGateway(SiteId gateway, SegmentId other_segment);

  /// Declares a standalone repeater bridging `a` and `b`; returns its id.
  RepeaterId AddRepeater(std::string name, SegmentId a, SegmentId b);

  /// Validates and freezes the topology. Fails on dangling segment ids,
  /// duplicate site names, a bridge whose two ends are the same segment,
  /// or an empty site list.
  Result<std::shared_ptr<const Topology>> Build();

 private:
  Topology topo_;
  Status deferred_error_;  // first construction error, reported by Build()
  void Defer(Status status);
};

}  // namespace dynvote
