// Machine-readable export of experiment results (CSV and a small JSON
// emitter), so bench output can feed plotting pipelines directly.

#pragma once

#include <string>
#include <vector>

#include "model/experiment.h"
#include "model/replicated_experiment.h"
#include "util/result.h"

namespace dynvote {

/// One labelled grid cell for export: configuration label (or sweep
/// parameter) plus the policy result.
struct LabeledResult {
  std::string label;
  PolicyResult result;
};

/// CSV with a header row:
/// label,policy,unavailability,ci95,mean_outage_days,num_outages,
/// accesses_attempted,accesses_granted,messages_total,messages_control,
/// file_copies,dual_majorities,measured_days
std::string ResultsToCsv(const std::vector<LabeledResult>& results);

/// JSON array of objects with the same fields.
std::string ResultsToJson(const std::vector<LabeledResult>& results);

/// JSON object for a replicated run: the per-replication seeds, a
/// "replications" array of per-replication result rows (each tagged with
/// its replication index and seed) and an "aggregate" array with the
/// cross-replication mean / stddev / 95 % CI per policy. The rendering is
/// a pure function of the results, so two runs that differ only in
/// `--jobs` serialize byte-identically.
std::string ReplicatedResultsToJson(const std::string& label,
                                    const ReplicatedResults& results);

/// Writes `contents` to `path`, failing with a Status on I/O errors.
Status WriteFile(const std::string& path, const std::string& contents);

}  // namespace dynvote
